// Performance tuning — the knobs a deployment would turn:
//
//   * sequential vs parallel pool access (the paper's proposed extension),
//   * digest algorithm (paper's MD5 vs hardened SHA-256),
//   * behaviour under guest load (the Fig. 8 contention regime).
//
// Build & run:  ./build/examples/perf_tuning
#include <cstdio>

#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"
#include "workload/heavyload.hpp"

namespace {

using namespace mc;

double run_once(cloud::CloudEnvironment& env, bool parallel,
                crypto::HashAlgorithm algorithm) {
  core::ModCheckerConfig cfg;
  cfg.parallel = parallel;
  cfg.worker_threads = 8;
  cfg.algorithm = algorithm;
  core::ModChecker checker(env.hypervisor(), cfg);
  const auto report = checker.check_module(env.guests()[0], "http.sys");
  return to_ms(report.wall_time);
}

}  // namespace

int main() {
  using namespace mc;

  cloud::CloudConfig config;
  config.guest_count = 15;
  cloud::CloudEnvironment env(config);
  workload::HeavyLoad heavyload(env);

  std::printf("=== ModChecker tuning matrix (15 guests, http.sys, simulated "
              "wall ms) ===\n");
  std::printf("%-22s %12s %12s\n", "configuration", "idle", "heavy-load");

  struct Config {
    const char* name;
    bool parallel;
    crypto::HashAlgorithm algorithm;
  };
  const Config configs[] = {
      {"sequential + md5", false, crypto::HashAlgorithm::kMd5},
      {"sequential + sha256", false, crypto::HashAlgorithm::kSha256},
      {"parallel   + md5", true, crypto::HashAlgorithm::kMd5},
      {"parallel   + sha256", true, crypto::HashAlgorithm::kSha256},
  };

  for (const auto& c : configs) {
    heavyload.stop_all();
    const double idle_ms = run_once(env, c.parallel, c.algorithm);
    heavyload.stress_guests(env.guests().size());
    const double loaded_ms = run_once(env, c.parallel, c.algorithm);
    std::printf("%-22s %12.3f %12.3f\n", c.name, idle_ms, loaded_ms);
  }
  heavyload.stop_all();

  std::printf("\nReading the matrix: parallel access flattens the linear "
              "growth of Fig. 7;\nheavy load inflates everything by the "
              "Fig. 8 contention factor; the digest\nchoice is a minor cost "
              "next to page-wise extraction.\n");
  return 0;
}
