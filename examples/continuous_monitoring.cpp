// Continuous monitoring — ModChecker as a long-running cloud service.
//
// The paper frames ModChecker as a periodic light-weight consistency check
// whose alarms trigger heavier analysis (§VI).  This example wires that
// deployment end to end on the simulated timeline:
//
//   * per-module scan policies (critical modules scanned more often),
//   * an infection that appears mid-timeline,
//   * alert deduplication (the same finding is reported as new only once),
//   * a duty-cycle figure showing the service stays light-weight.
//
// Build & run:  ./build/examples/continuous_monitoring
#include <cstdio>

#include "attacks/inline_hook.hpp"
#include "cloud/environment.hpp"
#include "modchecker/scheduler.hpp"

int main() {
  using namespace mc;

  cloud::CloudConfig config;
  config.guest_count = 12;
  cloud::CloudEnvironment env(config);

  core::ScanScheduler scheduler(env.hypervisor(),
                                std::vector<vmm::DomainId>(env.guests()));
  // Critical modules every simulated second; the long tail every 4 s.
  scheduler.add_policy({"hal.dll", sim_ms(1000), 0});
  scheduler.add_policy({"ntoskrnl.exe", sim_ms(1000), sim_ms(120)});
  scheduler.add_policy({"tcpip.sys", sim_ms(4000), sim_ms(240)});
  scheduler.add_policy({"http.sys", sim_ms(4000), sim_ms(360)});
  scheduler.add_policy({"ntfs.sys", sim_ms(4000), sim_ms(480)});

  // Phase 1: two simulated seconds of a healthy cloud.
  auto report = scheduler.run_until(sim_ms(2000));
  std::printf("=== phase 1: healthy cloud (%zu scans) ===\n%s\n",
              report.scans.size(),
              core::format_schedule_report(report).c_str());

  // Phase 2: a rootkit lands on Dom7, then monitoring continues.
  attacks::InlineHookAttack{}.apply(env, env.guests()[6], "hal.dll");
  std::printf("[attacker] inline hook planted on Dom%u's hal.dll\n\n",
              env.guests()[6]);

  report = scheduler.run_until(sim_ms(6000));
  std::printf("=== phase 2: post-infection (%zu scans) ===\n%s\n",
              report.scans.size(),
              core::format_schedule_report(report).c_str());

  // The service must have raised exactly one NEW alert for (hal.dll, Dom7)
  // and kept the duty cycle light.
  std::size_t new_alerts = report.new_alert_count();
  const bool ok = new_alerts == 1 && !report.alerts.empty() &&
                  report.alerts.front().module == "hal.dll" &&
                  report.duty_cycle() < 0.25;
  std::printf("monitoring outcome: %s (new alerts: %zu, duty cycle %.1f%%)\n",
              ok ? "OK" : "UNEXPECTED", new_alerts,
              report.duty_cycle() * 100);
  return ok ? 0 : 1;
}
