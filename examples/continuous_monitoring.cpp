// Continuous monitoring — ModChecker as a long-running sharded fleet.
//
// The paper frames ModChecker as a periodic light-weight consistency check
// whose alarms trigger heavier analysis (§VI).  This example runs that
// deployment through the sharded control plane (service/coordinator.hpp) —
// the layer a production fleet would use directly, with the classic
// FleetService as its shards=1 facade:
//
//   * two pools carved from one cloud (critical front-line VMs vs. the
//     long tail), routed to two worker shards by the consistent-hash ring,
//   * a high-priority recurring sweep of critical modules and a slower
//     background sweep of the long tail,
//   * an infection planted before monitoring starts, surfaced as sweep
//     findings by every run that scans the infected pool,
//   * cancellation (an operator retracts a sweep before it runs) and
//     graceful drain,
//   * work stealing: an idle shard lifts queued runs off its busy sibling
//     instead of letting a hot pool's backlog age,
//   * pluggable report sinks: an in-memory ring for the checks below, a
//     JSON-lines stream as the SIEM integration surface, and a Chrome
//     trace sink — load the emitted JSON in chrome://tracing or
//     https://ui.perfetto.dev to see every sweep, acquire, parse and
//     compare span on a per-pool timeline.
//
// Build & run:  ./build/examples/continuous_monitoring
#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>

#include "attacks/inline_hook.hpp"
#include "cloud/environment.hpp"
#include "service/coordinator.hpp"
#include "telemetry/trace.hpp"

int main() {
  using namespace mc;

  cloud::CloudConfig config;
  config.guest_count = 12;
  cloud::CloudEnvironment env(config);

  // Pool 0: the six front-line guests; pool 1: the long tail.
  const std::vector<vmm::DomainId> frontline(env.guests().begin(),
                                             env.guests().begin() + 6);
  const std::vector<vmm::DomainId> longtail(env.guests().begin() + 6,
                                            env.guests().end());

  // A rootkit lands on a front-line guest before monitoring starts.
  const vmm::DomainId infected = frontline[3];
  attacks::InlineHookAttack{}.apply(env, infected, "hal.dll");
  std::printf("[attacker] inline hook planted on Dom%u's hal.dll\n\n",
              infected);

  telemetry::TraceRecorder tracer;
  service::CoordinatorConfig fleet_cfg;
  fleet_cfg.shards = 2;
  fleet_cfg.workers_per_shard = 1;
  fleet_cfg.tracer = &tracer;  // every pool pipeline shares this recorder
  service::ShardCoordinator fleet(fleet_cfg);
  const std::size_t pool_critical = fleet.add_pool(env.hypervisor(),
                                                   frontline);
  const std::size_t pool_tail = fleet.add_pool(env.hypervisor(), longtail);
  std::printf("[fleet] pool %zu (critical) -> shard %zu, "
              "pool %zu (long tail) -> shard %zu\n\n",
              pool_critical, fleet.shard_of(pool_critical), pool_tail,
              fleet.shard_of(pool_tail));

  auto ring = std::make_shared<service::RingSink>();
  std::ostringstream siem;  // stands in for a SIEM/alerting socket
  auto json = std::make_shared<service::JsonLinesSink>(siem);
  std::ostringstream trace_stream;  // write to a .json file in production
  auto trace = std::make_shared<service::ChromeTraceSink>(trace_stream,
                                                          tracer);
  fleet.add_sink(ring);
  fleet.add_sink(json);
  fleet.add_sink(trace);

  // Critical modules every simulated second, three rounds; the long tail
  // once, at lower priority.
  service::SweepSpec critical;
  critical.name = "critical";
  critical.pool_index = pool_critical;
  critical.modules = {"hal.dll", "ntoskrnl.exe"};
  critical.priority = 10;
  critical.repeat = 3;
  critical.cadence = sim_ms(1000);
  fleet.submit(critical);

  service::SweepSpec tail;
  tail.name = "long-tail";
  tail.pool_index = pool_tail;
  tail.modules = {"tcpip.sys", "http.sys", "ntfs.sys"};
  tail.priority = 0;
  fleet.submit(tail);

  // An operator queues a third sweep, then retracts it before it runs.
  service::SweepSpec retracted;
  retracted.name = "retracted";
  retracted.pool_index = pool_tail;
  retracted.modules = {"ndis.sys"};
  const service::SweepId retracted_id = fleet.submit(retracted);
  fleet.cancel(retracted_id);

  fleet.start();
  fleet.drain();  // run the backlog to completion, then stop the workers

  const auto reports = ring->snapshot();
  const auto stats = fleet.stats();

  std::size_t hal_findings = 0;
  std::size_t tail_findings = 0;
  SimNanos total_wall = 0;
  for (const auto& report : reports) {
    std::printf("sweep '%s' run %zu: %zu module scans, %zu findings, "
                "%llu us simulated wall\n",
                report.name.c_str(), report.run_index, report.scans.size(),
                report.findings.size(),
                static_cast<unsigned long long>(report.wall_time / 1000));
    total_wall += report.wall_time;
    for (const auto& finding : report.findings) {
      std::printf("  ALERT %s on Dom%u (vote %zu/%zu)\n",
                  finding.module.c_str(), finding.vm, finding.successes,
                  finding.total);
      if (report.name == "critical" && finding.module == "hal.dll" &&
          finding.vm == infected) {
        ++hal_findings;
      }
      if (report.name == "long-tail") {
        ++tail_findings;
      }
    }
  }
  std::printf("\nper-shard accounting:\n");
  std::uint64_t shard_completed = 0;
  for (const auto& shard : fleet.shard_stats()) {
    std::printf("  shard %zu: %llu runs (%llu stolen), %llu us busy\n",
                shard.index,
                static_cast<unsigned long long>(shard.completed_runs),
                static_cast<unsigned long long>(shard.stolen_runs),
                static_cast<unsigned long long>(shard.sim_busy / 1000));
    shard_completed += shard.completed_runs;
  }
  const std::string feed = siem.str();
  std::printf("SIEM feed: %zu JSON lines\n",
              static_cast<std::size_t>(
                  std::count(feed.begin(), feed.end(), '\n')));
  trace->finish();
  std::printf("Chrome trace: %llu events, %zu bytes "
              "(open in chrome://tracing / Perfetto)\n",
              static_cast<unsigned long long>(trace->events_written()),
              trace_stream.str().size());

  // Every critical run must flag exactly the infected guest; the clean
  // long-tail pool must stay silent; the retracted sweep must never run;
  // the per-shard accounting must add up to the fleet total.
  const bool ok = hal_findings == 3 && tail_findings == 0 &&
                  stats.completed_runs == 4 && stats.cancelled_runs == 0 &&
                  stats.dropped_pending == 1 && reports.size() == 4 &&
                  shard_completed == stats.completed_runs &&
                  trace->events_written() > 0;
  std::printf("monitoring outcome: %s (runs %llu, dropped %llu, "
              "%llu steals, %llu us total simulated wall)\n",
              ok ? "OK" : "UNEXPECTED",
              static_cast<unsigned long long>(stats.completed_runs),
              static_cast<unsigned long long>(stats.dropped_pending),
              static_cast<unsigned long long>(stats.steals),
              static_cast<unsigned long long>(total_wall / 1000));
  return ok ? 0 : 1;
}
