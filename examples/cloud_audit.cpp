// Cloud audit — sweep EVERY module across the whole pool, the way a cloud
// operator would run ModChecker as a periodic consistency check
// (the paper's intro scenario: "large cloud servers" running many
// identical VMs).
//
// The example plants two infections (a disk-first opcode replacement on
// Dom2's hal.dll and a header tamper on Dom4's ntfs.sys), then prints an
// audit matrix module x VM and a summary of flagged (module, VM) pairs.
//
// Build & run:  ./build/examples/cloud_audit
#include <cstdio>
#include <string>
#include <vector>

#include "attacks/header_tamper.hpp"
#include "attacks/opcode_replace.hpp"
#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"

int main() {
  using namespace mc;

  cloud::CloudConfig config;
  config.guest_count = 8;
  cloud::CloudEnvironment env(config);

  // Plant infections on two different guests/modules.
  attacks::OpcodeReplaceAttack opcode;
  opcode.apply(env, env.guests()[1], "hal.dll");
  attacks::HeaderTamperAttack tamper;
  tamper.apply(env, env.guests()[3], "ntfs.sys");

  core::ModChecker checker(env.hypervisor());

  std::printf("=== Cloud audit: %zu guests x %zu modules ===\n",
              env.guests().size(), env.config().load_order.size());
  std::printf("%-14s", "module");
  for (const auto vm : env.guests()) {
    std::printf(" Dom%-3u", vm);
  }
  std::printf("\n");

  struct Finding {
    std::string module;
    vmm::DomainId vm;
  };
  std::vector<Finding> findings;

  SimNanos total_sim = 0;
  for (const auto& module : env.config().load_order) {
    const auto report = checker.scan_pool(module, env.guests());
    total_sim += report.wall_time;
    std::printf("%-14s", module.c_str());
    for (const auto& verdict : report.verdicts) {
      std::printf(" %-6s", verdict.clean ? "ok" : "FLAG");
      if (!verdict.clean) {
        findings.push_back({module, verdict.vm});
      }
    }
    std::printf("\n");
  }

  std::printf("\nFindings (%zu):\n", findings.size());
  for (const auto& f : findings) {
    std::printf("  %s on Dom%u — schedule deep analysis / revert to clean "
                "snapshot\n",
                f.module.c_str(), f.vm);
  }
  std::printf("\nFull-audit simulated cost: %s\n",
              format_sim_nanos(total_sim).c_str());
  return findings.size() == 2 ? 0 : 1;
}
