// Incident response — the full §III remediation loop:
//
//   detect (light-weight ModChecker pass) -> localize (pool scan finds the
//   odd VM out) -> confirm (a heavier LKIM-style measurement against a
//   trusted copy) -> remediate (revert the VM to its clean snapshot) ->
//   verify (re-check comes back clean).
//
// A TCPIRPHOOK-style inline hook is planted on a random guest's hal.dll;
// the responder does not know which one.
//
// Build & run:  ./build/examples/incident_response
#include <cstdio>

#include "attacks/inline_hook.hpp"
#include "baselines/lkim_style.hpp"
#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"
#include "util/rng.hpp"

int main() {
  using namespace mc;

  cloud::CloudConfig config;
  config.guest_count = 10;
  cloud::CloudEnvironment env(config);
  env.snapshot_all();  // operators keep clean snapshots (§III)

  // An attacker compromises one guest (unknown to the responder).
  Xoshiro256 rng(2026);
  const vmm::DomainId victim =
      env.guests()[rng.below(env.guests().size())];
  attacks::InlineHookAttack{}.apply(env, victim, "hal.dll");
  std::printf("[attacker] hal.dll hooked on some guest...\n\n");

  // 1-2. Detect & localize with a pool scan.
  core::ModChecker checker(env.hypervisor());
  const auto scan = checker.scan_pool("hal.dll", env.guests());
  vmm::DomainId flagged = 0;
  for (const auto& v : scan.verdicts) {
    std::printf("[modchecker] Dom%-2u %s (%zu/%zu matches)\n", v.vm,
                v.clean ? "clean  " : "FLAGGED", v.successes, v.total);
    if (!v.clean) {
      flagged = v.vm;
    }
  }
  if (flagged == 0) {
    std::printf("no discrepancy found — incident response aborted\n");
    return 1;
  }
  std::printf("\n[responder] discrepancy localized to Dom%u (simulated scan "
              "cost %s)\n",
              flagged, format_sim_nanos(scan.wall_time).c_str());

  // 3. Confirm with the heavier trusted-repository measurement.
  const baselines::LkimStyleChecker lkim(env.golden().all());
  const auto confirm = lkim.check(env, flagged, "hal.dll");
  std::printf("[lkim-style] %s\n",
              confirm.flagged ? confirm.detail.c_str()
                              : "no divergence (false alarm?)");

  // 4. Remediate: revert to the clean snapshot.
  env.revert(flagged);
  std::printf("[responder] Dom%u reverted to clean snapshot\n", flagged);

  // 5. Verify.
  const auto recheck = checker.check_module(flagged, "hal.dll");
  std::printf("[modchecker] post-revert verdict: %s (%zu/%zu matches)\n",
              recheck.subject_clean ? "clean" : "STILL FLAGGED",
              recheck.successes, recheck.total_comparisons);

  const bool success = confirm.flagged && recheck.subject_clean &&
                       flagged == victim;
  std::printf("\nincident response %s\n", success ? "SUCCEEDED" : "FAILED");
  return success ? 0 : 1;
}
