// Quickstart — the smallest end-to-end ModChecker session.
//
//   1. Bring up a simulated cloud (Xen-like hypervisor + N identical
//      Windows-XP-like guests booted from the same golden driver set).
//   2. Check one kernel module across the pool; all copies should match
//      once the RVA adjustment has undone the per-VM relocations.
//   3. Infect one VM with an inline hook and check again.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "attacks/inline_hook.hpp"
#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"
#include "modchecker/report.hpp"

int main() {
  using namespace mc;

  // 1. A 5-guest cloud (use 15 for the paper's full testbed).
  cloud::CloudConfig config;
  config.guest_count = 5;
  cloud::CloudEnvironment env(config);

  // 2. Check hal.dll on Dom1 against every other guest.
  core::ModChecker checker(env.hypervisor());
  auto report = checker.check_module(env.guests()[0], "hal.dll");
  std::printf("%s\n", core::format_report(report).c_str());

  // 3. Infect Dom1 and check again.
  attacks::InlineHookAttack attack;
  const auto result = attack.apply(env, env.guests()[0], "hal.dll");
  std::printf("applied attack: %s\n\n", result.description.c_str());

  report = checker.check_module(env.guests()[0], "hal.dll");
  std::printf("%s\n", core::format_report(report).c_str());

  return report.subject_clean ? 1 : 0;  // expect FLAGGED now
}
