// Mixed-version cloud — operating ModChecker through a staged OS upgrade.
//
// The paper's premise is a pool of VMs "running the same version of the
// operating system".  Real clouds upgrade in stages, so for a while two
// OS builds coexist.  Cross-version comparison would flag every module
// (different binaries!), so the workflow is:
//
//   1. identify each guest's build via introspection (debug-block version),
//   2. group the pool by version,
//   3. run ModChecker within each group independently.
//
// Build & run:  ./build/examples/mixed_cloud
#include <cstdio>

#include "attacks/opcode_replace.hpp"
#include "cloud/environment.hpp"
#include "guestos/profile.hpp"
#include "modchecker/audit.hpp"
#include "modchecker/modchecker.hpp"

int main() {
  using namespace mc;

  // 9 guests: six still on XP SP2, three already upgraded to the 2003
  // build (different kernel structure layout!).
  cloud::CloudConfig config;
  config.guest_count = 9;
  for (const std::size_t idx : {std::size_t{6}, std::size_t{7},
                                std::size_t{8}}) {
    config.guest_profiles[idx] = &guestos::win2003_sp1_profile();
  }
  cloud::CloudEnvironment env(config);

  // One of the not-yet-upgraded guests is compromised on disk.
  attacks::OpcodeReplaceAttack{}.apply(env, env.guests()[2], "hal.dll");

  // 1-2. Group the pool by guest build.  The fault-aware grouping never
  // throws on an odd guest: an unknown build or an unanswering VM lands in
  // `unrecognized` with a FaultRecord, and the rest of the cloud still
  // gets checked.
  const core::VersionGroups groups =
      core::group_pool_by_version(env.hypervisor(), env.guests());
  std::printf("pool grouping by guest build:\n");
  for (const auto& [version, members] : groups.recognized) {
    std::printf("  %s:", guestos::profile_by_version(version).name.c_str());
    for (const auto vm : members) {
      std::printf(" Dom%u", vm);
    }
    std::printf("\n");
  }
  for (const auto& fault : groups.faults) {
    std::printf("  excluded: %s\n", format_fault(fault).c_str());
  }

  // 3. Check each group independently.
  core::ModChecker checker(env.hypervisor());
  std::size_t findings = 0;
  for (const auto& [version, members] : groups.recognized) {
    const auto& profile = guestos::profile_by_version(version);
    if (members.size() < 2) {
      std::printf("\n[%s] group too small for cross-comparison — skipped\n",
                  profile.name.c_str());
      continue;
    }
    const auto scan = checker.scan_pool("hal.dll", members);
    std::printf("\n[%s] hal.dll pool scan:\n", profile.name.c_str());
    for (const auto& verdict : scan.verdicts) {
      std::printf("  Dom%-2u %s (%zu/%zu)\n", verdict.vm,
                  verdict.clean ? "clean  " : "FLAGGED", verdict.successes,
                  verdict.total);
      findings += verdict.clean ? 0 : 1;
    }
  }

  std::printf("\n%zu finding(s); expected exactly 1 (Dom3, within the XP "
              "group)\n",
              findings);
  return findings == 1 ? 0 : 1;
}
