// Mixed-format fleet — one service monitoring Windows and Linux pools.
//
// The paper evaluates Windows XP guests, but nothing in its design is
// PE-specific: decomposition (Algorithm 1) and pairwise relocation
// normalization (Algorithm 2) only need a format that can enumerate its
// integrity-relevant pieces and describe its loader's fixup widths.
// The format-plugin registry (src/modchecker/format.hpp) captures exactly
// that seam, so one FleetService can sweep a PE32/Windows pool and an
// ELF64/Linux pool side by side — each module auto-detected from its
// image header, no per-pool configuration.
//
//   1. stand up a Windows-like pool (PE32 drivers) and a Linux-like pool
//      (.ko modules with R_X86_64_64 / R_X86_64_32S fixups),
//   2. infect one guest in each with a one-byte .text patch,
//   3. submit sweeps for both pools to one fleet and drain,
//   4. expect exactly the two planted findings — and nothing else.
//
// Build & run:  ./build/examples/mixed_format
#include <cstdio>
#include <memory>

#include "attacks/opcode_replace.hpp"
#include "cloud/environment.hpp"
#include "cloud/linux.hpp"
#include "elf/parser.hpp"
#include "guestos/kernel.hpp"
#include "guestos/ko_loader.hpp"
#include "service/fleet.hpp"

int main() {
  using namespace mc;

  // 1. Two pools, two guest OSes, two module formats.
  cloud::CloudConfig pe_config;
  pe_config.guest_count = 5;
  cloud::CloudEnvironment pe_env(pe_config);

  cloud::LinuxCloudConfig elf_config;
  elf_config.guest_count = 5;
  cloud::LinuxEnvironment elf_env(elf_config);

  // 2. One infection per pool.  The PE side reuses the attack toolkit;
  // the ELF side patches a .text byte of the resident scsi_mod copy
  // through guest virtual memory, the same E1 shape.
  const vmm::DomainId pe_victim = pe_env.guests()[3];
  attacks::OpcodeReplaceAttack{}.apply(pe_env, pe_victim, "hal.dll");

  const vmm::DomainId elf_victim = elf_env.guests()[1];
  {
    const guestos::LoadedKo* ko = elf_env.loader(elf_victim).find("scsi_mod");
    const elf::ElfImage image{ByteView(elf_env.golden_file("scsi_mod"))};
    const elf::Elf64Shdr* text = image.find_section(".text");
    const std::uint32_t va =
        ko->base + static_cast<std::uint32_t>(text->sh_offset) + 7;
    const Bytes patch = {0xCC};
    elf_env.kernel(elf_victim).address_space().write_virtual(va,
                                                            ByteView(patch));
  }

  // 3. One fleet, both pools.  Format detection is per module image, so
  // the service needs no telling which pool speaks which format.
  service::FleetService fleet({/*workers=*/2});
  const std::size_t pe_pool =
      fleet.add_pool(pe_env.hypervisor(), pe_env.guests());
  const std::size_t elf_pool =
      fleet.add_pool(elf_env.hypervisor(), elf_env.guests());
  auto ring = std::make_shared<service::RingSink>();
  fleet.add_sink(ring);

  service::SweepSpec pe_sweep;
  pe_sweep.name = "windows-drivers";
  pe_sweep.pool_index = pe_pool;
  pe_sweep.modules = {"hal.dll", "ntfs.sys"};
  fleet.submit(pe_sweep);

  service::SweepSpec elf_sweep;
  elf_sweep.name = "linux-modules";
  elf_sweep.pool_index = elf_pool;
  elf_sweep.modules = {"scsi_mod", "ext3", "hello"};
  fleet.submit(elf_sweep);

  fleet.start();
  fleet.drain();

  // 4. Exactly the two planted infections, each attributed to its own
  // pool, module and guest.
  std::size_t hits = 0;
  std::size_t misattributed = 0;
  for (const auto& report : ring->snapshot()) {
    std::printf("[%s] %zu module scan(s), %zu finding(s)\n",
                report.name.c_str(), report.scans.size(),
                report.findings.size());
    for (const auto& finding : report.findings) {
      std::printf("  ALERT %s on Dom%u\n", finding.module.c_str(),
                  finding.vm);
      const bool expected =
          (report.pool_index == pe_pool && finding.module == "hal.dll" &&
           finding.vm == pe_victim) ||
          (report.pool_index == elf_pool && finding.module == "scsi_mod" &&
           finding.vm == elf_victim);
      ++(expected ? hits : misattributed);
    }
  }

  std::printf("\n%zu expected finding(s), %zu stray — want 2 and 0\n", hits,
              misattributed);
  return (hits == 2 && misattributed == 0) ? 0 : 1;
}
