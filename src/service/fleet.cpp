#include "service/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <set>
#include <sstream>
#include <utility>

#include "modchecker/report_json.hpp"
#include "util/error.hpp"
#include "vmm/write_watch.hpp"

namespace mc::service {

// ---- SweepReport JSON ------------------------------------------------------

std::string to_json(const SweepReport& report) {
  std::ostringstream os;
  os << "{\"sweep\":\"" << core::json_escape(report.name) << "\""
     << ",\"id\":" << report.id << ",\"pool\":" << report.pool_index
     << ",\"run\":" << report.run_index << ",\"due_ns\":" << report.due
     << ",\"cancelled\":" << (report.cancelled ? "true" : "false")
     << ",\"findings\":[";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const SweepFinding& f = report.findings[i];
    os << (i == 0 ? "" : ",") << "{\"module\":\""
       << core::json_escape(f.module) << "\",\"vm\":" << f.vm
       << ",\"successes\":" << f.successes << ",\"total\":" << f.total
       << "}";
  }
  os << "],\"scans\":[";
  for (std::size_t i = 0; i < report.scans.size(); ++i) {
    os << (i == 0 ? "" : ",") << core::to_json(report.scans[i]);
  }
  os << "],\"wall_ns\":" << report.wall_time << ','
     << core::cpu_ns_json(report.cpu_times);
  // Quarantine fields only on degraded runs: a healthy sweep's JSON line
  // stays byte-identical to the historical schema.
  if (!report.quarantined.empty() || report.pool_exhausted) {
    os << ",\"quarantined\":[";
    for (std::size_t i = 0; i < report.quarantined.size(); ++i) {
      os << (i == 0 ? "" : ",") << report.quarantined[i];
    }
    os << "],\"pool_exhausted\":"
       << (report.pool_exhausted ? "true" : "false");
  }
  // Likewise emitted only when set: a skipped event-driven run is the only
  // producer, and its scans/findings are the previous run's re-emission.
  if (report.skipped_clean) {
    os << ",\"skipped_clean\":true";
  }
  if (!report.telemetry_json.empty()) {
    os << ",\"telemetry\":" << report.telemetry_json;
  }
  os << "}";
  return os.str();
}

// ---- Sinks -----------------------------------------------------------------

RingSink::RingSink(std::size_t capacity) : capacity_(capacity) {
  MC_CHECK(capacity_ >= 1, "RingSink capacity must be at least 1");
}

void RingSink::on_sweep(const SweepReport& report) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.push_back(report);
  if (ring_.size() > capacity_) {
    ring_.pop_front();
  }
  ++seen_;
}

std::vector<SweepReport> RingSink::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t RingSink::total_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seen_;
}

void JsonLinesSink::on_sweep(const SweepReport& report) {
  const std::string line = to_json(report);
  std::lock_guard<std::mutex> lock(mutex_);
  *os_ << line << '\n';
  if (!os_->good()) {
    // The stream rejected the line (disk full, closed pipe, failbit left
    // by a consumer).  Count the drop and clear the state so the next
    // report gets a fresh chance — a logging sink must never wedge the
    // sweep workers.
    ++write_failures_;
    os_->clear();
  }
}

std::uint64_t JsonLinesSink::write_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return write_failures_;
}

void ChromeTraceSink::on_sweep(const SweepReport& /*report*/) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) {
    return;
  }
  // audit: recorder_->drain() is the telemetry SpanRecorder's lock-free
  // buffer swap, not SweepQueue::drain; nothing here waits.
  // mc-lint: allow(lock-order)
  write_events_locked();
}

void ChromeTraceSink::finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) {
    return;
  }
  // audit: same as on_sweep — the telemetry drain() is a buffer swap.
  // mc-lint: allow(lock-order)
  write_events_locked();
  if (!header_written_) {
    *os_ << "[\n";  // empty run: still emit a valid (empty) array
  }
  *os_ << "\n]\n";
  os_->flush();
  finished_ = true;
}

std::uint64_t ChromeTraceSink::events_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void ChromeTraceSink::write_events_locked() {
  const std::vector<telemetry::SpanRecord> spans = recorder_->drain();
  for (const telemetry::SpanRecord& span : spans) {
    if (!header_written_) {
      *os_ << "[\n";
      header_written_ = true;
    } else {
      *os_ << ",\n";
    }
    *os_ << telemetry::chrome_trace_event(span);
    ++events_;
  }
}

// ---- FleetService ----------------------------------------------------------

// The fleet's ear on the WriteWatch notification surface.  The skip
// decision itself rests on per-domain write generations (see
// run_event_locked) — the tracker is the observability half: it counts
// distinct domains written and clean->dirty watch edges while the service
// runs, so an operator can see write pressure without any sweep running.
// Callbacks arrive under the WriteWatch lock (possibly from guest-writer
// threads) and only touch the tracker's own state.
class FleetService::DirtyTracker : public vmm::WriteWatch::Subscriber {
 public:
  DirtyTracker(vmm::WriteWatch& watch, telemetry::Counter dirty_domains,
               telemetry::Counter watch_notifications)
      : watch_(&watch),
        dirty_domains_(dirty_domains),
        watch_notifications_(watch_notifications) {
    watch_->subscribe(this);
  }

  ~DirtyTracker() override { watch_->unsubscribe(this); }

  void on_domain_write(vmm::DomainId domain) override {
    write_events_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    if (seen_.insert(domain).second) {
      dirty_domains_.inc();
    }
  }

  void on_watch_dirty(vmm::DomainId /*domain*/,
                      vmm::WriteWatch::WatchId /*watch*/) override {
    watch_notifications_.inc();
  }

  /// Total on_domain_write callbacks observed (monotonic).
  std::uint64_t write_events() const {
    return write_events_.load(std::memory_order_relaxed);
  }

 private:
  vmm::WriteWatch* watch_;
  telemetry::Counter dirty_domains_;
  telemetry::Counter watch_notifications_;
  std::atomic<std::uint64_t> write_events_{0};
  std::mutex mutex_;
  std::set<vmm::DomainId> seen_;
};

FleetService::FleetService(FleetConfig config)
    : config_(std::move(config)),
      metrics_(&telemetry::resolve(config_.metrics)),
      submitted_(metrics_->owned_counter("service.submitted")),
      completed_runs_(metrics_->owned_counter("service.completed_runs")),
      cancelled_runs_(metrics_->owned_counter("service.cancelled_runs")),
      dropped_pending_(metrics_->owned_counter("service.dropped_pending")),
      quarantine_events_(metrics_->owned_counter("service.quarantine_events")),
      exhausted_runs_(metrics_->owned_counter("service.exhausted_runs")),
      sweeps_skipped_clean_(
          metrics_->owned_counter("fleet.sweeps_skipped_clean")),
      event_runs_(metrics_->owned_counter("fleet.event_runs")),
      queue_depth_(metrics_->gauge("service.queue_depth")),
      sweeps_in_flight_(metrics_->gauge("service.sweeps_in_flight")) {
  MC_CHECK(config_.workers >= 1, "FleetService needs at least one worker");
}

FleetService::~FleetService() { stop(); }

std::size_t FleetService::add_pool(const vmm::Hypervisor& hypervisor,
                                   std::vector<vmm::DomainId> vms,
                                   core::ModCheckerConfig config) {
  MC_CHECK(vms.size() >= 2, "a sweep pool needs at least two VMs");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MC_CHECK(!started_, "add_pool must be called before start()");
  }
  // Pools inherit the fleet's telemetry wiring unless their config brought
  // its own; trace_pid defaults to pool index + 1 so each pool renders as
  // a separate process row in chrome://tracing.
  if (config.metrics == nullptr) {
    config.metrics = metrics_;
  }
  if (config.tracer == nullptr) {
    config.tracer = config_.tracer;
  }
  if (config.trace_pid == 0) {
    config.trace_pid = pools_.size() + 1;
  }
  auto pool = std::make_unique<Pool>();
  pool->hypervisor = &hypervisor;
  pool->vms = std::move(vms);
  // The incremental scanner gets its own copy of the (already fleet-wired)
  // config: it owns a separate CheckContext so its watch-backed caches and
  // warm sessions persist across cadence ticks independent of `pipeline`.
  core::ModCheckerConfig incremental_config = config;
  pool->context =
      std::make_unique<core::CheckContext>(hypervisor, std::move(config));
  pool->pipeline = std::make_unique<core::CheckPipeline>(*pool->context);
  pool->incremental = std::make_unique<core::IncrementalScanner>(
      hypervisor, std::move(incremental_config));
  pools_.push_back(std::move(pool));
  return pools_.size() - 1;
}

void FleetService::add_sink(std::shared_ptr<SweepSink> sink) {
  MC_CHECK(sink != nullptr, "null sink");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MC_CHECK(!started_, "add_sink must be called before start()");
  }
  sinks_.push_back(std::move(sink));
}

void FleetService::set_module_hook(
    std::function<void(SweepId, std::size_t, const std::string&)> hook) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MC_CHECK(!started_, "set_module_hook must be called before start()");
  }
  module_hook_ = std::move(hook);
}

void FleetService::start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MC_CHECK(!started_, "FleetService::start called twice");
    started_ = true;
  }
  // One dirty tracker per distinct hypervisor (pools may share one);
  // subscribed for the service's whole running life, torn down after the
  // workers join so no callback outlives the service.
  std::vector<const vmm::Hypervisor*> tracked;
  for (const auto& pool : pools_) {
    if (std::find(tracked.begin(), tracked.end(), pool->hypervisor) !=
        tracked.end()) {
      continue;
    }
    tracked.push_back(pool->hypervisor);
    trackers_.push_back(std::make_unique<DirtyTracker>(
        pool->hypervisor->write_watch(),
        metrics_->counter("fleet.dirty_domains_observed"),
        metrics_->counter("fleet.watch_notifications")));
  }
  workers_ = std::make_unique<ThreadPool>(config_.workers);
  worker_futures_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    worker_futures_.push_back(workers_->submit([this] { worker_loop(); }));
  }
}

SweepId FleetService::submit(SweepSpec spec) {
  MC_CHECK(spec.pool_index < pools_.size(), "sweep names an unknown pool");
  MC_CHECK(!spec.modules.empty(), "sweep needs at least one module");
  MC_CHECK(spec.repeat >= 1, "sweep repeat count must be at least 1");

  SweepId id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      return 0;  // drain/stop already began — refuse new work
    }
    id = next_id_++;
  }
  QueuedSweep run;
  run.id = id;
  run.spec = std::move(spec);
  run.due = 0;  // first run is due immediately
  run.run_index = 0;
  if (!queue_.push(std::move(run))) {
    return 0;  // draining / stopped
  }
  submitted_.inc();
  queue_depth_.set(static_cast<std::int64_t>(queue_.pending()));
  return id;
}

bool FleetService::cancel(SweepId id) {
  // The queue's cancelled set is the single source of truth: pending runs
  // are struck here, in-flight runs observe is_cancelled() between module
  // scans, and completed runs refuse to re-enqueue their recurrence.
  const bool struck = queue_.cancel(id);
  if (struck) {
    dropped_pending_.inc();
  }
  return struck;
}

void FleetService::drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  // Wait for the backlog — including finite recurrences re-enqueued by
  // in-flight runs — then shut the queue so the workers see nullopt.
  queue_.wait_idle();
  queue_.close();
  join_workers();
}

void FleetService::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  queue_.close();  // refuse recurrences first, then drop the backlog
  const std::size_t dropped = queue_.clear();
  if (dropped > 0) {
    dropped_pending_.inc(dropped);
  }
  queue_depth_.set(0);
  join_workers();
}

void FleetService::join_workers() {
  if (!workers_) {
    return;
  }
  for (auto& f : worker_futures_) {
    f.get();  // propagate any worker exception
  }
  worker_futures_.clear();
  workers_.reset();   // joins the threads
  trackers_.clear();  // unsubscribes from each hypervisor's WriteWatch
}

FleetService::Stats FleetService::stats() const {
  Stats out;
  out.submitted = submitted_.value();
  out.completed_runs = completed_runs_.value();
  out.cancelled_runs = cancelled_runs_.value();
  out.dropped_pending = dropped_pending_.value();
  out.quarantine_events = quarantine_events_.value();
  out.exhausted_runs = exhausted_runs_.value();
  out.sweeps_skipped_clean = sweeps_skipped_clean_.value();
  out.event_runs = event_runs_.value();
  return out;
}

void FleetService::worker_loop() {
  while (auto run = queue_.pop()) {
    queue_depth_.set(static_cast<std::int64_t>(queue_.pending()));
    sweeps_in_flight_.add(1);
    run_sweep(std::move(*run));
    sweeps_in_flight_.add(-1);
    queue_.done();  // after run_sweep's recurrence push — see wait_idle()
  }
}

void FleetService::run_sweep(QueuedSweep run) {
  Pool& pool = *pools_[run.spec.pool_index];

  telemetry::SpanScope sweep_span =
      telemetry::span(config_.tracer, "sweep", "service",
                      /*process=*/run.spec.pool_index + 1, /*track=*/0);
  sweep_span.arg("name", run.spec.name);
  sweep_span.arg("run", static_cast<std::uint64_t>(run.run_index));

  SweepReport report;
  report.id = run.id;
  report.name = run.spec.name;
  report.pool_index = run.spec.pool_index;
  report.run_index = run.run_index;
  report.due = run.due;

  {
    // One sweep at a time per pool: scans of different pools proceed in
    // parallel, scans of the same pool serialize (shared warm sessions,
    // and the event path's incremental caches).
    std::lock_guard<std::mutex> pool_lock(pool.mutex);
    // audit: holding pool.mutex across the scan body IS the serialization
    // contract — per-pool scans must not interleave; other pools use other
    // mutexes and proceed in parallel.
    if (run.spec.event_driven) {
      // mc-lint: allow(lock-order)
      run_event_locked(pool, run, report, sweep_span);
    } else {
      // mc-lint: allow(lock-order)
      run_full_locked(pool, run, report);
    }
  }
  if (report.cancelled) {
    cancelled_runs_.inc();
  } else {
    completed_runs_.inc();
  }
  quarantine_events_.inc(report.quarantined.size());
  if (report.pool_exhausted) {
    exhausted_runs_.inc();
  }
  sweep_span.arg("findings",
                 static_cast<std::uint64_t>(report.findings.size()));
  if (run.spec.event_driven) {
    sweep_span.arg("skipped_clean",
                   static_cast<std::uint64_t>(report.skipped_clean ? 1 : 0));
  }
  sweep_span.end();  // close before emit so a ChromeTraceSink drains it
  if (config_.emit_telemetry) {
    report.telemetry_json = telemetry::to_json(metrics_->snapshot());
  }
  emit(report);

  // Recurrence: re-enqueue the next run on the sweep's simulated cadence.
  // push() refuses once the queue is closed (drain) or the id cancelled.
  if (!report.cancelled && run.run_index + 1 < run.spec.repeat) {
    QueuedSweep next;
    next.id = run.id;
    next.spec = std::move(run.spec);
    next.due = run.due + next.spec.cadence;
    next.run_index = run.run_index + 1;
    queue_.push(std::move(next));
  }
}

void FleetService::run_full_locked(Pool& pool, const QueuedSweep& run,
                                   SweepReport& report) {
  // VMs quarantined by one module scan sit out the rest of *this run*
  // (re-polling a dead guest per module would just burn retries); the
  // recurrence in run_sweep restarts from the full pool, so a guest that
  // recovers by the next cadence tick rejoins automatically.
  std::vector<vmm::DomainId> active = pool.vms;
  for (const std::string& module : run.spec.modules) {
    if (queue_.is_cancelled(run.id)) {
      report.cancelled = true;
      break;
    }
    if (active.size() < 2) {
      // Cross-comparison needs at least two answering VMs.
      report.pool_exhausted = true;
      break;
    }
    if (module_hook_) {
      module_hook_(run.id, run.run_index, module);
    }
    // audit: holding pool.mutex across the scan IS the serialization
    // contract documented in run_sweep — per-pool scans must not
    // interleave (shared warm sessions); other pools use other mutexes
    // and proceed in parallel.
    // mc-lint: allow(lock-order)
    core::PoolScanReport scan = pool.pipeline->pool_scan(module, active);
    report.wall_time += scan.wall_time;
    report.cpu_times += scan.cpu_times;
    for (const core::PoolVmVerdict& v : scan.verdicts) {
      if (!v.clean && v.total > 0) {
        report.findings.push_back({module, v.vm, v.successes, v.total});
      }
    }
    for (const vmm::DomainId vm : scan.quarantined) {
      report.quarantined.push_back(vm);
      active.erase(std::remove(active.begin(), active.end(), vm),
                   active.end());
    }
    report.scans.push_back(std::move(scan));
  }
}

void FleetService::run_event_locked(Pool& pool, const QueuedSweep& run,
                                    SweepReport& report,
                                    telemetry::SpanScope& span) {
  vmm::WriteWatch& watch = pool.hypervisor->write_watch();
  // Per-domain write generations, snapshotted BEFORE scanning: a write
  // racing the scan makes the next tick's snapshot differ and forces a
  // re-scan — the race is conservatively safe, never a missed change.
  std::map<vmm::DomainId, std::uint64_t> generations;
  for (const vmm::DomainId vm : pool.vms) {
    generations.emplace(vm, watch.domain_write_generation(vm));
  }

  std::size_t dirty_domains = 0;
  {
    // audit: event_mutex_ nests strictly inside pool.mutex (both call
    // sites in this function), and nothing blocks under it.
    // mc-lint: allow(lock-order)
    std::lock_guard<std::mutex> ev_lock(event_mutex_);
    EventState& state = event_states_[run.id];
    if (state.has_report && generations == state.generations) {
      // No write — watched or not — landed on any pool domain since the
      // last completed run, so every extraction, comparison and vote is
      // provably byte-identical: re-emit the previous results unscanned.
      report.scans = state.scans;
      report.findings = state.findings;
      report.skipped_clean = true;
      sweeps_skipped_clean_.inc();
      return;
    }
    for (const auto& [vm, gen] : generations) {
      const auto it = state.generations.find(vm);
      if (!state.has_report || it == state.generations.end() ||
          it->second != gen) {
        ++dirty_domains;
      }
    }
  }
  span.arg("dirty_domains", static_cast<std::uint64_t>(dirty_domains));

  for (const std::string& module : run.spec.modules) {
    if (queue_.is_cancelled(run.id)) {
      report.cancelled = true;
      break;
    }
    if (module_hook_) {
      module_hook_(run.id, run.run_index, module);
    }
    // The incremental scanner keeps the non-faulting throwing contract —
    // no quarantine machinery (see SweepSpec::event_driven).  Clean
    // domains cost an O(1) watch query; dirty modules re-read only their
    // dirty pages.
    // mc-lint: allow(lock-order)
    core::PoolScanReport scan = pool.incremental->scan(module, pool.vms);
    report.wall_time += scan.wall_time;
    report.cpu_times += scan.cpu_times;
    for (const core::PoolVmVerdict& v : scan.verdicts) {
      if (!v.clean && v.total > 0) {
        report.findings.push_back({module, v.vm, v.successes, v.total});
      }
    }
    report.scans.push_back(std::move(scan));
  }
  event_runs_.inc();
  if (!report.cancelled) {
    // audit: same strict nesting as above.
    // mc-lint: allow(lock-order)
    std::lock_guard<std::mutex> ev_lock(event_mutex_);
    EventState& state = event_states_[run.id];
    state.generations = std::move(generations);
    state.scans = report.scans;
    state.findings = report.findings;
    state.has_report = true;
  }
}

void FleetService::emit(const SweepReport& report) {
  for (const auto& sink : sinks_) {
    sink->on_sweep(report);
  }
}

}  // namespace mc::service
