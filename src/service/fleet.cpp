#include "service/fleet.hpp"

#include "util/error.hpp"

namespace mc::service {

namespace {

CoordinatorConfig classic_topology(const FleetConfig& config) {
  MC_CHECK(config.workers >= 1, "FleetService needs at least one worker");
  CoordinatorConfig out;
  out.shards = 1;  // the classic single-queue topology
  out.workers_per_shard = config.workers;
  out.metrics = config.metrics;
  out.tracer = config.tracer;
  out.emit_telemetry = config.emit_telemetry;
  return out;
}

}  // namespace

FleetService::FleetService(FleetConfig config)
    : coordinator_(classic_topology(config)) {}

FleetService::Stats FleetService::stats() const {
  const ShardCoordinator::Stats all = coordinator_.stats();
  Stats out;
  out.submitted = all.submitted;
  out.completed_runs = all.completed_runs;
  out.cancelled_runs = all.cancelled_runs;
  out.dropped_pending = all.dropped_pending;
  out.quarantine_events = all.quarantine_events;
  out.exhausted_runs = all.exhausted_runs;
  out.sweeps_skipped_clean = all.sweeps_skipped_clean;
  out.event_runs = all.event_runs;
  return out;
}

}  // namespace mc::service
