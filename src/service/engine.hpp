// SweepEngine — the shard-independent execution core of the fleet.
//
// The sharded control plane splits the old monolithic FleetService into
// layers; the engine is the bottom one.  It owns everything a run needs
// regardless of which shard's worker executes it: the registered pools
// (each with its own CheckContext/CheckPipeline/IncrementalScanner and a
// per-pool mutex), the report sinks, the module hook, the per-sweep event
// state used by the WriteWatch skip optimization, the fleet-wide
// DirtyTracker subscribers, and the run-level counters.
//
// Because every per-pool warm cache and event state lives here — below the
// shard layer — a sweep's simulated cost depends only on the order of runs
// *within its pool* (serialized by the pool mutex), never on which shard
// popped it.  That is the invariant behind the differential guarantee:
// shards=1 reproduces the classic FleetService byte-for-byte, and a chaos
// re-shard moves work between shards without perturbing any pool timeline.
//
// The engine does not own a queue, workers, or cancellation state — those
// are per-shard concerns.  execute() takes a cancellation probe (backed by
// the owning shard's queue) and returns the run's recurrence, if any, for
// the coordinator to route; it never schedules anything itself.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "modchecker/incremental.hpp"
#include "modchecker/pipeline.hpp"
#include "service/report.hpp"
#include "service/sweep_queue.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"

namespace mc::service {

struct EngineConfig {
  /// Registry backing the run counters and, unless a pool's own config
  /// says otherwise, every pool pipeline (null = process default).
  telemetry::MetricRegistry* metrics = nullptr;
  /// Span recorder shared with every pool pipeline that does not bring its
  /// own; pair it with a ChromeTraceSink for a browsable fleet timeline.
  telemetry::TraceRecorder* tracer = nullptr;
  /// Attach a registry snapshot to every SweepReport ("telemetry" field).
  bool emit_telemetry = false;
};

class SweepEngine {
 public:
  /// Answers "has this sweep been cancelled?" — backed by the owning
  /// shard's queue; consulted between module scans of an in-flight run.
  using CancelProbe = std::function<bool(SweepId)>;

  explicit SweepEngine(EngineConfig config);
  ~SweepEngine();

  SweepEngine(const SweepEngine&) = delete;
  SweepEngine& operator=(const SweepEngine&) = delete;

  /// Registers a pool of VMs on one hypervisor; returns the index
  /// SweepSpec::pool_index refers to.  Not thread-safe; the coordinator
  /// enforces the before-start() discipline.
  std::size_t add_pool(const vmm::Hypervisor& hypervisor,
                       std::vector<vmm::DomainId> vms,
                       core::ModCheckerConfig config = {});

  void add_sink(std::shared_ptr<SweepSink> sink);

  void set_module_hook(
      std::function<void(SweepId, std::size_t, const std::string&)> hook);

  /// Subscribes one DirtyTracker per distinct hypervisor (write-pressure
  /// observability).  Call once when workers spin up.
  void attach_trackers();

  /// Unsubscribes the trackers.  Call after the workers have joined so no
  /// callback outlives the service.
  void detach_trackers();

  /// Outcome of one execute(): the recurrence to route (nullopt ends the
  /// chain) plus the accounting the shard layer needs without re-parsing
  /// the report.
  struct ExecuteResult {
    std::optional<QueuedSweep> next;
    SimNanos wall_time = 0;  // summed simulated scan time of this run
    bool cancelled = false;
  };

  /// Executes one run to completion: scans (full or event-driven), bumps
  /// the run counters, emits the report to every sink, and returns the
  /// recurrence run (due += cadence) for the caller to route — absent
  /// when the chain ends (last run, or cancelled).  Thread-safe: the
  /// per-pool mutex serializes same-pool runs, cross-pool runs proceed in
  /// parallel.
  ExecuteResult execute(QueuedSweep run, const CancelProbe& is_cancelled);

  /// Dirty-prioritization hint for `run` at this instant: the summed
  /// per-domain write-generation advance on the run's pool since the
  /// sweep's last completed run (raw generation sum before the first run
  /// — a never-scanned, written-to pool is maximally urgent).  0 for
  /// non-event-driven sweeps: full sweeps keep their pure FIFO tie-break.
  std::uint64_t dirty_score(const QueuedSweep& run) const;

  std::size_t pool_count() const { return pools_.size(); }

  telemetry::MetricRegistry& metrics() const { return *metrics_; }
  telemetry::TraceRecorder* tracer() const { return config_.tracer; }
  bool emit_telemetry() const { return config_.emit_telemetry; }

  /// Run-level counter snapshot (this engine's own contribution).
  // mc-lint: allow(adhoc-stats)
  struct RunStats {
    std::uint64_t completed_runs = 0;   // runs that finished every module
    std::uint64_t cancelled_runs = 0;   // runs stopped mid-sweep
    /// VM-quarantine observations across all runs (one per VM per run in
    /// which it exhausted its acquire retries).
    std::uint64_t quarantine_events = 0;
    /// Runs cut short because quarantine left fewer than two answering
    /// VMs.
    std::uint64_t exhausted_runs = 0;
    /// Event-driven runs that re-emitted the previous results because the
    /// watch layer proved every pool domain unchanged.
    std::uint64_t sweeps_skipped_clean = 0;
    /// Event-driven runs that actually scanned (incrementally).
    std::uint64_t event_runs = 0;
  };
  RunStats run_stats() const;

 private:
  struct Pool {
    const vmm::Hypervisor* hypervisor;
    std::vector<vmm::DomainId> vms;
    std::unique_ptr<core::CheckContext> context;
    std::unique_ptr<core::CheckPipeline> pipeline;
    /// Event-driven sweeps scan through this instead of `pipeline` — its
    /// per-module caches persist across cadence ticks (guarded by `mutex`
    /// like every other per-pool scan).
    std::unique_ptr<core::IncrementalScanner> incremental;
    std::mutex mutex;  // serializes sweeps targeting this pool
  };

  /// What an event-driven sweep remembers between cadence ticks: the
  /// per-domain write generations observed before its last completed run
  /// and that run's results (re-emitted verbatim on clean ticks).
  struct EventState {
    bool has_report = false;
    std::map<vmm::DomainId, std::uint64_t> generations;
    std::vector<core::PoolScanReport> scans;
    std::vector<SweepFinding> findings;
  };

  /// WriteWatch subscriber counting write activity fleet-wide (telemetry:
  /// "fleet.dirty_domains_observed" / "fleet.watch_notifications"); one per
  /// distinct hypervisor, live between attach and detach.
  class DirtyTracker;

  /// The classic full-scan body (caller holds pool.mutex).
  void run_full_locked(Pool& pool, const QueuedSweep& run,
                       const CancelProbe& is_cancelled, SweepReport& report);
  /// The event-driven body: skip-if-clean via per-domain write
  /// generations, else incremental scan (caller holds pool.mutex).
  void run_event_locked(Pool& pool, const QueuedSweep& run,
                        const CancelProbe& is_cancelled, SweepReport& report,
                        telemetry::SpanScope& span);
  void emit(const SweepReport& report);

  EngineConfig config_;
  telemetry::MetricRegistry* metrics_;  // resolved, never null

  // Atomic registry cells ("service.*" / "fleet.*") for run outcomes.
  telemetry::OwnedCounter completed_runs_;
  telemetry::OwnedCounter cancelled_runs_;
  telemetry::OwnedCounter quarantine_events_;
  telemetry::OwnedCounter exhausted_runs_;
  telemetry::OwnedCounter sweeps_skipped_clean_;
  telemetry::OwnedCounter event_runs_;

  std::vector<std::unique_ptr<Pool>> pools_;
  std::vector<std::unique_ptr<DirtyTracker>> trackers_;
  mutable std::mutex event_mutex_;  // guards event_states_
  std::map<SweepId, EventState> event_states_;
  std::vector<std::shared_ptr<SweepSink>> sinks_;
  std::function<void(SweepId, std::size_t, const std::string&)> module_hook_;
};

}  // namespace mc::service
