// Shard — one worker shard of the fleet control plane.
//
// A shard is the unit the coordinator schedules, rebalances, and (in chaos
// mode) kills: its own SweepQueue, a liveness flag, and the per-shard
// accounting the SLO/bench layers read (completed runs, steals, rescued
// runs, simulated busy time).  The execution state a run touches — pools,
// warm caches, event state — deliberately does NOT live here; it lives in
// the SweepEngine below the shard layer, which is what makes killing a
// shard safe: its queue drains onto the survivors and no per-pool state is
// lost with it.
//
// Telemetry: when the coordinator runs in sharded mode it hands each shard
// a MetricView over the fleet registry ("shard<i>."), so per-shard counts
// are visible by prefix.  In classic mode (the shards=1 FleetService
// facade) the handles stay detached — the registry namespace, and with it
// the emit_telemetry snapshot JSON, is byte-identical to the historical
// single-queue service.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "service/sweep_queue.hpp"
#include "telemetry/view.hpp"

namespace mc::service {

/// Point-in-time accounting of one shard.
// mc-lint: allow(adhoc-stats)
struct ShardStats {
  std::size_t index = 0;
  bool dead = false;
  std::size_t pending = 0;
  std::size_t peak_pending = 0;
  std::uint64_t completed_runs = 0;  // runs executed by this shard's workers
  std::uint64_t stolen_runs = 0;     // runs this shard lifted from siblings
  std::uint64_t rescued_runs = 0;    // runs re-emitted here by a re-shard
  std::uint64_t shed_runs = 0;       // admission decisions that shed a tick
  std::uint64_t overflow_runs = 0;   // unsheddable admissions past capacity
  SimNanos sim_busy = 0;             // summed simulated scan time executed
};

class Shard {
 public:
  /// `metrics` may be null (classic mode): all telemetry handles stay
  /// detached and the registry namespace is untouched.
  Shard(std::size_t index, telemetry::MetricRegistry* metrics)
      : index_(index) {
    if (metrics != nullptr) {
      telemetry::MetricView view(*metrics,
                                 "shard" + std::to_string(index) + ".");
      completed_counter_ = view.owned_counter("completed_runs");
      stolen_counter_ = view.owned_counter("stolen_runs");
      rescued_counter_ = view.owned_counter("rescued_runs");
      depth_gauge_ = view.gauge("queue_depth");
    }
  }

  std::size_t index() const { return index_; }
  SweepQueue& queue() { return queue_; }
  const SweepQueue& queue() const { return queue_; }

  bool dead() const { return dead_.load(std::memory_order_acquire); }
  void kill() { dead_.store(true, std::memory_order_release); }

  /// A run executed by this shard's workers finished (`wall` = its summed
  /// simulated scan time; `stolen` = it came off a sibling's queue).
  void record_run(SimNanos wall, bool stolen) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    sim_busy_.fetch_add(static_cast<std::uint64_t>(wall),
                        std::memory_order_relaxed);
    completed_counter_.inc();
    if (stolen) {
      stolen_.fetch_add(1, std::memory_order_relaxed);
      stolen_counter_.inc();
    }
  }

  /// A run rescued from a dead shard was re-emitted onto this queue.
  void record_rescue() {
    rescued_.fetch_add(1, std::memory_order_relaxed);
    rescued_counter_.inc();
  }

  void record_shed() { shed_.fetch_add(1, std::memory_order_relaxed); }
  void record_overflow() { overflow_.fetch_add(1, std::memory_order_relaxed); }

  /// Refreshes the per-shard depth gauge (no-op in classic mode).
  void publish_queue_depth() {
    depth_gauge_.set(static_cast<std::int64_t>(queue_.pending()));
  }

  std::uint64_t completed_runs() const {
    return completed_.load(std::memory_order_relaxed);
  }
  SimNanos sim_busy() const {
    return static_cast<SimNanos>(sim_busy_.load(std::memory_order_relaxed));
  }

  ShardStats stats() const {
    ShardStats out;
    out.index = index_;
    out.dead = dead();
    out.pending = queue_.pending();
    out.peak_pending = queue_.peak_pending();
    out.completed_runs = completed_.load(std::memory_order_relaxed);
    out.stolen_runs = stolen_.load(std::memory_order_relaxed);
    out.rescued_runs = rescued_.load(std::memory_order_relaxed);
    out.shed_runs = shed_.load(std::memory_order_relaxed);
    out.overflow_runs = overflow_.load(std::memory_order_relaxed);
    out.sim_busy = sim_busy();
    return out;
  }

 private:
  std::size_t index_;
  SweepQueue queue_;
  std::atomic<bool> dead_{false};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> stolen_{0};
  std::atomic<std::uint64_t> rescued_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> sim_busy_{0};
  telemetry::OwnedCounter completed_counter_;  // "shard<i>.completed_runs"
  telemetry::OwnedCounter stolen_counter_;     // "shard<i>.stolen_runs"
  telemetry::OwnedCounter rescued_counter_;    // "shard<i>.rescued_runs"
  telemetry::Gauge depth_gauge_;               // "shard<i>.queue_depth"
};

}  // namespace mc::service
