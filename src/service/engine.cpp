#include "service/engine.hpp"

#include <algorithm>
#include <atomic>
#include <set>
#include <utility>

#include "util/error.hpp"
#include "vmm/write_watch.hpp"

namespace mc::service {

// The fleet's ear on the WriteWatch notification surface.  The skip
// decision itself rests on per-domain write generations (see
// run_event_locked) — the tracker is the observability half: it counts
// distinct domains written and clean->dirty watch edges while the service
// runs, so an operator can see write pressure without any sweep running.
// Callbacks arrive under the WriteWatch lock (possibly from guest-writer
// threads) and only touch the tracker's own state.
class SweepEngine::DirtyTracker : public vmm::WriteWatch::Subscriber {
 public:
  DirtyTracker(vmm::WriteWatch& watch, telemetry::Counter dirty_domains,
               telemetry::Counter watch_notifications)
      : watch_(&watch),
        dirty_domains_(dirty_domains),
        watch_notifications_(watch_notifications) {
    watch_->subscribe(this);
  }

  ~DirtyTracker() override { watch_->unsubscribe(this); }

  void on_domain_write(vmm::DomainId domain) override {
    write_events_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mutex_);
    if (seen_.insert(domain).second) {
      dirty_domains_.inc();
    }
  }

  void on_watch_dirty(vmm::DomainId /*domain*/,
                      vmm::WriteWatch::WatchId /*watch*/) override {
    watch_notifications_.inc();
  }

  /// Total on_domain_write callbacks observed (monotonic).
  std::uint64_t write_events() const {
    return write_events_.load(std::memory_order_relaxed);
  }

 private:
  vmm::WriteWatch* watch_;
  telemetry::Counter dirty_domains_;
  telemetry::Counter watch_notifications_;
  std::atomic<std::uint64_t> write_events_{0};
  std::mutex mutex_;
  std::set<vmm::DomainId> seen_;
};

SweepEngine::SweepEngine(EngineConfig config)
    : config_(std::move(config)),
      metrics_(&telemetry::resolve(config_.metrics)),
      completed_runs_(metrics_->owned_counter("service.completed_runs")),
      cancelled_runs_(metrics_->owned_counter("service.cancelled_runs")),
      quarantine_events_(metrics_->owned_counter("service.quarantine_events")),
      exhausted_runs_(metrics_->owned_counter("service.exhausted_runs")),
      sweeps_skipped_clean_(
          metrics_->owned_counter("fleet.sweeps_skipped_clean")),
      event_runs_(metrics_->owned_counter("fleet.event_runs")) {}

SweepEngine::~SweepEngine() = default;

std::size_t SweepEngine::add_pool(const vmm::Hypervisor& hypervisor,
                                  std::vector<vmm::DomainId> vms,
                                  core::ModCheckerConfig config) {
  MC_CHECK(vms.size() >= 2, "a sweep pool needs at least two VMs");
  // Pools inherit the fleet's telemetry wiring unless their config brought
  // its own; trace_pid defaults to pool index + 1 so each pool renders as
  // a separate process row in chrome://tracing.
  if (config.metrics == nullptr) {
    config.metrics = metrics_;
  }
  if (config.tracer == nullptr) {
    config.tracer = config_.tracer;
  }
  if (config.trace_pid == 0) {
    config.trace_pid = pools_.size() + 1;
  }
  auto pool = std::make_unique<Pool>();
  pool->hypervisor = &hypervisor;
  pool->vms = std::move(vms);
  // The incremental scanner gets its own copy of the (already fleet-wired)
  // config: it owns a separate CheckContext so its watch-backed caches and
  // warm sessions persist across cadence ticks independent of `pipeline`.
  core::ModCheckerConfig incremental_config = config;
  pool->context =
      std::make_unique<core::CheckContext>(hypervisor, std::move(config));
  pool->pipeline = std::make_unique<core::CheckPipeline>(*pool->context);
  pool->incremental = std::make_unique<core::IncrementalScanner>(
      hypervisor, std::move(incremental_config));
  pools_.push_back(std::move(pool));
  return pools_.size() - 1;
}

void SweepEngine::add_sink(std::shared_ptr<SweepSink> sink) {
  MC_CHECK(sink != nullptr, "null sink");
  sinks_.push_back(std::move(sink));
}

void SweepEngine::set_module_hook(
    std::function<void(SweepId, std::size_t, const std::string&)> hook) {
  module_hook_ = std::move(hook);
}

void SweepEngine::attach_trackers() {
  // One dirty tracker per distinct hypervisor (pools may share one);
  // subscribed for the service's whole running life, torn down after the
  // workers join so no callback outlives the service.
  std::vector<const vmm::Hypervisor*> tracked;
  for (const auto& pool : pools_) {
    if (std::find(tracked.begin(), tracked.end(), pool->hypervisor) !=
        tracked.end()) {
      continue;
    }
    tracked.push_back(pool->hypervisor);
    trackers_.push_back(std::make_unique<DirtyTracker>(
        pool->hypervisor->write_watch(),
        metrics_->counter("fleet.dirty_domains_observed"),
        metrics_->counter("fleet.watch_notifications")));
  }
}

void SweepEngine::detach_trackers() { trackers_.clear(); }

std::uint64_t SweepEngine::dirty_score(const QueuedSweep& run) const {
  if (!run.spec.event_driven || run.spec.pool_index >= pools_.size()) {
    return 0;
  }
  const Pool& pool = *pools_[run.spec.pool_index];
  vmm::WriteWatch& watch = pool.hypervisor->write_watch();
  // audit: event_mutex_ is held across O(pool) map lookups and watch
  // generation reads only — nothing blocks, and no pool.mutex is taken.
  // mc-lint: allow(lock-order)
  std::lock_guard<std::mutex> ev_lock(event_mutex_);
  const auto state_it = event_states_.find(run.id);
  std::uint64_t score = 0;
  for (const vmm::DomainId vm : pool.vms) {
    const std::uint64_t gen = watch.domain_write_generation(vm);
    if (state_it != event_states_.end() && state_it->second.has_report) {
      const auto g = state_it->second.generations.find(vm);
      if (g != state_it->second.generations.end()) {
        score += gen - std::min(gen, g->second);
        continue;
      }
    }
    score += gen;  // never scanned: every past write counts as pressure
  }
  return score;
}

SweepEngine::ExecuteResult SweepEngine::execute(
    QueuedSweep run, const CancelProbe& is_cancelled) {
  Pool& pool = *pools_[run.spec.pool_index];

  telemetry::SpanScope sweep_span =
      telemetry::span(config_.tracer, "sweep", "service",
                      /*process=*/run.spec.pool_index + 1, /*track=*/0);
  sweep_span.arg("name", run.spec.name);
  sweep_span.arg("run", static_cast<std::uint64_t>(run.run_index));

  SweepReport report;
  report.id = run.id;
  report.name = run.spec.name;
  report.pool_index = run.spec.pool_index;
  report.run_index = run.run_index;
  report.due = run.due;
  report.rescheduled_from_shard = run.rescheduled_from;

  {
    // One sweep at a time per pool: scans of different pools proceed in
    // parallel, scans of the same pool serialize (shared warm sessions,
    // and the event path's incremental caches).
    std::lock_guard<std::mutex> pool_lock(pool.mutex);
    // audit: holding pool.mutex across the scan body IS the serialization
    // contract — per-pool scans must not interleave; other pools use other
    // mutexes and proceed in parallel.
    if (run.spec.event_driven) {
      // mc-lint: allow(lock-order)
      run_event_locked(pool, run, is_cancelled, report, sweep_span);
    } else {
      // mc-lint: allow(lock-order)
      run_full_locked(pool, run, is_cancelled, report);
    }
  }
  if (report.cancelled) {
    cancelled_runs_.inc();
  } else {
    completed_runs_.inc();
  }
  quarantine_events_.inc(report.quarantined.size());
  if (report.pool_exhausted) {
    exhausted_runs_.inc();
  }
  sweep_span.arg("findings",
                 static_cast<std::uint64_t>(report.findings.size()));
  if (run.spec.event_driven) {
    sweep_span.arg("skipped_clean",
                   static_cast<std::uint64_t>(report.skipped_clean ? 1 : 0));
  }
  sweep_span.end();  // close before emit so a ChromeTraceSink drains it
  if (config_.emit_telemetry) {
    report.telemetry_json = telemetry::to_json(metrics_->snapshot());
  }
  emit(report);

  ExecuteResult result;
  result.wall_time = report.wall_time;
  result.cancelled = report.cancelled;
  // Recurrence: hand the next run on the sweep's simulated cadence back to
  // the caller for routing (the coordinator picks its shard and stamps the
  // dirty hint); the chain ends on cancellation or the last repeat.
  if (!report.cancelled && run.run_index + 1 < run.spec.repeat) {
    QueuedSweep next;
    next.id = run.id;
    next.spec = std::move(run.spec);
    next.due = run.due + next.spec.cadence;
    next.run_index = run.run_index + 1;
    result.next = std::move(next);
  }
  return result;
}

void SweepEngine::run_full_locked(Pool& pool, const QueuedSweep& run,
                                  const CancelProbe& is_cancelled,
                                  SweepReport& report) {
  // VMs quarantined by one module scan sit out the rest of *this run*
  // (re-polling a dead guest per module would just burn retries); the
  // recurrence in execute restarts from the full pool, so a guest that
  // recovers by the next cadence tick rejoins automatically.
  std::vector<vmm::DomainId> active = pool.vms;
  for (const std::string& module : run.spec.modules) {
    if (is_cancelled(run.id)) {
      report.cancelled = true;
      break;
    }
    if (active.size() < 2) {
      // Cross-comparison needs at least two answering VMs.
      report.pool_exhausted = true;
      break;
    }
    if (module_hook_) {
      module_hook_(run.id, run.run_index, module);
    }
    // audit: holding pool.mutex across the scan IS the serialization
    // contract documented in execute — per-pool scans must not
    // interleave (shared warm sessions); other pools use other mutexes
    // and proceed in parallel.
    // mc-lint: allow(lock-order)
    core::PoolScanReport scan = pool.pipeline->pool_scan(module, active);
    report.wall_time += scan.wall_time;
    report.cpu_times += scan.cpu_times;
    for (const core::PoolVmVerdict& v : scan.verdicts) {
      if (!v.clean && v.total > 0) {
        report.findings.push_back({module, v.vm, v.successes, v.total});
      }
    }
    for (const vmm::DomainId vm : scan.quarantined) {
      report.quarantined.push_back(vm);
      active.erase(std::remove(active.begin(), active.end(), vm),
                   active.end());
    }
    report.scans.push_back(std::move(scan));
  }
}

void SweepEngine::run_event_locked(Pool& pool, const QueuedSweep& run,
                                   const CancelProbe& is_cancelled,
                                   SweepReport& report,
                                   telemetry::SpanScope& span) {
  vmm::WriteWatch& watch = pool.hypervisor->write_watch();
  // Per-domain write generations, snapshotted BEFORE scanning: a write
  // racing the scan makes the next tick's snapshot differ and forces a
  // re-scan — the race is conservatively safe, never a missed change.
  std::map<vmm::DomainId, std::uint64_t> generations;
  for (const vmm::DomainId vm : pool.vms) {
    generations.emplace(vm, watch.domain_write_generation(vm));
  }

  std::size_t dirty_domains = 0;
  {
    // audit: event_mutex_ nests strictly inside pool.mutex (both call
    // sites in this function), and nothing blocks under it.
    // mc-lint: allow(lock-order)
    std::lock_guard<std::mutex> ev_lock(event_mutex_);
    EventState& state = event_states_[run.id];
    if (state.has_report && generations == state.generations) {
      // No write — watched or not — landed on any pool domain since the
      // last completed run, so every extraction, comparison and vote is
      // provably byte-identical: re-emit the previous results unscanned.
      report.scans = state.scans;
      report.findings = state.findings;
      report.skipped_clean = true;
      sweeps_skipped_clean_.inc();
      return;
    }
    for (const auto& [vm, gen] : generations) {
      const auto it = state.generations.find(vm);
      if (!state.has_report || it == state.generations.end() ||
          it->second != gen) {
        ++dirty_domains;
      }
    }
  }
  span.arg("dirty_domains", static_cast<std::uint64_t>(dirty_domains));

  for (const std::string& module : run.spec.modules) {
    if (is_cancelled(run.id)) {
      report.cancelled = true;
      break;
    }
    if (module_hook_) {
      module_hook_(run.id, run.run_index, module);
    }
    // The incremental scanner keeps the non-faulting throwing contract —
    // no quarantine machinery (see SweepSpec::event_driven).  Clean
    // domains cost an O(1) watch query; dirty modules re-read only their
    // dirty pages.
    // mc-lint: allow(lock-order)
    core::PoolScanReport scan = pool.incremental->scan(module, pool.vms);
    report.wall_time += scan.wall_time;
    report.cpu_times += scan.cpu_times;
    for (const core::PoolVmVerdict& v : scan.verdicts) {
      if (!v.clean && v.total > 0) {
        report.findings.push_back({module, v.vm, v.successes, v.total});
      }
    }
    report.scans.push_back(std::move(scan));
  }
  event_runs_.inc();
  if (!report.cancelled) {
    // audit: same strict nesting as above.
    // mc-lint: allow(lock-order)
    std::lock_guard<std::mutex> ev_lock(event_mutex_);
    EventState& state = event_states_[run.id];
    state.generations = std::move(generations);
    state.scans = report.scans;
    state.findings = report.findings;
    state.has_report = true;
  }
}

void SweepEngine::emit(const SweepReport& report) {
  for (const auto& sink : sinks_) {
    sink->on_sweep(report);
  }
}

SweepEngine::RunStats SweepEngine::run_stats() const {
  RunStats out;
  out.completed_runs = completed_runs_.value();
  out.cancelled_runs = cancelled_runs_.value();
  out.quarantine_events = quarantine_events_.value();
  out.exhausted_runs = exhausted_runs_.value();
  out.sweeps_skipped_clean = sweeps_skipped_clean_.value();
  out.event_runs = event_runs_.value();
  return out;
}

}  // namespace mc::service
