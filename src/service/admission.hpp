// Admission control policy for the sharded fleet control plane.
//
// A production checker fleet is permanently oversubscribed: recurring
// monitors are cheap to submit and expensive to run, so without a policy
// the per-shard queues grow without bound and every sweep's queue age —
// how far behind its simulated due time it starts — grows with them.  The
// coordinator therefore runs every push through an admission decision
// against the target shard's bounded queue:
//
//   * under capacity          → admit;
//   * full, incoming matters  → evict the lowest-priority recurring tick
//                               (never a one-shot or alerted sweep) and
//                               admit in its place;
//   * full, incoming is the   → shed the incoming tick itself (its
//     cheapest thing queued     recurrence chain ends; the shed counter is
//                               the operator's saturation signal);
//   * full of unsheddable     → admit anyway and count the overflow —
//     work                      one-shot and alerted sweeps are NEVER
//                               dropped, the bound bends instead.
//
// Shedding a recurring tick drops the remainder of its chain: recurrences
// are pushed on completion of the previous run, so an evicted run has no
// successor.  That is the intended semantics — a saturated fleet stops
// servicing its cheapest monitors first and says so, instead of stretching
// every sweep's latency until the SLO is fiction.
//
// SLO accounting rides the simulated timeline (no host clocks): the
// coordinator's frontier is the maximum due time of any completed run, and
// a run popped when `frontier - due > slo_lag` counts as a deadline miss.
// The same lag drives rebalancing: an idle shard steals queued runs from
// any shard whose oldest pending run lags more than `steal_lag`.
#pragma once

#include <cstddef>

#include "util/sim_clock.hpp"

namespace mc::service {

struct AdmissionPolicy {
  /// Per-shard pending-run bound; 0 = unbounded (no shedding, the classic
  /// FleetService behavior).
  std::size_t queue_capacity = 0;
  /// A run starting more than this far behind the fleet's simulated
  /// frontier counts as a deadline miss ("coordinator.deadline_misses").
  SimNanos slo_lag = sim_ms(500);
  /// Idle shards steal queued runs from shards whose oldest pending run
  /// lags the frontier by more than steal_lag (0 = steal whenever another
  /// shard has queued work at all).
  bool work_stealing = true;
  SimNanos steal_lag = 0;
};

/// Outcome of one admission decision (SweepQueue::admit).
enum class AdmitResult {
  kAdmitted,         // queued, under capacity
  kAdmittedEvicted,  // queued; a lower-priority recurring tick was shed
  kOverflow,         // queued past capacity (unsheddable backlog)
  kShed,             // the incoming recurring tick itself was shed
  kRefused,          // queue closed or sweep cancelled (classic push refusal)
};

}  // namespace mc::service
