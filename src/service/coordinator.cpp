#include "service/coordinator.hpp"

#include <utility>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace mc::service {

ShardCoordinator::ShardCoordinator(CoordinatorConfig config)
    : config_(std::move(config)),
      engine_(EngineConfig{config_.metrics, config_.tracer,
                           config_.emit_telemetry}),
      submitted_(engine_.metrics().owned_counter("service.submitted")),
      dropped_pending_(
          engine_.metrics().owned_counter("service.dropped_pending")),
      queue_depth_(engine_.metrics().gauge("service.queue_depth")),
      sweeps_in_flight_(engine_.metrics().gauge("service.sweeps_in_flight")),
      ring_(config_.virtual_nodes) {
  MC_CHECK(config_.shards >= 1, "coordinator needs at least one shard");
  MC_CHECK(config_.workers_per_shard >= 1,
           "coordinator needs at least one worker per shard");
  if (config_.chaos.enabled) {
    MC_CHECK(config_.shards >= 2,
             "chaos mode needs at least two shards (survivors inherit the "
             "dead shard's backlog)");
  }
  // The coordinator.* and shard<i>.* names exist only in sharded mode:
  // a classic shards=1 run keeps the historical registry namespace (and
  // with it the emit_telemetry snapshot JSON) byte-identical.
  if (sharded_mode()) {
    telemetry::MetricRegistry& m = engine_.metrics();
    steals_ = m.owned_counter("coordinator.steals");
    load_shed_ = m.owned_counter("coordinator.load_shed");
    overflow_ = m.owned_counter("coordinator.overflow");
    reshards_ = m.owned_counter("coordinator.reshards");
    rescheduled_ = m.owned_counter("coordinator.rescheduled");
    deadline_misses_ = m.owned_counter("coordinator.deadline_misses");
  }
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(
        s, sharded_mode() ? &engine_.metrics() : nullptr));
    ring_.add_node(s);
  }
}

ShardCoordinator::~ShardCoordinator() { stop(); }

bool ShardCoordinator::sharded_mode() const {
  return config_.shards > 1 || config_.admission.queue_capacity > 0 ||
         config_.chaos.enabled;
}

std::size_t ShardCoordinator::add_pool(const vmm::Hypervisor& hypervisor,
                                       std::vector<vmm::DomainId> vms,
                                       core::ModCheckerConfig config) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MC_CHECK(!started_, "add_pool must be called before start()");
  }
  return engine_.add_pool(hypervisor, std::move(vms), std::move(config));
}

void ShardCoordinator::add_sink(std::shared_ptr<SweepSink> sink) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MC_CHECK(!started_, "add_sink must be called before start()");
  }
  engine_.add_sink(std::move(sink));
}

void ShardCoordinator::set_module_hook(
    std::function<void(SweepId, std::size_t, const std::string&)> hook) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MC_CHECK(!started_, "set_module_hook must be called before start()");
  }
  engine_.set_module_hook(std::move(hook));
}

void ShardCoordinator::start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MC_CHECK(!started_, "ShardCoordinator::start called twice");
    started_ = true;
  }
  engine_.attach_trackers();
  if (config_.chaos.enabled) {
    // Deterministic victim selection: the seed fixes which shard dies, the
    // completion counter (not wall time) fixes when — two runs with the
    // same seed and submissions replay identically.
    Xoshiro256 rng(config_.chaos.seed);
    chaos_victim_ = static_cast<std::size_t>(rng.below(config_.shards));
  }
  // One ThreadPool partition per shard: shard s's workers drain only
  // partition s, so one shard's backlog never starves another's workers.
  workers_ = std::make_unique<ThreadPool>(config_.shards,
                                          config_.workers_per_shard);
  worker_futures_.reserve(config_.shards * config_.workers_per_shard);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    for (std::size_t i = 0; i < config_.workers_per_shard; ++i) {
      worker_futures_.push_back(
          workers_->submit_to(s, [this, s] { worker_loop(s); }));
    }
  }
}

SweepId ShardCoordinator::submit(SweepSpec spec) {
  MC_CHECK(spec.pool_index < engine_.pool_count(),
           "sweep names an unknown pool");
  MC_CHECK(!spec.modules.empty(), "sweep needs at least one module");
  MC_CHECK(spec.repeat >= 1, "sweep repeat count must be at least 1");

  SweepId id;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (draining_) {
      return 0;  // drain/stop already began — refuse new work
    }
    id = next_id_++;
  }
  QueuedSweep run;
  run.id = id;
  run.spec = std::move(spec);
  run.due = 0;  // first run is due immediately
  run.run_index = 0;
  const AdmitResult result = route(std::move(run));
  if (result == AdmitResult::kRefused || result == AdmitResult::kShed) {
    return 0;  // draining / stopped, or shed at the door
  }
  submitted_.inc();
  queue_depth_.set(static_cast<std::int64_t>(total_pending()));
  return id;
}

AdmitResult ShardCoordinator::route(QueuedSweep run, std::size_t* routed_to) {
  // Dirty-prioritization hint, stamped at routing time: among equal
  // (priority, due) event-driven runs the shard pops the one whose pool
  // took the most writes first.  Full sweeps score 0 and keep pure FIFO.
  run.dirty_hint = engine_.dirty_score(run);
  for (;;) {
    std::size_t target;
    {
      std::lock_guard<std::mutex> ring_lock(ring_mutex_);
      MC_CHECK(!ring_.empty(), "no live shards on the routing ring");
      target = ring_.owner_of_index("pool", run.spec.pool_index);
    }
    Shard& shard = *shards_[target];
    std::optional<QueuedSweep> evicted;
    const AdmitResult result = shard.queue().admit(
        run, config_.admission.queue_capacity, &evicted);
    if (result == AdmitResult::kRefused && shard.dead()) {
      // The shard died between the ring read and the push (its queue
      // closed mid-kill); the ring no longer lists it — re-route to a
      // survivor.  Nothing is lost: the run is still in our hands.
      continue;
    }
    switch (result) {
      case AdmitResult::kAdmittedEvicted:
        // A queued recurring tick yielded its slot; its chain ends here.
        load_shed_.inc();
        shard.record_shed();
        break;
      case AdmitResult::kShed:
        load_shed_.inc();
        shard.record_shed();
        break;
      case AdmitResult::kOverflow:
        overflow_.inc();
        shard.record_overflow();
        break;
      default:
        break;
    }
    if (result != AdmitResult::kRefused && result != AdmitResult::kShed) {
      shard.publish_queue_depth();
      notify_workers();
    }
    if (routed_to != nullptr) {
      *routed_to = target;
    }
    return result;
  }
}

bool ShardCoordinator::cancel(SweepId id) {
  // Every shard's cancelled set learns the id: pending runs are struck
  // wherever they sit, in-flight runs observe is_cancelled_anywhere()
  // between module scans, and recurrences are refused on every queue.
  bool struck = false;
  for (const auto& shard : shards_) {
    struck = shard->queue().cancel(id) || struck;
  }
  if (struck) {
    dropped_pending_.inc();
  }
  return struck;
}

bool ShardCoordinator::is_cancelled_anywhere(SweepId id) const {
  for (const auto& shard : shards_) {
    if (shard->queue().is_cancelled(id)) {
      return true;
    }
  }
  return false;
}

void ShardCoordinator::drain() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  // Fixpoint over the shards: a recurrence finishing on shard A may route
  // its next run to shard B after B's wait_idle returned, so one pass is
  // not enough — repeat until every queue samples idle after a full pass.
  // Finite repeat chains guarantee termination.
  for (;;) {
    for (const auto& shard : shards_) {
      shard->queue().wait_idle();
    }
    bool all_idle = true;
    for (const auto& shard : shards_) {
      all_idle = all_idle && shard->queue().idle();
    }
    if (all_idle) {
      break;
    }
  }
  for (const auto& shard : shards_) {
    shard->queue().close();
  }
  notify_workers();
  join_workers();
}

void ShardCoordinator::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  std::size_t dropped = 0;
  for (const auto& shard : shards_) {
    shard->queue().close();  // refuse recurrences first, then drop backlog
    dropped += shard->queue().clear();
  }
  if (dropped > 0) {
    dropped_pending_.inc(dropped);
  }
  queue_depth_.set(0);
  notify_workers();
  join_workers();
}

void ShardCoordinator::join_workers() {
  if (!workers_) {
    return;
  }
  for (auto& f : worker_futures_) {
    f.get();  // propagate any worker exception
  }
  worker_futures_.clear();
  workers_.reset();           // joins the threads
  engine_.detach_trackers();  // unsubscribes from each WriteWatch
}

void ShardCoordinator::notify_workers() {
  // Lock-then-notify: a worker between its last try_pop and its wait holds
  // wake_mutex_ for the predicate check, so acquiring it here orders this
  // notification after that check — the wakeup cannot be lost.
  { std::lock_guard<std::mutex> lock(wake_mutex_); }
  wake_cv_.notify_all();
}

std::optional<std::size_t> ShardCoordinator::pick_steal_victim(
    std::size_t thief) const {
  if (!config_.admission.work_stealing || shards_.size() < 2) {
    return std::nullopt;
  }
  const SimNanos front = frontier();
  std::optional<std::size_t> best;
  SimNanos best_due = 0;
  for (const auto& shard : shards_) {
    if (shard->index() == thief || shard->dead()) {
      continue;
    }
    const std::optional<SimNanos> oldest = shard->queue().min_due();
    if (!oldest) {
      continue;
    }
    if (config_.admission.steal_lag > 0 &&
        !(front > *oldest && front - *oldest > config_.admission.steal_lag)) {
      continue;  // the sibling's backlog is not (yet) lagging enough
    }
    if (!best || *oldest < best_due) {
      best = shard->index();
      best_due = *oldest;
    }
  }
  return best;
}

void ShardCoordinator::kill_shard(std::size_t victim) {
  Shard& shard = *shards_[victim];
  {
    // Off the ring first: every route() from here on targets survivors.
    std::lock_guard<std::mutex> ring_lock(ring_mutex_);
    ring_.remove_node(victim);
  }
  shard.kill();           // its workers exit at their next loop iteration
  shard.queue().close();  // a racing push sees kRefused + dead → re-routes
  std::vector<QueuedSweep> orphans = shard.queue().drain_pending();
  reshards_.inc();
  // Re-emit the dead shard's backlog onto the survivors, flagged with its
  // provenance.  No sweep is lost: anything pending moved here, anything
  // in flight finishes on the dying worker, and recurrences route through
  // the already-updated ring.
  for (QueuedSweep& orphan : orphans) {
    orphan.rescheduled_from = victim;
    rescheduled_.inc();
    std::size_t target = kNoShard;
    route(std::move(orphan), &target);
    if (target != kNoShard) {
      shards_[target]->record_rescue();
    }
  }
  shard.publish_queue_depth();
  notify_workers();
}

void ShardCoordinator::worker_loop(std::size_t shard_index) {
  Shard& self = *shards_[shard_index];
  for (;;) {
    if (self.dead()) {
      return;
    }
    std::size_t owner_index = shard_index;
    std::optional<QueuedSweep> run = self.queue().try_pop();
    if (!run) {
      if (const std::optional<std::size_t> victim =
              pick_steal_victim(shard_index)) {
        run = shards_[*victim]->queue().try_pop();
        if (run) {
          owner_index = *victim;
        }
      }
    }
    if (!run) {
      const auto all_drained = [&] {
        for (const auto& shard : shards_) {
          if (!shard->queue().closed() || shard->queue().pending() > 0) {
            return false;
          }
        }
        return true;
      };
      std::unique_lock<std::mutex> lock(wake_mutex_);
      wake_cv_.wait(lock, [&] {
        return self.dead() || self.queue().pending() > 0 ||
               pick_steal_victim(shard_index).has_value() || all_drained();
      });
      if (self.dead() || all_drained()) {
        return;
      }
      continue;
    }

    Shard& owner = *shards_[owner_index];
    const bool stolen = owner_index != shard_index;
    if (stolen) {
      steals_.inc();
    }
    queue_depth_.set(static_cast<std::int64_t>(total_pending()));
    owner.publish_queue_depth();
    sweeps_in_flight_.add(1);
    // SLO: how far behind the fleet's simulated frontier does this run
    // start?  (The frontier only moves forward, so the lag is a lower
    // bound on how stale the run already is.)
    const SimNanos due = run->due;
    const SimNanos front = frontier();
    if (front > due && front - due > config_.admission.slo_lag) {
      deadline_misses_.inc();
    }
    SweepEngine::ExecuteResult result = engine_.execute(
        std::move(*run),
        [this](SweepId id) { return is_cancelled_anywhere(id); });
    self.record_run(result.wall_time, stolen);
    // frontier = max(frontier, due): CAS loop, relaxed is fine (the value
    // is monotonic and advisory).
    std::uint64_t seen = frontier_.load(std::memory_order_relaxed);
    while (seen < due && !frontier_.compare_exchange_weak(
                             seen, due, std::memory_order_relaxed)) {
    }
    if (result.next) {
      route(std::move(*result.next));
    }
    sweeps_in_flight_.add(-1);
    owner.queue().done();  // after the recurrence route — see wait_idle()

    // Chaos: the victim kills itself after its Nth completed run — a
    // deterministic, replayable point in the schedule.
    if (config_.chaos.enabled && shard_index == chaos_victim_ &&
        !chaos_fired_.load(std::memory_order_relaxed) &&
        self.completed_runs() >= config_.chaos.kill_after_completions) {
      if (!chaos_fired_.exchange(true, std::memory_order_acq_rel)) {
        kill_shard(shard_index);
      }
    }
  }
}

std::size_t ShardCoordinator::total_pending() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->queue().pending();
  }
  return total;
}

std::size_t ShardCoordinator::pending_sweeps() const {
  return total_pending();
}

std::size_t ShardCoordinator::live_shards() const {
  std::size_t live = 0;
  for (const auto& shard : shards_) {
    if (!shard->dead()) {
      ++live;
    }
  }
  return live;
}

std::size_t ShardCoordinator::shard_of(std::size_t pool_index) const {
  std::lock_guard<std::mutex> ring_lock(ring_mutex_);
  MC_CHECK(!ring_.empty(), "no live shards on the routing ring");
  return ring_.owner_of_index("pool", pool_index);
}

ShardCoordinator::Stats ShardCoordinator::stats() const {
  const SweepEngine::RunStats runs = engine_.run_stats();
  Stats out;
  out.submitted = submitted_.value();
  out.completed_runs = runs.completed_runs;
  out.cancelled_runs = runs.cancelled_runs;
  out.dropped_pending = dropped_pending_.value();
  out.quarantine_events = runs.quarantine_events;
  out.exhausted_runs = runs.exhausted_runs;
  out.sweeps_skipped_clean = runs.sweeps_skipped_clean;
  out.event_runs = runs.event_runs;
  out.steals = steals_.value();
  out.load_shed = load_shed_.value();
  out.overflow = overflow_.value();
  out.reshards = reshards_.value();
  out.rescheduled = rescheduled_.value();
  out.deadline_misses = deadline_misses_.value();
  return out;
}

std::vector<ShardStats> ShardCoordinator::shard_stats() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    out.push_back(shard->stats());
  }
  return out;
}

}  // namespace mc::service
