#include "service/report.hpp"

#include <sstream>

#include "modchecker/report_json.hpp"
#include "util/error.hpp"

namespace mc::service {

// ---- SweepReport JSON ------------------------------------------------------

std::string to_json(const SweepReport& report) {
  std::ostringstream os;
  os << "{\"sweep\":\"" << core::json_escape(report.name) << "\""
     << ",\"id\":" << report.id << ",\"pool\":" << report.pool_index
     << ",\"run\":" << report.run_index << ",\"due_ns\":" << report.due
     << ",\"cancelled\":" << (report.cancelled ? "true" : "false")
     << ",\"findings\":[";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const SweepFinding& f = report.findings[i];
    os << (i == 0 ? "" : ",") << "{\"module\":\""
       << core::json_escape(f.module) << "\",\"vm\":" << f.vm
       << ",\"successes\":" << f.successes << ",\"total\":" << f.total
       << "}";
  }
  os << "],\"scans\":[";
  for (std::size_t i = 0; i < report.scans.size(); ++i) {
    os << (i == 0 ? "" : ",") << core::to_json(report.scans[i]);
  }
  os << "],\"wall_ns\":" << report.wall_time << ','
     << core::cpu_ns_json(report.cpu_times);
  // Quarantine fields only on degraded runs: a healthy sweep's JSON line
  // stays byte-identical to the historical schema.
  if (!report.quarantined.empty() || report.pool_exhausted) {
    os << ",\"quarantined\":[";
    for (std::size_t i = 0; i < report.quarantined.size(); ++i) {
      os << (i == 0 ? "" : ",") << report.quarantined[i];
    }
    os << "],\"pool_exhausted\":"
       << (report.pool_exhausted ? "true" : "false");
  }
  // Likewise emitted only when set: a skipped event-driven run is the only
  // producer, and its scans/findings are the previous run's re-emission.
  if (report.skipped_clean) {
    os << ",\"skipped_clean\":true";
  }
  // Re-shard provenance, only on runs the chaos machinery rescued from a
  // dead shard — every normally-scheduled run's line is unchanged.
  if (report.rescheduled_from_shard != kNoShard) {
    os << ",\"rescheduled_from_shard\":" << report.rescheduled_from_shard;
  }
  if (!report.telemetry_json.empty()) {
    os << ",\"telemetry\":" << report.telemetry_json;
  }
  os << "}";
  return os.str();
}

// ---- Sinks -----------------------------------------------------------------

RingSink::RingSink(std::size_t capacity) : capacity_(capacity) {
  MC_CHECK(capacity_ >= 1, "RingSink capacity must be at least 1");
}

void RingSink::on_sweep(const SweepReport& report) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.push_back(report);
  if (ring_.size() > capacity_) {
    ring_.pop_front();
  }
  ++seen_;
}

std::vector<SweepReport> RingSink::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t RingSink::total_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seen_;
}

void JsonLinesSink::on_sweep(const SweepReport& report) {
  const std::string line = to_json(report);
  std::lock_guard<std::mutex> lock(mutex_);
  *os_ << line << '\n';
  if (!os_->good()) {
    // The stream rejected the line (disk full, closed pipe, failbit left
    // by a consumer).  Count the drop and clear the state so the next
    // report gets a fresh chance — a logging sink must never wedge the
    // sweep workers.
    ++write_failures_;
    os_->clear();
  }
}

std::uint64_t JsonLinesSink::write_failures() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return write_failures_;
}

void ChromeTraceSink::on_sweep(const SweepReport& /*report*/) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) {
    return;
  }
  // audit: recorder_->drain() is the telemetry SpanRecorder's lock-free
  // buffer swap, not SweepQueue::drain; nothing here waits.
  // mc-lint: allow(lock-order)
  write_events_locked();
}

void ChromeTraceSink::finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) {
    return;
  }
  // audit: same as on_sweep — the telemetry drain() is a buffer swap.
  // mc-lint: allow(lock-order)
  write_events_locked();
  if (!header_written_) {
    *os_ << "[\n";  // empty run: still emit a valid (empty) array
  }
  *os_ << "\n]\n";
  os_->flush();
  finished_ = true;
}

std::uint64_t ChromeTraceSink::events_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void ChromeTraceSink::write_events_locked() {
  const std::vector<telemetry::SpanRecord> spans = recorder_->drain();
  for (const telemetry::SpanRecord& span : spans) {
    if (!header_written_) {
      *os_ << "[\n";
      header_written_ = true;
    } else {
      *os_ << ",\n";
    }
    *os_ << telemetry::chrome_trace_event(span);
    ++events_;
  }
}

}  // namespace mc::service
