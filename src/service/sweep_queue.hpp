// SweepQueue — one shard's thread-safe priority queue of pending sweeps.
//
// Ordering: highest priority first; within a priority class, earliest
// simulated due time; within a due tie, dirtiest first (the coordinator
// stamps event-driven runs with their pools' write-generation delta so a
// written-to pool is scanned before provably-quiet ones — detection
// latency follows the writes); ties broken by submission order, so
// equal-priority sweeps run FIFO.  pop() blocks until an item is available
// or the queue is closed *and* empty — close() is the graceful-drain
// primitive: pushes are refused afterwards, but everything already queued
// is still handed out, so workers drain the backlog before seeing the
// nullopt that stops their loop.  clear() is the fast-stop primitive: it
// drops the backlog and returns how many sweeps were discarded.
//
// The sharded control plane adds three surfaces on top of the classic
// push/pop pair:
//   * admit() — capacity-bounded push implementing the load-shedding
//     policy in service/admission.hpp (recurring ticks yield to one-shot
//     and alerted sweeps);
//   * try_pop() — non-blocking pop for the coordinator's work-stealing
//     path (an idle shard's worker lifts the next run off a lagging
//     sibling's queue);
//   * drain_pending() — atomically empties the queue, returning the runs
//     in pop order; the chaos re-shard uses it to move a dead shard's
//     backlog onto the survivors without losing a sweep.
//
// Cancellation of *pending* runs is queue-side (cancel(id) marks the id;
// marked entries are silently dropped on pop).  Cancellation of a sweep
// already handed to a worker is the coordinator's job — the queue cannot
// reach in-flight work.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "service/admission.hpp"
#include "util/sim_clock.hpp"

namespace mc::service {

/// Stable identifier of one submitted sweep (all its recurrences share it).
using SweepId = std::uint64_t;

/// Sentinel shard index: "not rescheduled" / "no shard".
inline constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);

/// What to sweep: a module set on one registered pool, how urgently, and
/// how often.
struct SweepSpec {
  std::string name;                  // operator-facing label
  std::size_t pool_index = 0;        // add_pool return value
  std::vector<std::string> modules;  // scanned in order, one pool scan each
  int priority = 0;                  // higher runs first
  /// Total runs (>= 1).  Runs after the first are re-enqueued on
  /// completion with due += cadence — a recurring sweep on the service's
  /// simulated timeline.
  std::size_t repeat = 1;
  SimNanos cadence = 0;
  /// Event-driven scheduling: runs consult the hypervisor's WriteWatch at
  /// each cadence tick — a tick on which nothing was written to any pool
  /// domain re-emits the previous run's (provably unchanged) verdicts
  /// without scanning (SweepReport::skipped_clean), and dirty ticks go
  /// through the pool's IncrementalScanner so clean domains cost an O(1)
  /// watch query and dirty modules re-read only their dirty pages.
  /// Event-driven sweeps assume the non-faulting path (no quarantine
  /// machinery); pools with fault injection should use full sweeps.
  bool event_driven = false;
  /// Alerted sweeps (e.g. a watch-driven off-cadence scan of a pool that
  /// just took writes) are exempt from load shedding even when recurring —
  /// see service/admission.hpp.
  bool alerted = false;

  /// Load-shedding class: only non-alerted recurring ticks may be shed.
  bool sheddable() const { return repeat > 1 && !alerted; }
};

/// One scheduled run of a sweep.
struct QueuedSweep {
  SweepId id = 0;
  SweepSpec spec;
  SimNanos due = 0;           // simulated due time of this run
  std::size_t run_index = 0;  // 0-based recurrence counter
  std::uint64_t seq = 0;      // FIFO tiebreak, assigned by push()
  /// Pool write-generation delta stamped by the coordinator at push time;
  /// orders equal-(priority, due) runs dirtiest-first.  0 for full sweeps.
  std::uint64_t dirty_hint = 0;
  /// Set by the chaos re-shard: the dead shard this run was rescued from.
  std::size_t rescheduled_from = kNoShard;
};

class SweepQueue {
 public:
  /// Enqueues a run.  Returns false (and drops the sweep) once the queue
  /// is closed — a recurring sweep re-enqueued after drain() simply ends.
  bool push(QueuedSweep sweep);

  /// Capacity-bounded push implementing the admission policy: under
  /// `capacity` (0 = unbounded) behaves like push(); at capacity the
  /// lowest-priority recurring tick yields — see service/admission.hpp for
  /// the full decision table.  When a queued tick is evicted to make room
  /// it is returned through `evicted` (for the caller's shed accounting).
  AdmitResult admit(QueuedSweep sweep, std::size_t capacity,
                    std::optional<QueuedSweep>* evicted = nullptr);

  /// Blocks until a run is available or the queue is closed and empty
  /// (nullopt → the worker loop should exit).  Cancelled pending runs are
  /// dropped here, never returned.
  std::optional<QueuedSweep> pop();

  /// Non-blocking pop: the next runnable sweep, or nullopt when the queue
  /// is empty (never waits).  Used by workers driven off the coordinator's
  /// shared wake signal and by the work-stealing path.
  std::optional<QueuedSweep> try_pop();

  /// Atomically removes and returns every pending run in pop order
  /// (cancelled entries dropped).  The chaos re-shard primitive.
  std::vector<QueuedSweep> drain_pending();

  /// Marks every pending (and future re-enqueued) run of `id` cancelled.
  /// Returns true if at least one pending run was struck.
  bool cancel(SweepId id);

  /// True once cancel(id) was called — the single source of truth workers
  /// consult between module scans to stop an in-flight sweep.
  bool is_cancelled(SweepId id) const;

  /// Marks the run handed out by the matching pop() finished.  Workers
  /// must call this after run_sweep (and after any recurrence push) so
  /// wait_idle() can tell "empty because drained" from "empty because
  /// every pending run is currently executing".
  void done();

  /// Blocks until the queue is empty *and* no popped run is still
  /// executing — the graceful-drain barrier.  Recurrences pushed by
  /// in-flight runs extend the wait; a finite repeat chain therefore
  /// completes before wait_idle returns.
  void wait_idle();

  /// Refuses further pushes; pop() drains the backlog then returns
  /// nullopt to every waiter.
  void close();

  /// Drops every pending run; returns how many were discarded (cancelled
  /// entries included).  Does not close the queue.
  std::size_t clear();

  bool closed() const;
  std::size_t pending() const;

  /// Empty with no popped run outstanding (the wait_idle predicate,
  /// sampled).  The coordinator's drain barrier polls this per shard.
  bool idle() const;

  /// Earliest simulated due time among pending runs; nullopt when empty.
  /// The coordinator's queue-age probe: `frontier - min_due()` is how far
  /// the shard's oldest work lags the fleet.
  std::optional<SimNanos> min_due() const;

  /// High-water mark of pending() over the queue's lifetime — evidence for
  /// the backpressure gate that shedding kept the bound.
  std::size_t peak_pending() const;

 private:
  struct Order {
    /// "less" for a max-heap: true when `a` runs after `b`.
    bool operator()(const QueuedSweep& a, const QueuedSweep& b) const {
      if (a.spec.priority != b.spec.priority) {
        return a.spec.priority < b.spec.priority;  // max-heap on priority
      }
      if (a.due != b.due) {
        return a.due > b.due;  // then earliest due
      }
      if (a.dirty_hint != b.dirty_hint) {
        return a.dirty_hint < b.dirty_hint;  // then dirtiest first
      }
      return a.seq > b.seq;  // then FIFO
    }
  };

  bool push_locked(QueuedSweep&& sweep);
  std::optional<QueuedSweep> take_top_locked();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  /// Heap over Order (std::push_heap/pop_heap); a plain vector so
  /// cancel/evict/min_due can walk the pending set in place.
  std::vector<QueuedSweep> heap_;
  std::unordered_set<SweepId> cancelled_;
  std::uint64_t next_seq_ = 0;
  std::size_t active_ = 0;  // runs popped but not yet done()
  std::size_t peak_ = 0;
  bool closed_ = false;
};

}  // namespace mc::service
