// SweepQueue — the FleetService's thread-safe priority queue of pending
// sweeps.
//
// Ordering: highest priority first; within a priority class, earliest
// simulated due time; ties broken by submission order, so equal-priority
// sweeps run FIFO.  pop() blocks until an item is available or the queue
// is closed *and* empty — close() is the graceful-drain primitive: pushes
// are refused afterwards, but everything already queued is still handed
// out, so workers drain the backlog before seeing the nullopt that stops
// their loop.  clear() is the fast-stop primitive: it drops the backlog
// and returns how many sweeps were discarded.
//
// Cancellation of *pending* runs is queue-side (cancel(id) marks the id;
// marked entries are silently dropped on pop).  Cancellation of a sweep
// already handed to a worker is the FleetService's job — the queue cannot
// reach in-flight work.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "util/sim_clock.hpp"

namespace mc::service {

/// Stable identifier of one submitted sweep (all its recurrences share it).
using SweepId = std::uint64_t;

/// What to sweep: a module set on one registered pool, how urgently, and
/// how often.
struct SweepSpec {
  std::string name;                  // operator-facing label
  std::size_t pool_index = 0;        // FleetService::add_pool return value
  std::vector<std::string> modules;  // scanned in order, one pool scan each
  int priority = 0;                  // higher runs first
  /// Total runs (>= 1).  Runs after the first are re-enqueued on
  /// completion with due += cadence — a recurring sweep on the service's
  /// simulated timeline.
  std::size_t repeat = 1;
  SimNanos cadence = 0;
  /// Event-driven scheduling: runs consult the hypervisor's WriteWatch at
  /// each cadence tick — a tick on which nothing was written to any pool
  /// domain re-emits the previous run's (provably unchanged) verdicts
  /// without scanning (SweepReport::skipped_clean), and dirty ticks go
  /// through the pool's IncrementalScanner so clean domains cost an O(1)
  /// watch query and dirty modules re-read only their dirty pages.
  /// Event-driven sweeps assume the non-faulting path (no quarantine
  /// machinery); pools with fault injection should use full sweeps.
  bool event_driven = false;
};

/// One scheduled run of a sweep.
struct QueuedSweep {
  SweepId id = 0;
  SweepSpec spec;
  SimNanos due = 0;           // simulated due time of this run
  std::size_t run_index = 0;  // 0-based recurrence counter
  std::uint64_t seq = 0;      // FIFO tiebreak, assigned by push()
};

class SweepQueue {
 public:
  /// Enqueues a run.  Returns false (and drops the sweep) once the queue
  /// is closed — a recurring sweep re-enqueued after drain() simply ends.
  bool push(QueuedSweep sweep);

  /// Blocks until a run is available or the queue is closed and empty
  /// (nullopt → the worker loop should exit).  Cancelled pending runs are
  /// dropped here, never returned.
  std::optional<QueuedSweep> pop();

  /// Marks every pending (and future re-enqueued) run of `id` cancelled.
  /// Returns true if at least one pending run was struck.
  bool cancel(SweepId id);

  /// True once cancel(id) was called — the single source of truth workers
  /// consult between module scans to stop an in-flight sweep.
  bool is_cancelled(SweepId id) const;

  /// Marks the run handed out by the matching pop() finished.  Workers
  /// must call this after run_sweep (and after any recurrence push) so
  /// wait_idle() can tell "empty because drained" from "empty because
  /// every pending run is currently executing".
  void done();

  /// Blocks until the queue is empty *and* no popped run is still
  /// executing — the graceful-drain barrier.  Recurrences pushed by
  /// in-flight runs extend the wait; a finite repeat chain therefore
  /// completes before wait_idle returns.
  void wait_idle();

  /// Refuses further pushes; pop() drains the backlog then returns
  /// nullopt to every waiter.
  void close();

  /// Drops every pending run; returns how many were discarded (cancelled
  /// entries included).  Does not close the queue.
  std::size_t clear();

  bool closed() const;
  std::size_t pending() const;

 private:
  struct Order {
    bool operator()(const QueuedSweep& a, const QueuedSweep& b) const {
      if (a.spec.priority != b.spec.priority) {
        return a.spec.priority < b.spec.priority;  // max-heap on priority
      }
      if (a.due != b.due) {
        return a.due > b.due;  // then earliest due
      }
      return a.seq > b.seq;  // then FIFO
    }
  };

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::priority_queue<QueuedSweep, std::vector<QueuedSweep>, Order> heap_;
  std::unordered_set<SweepId> cancelled_;
  std::uint64_t next_seq_ = 0;
  std::size_t active_ = 0;  // runs popped but not yet done()
  bool closed_ = false;
};

}  // namespace mc::service
