#include "service/sweep_queue.hpp"

namespace mc::service {

bool SweepQueue::push(QueuedSweep sweep) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || cancelled_.count(sweep.id) > 0) {
      return false;
    }
    sweep.seq = next_seq_++;
    heap_.push(std::move(sweep));
  }
  cv_.notify_one();
  return true;
}

std::optional<QueuedSweep> SweepQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [&] { return !heap_.empty() || closed_; });
    if (heap_.empty()) {
      return std::nullopt;  // closed and drained
    }
    QueuedSweep top = heap_.top();
    heap_.pop();
    if (cancelled_.count(top.id) > 0) {
      cv_.notify_all();  // heap may now be empty — wake wait_idle
      continue;          // struck while pending
    }
    ++active_;
    return top;
  }
}

void SweepQueue::done() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --active_;
  }
  cv_.notify_all();
}

void SweepQueue::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return heap_.empty() && active_ == 0; });
}

bool SweepQueue::cancel(SweepId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  cancelled_.insert(id);
  // Strike pending runs immediately so pending() stays honest.  The heap
  // has no search interface, so rebuild it — backlogs are small because
  // workers drain the queue continuously.
  std::priority_queue<QueuedSweep, std::vector<QueuedSweep>, Order> rebuilt;
  bool struck = false;
  while (!heap_.empty()) {
    QueuedSweep top = heap_.top();
    heap_.pop();
    if (top.id == id) {
      struck = true;
      continue;  // drop it now; keeps pending() honest
    }
    rebuilt.push(std::move(top));
  }
  heap_ = std::move(rebuilt);
  if (struck) {
    cv_.notify_all();  // heap may now be empty — wake wait_idle
  }
  return struck;
}

bool SweepQueue::is_cancelled(SweepId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cancelled_.count(id) > 0;
}

void SweepQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t SweepQueue::clear() {
  std::size_t dropped;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    dropped = heap_.size();
    heap_ = {};
  }
  cv_.notify_all();  // wake wait_idle — the backlog is gone
  return dropped;
}

bool SweepQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t SweepQueue::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return heap_.size();
}

}  // namespace mc::service
