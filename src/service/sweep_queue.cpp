#include "service/sweep_queue.hpp"

namespace mc::service {

bool SweepQueue::push_locked(QueuedSweep&& sweep) {
  if (closed_ || cancelled_.count(sweep.id) > 0) {
    return false;
  }
  sweep.seq = next_seq_++;
  heap_.push_back(std::move(sweep));
  std::push_heap(heap_.begin(), heap_.end(), Order{});
  peak_ = std::max(peak_, heap_.size());
  return true;
}

std::optional<QueuedSweep> SweepQueue::take_top_locked() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), Order{});
    QueuedSweep top = std::move(heap_.back());
    heap_.pop_back();
    if (cancelled_.count(top.id) > 0) {
      cv_.notify_all();  // heap may now be empty — wake wait_idle
      continue;          // struck while pending
    }
    return top;
  }
  return std::nullopt;
}

bool SweepQueue::push(QueuedSweep sweep) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!push_locked(std::move(sweep))) {
      return false;
    }
  }
  cv_.notify_one();
  return true;
}

AdmitResult SweepQueue::admit(QueuedSweep sweep, std::size_t capacity,
                              std::optional<QueuedSweep>* evicted) {
  AdmitResult result;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || cancelled_.count(sweep.id) > 0) {
      return AdmitResult::kRefused;
    }
    if (capacity == 0 || heap_.size() < capacity) {
      push_locked(std::move(sweep));
      result = AdmitResult::kAdmitted;
    } else {
      // At capacity.  The only thing allowed to yield is a recurring,
      // non-alerted tick — the victim is the sheddable run that would pop
      // last (Order's minimum: lowest priority, then latest due).
      auto victim = heap_.end();
      for (auto it = heap_.begin(); it != heap_.end(); ++it) {
        if (!it->spec.sheddable() || cancelled_.count(it->id) > 0) {
          continue;
        }
        if (victim == heap_.end() || Order{}(*it, *victim)) {
          victim = it;
        }
      }
      if (!sweep.spec.sheddable()) {
        // One-shot / alerted work is never dropped: evict a recurring
        // tick if one is queued, otherwise let the bound bend.
        if (victim != heap_.end()) {
          if (evicted != nullptr) {
            *evicted = std::move(*victim);
          }
          heap_.erase(victim);
          std::make_heap(heap_.begin(), heap_.end(), Order{});
          push_locked(std::move(sweep));
          result = AdmitResult::kAdmittedEvicted;
        } else {
          push_locked(std::move(sweep));
          result = AdmitResult::kOverflow;
        }
      } else if (victim != heap_.end() && Order{}(*victim, sweep)) {
        // The queued victim runs after the incoming tick — swap them.
        if (evicted != nullptr) {
          *evicted = std::move(*victim);
        }
        heap_.erase(victim);
        std::make_heap(heap_.begin(), heap_.end(), Order{});
        push_locked(std::move(sweep));
        result = AdmitResult::kAdmittedEvicted;
      } else {
        // The incoming tick is the cheapest thing in sight: shed it.
        return AdmitResult::kShed;
      }
    }
  }
  cv_.notify_one();
  return result;
}

std::optional<QueuedSweep> SweepQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [&] { return !heap_.empty() || closed_; });
    if (std::optional<QueuedSweep> top = take_top_locked()) {
      ++active_;
      return top;
    }
    if (closed_) {
      return std::nullopt;  // closed and drained
    }
    // Every pending entry was cancelled; wait for real work.
  }
}

std::optional<QueuedSweep> SweepQueue::try_pop() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::optional<QueuedSweep> top = take_top_locked();
  if (top) {
    ++active_;
  }
  return top;
}

std::vector<QueuedSweep> SweepQueue::drain_pending() {
  std::vector<QueuedSweep> drained;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    while (std::optional<QueuedSweep> top = take_top_locked()) {
      drained.push_back(std::move(*top));
    }
  }
  cv_.notify_all();  // the backlog is gone — wake wait_idle
  return drained;
}

void SweepQueue::done() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --active_;
  }
  cv_.notify_all();
}

void SweepQueue::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return heap_.empty() && active_ == 0; });
}

bool SweepQueue::cancel(SweepId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  cancelled_.insert(id);
  // Strike pending runs immediately so pending() stays honest.
  const std::size_t before = heap_.size();
  std::erase_if(heap_, [&](const QueuedSweep& s) { return s.id == id; });
  const bool struck = heap_.size() != before;
  if (struck) {
    std::make_heap(heap_.begin(), heap_.end(), Order{});
    cv_.notify_all();  // heap may now be empty — wake wait_idle
  }
  return struck;
}

bool SweepQueue::is_cancelled(SweepId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cancelled_.count(id) > 0;
}

void SweepQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t SweepQueue::clear() {
  std::size_t dropped;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    dropped = heap_.size();
    heap_.clear();
  }
  cv_.notify_all();  // wake wait_idle — the backlog is gone
  return dropped;
}

bool SweepQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

std::size_t SweepQueue::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return heap_.size();
}

bool SweepQueue::idle() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return heap_.empty() && active_ == 0;
}

std::optional<SimNanos> SweepQueue::min_due() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::optional<SimNanos> earliest;
  for (const QueuedSweep& s : heap_) {
    if (cancelled_.count(s.id) > 0) {
      continue;
    }
    if (!earliest || s.due < *earliest) {
      earliest = s.due;
    }
  }
  return earliest;
}

std::size_t SweepQueue::peak_pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_;
}

}  // namespace mc::service
