// ShardCoordinator — the sharded control plane over the SweepEngine.
//
// Layering (top to bottom):
//
//   FleetService (facade)        classic single-shard API, unchanged
//   ShardCoordinator             routing, admission, SLO, chaos re-shard
//   Shard × S                    per-shard SweepQueue + accounting
//   SweepEngine                  pools, event state, sinks, run execution
//
// Routing.  Pools are assigned to shards by a consistent-hash ring over
// the live shard set (util/hash_ring.hpp): every run of a sweep lands on
// the shard owning its pool, so one pool's runs never race each other
// across shards and the per-pool warm caches stay hot on one queue.  When
// the shard count changes — chaos kills one — only the dead shard's pools
// move; survivors keep their assignments (the ring property).
//
// Admission.  Every push goes through the target shard's bounded queue via
// the AdmissionPolicy (service/admission.hpp): recurring ticks are shed
// before the bound breaks, one-shot and alerted sweeps are never dropped.
//
// SLO + rebalancing.  The coordinator tracks a simulated frontier (max due
// time of any completed run — no host clocks, so the accounting is
// deterministic and lint-clean).  A run popped more than `slo_lag` behind
// the frontier counts a deadline miss; an idle shard's worker steals from
// the sibling whose oldest pending run lags the most (subject to
// `steal_lag`), so a hot pool's backlog spreads instead of aging.
//
// Chaos.  ChaosConfig arms a deterministic shard death: a seeded RNG picks
// the victim at start(), and the victim's worker kills its own shard after
// its Nth completed run.  The kill drains the dead queue and re-emits
// every pending run onto the survivors (flagged rescheduled_from_shard in
// the report JSON) — no sweep is lost, and because all warm state lives in
// the engine below the shard layer, per-pool scan costs are unchanged.
// Two runs with the same seed replay identically under SimClock.
//
// Worker wake protocol.  Workers poll queues with try_pop (own shard
// first, then steal) and park on one coordinator-wide condition variable;
// every push/close/kill notifies under the wake mutex, so a wakeup can
// never be lost between a worker's last poll and its wait.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "service/admission.hpp"
#include "service/engine.hpp"
#include "service/shard.hpp"
#include "util/hash_ring.hpp"
#include "util/thread_pool.hpp"

namespace mc::service {

/// Deterministic shard-death injection (off by default).
struct ChaosConfig {
  bool enabled = false;
  /// Seeds the victim selection; same seed + same submissions = same
  /// replay (kills are triggered by completion counts, not wall time).
  std::uint64_t seed = 0;
  /// The victim shard dies after its workers complete this many runs.
  std::uint64_t kill_after_completions = 3;
};

struct CoordinatorConfig {
  /// Worker shards (>= 1).  1 = the classic FleetService topology.
  std::size_t shards = 1;
  /// Worker threads per shard (>= 1).
  std::size_t workers_per_shard = 2;
  /// Virtual nodes per shard on the routing ring.
  std::size_t virtual_nodes = 64;
  AdmissionPolicy admission;
  ChaosConfig chaos;
  /// Registry backing the coordinator's and engine's counters (null =
  /// process default).
  telemetry::MetricRegistry* metrics = nullptr;
  telemetry::TraceRecorder* tracer = nullptr;
  /// Attach a registry snapshot to every SweepReport ("telemetry" field).
  bool emit_telemetry = false;
};

class ShardCoordinator {
 public:
  explicit ShardCoordinator(CoordinatorConfig config = {});

  /// Stops the coordinator (dropping any backlog) if still running.
  ~ShardCoordinator();

  ShardCoordinator(const ShardCoordinator&) = delete;
  ShardCoordinator& operator=(const ShardCoordinator&) = delete;

  /// Registers a pool of VMs on one hypervisor; returns the index
  /// SweepSpec::pool_index refers to.  Call before start().
  std::size_t add_pool(const vmm::Hypervisor& hypervisor,
                       std::vector<vmm::DomainId> vms,
                       core::ModCheckerConfig config = {});

  /// Registers a report sink.  Call before start().
  void add_sink(std::shared_ptr<SweepSink> sink);

  /// Observability hook invoked before each module scan of each run
  /// (sweep id, run index, module).  Call before start(); may be invoked
  /// concurrently from several workers.
  void set_module_hook(
      std::function<void(SweepId, std::size_t, const std::string&)> hook);

  /// Spins up the shard workers.  Sweeps submitted before start() sit in
  /// their shards' queues and run in priority order once workers exist.
  void start();

  /// Enqueues a sweep on its pool's shard; returns its id, or 0 if the
  /// coordinator is draining / stopped or admission shed the sweep at the
  /// door.  Validates pool_index and modules.
  SweepId submit(SweepSpec spec);

  /// Cancels a sweep: pending runs are struck from every shard's queue, an
  /// in-flight run stops before its next module scan (its report carries
  /// cancelled = true), and recurrences stop.  Returns true if a pending
  /// run was struck; an in-flight run is stopped asynchronously either
  /// way.
  bool cancel(SweepId id);

  /// Graceful drain: refuse new submissions, run every queued sweep —
  /// including the remaining runs of finite repeat chains — to
  /// completion, then join the workers.
  void drain();

  /// Fast stop: drop the backlog, let in-flight module scans finish, join
  /// the workers.
  void stop();

  std::size_t pool_count() const { return engine_.pool_count(); }
  std::size_t shard_count() const { return shards_.size(); }
  std::size_t live_shards() const;
  std::size_t pending_sweeps() const;

  /// The shard currently owning `pool_index` on the routing ring.
  std::size_t shard_of(std::size_t pool_index) const;

  /// Fleet-wide counters (the classic eight plus the coordinator's own).
  // mc-lint: allow(adhoc-stats)
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed_runs = 0;
    std::uint64_t cancelled_runs = 0;
    std::uint64_t dropped_pending = 0;
    std::uint64_t quarantine_events = 0;
    std::uint64_t exhausted_runs = 0;
    std::uint64_t sweeps_skipped_clean = 0;
    std::uint64_t event_runs = 0;
    /// Runs an idle shard lifted off a lagging sibling's queue.
    std::uint64_t steals = 0;
    /// Recurring ticks dropped by admission (shed at the door or evicted
    /// from a full queue).  Always 0 with an unbounded policy.
    std::uint64_t load_shed = 0;
    /// Unsheddable sweeps admitted past a full queue's capacity.
    std::uint64_t overflow = 0;
    /// Chaos shard deaths executed.
    std::uint64_t reshards = 0;
    /// Runs rescued off dead shards and re-emitted onto survivors.
    std::uint64_t rescheduled = 0;
    /// Runs popped more than AdmissionPolicy::slo_lag behind the frontier.
    std::uint64_t deadline_misses = 0;
  };
  Stats stats() const;

  /// Per-shard accounting (index-ordered; dead shards included).
  std::vector<ShardStats> shard_stats() const;

  /// Max simulated due time of any completed run (the SLO reference
  /// point).
  SimNanos frontier() const {
    return static_cast<SimNanos>(frontier_.load(std::memory_order_relaxed));
  }

 private:
  /// True when any sharded-mode machinery is armed (shards > 1, a bounded
  /// admission policy, or chaos): gates the coordinator.* and shard<i>.*
  /// metric names so classic single-shard runs keep the historical
  /// registry namespace byte-identical.
  bool sharded_mode() const;

  void worker_loop(std::size_t shard_index);
  /// Routes one run to its pool's live shard through admission; stamps the
  /// dirty hint.  Returns the admission outcome; `routed_to` (optional)
  /// receives the shard that took the run.
  AdmitResult route(QueuedSweep run, std::size_t* routed_to = nullptr);
  /// Steal scan for an idle worker of `thief`: the eligible sibling whose
  /// oldest pending run lags the most.  Returns the victim's index, or
  /// nullopt when nothing is stealable.
  std::optional<std::size_t> pick_steal_victim(std::size_t thief) const;
  /// Chaos: kill `victim`, re-shard its backlog onto the survivors.
  void kill_shard(std::size_t victim);
  bool is_cancelled_anywhere(SweepId id) const;
  void notify_workers();
  std::size_t total_pending() const;
  void join_workers();

  CoordinatorConfig config_;
  SweepEngine engine_;

  // "service.*" cells — same names the classic FleetService used, so the
  // shards=1 registry namespace (and emit_telemetry JSON) is unchanged.
  telemetry::OwnedCounter submitted_;
  telemetry::OwnedCounter dropped_pending_;
  telemetry::Gauge queue_depth_;
  telemetry::Gauge sweeps_in_flight_;
  // "coordinator.*" cells — detached in classic mode (see sharded_mode()).
  telemetry::OwnedCounter steals_;
  telemetry::OwnedCounter load_shed_;
  telemetry::OwnedCounter overflow_;
  telemetry::OwnedCounter reshards_;
  telemetry::OwnedCounter rescheduled_;
  telemetry::OwnedCounter deadline_misses_;

  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::mutex ring_mutex_;  // guards ring_ (chaos mutates it)
  HashRing ring_;

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;

  std::atomic<std::uint64_t> frontier_{0};

  std::unique_ptr<ThreadPool> workers_;
  std::vector<std::future<void>> worker_futures_;

  std::size_t chaos_victim_ = kNoShard;
  std::atomic<bool> chaos_fired_{false};

  mutable std::mutex mutex_;  // guards next_id_, started_, draining_
  SweepId next_id_ = 1;
  bool started_ = false;
  bool draining_ = false;
};

}  // namespace mc::service
