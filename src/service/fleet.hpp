// FleetService — ModChecker as a resident multi-pool monitor.
//
// The paper's prototype is a one-shot tool (§V: run, print, exit); related
// VMI monitors run as long-lived services instead.  FleetService is that
// service layer: it owns N registered pools (each with its own
// CheckContext/CheckPipeline, so warm VMI sessions and cost accounting
// stay per-pool), accepts SweepSpecs (module set × pool × cadence ×
// priority), schedules their runs onto worker threads, supports
// cancellation of pending *and* in-flight sweeps plus graceful drain, and
// emits one SweepReport per run to every registered sink.  Sweeps marked
// event_driven consult the hypervisor's WriteWatch at each cadence tick:
// provably-clean ticks re-emit the last results without scanning, dirty
// ticks scan incrementally.
//
// Since the sharded control plane landed, FleetService is a facade over a
// single-shard ShardCoordinator (service/coordinator.hpp): same API, same
// report bytes, same registry namespace — the classic topology is the
// shards=1 special case of the coordinator, not a separate code path.
// Fleets that want multiple shards, bounded queues with load shedding, or
// chaos testing construct a ShardCoordinator directly.
//
// Threading model (TSan-clean by construction):
//   * pools, sinks and the progress hook are fixed before start() — the
//     worker threads only ever read them;
//   * a per-pool mutex serializes sweeps that target the same pool (the
//     pipeline's session pool is thread-safe, but serializing per pool
//     keeps per-pool timelines meaningful and contention predictable);
//   * all cross-thread bookkeeping (queue, cancellation, stats) is behind
//     the coordinator's and queues' own mutexes.
//
// Lifecycle: add_pool()/add_sink() → start() → submit()/cancel() →
// drain() (run everything queued, then stop) or stop() (drop the backlog,
// finish in-flight module scans, then stop).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "service/coordinator.hpp"
#include "service/report.hpp"
#include "service/sweep_queue.hpp"

namespace mc::service {

struct FleetConfig {
  /// Worker threads pulling sweeps off the queue (>= 1).
  std::size_t workers = 2;
  /// Registry backing the service's counters/gauges and, unless a pool's
  /// own config says otherwise, every pool pipeline (null = process
  /// default).
  telemetry::MetricRegistry* metrics = nullptr;
  /// Span recorder shared with every pool pipeline that does not bring its
  /// own; pair it with a ChromeTraceSink for a browsable fleet timeline.
  telemetry::TraceRecorder* tracer = nullptr;
  /// Attach a registry snapshot to every SweepReport ("telemetry" field).
  bool emit_telemetry = false;
};

class FleetService {
 public:
  explicit FleetService(FleetConfig config = {});

  /// Stops the service (dropping any backlog) if still running.
  ~FleetService() = default;

  FleetService(const FleetService&) = delete;
  FleetService& operator=(const FleetService&) = delete;

  /// Registers a pool of VMs on one hypervisor; returns the index
  /// SweepSpec::pool_index refers to.  Call before start().
  std::size_t add_pool(const vmm::Hypervisor& hypervisor,
                       std::vector<vmm::DomainId> vms,
                       core::ModCheckerConfig config = {}) {
    return coordinator_.add_pool(hypervisor, std::move(vms),
                                 std::move(config));
  }

  /// Registers a report sink.  Call before start().
  void add_sink(std::shared_ptr<SweepSink> sink) {
    coordinator_.add_sink(std::move(sink));
  }

  /// Observability hook invoked before each module scan of each run
  /// (sweep id, run index, module).  Call before start(); may be invoked
  /// concurrently from several workers.
  void set_module_hook(
      std::function<void(SweepId, std::size_t, const std::string&)> hook) {
    coordinator_.set_module_hook(std::move(hook));
  }

  /// Spins up the workers.  Sweeps submitted before start() sit in the
  /// queue and run in priority order once workers exist.
  void start() { coordinator_.start(); }

  /// Enqueues a sweep; returns its id, or 0 if the service is draining /
  /// stopped (the sweep is dropped).  Validates pool_index and modules.
  SweepId submit(SweepSpec spec) { return coordinator_.submit(std::move(spec)); }

  /// Cancels a sweep: pending runs are struck from the queue, an
  /// in-flight run stops before its next module scan (its report carries
  /// cancelled = true), and recurrences stop.  Returns true if a pending
  /// run was struck; an in-flight run is stopped asynchronously either
  /// way.
  bool cancel(SweepId id) { return coordinator_.cancel(id); }

  /// Graceful drain: refuse new submissions, run every queued sweep —
  /// including the remaining runs of finite repeat chains — to
  /// completion, then join the workers.
  void drain() { coordinator_.drain(); }

  /// Fast stop: drop the backlog, let in-flight module scans finish, join
  /// the workers.
  void stop() { coordinator_.stop(); }

  std::size_t pool_count() const { return coordinator_.pool_count(); }
  std::size_t pending_sweeps() const { return coordinator_.pending_sweeps(); }

  /// Deprecated view over the registry aggregates "service.*".
  // mc-lint: allow(adhoc-stats)
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed_runs = 0;   // runs that finished every module
    std::uint64_t cancelled_runs = 0;   // runs stopped mid-sweep
    std::uint64_t dropped_pending = 0;  // runs struck before starting
    /// VM-quarantine observations across all runs (one per VM per run in
    /// which it exhausted its acquire retries).
    std::uint64_t quarantine_events = 0;
    /// Runs cut short because quarantine left fewer than two answering
    /// VMs.
    std::uint64_t exhausted_runs = 0;
    /// Event-driven runs that re-emitted the previous results because the
    /// watch layer proved every pool domain unchanged.
    std::uint64_t sweeps_skipped_clean = 0;
    /// Event-driven runs that actually scanned (incrementally).
    std::uint64_t event_runs = 0;
  };
  Stats stats() const;

 private:
  ShardCoordinator coordinator_;
};

}  // namespace mc::service
