// FleetService — ModChecker as a resident multi-pool monitor.
//
// The paper's prototype is a one-shot tool (§V: run, print, exit); related
// VMI monitors run as long-lived services instead.  FleetService is that
// service layer: it owns N registered pools (each with its own
// CheckContext/CheckPipeline, so warm VMI sessions and cost accounting
// stay per-pool), accepts SweepSpecs (module set × pool × cadence ×
// priority), schedules their runs through a SweepQueue onto the existing
// ThreadPool workers, supports cancellation of pending *and* in-flight
// sweeps plus graceful drain, and emits one SweepReport per run to every
// registered sink.  Sweeps marked event_driven consult the hypervisor's
// WriteWatch at each cadence tick: provably-clean ticks re-emit the last
// results without scanning, dirty ticks scan incrementally.
//
// Threading model (TSan-clean by construction):
//   * pools, sinks and the progress hook are fixed before start() — the
//     worker threads only ever read them;
//   * a per-pool mutex serializes sweeps that target the same pool (the
//     pipeline's session pool is thread-safe, but serializing per pool
//     keeps per-pool timelines meaningful and contention predictable);
//   * all cross-thread bookkeeping (queue, cancellation, stats) is behind
//     the SweepQueue's and the service's own mutexes.
//
// Lifecycle: add_pool()/add_sink() → start() → submit()/cancel() →
// drain() (run everything queued, then stop) or stop() (drop the backlog,
// finish in-flight module scans, then stop).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include <map>

#include "modchecker/incremental.hpp"
#include "modchecker/pipeline.hpp"
#include "service/sweep_queue.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"
#include "util/thread_pool.hpp"

namespace mc::service {

/// One (module, VM) vote failure surfaced by a sweep.
struct SweepFinding {
  std::string module;
  vmm::DomainId vm = 0;
  std::size_t successes = 0;
  std::size_t total = 0;
};

/// Result of one run of a sweep (a recurring sweep emits one per run).
struct SweepReport {
  SweepId id = 0;
  std::string name;
  std::size_t pool_index = 0;
  std::size_t run_index = 0;  // 0-based recurrence counter
  SimNanos due = 0;           // simulated due time of this run
  /// True when the sweep was cancelled mid-run: `scans` then holds the
  /// prefix of modules completed before the flag was seen.
  bool cancelled = false;
  /// Per-module pool scans, in SweepSpec::modules order.
  std::vector<core::PoolScanReport> scans;
  /// Flattened (module, VM) pairs whose vote failed.
  std::vector<SweepFinding> findings;
  /// VMs quarantined during this run (union across its module scans,
  /// first-observation order).  A quarantined VM sits out the *rest of
  /// this run*; the next cadence tick starts again from the full pool, so
  /// a recovered guest rejoins automatically.
  std::vector<vmm::DomainId> quarantined;
  /// Quarantine shrank the pool below two answering VMs: the remaining
  /// module scans of this run were skipped (cross-comparison needs peers).
  bool pool_exhausted = false;
  /// Event-driven run that scanned nothing: the WriteWatch layer proved no
  /// write landed on any pool domain since the previous completed run, so
  /// `scans`/`findings` re-emit that run's (byte-identical) results.
  bool skipped_clean = false;
  SimNanos wall_time = 0;  // summed simulated scan wall time
  core::ComponentTimes cpu_times;
  /// Registry snapshot JSON, filled only when FleetConfig::emit_telemetry;
  /// serialized as a "telemetry" field when (and only when) non-empty.
  std::string telemetry_json;
};

/// {"sweep": ..., "run": ..., "cancelled": ..., "findings": [...],
///  "scans": [...]} — reuses core::to_json(PoolScanReport) per scan.
std::string to_json(const SweepReport& report);

/// Pluggable sweep-report consumer.  on_sweep may be called concurrently
/// from several workers; implementations must be thread-safe.
class SweepSink {
 public:
  virtual ~SweepSink() = default;
  virtual void on_sweep(const SweepReport& report) = 0;
};

/// Fixed-capacity in-memory ring of the most recent reports (the
/// operator's "what happened lately" buffer).
class RingSink : public SweepSink {
 public:
  explicit RingSink(std::size_t capacity = 256);

  void on_sweep(const SweepReport& report) override;

  /// Oldest-first copy of the buffered reports.
  std::vector<SweepReport> snapshot() const;

  /// Total reports ever seen (>= snapshot().size() once wrapped).
  std::uint64_t total_seen() const;

 private:
  mutable std::mutex mutex_;
  std::deque<SweepReport> ring_;
  std::size_t capacity_;
  std::uint64_t seen_ = 0;
};

/// Serializes every report as one JSON line to a stream (the existing
/// report_json schema — SIEM/alerting integration surface).  A stream
/// write failure must not take the monitoring service down with it: the
/// sink counts the failure, clears the stream's error state and keeps
/// accepting reports (each line is retried independently).
class JsonLinesSink : public SweepSink {
 public:
  explicit JsonLinesSink(std::ostream& os) : os_(&os) {}

  void on_sweep(const SweepReport& report) override;

  /// Reports dropped because the stream went bad mid-write.
  std::uint64_t write_failures() const;

 private:
  mutable std::mutex mutex_;
  std::ostream* os_;
  std::uint64_t write_failures_ = 0;
};

/// Streams completed trace spans as Chrome trace_event JSONL (the JSON
/// Array Format) — point it at a file, hand the same TraceRecorder to the
/// FleetConfig, and the whole multi-pool sweep timeline opens in
/// chrome://tracing / Perfetto.  Each on_sweep drains the recorder, so the
/// file grows as the fleet runs; finish() (or destruction) drains one last
/// time and closes the JSON array.
class ChromeTraceSink : public SweepSink {
 public:
  ChromeTraceSink(std::ostream& os, telemetry::TraceRecorder& recorder)
      : os_(&os), recorder_(&recorder) {}

  ~ChromeTraceSink() override { finish(); }

  void on_sweep(const SweepReport& report) override;

  /// Drains any remaining spans and writes the closing bracket.
  /// Idempotent; further on_sweep calls become no-ops.
  void finish();

  std::uint64_t events_written() const;

 private:
  void write_events_locked();

  mutable std::mutex mutex_;
  std::ostream* os_;
  telemetry::TraceRecorder* recorder_;
  bool header_written_ = false;
  bool finished_ = false;
  std::uint64_t events_ = 0;
};

struct FleetConfig {
  /// Worker threads pulling sweeps off the queue (>= 1).
  std::size_t workers = 2;
  /// Registry backing the service's counters/gauges and, unless a pool's
  /// own config says otherwise, every pool pipeline (null = process
  /// default).
  telemetry::MetricRegistry* metrics = nullptr;
  /// Span recorder shared with every pool pipeline that does not bring its
  /// own; pair it with a ChromeTraceSink for a browsable fleet timeline.
  telemetry::TraceRecorder* tracer = nullptr;
  /// Attach a registry snapshot to every SweepReport ("telemetry" field).
  bool emit_telemetry = false;
};

class FleetService {
 public:
  explicit FleetService(FleetConfig config = {});

  /// Stops the service (dropping any backlog) if still running.
  ~FleetService();

  FleetService(const FleetService&) = delete;
  FleetService& operator=(const FleetService&) = delete;

  /// Registers a pool of VMs on one hypervisor; returns the index
  /// SweepSpec::pool_index refers to.  Call before start().
  std::size_t add_pool(const vmm::Hypervisor& hypervisor,
                       std::vector<vmm::DomainId> vms,
                       core::ModCheckerConfig config = {});

  /// Registers a report sink.  Call before start().
  void add_sink(std::shared_ptr<SweepSink> sink);

  /// Observability hook invoked before each module scan of each run
  /// (sweep id, run index, module).  Call before start(); may be invoked
  /// concurrently from several workers.
  void set_module_hook(
      std::function<void(SweepId, std::size_t, const std::string&)> hook);

  /// Spins up the workers.  Sweeps submitted before start() sit in the
  /// queue and run in priority order once workers exist.
  void start();

  /// Enqueues a sweep; returns its id, or 0 if the service is draining /
  /// stopped (the sweep is dropped).  Validates pool_index and modules.
  SweepId submit(SweepSpec spec);

  /// Cancels a sweep: pending runs are struck from the queue, an
  /// in-flight run stops before its next module scan (its report carries
  /// cancelled = true), and recurrences stop.  Returns true if a pending
  /// run was struck; an in-flight run is stopped asynchronously either
  /// way.
  bool cancel(SweepId id);

  /// Graceful drain: refuse new submissions, run every queued sweep —
  /// including the remaining runs of finite repeat chains — to
  /// completion, then join the workers.
  void drain();

  /// Fast stop: drop the backlog, let in-flight module scans finish, join
  /// the workers.
  void stop();

  std::size_t pool_count() const { return pools_.size(); }
  std::size_t pending_sweeps() const { return queue_.pending(); }

  /// Deprecated view over the registry aggregates "service.*".
  // mc-lint: allow(adhoc-stats)
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed_runs = 0;   // runs that finished every module
    std::uint64_t cancelled_runs = 0;   // runs stopped mid-sweep
    std::uint64_t dropped_pending = 0;  // runs struck before starting
    /// VM-quarantine observations across all runs (one per VM per run in
    /// which it exhausted its acquire retries).
    std::uint64_t quarantine_events = 0;
    /// Runs cut short because quarantine left fewer than two answering
    /// VMs.
    std::uint64_t exhausted_runs = 0;
    /// Event-driven runs that re-emitted the previous results because the
    /// watch layer proved every pool domain unchanged.
    std::uint64_t sweeps_skipped_clean = 0;
    /// Event-driven runs that actually scanned (incrementally).
    std::uint64_t event_runs = 0;
  };
  Stats stats() const;

 private:
  struct Pool {
    const vmm::Hypervisor* hypervisor;
    std::vector<vmm::DomainId> vms;
    std::unique_ptr<core::CheckContext> context;
    std::unique_ptr<core::CheckPipeline> pipeline;
    /// Event-driven sweeps scan through this instead of `pipeline` — its
    /// per-module caches persist across cadence ticks (guarded by `mutex`
    /// like every other per-pool scan).
    std::unique_ptr<core::IncrementalScanner> incremental;
    std::mutex mutex;  // serializes sweeps targeting this pool
  };

  /// What an event-driven sweep remembers between cadence ticks: the
  /// per-domain write generations observed before its last completed run
  /// and that run's results (re-emitted verbatim on clean ticks).
  struct EventState {
    bool has_report = false;
    std::map<vmm::DomainId, std::uint64_t> generations;
    std::vector<core::PoolScanReport> scans;
    std::vector<SweepFinding> findings;
  };

  /// WriteWatch subscriber counting write activity fleet-wide (telemetry:
  /// "fleet.dirty_domains_observed" / "fleet.watch_notifications"); one per
  /// distinct hypervisor, live between start() and worker join.
  class DirtyTracker;

  void worker_loop();
  void run_sweep(QueuedSweep run);
  /// The classic full-scan body (caller holds pool.mutex).
  void run_full_locked(Pool& pool, const QueuedSweep& run,
                       SweepReport& report);
  /// The event-driven body: skip-if-clean via per-domain write
  /// generations, else incremental scan (caller holds pool.mutex).
  void run_event_locked(Pool& pool, const QueuedSweep& run,
                        SweepReport& report, telemetry::SpanScope& span);
  void emit(const SweepReport& report);
  void join_workers();

  FleetConfig config_;
  telemetry::MetricRegistry* metrics_;  // resolved, never null

  // Atomic registry cells ("service.*") + live-level gauges.
  telemetry::OwnedCounter submitted_;
  telemetry::OwnedCounter completed_runs_;
  telemetry::OwnedCounter cancelled_runs_;
  telemetry::OwnedCounter dropped_pending_;
  telemetry::OwnedCounter quarantine_events_;
  telemetry::OwnedCounter exhausted_runs_;
  telemetry::OwnedCounter sweeps_skipped_clean_;
  telemetry::OwnedCounter event_runs_;
  telemetry::Gauge queue_depth_;
  telemetry::Gauge sweeps_in_flight_;

  std::vector<std::unique_ptr<Pool>> pools_;
  std::vector<std::unique_ptr<DirtyTracker>> trackers_;
  mutable std::mutex event_mutex_;  // guards event_states_
  std::map<SweepId, EventState> event_states_;
  std::vector<std::shared_ptr<SweepSink>> sinks_;
  std::function<void(SweepId, std::size_t, const std::string&)> module_hook_;

  SweepQueue queue_;
  std::unique_ptr<ThreadPool> workers_;
  std::vector<std::future<void>> worker_futures_;

  mutable std::mutex mutex_;  // guards next_id_, started_, draining_
  SweepId next_id_ = 1;
  bool started_ = false;
  bool draining_ = false;
};

}  // namespace mc::service
