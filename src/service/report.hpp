// SweepReport and the pluggable report sinks — the output surface of the
// fleet control plane, split out of fleet.hpp so the sharded coordinator,
// the classic FleetService facade, and the sinks all share one schema
// definition.  The JSON emitted by to_json is a stability contract:
// optional fields (quarantine, skip, re-shard provenance, telemetry) are
// emitted only when set, so a healthy single-shard run's line stays
// byte-identical to the historical schema.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "modchecker/pipeline.hpp"
#include "service/sweep_queue.hpp"
#include "telemetry/trace.hpp"

namespace mc::service {

/// One (module, VM) vote failure surfaced by a sweep.
struct SweepFinding {
  std::string module;
  vmm::DomainId vm = 0;
  std::size_t successes = 0;
  std::size_t total = 0;
};

/// Result of one run of a sweep (a recurring sweep emits one per run).
struct SweepReport {
  SweepId id = 0;
  std::string name;
  std::size_t pool_index = 0;
  std::size_t run_index = 0;  // 0-based recurrence counter
  SimNanos due = 0;           // simulated due time of this run
  /// True when the sweep was cancelled mid-run: `scans` then holds the
  /// prefix of modules completed before the flag was seen.
  bool cancelled = false;
  /// Per-module pool scans, in SweepSpec::modules order.
  std::vector<core::PoolScanReport> scans;
  /// Flattened (module, VM) pairs whose vote failed.
  std::vector<SweepFinding> findings;
  /// VMs quarantined during this run (union across its module scans,
  /// first-observation order).  A quarantined VM sits out the *rest of
  /// this run*; the next cadence tick starts again from the full pool, so
  /// a recovered guest rejoins automatically.
  std::vector<vmm::DomainId> quarantined;
  /// Quarantine shrank the pool below two answering VMs: the remaining
  /// module scans of this run were skipped (cross-comparison needs peers).
  bool pool_exhausted = false;
  /// Event-driven run that scanned nothing: the WriteWatch layer proved no
  /// write landed on any pool domain since the previous completed run, so
  /// `scans`/`findings` re-emit that run's (byte-identical) results.
  bool skipped_clean = false;
  /// The chaos re-shard rescued this run from a dead shard and re-emitted
  /// it onto a survivor; kNoShard on every normally-scheduled run (the
  /// field is then absent from the JSON line).
  std::size_t rescheduled_from_shard = kNoShard;
  SimNanos wall_time = 0;  // summed simulated scan wall time
  core::ComponentTimes cpu_times;
  /// Registry snapshot JSON, filled only when the service's emit_telemetry
  /// is set; serialized as a "telemetry" field when (and only when)
  /// non-empty.
  std::string telemetry_json;
};

/// {"sweep": ..., "run": ..., "cancelled": ..., "findings": [...],
///  "scans": [...]} — reuses core::to_json(PoolScanReport) per scan.
std::string to_json(const SweepReport& report);

/// Pluggable sweep-report consumer.  on_sweep may be called concurrently
/// from several workers; implementations must be thread-safe.
class SweepSink {
 public:
  virtual ~SweepSink() = default;
  virtual void on_sweep(const SweepReport& report) = 0;
};

/// Fixed-capacity in-memory ring of the most recent reports (the
/// operator's "what happened lately" buffer).
class RingSink : public SweepSink {
 public:
  explicit RingSink(std::size_t capacity = 256);

  void on_sweep(const SweepReport& report) override;

  /// Oldest-first copy of the buffered reports.
  std::vector<SweepReport> snapshot() const;

  /// Total reports ever seen (>= snapshot().size() once wrapped).
  std::uint64_t total_seen() const;

 private:
  mutable std::mutex mutex_;
  std::deque<SweepReport> ring_;
  std::size_t capacity_;
  std::uint64_t seen_ = 0;
};

/// Serializes every report as one JSON line to a stream (the existing
/// report_json schema — SIEM/alerting integration surface).  A stream
/// write failure must not take the monitoring service down with it: the
/// sink counts the failure, clears the stream's error state and keeps
/// accepting reports (each line is retried independently).
class JsonLinesSink : public SweepSink {
 public:
  explicit JsonLinesSink(std::ostream& os) : os_(&os) {}

  void on_sweep(const SweepReport& report) override;

  /// Reports dropped because the stream went bad mid-write.
  std::uint64_t write_failures() const;

 private:
  mutable std::mutex mutex_;
  std::ostream* os_;
  std::uint64_t write_failures_ = 0;
};

/// Streams completed trace spans as Chrome trace_event JSONL (the JSON
/// Array Format) — point it at a file, hand the same TraceRecorder to the
/// FleetConfig, and the whole multi-pool sweep timeline opens in
/// chrome://tracing / Perfetto.  Each on_sweep drains the recorder, so the
/// file grows as the fleet runs; finish() (or destruction) drains one last
/// time and closes the JSON array.
class ChromeTraceSink : public SweepSink {
 public:
  ChromeTraceSink(std::ostream& os, telemetry::TraceRecorder& recorder)
      : os_(&os), recorder_(&recorder) {}

  ~ChromeTraceSink() override { finish(); }

  void on_sweep(const SweepReport& report) override;

  /// Drains any remaining spans and writes the closing bracket.
  /// Idempotent; further on_sweep calls become no-ops.
  void finish();

  std::uint64_t events_written() const;

 private:
  void write_events_locked();

  mutable std::mutex mutex_;
  std::ostream* os_;
  telemetry::TraceRecorder* recorder_;
  bool header_written_ = false;
  bool finished_ = false;
  std::uint64_t events_ = 0;
};

}  // namespace mc::service
