#include "elf/builder.hpp"

#include <utility>

#include "util/error.hpp"

namespace mc::elf {

namespace {

/// Alignment of section data inside the image.  64 keeps every section
/// (and the header tables) cacheline-aligned, mirroring how the simulated
/// loader maps modules.
constexpr std::uint32_t kSectionAlign = 64;

}  // namespace

KoBuilder::KoBuilder(std::string module_name)
    : module_name_(std::move(module_name)) {}

KoBuilder& KoBuilder::add_section(const std::string& name, Bytes data,
                                  std::uint64_t flags, std::uint32_t type) {
  for (const PendingSection& s : sections_) {
    MC_CHECK(s.name != name, "duplicate section name");
  }
  sections_.push_back({name, std::move(data), flags, type});
  return *this;
}

KoBuilder& KoBuilder::add_symbol(const std::string& name,
                                 const std::string& section,
                                 std::uint64_t value) {
  section_index(section);  // validates the section exists
  for (const PendingSymbol& s : symbols_) {
    MC_CHECK(s.name != name, "duplicate symbol name");
  }
  symbols_.push_back({name, section, value});
  return *this;
}

KoBuilder& KoBuilder::add_rela(const std::string& target_section,
                               std::uint64_t offset, std::uint32_t type,
                               const std::string& symbol, std::int64_t addend) {
  MC_CHECK(type == kRX8664_64 || type == kRX8664_32S || type == kRX8664_PC32,
           "unsupported relocation type");
  const PendingSection& target = sections_[section_index(target_section)];
  const std::uint64_t slot = type == kRX8664_64 ? 8 : 4;  // PC32/32S: 4
  MC_CHECK(offset + slot <= target.data.size(),
           "relocation slot outside target section");
  symbol_index(symbol);  // validates the symbol exists
  relas_.push_back({target_section, offset, type, symbol, addend});
  return *this;
}

std::size_t KoBuilder::section_index(const std::string& name) const {
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    if (sections_[i].name == name) {
      return i;
    }
  }
  MC_CHECK(false, "unknown section name");
  return 0;
}

std::size_t KoBuilder::symbol_index(const std::string& name) const {
  for (std::size_t i = 0; i < symbols_.size(); ++i) {
    if (symbols_[i].name == name) {
      return i;
    }
  }
  MC_CHECK(false, "unknown symbol name");
  return 0;
}

Bytes KoBuilder::build() const {
  // Final section order: [0] null, user sections, one .rela.<target> per
  // relocated target (in target order), .symtab, .strtab, .shstrtab.
  struct FinalSection {
    Elf64Shdr header;
    Bytes data;
  };
  std::vector<FinalSection> finals;
  finals.push_back({});  // the mandatory null section

  // .strtab content (symbol names) and symtab indices are fixed up front:
  // index 0 is the null symbol, user symbols follow in add order.
  Bytes strtab{0};
  std::vector<std::uint32_t> sym_names;
  sym_names.reserve(symbols_.size());
  for (const PendingSymbol& sym : symbols_) {
    sym_names.push_back(static_cast<std::uint32_t>(strtab.size()));
    append_bytes(strtab, as_bytes(sym.name));
    strtab.push_back(0);
  }

  // User sections occupy shndx 1..N in add order.
  const auto user_shndx = [&](std::size_t builder_index) {
    return static_cast<std::uint16_t>(1 + builder_index);
  };
  for (const PendingSection& s : sections_) {
    FinalSection fs;
    fs.header.sh_type = s.type;
    fs.header.sh_flags = s.flags;
    fs.header.sh_size = s.data.size();
    fs.header.sh_addralign = kSectionAlign;
    fs.data = s.data;
    finals.push_back(std::move(fs));
  }

  const std::uint16_t symtab_shndx =
      static_cast<std::uint16_t>(1 + sections_.size() + [&] {
        std::size_t rela_sections = 0;
        for (std::size_t i = 0; i < sections_.size(); ++i) {
          for (const PendingRela& r : relas_) {
            if (section_index(r.target) == i) {
              rela_sections += 1;
              break;
            }
          }
        }
        return rela_sections;
      }());

  // One .rela.<name> per relocated target section, records in add order.
  std::vector<std::string> names;  // final names, parallel to `finals`
  names.emplace_back();
  for (const PendingSection& s : sections_) {
    names.push_back(s.name);
  }
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    Bytes records;
    for (const PendingRela& r : relas_) {
      if (section_index(r.target) != i) {
        continue;
      }
      Elf64Rela rec;
      rec.r_offset = r.offset;
      // Symtab index: +1 for the null symbol.
      rec.r_info = Elf64Rela::make_info(
          static_cast<std::uint32_t>(1 + symbol_index(r.symbol)), r.type);
      rec.r_addend = r.addend;
      rec.serialize(records);
    }
    if (records.empty()) {
      continue;
    }
    FinalSection fs;
    fs.header.sh_type = kShtRela;
    fs.header.sh_flags = kShfAlloc;  // resident → integrity-checked
    fs.header.sh_size = records.size();
    fs.header.sh_link = symtab_shndx;
    fs.header.sh_info = user_shndx(i);
    fs.header.sh_addralign = 8;
    fs.header.sh_entsize = kRelaSize;
    fs.data = std::move(records);
    finals.push_back(std::move(fs));
    names.push_back(".rela" + sections_[i].name);
  }

  // .symtab: null symbol + every declared symbol (all global).
  {
    Bytes records(kSymSize, 0);  // index 0: the null symbol
    for (std::size_t i = 0; i < symbols_.size(); ++i) {
      const PendingSymbol& sym = symbols_[i];
      const std::size_t def = section_index(sym.section);
      Elf64Sym rec;
      rec.st_name = sym_names[i];
      rec.st_info = elf_st_info(
          kStbGlobal,
          (sections_[def].flags & kShfExecinstr) != 0 ? kSttFunc : kSttObject);
      rec.st_shndx = user_shndx(def);
      rec.st_value = sym.value;
      rec.serialize(records);
    }
    FinalSection fs;
    fs.header.sh_type = kShtSymtab;
    fs.header.sh_flags = kShfAlloc;
    fs.header.sh_size = records.size();
    fs.header.sh_link = static_cast<std::uint32_t>(symtab_shndx + 1);
    fs.header.sh_info = 1;  // first (and only) batch of globals starts at 1
    fs.header.sh_addralign = 8;
    fs.header.sh_entsize = kSymSize;
    fs.data = std::move(records);
    finals.push_back(std::move(fs));
    names.emplace_back(".symtab");
  }

  // .strtab then .shstrtab.
  {
    FinalSection fs;
    fs.header.sh_type = kShtStrtab;
    fs.header.sh_flags = kShfAlloc;
    fs.header.sh_size = strtab.size();
    fs.header.sh_addralign = 1;
    fs.data = std::move(strtab);
    finals.push_back(std::move(fs));
    names.emplace_back(".strtab");
  }
  names.emplace_back(".shstrtab");
  Bytes shstrtab{0};
  std::vector<std::uint32_t> name_offsets(names.size(), 0);
  for (std::size_t i = 1; i < names.size(); ++i) {
    name_offsets[i] = static_cast<std::uint32_t>(shstrtab.size());
    append_bytes(shstrtab, as_bytes(names[i]));
    shstrtab.push_back(0);
  }
  {
    FinalSection fs;
    fs.header.sh_type = kShtStrtab;
    fs.header.sh_flags = kShfAlloc;
    fs.header.sh_size = shstrtab.size();
    fs.header.sh_addralign = 1;
    fs.data = std::move(shstrtab);
    finals.push_back(std::move(fs));
  }

  // Mapped layout: data runs from the file header, 64-byte aligned, with
  // sh_addr == sh_offset; the section header table sits at the end.
  std::uint32_t cursor = static_cast<std::uint32_t>(kEhdrSize);
  for (std::size_t i = 1; i < finals.size(); ++i) {
    FinalSection& fs = finals[i];
    fs.header.sh_name = name_offsets[i];
    cursor = align_up(cursor, kSectionAlign);
    fs.header.sh_offset = cursor;
    fs.header.sh_addr = cursor;
    cursor += static_cast<std::uint32_t>(fs.data.size());
  }
  const std::uint32_t shoff = align_up(cursor, kSectionAlign);

  Elf64Ehdr ehdr;
  ehdr.e_shoff = shoff;
  ehdr.e_shnum = static_cast<std::uint16_t>(finals.size());
  ehdr.e_shstrndx = static_cast<std::uint16_t>(finals.size() - 1);

  Bytes out;
  out.reserve(shoff + finals.size() * kShdrSize);
  ehdr.serialize(out);
  for (std::size_t i = 1; i < finals.size(); ++i) {
    out.resize(static_cast<std::size_t>(finals[i].header.sh_offset), 0);
    append_bytes(out, ByteView(finals[i].data));
  }
  out.resize(shoff, 0);
  for (const FinalSection& fs : finals) {
    fs.header.serialize(out);
  }
  return out;
}

}  // namespace mc::elf
