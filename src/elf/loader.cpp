#include "elf/loader.hpp"

#include "elf/parser.hpp"
#include "util/error.hpp"

namespace mc::elf {

void apply_ko_relocations(MutableByteView image, std::uint32_t base) {
  const ElfImage parsed{ByteView(image)};
  const auto& sections = parsed.sections();
  for (const Elf64Shdr& rela_sh : sections) {
    if (rela_sh.sh_type != kShtRela) {
      continue;
    }
    if (rela_sh.sh_link >= sections.size() ||
        rela_sh.sh_info >= sections.size()) {
      throw FormatError("Rela section with bad sh_link/sh_info");
    }
    const Elf64Shdr& symtab = sections[rela_sh.sh_link];
    const Elf64Shdr& target = sections[rela_sh.sh_info];
    const std::size_t count =
        static_cast<std::size_t>(rela_sh.sh_size) / kRelaSize;
    for (std::size_t i = 0; i < count; ++i) {
      const Elf64Rela rec = Elf64Rela::parse(
          ByteView(image),
          static_cast<std::size_t>(rela_sh.sh_offset) + i * kRelaSize);
      const std::size_t sym_off = static_cast<std::size_t>(rec.symbol()) *
                                  kSymSize;
      if (sym_off + kSymSize > symtab.sh_size) {
        throw FormatError("relocation references symbol out of range");
      }
      const Elf64Sym sym = Elf64Sym::parse(
          ByteView(image),
          static_cast<std::size_t>(symtab.sh_offset) + sym_off);
      if (sym.st_shndx >= sections.size()) {
        throw FormatError("symbol defined in out-of-range section");
      }
      // S: the symbol's biased 64-bit kernel address once the module sits
      // at `base` (sh_addr is the offset inside the mapped image).
      const std::uint64_t s_addr =
          kKernelBias | (static_cast<std::uint64_t>(base) +
                         sections[sym.st_shndx].sh_addr + sym.st_value);
      const std::uint64_t value =
          s_addr + static_cast<std::uint64_t>(rec.r_addend);
      const std::size_t where =
          static_cast<std::size_t>(target.sh_offset + rec.r_offset);
      switch (rec.type()) {
        case kRX8664_64:
          if (rec.r_offset + 8 > target.sh_size) {
            throw FormatError("relocation slot outside target section");
          }
          store_le64(image, where, value);
          break;
        case kRX8664_PC32: {
          if (rec.r_offset + 4 > target.sh_size) {
            throw FormatError("relocation slot outside target section");
          }
          // PC-relative: S + A - P, where P is the biased address of the
          // relocation slot itself.  The kernel bias and the load base
          // cancel out of the difference, so the stored value depends
          // only on the layout inside the image — relocating the module
          // to a different base leaves every PC32 slot byte-identical
          // (which is why the integrity checker needs no normalization
          // pass for them).
          const std::uint64_t p_addr =
              kKernelBias | (static_cast<std::uint64_t>(base) +
                             target.sh_addr + rec.r_offset);
          const std::uint64_t rel = value - p_addr;
          // The displacement must fit a sign-extended 32-bit immediate
          // (intra-module distances always do).
          if (static_cast<std::uint64_t>(static_cast<std::int64_t>(
                  static_cast<std::int32_t>(rel & 0xFFFFFFFFu))) != rel) {
            throw FormatError("R_X86_64_PC32 displacement out of range");
          }
          store_le32(image, where, static_cast<std::uint32_t>(rel));
          break;
        }
        case kRX8664_32S:
          if (rec.r_offset + 4 > target.sh_size) {
            throw FormatError("relocation slot outside target section");
          }
          // The full value must be representable as a sign-extended
          // 32-bit quantity (the kernel address space guarantees it).
          if (static_cast<std::uint64_t>(static_cast<std::int64_t>(
                  static_cast<std::int32_t>(value & 0xFFFFFFFFu))) != value) {
            throw FormatError("R_X86_64_32S value out of range");
          }
          store_le32(image, where, static_cast<std::uint32_t>(value));
          break;
        default:
          throw FormatError("unsupported relocation type");
      }
    }
  }
}

Bytes load_ko(ByteView file, std::uint32_t base) {
  Bytes image(file.begin(), file.end());
  apply_ko_relocations(MutableByteView(image), base);
  return image;
}

}  // namespace mc::elf
