#include "elf/parser.hpp"

#include <algorithm>
#include <array>

#include "util/error.hpp"

namespace mc::elf {

namespace {

/// Owned copy of view[off, off+len) with the same bounds contract as
/// mc::slice (header items of the zero-copy path stay owned — they are a
/// few dozen bytes each and get parsed into structs regardless).
Bytes view_slice(const vmi::GuestView& v, std::size_t off, std::size_t len) {
  MC_CHECK(off + len <= v.size(), "slice out of range");
  Bytes out(len, 0);
  v.read_into(off, MutableByteView(out));
  return out;
}

}  // namespace

bool is_integrity_checked_section(const Elf64Shdr& sh) {
  if (sh.sh_type == kShtNull || sh.sh_type == kShtNobits) {
    return false;  // no bytes in the image (.bss) or placeholder
  }
  return sh.is_alloc() && !sh.is_writable();
}

void ElfImage::validate_and_name(std::size_t image_size, ByteView shstrtab) {
  if (!ehdr_.magic_ok()) {
    throw FormatError("module lacks ELF magic");
  }
  if (ehdr_.e_ident[kEiClass] != kElfClass64 ||
      ehdr_.e_ident[kEiData] != kElfData2Lsb) {
    throw FormatError("module is not little-endian ELF64");
  }
  if (ehdr_.e_shentsize != kShdrSize) {
    throw FormatError("unexpected e_shentsize");
  }
  names_.reserve(sections_.size());
  for (const Elf64Shdr& sh : sections_) {
    if (sh.sh_type != kShtNull && sh.sh_type != kShtNobits) {
      if (sh.sh_offset > image_size || sh.sh_size > image_size - sh.sh_offset) {
        throw FormatError("section data outside mapped image");
      }
    }
    // Resolve the name out of .shstrtab (NUL-terminated at sh_name).
    std::string name;
    if (sh.sh_name != 0) {
      if (sh.sh_name >= shstrtab.size()) {
        throw FormatError("sh_name outside .shstrtab");
      }
      const auto begin = shstrtab.begin() + sh.sh_name;
      const auto nul = std::find(begin, shstrtab.end(), std::uint8_t{0});
      if (nul == shstrtab.end()) {
        throw FormatError("unterminated section name");
      }
      name.assign(begin, nul);
    }
    names_.push_back(std::move(name));
  }
}

ElfImage::ElfImage(ByteView mapped) {
  ehdr_ = Elf64Ehdr::parse(mapped);
  if (!ehdr_.magic_ok()) {
    throw FormatError("module lacks ELF magic");
  }
  if (ehdr_.e_shoff > mapped.size() ||
      std::size_t{ehdr_.e_shnum} * kShdrSize >
          mapped.size() - ehdr_.e_shoff) {
    throw FormatError("section header table out of range");
  }
  sections_.reserve(ehdr_.e_shnum);
  for (std::uint16_t i = 0; i < ehdr_.e_shnum; ++i) {
    sections_.push_back(Elf64Shdr::parse(
        mapped, static_cast<std::size_t>(ehdr_.e_shoff) + i * kShdrSize));
  }
  if (ehdr_.e_shstrndx >= sections_.size()) {
    throw FormatError("e_shstrndx out of range");
  }
  const Elf64Shdr& strs = sections_[ehdr_.e_shstrndx];
  if (strs.sh_offset > mapped.size() ||
      strs.sh_size > mapped.size() - strs.sh_offset) {
    throw FormatError(".shstrtab outside mapped image");
  }
  validate_and_name(mapped.size(),
                    mapped.subspan(static_cast<std::size_t>(strs.sh_offset),
                                   static_cast<std::size_t>(strs.sh_size)));
}

ElfImage::ElfImage(const vmi::GuestView& mapped) {
  // Mirrors the ByteView constructor stage for stage, staging the file
  // header and each section header through fixed-size stack buffers and
  // the (small) section-name table through one owned copy.  The explicit
  // range checks are identical — failure behavior matches the ByteView
  // overload check for check.
  std::array<std::uint8_t, kEhdrSize> ehdr_buf{};
  if (mapped.size() < ehdr_buf.size()) {
    throw FormatError("image too small for Elf64_Ehdr");
  }
  mapped.read_into(0, MutableByteView(ehdr_buf));
  ehdr_ = Elf64Ehdr::parse(ByteView(ehdr_buf));
  if (!ehdr_.magic_ok()) {
    throw FormatError("module lacks ELF magic");
  }
  if (ehdr_.e_shoff > mapped.size() ||
      std::size_t{ehdr_.e_shnum} * kShdrSize >
          mapped.size() - ehdr_.e_shoff) {
    throw FormatError("section header table out of range");
  }
  sections_.reserve(ehdr_.e_shnum);
  std::array<std::uint8_t, kShdrSize> sh_buf{};
  for (std::uint16_t i = 0; i < ehdr_.e_shnum; ++i) {
    mapped.read_into(static_cast<std::size_t>(ehdr_.e_shoff) + i * kShdrSize,
                     MutableByteView(sh_buf));
    sections_.push_back(Elf64Shdr::parse(ByteView(sh_buf), 0));
  }
  if (ehdr_.e_shstrndx >= sections_.size()) {
    throw FormatError("e_shstrndx out of range");
  }
  const Elf64Shdr& strs = sections_[ehdr_.e_shstrndx];
  if (strs.sh_offset > mapped.size() ||
      strs.sh_size > mapped.size() - strs.sh_offset) {
    throw FormatError(".shstrtab outside mapped image");
  }
  const Bytes shstrtab =
      view_slice(mapped, static_cast<std::size_t>(strs.sh_offset),
                 static_cast<std::size_t>(strs.sh_size));
  validate_and_name(mapped.size(), ByteView(shstrtab));
}

const Elf64Shdr* ElfImage::find_section(const std::string& name) const {
  const int idx = find_section_index(name);
  return idx < 0 ? nullptr : &sections_[static_cast<std::size_t>(idx)];
}

int ElfImage::find_section_index(const std::string& name) const {
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    if (names_[i] == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::vector<core::IntegrityItem> ElfImage::extract_items(
    ByteView mapped) const {
  std::vector<core::IntegrityItem> items;

  // 1. The ELF file header (magic, machine, table geometry).
  items.push_back({core::ItemKind::kElfHeader, "ELF64_EHDR", 0,
                   slice(mapped, 0, kEhdrSize), false, {}});

  // 2. Every section header, as its own item (the ELF analogue of the
  //    paper's per-SECTION_HEADER items — E4-style table tampering is
  //    localized to the one header it touched).
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const std::size_t off =
        static_cast<std::size_t>(ehdr_.e_shoff) + i * kShdrSize;
    const std::string& label =
        names_[i].empty() ? std::to_string(i) : names_[i];
    items.push_back({core::ItemKind::kElfSectionHeader,
                     "ELF64_SHDR[" + label + "]",
                     static_cast<std::uint32_t>(off),
                     slice(mapped, off, kShdrSize), false, {}});
  }

  // 3. Data of each resident read-only section.  Executable sections carry
  //    loader-patched absolute addresses, so they are rva_sensitive.
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const Elf64Shdr& sh = sections_[i];
    if (!is_integrity_checked_section(sh)) {
      continue;
    }
    items.push_back({core::ItemKind::kSectionData, names_[i],
                     static_cast<std::uint32_t>(sh.sh_addr),
                     slice(mapped, static_cast<std::size_t>(sh.sh_offset),
                           static_cast<std::size_t>(sh.sh_size)),
                     sh.is_code(), {}});
  }
  return items;
}

std::vector<core::IntegrityItem> ElfImage::extract_items(
    const vmi::GuestView& mapped) const {
  // Same walk as the ByteView overload; headers become small owned
  // copies, section data stays borrowed (the zero-copy payoff: section
  // data is ~all of the image's hashable bytes).
  std::vector<core::IntegrityItem> items;

  items.push_back({core::ItemKind::kElfHeader, "ELF64_EHDR", 0,
                   view_slice(mapped, 0, kEhdrSize), false, {}});

  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const std::size_t off =
        static_cast<std::size_t>(ehdr_.e_shoff) + i * kShdrSize;
    const std::string& label =
        names_[i].empty() ? std::to_string(i) : names_[i];
    items.push_back({core::ItemKind::kElfSectionHeader,
                     "ELF64_SHDR[" + label + "]",
                     static_cast<std::uint32_t>(off),
                     view_slice(mapped, off, kShdrSize), false, {}});
  }

  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const Elf64Shdr& sh = sections_[i];
    if (!is_integrity_checked_section(sh)) {
      continue;
    }
    items.push_back({core::ItemKind::kSectionData, names_[i],
                     static_cast<std::uint32_t>(sh.sh_addr), Bytes{},
                     sh.is_code(),
                     mapped.subview(static_cast<std::size_t>(sh.sh_offset),
                                    static_cast<std::size_t>(sh.sh_size))});
  }
  return items;
}

}  // namespace mc::elf
