#include "elf/structs.hpp"

#include "util/error.hpp"

namespace mc::elf {

Elf64Ehdr Elf64Ehdr::parse(ByteView image, std::size_t offset) {
  if (offset + kEhdrSize > image.size()) {
    throw FormatError("image too small for Elf64_Ehdr");
  }
  Elf64Ehdr h;
  for (std::size_t i = 0; i < kEiNident; ++i) {
    h.e_ident[i] = image[offset + i];
  }
  h.e_type = load_le16(image, offset + 16);
  h.e_machine = load_le16(image, offset + 18);
  h.e_version = load_le32(image, offset + 20);
  h.e_entry = load_le64(image, offset + 24);
  h.e_phoff = load_le64(image, offset + 32);
  h.e_shoff = load_le64(image, offset + 40);
  h.e_flags = load_le32(image, offset + 48);
  h.e_ehsize = load_le16(image, offset + 52);
  h.e_phentsize = load_le16(image, offset + 54);
  h.e_phnum = load_le16(image, offset + 56);
  h.e_shentsize = load_le16(image, offset + 58);
  h.e_shnum = load_le16(image, offset + 60);
  h.e_shstrndx = load_le16(image, offset + 62);
  return h;
}

void Elf64Ehdr::serialize(Bytes& out) const {
  out.insert(out.end(), e_ident.begin(), e_ident.end());
  append_le16(out, e_type);
  append_le16(out, e_machine);
  append_le32(out, e_version);
  append_le64(out, e_entry);
  append_le64(out, e_phoff);
  append_le64(out, e_shoff);
  append_le32(out, e_flags);
  append_le16(out, e_ehsize);
  append_le16(out, e_phentsize);
  append_le16(out, e_phnum);
  append_le16(out, e_shentsize);
  append_le16(out, e_shnum);
  append_le16(out, e_shstrndx);
}

Elf64Shdr Elf64Shdr::parse(ByteView image, std::size_t offset) {
  if (offset + kShdrSize > image.size()) {
    throw FormatError("image too small for Elf64_Shdr");
  }
  Elf64Shdr s;
  s.sh_name = load_le32(image, offset);
  s.sh_type = load_le32(image, offset + 4);
  s.sh_flags = load_le64(image, offset + 8);
  s.sh_addr = load_le64(image, offset + 16);
  s.sh_offset = load_le64(image, offset + 24);
  s.sh_size = load_le64(image, offset + 32);
  s.sh_link = load_le32(image, offset + 40);
  s.sh_info = load_le32(image, offset + 44);
  s.sh_addralign = load_le64(image, offset + 48);
  s.sh_entsize = load_le64(image, offset + 56);
  return s;
}

void Elf64Shdr::serialize(Bytes& out) const {
  append_le32(out, sh_name);
  append_le32(out, sh_type);
  append_le64(out, sh_flags);
  append_le64(out, sh_addr);
  append_le64(out, sh_offset);
  append_le64(out, sh_size);
  append_le32(out, sh_link);
  append_le32(out, sh_info);
  append_le64(out, sh_addralign);
  append_le64(out, sh_entsize);
}

Elf64Sym Elf64Sym::parse(ByteView image, std::size_t offset) {
  if (offset + kSymSize > image.size()) {
    throw FormatError("image too small for Elf64_Sym");
  }
  Elf64Sym s;
  s.st_name = load_le32(image, offset);
  s.st_info = image[offset + 4];
  s.st_other = image[offset + 5];
  s.st_shndx = load_le16(image, offset + 6);
  s.st_value = load_le64(image, offset + 8);
  s.st_size = load_le64(image, offset + 16);
  return s;
}

void Elf64Sym::serialize(Bytes& out) const {
  append_le32(out, st_name);
  out.push_back(st_info);
  out.push_back(st_other);
  append_le16(out, st_shndx);
  append_le64(out, st_value);
  append_le64(out, st_size);
}

Elf64Rela Elf64Rela::parse(ByteView image, std::size_t offset) {
  if (offset + kRelaSize > image.size()) {
    throw FormatError("image too small for Elf64_Rela");
  }
  Elf64Rela r;
  r.r_offset = load_le64(image, offset);
  r.r_info = load_le64(image, offset + 8);
  r.r_addend = static_cast<std::int64_t>(load_le64(image, offset + 16));
  return r;
}

void Elf64Rela::serialize(Bytes& out) const {
  append_le64(out, r_offset);
  append_le64(out, r_info);
  append_le64(out, static_cast<std::uint64_t>(r_addend));
}

}  // namespace mc::elf
