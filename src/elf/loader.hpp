// Simulated Linux module loader: relocation application.
//
// The guest kernel this project simulates maps a .ko image at a 32-bit
// base inside the module area and resolves its Rela sections: each
// R_X86_64_64 / R_X86_64_32S record patches an absolute reference to
// S + A, where S is the biased 64-bit kernel address of the defining
// symbol (kKernelBias | (base + section sh_addr + st_value)).  This is
// the fixup shape the ELF64 FixupPolicy's pairwise normalization undoes
// (Algorithm 2 analogue in adjust_fixups).
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace mc::elf {

/// Applies every Rela section of the mapped image in place, as if the
/// module were loaded at guest VA `base`.  Throws FormatError if the
/// image or its relocation records are malformed.
void apply_ko_relocations(MutableByteView image, std::uint32_t base);

/// Convenience: copies `file` and relocates the copy for `base`.
Bytes load_ko(ByteView file, std::uint32_t base);

}  // namespace mc::elf
