// ELF64 constants (the subset a relocatable x86-64 kernel module needs).
//
// Names keep the elf.h spelling used by every Linux loader (e_ident
// indices, SHT_*, SHF_*, R_X86_64_*), the same way pe/constants.hpp keeps
// the WinNT.h spelling.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mc::elf {

// e_ident layout.
inline constexpr std::size_t kEiMag0 = 0;
inline constexpr std::size_t kEiClass = 4;
inline constexpr std::size_t kEiData = 5;
inline constexpr std::size_t kEiVersion = 6;
inline constexpr std::size_t kEiNident = 16;

inline constexpr std::uint8_t kElfMag0 = 0x7F;
inline constexpr std::uint8_t kElfMag1 = 'E';
inline constexpr std::uint8_t kElfMag2 = 'L';
inline constexpr std::uint8_t kElfMag3 = 'F';

inline constexpr std::uint8_t kElfClass64 = 2;   // ELFCLASS64
inline constexpr std::uint8_t kElfData2Lsb = 1;  // little-endian
inline constexpr std::uint8_t kEvCurrent = 1;

// e_type / e_machine.
inline constexpr std::uint16_t kEtRel = 1;       // .ko files are ET_REL
inline constexpr std::uint16_t kEmX8664 = 62;    // EM_X86_64

// Structure sizes (fixed by the ELF64 spec).
inline constexpr std::size_t kEhdrSize = 64;
inline constexpr std::size_t kShdrSize = 64;
inline constexpr std::size_t kSymSize = 24;
inline constexpr std::size_t kRelaSize = 24;

// sh_type.
inline constexpr std::uint32_t kShtNull = 0;
inline constexpr std::uint32_t kShtProgbits = 1;
inline constexpr std::uint32_t kShtSymtab = 2;
inline constexpr std::uint32_t kShtStrtab = 3;
inline constexpr std::uint32_t kShtRela = 4;
inline constexpr std::uint32_t kShtNobits = 8;

// sh_flags.
inline constexpr std::uint64_t kShfWrite = 0x1;
inline constexpr std::uint64_t kShfAlloc = 0x2;
inline constexpr std::uint64_t kShfExecinstr = 0x4;

// st_info composition.
inline constexpr std::uint8_t kStbGlobal = 1;
inline constexpr std::uint8_t kSttObject = 1;
inline constexpr std::uint8_t kSttFunc = 2;
inline constexpr std::uint8_t elf_st_info(std::uint8_t bind,
                                          std::uint8_t type) {
  return static_cast<std::uint8_t>((bind << 4) | (type & 0x0F));
}

// x86-64 relocation types (absolute-address shapes the loader patches).
inline constexpr std::uint32_t kRX8664_64 = 1;    // R_X86_64_64
inline constexpr std::uint32_t kRX8664_PC32 = 2;  // R_X86_64_PC32
inline constexpr std::uint32_t kRX8664_32S = 11;  // R_X86_64_32S

/// The canonical x86-64 kernel address-space prefix: guest module bases
/// stay 32-bit throughout the simulator (the vmm/vmi stack is u32), and
/// the link-view 64-bit address of a module loaded at `base` is
/// `kKernelBias | base` — the sign extension of a negative 32-bit kernel
/// address.  The ELF64 FixupPolicy carries this as its base_bias.
inline constexpr std::uint64_t kKernelBias = 0xFFFFFFFF00000000ull;

}  // namespace mc::elf
