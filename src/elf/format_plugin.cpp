// The ELF64 format plugin — the one TU where the checking pipeline's view
// of ELF parsing lives (mc_analyze's format-bypass rule keeps ElfImage
// construction confined to src/elf/).
#include "elf/constants.hpp"
#include "elf/parser.hpp"
#include "modchecker/format.hpp"

namespace mc::elf {

namespace {

class Elf64Format final : public core::ModuleFormat {
 public:
  core::ModuleFormatId id() const override {
    return core::ModuleFormatId::kElf64;
  }

  std::string_view name() const override { return "elf64"; }

  bool detect(ByteView header) const override {
    return header.size() >= kEiData + 1 && header[0] == kElfMag0 &&
           header[1] == kElfMag1 && header[2] == kElfMag2 &&
           header[3] == kElfMag3 && header[kEiClass] == kElfClass64 &&
           header[kEiData] == kElfData2Lsb;
  }

  std::vector<core::IntegrityItem> extract_items(
      const core::ModuleImage& image) const override {
    if (image.view_backed()) {
      const ElfImage parsed(image.view);
      return parsed.extract_items(image.view);
    }
    const ElfImage parsed(ByteView(image.bytes));
    return parsed.extract_items(ByteView(image.bytes));
  }

  core::FixupPolicy fixup_policy() const override {
    // The module loader patches 8-byte R_X86_64_64 absolute addresses and
    // 4-byte R_X86_64_32S truncations against the biased 64-bit kernel
    // address of the 32-bit load base.
    return core::FixupPolicy{8, 4, kKernelBias};
  }
};

}  // namespace

}  // namespace mc::elf

namespace mc::core {

const ModuleFormat& elf64_format() {
  static const elf::Elf64Format format;
  return format;
}

}  // namespace mc::core
