// ELF64 header structures with explicit (de)serialization.
//
// Exactly the pe/structs.hpp discipline: no packed-struct type punning —
// every header is a plain value type whose `parse` / `serialize` go
// through the checked little-endian helpers in util/bytes.hpp, so guest
// data never becomes a misaligned pointer.  Field names keep the elf.h
// spelling (e_shoff, sh_addr, st_value, r_info, ...).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "elf/constants.hpp"
#include "util/bytes.hpp"

namespace mc::elf {

/// Elf64_Ehdr — 64 bytes.
struct Elf64Ehdr {
  std::array<std::uint8_t, kEiNident> e_ident{
      kElfMag0, kElfMag1, kElfMag2, kElfMag3,
      kElfClass64, kElfData2Lsb, kEvCurrent,
      0, 0, 0, 0, 0, 0, 0, 0, 0};
  std::uint16_t e_type = kEtRel;
  std::uint16_t e_machine = kEmX8664;
  std::uint32_t e_version = kEvCurrent;
  std::uint64_t e_entry = 0;
  std::uint64_t e_phoff = 0;
  std::uint64_t e_shoff = 0;
  std::uint32_t e_flags = 0;
  std::uint16_t e_ehsize = kEhdrSize;
  std::uint16_t e_phentsize = 0;
  std::uint16_t e_phnum = 0;
  std::uint16_t e_shentsize = kShdrSize;
  std::uint16_t e_shnum = 0;
  std::uint16_t e_shstrndx = 0;

  bool magic_ok() const {
    return e_ident[0] == kElfMag0 && e_ident[1] == kElfMag1 &&
           e_ident[2] == kElfMag2 && e_ident[3] == kElfMag3;
  }

  static Elf64Ehdr parse(ByteView image, std::size_t offset = 0);
  void serialize(Bytes& out) const;
};

/// Elf64_Shdr — 64 bytes.
struct Elf64Shdr {
  std::uint32_t sh_name = 0;  // offset into .shstrtab
  std::uint32_t sh_type = kShtNull;
  std::uint64_t sh_flags = 0;
  std::uint64_t sh_addr = 0;
  std::uint64_t sh_offset = 0;
  std::uint64_t sh_size = 0;
  std::uint32_t sh_link = 0;
  std::uint32_t sh_info = 0;
  std::uint64_t sh_addralign = 0;
  std::uint64_t sh_entsize = 0;

  bool is_code() const { return (sh_flags & kShfExecinstr) != 0; }
  bool is_writable() const { return (sh_flags & kShfWrite) != 0; }
  bool is_alloc() const { return (sh_flags & kShfAlloc) != 0; }

  static Elf64Shdr parse(ByteView image, std::size_t offset);
  void serialize(Bytes& out) const;
};

/// Elf64_Sym — 24 bytes.
struct Elf64Sym {
  std::uint32_t st_name = 0;  // offset into the linked strtab
  std::uint8_t st_info = 0;
  std::uint8_t st_other = 0;
  std::uint16_t st_shndx = 0;  // defining section index
  std::uint64_t st_value = 0;  // section-relative in ET_REL
  std::uint64_t st_size = 0;

  static Elf64Sym parse(ByteView image, std::size_t offset);
  void serialize(Bytes& out) const;
};

/// Elf64_Rela — 24 bytes.
struct Elf64Rela {
  std::uint64_t r_offset = 0;  // where in the target section to patch
  std::uint64_t r_info = 0;    // (symbol index << 32) | relocation type
  std::int64_t r_addend = 0;

  std::uint32_t symbol() const {
    return static_cast<std::uint32_t>(r_info >> 32);
  }
  std::uint32_t type() const {
    return static_cast<std::uint32_t>(r_info & 0xFFFFFFFFu);
  }
  static std::uint64_t make_info(std::uint32_t symbol, std::uint32_t type) {
    return (static_cast<std::uint64_t>(symbol) << 32) | type;
  }

  static Elf64Rela parse(ByteView image, std::size_t offset);
  void serialize(Bytes& out) const;
};

}  // namespace mc::elf
