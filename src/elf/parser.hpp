// Parser for in-memory (mapped) ELF64 kernel-module images — the ELF side
// of the paper's Module-Parser component and Algorithm 1.
//
// Given a copy of a .ko extracted from guest memory, the parser verifies
// the ELF magic/class/encoding, walks Elf64_Ehdr → section header table →
// section names, and produces the list of *integrity items*: the file
// header, every section header, and the data of each allocated read-only
// section (code, rodata, the relocation/symbol tables the module keeps
// resident) — exactly the units the Integrity-Checker hashes separately.
//
// The synthetic .ko images this project builds are already laid out as
// mapped images: sh_offset is the position inside the image and sh_addr
// equals it, so a guest extraction at the module base parses with the
// same walk as the golden file.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "elf/structs.hpp"
#include "modchecker/item.hpp"
#include "util/bytes.hpp"
#include "vmi/guest_view.hpp"

namespace mc::elf {

/// Fully parsed view of a mapped ELF64 module.
class ElfImage {
 public:
  /// Parses `mapped` (memory layout).  Throws FormatError on bad magics or
  /// out-of-bounds structures.
  explicit ElfImage(ByteView mapped);

  /// Same parse over a scatter-gather GuestView (the zero-copy Acquire
  /// path): the file header and section headers are staged through small
  /// fixed-size stack buffers and the section-name table through one
  /// small owned copy, so nothing image-sized is materialized.  Failure
  /// behavior matches the ByteView overload check for check.
  explicit ElfImage(const vmi::GuestView& mapped);

  const Elf64Ehdr& header() const { return ehdr_; }
  const std::vector<Elf64Shdr>& sections() const { return sections_; }

  /// Resolved name of section `index` ("" for unnamed/null sections).
  const std::string& section_name(std::size_t index) const {
    return names_[index];
  }

  /// Finds a section by name; returns nullptr if absent.
  const Elf64Shdr* find_section(const std::string& name) const;
  /// Index variant (needed to follow sh_link/sh_info); -1 if absent.
  int find_section_index(const std::string& name) const;

  /// Algorithm 1: extracts the ELF header, every section header and the
  /// data of each allocated, non-writable section as separate items.
  /// Executable sections carry loader-patched absolute addresses, so
  /// their data is rva_sensitive.
  std::vector<core::IntegrityItem> extract_items(ByteView mapped) const;

  /// Zero-copy variant: header items carry small owned copies, section
  /// data items borrow subviews of `mapped`.
  std::vector<core::IntegrityItem> extract_items(
      const vmi::GuestView& mapped) const;

 private:
  void validate_and_name(std::size_t image_size, ByteView shstrtab);

  Elf64Ehdr ehdr_;
  std::vector<Elf64Shdr> sections_;
  std::vector<std::string> names_;
};

/// True if a section's data participates in integrity checking: resident
/// (allocated, with bytes in the image) and not writable.  Writable data
/// legitimately changes at runtime; NOBITS (.bss) has no image bytes.
bool is_integrity_checked_section(const Elf64Shdr& sh);

}  // namespace mc::elf
