// Synthetic ELF64 kernel-module (.ko) builder.
//
// Produces byte-faithful relocatable x86-64 module images in *mapped*
// layout: Elf64_Ehdr at offset 0, each section's data 64-byte aligned with
// sh_addr == sh_offset, the section header table at the end.  That makes
// one file serve as both the golden on-disk module and (after
// apply_ko_relocations) the image a guest exposes at its load base, the
// same dual role PeBuilder's output plays on the PE side.
//
// Callers add content sections, declare symbols at (section, offset), and
// attach Rela records referencing those symbols; build() generates
// .rela.<target> sections, .symtab/.strtab, and .shstrtab.  All generated
// tables are SHF_ALLOC and read-only, so they are integrity-checked —
// tampering with a resident relocation or symbol table is detectable,
// and their content is base-independent (section-relative values only).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "elf/structs.hpp"
#include "util/bytes.hpp"

namespace mc::elf {

class KoBuilder {
 public:
  /// `module_name` is informational (diagnostics; not embedded).
  explicit KoBuilder(std::string module_name);

  const std::string& module_name() const { return module_name_; }

  /// Adds a content section.  Order of calls fixes section indices
  /// (index 0 is the mandatory null section).
  KoBuilder& add_section(const std::string& name, Bytes data,
                         std::uint64_t flags,
                         std::uint32_t type = kShtProgbits);

  /// Declares a global symbol at `value` bytes into `section`.  Symbols
  /// are section-relative (ET_REL); the loader biases them by the load
  /// base when applying relocations.
  KoBuilder& add_symbol(const std::string& name, const std::string& section,
                        std::uint64_t value);

  /// Attaches a relocation: at `offset` within `target_section`, the
  /// loader must patch a reference to `symbol` + `addend`.  `type` is
  /// kRX8664_64 (8-byte absolute slot), kRX8664_32S (4-byte absolute
  /// slot) or kRX8664_PC32 (4-byte PC-relative slot).
  KoBuilder& add_rela(const std::string& target_section, std::uint64_t offset,
                      std::uint32_t type, const std::string& symbol,
                      std::int64_t addend = 0);

  /// Serializes the module image.  The builder can be reused afterwards.
  Bytes build() const;

 private:
  struct PendingSection {
    std::string name;
    Bytes data;
    std::uint64_t flags = 0;
    std::uint32_t type = kShtProgbits;
  };
  struct PendingSymbol {
    std::string name;
    std::string section;
    std::uint64_t value = 0;
  };
  struct PendingRela {
    std::string target;
    std::uint64_t offset = 0;
    std::uint32_t type = 0;
    std::string symbol;
    std::int64_t addend = 0;
  };

  /// Index into sections_ (not the final shndx); throws on unknown name.
  std::size_t section_index(const std::string& name) const;
  std::size_t symbol_index(const std::string& name) const;

  std::string module_name_;
  std::vector<PendingSection> sections_;
  std::vector<PendingSymbol> symbols_;
  std::vector<PendingRela> relas_;
};

}  // namespace mc::elf
