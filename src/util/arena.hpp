// Bump-pointer arena for per-check scratch buffers.
//
// The hot compare path needs short-lived mutable copies of guest bytes
// (Algorithm 2 rewrites relocation words in place before hashing).  A
// fresh std::vector per comparison means one malloc/free pair per item
// pair; across a 15-guest pool scan that is tens of thousands of
// allocations whose lifetimes are perfectly nested.  The Arena serves
// them from one geometrically-grown block chain and recycles the space
// with a cursor reset instead of a free.
//
// Usage contract:
//   * Arena::alloc(n) returns an 8-byte-aligned MutableByteView valid
//     until the enclosing ArenaScope unwinds (or reset() is called).
//   * ArenaScope saves the cursor on entry and restores it on exit, so
//     nested scopes recycle space stack-fashion.  Allocations must not
//     outlive their scope — the next scope WILL overwrite them.
//   * scratch_arena() is a thread_local instance for call-local scratch;
//     it keeps worker threads malloc-free without sharing or locking.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/bytes.hpp"

namespace mc {

class Arena {
 public:
  explicit Arena(std::size_t initial_capacity = 64 * 1024)
      : initial_capacity_(initial_capacity ? initial_capacity : 64) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns an 8-byte-aligned scratch span of `n` bytes (zero-filled
  /// blocks come from the allocator; recycled space holds stale data —
  /// callers always overwrite before reading).
  MutableByteView alloc(std::size_t n) {
    const std::size_t need = (n + 7u) & ~std::size_t{7};
    if (block_ >= blocks_.size() || used_ + need > blocks_[block_]->size()) {
      next_block(need);
    }
    MutableByteView out(blocks_[block_]->data() + used_, n);
    used_ += need;
    return out;
  }

  /// Copies `src` into arena scratch and returns the mutable copy.
  MutableByteView clone(ByteView src) {
    MutableByteView out = alloc(src.size());
    copy_bytes(out, src);
    return out;
  }

  /// Releases everything allocated so far (keeps the blocks for reuse).
  void reset() {
    block_ = 0;
    used_ = 0;
  }

  /// Total bytes of backing capacity currently held.
  std::size_t capacity() const {
    std::size_t total = 0;
    for (const auto& b : blocks_) {
      total += b->size();
    }
    return total;
  }

 private:
  friend class ArenaScope;

  struct Mark {
    std::size_t block;
    std::size_t used;
  };

  Mark mark() const { return {block_, used_}; }
  void rewind(Mark m) {
    block_ = m.block;
    used_ = m.used;
  }

  void next_block(std::size_t need) {
    // Find the first block at or after the cursor with room for a fresh
    // `need`-byte run; append a bigger one (doubling) if none fits.
    std::size_t i = block_;
    if (i < blocks_.size() && used_ != 0) {
      ++i;
    }
    while (i < blocks_.size() && blocks_[i]->size() < need) {
      ++i;
    }
    if (i == blocks_.size()) {
      std::size_t cap = blocks_.empty() ? initial_capacity_
                                        : blocks_.back()->size() * 2;
      if (cap < need) {
        cap = need;
      }
      blocks_.push_back(std::make_unique<Bytes>(cap));
    }
    block_ = i;
    used_ = 0;
  }

  std::size_t initial_capacity_;
  std::vector<std::unique_ptr<Bytes>> blocks_;
  std::size_t block_ = 0;
  std::size_t used_ = 0;
};

/// RAII cursor save/restore: everything allocated inside the scope is
/// recycled when it exits.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_.rewind(mark_); }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

/// Per-thread scratch arena for call-local buffers on the hot path.
inline Arena& scratch_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace mc
