// Simulated time accounting.
//
// The paper measures ModChecker runtime on a specific Xen testbed.  We have
// no Xen, so every simulated operation (page mapping, byte copy, hashing,
// parsing) *charges* calibrated time to a SimClock instead of being measured
// with a wall clock.  This keeps the reproduced figures deterministic and
// machine-independent while preserving the paper's runtime *shapes*
// (component ranking, linearity, the contention knee of Fig. 8).
//
// Charges are expressed in nanoseconds and may be scaled by a contention
// factor (see vmm::ContentionModel) before being accumulated.
#pragma once

#include <cstdint>
#include <string>

namespace mc {

/// Simulated nanoseconds.
using SimNanos = std::uint64_t;

/// A monotonically accumulating simulated clock.
///
/// Not thread-safe by design: each worker in a parallel pool scan owns its
/// own SimClock and the results are merged (max for wall time, sum for CPU
/// time) by the orchestrator — see modchecker::ModChecker.
class SimClock {
 public:
  SimClock() = default;

  /// Charges `nanos` of simulated time, scaled by the current slowdown
  /// factor. Returns the amount actually charged.
  SimNanos charge(SimNanos nanos);

  /// Sets the multiplicative slowdown applied to subsequent charges
  /// (1.0 = no contention).  Values < 1 are clamped to 1.
  void set_slowdown(double factor);
  double slowdown() const { return slowdown_; }

  /// Current simulated time since construction / last reset.
  SimNanos now() const { return now_; }

  void reset() { now_ = 0; }

  /// Advances the clock without scaling (used to model fixed latencies
  /// such as scheduling delays that contention does not amplify).
  void advance_raw(SimNanos nanos) { now_ += nanos; }

 private:
  SimNanos now_ = 0;
  double slowdown_ = 1.0;
};

/// Formats simulated nanoseconds as a human-readable quantity
/// (e.g. "12.34 ms").
std::string format_sim_nanos(SimNanos nanos);

/// Convenience conversions.
constexpr SimNanos sim_us(std::uint64_t us) { return us * 1000ull; }
constexpr SimNanos sim_ms(std::uint64_t ms) { return ms * 1000000ull; }
constexpr double to_ms(SimNanos nanos) {
  return static_cast<double>(nanos) / 1e6;
}

}  // namespace mc
