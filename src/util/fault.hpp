// Structured guest-fault domain.
//
// The paper assumes every introspected VM answers every read; real clouds
// do not — guests pause, migrate and page out mid-scan.  A transient
// introspection failure is therefore *data* the majority vote must reason
// about, not an exception that unwinds a whole pool sweep.  This header is
// the taxonomy: every fault observed on the scan hot path becomes a
// FaultRecord that travels in Result-style returns (`Fallible<T>` /
// `MaybeFault`) from the VMI layer up through the CheckPipeline into the
// reports.  Exceptions remain reserved for genuine API misuse
// (InvalidArgument, NotFoundError on a nonexistent domain) and for the
// legacy throwing wrappers, which raise GuestFaultError — a VmiError
// subclass carrying the record — so pre-refactor callers and tests keep
// their contract.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "util/error.hpp"

namespace mc {

/// What went wrong.  One code per distinguishable failure shape so retry /
/// quarantine policies and operators can discriminate without string
/// matching.
enum class FaultCode : std::uint8_t {
  kReadFault,          // guest memory read failed (paged out, I/O error)
  kTranslationFault,   // V2P walk hit a non-present PDE/PTE
  kNoAddressSpace,     // guest has no CR3 yet (not booted)
  kDebugBlockMissing,  // KDBG-style scan found no debug block
  kDomainGone,         // domain disappeared between list and attach
  kUnrecognizedBuild,  // debug-block version id matches no known profile
};

/// Which pipeline stage observed the fault.
enum class CheckStage : std::uint8_t {
  kAcquire,
  kParse,
  kNormalize,
  kCompare,
  kVote,
  kService,
};

const char* to_string(FaultCode code);
const char* to_string(CheckStage stage);

/// One observed fault: what, where (domain / guest VA / physical address),
/// on which retry attempt, in which stage.  `domain` is the vmm::DomainId
/// value; it is carried as the raw integer so util/ stays free of a vmm/
/// dependency.
struct FaultRecord {
  FaultCode code = FaultCode::kReadFault;
  std::uint32_t domain = 0;
  std::uint32_t va = 0;       // guest-virtual address, when meaningful
  std::uint64_t pa = 0;       // guest-physical address, when meaningful
  std::uint32_t attempt = 0;  // 1-based retry attempt that observed it
  CheckStage stage = CheckStage::kAcquire;
  std::string detail;         // human-readable specifics
};

/// "Dom3 acquire attempt 2: read-fault at va=0x... — detail".
std::string format_fault(const FaultRecord& record);

/// Thrown by the legacy (throwing) VMI entry points when the underlying
/// fault-returning core observes a guest fault.  Derives VmiError so every
/// pre-refactor `catch (const VmiError&)` / EXPECT_THROW keeps working;
/// new code catches this type and converts back to the record.
class GuestFaultError : public VmiError {
 public:
  explicit GuestFaultError(FaultRecord record)
      : VmiError(record.detail.empty() ? std::string(to_string(record.code))
                                       : record.detail),
        record_(std::move(record)) {}

  const FaultRecord& record() const { return record_; }

 private:
  FaultRecord record_;
};

/// Result-style return: either a value or the fault that prevented it.
/// Deliberately minimal (no monadic sugar) — call sites read as
/// `if (!r.ok()) return r.fault();`.  The class itself is [[nodiscard]]:
/// dropping a Fallible return silently converts a guest fault into
/// "nothing happened" (the tier-2 fallible-discard rule enforces the same
/// contract across files, with or without the attribute in scope).
template <typename T>
class [[nodiscard]] Fallible {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, so
  // plain `return value;` / `return fault;` both work at call sites.
  Fallible(T value) : v_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Fallible(FaultRecord fault) : v_(std::move(fault)) {}

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  T& value() {
    MC_CHECK(ok(), "Fallible::value() on a faulted result");
    return std::get<T>(v_);
  }
  const T& value() const {
    MC_CHECK(ok(), "Fallible::value() on a faulted result");
    return std::get<T>(v_);
  }

  FaultRecord& fault() {
    MC_CHECK(!ok(), "Fallible::fault() on a successful result");
    return std::get<FaultRecord>(v_);
  }
  const FaultRecord& fault() const {
    MC_CHECK(!ok(), "Fallible::fault() on a successful result");
    return std::get<FaultRecord>(v_);
  }

 private:
  std::variant<T, FaultRecord> v_;
};

/// For void-returning operations: empty means success.
using MaybeFault = std::optional<FaultRecord>;

}  // namespace mc
