#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mc {

ThreadPool::ThreadPool(std::size_t threads) {
  MC_CHECK(threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace mc
