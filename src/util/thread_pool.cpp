#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mc {

ThreadPool::ThreadPool(std::size_t partitions,
                       std::size_t threads_per_partition) {
  MC_CHECK(partitions >= 1, "thread pool needs at least one partition");
  MC_CHECK(threads_per_partition >= 1,
           "thread pool needs at least one worker per partition");
  slices_.reserve(partitions);
  for (std::size_t p = 0; p < partitions; ++p) {
    slices_.push_back(std::make_unique<Slice>());
  }
  workers_.reserve(partitions * threads_per_partition);
  for (std::size_t p = 0; p < partitions; ++p) {
    for (std::size_t i = 0; i < threads_per_partition; ++i) {
      Slice& slice = *slices_[p];
      workers_.emplace_back([this, &slice] { worker_loop(slice); });
    }
  }
}

ThreadPool::~ThreadPool() {
  for (auto& slice : slices_) {
    {
      std::lock_guard<std::mutex> lock(slice->mutex);
      slice->stopping = true;
    }
    slice->cv.notify_all();
  }
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::worker_loop(Slice& slice) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(slice.mutex);
      slice.cv.wait(lock,
                    [&] { return slice.stopping || !slice.tasks.empty(); });
      if (slice.tasks.empty()) {
        return;  // stopping and drained
      }
      task = std::move(slice.tasks.front());
      slice.tasks.pop();
    }
    task();
  }
}

}  // namespace mc
