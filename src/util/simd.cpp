#include "util/simd.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>

#include "util/wordload.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define MC_SIMD_X86 1
#endif

namespace mc::simd {

namespace {

bool env_force_scalar() {
  const char* v = std::getenv("MC_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' &&
         !(v[0] == '0' && v[1] == '\0');
}

std::atomic<bool>& force_flag() {
  static std::atomic<bool> flag{env_force_scalar()};
  return flag;
}

// SWAR needs "trailing zero bit count / 8 = first differing byte", which
// holds for native loads only on little-endian hosts.
constexpr bool kLittleEndian =
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    false;
#else
    true;
#endif

bool cpu_has_avx2() {
#if defined(MC_SIMD_X86)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

Level detect_level() {
  if (!kLittleEndian) {
    return Level::kScalar;
  }
  return cpu_has_avx2() ? Level::kAvx2 : Level::kSwar;
}

std::size_t mismatch_scalar(const std::uint8_t* a, const std::uint8_t* b,
                            std::size_t n, std::size_t i) {
  for (; i < n; ++i) {
    if (a[i] != b[i]) {
      return i;
    }
  }
  return n;
}

std::size_t mismatch_swar(const std::uint8_t* a, const std::uint8_t* b,
                          std::size_t n, std::size_t i) {
  // XOR eight bytes at a time; only a nonzero word takes the branch, and
  // the trailing-zero count locates the exact differing byte.
  while (i + 8 <= n) {
    const std::uint64_t x = load_word64(a + i) ^ load_word64(b + i);
    if (x != 0) {
      return i + static_cast<std::size_t>(std::countr_zero(x)) / 8;
    }
    i += 8;
  }
  return mismatch_scalar(a, b, n, i);
}

#if defined(MC_SIMD_X86)
__attribute__((target("avx2"))) std::size_t mismatch_avx2(
    const std::uint8_t* a, const std::uint8_t* b, std::size_t n,
    std::size_t i) {
  while (i + 32 <= n) {
    const __m256i va = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(a + i));  // mc-lint: allow(raw-reinterpret-cast)
    const __m256i vb = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(b + i));  // mc-lint: allow(raw-reinterpret-cast)
    const unsigned mask = static_cast<unsigned>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
    if (mask != 0xFFFFFFFFu) {
      return i + static_cast<std::size_t>(std::countr_zero(~mask));
    }
    i += 32;
  }
  return mismatch_swar(a, b, n, i);
}
#endif

}  // namespace

bool force_scalar() { return force_flag().load(std::memory_order_relaxed); }

void set_force_scalar(bool on) {
  force_flag().store(on, std::memory_order_relaxed);
}

Level active_level(Policy policy) {
  if (policy == Policy::kScalar || force_scalar()) {
    return Level::kScalar;
  }
  static const Level detected = detect_level();
  return detected;
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSwar:
      return "swar";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::size_t mismatch(const std::uint8_t* a, const std::uint8_t* b,
                     std::size_t n, std::size_t from, Policy policy) {
  if (from >= n) {
    return n;
  }
  switch (active_level(policy)) {
    case Level::kScalar:
      return mismatch_scalar(a, b, n, from);
    case Level::kSwar:
      return mismatch_swar(a, b, n, from);
    case Level::kAvx2:
#if defined(MC_SIMD_X86)
      return mismatch_avx2(a, b, n, from);
#else
      return mismatch_swar(a, b, n, from);
#endif
  }
  return mismatch_scalar(a, b, n, from);
}

bool equal(ByteView a, ByteView b, Policy policy) {
  if (a.size() != b.size()) {
    return false;
  }
  if (a.empty()) {
    return true;
  }
  return mismatch(a.data(), b.data(), a.size(), 0, policy) == a.size();
}

}  // namespace mc::simd
