#include "util/sim_clock.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace mc {

SimNanos SimClock::charge(SimNanos nanos) {
  const auto scaled = static_cast<SimNanos>(
      std::llround(static_cast<double>(nanos) * slowdown_));
  now_ += scaled;
  return scaled;
}

void SimClock::set_slowdown(double factor) {
  slowdown_ = std::max(1.0, factor);
}

std::string format_sim_nanos(SimNanos nanos) {
  char buf[64];
  const double n = static_cast<double>(nanos);
  if (nanos < 1000ull) {
    std::snprintf(buf, sizeof buf, "%llu ns",
                  static_cast<unsigned long long>(nanos));
  } else if (nanos < 1000000ull) {
    std::snprintf(buf, sizeof buf, "%.2f us", n / 1e3);
  } else if (nanos < 1000000000ull) {
    std::snprintf(buf, sizeof buf, "%.2f ms", n / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", n / 1e9);
  }
  return buf;
}

}  // namespace mc
