// Error handling primitives shared by every ModChecker library.
//
// Following C++ Core Guidelines E.2/E.14, unrecoverable API misuse and
// malformed-input conditions are reported with exceptions derived from
// `mc::Error`.  Each subsystem throws a distinct subclass so callers can
// discriminate (e.g. a parse failure vs. an introspection fault).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace mc {

/// Root of the ModChecker exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed or out-of-spec binary input (bad PE image, truncated buffer...).
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error(what) {}
};

/// Guest memory access outside mapped regions, bad translation, bad frame.
class MemoryError : public Error {
 public:
  explicit MemoryError(const std::string& what) : Error(what) {}
};

/// Introspection-layer failure (unknown symbol, KDBG scan failed...).
class VmiError : public Error {
 public:
  explicit VmiError(const std::string& what) : Error(what) {}
};

/// A requested entity (domain, module, section) does not exist.
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error(what) {}
};

/// API misuse / violated precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace mc

/// Precondition check: throws mc::InvalidArgument on failure.  Always on
/// (this codebase favours diagnosability over the last few percent of
/// throughput; hot loops use unchecked accessors explicitly).
#define MC_CHECK(expr, msg)                                              \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::mc::detail::throw_check_failure(#expr, __FILE__, __LINE__, msg); \
    }                                                                    \
  } while (false)
