// Little-endian byte buffer helpers.
//
// Guest (Windows XP, x86-32) data structures are little-endian; the host is
// as well, but all multi-byte accesses go through these helpers so the code
// never type-puns through misaligned pointers (Core Guidelines C.183).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace mc {

/// The universal owning byte container used across the codebase.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning views.
using ByteView = std::span<const std::uint8_t>;
using MutableByteView = std::span<std::uint8_t>;

inline std::uint16_t load_le16(ByteView b, std::size_t off) {
  MC_CHECK(off + 2 <= b.size(), "load_le16 out of range");
  return static_cast<std::uint16_t>(b[off] | (b[off + 1] << 8));
}

inline std::uint32_t load_le32(ByteView b, std::size_t off) {
  MC_CHECK(off + 4 <= b.size(), "load_le32 out of range");
  return static_cast<std::uint32_t>(b[off]) |
         (static_cast<std::uint32_t>(b[off + 1]) << 8) |
         (static_cast<std::uint32_t>(b[off + 2]) << 16) |
         (static_cast<std::uint32_t>(b[off + 3]) << 24);
}

inline std::uint64_t load_le64(ByteView b, std::size_t off) {
  MC_CHECK(off + 8 <= b.size(), "load_le64 out of range");
  return static_cast<std::uint64_t>(load_le32(b, off)) |
         (static_cast<std::uint64_t>(load_le32(b, off + 4)) << 32);
}

inline void store_le16(MutableByteView b, std::size_t off, std::uint16_t v) {
  MC_CHECK(off + 2 <= b.size(), "store_le16 out of range");
  b[off] = static_cast<std::uint8_t>(v & 0xFF);
  b[off + 1] = static_cast<std::uint8_t>((v >> 8) & 0xFF);
}

inline void store_le32(MutableByteView b, std::size_t off, std::uint32_t v) {
  MC_CHECK(off + 4 <= b.size(), "store_le32 out of range");
  b[off] = static_cast<std::uint8_t>(v & 0xFF);
  b[off + 1] = static_cast<std::uint8_t>((v >> 8) & 0xFF);
  b[off + 2] = static_cast<std::uint8_t>((v >> 16) & 0xFF);
  b[off + 3] = static_cast<std::uint8_t>((v >> 24) & 0xFF);
}

inline void store_le64(MutableByteView b, std::size_t off, std::uint64_t v) {
  store_le32(b, off, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  store_le32(b, off + 4, static_cast<std::uint32_t>(v >> 32));
}

/// Appends `v` to `out` in little-endian order.
inline void append_le16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

inline void append_le32(Bytes& out, std::uint32_t v) {
  append_le16(out, static_cast<std::uint16_t>(v & 0xFFFF));
  append_le16(out, static_cast<std::uint16_t>(v >> 16));
}

inline void append_le64(Bytes& out, std::uint64_t v) {
  append_le32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  append_le32(out, static_cast<std::uint32_t>(v >> 32));
}

/// Views the characters of `s` as bytes without copying.  This is the one
/// blessed pointer-reinterpretation in the codebase: everything else calls
/// this instead of spelling its own cast (mc_lint bans raw reinterpret_cast
/// outside this header).
inline ByteView as_bytes(std::string_view s) {
  return ByteView(
      reinterpret_cast<const std::uint8_t*>(s.data()),  // mc-lint: allow(raw-reinterpret-cast)
      s.size());
}

/// Copies `src` into the front of `dst` (dst must be at least as large).
/// The one blessed raw memcpy; callers pass spans, never raw pointers, so
/// the size relation is checked here exactly once.
inline void copy_bytes(MutableByteView dst, ByteView src) {
  MC_CHECK(src.size() <= dst.size(), "copy_bytes destination too small");
  if (!src.empty()) {
    std::memcpy(dst.data(), src.data(), src.size());  // mc-lint: allow(raw-memcpy)
  }
}

/// Appends raw bytes.
inline void append_bytes(Bytes& out, ByteView src) {
  out.insert(out.end(), src.begin(), src.end());
}

/// Appends a NUL-padded ASCII string of exactly `width` bytes.
inline void append_padded_ascii(Bytes& out, const std::string& s,
                                std::size_t width) {
  MC_CHECK(s.size() <= width, "string longer than field width");
  out.insert(out.end(), s.begin(), s.end());
  out.insert(out.end(), width - s.size(), 0);
}

/// Rounds `v` up to the next multiple of `align` (align must be power of 2).
constexpr std::uint32_t align_up(std::uint32_t v, std::uint32_t align) {
  return (v + align - 1) & ~(align - 1);
}

/// Extracts a copy of b[off, off+len).
inline Bytes slice(ByteView b, std::size_t off, std::size_t len) {
  MC_CHECK(off + len <= b.size(), "slice out of range");
  return Bytes(b.begin() + static_cast<std::ptrdiff_t>(off),
               b.begin() + static_cast<std::ptrdiff_t>(off + len));
}

}  // namespace mc
