// Fixed-size thread pool (CP.4: think in terms of tasks, not threads).
//
// Used by the parallel pool-scan mode of ModChecker — the extension the
// paper proposes in §V-C.1 ("the modular design of ModChecker can support
// parallel access of virtual machines' memory") — and, in partitioned
// form, by the sharded fleet coordinator: a pool built with
// `ThreadPool(partitions, threads_per_partition)` gives every partition
// its own task queue and a dedicated worker slice, so one shard's backlog
// can never starve another shard's workers.  The classic single-queue
// constructor is partition count 1.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace mc {

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers (>= 1) sharing one task queue.
  explicit ThreadPool(std::size_t threads) : ThreadPool(1, threads) {}

  /// Creates a partitioned pool: `partitions` independent task queues
  /// (>= 1), each drained by its own `threads_per_partition` workers
  /// (>= 1).  Tasks submitted to partition p run only on p's workers.
  ThreadPool(std::size_t partitions, std::size_t threads_per_partition);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }
  std::size_t partitions() const { return slices_.size(); }

  /// Enqueues a callable on partition 0 and returns a future for its
  /// result (the classic single-queue surface).
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    return submit_to(0, std::forward<F>(f));
  }

  /// Enqueues a callable on the given partition's queue.
  template <typename F>
  auto submit_to(std::size_t partition, F&& f)
      -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    Slice& slice = *slices_.at(partition);
    {
      std::lock_guard<std::mutex> lock(slice.mutex);
      if (slice.stopping) {
        throw std::runtime_error("ThreadPool::submit after shutdown");
      }
      slice.tasks.emplace([task]() { (*task)(); });
    }
    slice.cv.notify_one();
    return result;
  }

 private:
  /// One partition: queue, lock, and stop flag.  Workers are bound to a
  /// slice at construction and never touch another slice's queue.
  struct Slice {
    std::mutex mutex;
    std::condition_variable cv;
    std::queue<std::function<void()>> tasks;
    bool stopping = false;
  };

  void worker_loop(Slice& slice);

  std::vector<std::unique_ptr<Slice>> slices_;
  std::vector<std::thread> workers_;
};

}  // namespace mc
