// Fixed-size thread pool (CP.4: think in terms of tasks, not threads).
//
// Used by the parallel pool-scan mode of ModChecker — the extension the
// paper proposes in §V-C.1 ("the modular design of ModChecker can support
// parallel access of virtual machines' memory").
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace mc {

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers (>= 1).
  explicit ThreadPool(std::size_t threads);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a callable and returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool::submit after shutdown");
      }
      tasks_.emplace([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace mc
