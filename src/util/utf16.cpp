#include "util/utf16.hpp"

namespace mc {

Bytes ascii_to_utf16le(const std::string& ascii) {
  Bytes out;
  out.reserve(ascii.size() * 2);
  for (const char c : ascii) {
    MC_CHECK(static_cast<unsigned char>(c) < 0x80, "non-ASCII module name");
    out.push_back(static_cast<std::uint8_t>(c));
    out.push_back(0);
  }
  return out;
}

std::string utf16le_to_ascii(ByteView utf16) {
  if (utf16.size() % 2 != 0) {
    throw FormatError("UTF-16LE buffer has odd length");
  }
  std::string out;
  out.reserve(utf16.size() / 2);
  for (std::size_t i = 0; i < utf16.size(); i += 2) {
    const std::uint16_t unit = load_le16(utf16, i);
    if (unit == 0) {
      break;  // embedded terminator
    }
    if (unit >= 0x80) {
      throw FormatError("non-ASCII UTF-16 code unit in module name");
    }
    out.push_back(static_cast<char>(unit));
  }
  return out;
}

}  // namespace mc
