// Minimal ASCII <-> UTF-16LE conversion.
//
// Windows kernel structures (UNICODE_STRING / BaseDllName) store module
// names in UTF-16LE.  Module names in this codebase are plain ASCII, so the
// conversion is a simple widening/narrowing with validation.
#pragma once

#include <string>

#include "util/bytes.hpp"

namespace mc {

/// Encodes an ASCII string as UTF-16LE bytes (no terminator).
Bytes ascii_to_utf16le(const std::string& ascii);

/// Decodes UTF-16LE bytes into an ASCII string.  Throws FormatError on odd
/// length or non-ASCII code units.
std::string utf16le_to_ascii(ByteView utf16);

}  // namespace mc
