// Shared unaligned word loads for the hot path.
//
// The crypto block loops and Algorithm 2's SWAR diff scan all want "give
// me the 32/64-bit word at this byte offset" without assembling it a byte
// at a time.  These helpers are the one blessed place that turns byte
// storage into words: a compiler-builtin memcpy (which every target here
// lowers to a single load) plus an explicit byte-order composition, so
// there is no pointer type-punning and no alignment assumption anywhere.
//
// The ByteView overloads bounds-check like load_le32 in bytes.hpp; the
// pointer overloads are for inner loops whose bounds were established
// once at the top (crypto 64-byte blocks, the SWAR scan's word windows).
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace mc {

/// Native-order 64-bit load (the SWAR scan only XORs words against each
/// other, so byte order is irrelevant — equal bytes give a zero word and
/// the first differing byte index comes from the little-endian trailing
/// zero count on x86).
inline std::uint64_t load_word64(const std::uint8_t* p) {
  std::uint64_t w;
  __builtin_memcpy(&w, p, sizeof(w));
  return w;
}

/// Little-endian 32-bit load from a raw byte pointer.
inline std::uint32_t load_le32_word(const std::uint8_t* p) {
  std::uint32_t w;
  __builtin_memcpy(&w, p, sizeof(w));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  w = __builtin_bswap32(w);
#endif
  return w;
}

/// Big-endian 32-bit load from a raw byte pointer (SHA-1/SHA-256 message
/// schedule words).
inline std::uint32_t load_be32_word(const std::uint8_t* p) {
  std::uint32_t w;
  __builtin_memcpy(&w, p, sizeof(w));
#if !defined(__BYTE_ORDER__) || __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  w = __builtin_bswap32(w);
#endif
  return w;
}

/// Little-endian 32-bit store to a raw byte pointer (Algorithm 2 rewrites
/// the relocation word in place after adjusting it).
inline void store_le32_word(std::uint8_t* p, std::uint32_t v) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  v = __builtin_bswap32(v);
#endif
  __builtin_memcpy(p, &v, sizeof(v));
}

/// Bounds-checked span variants, for callers outside established loops.
inline std::uint32_t load_le32_at(ByteView b, std::size_t off) {
  MC_CHECK(off + 4 <= b.size(), "load_le32_at out of range");
  return load_le32_word(b.data() + off);
}

inline void store_le32_at(MutableByteView b, std::size_t off,
                          std::uint32_t v) {
  MC_CHECK(off + 4 <= b.size(), "store_le32_at out of range");
  store_le32_word(b.data() + off, v);
}

}  // namespace mc
