#include "util/fault.hpp"

#include <sstream>

namespace mc {

const char* to_string(FaultCode code) {
  switch (code) {
    case FaultCode::kReadFault:
      return "read-fault";
    case FaultCode::kTranslationFault:
      return "translation-fault";
    case FaultCode::kNoAddressSpace:
      return "no-address-space";
    case FaultCode::kDebugBlockMissing:
      return "debug-block-missing";
    case FaultCode::kDomainGone:
      return "domain-gone";
    case FaultCode::kUnrecognizedBuild:
      return "unrecognized-build";
  }
  return "unknown-fault";
}

const char* to_string(CheckStage stage) {
  switch (stage) {
    case CheckStage::kAcquire:
      return "acquire";
    case CheckStage::kParse:
      return "parse";
    case CheckStage::kNormalize:
      return "normalize";
    case CheckStage::kCompare:
      return "compare";
    case CheckStage::kVote:
      return "vote";
    case CheckStage::kService:
      return "service";
  }
  return "unknown-stage";
}

std::string format_fault(const FaultRecord& record) {
  std::ostringstream os;
  os << "Dom" << record.domain << " " << to_string(record.stage);
  if (record.attempt != 0) {
    os << " attempt " << record.attempt;
  }
  os << ": " << to_string(record.code);
  if (record.va != 0) {
    os << " at va=0x" << std::hex << record.va << std::dec;
  }
  if (record.pa != 0) {
    os << " pa=0x" << std::hex << record.pa << std::dec;
  }
  if (!record.detail.empty()) {
    os << " — " << record.detail;
  }
  return os.str();
}

}  // namespace mc
