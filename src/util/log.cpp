#include "util/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <mutex>

namespace mc {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_sink_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info ";
    case LogLevel::kWarn:
      return "warn ";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

void vlog(LogLevel level, const char* fmt, std::va_list args) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  char buf[1024];
  std::vsnprintf(buf, sizeof buf, fmt, args);
  log_line(level, buf);
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_line(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[%s] %.*s\n", level_tag(level),
               static_cast<int>(message.size()), message.data());
}

#define MC_DEFINE_LOG_FN(name, level)       \
  void name(const char* fmt, ...) {         \
    std::va_list args;                      \
    va_start(args, fmt);                    \
    vlog(level, fmt, args);                 \
    va_end(args);                           \
  }

MC_DEFINE_LOG_FN(log_debug, LogLevel::kDebug)
MC_DEFINE_LOG_FN(log_info, LogLevel::kInfo)
MC_DEFINE_LOG_FN(log_warn, LogLevel::kWarn)
MC_DEFINE_LOG_FN(log_error, LogLevel::kError)

#undef MC_DEFINE_LOG_FN

}  // namespace mc
