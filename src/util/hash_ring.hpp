// Consistent-hash ring with virtual nodes.
//
// The sharded control plane (service/coordinator) assigns pools to worker
// shards, and the partitioned scheduler assigns modules to simulated
// checker instances.  Both need the same property: when the node set
// changes by one (a shard dies, a checker is added), only ~1/N of the keys
// move — a modulo assignment would reshuffle almost everything and throw
// away every warm cache on the survivors.  The classic fix is a hash ring:
// each node projects `virtual_nodes` points onto a 64-bit circle, and a
// key belongs to the first node point at or clockwise of the key's own
// hash.  Virtual nodes smooth the per-node share (the standard deviation
// of a node's arc length shrinks with sqrt(V)).
//
// Everything is deterministic: FNV-1a over stable strings, no seeds, no
// host entropy — the same node set always yields the same assignment, which
// is what makes the chaos re-shard replayable under SimClock.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace mc {

/// FNV-1a 64-bit: tiny, seedless, and stable across platforms — exactly
/// what ring placement needs (speed and crypto strength do not matter,
/// reproducibility does).
constexpr std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x00000100000001B3ull;
  }
  return h;
}

/// MurmurHash3 fmix64 finalizer.  Raw FNV-1a of strings that differ only
/// in their trailing digits ("pool-0".."pool-7", "…/vnode-63") lands
/// within a ~2^48-wide arc of the 2^64 circle — the last byte perturbs the
/// state once and the differences never avalanche, so every key (and every
/// node's vnodes) would cluster onto one owner.  The finalizer spreads the
/// low-byte differences across all 64 bits; placement stays seedless and
/// platform-stable.
constexpr std::uint64_t mix64(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDull;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ull;
  h ^= h >> 33;
  return h;
}

/// The ring's placement hash: avalanche-finalized FNV-1a.
constexpr std::uint64_t ring_hash(std::string_view s) {
  return mix64(fnv1a64(s));
}

class HashRing {
 public:
  explicit HashRing(std::size_t virtual_nodes = 64)
      : virtual_nodes_(virtual_nodes) {
    MC_CHECK(virtual_nodes_ >= 1, "hash ring needs at least one vnode");
  }

  /// Projects `node`'s virtual points onto the ring.  Adding a node moves
  /// only the keys that now fall on one of its arcs.
  void add_node(std::size_t node) {
    MC_CHECK(!contains(node), "hash ring node added twice");
    for (std::size_t v = 0; v < virtual_nodes_; ++v) {
      const std::string point =
          "node-" + std::to_string(node) + "/vnode-" + std::to_string(v);
      ring_.push_back({ring_hash(point), node});
    }
    std::sort(ring_.begin(), ring_.end());
  }

  /// Removes every virtual point of `node`; its keys fall to the next
  /// points clockwise (spread across the survivors, not to one victim).
  void remove_node(std::size_t node) {
    std::erase_if(ring_, [&](const auto& p) { return p.second == node; });
  }

  bool contains(std::size_t node) const {
    return std::any_of(ring_.begin(), ring_.end(),
                       [&](const auto& p) { return p.second == node; });
  }

  std::size_t node_count() const { return ring_.size() / virtual_nodes_; }
  bool empty() const { return ring_.empty(); }

  /// The node owning `key`.  Ring must be non-empty.
  std::size_t owner(std::string_view key) const {
    MC_CHECK(!ring_.empty(), "hash ring has no nodes");
    const std::uint64_t h = ring_hash(key);
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), h,
        [](const auto& p, std::uint64_t v) { return p.first < v; });
    if (it == ring_.end()) {
      it = ring_.begin();  // wrap around the circle
    }
    return it->second;
  }

  /// Owner of the canonical key for an indexed entity ("key-<index>") —
  /// the form the coordinator uses for pool indices and the scheduler for
  /// partition-keyed modules.
  std::size_t owner_of_index(std::string_view kind, std::size_t index) const {
    return owner(std::string(kind) + "-" + std::to_string(index));
  }

 private:
  std::size_t virtual_nodes_;
  /// (hash, node), sorted by hash.  Ties are impossible in practice (64-bit
  /// FNV over distinct strings); if one occurred the sort order by node id
  /// keeps assignment deterministic anyway.
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;
};

}  // namespace mc
