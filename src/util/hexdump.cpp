#include "util/hexdump.hpp"

#include <cctype>
#include <cstdio>

namespace mc {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";
}

std::string hex_bytes(ByteView data, std::size_t max_bytes) {
  std::string out;
  const std::size_t n = std::min(data.size(), max_bytes);
  out.reserve(n * 3);
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) {
      out.push_back(' ');
    }
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0xF]);
  }
  if (n < data.size()) {
    out += " ...";
  }
  return out;
}

std::string hexdump(ByteView data, std::uint64_t base_offset) {
  std::string out;
  char line[128];
  for (std::size_t row = 0; row < data.size(); row += 16) {
    const std::size_t n = std::min<std::size_t>(16, data.size() - row);
    int pos = std::snprintf(line, sizeof line, "%08llx  ",
                            static_cast<unsigned long long>(base_offset + row));
    for (std::size_t i = 0; i < 16; ++i) {
      if (i < n) {
        pos += std::snprintf(line + pos, sizeof line - static_cast<std::size_t>(pos),
                             "%02x ", data[row + i]);
      } else {
        pos += std::snprintf(line + pos, sizeof line - static_cast<std::size_t>(pos),
                             "   ");
      }
      if (i == 7) {
        line[pos++] = ' ';
      }
    }
    line[pos++] = ' ';
    line[pos++] = '|';
    for (std::size_t i = 0; i < n; ++i) {
      const unsigned char c = data[row + i];
      line[pos++] = std::isprint(c) ? static_cast<char>(c) : '.';
    }
    line[pos++] = '|';
    line[pos] = '\0';
    out += line;
    out.push_back('\n');
  }
  return out;
}

std::string hex32(std::uint32_t value) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%08x", value);
  return buf;
}

}  // namespace mc
