// Minimal leveled logger.
//
// A single process-wide sink guarded by a mutex (the only shared mutable
// state in mc_util; everything else is value-oriented per CP.2/CP.3).
// printf-style formatting, checked by the compiler via format attributes.
#pragma once

#include <string>
#include <string_view>

namespace mc {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the minimum level that will be emitted (default: kInfo).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one log line ("[level] message\n") to stderr if `level` passes the
/// threshold.  Thread-safe.
void log_line(LogLevel level, std::string_view message);

void log_debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_info(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void log_error(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace mc
