// Word-wise compare kernels with runtime dispatch.
//
// Algorithm 2's diff scan and the digest-table equality checks are the
// byte-touching core of a pool scan.  These kernels replace their per-byte
// loops with (in preference order) an AVX2 32-byte compare, a SWAR 8-byte
// XOR compare, or the plain scalar loop — selected once at runtime and
// overridable two ways:
//
//   * MC_FORCE_SCALAR=1 in the environment (or set_force_scalar(true))
//     pins the whole process to the scalar kernels, which is how the CI
//     force-scalar leg and the differential suites prove every level
//     produces bit-identical results;
//   * Policy::kScalar on an individual call, which is how a checker
//     configured with force_scalar=true stays scalar regardless of the
//     process default.
//
// The kernels are pure byte functions: they never touch the SimClock, so
// dispatch level cannot perturb simulated costs (the differential suites
// are the oracle for that claim).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/bytes.hpp"

namespace mc::simd {

/// Per-call dispatch override.
enum class Policy {
  kAuto,    // use the process-wide level (env + CPU detection)
  kScalar,  // force the scalar kernel for this call
};

/// The kernel actually selected.
enum class Level { kScalar, kSwar, kAvx2 };

/// Process-wide force-scalar switch.  Initialized from MC_FORCE_SCALAR
/// ("", unset and "0" mean off) on first use; tests and config plumbing
/// may override programmatically.
bool force_scalar();
void set_force_scalar(bool on);

/// The level a call with the given policy will run at.
Level active_level(Policy policy = Policy::kAuto);
const char* level_name(Level level);

/// First index i in [from, n) with a[i] != b[i], or n if the suffixes are
/// equal.  Both pointers must have n readable bytes.
std::size_t mismatch(const std::uint8_t* a, const std::uint8_t* b,
                     std::size_t n, std::size_t from,
                     Policy policy = Policy::kAuto);

/// Word-wise content equality (size + bytes).
bool equal(ByteView a, ByteView b, Policy policy = Policy::kAuto);

}  // namespace mc::simd
