// Hexadecimal formatting utilities for diagnostics and reports.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace mc {

/// "DE AD BE EF" style single-line dump of up to `max_bytes` bytes.
std::string hex_bytes(ByteView data, std::size_t max_bytes = 64);

/// Classic 16-bytes-per-row offset/hex/ASCII dump.
std::string hexdump(ByteView data, std::uint64_t base_offset = 0);

/// Lower-case hex of a 32-bit value, zero-padded to 8 digits ("0020ccf8").
std::string hex32(std::uint32_t value);

}  // namespace mc
