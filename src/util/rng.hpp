// Deterministic pseudo-random number generation.
//
// All stochastic choices in the simulator (module base addresses, synthetic
// code shapes, monitor noise) flow from explicitly seeded generators so every
// experiment is bit-reproducible.  SplitMix64 seeds Xoshiro256** per the
// generator authors' recommendation.
#pragma once

#include <cstdint>

namespace mc {

/// SplitMix64 — tiny, solid seeder / sequence generator.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — the workhorse generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) {
      s = sm.next();
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire-style rejection-free reduction is fine here (not crypto).
    return next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return unit() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace mc
