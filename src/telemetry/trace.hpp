// Stage-level trace spans.
//
// A TraceRecorder collects nested, named spans from every pipeline stage and
// fleet sweep.  Each span is stamped twice:
//
//   wall time — std::chrono::steady_clock, relative to recorder creation.
//     This is the timeline Chrome/Perfetto renders (ts/dur microseconds),
//     because it is the only clock shared by every thread and pool.
//   sim time  — the stage's SimClock (when one is in scope): start value and
//     delta are attached as span args.  Per-task SimClocks start at zero, so
//     sim time cannot order a global timeline, but the per-span sim duration
//     is the number the paper's figures are built from.
//
// Spans carry a (process, track) pair that maps onto Chrome's (pid, tid):
// FleetService assigns one process per pool and the pipeline uses the
// guest DomainId as the track, so a multi-pool sweep opens in
// chrome://tracing / Perfetto as one lane per guest per pool.
//
// Concurrency: span() and SpanScope destruction are thread-safe (completed
// spans are appended under a mutex); nesting depth is tracked per thread, so
// a span must begin and end on the same thread — true for every stage, which
// runs inside one ThreadPool task.
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/sim_clock.hpp"

namespace mc::telemetry {

/// One key/value annotation on a span.  `is_number` selects raw vs quoted
/// JSON rendering.
struct SpanArg {
  std::string key;
  std::string value;
  bool is_number = false;
};

/// A completed span.
struct SpanRecord {
  std::string name;
  std::string category;
  std::uint64_t process = 0;  // Chrome pid (pool index; 0 = standalone)
  std::uint64_t track = 0;    // Chrome tid (guest DomainId; 0 = orchestrator)
  std::uint64_t wall_start_ns = 0;  // since recorder creation
  std::uint64_t wall_dur_ns = 0;
  SimNanos sim_start = 0;  // owning SimClock at open (0 when no clock)
  SimNanos sim_dur = 0;
  std::uint32_t depth = 0;  // nesting depth on the opening thread
  std::uint64_t seq = 0;    // completion order
  std::vector<SpanArg> args;
};

class TraceRecorder;

/// RAII span: completes (and hands itself to the recorder) on destruction
/// or an explicit end().  Move-only; a default-constructed scope is a no-op,
/// which is how `tracer == nullptr` costs nothing.
class SpanScope {
 public:
  SpanScope() = default;
  SpanScope(SpanScope&& other) noexcept { move_from(other); }
  SpanScope& operator=(SpanScope&& other) noexcept {
    if (this != &other) {
      end();
      move_from(other);
    }
    return *this;
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope() { end(); }

  explicit operator bool() const { return recorder_ != nullptr; }

  void arg(std::string key, std::string value) {
    if (recorder_ != nullptr) {
      record_.args.push_back({std::move(key), std::move(value), false});
    }
  }
  void arg(std::string key, std::uint64_t value) {
    if (recorder_ != nullptr) {
      record_.args.push_back(
          {std::move(key), std::to_string(value), true});
    }
  }

  /// Completes the span now (idempotent).
  void end();

 private:
  friend class TraceRecorder;
  SpanScope(TraceRecorder* recorder, SpanRecord record, const SimClock* clock)
      : recorder_(recorder), clock_(clock), record_(std::move(record)) {}

  void move_from(SpanScope& other) noexcept {
    recorder_ = other.recorder_;
    clock_ = other.clock_;
    record_ = std::move(other.record_);
    other.recorder_ = nullptr;
    other.clock_ = nullptr;
  }

  TraceRecorder* recorder_ = nullptr;
  const SimClock* clock_ = nullptr;
  SpanRecord record_;
};

class TraceRecorder {
 public:
  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Opens a span.  `clock`, when given, stamps sim_start now and sim_dur at
  /// completion; pass nullptr for wall-only spans (e.g. fleet sweeps).
  SpanScope span(std::string name, std::string category,
                 std::uint64_t process = 0, std::uint64_t track = 0,
                 const SimClock* clock = nullptr);

  /// Removes and returns every completed span, FIFO by completion.
  std::vector<SpanRecord> drain();

  /// Copy of the completed spans, without clearing.
  std::vector<SpanRecord> snapshot() const;

  std::size_t completed() const;

 private:
  friend class SpanScope;
  void complete(SpanRecord&& record);
  std::uint64_t wall_now_ns() const;

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> done_;
  std::uint64_t next_seq_ = 0;
};

/// Null-safe span helper: no recorder, no span, no cost.
inline SpanScope span(TraceRecorder* recorder, std::string name,
                      std::string category, std::uint64_t process = 0,
                      std::uint64_t track = 0,
                      const SimClock* clock = nullptr) {
  if (recorder == nullptr) {
    return SpanScope();
  }
  return recorder->span(std::move(name), std::move(category), process, track,
                        clock);
}

/// Chrome trace_event serialization (the JSON Array Format: a `[` line,
/// one event object per line, `]` close — loads in chrome://tracing and
/// Perfetto).  One SpanRecord becomes one complete ("ph":"X") event with
/// ts/dur in wall microseconds and sim_start_ns/sim_dur_ns among the args.
std::string chrome_trace_event(const SpanRecord& record);

/// Writes a whole trace document for `records`.
void write_chrome_trace(std::ostream& out,
                        const std::vector<SpanRecord>& records);

}  // namespace mc::telemetry
