#include "telemetry/trace.hpp"

#include <ostream>
#include <sstream>

namespace mc::telemetry {

namespace {

// Nesting depth of the current thread.  Shared across recorders (advisory
// only — it annotates SpanRecord::depth); spans must begin and end on the
// same thread for it to mean anything, which every pipeline stage satisfies.
thread_local std::uint32_t t_depth = 0;

std::string json_escape_min(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
        break;
    }
  }
  return out;
}

}  // namespace

void SpanScope::end() {
  if (recorder_ == nullptr) {
    return;
  }
  TraceRecorder* recorder = recorder_;
  recorder_ = nullptr;
  if (clock_ != nullptr) {
    record_.sim_dur = clock_->now() - record_.sim_start;
    clock_ = nullptr;
  }
  if (t_depth > 0) {
    --t_depth;
  }
  recorder->complete(std::move(record_));
}

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t TraceRecorder::wall_now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

SpanScope TraceRecorder::span(std::string name, std::string category,
                              std::uint64_t process, std::uint64_t track,
                              const SimClock* clock) {
  SpanRecord record;
  record.name = std::move(name);
  record.category = std::move(category);
  record.process = process;
  record.track = track;
  record.wall_start_ns = wall_now_ns();
  record.sim_start = clock != nullptr ? clock->now() : 0;
  record.depth = t_depth++;
  return SpanScope(this, std::move(record), clock);
}

void TraceRecorder::complete(SpanRecord&& record) {
  record.wall_dur_ns = wall_now_ns() - record.wall_start_ns;
  std::lock_guard<std::mutex> lock(mutex_);
  record.seq = next_seq_++;
  done_.push_back(std::move(record));
}

std::vector<SpanRecord> TraceRecorder::drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  out.swap(done_);
  return out;
}

std::vector<SpanRecord> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

std::size_t TraceRecorder::completed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_.size();
}

std::string chrome_trace_event(const SpanRecord& record) {
  std::ostringstream out;
  // Chrome's ts/dur are microseconds (doubles); keep ns precision with a
  // fixed three decimals.
  const auto us = [](std::uint64_t ns) {
    std::ostringstream v;
    v << ns / 1000 << '.';
    const auto frac = ns % 1000;
    v << frac / 100 << (frac / 10) % 10 << frac % 10;
    return v.str();
  };
  out << "{\"name\":\"" << json_escape_min(record.name) << "\",\"cat\":\""
      << json_escape_min(record.category) << "\",\"ph\":\"X\",\"ts\":"
      << us(record.wall_start_ns) << ",\"dur\":" << us(record.wall_dur_ns)
      << ",\"pid\":" << record.process << ",\"tid\":" << record.track
      << ",\"args\":{\"sim_start_ns\":" << record.sim_start
      << ",\"sim_dur_ns\":" << record.sim_dur << ",\"depth\":" << record.depth;
  for (const auto& arg : record.args) {
    out << ",\"" << json_escape_min(arg.key) << "\":";
    if (arg.is_number) {
      out << arg.value;
    } else {
      out << '"' << json_escape_min(arg.value) << '"';
    }
  }
  out << "}}";
  return out.str();
}

void write_chrome_trace(std::ostream& out,
                        const std::vector<SpanRecord>& records) {
  out << "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    out << chrome_trace_event(records[i]);
    if (i + 1 < records.size()) {
      out << ',';
    }
    out << '\n';
  }
  out << "]\n";
}

}  // namespace mc::telemetry
