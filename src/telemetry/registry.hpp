// Unified metric registry — the one place every layer's counters live.
//
// Before this substrate existed, timing and counters were scattered across
// six unrelated ad-hoc structs (VmiStats, SessionPoolStats,
// CanonicalPool::Stats, DigestTable::Stats, FleetService::Stats,
// PerturbationStats), each with its own locking story.  The registry
// replaces all of that with three primitives:
//
//   Counter    — a named, monotonically increasing total.  Increments go to
//                one of kCounterShards cache-line-padded atomics selected by
//                thread id, so concurrent writers from a parallel pool scan
//                never bounce the same line.  Zero heap on the hot path: a
//                handle is one pointer, inc() is one relaxed fetch_add.
//   Gauge      — a named instantaneous level (queue depth, sweeps in
//                flight).  One atomic int64.
//   Histogram  — fixed-bucket latency distribution.  Bucket edges are fixed
//                at creation (default: exponential sim-nanosecond edges), so
//                observe() is a branchless-ish linear scan over <= 16 edges
//                plus two relaxed adds.  No allocation, ever.
//
// Per-object views.  The legacy stats() accessors survive as *views* over
// the registry: each instrumented object (a VmiSession, a DigestTable, ...)
// holds OwnedCounter cells allocated from the registry.  An OwnedCounter
// counts for exactly one object — stats() reads only its own cells — while
// the named aggregate it belongs to accumulates fleet-wide: live cells are
// summed into snapshots and a dying cell folds its final value into the
// aggregate's retired total, so registry totals stay monotonic across
// object churn.
//
// Lifetime rule: handles (Counter/Gauge/Histogram/OwnedCounter) must not
// outlive the registry they came from.  The process-wide default registry
// (process_default()) lives forever; custom registries (e.g. one per
// FleetService) must outlive every pipeline/session built on them.
//
// Disabling: MetricRegistry::disabled() returns a sentinel registry whose
// handles are permanently detached no-ops — the mechanism behind the
// telemetry overhead gate (bench_telemetry_overhead) and the
// emit_telemetry=false byte-identity guarantee.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mc::telemetry {

/// Number of cache-padded shards per counter.  Pool scans run at most a
/// handful of workers (default 4); 8 shards keeps collisions rare without
/// bloating snapshot cost.
constexpr std::size_t kCounterShards = 8;

namespace detail {

struct alignas(64) PaddedAtomic {
  std::atomic<std::uint64_t> value{0};
};

struct CounterEntry {
  std::string name;
  std::array<PaddedAtomic, kCounterShards> shards{};
  /// Sum folded in from destroyed OwnedCounter cells.
  std::atomic<std::uint64_t> retired{0};
  /// Live per-object cells (guarded by cells_mutex; the cells themselves
  /// are atomics and are read without the lock held by their owners).
  std::mutex cells_mutex;
  std::vector<const std::atomic<std::uint64_t>*> cells;
};

struct GaugeEntry {
  std::string name;
  std::atomic<std::int64_t> value{0};
};

struct HistogramEntry {
  std::string name;
  std::vector<std::uint64_t> bounds;  // ascending upper edges (inclusive)
  std::vector<std::unique_ptr<PaddedAtomic>> buckets;  // bounds.size() + 1
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
};

std::size_t shard_index();

}  // namespace detail

/// Shared monotonically-increasing total.  Copyable; a default-constructed
/// (detached) Counter is a no-op and reads as zero.
class Counter {
 public:
  Counter() = default;

  void inc(std::uint64_t n = 1) const {
    if (entry_ != nullptr) {
      entry_->shards[detail::shard_index()].value.fetch_add(
          n, std::memory_order_relaxed);
    }
  }

  /// Aggregate total: shards + retired cells + live cells.
  std::uint64_t value() const;

 private:
  friend class MetricRegistry;
  explicit Counter(detail::CounterEntry* entry) : entry_(entry) {}
  detail::CounterEntry* entry_ = nullptr;
};

/// Per-object cell of a named counter.  Move-only; counts only what its
/// owner contributed (the basis of the legacy stats() views), while the
/// named aggregate sees live cells plus a retired total folded in when the
/// cell dies.  A default-constructed (detached) cell is a no-op.
class OwnedCounter {
 public:
  OwnedCounter() = default;
  OwnedCounter(OwnedCounter&& other) noexcept { move_from(other); }
  OwnedCounter& operator=(OwnedCounter&& other) noexcept {
    if (this != &other) {
      release();
      move_from(other);
    }
    return *this;
  }
  OwnedCounter(const OwnedCounter&) = delete;
  OwnedCounter& operator=(const OwnedCounter&) = delete;
  ~OwnedCounter() { release(); }

  void inc(std::uint64_t n = 1) const {
    if (cell_ != nullptr) {
      cell_->fetch_add(n, std::memory_order_relaxed);
    }
  }

  /// This object's contribution only.
  std::uint64_t value() const {
    return cell_ != nullptr ? cell_->load(std::memory_order_relaxed) : 0;
  }

 private:
  friend class MetricRegistry;
  OwnedCounter(detail::CounterEntry* entry,
               std::unique_ptr<std::atomic<std::uint64_t>> cell)
      : entry_(entry), cell_(std::move(cell)) {}

  void move_from(OwnedCounter& other) noexcept {
    entry_ = other.entry_;
    cell_ = std::move(other.cell_);
    other.entry_ = nullptr;
  }
  void release();

  detail::CounterEntry* entry_ = nullptr;
  std::unique_ptr<std::atomic<std::uint64_t>> cell_;
};

/// Instantaneous level.  Copyable; detached gauges are no-ops.
class Gauge {
 public:
  Gauge() = default;

  void set(std::int64_t v) const {
    if (entry_ != nullptr) {
      entry_->value.store(v, std::memory_order_relaxed);
    }
  }
  void add(std::int64_t delta) const {
    if (entry_ != nullptr) {
      entry_->value.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  std::int64_t value() const {
    return entry_ != nullptr ? entry_->value.load(std::memory_order_relaxed)
                             : 0;
  }

 private:
  friend class MetricRegistry;
  explicit Gauge(detail::GaugeEntry* entry) : entry_(entry) {}
  detail::GaugeEntry* entry_ = nullptr;
};

/// Bucket edges for a Histogram.  `bounds` are ascending inclusive upper
/// edges; one implicit overflow bucket follows the last edge.
struct HistogramSpec {
  std::vector<std::uint64_t> bounds;

  /// Default sim-latency edges: 1us .. 32ms, exponential (16 edges).
  static HistogramSpec latency();
};

/// Fixed-bucket distribution.  Copyable; detached histograms are no-ops.
class Histogram {
 public:
  Histogram() = default;

  void observe(std::uint64_t v) const;

  std::uint64_t count() const {
    return entry_ != nullptr ? entry_->count.load(std::memory_order_relaxed)
                             : 0;
  }
  std::uint64_t sum() const {
    return entry_ != nullptr ? entry_->sum.load(std::memory_order_relaxed)
                             : 0;
  }
  /// Count in bucket `i` (i == bounds.size() is the overflow bucket).
  std::uint64_t bucket_count(std::size_t i) const;

 private:
  friend class MetricRegistry;
  explicit Histogram(detail::HistogramEntry* entry) : entry_(entry) {}
  detail::HistogramEntry* entry_ = nullptr;
};

/// Point-in-time copy of every metric, ordered by name.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> buckets;  // bounds.size() + 1
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Deterministically ordered JSON object:
///   {"counters":{...},"gauges":{...},
///    "histograms":{"name":{"count":..,"sum":..,"buckets":[[edge,n],...]}}}
std::string to_json(const MetricsSnapshot& snapshot);

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Returns the named counter, creating it on first use.  Handles to the
  /// same name share one entry.
  Counter counter(const std::string& name);

  /// Allocates a fresh per-object cell of the named counter.
  OwnedCounter owned_counter(const std::string& name);

  Gauge gauge(const std::string& name);

  /// Returns the named histogram; `spec` applies only on first creation.
  Histogram histogram(const std::string& name,
                      HistogramSpec spec = HistogramSpec::latency());

  MetricsSnapshot snapshot() const;

  bool enabled() const { return enabled_; }

  /// Process-wide default registry (never destroyed; safe for handles of
  /// any lifetime).
  static MetricRegistry& process_default();

  /// Sentinel registry whose handles are all detached no-ops.
  static MetricRegistry& disabled();

 private:
  struct DisabledTag {};
  explicit MetricRegistry(DisabledTag) : enabled_(false) {}

  bool enabled_ = true;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<detail::CounterEntry>> counters_;
  std::vector<std::unique_ptr<detail::GaugeEntry>> gauges_;
  std::vector<std::unique_ptr<detail::HistogramEntry>> histograms_;
};

/// Resolves a possibly-null registry pointer from a config to a concrete
/// registry: null means the process default.
inline MetricRegistry& resolve(MetricRegistry* registry) {
  return registry != nullptr ? *registry : MetricRegistry::process_default();
}

}  // namespace mc::telemetry
