#include "telemetry/view.hpp"

#include <algorithm>

namespace mc::telemetry {

namespace {

bool has_prefix(const std::string& name, const std::string& prefix) {
  return name.size() >= prefix.size() &&
         name.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

MetricsSnapshot MetricView::snapshot() const {
  MetricsSnapshot all = registry_->snapshot();
  MetricsSnapshot out;
  std::copy_if(all.counters.begin(), all.counters.end(),
               std::back_inserter(out.counters),
               [&](const auto& c) { return has_prefix(c.name, prefix_); });
  std::copy_if(all.gauges.begin(), all.gauges.end(),
               std::back_inserter(out.gauges),
               [&](const auto& g) { return has_prefix(g.name, prefix_); });
  std::copy_if(all.histograms.begin(), all.histograms.end(),
               std::back_inserter(out.histograms),
               [&](const auto& h) { return has_prefix(h.name, prefix_); });
  return out;
}

}  // namespace mc::telemetry
