// MetricView — a namespaced window onto a MetricRegistry.
//
// The sharded fleet coordinator gives every shard its own view
// ("shard3.") over the one fleet registry: the shard's code mints
// counters and gauges through the view without knowing (or being able to
// collide with) the global namespace, and an operator can snapshot just
// one shard's metrics by prefix.  A view is a naming convention plus a
// filter — it allocates nothing and adds no indirection on the hot path
// (the returned handles are ordinary registry handles bound to the
// prefixed name).
#pragma once

#include <string>

#include "telemetry/registry.hpp"

namespace mc::telemetry {

class MetricView {
 public:
  /// A view over `registry` whose metric names all start with `prefix`
  /// (convention: "shard<i>." — the trailing separator is the caller's
  /// choice, the view just concatenates).
  MetricView(MetricRegistry& registry, std::string prefix)
      : registry_(&registry), prefix_(std::move(prefix)) {}

  Counter counter(const std::string& name) {
    return registry_->counter(prefix_ + name);
  }

  OwnedCounter owned_counter(const std::string& name) {
    return registry_->owned_counter(prefix_ + name);
  }

  Gauge gauge(const std::string& name) {
    return registry_->gauge(prefix_ + name);
  }

  Histogram histogram(const std::string& name,
                      HistogramSpec spec = HistogramSpec::latency()) {
    return registry_->histogram(prefix_ + name, spec);
  }

  /// Snapshot of only this view's metrics (names keep the prefix, so the
  /// JSON stays globally unambiguous).
  MetricsSnapshot snapshot() const;

  const std::string& prefix() const { return prefix_; }
  MetricRegistry& registry() const { return *registry_; }

 private:
  MetricRegistry* registry_;
  std::string prefix_;
};

}  // namespace mc::telemetry
