#include "telemetry/registry.hpp"

#include <algorithm>
#include <sstream>
#include <thread>

namespace mc::telemetry {

namespace detail {

std::size_t shard_index() {
  // One shard per thread, assigned round-robin at first use.  Thread-local,
  // so the hot path is a TLS read + fetch_add with no hashing.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return mine;
}

}  // namespace detail

std::uint64_t Counter::value() const {
  if (entry_ == nullptr) {
    return 0;
  }
  std::uint64_t total = entry_->retired.load(std::memory_order_relaxed);
  for (const auto& shard : entry_->shards) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  std::lock_guard<std::mutex> lock(entry_->cells_mutex);
  for (const auto* cell : entry_->cells) {
    total += cell->load(std::memory_order_relaxed);
  }
  return total;
}

void OwnedCounter::release() {
  if (entry_ != nullptr && cell_ != nullptr) {
    {
      std::lock_guard<std::mutex> lock(entry_->cells_mutex);
      entry_->cells.erase(
          std::remove(entry_->cells.begin(), entry_->cells.end(), cell_.get()),
          entry_->cells.end());
    }
    entry_->retired.fetch_add(cell_->load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
  }
  entry_ = nullptr;
  cell_.reset();
}

HistogramSpec HistogramSpec::latency() {
  // 1us, 2us, 4us, ... 32ms: 16 exponential edges covering everything from
  // a single page map (4-25us) to a full t=15 pool scan (a few ms).
  HistogramSpec spec;
  std::uint64_t edge = 1000;
  for (int i = 0; i < 16; ++i) {
    spec.bounds.push_back(edge);
    edge *= 2;
  }
  return spec;
}

void Histogram::observe(std::uint64_t v) const {
  if (entry_ == nullptr) {
    return;
  }
  std::size_t i = 0;
  while (i < entry_->bounds.size() && v > entry_->bounds[i]) {
    ++i;
  }
  entry_->buckets[i]->value.fetch_add(1, std::memory_order_relaxed);
  entry_->count.fetch_add(1, std::memory_order_relaxed);
  entry_->sum.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  if (entry_ == nullptr || i >= entry_->buckets.size()) {
    return 0;
  }
  return entry_->buckets[i]->value.load(std::memory_order_relaxed);
}

Counter MetricRegistry::counter(const std::string& name) {
  if (!enabled_) {
    return Counter();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : counters_) {
    if (entry->name == name) {
      return Counter(entry.get());
    }
  }
  counters_.push_back(std::make_unique<detail::CounterEntry>());
  counters_.back()->name = name;
  return Counter(counters_.back().get());
}

OwnedCounter MetricRegistry::owned_counter(const std::string& name) {
  if (!enabled_) {
    return OwnedCounter();
  }
  detail::CounterEntry* entry = counter(name).entry_;
  auto cell = std::make_unique<std::atomic<std::uint64_t>>(0);
  {
    std::lock_guard<std::mutex> lock(entry->cells_mutex);
    entry->cells.push_back(cell.get());
  }
  return OwnedCounter(entry, std::move(cell));
}

Gauge MetricRegistry::gauge(const std::string& name) {
  if (!enabled_) {
    return Gauge();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : gauges_) {
    if (entry->name == name) {
      return Gauge(entry.get());
    }
  }
  gauges_.push_back(std::make_unique<detail::GaugeEntry>());
  gauges_.back()->name = name;
  return Gauge(gauges_.back().get());
}

Histogram MetricRegistry::histogram(const std::string& name,
                                    HistogramSpec spec) {
  if (!enabled_) {
    return Histogram();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : histograms_) {
    if (entry->name == name) {
      return Histogram(entry.get());
    }
  }
  auto entry = std::make_unique<detail::HistogramEntry>();
  entry->name = name;
  entry->bounds = std::move(spec.bounds);
  entry->buckets.reserve(entry->bounds.size() + 1);
  for (std::size_t i = 0; i <= entry->bounds.size(); ++i) {
    entry->buckets.push_back(std::make_unique<detail::PaddedAtomic>());
  }
  histograms_.push_back(std::move(entry));
  return Histogram(histograms_.back().get());
}

MetricsSnapshot MetricRegistry::snapshot() const {
  MetricsSnapshot snap;
  if (!enabled_) {
    return snap;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& entry : counters_) {
    std::uint64_t total = entry->retired.load(std::memory_order_relaxed);
    for (const auto& shard : entry->shards) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> cells_lock(entry->cells_mutex);
      for (const auto* cell : entry->cells) {
        total += cell->load(std::memory_order_relaxed);
      }
    }
    snap.counters.push_back({entry->name, total});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& entry : gauges_) {
    snap.gauges.push_back(
        {entry->name, entry->value.load(std::memory_order_relaxed)});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& entry : histograms_) {
    MetricsSnapshot::HistogramValue hv;
    hv.name = entry->name;
    hv.bounds = entry->bounds;
    hv.buckets.reserve(entry->buckets.size());
    for (const auto& bucket : entry->buckets) {
      hv.buckets.push_back(bucket->value.load(std::memory_order_relaxed));
    }
    hv.count = entry->count.load(std::memory_order_relaxed);
    hv.sum = entry->sum.load(std::memory_order_relaxed);
    snap.histograms.push_back(std::move(hv));
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

MetricRegistry& MetricRegistry::process_default() {
  // Leaked intentionally: handles may live in static-duration objects, so
  // the default registry must never run its destructor.
  // mc-lint: allow(naked-new)
  static MetricRegistry* instance = new MetricRegistry();
  return *instance;
}

MetricRegistry& MetricRegistry::disabled() {
  // Leaked for the same reason as process_default().
  // mc-lint: allow(naked-new)
  static MetricRegistry* instance = new MetricRegistry(DisabledTag{});
  return *instance;
}

std::string to_json(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i != 0) {
      out << ',';
    }
    out << '"' << snapshot.counters[i].name
        << "\":" << snapshot.counters[i].value;
  }
  out << "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i != 0) {
      out << ',';
    }
    out << '"' << snapshot.gauges[i].name << "\":" << snapshot.gauges[i].value;
  }
  out << "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& hv = snapshot.histograms[i];
    if (i != 0) {
      out << ',';
    }
    out << '"' << hv.name << "\":{\"count\":" << hv.count
        << ",\"sum\":" << hv.sum << ",\"buckets\":[";
    for (std::size_t b = 0; b < hv.buckets.size(); ++b) {
      if (b != 0) {
        out << ',';
      }
      out << '[';
      if (b < hv.bounds.size()) {
        out << hv.bounds[b];
      } else {
        out << "\"+inf\"";
      }
      out << ',' << hv.buckets[b] << ']';
    }
    out << "]}";
  }
  out << "}}";
  return out.str();
}

}  // namespace mc::telemetry
