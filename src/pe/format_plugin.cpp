// The PE32 format plugin — the one TU where the checking pipeline's view
// of PE parsing lives (mc_analyze's format-bypass rule keeps ParsedImage
// construction confined to src/pe/).
//
// extract_items is verbatim the pre-plugin ModuleParser body: the same
// ParsedImage walk over the same content mode, so the refactor's output
// is byte-identical (tests/format_plugin_test.cpp holds the proof).
#include "modchecker/format.hpp"
#include "pe/constants.hpp"
#include "pe/parser.hpp"

namespace mc::pe {

namespace {

class Pe32Format final : public core::ModuleFormat {
 public:
  core::ModuleFormatId id() const override {
    return core::ModuleFormatId::kPe32;
  }

  std::string_view name() const override { return "pe32"; }

  bool detect(ByteView header) const override {
    return header.size() >= 2 && load_le16(header, 0) == kDosMagic;
  }

  std::vector<core::IntegrityItem> extract_items(
      const core::ModuleImage& image) const override {
    // Both modes run the identical header walk and produce items with the
    // same names, offsets and content — view-backed images just keep the
    // section data borrowed instead of sliced into owned buffers.
    if (image.view_backed()) {
      const ParsedImage parsed(image.view);
      return parsed.extract_items(image.view);
    }
    const ParsedImage parsed(image.bytes);
    return parsed.extract_items(image.bytes);
  }

  core::FixupPolicy fixup_policy() const override {
    // The loader patches 4-byte absolute addresses against the 32-bit
    // load base — the paper's original Algorithm 2 shape.
    return core::FixupPolicy{};
  }
};

}  // namespace

}  // namespace mc::pe

namespace mc::core {

const ModuleFormat& pe32_format() {
  static const pe::Pe32Format format;
  return format;
}

}  // namespace mc::core
