#include "pe/strings.hpp"

#include <cctype>

namespace mc::pe {

namespace {
bool printable(std::uint8_t c) { return c >= 0x20 && c < 0x7F; }
}  // namespace

std::vector<FoundString> extract_ascii_strings(ByteView data,
                                               std::size_t min_length) {
  std::vector<FoundString> out;
  std::size_t start = 0;
  std::size_t run = 0;
  for (std::size_t i = 0; i <= data.size(); ++i) {
    if (i < data.size() && printable(data[i])) {
      if (run == 0) {
        start = i;
      }
      ++run;
      continue;
    }
    if (run >= min_length) {
      out.push_back({static_cast<std::uint32_t>(start),
                     std::string(data.begin() + static_cast<std::ptrdiff_t>(start),
                                 data.begin() + static_cast<std::ptrdiff_t>(start + run))});
    }
    run = 0;
  }
  return out;
}

std::vector<FoundString> extract_utf16_strings(ByteView data,
                                               std::size_t min_length) {
  std::vector<FoundString> out;
  std::size_t i = 0;
  while (i + 1 < data.size()) {
    // Candidate run: printable ASCII low byte, zero high byte.
    std::size_t j = i;
    std::string text;
    while (j + 1 < data.size() && printable(data[j]) && data[j + 1] == 0) {
      text.push_back(static_cast<char>(data[j]));
      j += 2;
    }
    if (text.size() >= min_length) {
      out.push_back({static_cast<std::uint32_t>(i), std::move(text)});
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

std::string string_near(ByteView data, std::uint32_t offset,
                        std::uint32_t max_distance) {
  std::string best;
  std::uint32_t best_distance = max_distance + 1;

  auto consider = [&](const std::vector<FoundString>& strings) {
    for (const auto& s : strings) {
      const std::uint32_t end =
          s.offset + static_cast<std::uint32_t>(s.text.size());
      std::uint32_t distance = 0;
      if (offset < s.offset) {
        distance = s.offset - offset;
      } else if (offset >= end) {
        distance = offset - end + 1;
      }
      if (distance < best_distance) {
        best_distance = distance;
        best = s.text;
      }
    }
  };

  // Only scan a window around the offset (strings extraction over a whole
  // section would be wasteful for one lookup).
  const std::uint32_t lo =
      offset > 256 ? offset - 256 : 0;
  const std::uint32_t hi = static_cast<std::uint32_t>(
      std::min<std::size_t>(data.size(), offset + 256));
  if (lo >= hi) {
    return {};
  }
  const ByteView window = data.subspan(lo, hi - lo);
  auto shift = [&](std::vector<FoundString> strings) {
    for (auto& s : strings) {
      s.offset += lo;
    }
    return strings;
  };
  consider(shift(extract_ascii_strings(window)));
  consider(shift(extract_utf16_strings(window)));
  return best_distance <= max_distance ? best : std::string{};
}

}  // namespace mc::pe
