// PE base relocations (.reloc section).
//
// The Windows kernel module loader uses these records to rewrite every
// absolute 32-bit address embedded in an image when it is mapped at a base
// other than the preferred ImageBase.  This is the mechanism that makes
// per-VM module bytes diverge — the phenomenon ModChecker's Algorithm 2
// reverses *without* access to these records.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace mc::pe {

/// Encodes the RVAs of HIGHLOW fixups into IMAGE_BASE_RELOCATION blocks
/// (one block per 4 KiB page, u16 entries of type<<12 | page offset, blocks
/// padded to 4-byte size with ABSOLUTE entries).  `fixup_rvas` need not be
/// sorted; the result is deterministic (sorted ascending).
Bytes encode_base_relocations(std::vector<std::uint32_t> fixup_rvas);

/// Parses IMAGE_BASE_RELOCATION blocks back into sorted HIGHLOW fixup RVAs.
std::vector<std::uint32_t> parse_base_relocations(ByteView reloc_data);

/// Applies relocations to a mapped image: adds `delta` to the 32-bit word at
/// every fixup RVA.  `delta` is (actual base - preferred ImageBase) and may
/// be "negative" (two's complement arithmetic wraps correctly).
void apply_relocations(MutableByteView mapped_image,
                       const std::vector<std::uint32_t>& fixup_rvas,
                       std::uint32_t delta);

}  // namespace mc::pe
