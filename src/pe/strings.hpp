// Printable-string extraction — the forensic analyst's `strings`.
//
// Used by the divergence reports on non-code items: a diff inside `.rsrc`
// or `.rdata` is far more readable when the surrounding text ("This
// program cannot be run in CHK mode.") is shown.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace mc::pe {

struct FoundString {
  std::uint32_t offset = 0;
  std::string text;
};

/// ASCII strings of at least `min_length` printable characters.
std::vector<FoundString> extract_ascii_strings(ByteView data,
                                               std::size_t min_length = 5);

/// UTF-16LE strings (ASCII subset) of at least `min_length` characters —
/// how Windows stores most of its user-visible text.
std::vector<FoundString> extract_utf16_strings(ByteView data,
                                               std::size_t min_length = 5);

/// The string (of either encoding) whose span covers or is nearest to
/// `offset`; empty if none within `max_distance` bytes.
std::string string_near(ByteView data, std::uint32_t offset,
                        std::uint32_t max_distance = 64);

}  // namespace mc::pe
