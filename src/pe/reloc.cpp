#include "pe/reloc.hpp"

#include <algorithm>

#include "pe/constants.hpp"
#include "util/error.hpp"

namespace mc::pe {

Bytes encode_base_relocations(std::vector<std::uint32_t> fixup_rvas) {
  std::sort(fixup_rvas.begin(), fixup_rvas.end());
  fixup_rvas.erase(std::unique(fixup_rvas.begin(), fixup_rvas.end()),
                   fixup_rvas.end());

  Bytes out;
  std::size_t i = 0;
  while (i < fixup_rvas.size()) {
    const std::uint32_t page = fixup_rvas[i] & ~(kPageSize - 1);
    // Collect all fixups that fall on this page.
    std::size_t j = i;
    while (j < fixup_rvas.size() &&
           (fixup_rvas[j] & ~(kPageSize - 1)) == page) {
      ++j;
    }
    std::uint32_t entry_count = static_cast<std::uint32_t>(j - i);
    const bool needs_pad = (entry_count % 2) != 0;
    const std::uint32_t block_size =
        8 + 2 * (entry_count + (needs_pad ? 1u : 0u));

    append_le32(out, page);
    append_le32(out, block_size);
    for (; i < j; ++i) {
      const auto offset =
          static_cast<std::uint16_t>(fixup_rvas[i] & (kPageSize - 1));
      append_le16(out, static_cast<std::uint16_t>((kRelBasedHighLow << 12) |
                                                  offset));
    }
    if (needs_pad) {
      append_le16(out, static_cast<std::uint16_t>(kRelBasedAbsolute << 12));
    }
  }
  return out;
}

std::vector<std::uint32_t> parse_base_relocations(ByteView reloc_data) {
  std::vector<std::uint32_t> rvas;
  std::size_t pos = 0;
  while (pos + 8 <= reloc_data.size()) {
    const std::uint32_t page = load_le32(reloc_data, pos);
    const std::uint32_t block_size = load_le32(reloc_data, pos + 4);
    if (block_size < 8 || pos + block_size > reloc_data.size()) {
      throw FormatError("malformed IMAGE_BASE_RELOCATION block");
    }
    if (block_size == 8 && page == 0) {
      break;  // terminator block emitted by some linkers
    }
    for (std::size_t e = pos + 8; e + 2 <= pos + block_size; e += 2) {
      const std::uint16_t entry = load_le16(reloc_data, e);
      const std::uint16_t type = static_cast<std::uint16_t>(entry >> 12);
      if (type == kRelBasedAbsolute) {
        continue;  // padding
      }
      if (type != kRelBasedHighLow) {
        throw FormatError("unsupported relocation type " +
                          std::to_string(type));
      }
      rvas.push_back(page + (entry & 0x0FFFu));
    }
    pos += block_size;
  }
  std::sort(rvas.begin(), rvas.end());
  return rvas;
}

void apply_relocations(MutableByteView mapped_image,
                       const std::vector<std::uint32_t>& fixup_rvas,
                       std::uint32_t delta) {
  if (delta == 0) {
    return;
  }
  for (const std::uint32_t rva : fixup_rvas) {
    if (rva + 4 > mapped_image.size()) {
      throw FormatError("relocation fixup outside image bounds");
    }
    const std::uint32_t value = load_le32(mapped_image, rva);
    store_le32(mapped_image, rva, value + delta);
  }
}

}  // namespace mc::pe
