// PE import directory builder / parser.
//
// Kernel modules import from other kernel modules (e.g. everything imports
// from ntoskrnl.exe / hal.dll).  The loader binds each IAT slot to the
// absolute address of the exported function, which differs per VM — another
// source of cross-VM byte divergence.  IATs live in a writable .idata
// section, which is why ModChecker hashes only headers and read-only
// executable content (§III-B.2).
//
// Experiment E4 (PE-header DLL hooking) injects a new import descriptor the
// way CFF Explorer does, shifting sections and growing header values.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace mc::pe {

/// One imported DLL and the functions pulled from it.
struct ImportDll {
  std::string dll_name;                     // "hal.dll"
  std::vector<std::string> function_names;  // {"HalInitSystem", ...}
};

/// Result of laying out an import section.
struct ImportLayout {
  Bytes data;  // raw .idata bytes (descriptors, thunks, strings)
  /// RVA (relative to the section start) of each DLL's IAT slot array;
  /// iat_offsets[d][f] is the offset of function f of DLL d.
  std::vector<std::vector<std::uint32_t>> iat_offsets;
  std::uint32_t descriptors_size = 0;  // bytes used by the descriptor array
};

/// Lays out a complete import section.  `section_rva` is the RVA the section
/// will occupy in the image (needed because descriptors hold absolute RVAs).
ImportLayout build_import_section(const std::vector<ImportDll>& dlls,
                                  std::uint32_t section_rva);

/// Parsed view of one import descriptor.
struct ParsedImportDll {
  std::string dll_name;
  std::vector<std::string> function_names;
  std::vector<std::uint32_t> iat_rvas;  // RVA of each IAT slot
  // Raw descriptor fields, needed to rebuild import tables in place
  // (the E4 DLL-injection attack keeps old descriptors pointing at their
  // original thunk arrays, exactly like CFF Explorer's import adder).
  std::uint32_t original_first_thunk_rva = 0;
  std::uint32_t name_rva = 0;
  std::uint32_t first_thunk_rva = 0;
};

/// Parses the import directory of a *mapped* image.  `import_dir_rva` /
/// `import_dir_size` come from the optional header's data directory.
std::vector<ParsedImportDll> parse_import_directory(ByteView mapped_image,
                                                    std::uint32_t import_dir_rva);

}  // namespace mc::pe
