#include "pe/resources.hpp"

#include "util/error.hpp"

namespace mc::pe {

namespace {

constexpr std::uint32_t kDirectorySize = 16;   // IMAGE_RESOURCE_DIRECTORY
constexpr std::uint32_t kDirEntrySize = 8;     // IMAGE_RESOURCE_DIRECTORY_ENTRY
constexpr std::uint32_t kDataEntrySize = 16;   // IMAGE_RESOURCE_DATA_ENTRY
constexpr std::uint32_t kSubdirFlag = 0x80000000u;
constexpr std::uint32_t kLangEnUs = 0x409;

// VS_VERSIONINFO: u16 wLength, u16 wValueLength, u16 wType,
// L"VS_VERSION_INFO\0" (32 bytes UTF-16), pad to 4, VS_FIXEDFILEINFO (52).
constexpr char kVersionKey[] = "VS_VERSION_INFO";
constexpr std::uint32_t kFixedFileInfoSize = 52;

void append_directory(Bytes& out, std::uint16_t id_entries) {
  append_le32(out, 0);  // Characteristics
  append_le32(out, 0);  // TimeDateStamp
  append_le16(out, 0);  // MajorVersion
  append_le16(out, 0);  // MinorVersion
  append_le16(out, 0);  // NumberOfNamedEntries
  append_le16(out, id_entries);
}

void append_dir_entry(Bytes& out, std::uint32_t id, std::uint32_t offset,
                      bool subdirectory) {
  append_le32(out, id);
  append_le32(out, offset | (subdirectory ? kSubdirFlag : 0u));
}

Bytes build_version_value(const VersionInfo& version) {
  Bytes value;
  // VS_FIXEDFILEINFO.
  append_le32(value, kFixedFileInfoSignature);
  append_le32(value, 0x00010000);  // strucVersion 1.0
  append_le32(value, (std::uint32_t{version.file_major} << 16) |
                         version.file_minor);
  append_le32(value, (std::uint32_t{version.file_build} << 16) |
                         version.file_revision);
  append_le32(value, (std::uint32_t{version.product_major} << 16) |
                         version.product_minor);
  append_le32(value, (std::uint32_t{version.product_build} << 16) |
                         version.product_revision);
  append_le32(value, 0x3F);        // FileFlagsMask
  append_le32(value, 0);           // FileFlags
  append_le32(value, 0x00040004);  // FileOS: VOS_NT_WINDOWS32
  append_le32(value, 0x00000003);  // FileType: VFT_DRV
  append_le32(value, 0);           // FileSubtype
  append_le32(value, 0);           // FileDateMS
  append_le32(value, 0);           // FileDateLS
  MC_CHECK(value.size() == kFixedFileInfoSize, "VS_FIXEDFILEINFO size");
  return value;
}

Bytes build_version_block(const VersionInfo& version) {
  Bytes block;
  // Header placeholder (wLength patched at the end).
  append_le16(block, 0);
  append_le16(block, static_cast<std::uint16_t>(kFixedFileInfoSize));
  append_le16(block, 0);  // binary data
  for (const char* p = kVersionKey;; ++p) {
    append_le16(block, static_cast<std::uint16_t>(*p));
    if (*p == '\0') {
      break;
    }
  }
  while (block.size() % 4 != 0) {
    block.push_back(0);
  }
  append_bytes(block, build_version_value(version));
  store_le16(block, 0, static_cast<std::uint16_t>(block.size()));
  return block;
}

}  // namespace

Bytes build_resource_section(const VersionInfo& version,
                             std::uint32_t section_rva) {
  // Fixed-layout tree: three directories, each with one entry, then the
  // data entry, then the version block.
  const std::uint32_t root_off = 0;
  const std::uint32_t type_dir_off = kDirectorySize + kDirEntrySize;
  const std::uint32_t name_dir_off =
      type_dir_off + kDirectorySize + kDirEntrySize;
  const std::uint32_t data_entry_off =
      name_dir_off + kDirectorySize + kDirEntrySize;
  const std::uint32_t data_off = data_entry_off + kDataEntrySize;
  (void)root_off;

  const Bytes block = build_version_block(version);

  Bytes out;
  out.reserve(data_off + block.size());
  append_directory(out, 1);
  append_dir_entry(out, kRtVersion, type_dir_off, /*subdirectory=*/true);
  append_directory(out, 1);
  append_dir_entry(out, 1, name_dir_off, /*subdirectory=*/true);
  append_directory(out, 1);
  append_dir_entry(out, kLangEnUs, data_entry_off, /*subdirectory=*/false);
  // IMAGE_RESOURCE_DATA_ENTRY: OffsetToData is an image RVA.
  append_le32(out, section_rva + data_off);
  append_le32(out, static_cast<std::uint32_t>(block.size()));
  append_le32(out, 0);  // CodePage
  append_le32(out, 0);  // Reserved
  append_bytes(out, block);
  return out;
}

namespace {

/// Follows one directory level; returns the entry's offset field.
std::uint32_t sole_entry(ByteView image, std::uint32_t dir_rva,
                         std::uint32_t expected_id, bool expect_subdir) {
  const std::uint16_t named = load_le16(image, dir_rva + 12);
  const std::uint16_t ids = load_le16(image, dir_rva + 14);
  if (named != 0 || ids == 0) {
    throw FormatError("unsupported resource directory shape");
  }
  // Scan the id entries for expected_id (drivers have exactly one, but be
  // tolerant of siblings).
  for (std::uint16_t i = 0; i < ids; ++i) {
    const std::uint32_t entry_off = dir_rva + kDirectorySize +
                                    i * kDirEntrySize;
    const std::uint32_t id = load_le32(image, entry_off);
    const std::uint32_t offset = load_le32(image, entry_off + 4);
    if (id != expected_id && expected_id != 0xFFFFFFFFu) {
      continue;
    }
    if (((offset & kSubdirFlag) != 0) != expect_subdir) {
      throw FormatError("resource entry kind mismatch");
    }
    return offset & ~kSubdirFlag;
  }
  throw NotFoundError("resource id not present");
}

std::optional<std::uint32_t> fixed_info_rva_impl(
    ByteView image, std::uint32_t resource_dir_rva) {
  std::uint32_t type_dir;
  try {
    type_dir = sole_entry(image, resource_dir_rva, kRtVersion, true);
  } catch (const NotFoundError&) {
    return std::nullopt;
  }
  const std::uint32_t name_dir =
      sole_entry(image, resource_dir_rva + type_dir, 0xFFFFFFFFu, true);
  const std::uint32_t data_entry =
      sole_entry(image, resource_dir_rva + name_dir, 0xFFFFFFFFu, false);

  const std::uint32_t data_rva =
      load_le32(image, resource_dir_rva + data_entry);
  const std::uint32_t data_size =
      load_le32(image, resource_dir_rva + data_entry + 4);
  if (data_rva + data_size > image.size()) {
    throw FormatError("version resource data outside image");
  }
  // Find VS_FIXEDFILEINFO by its signature within the block (skips the
  // UTF-16 key and padding robustly).
  for (std::uint32_t off = 0; off + 4 <= data_size; off += 4) {
    if (load_le32(image, data_rva + off) == kFixedFileInfoSignature) {
      if (data_rva + off + kFixedFileInfoSize > image.size()) {
        throw FormatError("truncated VS_FIXEDFILEINFO");
      }
      return data_rva + off;
    }
  }
  throw FormatError("VS_VERSION_INFO without VS_FIXEDFILEINFO");
}

}  // namespace

std::optional<std::uint32_t> find_fixed_file_info_rva(
    ByteView mapped_image, std::uint32_t resource_dir_rva) {
  return fixed_info_rva_impl(mapped_image, resource_dir_rva);
}

std::optional<VersionInfo> parse_version_resource(
    ByteView mapped_image, std::uint32_t resource_dir_rva) {
  const auto rva = fixed_info_rva_impl(mapped_image, resource_dir_rva);
  if (!rva) {
    return std::nullopt;
  }
  VersionInfo v;
  const std::uint32_t file_ms = load_le32(mapped_image, *rva + 8);
  const std::uint32_t file_ls = load_le32(mapped_image, *rva + 12);
  const std::uint32_t prod_ms = load_le32(mapped_image, *rva + 16);
  const std::uint32_t prod_ls = load_le32(mapped_image, *rva + 20);
  v.file_major = static_cast<std::uint16_t>(file_ms >> 16);
  v.file_minor = static_cast<std::uint16_t>(file_ms & 0xFFFF);
  v.file_build = static_cast<std::uint16_t>(file_ls >> 16);
  v.file_revision = static_cast<std::uint16_t>(file_ls & 0xFFFF);
  v.product_major = static_cast<std::uint16_t>(prod_ms >> 16);
  v.product_minor = static_cast<std::uint16_t>(prod_ms & 0xFFFF);
  v.product_build = static_cast<std::uint16_t>(prod_ls >> 16);
  v.product_revision = static_cast<std::uint16_t>(prod_ls & 0xFFFF);
  return v;
}

}  // namespace mc::pe
