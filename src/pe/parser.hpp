// Parser for in-memory (mapped) PE images — the substrate of the paper's
// Module-Parser component and Algorithm 1.
//
// Given a copy of a module extracted from guest memory, the parser verifies
// the DOS/NT magics, walks the header chain (Fig. 3 of the paper:
// IMAGE_DOS_HEADER → e_lfanew → IMAGE_NT_HEADER → FILE/OPTIONAL headers →
// section headers → section data) and produces the list of *integrity
// items*: each header and each read-only/executable section's data, exactly
// the units the Integrity-Checker hashes separately.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "modchecker/item.hpp"
#include "pe/structs.hpp"
#include "util/bytes.hpp"
#include "vmi/guest_view.hpp"

namespace mc::pe {

// The item vocabulary is format-neutral since the plugin refactor; the
// canonical definitions live in modchecker/item.hpp.  Re-exported here so
// existing `pe::IntegrityItem` spellings keep compiling unchanged.
using ItemKind = core::ItemKind;
using IntegrityItem = core::IntegrityItem;
using core::to_string;

/// Fully parsed view of a mapped module.
class ParsedImage {
 public:
  /// Parses `mapped` (memory layout).  Throws FormatError on bad magics or
  /// out-of-bounds structures.
  explicit ParsedImage(ByteView mapped);

  /// Same parse over a scatter-gather GuestView (the zero-copy Acquire
  /// path): headers are staged through small fixed-size stack copies, so
  /// nothing image-sized is materialized.  Failure behavior matches the
  /// ByteView overload check for check.
  explicit ParsedImage(const vmi::GuestView& mapped);

  const DosHeader& dos() const { return dos_; }
  const FileHeader& file_header() const { return file_; }
  const OptionalHeader32& optional_header() const { return optional_; }
  const std::vector<SectionHeader>& sections() const { return sections_; }

  std::uint32_t e_lfanew() const { return dos_.e_lfanew; }
  std::uint32_t size_of_image() const { return optional_.SizeOfImage; }

  /// Finds a section by name; returns nullptr if absent.
  const SectionHeader* find_section(const std::string& name) const;

  /// Algorithm 1: extracts every header and the data of each section that
  /// is executable or read-only initialized data, as separate items.
  /// Writable data sections are excluded (they legitimately change at
  /// runtime and across VMs).
  std::vector<IntegrityItem> extract_items(ByteView mapped) const;

  /// Zero-copy variant: header items carry small owned copies, section
  /// data items borrow subviews of `mapped` (see IntegrityItem).
  std::vector<IntegrityItem> extract_items(const vmi::GuestView& mapped) const;

 private:
  DosHeader dos_;
  FileHeader file_;
  OptionalHeader32 optional_;
  std::vector<SectionHeader> sections_;
  std::uint32_t section_table_offset_ = 0;
};

/// True if a section's data participates in integrity checking: code or
/// non-writable initialized data, and not discardable.
bool is_integrity_checked_section(const SectionHeader& sh);

}  // namespace mc::pe
