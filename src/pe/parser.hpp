// Parser for in-memory (mapped) PE images — the substrate of the paper's
// Module-Parser component and Algorithm 1.
//
// Given a copy of a module extracted from guest memory, the parser verifies
// the DOS/NT magics, walks the header chain (Fig. 3 of the paper:
// IMAGE_DOS_HEADER → e_lfanew → IMAGE_NT_HEADER → FILE/OPTIONAL headers →
// section headers → section data) and produces the list of *integrity
// items*: each header and each read-only/executable section's data, exactly
// the units the Integrity-Checker hashes separately.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pe/structs.hpp"
#include "util/bytes.hpp"
#include "vmi/guest_view.hpp"

namespace mc::pe {

/// What kind of module piece an integrity item covers.
enum class ItemKind {
  kDosHeader,      // IMAGE_DOS_HEADER + DOS stub (bytes [0, e_lfanew))
  kNtHeader,       // PE signature + IMAGE_FILE_HEADER
  kOptionalHeader, // IMAGE_OPTIONAL_HEADER (incl. data directories)
  kSectionHeader,  // one IMAGE_SECTION_HEADER
  kSectionData,    // data of one read-only or executable section
};

std::string to_string(ItemKind kind);

/// One hashable unit of a module (paper §III-B.3: "computes the hashes of
/// the headers and the contents of the module ... separately").
///
/// Content lives in exactly one of two places: `bytes` (owned copy — the
/// historical path, still used for disk images, caches and forensics) or
/// `view` (borrowed spans over guest frames — the zero-copy Acquire path;
/// headers stay owned even there because they are tiny and parsed into
/// structs anyway).  Consumers go through the content_* accessors /
/// for_each_span so they never care which mode an item is in.
struct IntegrityItem {
  ItemKind kind = ItemKind::kSectionData;
  std::string name;        // ".text", "IMAGE_NT_HEADER", ...
  std::uint32_t rva = 0;   // where the bytes start within the image
  Bytes bytes;             // owned content (empty when view-backed)
  bool rva_sensitive = false;  // true for executable section data (holds
                               // absolute addresses that must be normalized
                               // before hashing)
  vmi::GuestView view;     // borrowed content (empty when owned)

  bool view_backed() const { return !view.empty(); }
  std::size_t content_size() const {
    return view_backed() ? view.size() : bytes.size();
  }
  /// Copies the content into `dst` (dst.size() == content_size()).
  void copy_content(MutableByteView dst) const {
    if (view_backed()) {
      view.read_into(0, dst);
    } else {
      copy_bytes(dst, bytes);
    }
  }
  /// Owned copy — materialization point for forensics/dump consumers.
  Bytes content_copy() const {
    return view_backed() ? view.materialize() : bytes;
  }
  /// Walks the content as borrowed spans in order (streaming hash/CRC).
  template <typename Fn>
  void for_each_span(Fn&& fn) const {
    if (view_backed()) {
      view.for_each_segment(fn);
    } else if (!bytes.empty()) {
      fn(ByteView(bytes));
    }
  }
};

/// Fully parsed view of a mapped module.
class ParsedImage {
 public:
  /// Parses `mapped` (memory layout).  Throws FormatError on bad magics or
  /// out-of-bounds structures.
  explicit ParsedImage(ByteView mapped);

  /// Same parse over a scatter-gather GuestView (the zero-copy Acquire
  /// path): headers are staged through small fixed-size stack copies, so
  /// nothing image-sized is materialized.  Failure behavior matches the
  /// ByteView overload check for check.
  explicit ParsedImage(const vmi::GuestView& mapped);

  const DosHeader& dos() const { return dos_; }
  const FileHeader& file_header() const { return file_; }
  const OptionalHeader32& optional_header() const { return optional_; }
  const std::vector<SectionHeader>& sections() const { return sections_; }

  std::uint32_t e_lfanew() const { return dos_.e_lfanew; }
  std::uint32_t size_of_image() const { return optional_.SizeOfImage; }

  /// Finds a section by name; returns nullptr if absent.
  const SectionHeader* find_section(const std::string& name) const;

  /// Algorithm 1: extracts every header and the data of each section that
  /// is executable or read-only initialized data, as separate items.
  /// Writable data sections are excluded (they legitimately change at
  /// runtime and across VMs).
  std::vector<IntegrityItem> extract_items(ByteView mapped) const;

  /// Zero-copy variant: header items carry small owned copies, section
  /// data items borrow subviews of `mapped` (see IntegrityItem).
  std::vector<IntegrityItem> extract_items(const vmi::GuestView& mapped) const;

 private:
  DosHeader dos_;
  FileHeader file_;
  OptionalHeader32 optional_;
  std::vector<SectionHeader> sections_;
  std::uint32_t section_table_offset_ = 0;
};

/// True if a section's data participates in integrity checking: code or
/// non-writable initialized data, and not discardable.
bool is_integrity_checked_section(const SectionHeader& sh);

}  // namespace mc::pe
