// PE resource section (.rsrc) with a VS_VERSIONINFO block.
//
// Real drivers carry a version resource (file/product version, the values
// Explorer shows).  The layout here is the genuine resource-directory
// shape reduced to the one entry drivers always have:
//
//   IMAGE_RESOURCE_DIRECTORY (root)
//     └─ id RT_VERSION (16) → IMAGE_RESOURCE_DIRECTORY
//          └─ id 1 (name) → IMAGE_RESOURCE_DIRECTORY
//               └─ id 0x409 (lang) → IMAGE_RESOURCE_DATA_ENTRY
//                    └─ VS_VERSIONINFO ⊃ VS_FIXEDFILEINFO
//
// Version metadata matters to the integrity story: `.rsrc` is read-only
// initialized data, so it is part of ModChecker's checked surface — a
// malware "update" that rewrites the version resource is detectable even
// when it touches nothing else (the VersionSpoof attack exercises this).
#pragma once

#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace mc::pe {

inline constexpr std::uint32_t kRtVersion = 16;             // RT_VERSION
inline constexpr std::uint32_t kFixedFileInfoSignature = 0xFEEF04BDu;

struct VersionInfo {
  std::uint16_t file_major = 5;
  std::uint16_t file_minor = 1;
  std::uint16_t file_build = 2600;
  std::uint16_t file_revision = 0;
  std::uint16_t product_major = 5;
  std::uint16_t product_minor = 1;
  std::uint16_t product_build = 2600;
  std::uint16_t product_revision = 0;

  friend bool operator==(const VersionInfo&, const VersionInfo&) = default;
};

/// Lays out a complete .rsrc section.  `section_rva` is where the section
/// will live (data entries store absolute RVAs).
Bytes build_resource_section(const VersionInfo& version,
                             std::uint32_t section_rva);

/// Walks the directory tree of a mapped image's resource directory and
/// returns the version info; nullopt if no RT_VERSION resource exists.
/// Throws FormatError on malformed trees.
std::optional<VersionInfo> parse_version_resource(ByteView mapped_image,
                                                  std::uint32_t resource_dir_rva);

/// RVA (within the image) of the VS_FIXEDFILEINFO block, for in-place
/// version tampering; nullopt if absent.
std::optional<std::uint32_t> find_fixed_file_info_rva(
    ByteView mapped_image, std::uint32_t resource_dir_rva);

}  // namespace mc::pe
