#include "pe/exports.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mc::pe {

namespace {
constexpr std::uint32_t kExportDirectorySize = 40;

std::string read_cstring(ByteView image, std::size_t offset) {
  std::string s;
  while (offset < image.size() && image[offset] != 0) {
    s.push_back(static_cast<char>(image[offset]));
    ++offset;
  }
  if (offset >= image.size()) {
    throw FormatError("unterminated string in export directory");
  }
  return s;
}
}  // namespace

Bytes build_export_section(const std::string& module_name,
                           std::vector<ExportedSymbol> symbols,
                           std::uint32_t section_rva) {
  // The name pointer table must be sorted for binary search (PE spec).
  std::sort(symbols.begin(), symbols.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });

  const auto count = static_cast<std::uint32_t>(symbols.size());
  const std::uint32_t eat_offset = kExportDirectorySize;
  const std::uint32_t name_ptr_offset = eat_offset + 4 * count;
  const std::uint32_t ordinal_offset = name_ptr_offset + 4 * count;
  std::uint32_t strings_offset = ordinal_offset + 2 * count;

  // String pool: module name first, then symbol names.
  const std::uint32_t module_name_offset = strings_offset;
  strings_offset += static_cast<std::uint32_t>(module_name.size()) + 1;
  std::vector<std::uint32_t> name_offsets;
  for (const auto& sym : symbols) {
    name_offsets.push_back(strings_offset);
    strings_offset += static_cast<std::uint32_t>(sym.name.size()) + 1;
  }

  Bytes out;
  out.reserve(strings_offset);

  // IMAGE_EXPORT_DIRECTORY.
  append_le32(out, 0);  // Characteristics
  append_le32(out, 0);  // TimeDateStamp
  append_le16(out, 0);  // MajorVersion
  append_le16(out, 0);  // MinorVersion
  append_le32(out, section_rva + module_name_offset);  // Name
  append_le32(out, 1);      // Base (ordinal base)
  append_le32(out, count);  // NumberOfFunctions
  append_le32(out, count);  // NumberOfNames
  append_le32(out, section_rva + eat_offset);       // AddressOfFunctions
  append_le32(out, section_rva + name_ptr_offset);  // AddressOfNames
  append_le32(out, section_rva + ordinal_offset);   // AddressOfNameOrdinals

  // Export address table (RVAs — relocation-invariant).
  for (const auto& sym : symbols) {
    append_le32(out, sym.rva);
  }
  // Name pointer table.
  for (const std::uint32_t off : name_offsets) {
    append_le32(out, section_rva + off);
  }
  // Ordinal table (name i -> function i; tables are parallel here).
  for (std::uint16_t i = 0; i < count; ++i) {
    append_le16(out, i);
  }
  // Strings.
  for (const char c : module_name) {
    out.push_back(static_cast<std::uint8_t>(c));
  }
  out.push_back(0);
  for (const auto& sym : symbols) {
    for (const char c : sym.name) {
      out.push_back(static_cast<std::uint8_t>(c));
    }
    out.push_back(0);
  }

  MC_CHECK(out.size() == strings_offset, "export layout size mismatch");
  return out;
}

std::vector<ExportedSymbol> parse_export_directory(
    ByteView mapped_image, std::uint32_t export_dir_rva) {
  if (export_dir_rva + kExportDirectorySize > mapped_image.size()) {
    throw FormatError("export directory outside image");
  }
  const std::uint32_t count = load_le32(mapped_image, export_dir_rva + 24);
  const std::uint32_t eat = load_le32(mapped_image, export_dir_rva + 28);
  const std::uint32_t names = load_le32(mapped_image, export_dir_rva + 32);
  const std::uint32_t ordinals = load_le32(mapped_image, export_dir_rva + 36);

  std::vector<ExportedSymbol> result;
  result.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t name_rva = load_le32(mapped_image, names + 4 * i);
    const std::uint16_t ordinal = load_le16(mapped_image, ordinals + 2 * i);
    ExportedSymbol sym;
    sym.name = read_cstring(mapped_image, name_rva);
    sym.rva = load_le32(mapped_image, eat + 4u * ordinal);
    result.push_back(std::move(sym));
  }
  return result;
}

}  // namespace mc::pe
