// PE32 image builder.
//
// Produces byte-faithful 32-bit driver images (the kind the paper's testbed
// loads: hal.dll, http.sys, dummy "Hello World" .sys files): DOS header +
// classic stub, NT headers, section table, code/data/import/export/reloc
// sections, real base-relocation records, and a valid PE checksum.
//
// Sections are laid out at deterministic RVAs (first section at 0x1000,
// subsequent sections at the next section-aligned boundary), so callers can
// query `next_section_rva()` before generating position-dependent content
// such as machine code with embedded absolute addresses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pe/exports.hpp"
#include "pe/imports.hpp"
#include "pe/resources.hpp"
#include "pe/structs.hpp"
#include "util/bytes.hpp"

namespace mc::pe {

class PeBuilder {
 public:
  /// `module_name` is informational (export table name, diagnostics).
  explicit PeBuilder(std::string module_name);

  PeBuilder& set_image_base(std::uint32_t base);
  PeBuilder& set_timestamp(std::uint32_t timestamp);
  /// Entry point as an absolute RVA (usually text_rva + offset).
  PeBuilder& set_entry_point(std::uint32_t rva);
  PeBuilder& set_dll(bool is_dll);

  std::uint32_t image_base() const { return image_base_; }

  /// RVA at which the next added section will be placed.
  std::uint32_t next_section_rva() const;

  /// Adds a raw section.  `fixup_offsets` are offsets *within data* holding
  /// 32-bit absolute addresses that need base relocations.
  /// `virtual_size` defaults to data.size().
  PeBuilder& add_section(const std::string& name, Bytes data,
                         std::uint32_t characteristics,
                         std::vector<std::uint32_t> fixup_offsets = {},
                         std::optional<std::uint32_t> virtual_size = {});

  /// Adds a ".idata" import section and points data directory 1 at it.
  PeBuilder& add_import_section(const std::vector<ImportDll>& dlls);

  /// Adds an ".edata" export section and points data directory 0 at it.
  PeBuilder& add_export_section(std::vector<ExportedSymbol> symbols);

  /// Adds a ".rsrc" section with a VS_VERSIONINFO resource and points data
  /// directory 2 at it.
  PeBuilder& add_resource_section(const VersionInfo& version);

  /// Adds the ".reloc" section from all accumulated fixups and points data
  /// directory 5 at it.  Call last.
  PeBuilder& add_reloc_section();

  /// Serializes the image file.  The builder can be reused afterwards.
  Bytes build() const;

 private:
  struct PendingSection {
    SectionHeader header;
    Bytes data;
  };

  std::string module_name_;
  std::uint32_t image_base_ = 0x00010000;
  std::uint32_t timestamp_ = 0x4C000000;  // fixed, deterministic
  std::uint32_t entry_point_rva_ = 0;
  bool is_dll_ = false;

  std::vector<PendingSection> sections_;
  std::vector<std::uint32_t> fixup_rvas_;
  std::array<DataDirectory, kNumDataDirectories> directories_{};

  Bytes dos_stub_ = make_dos_stub();
};

/// Computes the standard PE checksum over a serialized image file, treating
/// the in-file CheckSum dword (at `checksum_offset`) as zero.
std::uint32_t compute_pe_checksum(ByteView file, std::size_t checksum_offset);

}  // namespace mc::pe
