// PE32 format constants (subset relevant to 32-bit kernel modules).
//
// Values follow the Microsoft PE/COFF specification; names keep the
// WinNT.h spelling so they can be cross-checked against the reference
// documentation the paper cites ("Peering inside the PE", MSDN).
#pragma once

#include <cstdint>

namespace mc::pe {

// ---- magics -------------------------------------------------------------
inline constexpr std::uint16_t kDosMagic = 0x5A4D;       // "MZ"
inline constexpr std::uint32_t kNtSignature = 0x00004550;  // "PE\0\0"
inline constexpr std::uint16_t kOptionalMagicPe32 = 0x010B;

// ---- machine / characteristics -------------------------------------------
inline constexpr std::uint16_t kMachineI386 = 0x014C;

inline constexpr std::uint16_t kFileRelocsStripped = 0x0001;
inline constexpr std::uint16_t kFileExecutableImage = 0x0002;
inline constexpr std::uint16_t kFileLineNumsStripped = 0x0004;
inline constexpr std::uint16_t kFile32BitMachine = 0x0100;
inline constexpr std::uint16_t kFileDll = 0x2000;

// ---- subsystem ------------------------------------------------------------
inline constexpr std::uint16_t kSubsystemNative = 1;  // drivers

// ---- section characteristics ----------------------------------------------
inline constexpr std::uint32_t kScnCntCode = 0x00000020;
inline constexpr std::uint32_t kScnCntInitializedData = 0x00000040;
inline constexpr std::uint32_t kScnCntUninitializedData = 0x00000080;
inline constexpr std::uint32_t kScnMemDiscardable = 0x02000000;
inline constexpr std::uint32_t kScnMemExecute = 0x20000000;
inline constexpr std::uint32_t kScnMemRead = 0x40000000;
inline constexpr std::uint32_t kScnMemWrite = 0x80000000;

// ---- data directory indices -------------------------------------------------
inline constexpr std::size_t kDirExport = 0;
inline constexpr std::size_t kDirImport = 1;
inline constexpr std::size_t kDirResource = 2;
inline constexpr std::size_t kDirBaseReloc = 5;
inline constexpr std::size_t kNumDataDirectories = 16;

// ---- base relocation types ---------------------------------------------------
inline constexpr std::uint16_t kRelBasedAbsolute = 0;  // padding entry
inline constexpr std::uint16_t kRelBasedHighLow = 3;   // full 32-bit fixup

// ---- fixed header sizes (PE32) ------------------------------------------------
inline constexpr std::size_t kDosHeaderSize = 64;
inline constexpr std::size_t kFileHeaderSize = 20;
inline constexpr std::size_t kOptionalHeader32Size = 224;  // with 16 dirs
inline constexpr std::size_t kNtHeadersPrefixSize = 4 + kFileHeaderSize;
inline constexpr std::size_t kSectionHeaderSize = 40;

// Default alignments used by the builder (match typical XP-era drivers).
inline constexpr std::uint32_t kDefaultSectionAlignment = 0x1000;
inline constexpr std::uint32_t kDefaultFileAlignment = 0x200;

// Page size used for relocation blocks and guest paging.
inline constexpr std::uint32_t kPageSize = 0x1000;

}  // namespace mc::pe
