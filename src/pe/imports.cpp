#include "pe/imports.hpp"

#include "util/error.hpp"

namespace mc::pe {

namespace {
constexpr std::uint32_t kDescriptorSize = 20;

std::string read_cstring(ByteView image, std::size_t offset) {
  std::string s;
  while (offset < image.size() && image[offset] != 0) {
    s.push_back(static_cast<char>(image[offset]));
    ++offset;
  }
  if (offset >= image.size()) {
    throw FormatError("unterminated string in import directory");
  }
  return s;
}
}  // namespace

ImportLayout build_import_section(const std::vector<ImportDll>& dlls,
                                  std::uint32_t section_rva) {
  ImportLayout layout;
  Bytes& out = layout.data;

  // Pass 1: compute layout offsets (relative to section start).
  const std::uint32_t descriptors_bytes =
      static_cast<std::uint32_t>((dlls.size() + 1) * kDescriptorSize);
  layout.descriptors_size = descriptors_bytes;

  std::uint32_t cursor = descriptors_bytes;
  std::vector<std::uint32_t> int_offsets;   // per-DLL OriginalFirstThunk
  std::vector<std::uint32_t> iat_starts;    // per-DLL FirstThunk
  for (const auto& dll : dlls) {
    const auto thunks =
        static_cast<std::uint32_t>((dll.function_names.size() + 1) * 4);
    int_offsets.push_back(cursor);
    cursor += thunks;
    iat_starts.push_back(cursor);
    cursor += thunks;
  }

  // Hint/name entries.
  std::vector<std::vector<std::uint32_t>> hint_name_offsets(dlls.size());
  for (std::size_t d = 0; d < dlls.size(); ++d) {
    for (const auto& fn : dlls[d].function_names) {
      hint_name_offsets[d].push_back(cursor);
      std::uint32_t entry = 2 + static_cast<std::uint32_t>(fn.size()) + 1;
      entry = (entry + 1) & ~1u;  // even-align
      cursor += entry;
    }
  }

  // DLL name strings.
  std::vector<std::uint32_t> dll_name_offsets;
  for (const auto& dll : dlls) {
    dll_name_offsets.push_back(cursor);
    cursor += static_cast<std::uint32_t>(dll.dll_name.size()) + 1;
  }

  out.reserve(cursor);

  // Pass 2: emit descriptor array.
  for (std::size_t d = 0; d < dlls.size(); ++d) {
    append_le32(out, section_rva + int_offsets[d]);  // OriginalFirstThunk
    append_le32(out, 0);                             // TimeDateStamp
    append_le32(out, 0);                             // ForwarderChain
    append_le32(out, section_rva + dll_name_offsets[d]);  // Name
    append_le32(out, section_rva + iat_starts[d]);         // FirstThunk
  }
  for (int i = 0; i < 5; ++i) {
    append_le32(out, 0);  // terminating null descriptor
  }

  // Thunk arrays: both INT and IAT initially hold hint/name RVAs; the
  // loader overwrites the IAT copy with bound absolute addresses.
  layout.iat_offsets.resize(dlls.size());
  for (std::size_t d = 0; d < dlls.size(); ++d) {
    for (const std::uint32_t hn : hint_name_offsets[d]) {
      append_le32(out, section_rva + hn);
    }
    append_le32(out, 0);
    for (std::size_t f = 0; f < dlls[d].function_names.size(); ++f) {
      layout.iat_offsets[d].push_back(static_cast<std::uint32_t>(out.size()));
      append_le32(out, section_rva + hint_name_offsets[d][f]);
    }
    append_le32(out, 0);
  }

  // Hint/name table.
  for (std::size_t d = 0; d < dlls.size(); ++d) {
    for (const auto& fn : dlls[d].function_names) {
      append_le16(out, 0);  // hint
      for (const char c : fn) {
        out.push_back(static_cast<std::uint8_t>(c));
      }
      out.push_back(0);
      if (out.size() % 2 != 0) {
        out.push_back(0);
      }
    }
  }

  // DLL names.
  for (const auto& dll : dlls) {
    for (const char c : dll.dll_name) {
      out.push_back(static_cast<std::uint8_t>(c));
    }
    out.push_back(0);
  }

  MC_CHECK(out.size() == cursor, "import layout size mismatch");
  return layout;
}

std::vector<ParsedImportDll> parse_import_directory(
    ByteView mapped_image, std::uint32_t import_dir_rva) {
  std::vector<ParsedImportDll> result;
  std::uint32_t desc = import_dir_rva;
  for (;;) {
    if (desc + kDescriptorSize > mapped_image.size()) {
      throw FormatError("import descriptor outside image");
    }
    const std::uint32_t original_first_thunk = load_le32(mapped_image, desc);
    const std::uint32_t name_rva = load_le32(mapped_image, desc + 12);
    const std::uint32_t first_thunk = load_le32(mapped_image, desc + 16);
    if (original_first_thunk == 0 && name_rva == 0 && first_thunk == 0) {
      break;  // terminator
    }
    ParsedImportDll dll;
    dll.dll_name = read_cstring(mapped_image, name_rva);
    dll.original_first_thunk_rva = original_first_thunk;
    dll.name_rva = name_rva;
    dll.first_thunk_rva = first_thunk;
    // Walk the INT (never overwritten by binding) for names, and record the
    // matching IAT slot RVAs.
    std::uint32_t int_rva = original_first_thunk != 0 ? original_first_thunk
                                                      : first_thunk;
    std::uint32_t iat_rva = first_thunk;
    for (;;) {
      const std::uint32_t entry = load_le32(mapped_image, int_rva);
      if (entry == 0) {
        break;
      }
      dll.function_names.push_back(read_cstring(mapped_image, entry + 2));
      dll.iat_rvas.push_back(iat_rva);
      int_rva += 4;
      iat_rva += 4;
    }
    result.push_back(std::move(dll));
    desc += kDescriptorSize;
  }
  return result;
}

}  // namespace mc::pe
