// File-layout to memory-layout image mapping.
//
// A PE file on disk packs section raw data at file-aligned offsets; the
// loader maps headers and sections at their (section-aligned) virtual
// addresses.  This module performs that expansion — the first step of the
// loading process that guestos::ModuleLoader simulates.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace mc::pe {

/// Expands a PE file image into its memory layout (SizeOfImage bytes,
/// headers at 0, each section's raw data copied to its VirtualAddress,
/// zero fill elsewhere).
Bytes map_image(ByteView file);

/// Reads SizeOfImage from a file or mapped image without a full parse.
std::uint32_t read_size_of_image(ByteView image);

/// Reads the preferred ImageBase.
std::uint32_t read_image_base(ByteView image);

}  // namespace mc::pe
