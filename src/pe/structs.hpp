// PE32 header structures with explicit (de)serialization.
//
// We deliberately avoid packed-struct type punning: every header is a plain
// value type with `parse` / `serialize` that go through the little-endian
// helpers in util/bytes.hpp, so the code is portable and free of alignment
// UB (Core Guidelines C.183).  Field names keep the WinNT.h spelling used
// throughout the paper (e_magic, e_lfanew, NumberOfSections, ...).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "pe/constants.hpp"
#include "util/bytes.hpp"

namespace mc::pe {

/// IMAGE_DOS_HEADER — 64 bytes; only e_magic and e_lfanew matter to the
/// loader, the rest are retained verbatim so hashes cover real bytes.
struct DosHeader {
  std::uint16_t e_magic = kDosMagic;
  std::uint16_t e_cblp = 0x90;
  std::uint16_t e_cp = 3;
  std::uint16_t e_crlc = 0;
  std::uint16_t e_cparhdr = 4;
  std::uint16_t e_minalloc = 0;
  std::uint16_t e_maxalloc = 0xFFFF;
  std::uint16_t e_ss = 0;
  std::uint16_t e_sp = 0xB8;
  std::uint16_t e_csum = 0;
  std::uint16_t e_ip = 0;
  std::uint16_t e_cs = 0;
  std::uint16_t e_lfarlc = 0x40;
  std::uint16_t e_ovno = 0;
  std::array<std::uint16_t, 4> e_res{};
  std::uint16_t e_oemid = 0;
  std::uint16_t e_oeminfo = 0;
  std::array<std::uint16_t, 10> e_res2{};
  std::uint32_t e_lfanew = 0;

  static DosHeader parse(ByteView image);
  void serialize(Bytes& out) const;
};

/// IMAGE_FILE_HEADER — 20 bytes.
struct FileHeader {
  std::uint16_t Machine = kMachineI386;
  std::uint16_t NumberOfSections = 0;
  std::uint32_t TimeDateStamp = 0;
  std::uint32_t PointerToSymbolTable = 0;
  std::uint32_t NumberOfSymbols = 0;
  std::uint16_t SizeOfOptionalHeader = kOptionalHeader32Size;
  std::uint16_t Characteristics = 0;

  static FileHeader parse(ByteView image, std::size_t offset);
  void serialize(Bytes& out) const;
};

/// IMAGE_DATA_DIRECTORY entry.
struct DataDirectory {
  std::uint32_t VirtualAddress = 0;
  std::uint32_t Size = 0;
};

/// IMAGE_OPTIONAL_HEADER (PE32) — 224 bytes with 16 data directories.
struct OptionalHeader32 {
  std::uint16_t Magic = kOptionalMagicPe32;
  std::uint8_t MajorLinkerVersion = 7;
  std::uint8_t MinorLinkerVersion = 10;
  std::uint32_t SizeOfCode = 0;
  std::uint32_t SizeOfInitializedData = 0;
  std::uint32_t SizeOfUninitializedData = 0;
  std::uint32_t AddressOfEntryPoint = 0;
  std::uint32_t BaseOfCode = 0;
  std::uint32_t BaseOfData = 0;
  std::uint32_t ImageBase = 0x00010000;
  std::uint32_t SectionAlignment = kDefaultSectionAlignment;
  std::uint32_t FileAlignment = kDefaultFileAlignment;
  std::uint16_t MajorOperatingSystemVersion = 5;
  std::uint16_t MinorOperatingSystemVersion = 1;
  std::uint16_t MajorImageVersion = 5;
  std::uint16_t MinorImageVersion = 1;
  std::uint16_t MajorSubsystemVersion = 5;
  std::uint16_t MinorSubsystemVersion = 1;
  std::uint32_t Win32VersionValue = 0;
  std::uint32_t SizeOfImage = 0;
  std::uint32_t SizeOfHeaders = 0;
  std::uint32_t CheckSum = 0;
  std::uint16_t Subsystem = kSubsystemNative;
  std::uint16_t DllCharacteristics = 0;
  std::uint32_t SizeOfStackReserve = 0x40000;
  std::uint32_t SizeOfStackCommit = 0x1000;
  std::uint32_t SizeOfHeapReserve = 0x100000;
  std::uint32_t SizeOfHeapCommit = 0x1000;
  std::uint32_t LoaderFlags = 0;
  std::uint32_t NumberOfRvaAndSizes = kNumDataDirectories;
  std::array<DataDirectory, kNumDataDirectories> DataDirectories{};

  static OptionalHeader32 parse(ByteView image, std::size_t offset);
  void serialize(Bytes& out) const;
};

/// IMAGE_SECTION_HEADER — 40 bytes.
struct SectionHeader {
  std::array<char, 8> Name{};
  std::uint32_t VirtualSize = 0;
  std::uint32_t VirtualAddress = 0;
  std::uint32_t SizeOfRawData = 0;
  std::uint32_t PointerToRawData = 0;
  std::uint32_t PointerToRelocations = 0;
  std::uint32_t PointerToLinenumbers = 0;
  std::uint16_t NumberOfRelocations = 0;
  std::uint16_t NumberOfLinenumbers = 0;
  std::uint32_t Characteristics = 0;

  static SectionHeader parse(ByteView image, std::size_t offset);
  void serialize(Bytes& out) const;

  /// Name as a string (trimmed at the first NUL).
  std::string name() const;
  void set_name(const std::string& n);

  bool is_code() const {
    return (Characteristics & (kScnCntCode | kScnMemExecute)) != 0;
  }
  bool is_writable() const { return (Characteristics & kScnMemWrite) != 0; }
  bool is_discardable() const {
    return (Characteristics & kScnMemDiscardable) != 0;
  }
};

/// The canonical MS-DOS stub program text; experiment E3 patches "DOS" to
/// "CHK" inside this string.
extern const char kDosStubMessage[];

/// Builds the classic DOS stub bytes (stub code + message + padding).
Bytes make_dos_stub();

}  // namespace mc::pe
