#include "pe/structs.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mc::pe {

// ---- DosHeader --------------------------------------------------------------

DosHeader DosHeader::parse(ByteView image) {
  if (image.size() < kDosHeaderSize) {
    throw FormatError("image too small for IMAGE_DOS_HEADER");
  }
  DosHeader h;
  h.e_magic = load_le16(image, 0x00);
  h.e_cblp = load_le16(image, 0x02);
  h.e_cp = load_le16(image, 0x04);
  h.e_crlc = load_le16(image, 0x06);
  h.e_cparhdr = load_le16(image, 0x08);
  h.e_minalloc = load_le16(image, 0x0A);
  h.e_maxalloc = load_le16(image, 0x0C);
  h.e_ss = load_le16(image, 0x0E);
  h.e_sp = load_le16(image, 0x10);
  h.e_csum = load_le16(image, 0x12);
  h.e_ip = load_le16(image, 0x14);
  h.e_cs = load_le16(image, 0x16);
  h.e_lfarlc = load_le16(image, 0x18);
  h.e_ovno = load_le16(image, 0x1A);
  for (std::size_t i = 0; i < h.e_res.size(); ++i) {
    h.e_res[i] = load_le16(image, 0x1C + 2 * i);
  }
  h.e_oemid = load_le16(image, 0x24);
  h.e_oeminfo = load_le16(image, 0x26);
  for (std::size_t i = 0; i < h.e_res2.size(); ++i) {
    h.e_res2[i] = load_le16(image, 0x28 + 2 * i);
  }
  h.e_lfanew = load_le32(image, 0x3C);
  return h;
}

void DosHeader::serialize(Bytes& out) const {
  append_le16(out, e_magic);
  append_le16(out, e_cblp);
  append_le16(out, e_cp);
  append_le16(out, e_crlc);
  append_le16(out, e_cparhdr);
  append_le16(out, e_minalloc);
  append_le16(out, e_maxalloc);
  append_le16(out, e_ss);
  append_le16(out, e_sp);
  append_le16(out, e_csum);
  append_le16(out, e_ip);
  append_le16(out, e_cs);
  append_le16(out, e_lfarlc);
  append_le16(out, e_ovno);
  for (const auto v : e_res) {
    append_le16(out, v);
  }
  append_le16(out, e_oemid);
  append_le16(out, e_oeminfo);
  for (const auto v : e_res2) {
    append_le16(out, v);
  }
  append_le32(out, e_lfanew);
}

// ---- FileHeader -------------------------------------------------------------

FileHeader FileHeader::parse(ByteView image, std::size_t offset) {
  if (image.size() < offset + kFileHeaderSize) {
    throw FormatError("image too small for IMAGE_FILE_HEADER");
  }
  FileHeader h;
  h.Machine = load_le16(image, offset + 0);
  h.NumberOfSections = load_le16(image, offset + 2);
  h.TimeDateStamp = load_le32(image, offset + 4);
  h.PointerToSymbolTable = load_le32(image, offset + 8);
  h.NumberOfSymbols = load_le32(image, offset + 12);
  h.SizeOfOptionalHeader = load_le16(image, offset + 16);
  h.Characteristics = load_le16(image, offset + 18);
  return h;
}

void FileHeader::serialize(Bytes& out) const {
  append_le16(out, Machine);
  append_le16(out, NumberOfSections);
  append_le32(out, TimeDateStamp);
  append_le32(out, PointerToSymbolTable);
  append_le32(out, NumberOfSymbols);
  append_le16(out, SizeOfOptionalHeader);
  append_le16(out, Characteristics);
}

// ---- OptionalHeader32 ---------------------------------------------------------

OptionalHeader32 OptionalHeader32::parse(ByteView image, std::size_t offset) {
  if (image.size() < offset + kOptionalHeader32Size) {
    throw FormatError("image too small for IMAGE_OPTIONAL_HEADER32");
  }
  OptionalHeader32 h;
  h.Magic = load_le16(image, offset + 0);
  if (h.Magic != kOptionalMagicPe32) {
    throw FormatError("optional header magic is not PE32 (0x10B)");
  }
  h.MajorLinkerVersion = image[offset + 2];
  h.MinorLinkerVersion = image[offset + 3];
  h.SizeOfCode = load_le32(image, offset + 4);
  h.SizeOfInitializedData = load_le32(image, offset + 8);
  h.SizeOfUninitializedData = load_le32(image, offset + 12);
  h.AddressOfEntryPoint = load_le32(image, offset + 16);
  h.BaseOfCode = load_le32(image, offset + 20);
  h.BaseOfData = load_le32(image, offset + 24);
  h.ImageBase = load_le32(image, offset + 28);
  h.SectionAlignment = load_le32(image, offset + 32);
  h.FileAlignment = load_le32(image, offset + 36);
  h.MajorOperatingSystemVersion = load_le16(image, offset + 40);
  h.MinorOperatingSystemVersion = load_le16(image, offset + 42);
  h.MajorImageVersion = load_le16(image, offset + 44);
  h.MinorImageVersion = load_le16(image, offset + 46);
  h.MajorSubsystemVersion = load_le16(image, offset + 48);
  h.MinorSubsystemVersion = load_le16(image, offset + 50);
  h.Win32VersionValue = load_le32(image, offset + 52);
  h.SizeOfImage = load_le32(image, offset + 56);
  h.SizeOfHeaders = load_le32(image, offset + 60);
  h.CheckSum = load_le32(image, offset + 64);
  h.Subsystem = load_le16(image, offset + 68);
  h.DllCharacteristics = load_le16(image, offset + 70);
  h.SizeOfStackReserve = load_le32(image, offset + 72);
  h.SizeOfStackCommit = load_le32(image, offset + 76);
  h.SizeOfHeapReserve = load_le32(image, offset + 80);
  h.SizeOfHeapCommit = load_le32(image, offset + 84);
  h.LoaderFlags = load_le32(image, offset + 88);
  h.NumberOfRvaAndSizes = load_le32(image, offset + 92);
  for (std::size_t i = 0; i < kNumDataDirectories; ++i) {
    h.DataDirectories[i].VirtualAddress = load_le32(image, offset + 96 + 8 * i);
    h.DataDirectories[i].Size = load_le32(image, offset + 100 + 8 * i);
  }
  return h;
}

void OptionalHeader32::serialize(Bytes& out) const {
  append_le16(out, Magic);
  out.push_back(MajorLinkerVersion);
  out.push_back(MinorLinkerVersion);
  append_le32(out, SizeOfCode);
  append_le32(out, SizeOfInitializedData);
  append_le32(out, SizeOfUninitializedData);
  append_le32(out, AddressOfEntryPoint);
  append_le32(out, BaseOfCode);
  append_le32(out, BaseOfData);
  append_le32(out, ImageBase);
  append_le32(out, SectionAlignment);
  append_le32(out, FileAlignment);
  append_le16(out, MajorOperatingSystemVersion);
  append_le16(out, MinorOperatingSystemVersion);
  append_le16(out, MajorImageVersion);
  append_le16(out, MinorImageVersion);
  append_le16(out, MajorSubsystemVersion);
  append_le16(out, MinorSubsystemVersion);
  append_le32(out, Win32VersionValue);
  append_le32(out, SizeOfImage);
  append_le32(out, SizeOfHeaders);
  append_le32(out, CheckSum);
  append_le16(out, Subsystem);
  append_le16(out, DllCharacteristics);
  append_le32(out, SizeOfStackReserve);
  append_le32(out, SizeOfStackCommit);
  append_le32(out, SizeOfHeapReserve);
  append_le32(out, SizeOfHeapCommit);
  append_le32(out, LoaderFlags);
  append_le32(out, NumberOfRvaAndSizes);
  for (const auto& dir : DataDirectories) {
    append_le32(out, dir.VirtualAddress);
    append_le32(out, dir.Size);
  }
}

// ---- SectionHeader -------------------------------------------------------------

SectionHeader SectionHeader::parse(ByteView image, std::size_t offset) {
  if (image.size() < offset + kSectionHeaderSize) {
    throw FormatError("image too small for IMAGE_SECTION_HEADER");
  }
  SectionHeader h;
  for (std::size_t i = 0; i < 8; ++i) {
    h.Name[i] = static_cast<char>(image[offset + i]);
  }
  h.VirtualSize = load_le32(image, offset + 8);
  h.VirtualAddress = load_le32(image, offset + 12);
  h.SizeOfRawData = load_le32(image, offset + 16);
  h.PointerToRawData = load_le32(image, offset + 20);
  h.PointerToRelocations = load_le32(image, offset + 24);
  h.PointerToLinenumbers = load_le32(image, offset + 28);
  h.NumberOfRelocations = load_le16(image, offset + 32);
  h.NumberOfLinenumbers = load_le16(image, offset + 34);
  h.Characteristics = load_le32(image, offset + 36);
  return h;
}

void SectionHeader::serialize(Bytes& out) const {
  for (const char c : Name) {
    out.push_back(static_cast<std::uint8_t>(c));
  }
  append_le32(out, VirtualSize);
  append_le32(out, VirtualAddress);
  append_le32(out, SizeOfRawData);
  append_le32(out, PointerToRawData);
  append_le32(out, PointerToRelocations);
  append_le32(out, PointerToLinenumbers);
  append_le16(out, NumberOfRelocations);
  append_le16(out, NumberOfLinenumbers);
  append_le32(out, Characteristics);
}

std::string SectionHeader::name() const {
  std::string s;
  for (const char c : Name) {
    if (c == '\0') {
      break;
    }
    s.push_back(c);
  }
  return s;
}

void SectionHeader::set_name(const std::string& n) {
  MC_CHECK(n.size() <= 8, "section name longer than 8 bytes");
  Name.fill('\0');
  std::copy(n.begin(), n.end(), Name.begin());
}

// ---- DOS stub -------------------------------------------------------------------

const char kDosStubMessage[] = "This program cannot be run in DOS mode.";

Bytes make_dos_stub() {
  // The classic 14-byte real-mode stub: push cs / pop ds /
  // mov dx, 0x0E / mov ah, 9 / int 0x21 / mov ax, 0x4C01 / int 0x21.
  static constexpr std::uint8_t kStubCode[] = {0x0E, 0x1F, 0xBA, 0x0E, 0x00,
                                               0xB4, 0x09, 0xCD, 0x21, 0xB8,
                                               0x01, 0x4C, 0xCD, 0x21};
  Bytes stub;
  stub.reserve(64);
  for (const std::uint8_t b : kStubCode) {
    stub.push_back(b);
  }
  for (const char* p = kDosStubMessage; *p != '\0'; ++p) {
    stub.push_back(static_cast<std::uint8_t>(*p));
  }
  stub.push_back('\r');
  stub.push_back('\r');
  stub.push_back('\n');
  stub.push_back('$');
  stub.push_back(0);
  // Pad so that DOS header (64) + stub lands on an 8-byte boundary, which is
  // where e_lfanew will point.
  while ((kDosHeaderSize + stub.size()) % 8 != 0) {
    stub.push_back(0);
  }
  return stub;
}

}  // namespace mc::pe
