// PE image consistency validator.
//
// A deep well-formedness check over a mapped image: magics, header bounds,
// section table sanity (alignment, overlap, image bounds), data-directory
// targets, and the optional-header checksum.  Used by tooling to vet golden
// images and by forensics to characterize *how* a flagged module deviates
// from a well-formed PE.
#pragma once

#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace mc::pe {

enum class ValidationSeverity { kWarning, kError };

struct ValidationFinding {
  ValidationSeverity severity;
  std::string rule;     // stable identifier, e.g. "section-overlap"
  std::string message;  // human-readable detail
};

struct ValidationReport {
  std::vector<ValidationFinding> findings;

  bool ok() const {
    for (const auto& f : findings) {
      if (f.severity == ValidationSeverity::kError) {
        return false;
      }
    }
    return true;
  }
  std::size_t error_count() const;
  std::size_t warning_count() const;
};

/// Validates a *file-layout* PE image (as stored on disk).
ValidationReport validate_image_file(ByteView file);

std::string format_validation_report(const ValidationReport& report);

}  // namespace mc::pe
