#include "pe/parser.hpp"

#include <algorithm>
#include <array>

#include "pe/constants.hpp"
#include "util/error.hpp"

namespace mc::pe {

namespace {

/// Owned copy of view[off, off+len) with the same bounds contract as
/// mc::slice (the header items of the zero-copy path stay owned — they
/// are a few dozen bytes each and get parsed into structs regardless).
Bytes view_slice(const vmi::GuestView& v, std::size_t off, std::size_t len) {
  MC_CHECK(off + len <= v.size(), "slice out of range");
  Bytes out(len, 0);
  v.read_into(off, MutableByteView(out));
  return out;
}

}  // namespace

ParsedImage::ParsedImage(ByteView mapped) {
  dos_ = DosHeader::parse(mapped);
  if (dos_.e_magic != kDosMagic) {
    throw FormatError("module lacks MZ magic");
  }
  if (dos_.e_lfanew < kDosHeaderSize ||
      dos_.e_lfanew + kNtHeadersPrefixSize > mapped.size()) {
    throw FormatError("e_lfanew out of range");
  }
  if (load_le32(mapped, dos_.e_lfanew) != kNtSignature) {
    throw FormatError("module lacks PE signature");
  }
  file_ = FileHeader::parse(mapped, dos_.e_lfanew + 4);
  const std::size_t opt_off = dos_.e_lfanew + kNtHeadersPrefixSize;
  if (file_.SizeOfOptionalHeader < kOptionalHeader32Size) {
    throw FormatError("optional header too small for PE32");
  }
  optional_ = OptionalHeader32::parse(mapped, opt_off);

  section_table_offset_ =
      static_cast<std::uint32_t>(opt_off + file_.SizeOfOptionalHeader);
  sections_.reserve(file_.NumberOfSections);
  for (std::uint16_t i = 0; i < file_.NumberOfSections; ++i) {
    sections_.push_back(SectionHeader::parse(
        mapped, section_table_offset_ + i * kSectionHeaderSize));
  }
}

ParsedImage::ParsedImage(const vmi::GuestView& mapped) {
  // Mirrors the ByteView constructor stage for stage, staging each header
  // through a fixed-size stack buffer: DOS header, NT prefix, optional
  // header, section table.  Each staged read re-raises the struct parsers'
  // own FormatErrors on out-of-range structures, and the explicit
  // magic/range checks are identical — failure behavior matches the
  // ByteView overload check for check.
  std::array<std::uint8_t, kDosHeaderSize> dos_buf{};
  if (mapped.size() < dos_buf.size()) {
    throw FormatError("image too small for IMAGE_DOS_HEADER");
  }
  mapped.read_into(0, MutableByteView(dos_buf));
  dos_ = DosHeader::parse(ByteView(dos_buf));
  if (dos_.e_magic != kDosMagic) {
    throw FormatError("module lacks MZ magic");
  }
  if (dos_.e_lfanew < kDosHeaderSize ||
      dos_.e_lfanew + kNtHeadersPrefixSize > mapped.size()) {
    throw FormatError("e_lfanew out of range");
  }
  std::array<std::uint8_t, kNtHeadersPrefixSize> nt_buf{};
  mapped.read_into(dos_.e_lfanew, MutableByteView(nt_buf));
  if (load_le32(ByteView(nt_buf), 0) != kNtSignature) {
    throw FormatError("module lacks PE signature");
  }
  file_ = FileHeader::parse(ByteView(nt_buf), 4);
  const std::size_t opt_off = dos_.e_lfanew + kNtHeadersPrefixSize;
  if (file_.SizeOfOptionalHeader < kOptionalHeader32Size) {
    throw FormatError("optional header too small for PE32");
  }
  std::array<std::uint8_t, kOptionalHeader32Size> opt_buf{};
  if (opt_off + opt_buf.size() > mapped.size()) {
    throw FormatError("image too small for IMAGE_OPTIONAL_HEADER32");
  }
  mapped.read_into(opt_off, MutableByteView(opt_buf));
  optional_ = OptionalHeader32::parse(ByteView(opt_buf), 0);

  section_table_offset_ =
      static_cast<std::uint32_t>(opt_off + file_.SizeOfOptionalHeader);
  sections_.reserve(file_.NumberOfSections);
  std::array<std::uint8_t, kSectionHeaderSize> sh_buf{};
  for (std::uint16_t i = 0; i < file_.NumberOfSections; ++i) {
    const std::size_t off = section_table_offset_ +
                            std::size_t{i} * kSectionHeaderSize;
    if (off + sh_buf.size() > mapped.size()) {
      throw FormatError("image too small for IMAGE_SECTION_HEADER");
    }
    mapped.read_into(off, MutableByteView(sh_buf));
    sections_.push_back(SectionHeader::parse(ByteView(sh_buf), 0));
  }
}

const SectionHeader* ParsedImage::find_section(const std::string& name) const {
  const auto it =
      std::find_if(sections_.begin(), sections_.end(),
                   [&](const SectionHeader& s) { return s.name() == name; });
  return it == sections_.end() ? nullptr : &*it;
}

bool is_integrity_checked_section(const SectionHeader& sh) {
  if (sh.is_discardable()) {
    return false;  // e.g. .reloc / INIT: freed after load, contents undefined
  }
  if (sh.is_code()) {
    return true;
  }
  const bool initialized = (sh.Characteristics & kScnCntInitializedData) != 0;
  return initialized && !sh.is_writable();
}

std::vector<IntegrityItem> ParsedImage::extract_items(ByteView mapped) const {
  std::vector<IntegrityItem> items;

  // 1. DOS header + stub: [0, e_lfanew).  The paper's experiment E3 shows a
  //    stub-text edit ("DOS" -> "CHK") being caught via this item.
  items.push_back({ItemKind::kDosHeader, "IMAGE_DOS_HEADER", 0,
                   slice(mapped, 0, dos_.e_lfanew), false, {}});

  // 2. PE signature + IMAGE_FILE_HEADER.
  items.push_back({ItemKind::kNtHeader, "IMAGE_NT_HEADER", dos_.e_lfanew,
                   slice(mapped, dos_.e_lfanew, kNtHeadersPrefixSize), false,
                   {}});

  // 3. IMAGE_OPTIONAL_HEADER (the full SizeOfOptionalHeader bytes).
  const std::uint32_t opt_off = dos_.e_lfanew +
                                static_cast<std::uint32_t>(kNtHeadersPrefixSize);
  items.push_back({ItemKind::kOptionalHeader, "IMAGE_OPTIONAL_HEADER", opt_off,
                   slice(mapped, opt_off, file_.SizeOfOptionalHeader), false,
                   {}});

  // 4. Every section header, as its own item (paper E4: "all
  //    SECTION_HEADER's" flagged independently).
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const std::uint32_t off =
        section_table_offset_ + static_cast<std::uint32_t>(i) *
                                    static_cast<std::uint32_t>(kSectionHeaderSize);
    items.push_back({ItemKind::kSectionHeader,
                     "SECTION_HEADER[" + sections_[i].name() + "]", off,
                     slice(mapped, off, kSectionHeaderSize), false, {}});
  }

  // 5. Data of each integrity-checked section.  Executable sections carry
  //    loader-rewritten absolute addresses, so they are rva_sensitive.
  for (const auto& sh : sections_) {
    if (!is_integrity_checked_section(sh)) {
      continue;
    }
    const std::uint32_t len =
        std::min(sh.VirtualSize,
                 static_cast<std::uint32_t>(mapped.size()) - sh.VirtualAddress);
    if (sh.VirtualAddress >= mapped.size()) {
      throw FormatError("section data outside mapped image");
    }
    items.push_back({ItemKind::kSectionData, sh.name(), sh.VirtualAddress,
                     slice(mapped, sh.VirtualAddress, len), sh.is_code(), {}});
  }
  return items;
}

std::vector<IntegrityItem> ParsedImage::extract_items(
    const vmi::GuestView& mapped) const {
  // Same walk as the ByteView overload; headers become small owned
  // copies, section data stays borrowed (the zero-copy payoff: section
  // data is ~all of the image's hashable bytes).
  std::vector<IntegrityItem> items;

  items.push_back({ItemKind::kDosHeader, "IMAGE_DOS_HEADER", 0,
                   view_slice(mapped, 0, dos_.e_lfanew), false, {}});

  items.push_back({ItemKind::kNtHeader, "IMAGE_NT_HEADER", dos_.e_lfanew,
                   view_slice(mapped, dos_.e_lfanew, kNtHeadersPrefixSize),
                   false, {}});

  const std::uint32_t opt_off = dos_.e_lfanew +
                                static_cast<std::uint32_t>(kNtHeadersPrefixSize);
  items.push_back({ItemKind::kOptionalHeader, "IMAGE_OPTIONAL_HEADER", opt_off,
                   view_slice(mapped, opt_off, file_.SizeOfOptionalHeader),
                   false, {}});

  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const std::uint32_t off =
        section_table_offset_ + static_cast<std::uint32_t>(i) *
                                    static_cast<std::uint32_t>(kSectionHeaderSize);
    items.push_back({ItemKind::kSectionHeader,
                     "SECTION_HEADER[" + sections_[i].name() + "]", off,
                     view_slice(mapped, off, kSectionHeaderSize), false, {}});
  }

  for (const auto& sh : sections_) {
    if (!is_integrity_checked_section(sh)) {
      continue;
    }
    const std::uint32_t len =
        std::min(sh.VirtualSize,
                 static_cast<std::uint32_t>(mapped.size()) - sh.VirtualAddress);
    if (sh.VirtualAddress >= mapped.size()) {
      throw FormatError("section data outside mapped image");
    }
    items.push_back({ItemKind::kSectionData, sh.name(), sh.VirtualAddress,
                     Bytes{}, sh.is_code(),
                     mapped.subview(sh.VirtualAddress, len)});
  }
  return items;
}

}  // namespace mc::pe
