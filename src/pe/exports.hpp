// PE export directory builder / parser.
//
// Kernel modules that provide services (hal.dll, ntoskrnl.exe in the real
// system) export functions by name; the module loader resolves other
// modules' imports against these tables.  Export address tables hold RVAs,
// so they stay identical across VMs — only bound IAT slots diverge.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace mc::pe {

/// One exported symbol: name plus the RVA of its code.
struct ExportedSymbol {
  std::string name;
  std::uint32_t rva = 0;
};

/// Lays out a complete export section (IMAGE_EXPORT_DIRECTORY + tables +
/// strings).  `section_rva` is the RVA the section will occupy.
Bytes build_export_section(const std::string& module_name,
                           std::vector<ExportedSymbol> symbols,
                           std::uint32_t section_rva);

/// Parses the export directory of a mapped image into (name, rva) pairs.
std::vector<ExportedSymbol> parse_export_directory(ByteView mapped_image,
                                                   std::uint32_t export_dir_rva);

}  // namespace mc::pe
