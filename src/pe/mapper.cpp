#include "pe/mapper.hpp"

#include <algorithm>

#include "pe/constants.hpp"
#include "pe/structs.hpp"
#include "util/error.hpp"

namespace mc::pe {

namespace {
std::size_t optional_header_offset(ByteView image, const DosHeader& dos) {
  if (dos.e_magic != kDosMagic) {
    throw FormatError("missing MZ magic");
  }
  if (load_le32(image, dos.e_lfanew) != kNtSignature) {
    throw FormatError("missing PE signature");
  }
  return dos.e_lfanew + kNtHeadersPrefixSize;
}
}  // namespace

Bytes map_image(ByteView file) {
  const DosHeader dos = DosHeader::parse(file);
  const std::size_t opt_off = optional_header_offset(file, dos);
  const FileHeader fh = FileHeader::parse(file, dos.e_lfanew + 4);
  const OptionalHeader32 opt = OptionalHeader32::parse(file, opt_off);

  Bytes mapped(opt.SizeOfImage, 0);
  const std::size_t header_bytes =
      std::min<std::size_t>(opt.SizeOfHeaders, file.size());
  std::copy_n(file.begin(), header_bytes, mapped.begin());

  std::size_t sec_off = opt_off + fh.SizeOfOptionalHeader;
  for (std::uint16_t i = 0; i < fh.NumberOfSections; ++i) {
    const SectionHeader sh = SectionHeader::parse(file, sec_off);
    sec_off += kSectionHeaderSize;
    if (sh.SizeOfRawData == 0) {
      continue;
    }
    if (sh.PointerToRawData + sh.SizeOfRawData > file.size() ||
        sh.VirtualAddress + sh.SizeOfRawData > mapped.size()) {
      throw FormatError("section '" + sh.name() + "' outside image bounds");
    }
    // Copy at most the virtual region; the loader never maps raw padding
    // beyond the aligned virtual size.
    const std::uint32_t copy_len = std::min(
        sh.SizeOfRawData,
        align_up(std::max(sh.VirtualSize, 1u), kDefaultSectionAlignment));
    std::copy_n(file.begin() + sh.PointerToRawData, copy_len,
                mapped.begin() + sh.VirtualAddress);
  }
  return mapped;
}

std::uint32_t read_size_of_image(ByteView image) {
  const DosHeader dos = DosHeader::parse(image);
  const std::size_t opt_off = optional_header_offset(image, dos);
  return OptionalHeader32::parse(image, opt_off).SizeOfImage;
}

std::uint32_t read_image_base(ByteView image) {
  const DosHeader dos = DosHeader::parse(image);
  const std::size_t opt_off = optional_header_offset(image, dos);
  return OptionalHeader32::parse(image, opt_off).ImageBase;
}

}  // namespace mc::pe
