#include "pe/builder.hpp"

#include <numeric>

#include "pe/reloc.hpp"

#include "util/error.hpp"

namespace mc::pe {

PeBuilder::PeBuilder(std::string module_name)
    : module_name_(std::move(module_name)) {}

PeBuilder& PeBuilder::set_image_base(std::uint32_t base) {
  MC_CHECK(base % kDefaultSectionAlignment == 0,
           "image base must be section-aligned");
  image_base_ = base;
  return *this;
}

PeBuilder& PeBuilder::set_timestamp(std::uint32_t timestamp) {
  timestamp_ = timestamp;
  return *this;
}

PeBuilder& PeBuilder::set_entry_point(std::uint32_t rva) {
  entry_point_rva_ = rva;
  return *this;
}

PeBuilder& PeBuilder::set_dll(bool is_dll) {
  is_dll_ = is_dll;
  return *this;
}

std::uint32_t PeBuilder::next_section_rva() const {
  std::uint32_t rva = kDefaultSectionAlignment;  // headers fit below 0x1000
  for (const auto& s : sections_) {
    rva = std::max(rva, align_up(s.header.VirtualAddress +
                                     std::max(s.header.VirtualSize, 1u),
                                 kDefaultSectionAlignment));
  }
  return rva;
}

PeBuilder& PeBuilder::add_section(const std::string& name, Bytes data,
                                  std::uint32_t characteristics,
                                  std::vector<std::uint32_t> fixup_offsets,
                                  std::optional<std::uint32_t> virtual_size) {
  MC_CHECK(sections_.size() < 16, "too many sections");
  PendingSection s;
  s.header.set_name(name);
  s.header.VirtualAddress = next_section_rva();
  s.header.VirtualSize =
      virtual_size.value_or(static_cast<std::uint32_t>(data.size()));
  MC_CHECK(s.header.VirtualSize >= data.size() || virtual_size.has_value(),
           "virtual size smaller than data");
  s.header.SizeOfRawData =
      align_up(static_cast<std::uint32_t>(data.size()), kDefaultFileAlignment);
  s.header.Characteristics = characteristics;
  for (const std::uint32_t off : fixup_offsets) {
    MC_CHECK(off + 4 <= data.size(), "fixup outside section data");
    fixup_rvas_.push_back(s.header.VirtualAddress + off);
  }
  s.data = std::move(data);
  sections_.push_back(std::move(s));
  return *this;
}

PeBuilder& PeBuilder::add_import_section(const std::vector<ImportDll>& dlls) {
  const std::uint32_t rva = next_section_rva();
  ImportLayout layout = build_import_section(dlls, rva);
  directories_[kDirImport] = {rva, layout.descriptors_size};
  // IATs are rewritten by the loader at bind time, hence read/write data.
  add_section(".idata", std::move(layout.data),
              kScnCntInitializedData | kScnMemRead | kScnMemWrite);
  return *this;
}

PeBuilder& PeBuilder::add_export_section(std::vector<ExportedSymbol> symbols) {
  const std::uint32_t rva = next_section_rva();
  Bytes data = build_export_section(module_name_, std::move(symbols), rva);
  directories_[kDirExport] = {rva, static_cast<std::uint32_t>(data.size())};
  add_section(".edata", std::move(data),
              kScnCntInitializedData | kScnMemRead);
  return *this;
}

PeBuilder& PeBuilder::add_resource_section(const VersionInfo& version) {
  const std::uint32_t rva = next_section_rva();
  Bytes data = build_resource_section(version, rva);
  directories_[kDirResource] = {rva, static_cast<std::uint32_t>(data.size())};
  add_section(".rsrc", std::move(data),
              kScnCntInitializedData | kScnMemRead);
  return *this;
}

PeBuilder& PeBuilder::add_reloc_section() {
  const std::uint32_t rva = next_section_rva();
  Bytes data = encode_base_relocations(fixup_rvas_);
  directories_[kDirBaseReloc] = {rva, static_cast<std::uint32_t>(data.size())};
  add_section(".reloc", std::move(data),
              kScnCntInitializedData | kScnMemRead | kScnMemDiscardable);
  return *this;
}

Bytes PeBuilder::build() const {
  MC_CHECK(!sections_.empty(), "image needs at least one section");

  const std::uint32_t e_lfanew =
      static_cast<std::uint32_t>(kDosHeaderSize + dos_stub_.size());
  const std::uint32_t headers_end = static_cast<std::uint32_t>(
      e_lfanew + kNtHeadersPrefixSize + kOptionalHeader32Size +
      sections_.size() * kSectionHeaderSize);
  const std::uint32_t size_of_headers =
      align_up(headers_end, kDefaultFileAlignment);
  MC_CHECK(size_of_headers <= kDefaultSectionAlignment,
           "headers overflow the first page");

  // Assign file offsets.
  std::vector<SectionHeader> headers;
  headers.reserve(sections_.size());
  std::uint32_t raw_cursor = size_of_headers;
  for (const auto& s : sections_) {
    SectionHeader h = s.header;
    h.PointerToRawData = (h.SizeOfRawData == 0) ? 0 : raw_cursor;
    raw_cursor += h.SizeOfRawData;
    headers.push_back(h);
  }

  // Optional header aggregates.
  OptionalHeader32 opt;
  opt.ImageBase = image_base_;
  opt.AddressOfEntryPoint = entry_point_rva_;
  opt.SizeOfHeaders = size_of_headers;
  opt.DataDirectories = directories_;
  std::uint32_t size_of_image = kDefaultSectionAlignment;
  for (const auto& h : headers) {
    size_of_image =
        std::max(size_of_image, align_up(h.VirtualAddress +
                                             std::max(h.VirtualSize, 1u),
                                         kDefaultSectionAlignment));
    if (h.is_code()) {
      if (opt.BaseOfCode == 0) {
        opt.BaseOfCode = h.VirtualAddress;
      }
      opt.SizeOfCode += h.SizeOfRawData;
    } else if ((h.Characteristics & kScnCntInitializedData) != 0) {
      if (opt.BaseOfData == 0) {
        opt.BaseOfData = h.VirtualAddress;
      }
      opt.SizeOfInitializedData += h.SizeOfRawData;
    }
  }
  opt.SizeOfImage = size_of_image;

  FileHeader file_header;
  file_header.NumberOfSections = static_cast<std::uint16_t>(sections_.size());
  file_header.TimeDateStamp = timestamp_;
  file_header.Characteristics = static_cast<std::uint16_t>(
      kFileExecutableImage | kFile32BitMachine | kFileLineNumsStripped |
      (is_dll_ ? kFileDll : 0));

  DosHeader dos;
  dos.e_lfanew = e_lfanew;

  // ---- serialize ------------------------------------------------------------
  Bytes out;
  out.reserve(raw_cursor);
  dos.serialize(out);
  append_bytes(out, dos_stub_);
  append_le32(out, kNtSignature);
  file_header.serialize(out);
  const std::size_t checksum_offset = out.size() + 64;  // CheckSum in optional
  opt.serialize(out);
  for (const auto& h : headers) {
    h.serialize(out);
  }
  out.resize(size_of_headers, 0);

  for (std::size_t i = 0; i < sections_.size(); ++i) {
    MC_CHECK(out.size() == headers[i].PointerToRawData ||
                 headers[i].SizeOfRawData == 0,
             "raw data cursor mismatch");
    append_bytes(out, sections_[i].data);
    out.resize(out.size() + (headers[i].SizeOfRawData - sections_[i].data.size()),
               0);
  }

  // Valid PE checksum (the field was serialized as 0 above).
  const std::uint32_t checksum = compute_pe_checksum(out, checksum_offset);
  store_le32(out, checksum_offset, checksum);
  return out;
}

std::uint32_t compute_pe_checksum(ByteView file, std::size_t checksum_offset) {
  // Standard algorithm: 16-bit one's-complement-style sum with carry folding,
  // skipping the CheckSum dword itself, plus the file length.
  std::uint64_t sum = 0;
  const std::size_t n = file.size();
  for (std::size_t i = 0; i + 1 < n; i += 2) {
    if (i >= checksum_offset && i < checksum_offset + 4) {
      continue;
    }
    sum += load_le16(file, i);
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  if (n % 2 != 0) {
    sum += file[n - 1];
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint32_t>(sum + n);
}

}  // namespace mc::pe
