#include "pe/validate.hpp"

#include <algorithm>
#include <sstream>

#include "pe/builder.hpp"
#include "pe/constants.hpp"
#include "pe/structs.hpp"

namespace mc::pe {

namespace {

void add(ValidationReport& report, ValidationSeverity severity,
         const std::string& rule, const std::string& message) {
  report.findings.push_back({severity, rule, message});
}

void err(ValidationReport& report, const std::string& rule,
         const std::string& message) {
  add(report, ValidationSeverity::kError, rule, message);
}

void warn(ValidationReport& report, const std::string& rule,
          const std::string& message) {
  add(report, ValidationSeverity::kWarning, rule, message);
}

}  // namespace

std::size_t ValidationReport::error_count() const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(), [](const auto& f) {
        return f.severity == ValidationSeverity::kError;
      }));
}

std::size_t ValidationReport::warning_count() const {
  return findings.size() - error_count();
}

ValidationReport validate_image_file(ByteView file) {
  ValidationReport report;

  // --- DOS header --------------------------------------------------------------
  if (file.size() < kDosHeaderSize) {
    err(report, "truncated", "file smaller than IMAGE_DOS_HEADER");
    return report;
  }
  const DosHeader dos = DosHeader::parse(file);
  if (dos.e_magic != kDosMagic) {
    err(report, "dos-magic", "e_magic is not 'MZ'");
    return report;
  }
  if (dos.e_lfanew < kDosHeaderSize) {
    err(report, "e-lfanew", "e_lfanew points inside the DOS header");
    return report;
  }
  if (dos.e_lfanew + kNtHeadersPrefixSize + kOptionalHeader32Size >
      file.size()) {
    err(report, "truncated", "NT headers extend past end of file");
    return report;
  }

  // --- NT headers ---------------------------------------------------------------
  if (load_le32(file, dos.e_lfanew) != kNtSignature) {
    err(report, "pe-signature", "missing 'PE\\0\\0' signature");
    return report;
  }
  const FileHeader fh = FileHeader::parse(file, dos.e_lfanew + 4);
  if (fh.Machine != kMachineI386) {
    warn(report, "machine", "machine is not IMAGE_FILE_MACHINE_I386");
  }
  if ((fh.Characteristics & kFileExecutableImage) == 0) {
    err(report, "characteristics", "IMAGE_FILE_EXECUTABLE_IMAGE not set");
  }
  if (fh.SizeOfOptionalHeader < kOptionalHeader32Size) {
    err(report, "optional-size",
        "SizeOfOptionalHeader too small for PE32 with 16 directories");
    return report;
  }

  const std::size_t opt_off = dos.e_lfanew + kNtHeadersPrefixSize;
  OptionalHeader32 opt;
  try {
    opt = OptionalHeader32::parse(file, opt_off);
  } catch (const FormatError& e) {
    err(report, "optional-magic", e.what());
    return report;
  }
  if (opt.SectionAlignment == 0 ||
      (opt.SectionAlignment & (opt.SectionAlignment - 1)) != 0) {
    err(report, "alignment", "SectionAlignment is not a power of two");
  }
  if (opt.FileAlignment == 0 ||
      (opt.FileAlignment & (opt.FileAlignment - 1)) != 0) {
    err(report, "alignment", "FileAlignment is not a power of two");
  }
  if (opt.ImageBase % kDefaultSectionAlignment != 0) {
    warn(report, "image-base", "ImageBase is not 64 KiB/page aligned");
  }
  if (opt.SizeOfHeaders > opt.SizeOfImage) {
    err(report, "sizes", "SizeOfHeaders exceeds SizeOfImage");
  }

  // --- section table ---------------------------------------------------------------
  const std::size_t sec_off = opt_off + fh.SizeOfOptionalHeader;
  if (sec_off + fh.NumberOfSections * kSectionHeaderSize > file.size() ||
      sec_off + fh.NumberOfSections * kSectionHeaderSize >
          opt.SizeOfHeaders) {
    err(report, "section-table", "section table overruns the header area");
    return report;
  }

  std::vector<SectionHeader> sections;
  for (std::uint16_t i = 0; i < fh.NumberOfSections; ++i) {
    sections.push_back(
        SectionHeader::parse(file, sec_off + i * kSectionHeaderSize));
  }

  std::uint32_t entry_ok = opt.AddressOfEntryPoint == 0 ? 1 : 0;
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const auto& sh = sections[i];
    const std::string tag = "section '" + sh.name() + "'";
    if (sh.VirtualAddress % opt.SectionAlignment != 0) {
      err(report, "section-alignment", tag + " RVA not section-aligned");
    }
    if (sh.SizeOfRawData != 0) {
      if (sh.PointerToRawData % opt.FileAlignment != 0) {
        err(report, "raw-alignment", tag + " raw pointer not file-aligned");
      }
      if (std::uint64_t{sh.PointerToRawData} + sh.SizeOfRawData >
          file.size()) {
        err(report, "raw-bounds", tag + " raw data extends past file end");
      }
    }
    if (std::uint64_t{sh.VirtualAddress} + std::max(sh.VirtualSize, 1u) >
        opt.SizeOfImage) {
      err(report, "virtual-bounds", tag + " extends past SizeOfImage");
    }
    for (std::size_t j = i + 1; j < sections.size(); ++j) {
      const auto& other = sections[j];
      const std::uint64_t a_end =
          sh.VirtualAddress +
          align_up(std::max(sh.VirtualSize, 1u), opt.SectionAlignment);
      if (other.VirtualAddress < a_end &&
          sh.VirtualAddress < other.VirtualAddress +
                                  align_up(std::max(other.VirtualSize, 1u),
                                           opt.SectionAlignment)) {
        err(report, "section-overlap",
            tag + " overlaps section '" + other.name() + "'");
      }
    }
    if (opt.AddressOfEntryPoint >= sh.VirtualAddress &&
        opt.AddressOfEntryPoint < sh.VirtualAddress + sh.VirtualSize) {
      ++entry_ok;
      if (!sh.is_code()) {
        warn(report, "entry-point", "entry point is in a non-code section");
      }
    }
  }
  if (entry_ok == 0) {
    err(report, "entry-point", "entry point is outside every section");
  }

  // --- data directories ---------------------------------------------------------------
  static constexpr const char* kDirNames[] = {
      "export", "import", "resource", "exception", "certificate",
      "basereloc", "debug", "arch", "globalptr", "tls", "loadconfig",
      "boundimport", "iat", "delayimport", "comdescriptor", "reserved"};
  for (std::size_t d = 0; d < kNumDataDirectories; ++d) {
    const auto& dir = opt.DataDirectories[d];
    if (dir.VirtualAddress == 0) {
      continue;
    }
    if (std::uint64_t{dir.VirtualAddress} + dir.Size > opt.SizeOfImage) {
      err(report, "directory-bounds",
          std::string("data directory '") + kDirNames[d] +
              "' extends past SizeOfImage");
    }
  }

  // --- checksum ------------------------------------------------------------------------
  const std::size_t checksum_offset = opt_off + 64;
  const std::uint32_t computed = compute_pe_checksum(file, checksum_offset);
  if (opt.CheckSum == 0) {
    warn(report, "checksum", "CheckSum field is zero (unset)");
  } else if (opt.CheckSum != computed) {
    err(report, "checksum", "stored CheckSum does not match computed value");
  }

  return report;
}

std::string format_validation_report(const ValidationReport& report) {
  std::ostringstream os;
  os << "PE validation: " << report.error_count() << " error(s), "
     << report.warning_count() << " warning(s)\n";
  for (const auto& f : report.findings) {
    os << "  ["
       << (f.severity == ValidationSeverity::kError ? "ERROR" : "warn ")
       << "] " << f.rule << ": " << f.message << "\n";
  }
  return os.str();
}

}  // namespace mc::pe
