// HeavyLoad stand-in (paper §V-C.1: "we used HeavyLoad (a stress testing
// software) that is capable of stressing all the resources (such as CPU,
// RAM and disk) of an MS Windows machine").
//
// Stressing a guest drives its load level to 1.0, which feeds the
// hypervisor's contention model and slows Dom0 work — the mechanism behind
// Fig. 8's nonlinear regime.
#pragma once

#include <cstddef>

#include "cloud/environment.hpp"

namespace mc::workload {

class HeavyLoad {
 public:
  explicit HeavyLoad(cloud::CloudEnvironment& env) : env_(&env) {}

  /// Starts the stress tool on the first `guest_count` guests at `level`
  /// (1.0 = all resources saturated); the rest go idle.
  void stress_guests(std::size_t guest_count, double level = 1.0);

  /// Stops the stress tool everywhere.
  void stop_all();

  /// Aggregate busy load currently imposed.
  double total_load() const;

 private:
  cloud::CloudEnvironment* env_;
};

}  // namespace mc::workload
