#include "workload/heavyload.hpp"

#include "util/error.hpp"

namespace mc::workload {

void HeavyLoad::stress_guests(std::size_t guest_count, double level) {
  const auto& guests = env_->guests();
  MC_CHECK(guest_count <= guests.size(), "stressing more guests than exist");
  for (std::size_t i = 0; i < guests.size(); ++i) {
    env_->hypervisor().domain(guests[i]).set_load_level(
        i < guest_count ? level : 0.0);
  }
}

void HeavyLoad::stop_all() { stress_guests(0, 0.0); }

double HeavyLoad::total_load() const {
  return env_->hypervisor().total_busy_load();
}

}  // namespace mc::workload
