// In-guest resource monitor — the paper's "light-weight tool in Python"
// (§V-C.2) that records CPU, memory, disk and network state inside a VM so
// ModChecker-induced perturbation (if any) can be observed.
//
// ModChecker is agentless: it reads guest frames from the privileged VM,
// so the only guest-visible effect is a vanishingly small cache/memory-bus
// disturbance.  The sample generator models each counter as baseline +
// AR(1) noise + a configurable (default: tiny) access-window effect, and
// the analyzer computes Welch's t between in-window and out-of-window
// samples — reproducing Fig. 9's "no significant perturbation" result.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace mc::workload {

struct ResourceSample {
  double t = 0;  // seconds since monitoring start
  // CPU state (percentages, paper: "idle time, privileged time and user
  // time").
  double cpu_idle_pct = 0;
  double cpu_user_pct = 0;
  double cpu_privileged_pct = 0;
  // Memory state ("percentage of free physical and virtual memory and
  // number of page faults").
  double mem_free_pct = 0;
  double virt_free_pct = 0;
  double page_faults_per_s = 0;
  // Disk state ("queue length and disk read/write per second rate").
  double disk_queue = 0;
  double disk_reads_per_s = 0;
  double disk_writes_per_s = 0;
  // Network state ("number of packets sent/received").
  double net_sent_per_s = 0;
  double net_recv_per_s = 0;

  bool in_access_window = false;
};

struct AccessWindow {
  double start = 0;  // seconds
  double end = 0;
};

struct MonitorConfig {
  std::uint64_t seed = 1;
  /// Guest load: 0 = idle (the Fig. 9 setting), 1 = HeavyLoad.
  double load_level = 0.0;
  double sample_hz = 1.0;
  /// Magnitude of the guest-visible effect of a VMI access window, as a
  /// fraction of a CPU percentage point.  Default models the real effect:
  /// far below the noise floor.
  double access_effect_pct = 0.02;
};

class ResourceMonitor {
 public:
  explicit ResourceMonitor(const MonitorConfig& config) : config_(config) {}

  /// Records `duration_s` seconds of samples; samples falling inside any
  /// access window are marked and receive the (tiny) access effect.
  std::vector<ResourceSample> record(
      double duration_s, const std::vector<AccessWindow>& windows) const;

 private:
  MonitorConfig config_;
};

/// Welch-style comparison of one metric between in-window and out-of-window
/// samples.  Perf-counter series are autocorrelated (load drifts), so the
/// t statistic uses effective sample sizes n_eff = n * (1-r1) / (1+r1)
/// where r1 is the series' lag-1 autocorrelation — the standard correction
/// for comparing means of AR(1)-like measurements.
/// Result of one analysis, not an accumulating counter set — the registry
/// records how many analyses ran ("workload.analyses"/".significant");
/// the per-metric statistics stay a plain value type.
// mc-lint: allow(adhoc-stats)
struct PerturbationStats {
  double mean_in = 0;
  double mean_out = 0;
  double stddev_in = 0;
  double stddev_out = 0;
  double lag1_autocorr = 0;
  double welch_t = 0;
  std::size_t n_in = 0;
  std::size_t n_out = 0;

  /// |t| >= 2 would indicate a visible perturbation at ~95% confidence.
  bool significant() const { return welch_t >= 2.0 || welch_t <= -2.0; }
};

PerturbationStats analyze_metric(
    const std::vector<ResourceSample>& samples,
    const std::function<double(const ResourceSample&)>& metric);

/// CSV export of a sample series (header + one row per sample) — the
/// paper's tool shipped readings to remote storage for offline plotting;
/// this is the equivalent artifact.
std::string export_csv(const std::vector<ResourceSample>& samples);

}  // namespace mc::workload
