#include "workload/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include "telemetry/registry.hpp"

namespace mc::workload {

namespace {

/// Smooth noise: AR(1) process with configurable correlation, driven by a
/// shared generator.  Produces the gentle drift real perf counters show.
class Ar1Noise {
 public:
  Ar1Noise(Xoshiro256& rng, double sigma, double rho = 0.7)
      : rng_(&rng), sigma_(sigma), rho_(rho) {}

  double next() {
    // Sum of 4 uniforms ~ approximately normal (Irwin-Hall), cheap and
    // deterministic.
    double g = 0;
    for (int i = 0; i < 4; ++i) {
      g += rng_->unit();
    }
    g = (g - 2.0) * std::sqrt(3.0);  // ~N(0,1)
    state_ = rho_ * state_ + std::sqrt(1 - rho_ * rho_) * g;
    return state_ * sigma_;
  }

 private:
  Xoshiro256* rng_;
  double sigma_;
  double rho_;
  double state_ = 0;
};

bool in_any_window(double t, const std::vector<AccessWindow>& windows) {
  return std::any_of(windows.begin(), windows.end(),
                     [t](const AccessWindow& w) {
                       return t >= w.start && t < w.end;
                     });
}

double clamp_pct(double v) { return std::clamp(v, 0.0, 100.0); }

}  // namespace

std::vector<ResourceSample> ResourceMonitor::record(
    double duration_s, const std::vector<AccessWindow>& windows) const {
  Xoshiro256 rng(config_.seed);
  const double load = std::clamp(config_.load_level, 0.0, 1.0);

  // Baselines scale with guest load: an idle XP guest sits ~97% idle with
  // a trickle of background activity; a HeavyLoad guest pegs the CPU.
  const double base_idle = 97.0 - 92.0 * load;
  const double base_user = 2.0 + 80.0 * load;
  const double base_priv = 1.0 + 12.0 * load;
  const double base_mem_free = 72.0 - 40.0 * load;
  const double base_virt_free = 85.0 - 35.0 * load;
  const double base_faults = 12.0 + 600.0 * load;
  const double base_queue = 0.05 + 2.2 * load;
  const double base_reads = 1.5 + 120.0 * load;
  const double base_writes = 0.8 + 180.0 * load;
  // The monitor itself ships its readings over the network (§V-C.2), so a
  // small steady packet rate is part of the baseline.
  const double base_sent = 3.0 + 40.0 * load;
  const double base_recv = 2.0 + 30.0 * load;

  Ar1Noise cpu_noise(rng, 1.1);
  Ar1Noise priv_noise(rng, 0.35);
  Ar1Noise mem_noise(rng, 0.6);
  Ar1Noise fault_noise(rng, 2.5 + 40.0 * load);
  Ar1Noise disk_noise(rng, 0.02 + 0.5 * load);
  Ar1Noise io_noise(rng, 0.5 + 25.0 * load);
  Ar1Noise net_noise(rng, 0.8 + 8.0 * load);

  const auto count =
      static_cast<std::size_t>(duration_s * config_.sample_hz);
  std::vector<ResourceSample> samples;
  samples.reserve(count);

  for (std::size_t i = 0; i < count; ++i) {
    ResourceSample s;
    s.t = static_cast<double>(i) / config_.sample_hz;
    s.in_access_window = in_any_window(s.t, windows);

    // The agentless access effect: a sliver of extra privileged time from
    // memory-bus contention.  Deliberately far below the noise sigma.
    const double access = s.in_access_window ? config_.access_effect_pct : 0.0;

    const double user = base_user + cpu_noise.next();
    const double priv = base_priv + priv_noise.next() + access;
    s.cpu_user_pct = clamp_pct(user);
    s.cpu_privileged_pct = clamp_pct(priv);
    s.cpu_idle_pct = clamp_pct(base_idle - (user - base_user) -
                               (priv - base_priv));
    s.mem_free_pct = clamp_pct(base_mem_free + mem_noise.next());
    s.virt_free_pct = clamp_pct(base_virt_free + mem_noise.next() * 0.5);
    s.page_faults_per_s = std::max(0.0, base_faults + fault_noise.next());
    s.disk_queue = std::max(0.0, base_queue + disk_noise.next());
    s.disk_reads_per_s = std::max(0.0, base_reads + io_noise.next());
    s.disk_writes_per_s = std::max(0.0, base_writes + io_noise.next());
    s.net_sent_per_s = std::max(0.0, base_sent + net_noise.next());
    s.net_recv_per_s = std::max(0.0, base_recv + net_noise.next());

    samples.push_back(s);
  }
  return samples;
}

PerturbationStats analyze_metric(
    const std::vector<ResourceSample>& samples,
    const std::function<double(const ResourceSample&)>& metric) {
  // Analysis counts land on the process-default registry: the monitor is a
  // measurement harness with no per-pipeline registry of its own.
  static const telemetry::Counter analyses =
      telemetry::MetricRegistry::process_default().counter(
          "workload.analyses");
  static const telemetry::Counter significant_count =
      telemetry::MetricRegistry::process_default().counter(
          "workload.significant");
  analyses.inc();
  PerturbationStats stats;
  double sum_in = 0;
  double sum_out = 0;
  for (const auto& s : samples) {
    const double v = metric(s);
    if (s.in_access_window) {
      sum_in += v;
      ++stats.n_in;
    } else {
      sum_out += v;
      ++stats.n_out;
    }
  }
  if (stats.n_in == 0 || stats.n_out == 0) {
    return stats;
  }
  stats.mean_in = sum_in / static_cast<double>(stats.n_in);
  stats.mean_out = sum_out / static_cast<double>(stats.n_out);

  double ss_in = 0;
  double ss_out = 0;
  for (const auto& s : samples) {
    const double v = metric(s);
    if (s.in_access_window) {
      ss_in += (v - stats.mean_in) * (v - stats.mean_in);
    } else {
      ss_out += (v - stats.mean_out) * (v - stats.mean_out);
    }
  }
  stats.stddev_in = stats.n_in > 1
                        ? std::sqrt(ss_in / static_cast<double>(stats.n_in - 1))
                        : 0;
  stats.stddev_out =
      stats.n_out > 1
          ? std::sqrt(ss_out / static_cast<double>(stats.n_out - 1))
          : 0;

  // Lag-1 autocorrelation of the whole (mean-removed) series; perf
  // counters drift, which shrinks the information content of n samples.
  const double grand_mean =
      (sum_in + sum_out) / static_cast<double>(stats.n_in + stats.n_out);
  double num = 0;
  double den = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double d = metric(samples[i]) - grand_mean;
    den += d * d;
    if (i + 1 < samples.size()) {
      num += d * (metric(samples[i + 1]) - grand_mean);
    }
  }
  stats.lag1_autocorr = den > 0 ? num / den : 0;
  const double r1 = std::clamp(stats.lag1_autocorr, 0.0, 0.95);
  const double shrink = (1.0 - r1) / (1.0 + r1);
  const double n_in_eff =
      std::max(2.0, static_cast<double>(stats.n_in) * shrink);
  const double n_out_eff =
      std::max(2.0, static_cast<double>(stats.n_out) * shrink);

  const double var_term = stats.stddev_in * stats.stddev_in / n_in_eff +
                          stats.stddev_out * stats.stddev_out / n_out_eff;
  stats.welch_t = var_term > 0
                      ? (stats.mean_in - stats.mean_out) / std::sqrt(var_term)
                      : 0;
  if (stats.significant()) {
    significant_count.inc();
  }
  return stats;
}

std::string export_csv(const std::vector<ResourceSample>& samples) {
  std::string out =
      "t,cpu_idle_pct,cpu_user_pct,cpu_privileged_pct,mem_free_pct,"
      "virt_free_pct,page_faults_per_s,disk_queue,disk_reads_per_s,"
      "disk_writes_per_s,net_sent_per_s,net_recv_per_s,in_access_window\n";
  char row[512];
  for (const auto& s : samples) {
    std::snprintf(row, sizeof row,
                  "%.2f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.4f,%.3f,%.3f,%.3f,"
                  "%.3f,%d\n",
                  s.t, s.cpu_idle_pct, s.cpu_user_pct, s.cpu_privileged_pct,
                  s.mem_free_pct, s.virt_free_pct, s.page_faults_per_s,
                  s.disk_queue, s.disk_reads_per_s, s.disk_writes_per_s,
                  s.net_sent_per_s, s.net_recv_per_s,
                  s.in_access_window ? 1 : 0);
    out += row;
  }
  return out;
}

}  // namespace mc::workload
