// Signed-module dictionary baseline (§II: "Commodity operating systems ...
// compute and maintain a database of cryptographic hash values for kernel
// modules ... to verify the integrity of the module before it is loaded").
#pragma once

#include <map>
#include <string>

#include "baselines/baseline.hpp"
#include "crypto/digest.hpp"

namespace mc::baselines {

class HashDictChecker final : public BaselineChecker {
 public:
  /// Builds the dictionary from a trusted file set (typically the golden
  /// images at deployment time).
  explicit HashDictChecker(const std::map<std::string, Bytes>& trusted_files);

  std::string name() const override { return "hash-dictionary"; }

  /// Flags when the disk file's hash is absent from the dictionary.  A
  /// legitimately updated module (not yet re-registered) is a false
  /// positive — the maintenance burden the paper calls "cumbersome".
  /// Memory-only infections are invisible: the disk file still matches.
  DetectionOutcome check(const cloud::CloudEnvironment& env, vmm::DomainId vm,
                         const std::string& module) const override;

 private:
  std::map<std::string, crypto::Digest> dictionary_;
};

}  // namespace mc::baselines
