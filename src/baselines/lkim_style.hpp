// LKIM-style baseline (§II, Loscocco et al., "Linux kernel integrity
// measurement using contextual inspection").
//
// Uses the guest's actual loading information (base address) to simulate
// the load of an *untainted copy* from a trusted external repository, then
// compares the measured in-memory module against the simulation.  Also
// validates dynamic function pointers: every bound IAT slot must point at
// the address the providing module actually exports.
//
// Strongest detector in the A2 matrix — at the cost ModChecker avoids:
// a trusted repository that must track every legitimate module version.
#pragma once

#include <map>

#include "baselines/baseline.hpp"

namespace mc::baselines {

class LkimStyleChecker final : public BaselineChecker {
 public:
  /// `trusted_repository`: name -> pristine PE file.
  explicit LkimStyleChecker(std::map<std::string, Bytes> trusted_repository)
      : repository_(std::move(trusted_repository)) {}

  std::string name() const override { return "lkim-style"; }

  DetectionOutcome check(const cloud::CloudEnvironment& env, vmm::DomainId vm,
                         const std::string& module) const override;

 private:
  std::map<std::string, Bytes> repository_;
};

}  // namespace mc::baselines
