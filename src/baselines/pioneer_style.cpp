#include "baselines/pioneer_style.hpp"

#include "baselines/disk_crossview.hpp"
#include "pe/parser.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace mc::baselines {

namespace {

/// Extracts the executable bytes the self-check covers.
Bytes code_of(ByteView mapped) {
  // Rival baseline parses the PE directly by design; mc-lint: allow(format-bypass)
  const pe::ParsedImage parsed(mapped);
  const auto* text = parsed.find_section(".text");
  if (text == nullptr) {
    throw NotFoundError("module has no .text for the self-check");
  }
  return slice(mapped, text->VirtualAddress, text->VirtualSize);
}

}  // namespace

std::uint64_t PioneerStyleChecker::challenge(ByteView code,
                                             std::uint64_t nonce) const {
  // Nonce-keyed, order-sensitive checksum: a strongly mixing fold the
  // responder cannot precompute (stands in for Pioneer's self-checksum
  // function, whose real cleverness is *timing* optimality, which the
  // latency model captures).
  SplitMix64 mixer(nonce);
  std::uint64_t acc = mixer.next();
  for (std::size_t i = 0; i < code.size(); ++i) {
    acc ^= std::uint64_t{code[i]} << (8 * (i % 8));
    acc = acc * 0x9E3779B97F4A7C15ull + mixer.next();
  }
  return acc;
}

DetectionOutcome PioneerStyleChecker::check(const cloud::CloudEnvironment& env,
                                            vmm::DomainId vm,
                                            const std::string& module) const {
  DetectionOutcome out;
  const auto* record = env.loader(vm).find(module);
  if (record == nullptr) {
    out.flagged = true;
    out.detail = "module not in loader list";
    return out;
  }
  const auto repo_it = repository_.find(module);
  if (repo_it == repository_.end()) {
    out.flagged = true;
    out.detail = "dispatcher has no trusted copy of the code";
    return out;
  }

  // Guest side: honest self-check over the actual in-memory code.
  Bytes memory_image(record->size_of_image, 0);
  env.kernel(vm).address_space().read_virtual(record->base, memory_image);
  const Bytes guest_code = code_of(memory_image);

  // Dispatcher side: expected checksum from the trusted copy, simulated
  // to the same load base.
  const Bytes reference = simulate_load(repo_it->second, record->base);
  const Bytes expected_code = code_of(reference);

  const std::uint64_t nonce = nonce_seed_ * 0x1234567ull + record->base;
  const std::uint64_t response = challenge(guest_code, nonce);
  const std::uint64_t expected = challenge(expected_code, nonce);

  // Honest responder always meets the deadline in this variant.
  if (response != expected) {
    out.flagged = true;
    out.detail = "self-checksum mismatch (code altered)";
    return out;
  }
  out.detail = "checksum verified within deadline";
  return out;
}

DetectionOutcome PioneerStyleChecker::check_with_evasion(
    const cloud::CloudEnvironment& env, vmm::DomainId vm,
    const std::string& module) const {
  DetectionOutcome out;
  const auto* record = env.loader(vm).find(module);
  const auto repo_it = repository_.find(module);
  if (record == nullptr || repo_it == repository_.end()) {
    out.flagged = true;
    out.detail = "missing module or trusted copy";
    return out;
  }

  // The adversary answers from a hidden pristine copy: the checksum
  // VALUE verifies...
  const Bytes reference = simulate_load(repo_it->second, record->base);
  const Bytes expected_code = code_of(reference);
  const double honest_ns =
      params_.ns_per_byte * static_cast<double>(expected_code.size());
  const double deadline_ns = honest_ns * params_.deadline_slack;
  // ...but redirecting every read through the hidden copy costs the
  // evasion overhead, busting the deadline.
  const double evader_ns = honest_ns * params_.evasion_overhead;

  if (evader_ns > deadline_ns) {
    out.flagged = true;
    out.detail = "checksum correct but response exceeded the deadline (" +
                 std::to_string(static_cast<std::uint64_t>(evader_ns)) +
                 " ns > " +
                 std::to_string(static_cast<std::uint64_t>(deadline_ns)) +
                 " ns) — forged computation suspected";
    return out;
  }
  out.detail = "evasion fit inside the deadline (parameters too lax)";
  return out;
}

}  // namespace mc::baselines
