#include "baselines/disk_crossview.hpp"

#include "crypto/md5.hpp"
#include "pe/constants.hpp"
#include "pe/mapper.hpp"
#include "pe/parser.hpp"
#include "pe/reloc.hpp"
#include "util/error.hpp"

namespace mc::baselines {

Bytes simulate_load(ByteView file, std::uint32_t actual_base) {
  Bytes mapped = pe::map_image(file);
  // Rival baseline parses the PE directly by design; mc-lint: allow(format-bypass)
  const pe::ParsedImage parsed(mapped);
  const auto& reloc_dir =
      parsed.optional_header().DataDirectories[pe::kDirBaseReloc];
  if (reloc_dir.VirtualAddress != 0 && reloc_dir.Size != 0) {
    const Bytes reloc_data =
        slice(mapped, reloc_dir.VirtualAddress, reloc_dir.Size);
    const auto fixups = pe::parse_base_relocations(reloc_data);
    pe::apply_relocations(mapped, fixups,
                          actual_base - parsed.optional_header().ImageBase);
  }
  return mapped;
}

std::vector<std::string> diff_integrity_items(ByteView image_a,
                                              ByteView image_b) {
  const auto items_a = pe::ParsedImage(image_a).extract_items(image_a);  // mc-lint: allow(format-bypass)
  const auto items_b = pe::ParsedImage(image_b).extract_items(image_b);  // mc-lint: allow(format-bypass)

  std::vector<std::string> mismatched;
  std::vector<bool> b_used(items_b.size(), false);
  for (const auto& a : items_a) {
    const core::IntegrityItem* match = nullptr;
    for (std::size_t j = 0; j < items_b.size(); ++j) {
      if (!b_used[j] && items_b[j].kind == a.kind && items_b[j].name == a.name) {
        b_used[j] = true;
        match = &items_b[j];
        break;
      }
    }
    if (match == nullptr ||
        crypto::Md5::hash(a.bytes) != crypto::Md5::hash(match->bytes)) {
      mismatched.push_back(a.name);
    }
  }
  for (std::size_t j = 0; j < items_b.size(); ++j) {
    if (!b_used[j]) {
      mismatched.push_back(items_b[j].name);
    }
  }
  return mismatched;
}

DetectionOutcome DiskCrossViewChecker::check(const cloud::CloudEnvironment& env,
                                             vmm::DomainId vm,
                                             const std::string& module) const {
  DetectionOutcome out;
  const auto* record = env.loader(vm).find(module);
  if (record == nullptr) {
    out.flagged = true;
    out.detail = "module not in loader list";
    return out;
  }

  Bytes memory_image(record->size_of_image, 0);
  env.kernel(vm).address_space().read_virtual(record->base, memory_image);

  if (!env.disk_has(vm, module)) {
    out.flagged = true;
    out.detail = "no disk file to cross-view against";
    return out;
  }
  const Bytes reference = simulate_load(env.disk_file(vm, module),
                                        record->base);

  const auto mismatched = diff_integrity_items(memory_image, reference);
  if (!mismatched.empty()) {
    out.flagged = true;
    out.detail = "memory diverges from disk at: ";
    for (std::size_t i = 0; i < mismatched.size(); ++i) {
      out.detail += (i ? ", " : "") + mismatched[i];
    }
    return out;
  }
  out.detail = "memory image consistent with disk file";
  return out;
}

}  // namespace mc::baselines
