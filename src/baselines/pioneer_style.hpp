// Pioneer-style baseline (§II, Seshadri et al., SOSP'05).
//
// Pioneer establishes a "dynamic root of trust" in an untrusted machine
// with a challenge-response protocol: a dispatcher sends a nonce, an
// in-guest self-checking function computes a checksum over the code under
// a time budget, and the dispatcher verifies BOTH the checksum value
// (against its own copy) and the response latency — a compromised
// responder that emulates or forwards the computation cannot meet the
// deadline.
//
// The simulation keeps that structure: the guest-side computation runs
// over the *actual* module bytes in guest memory; an infected module
// yields a wrong checksum, and an adversary simulated to forge the answer
// (compute over a pristine copy it hides elsewhere) pays a time penalty
// that busts the deadline.  The dispatcher needs a trusted copy of the
// code — the same maintenance burden as LKIM, which is the §II point.
#pragma once

#include <cstdint>
#include <map>

#include "baselines/baseline.hpp"

namespace mc::baselines {

struct PioneerParams {
  /// Simulated cost per byte of the honest self-check function.
  double ns_per_byte = 1.5;
  /// Latency multiplier an evading responder pays (memory-copy detour /
  /// emulation; Pioneer's design makes this >= 1.3x in practice).
  double evasion_overhead = 1.6;
  /// Deadline slack granted over the expected honest time.
  double deadline_slack = 1.3;
};

class PioneerStyleChecker final : public BaselineChecker {
 public:
  PioneerStyleChecker(std::map<std::string, Bytes> trusted_repository,
                      const PioneerParams& params = {},
                      std::uint64_t nonce_seed = 1)
      : repository_(std::move(trusted_repository)),
        params_(params),
        nonce_seed_(nonce_seed) {}

  std::string name() const override { return "pioneer-style"; }

  /// Runs the challenge against the module's in-memory code.  Flags on a
  /// checksum mismatch.  (See `check_with_evasion` for the timing side.)
  DetectionOutcome check(const cloud::CloudEnvironment& env, vmm::DomainId vm,
                         const std::string& module) const override;

  /// The adversarial variant: the guest forges the checksum over a hidden
  /// pristine copy.  The value verifies, but the deadline check fires.
  DetectionOutcome check_with_evasion(const cloud::CloudEnvironment& env,
                                      vmm::DomainId vm,
                                      const std::string& module) const;

 private:
  std::uint64_t challenge(ByteView code, std::uint64_t nonce) const;

  std::map<std::string, Bytes> repository_;
  PioneerParams params_;
  std::uint64_t nonce_seed_;
};

}  // namespace mc::baselines
