#include "baselines/hash_dict.hpp"

#include "crypto/md5.hpp"

namespace mc::baselines {

HashDictChecker::HashDictChecker(
    const std::map<std::string, Bytes>& trusted_files) {
  for (const auto& [name, bytes] : trusted_files) {
    dictionary_.emplace(name, crypto::Md5::hash(bytes));
  }
}

DetectionOutcome HashDictChecker::check(const cloud::CloudEnvironment& env,
                                        vmm::DomainId vm,
                                        const std::string& module) const {
  DetectionOutcome out;
  if (!env.disk_has(vm, module)) {
    out.flagged = true;
    out.detail = "module file absent from disk";
    return out;
  }
  const crypto::Digest actual = crypto::Md5::hash(env.disk_file(vm, module));
  const auto it = dictionary_.find(module);
  if (it == dictionary_.end()) {
    out.flagged = true;
    out.detail = "module not registered in the signature database";
    return out;
  }
  if (actual != it->second) {
    out.flagged = true;
    out.detail = "disk file hash " + actual.hex() +
                 " does not match registered " + it->second.hex();
    return out;
  }
  out.detail = "disk file matches registered hash";
  return out;
}

}  // namespace mc::baselines
