// Related-work baseline checkers (paper §II).
//
// Implemented to make the A2 comparison bench concrete: each checker
// answers the same question as ModChecker ("has this module's integrity
// been violated on this VM?") using the strategy of a published system,
// with that system's blind spots intact:
//
//   * HashDictChecker   — signed-module dictionary (MS Windows driver
//     signing / Linux module signing): verifies the *disk file* against a
//     database of known-good hashes at load time; never looks at memory.
//   * DiskCrossViewChecker — SVV (Rutkowska): compares the in-memory image
//     against the same VM's *disk file* (simulating relocation from the
//     file's .reloc records).  Blind when disk and memory are consistently
//     infected ("most malware infects files on disk first").
//   * LkimStyleChecker  — LKIM (Loscocco et al.): simulates the load of a
//     *trusted external* copy using the guest's actual loading information
//     and compares; also validates bound IAT function pointers.  Catches
//     everything above at the price of maintaining the trusted repository
//     — the maintenance burden ModChecker exists to avoid.
#pragma once

#include <string>

#include "cloud/environment.hpp"
#include "vmm/domain.hpp"

namespace mc::baselines {

struct DetectionOutcome {
  bool flagged = false;
  std::string detail;
};

class BaselineChecker {
 public:
  virtual ~BaselineChecker() = default;
  virtual std::string name() const = 0;

  /// Evaluates the module's integrity on one VM.
  virtual DetectionOutcome check(const cloud::CloudEnvironment& env,
                                 vmm::DomainId vm,
                                 const std::string& module) const = 0;
};

}  // namespace mc::baselines
