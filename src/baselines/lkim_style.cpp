#include "baselines/lkim_style.hpp"

#include "baselines/disk_crossview.hpp"
#include "pe/constants.hpp"
#include "pe/imports.hpp"
#include "pe/parser.hpp"
#include "util/error.hpp"

namespace mc::baselines {

DetectionOutcome LkimStyleChecker::check(const cloud::CloudEnvironment& env,
                                         vmm::DomainId vm,
                                         const std::string& module) const {
  DetectionOutcome out;
  const auto* record = env.loader(vm).find(module);
  if (record == nullptr) {
    out.flagged = true;
    out.detail = "module not in loader list";
    return out;
  }

  const auto repo_it = repository_.find(module);
  if (repo_it == repository_.end()) {
    out.flagged = true;
    out.detail = "module absent from trusted repository";
    return out;
  }

  Bytes memory_image(record->size_of_image, 0);
  env.kernel(vm).address_space().read_virtual(record->base, memory_image);

  // Simulate loading the untainted copy at the guest's actual base.
  const Bytes reference = simulate_load(repo_it->second, record->base);

  auto mismatched = diff_integrity_items(memory_image, reference);

  // Dynamic-data pass: each bound IAT slot must hold the address the
  // provider module exports for that function.
  // Rival baseline parses the PE directly by design; mc-lint: allow(format-bypass)
  const pe::ParsedImage parsed(memory_image);
  const auto& import_dir =
      parsed.optional_header().DataDirectories[pe::kDirImport];
  if (import_dir.VirtualAddress != 0 &&
      import_dir.VirtualAddress < memory_image.size()) {
    for (const auto& dll :
         pe::parse_import_directory(memory_image, import_dir.VirtualAddress)) {
      const auto* provider = env.loader(vm).find(dll.dll_name);
      if (provider == nullptr) {
        mismatched.push_back("IAT[" + dll.dll_name + "] (provider missing)");
        continue;
      }
      for (std::size_t f = 0; f < dll.function_names.size(); ++f) {
        const auto exp = provider->exports.find(dll.function_names[f]);
        if (exp == provider->exports.end()) {
          mismatched.push_back("IAT[" + dll.dll_name + "!" +
                               dll.function_names[f] + "] (not exported)");
          continue;
        }
        const std::uint32_t slot =
            load_le32(memory_image, dll.iat_rvas[f]);
        if (slot != exp->second) {
          mismatched.push_back("IAT[" + dll.dll_name + "!" +
                               dll.function_names[f] + "]");
        }
      }
    }
  }

  if (!mismatched.empty()) {
    out.flagged = true;
    out.detail = "diverges from trusted copy at: ";
    for (std::size_t i = 0; i < mismatched.size(); ++i) {
      out.detail += (i ? ", " : "") + mismatched[i];
    }
    return out;
  }
  out.detail = "matches simulated load of trusted copy";
  return out;
}

}  // namespace mc::baselines
