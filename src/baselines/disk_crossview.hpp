// SVV-style disk/memory cross-view baseline (§II, Rutkowska's
// System-Virginity-Verifier).
//
// Compares the in-memory module against the *same VM's* disk file: the
// reference is the file mapped to memory layout and relocated to the
// actual load base using its own .reloc records.  Writable sections are
// ignored (IATs are legitimately rebound).  The documented blind spot:
// when the infection hit the disk file first and was then loaded, both
// views agree and SVV sees nothing.
#pragma once

#include "baselines/baseline.hpp"

namespace mc::baselines {

class DiskCrossViewChecker final : public BaselineChecker {
 public:
  std::string name() const override { return "svv-disk-crossview"; }

  DetectionOutcome check(const cloud::CloudEnvironment& env, vmm::DomainId vm,
                         const std::string& module) const override;
};

/// Shared helper: maps `file` to memory layout and relocates it to
/// `actual_base` using the image's own base relocations.
Bytes simulate_load(ByteView file, std::uint32_t actual_base);

/// Shared helper: name-keyed integrity-item comparison of two mapped
/// images at the same base.  Returns the names of mismatched items.
std::vector<std::string> diff_integrity_items(ByteView image_a,
                                              ByteView image_b);

}  // namespace mc::baselines
