#include "vmi/session.hpp"

#include <algorithm>
#include <utility>

#include "guestos/winlike.hpp"
#include "util/error.hpp"
#include "util/utf16.hpp"
#include "vmm/address_space.hpp"
#include "vmm/phys_mem.hpp"

namespace mc::vmi {

namespace {
constexpr std::uint32_t kPageMask = vmm::kFrameSize - 1;
}

VmiSession::VmiSession(const vmm::Hypervisor& hypervisor,
                       vmm::DomainId domain, SimClock& clock,
                       const VmiCostModel& costs,
                       telemetry::MetricRegistry* metrics)
    : hypervisor_(&hypervisor),
      domain_id_(domain),
      clock_(&clock),
      costs_(costs) {
  telemetry::MetricRegistry& reg = telemetry::resolve(metrics);
  counters_.pages_mapped = reg.owned_counter("vmi.pages_mapped");
  counters_.bytes_copied = reg.owned_counter("vmi.bytes_copied");
  counters_.translations = reg.owned_counter("vmi.translations");
  counters_.translation_cache_hits =
      reg.owned_counter("vmi.translation_cache_hits");
  counters_.read_calls = reg.owned_counter("vmi.read_calls");
  counters_.kdbg_frames_scanned = reg.owned_counter("vmi.kdbg_frames_scanned");
  counters_.batched_pages = reg.owned_counter("vmi.batched_pages");
  counters_.session_reuses = reg.owned_counter("vmi.session_reuses");
  counters_.faults_observed = reg.owned_counter("vmi.faults_observed");
  counters_.view_reads = reg.owned_counter("vmi.view_reads");
  counters_.view_bytes = reg.owned_counter("vmi.view_bytes");
  // Validate the domain exists up front (mirrors vmi_init failing fast).
  (void)hypervisor_->domain(domain_id_);
  charge(costs_.attach);
}

VmiStats VmiSession::stats() const {
  VmiStats snap;
  snap.pages_mapped = counters_.pages_mapped.value();
  snap.bytes_copied = counters_.bytes_copied.value();
  snap.translations = counters_.translations.value();
  snap.translation_cache_hits = counters_.translation_cache_hits.value();
  snap.read_calls = counters_.read_calls.value();
  snap.kdbg_frames_scanned = counters_.kdbg_frames_scanned.value();
  snap.batched_pages = counters_.batched_pages.value();
  snap.session_reuses = counters_.session_reuses.value();
  snap.faults_observed = counters_.faults_observed.value();
  snap.view_reads = counters_.view_reads.value();
  snap.view_bytes = counters_.view_bytes.value();
  return snap;
}

void VmiSession::charge(SimNanos nanos) {
  clock_->set_slowdown(hypervisor_->dom0_slowdown());
  clock_->charge(nanos);
}

FaultRecord VmiSession::make_fault(FaultCode code, std::uint32_t va,
                                   std::uint64_t pa, std::string detail) {
  counters_.faults_observed.inc();
  FaultRecord record;
  record.code = code;
  record.domain = domain_id_;
  record.va = va;
  record.pa = pa;
  record.stage = CheckStage::kAcquire;
  record.detail = std::move(detail);
  return record;
}

MaybeFault VmiSession::try_ensure_debug_block() {
  if (ps_loaded_module_list_va_) {
    return std::nullopt;
  }
  // Scan guest physical memory for the KDBG-style debug block, frame by
  // frame at 4-byte alignment — LibVMI's Windows bootstrapping strategy.
  const vmm::PhysicalMemory& mem = hypervisor_->domain(domain_id_).memory();
  Bytes frame(vmm::kFrameSize, 0);
  const std::uint32_t frames = mem.frame_count();
  for (std::uint32_t f = 0; f < frames; ++f) {
    mem.read(std::uint64_t{f} << vmm::kFrameShift, frame);
    counters_.kdbg_frames_scanned.inc();
    charge(costs_.kdbg_scan_per_frame);
    for (std::uint32_t off = 0; off + guestos::kDebugBlockSize <= frame.size();
         off += 4) {
      if (load_le32(frame, off) == guestos::kDebugBlockMagic) {
        ps_loaded_module_list_va_ =
            load_le32(frame, off + guestos::kOffDbgPsLoadedModuleList);
        kernel_base_va_ =
            load_le32(frame, off + guestos::kOffDbgKernelBase);
        guest_version_ = load_le32(frame, off + guestos::kOffDbgVersion);
        return std::nullopt;
      }
    }
    // Simulator shortcut: guests allocate kernel frames from the bottom,
    // so stop scanning once we pass the resident prefix.  (Real LibVMI
    // similarly bounds the scan to the low region where KDBG lives.)
    if (f > 4096 && !ps_loaded_module_list_va_) {
      break;
    }
  }
  if (!ps_loaded_module_list_va_) {
    return make_fault(FaultCode::kDebugBlockMissing, 0, 0,
                      "debug block not found in guest " +
                          std::to_string(domain_id_));
  }
  return std::nullopt;
}

Fallible<std::uint32_t> VmiSession::try_guest_version() {
  if (MaybeFault f = try_ensure_debug_block()) {
    return std::move(*f);
  }
  return *guest_version_;
}

Fallible<std::uint64_t> VmiSession::try_translate_kv2p(std::uint32_t va) {
  const std::uint32_t page = va & ~kPageMask;
  counters_.translations.inc();
  const auto it = v2p_cache_.find(page);
  if (it != v2p_cache_.end()) {
    counters_.translation_cache_hits.inc();
    charge(costs_.translate_cached);
    return it->second | (va & kPageMask);
  }

  // Injection gate sits in front of the walk: a cached translation never
  // faults (the mapping is already known to Dom0), an uncached one rolls
  // against the domain's profile before touching guest page tables.
  vmm::FaultInjector& injector = hypervisor_->fault_injector();
  if (injector.armed() && injector.should_fault_translation(domain_id_)) {
    return make_fault(FaultCode::kTranslationFault, va, 0,
                      "injected translation fault");
  }

  const vmm::Domain& dom = hypervisor_->domain(domain_id_);
  if (dom.cr3() == 0) {
    return make_fault(FaultCode::kNoAddressSpace, va, 0,
                      "guest has no address space (not booted?)");
  }
  // VMI implements its own two-level walk over guest physical memory
  // (exactly what LibVMI does: read CR3, then PDE, then PTE).
  const vmm::PhysicalMemory& mem = dom.memory();
  const std::uint32_t pde = mem.read_u32(dom.cr3() + 4ull * (va >> 22));
  charge(costs_.translate_walk);
  if ((pde & vmm::kPtePresent) == 0) {
    return make_fault(FaultCode::kTranslationFault, va, 0,
                      "unmapped guest VA (no PDE) in translate_kv2p");
  }
  const std::uint64_t pt_base = pde & ~std::uint64_t{kPageMask};
  const std::uint32_t pte =
      mem.read_u32(pt_base + 4ull * ((va >> 12) & 0x3FF));
  if ((pte & vmm::kPtePresent) == 0) {
    return make_fault(FaultCode::kTranslationFault, va, 0,
                      "unmapped guest VA (no PTE) in translate_kv2p");
  }
  const std::uint64_t frame_pa = pte & ~std::uint64_t{kPageMask};
  v2p_cache_.emplace(page, frame_pa);
  return frame_pa | (va & kPageMask);
}

template <typename Sink>
MaybeFault VmiSession::walk_guest_range(std::uint32_t va, std::size_t len,
                                        Sink&& sink) {
  counters_.read_calls.inc();
  charge(costs_.read_call);

  // One injection roll per read call (mirrors a hypercall failing as a
  // unit, whatever its length).  The gate is a relaxed atomic load when
  // injection is disarmed, so the clean path pays a single branch.
  vmm::FaultInjector& injector = hypervisor_->fault_injector();
  if (injector.armed() && injector.should_fault_read(domain_id_)) {
    return make_fault(FaultCode::kReadFault, va, 0, "injected read fault");
  }

  const vmm::PhysicalMemory& mem = hypervisor_->domain(domain_id_).memory();

  std::size_t done = 0;
  while (done < len) {
    const std::uint32_t cur = va + static_cast<std::uint32_t>(done);
    Fallible<std::uint64_t> translated = try_translate_kv2p(cur);
    if (!translated.ok()) {
      return std::move(translated.fault());
    }
    const std::uint64_t pa = translated.value();
    const std::uint64_t frame = pa & ~std::uint64_t{kPageMask};
    // Map the frame into the privileged VM unless it is the one we already
    // have mapped (LibVMI keeps the last mapping hot).
    if (!last_mapped_frame_ || *last_mapped_frame_ != frame) {
      counters_.pages_mapped.inc();
      charge(costs_.page_map);
      last_mapped_frame_ = frame;
    }
    const std::size_t in_page = cur & kPageMask;
    std::size_t take = std::min<std::size_t>(vmm::kFrameSize - in_page,
                                             len - done);

    if (costs_.coalesce_reads) {
      // Extend the run while the following pages translate to physically
      // contiguous frames: they join the existing mapping (cheap batched
      // charge) and the whole run is consumed in one call.  Translations
      // stay per-page — the page-table walk cannot be batched away.
      std::uint64_t next_frame = frame + vmm::kFrameSize;
      while (done + take < len) {
        const std::uint32_t next_va =
            va + static_cast<std::uint32_t>(done + take);
        Fallible<std::uint64_t> next_translated = try_translate_kv2p(next_va);
        if (!next_translated.ok()) {
          return std::move(next_translated.fault());
        }
        const std::uint64_t next_pa = next_translated.value();
        if ((next_pa & ~std::uint64_t{kPageMask}) != next_frame) {
          break;  // physical discontinuity; next loop iteration remaps
        }
        const std::size_t extra =
            std::min<std::size_t>(vmm::kFrameSize, len - done - take);
        counters_.pages_mapped.inc();
        counters_.batched_pages.inc();
        charge(costs_.page_map_batched);
        last_mapped_frame_ = next_frame;
        take += extra;
        next_frame += vmm::kFrameSize;
        if (extra < vmm::kFrameSize) {
          break;  // request ends inside this frame
        }
      }
    }

    sink(mem, pa, done, take);
    // The per-byte charge is the simulated cost of the hypervisor walking
    // the mapped run; it applies to borrowed views and copies alike (the
    // zero-copy win is host memory traffic, not simulated time).
    charge(costs_.copy_per_byte * take);
    done += take;
  }
  return std::nullopt;
}

MaybeFault VmiSession::try_read_va(std::uint32_t va, MutableByteView out) {
  return walk_guest_range(
      va, out.size(),
      [&](const vmm::PhysicalMemory& mem, std::uint64_t pa, std::size_t done,
          std::size_t take) {
        mem.read(pa, out.subspan(done, take));
        counters_.bytes_copied.inc(take);
      });
}

Fallible<GuestView> VmiSession::try_read_view(std::uint32_t va,
                                              std::size_t len) {
  GuestView view;
  counters_.view_reads.inc();
  MaybeFault fault = walk_guest_range(
      va, len,
      [&](const vmm::PhysicalMemory& mem, std::uint64_t pa, std::size_t,
          std::size_t take) {
        // A coalesced run covers physically contiguous frames, but each
        // frame is its own host allocation: borrow frame by frame and let
        // GuestView coalesce what happens to be host-adjacent.
        std::size_t off = 0;
        while (off < take) {
          const std::uint64_t cur = pa + off;
          const auto frame_no =
              static_cast<std::uint32_t>(cur >> vmm::kFrameShift);
          const std::size_t in_frame =
              static_cast<std::size_t>(cur & kPageMask);
          const std::size_t chunk = std::min<std::size_t>(
              vmm::kFrameSize - in_frame, take - off);
          view.append(mem.frame_view(frame_no).subspan(in_frame, chunk));
          off += chunk;
        }
        counters_.view_bytes.inc(take);
      });
  if (fault) {
    return std::move(*fault);
  }
  return view;
}

Fallible<std::uint32_t> VmiSession::try_read_u32(std::uint32_t va) {
  std::uint8_t buf[4];
  if (MaybeFault f = try_read_va(va, MutableByteView(buf, 4))) {
    return std::move(*f);
  }
  return load_le32(ByteView(buf, 4), 0);
}

Fallible<std::uint16_t> VmiSession::try_read_u16(std::uint32_t va) {
  std::uint8_t buf[2];
  if (MaybeFault f = try_read_va(va, MutableByteView(buf, 2))) {
    return std::move(*f);
  }
  return load_le16(ByteView(buf, 2), 0);
}

Fallible<Bytes> VmiSession::try_read_region(std::uint32_t va,
                                            std::size_t len) {
  Bytes out(len, 0);
  if (MaybeFault f = try_read_va(va, out)) {
    return std::move(*f);
  }
  return out;
}

Fallible<std::string> VmiSession::try_read_unicode_string(
    std::uint32_t us_va) {
  Fallible<std::uint16_t> length =
      try_read_u16(us_va + guestos::kOffUsLength);
  if (!length.ok()) {
    return std::move(length.fault());
  }
  Fallible<std::uint32_t> buffer =
      try_read_u32(us_va + guestos::kOffUsBuffer);
  if (!buffer.ok()) {
    return std::move(buffer.fault());
  }
  if (length.value() == 0 || buffer.value() == 0) {
    return std::string{};
  }
  Fallible<Bytes> raw = try_read_region(buffer.value(), length.value());
  if (!raw.ok()) {
    return std::move(raw.fault());
  }
  return utf16le_to_ascii(raw.value());
}

// ---- Write-watch registration ----------------------------------------------

Fallible<vmm::WriteWatch::WatchId> VmiSession::try_watch_range(
    std::uint32_t va, std::size_t len) {
  std::vector<std::uint32_t> frames;
  frames.reserve((len >> vmm::kFrameShift) + 2);
  const std::uint32_t first_page = va & ~kPageMask;
  for (std::uint64_t page = first_page; page < std::uint64_t{va} + len;
       page += vmm::kFrameSize) {
    Fallible<std::uint64_t> pa =
        try_translate_kv2p(static_cast<std::uint32_t>(page));
    if (!pa.ok()) {
      return std::move(pa.fault());
    }
    frames.push_back(static_cast<std::uint32_t>(pa.value() >> vmm::kFrameShift));
  }
  charge(costs_.watch_register_per_frame * frames.size());
  return hypervisor_->write_watch().register_watch(domain_id_,
                                                   std::move(frames));
}

bool VmiSession::watch_dirty(vmm::WriteWatch::WatchId watch) {
  charge(costs_.watch_query);
  return hypervisor_->write_watch().dirty(watch);
}

std::vector<std::uint32_t> VmiSession::watch_dirty_pages(
    vmm::WriteWatch::WatchId watch) {
  charge(costs_.watch_query);
  return hypervisor_->write_watch().dirty_indices(watch);
}

std::vector<std::uint32_t> VmiSession::watch_drain(
    vmm::WriteWatch::WatchId watch) {
  charge(costs_.watch_query);
  return hypervisor_->write_watch().drain(watch);
}

void VmiSession::watch_rearm(vmm::WriteWatch::WatchId watch) {
  hypervisor_->write_watch().rearm(watch);
}

void VmiSession::unwatch(vmm::WriteWatch::WatchId watch) {
  hypervisor_->write_watch().unregister(watch);
}

// ---- Legacy throwing wrappers ----------------------------------------------

std::uint32_t VmiSession::symbol_to_va(const std::string& symbol) {
  if (MaybeFault f = try_ensure_debug_block()) {
    throw GuestFaultError(std::move(*f));
  }
  if (symbol == "PsLoadedModuleList") {
    return *ps_loaded_module_list_va_;
  }
  if (symbol == "KernBase") {
    return *kernel_base_va_;
  }
  throw VmiError("unknown kernel symbol: " + symbol);
}

std::uint32_t VmiSession::guest_version() {
  Fallible<std::uint32_t> version = try_guest_version();
  if (!version.ok()) {
    throw GuestFaultError(std::move(version.fault()));
  }
  return version.value();
}

std::uint64_t VmiSession::translate_kv2p(std::uint32_t va) {
  Fallible<std::uint64_t> pa = try_translate_kv2p(va);
  if (!pa.ok()) {
    throw GuestFaultError(std::move(pa.fault()));
  }
  return pa.value();
}

void VmiSession::read_va(std::uint32_t va, MutableByteView out) {
  if (MaybeFault f = try_read_va(va, out)) {
    throw GuestFaultError(std::move(*f));
  }
}

std::uint32_t VmiSession::read_u32(std::uint32_t va) {
  Fallible<std::uint32_t> value = try_read_u32(va);
  if (!value.ok()) {
    throw GuestFaultError(std::move(value.fault()));
  }
  return value.value();
}

std::uint16_t VmiSession::read_u16(std::uint32_t va) {
  Fallible<std::uint16_t> value = try_read_u16(va);
  if (!value.ok()) {
    throw GuestFaultError(std::move(value.fault()));
  }
  return value.value();
}

Bytes VmiSession::read_region(std::uint32_t va, std::size_t len) {
  Fallible<Bytes> out = try_read_region(va, len);
  if (!out.ok()) {
    throw GuestFaultError(std::move(out.fault()));
  }
  return std::move(out.value());
}

std::string VmiSession::read_unicode_string(std::uint32_t us_va) {
  Fallible<std::string> out = try_read_unicode_string(us_va);
  if (!out.ok()) {
    throw GuestFaultError(std::move(out.fault()));
  }
  return std::move(out.value());
}

}  // namespace mc::vmi
