#include "vmi/session_pool.hpp"

#include <vector>

namespace mc::vmi {

VmiSessionPool::VmiSessionPool(const vmm::Hypervisor& hypervisor,
                               const VmiCostModel& costs,
                               telemetry::MetricRegistry* metrics)
    : hypervisor_(&hypervisor),
      costs_(costs),
      metrics_(&telemetry::resolve(metrics)),
      created_(metrics_->owned_counter("vmi.pool.created")),
      reused_(metrics_->owned_counter("vmi.pool.reused")),
      invalidated_(metrics_->owned_counter("vmi.pool.invalidated")) {}

VmiSessionPool::Lease VmiSessionPool::acquire(vmm::DomainId domain,
                                              SimClock& clock) {
  Entry* entry = nullptr;
  {
    std::lock_guard<std::mutex> map_lock(map_mutex_);
    auto& slot = entries_[domain];
    if (!slot) {
      slot = std::make_unique<Entry>();
    }
    entry = slot.get();
  }
  // Per-domain lock taken after the map lock is released: acquires of
  // different domains never serialize on each other.
  std::unique_lock<std::mutex> lock(entry->mutex);

  const vmm::Domain& dom = hypervisor_->domain(domain);
  const bool stale = entry->session && (entry->epoch != dom.epoch() ||
                                        entry->cr3 != dom.cr3());
  if (stale) {
    entry->session.reset();
    invalidated_.inc();
  }
  if (entry->session) {
    entry->session->rebind_clock(clock);
    entry->session->note_reuse();
    reused_.inc();
  } else {
    entry->session = std::make_unique<VmiSession>(*hypervisor_, domain, clock,
                                                  costs_, metrics_);
    entry->epoch = dom.epoch();
    entry->cr3 = dom.cr3();
    created_.inc();
  }
  return Lease(std::move(lock), entry->session.get());
}

void VmiSessionPool::invalidate(vmm::DomainId domain) {
  Entry* entry = nullptr;
  {
    std::lock_guard<std::mutex> map_lock(map_mutex_);
    const auto it = entries_.find(domain);
    if (it == entries_.end()) {
      return;
    }
    entry = it->second.get();
  }
  std::lock_guard<std::mutex> lock(entry->mutex);
  if (entry->session) {
    entry->session.reset();
    invalidated_.inc();
  }
}

void VmiSessionPool::invalidate_all() {
  // Snapshot the entry pointers under the map lock, then drop sessions
  // under their own locks (entries are never erased, so pointers stay
  // valid).
  std::vector<Entry*> entries;
  {
    std::lock_guard<std::mutex> map_lock(map_mutex_);
    entries.reserve(entries_.size());
    for (auto& [id, entry] : entries_) {
      entries.push_back(entry.get());
    }
  }
  for (Entry* entry : entries) {
    std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->session) {
      entry->session.reset();
      invalidated_.inc();
    }
  }
}

SessionPoolStats VmiSessionPool::stats() const {
  SessionPoolStats snap;
  snap.created = created_.value();
  snap.reused = reused_.value();
  snap.invalidated = invalidated_.value();
  return snap;
}

}  // namespace mc::vmi
