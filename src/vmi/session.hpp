// Virtual machine introspection session — the LibVMI stand-in.
//
// A VmiSession gives the privileged VM *read-only* access to one guest's
// memory: kernel-virtual reads through real page-table walks (with a V2P
// cache), UNICODE_STRING helpers, and kernel symbol resolution via a
// physical-memory scan for the guest's KDBG-style debugger block — the same
// strategy LibVMI uses to find PsLoadedModuleList on Windows guests.
//
// Every operation charges simulated time (scaled by the hypervisor's
// current contention factor) to the session's SimClock, and updates access
// statistics.  There is deliberately no write path: the paper's threat
// model has ModChecker strictly observing (§III-B: "performs read-only
// operations of the memory of guest VMs").
//
// Fault model: the `try_*` methods are the primary API — a failed guest
// read or translation (real, or injected by the hypervisor's
// FaultInjector) comes back as a FaultRecord in a Fallible/MaybeFault
// return, never as control flow.  The historical throwing methods remain
// as thin wrappers that raise GuestFaultError (a VmiError) carrying the
// same record, so legacy callers and tests keep their contract; genuine
// API misuse (nonexistent domain at attach, unknown symbol name) still
// throws NotFoundError / VmiError directly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "telemetry/registry.hpp"
#include "util/bytes.hpp"
#include "util/fault.hpp"
#include "util/sim_clock.hpp"
#include "vmi/cost_model.hpp"
#include "vmi/guest_view.hpp"
#include "vmm/hypervisor.hpp"

namespace mc::vmi {

/// Deprecated view: a point-in-time snapshot of one session's counters,
/// which now live in the telemetry registry (aggregate names "vmi.*").
/// Kept so existing callers and tests read the same fields they always did.
// mc-lint: allow(adhoc-stats)
struct VmiStats {
  std::uint64_t pages_mapped = 0;
  std::uint64_t bytes_copied = 0;
  std::uint64_t translations = 0;
  std::uint64_t translation_cache_hits = 0;
  std::uint64_t read_calls = 0;
  std::uint64_t kdbg_frames_scanned = 0;
  /// Pages that rode an existing mapping because their frame was physically
  /// contiguous with the previous one (charged `page_map_batched`, not
  /// `page_map`).
  std::uint64_t batched_pages = 0;
  /// Times this session was checked out again from a VmiSessionPool — the
  /// cross-scan reuse counter (each reuse skips attach + debug-block scan
  /// and keeps the V2P cache warm).
  std::uint64_t session_reuses = 0;
  /// Faults surfaced by this session (injected or real), counted at the
  /// point of observation.
  std::uint64_t faults_observed = 0;
  /// Zero-copy reads served as borrowed GuestViews (and the bytes they
  /// exposed without copying).  A clean pool scan should see view_bytes
  /// carry the module images while bytes_copied stays at the small typed
  /// reads (list walking, UNICODE_STRINGs).
  std::uint64_t view_reads = 0;
  std::uint64_t view_bytes = 0;
};

class VmiSession {
 public:
  /// Attaches to `domain` (throws NotFoundError if absent — attaching to a
  /// domain that does not exist is caller error, not a guest fault).  The
  /// debug block scan is performed lazily on first symbol lookup.
  /// Counters register with `metrics` (null = the process default registry).
  VmiSession(const vmm::Hypervisor& hypervisor, vmm::DomainId domain,
             SimClock& clock, const VmiCostModel& costs = {},
             telemetry::MetricRegistry* metrics = nullptr);

  vmm::DomainId domain_id() const { return domain_id_; }

  /// Coherent snapshot of this session's counters.  Safe to call while
  /// another thread is inside read_va: every counter is an atomic registry
  /// cell (the historical plain-struct version tore under concurrency).
  VmiStats stats() const;

  SimClock& clock() { return *clock_; }
  const VmiCostModel& costs() const { return costs_; }

  /// Points subsequent charges at a different clock.  A pooled session
  /// outlives any single scan; each checkout rebinds it to the caller's
  /// clock so time is billed to the operation actually running.
  void rebind_clock(SimClock& clock) { clock_ = &clock; }

  /// Pool bookkeeping: bumps the cross-scan reuse counter.
  void note_reuse() { counters_.session_reuses.inc(); }

  // ---- Fault-returning core (the scan hot path) ----------------------------

  /// The guest OS build id from the debug block (triggers the scan).
  Fallible<std::uint32_t> try_guest_version();

  /// Kernel-virtual to physical translation (cached).  Injected and real
  /// translation faults come back as records.
  Fallible<std::uint64_t> try_translate_kv2p(std::uint32_t va);

  /// Reads guest memory by kernel-virtual address, page by page: each page
  /// is translated, mapped (charged) and copied (charged) — the access
  /// pattern that makes whole-module extraction expensive.  One injection
  /// roll per call (not per byte).
  [[nodiscard]] MaybeFault try_read_va(std::uint32_t va, MutableByteView out);

  /// Convenience typed reads over try_read_va.
  Fallible<std::uint32_t> try_read_u32(std::uint32_t va);
  Fallible<std::uint16_t> try_read_u16(std::uint32_t va);

  /// Reads `len` bytes into a fresh buffer.
  Fallible<Bytes> try_read_region(std::uint32_t va, std::size_t len);

  /// Zero-copy read: walks and charges exactly like try_read_va (same
  /// translations, same map/batch pattern, same per-byte touch cost — the
  /// simulated hypervisor still maps and walks every page), but returns
  /// borrowed spans over the backing frames instead of copying them into
  /// a fresh buffer.  The view is valid until the guest's memory is
  /// restored from a snapshot; see guest_view.hpp for the borrowing rules.
  Fallible<GuestView> try_read_view(std::uint32_t va, std::size_t len);

  /// Decodes a UNICODE_STRING structure at `us_va` (reads the descriptor,
  /// then the UTF-16LE buffer it points to).
  Fallible<std::string> try_read_unicode_string(std::uint32_t us_va);

  // ---- Write-watch registration (the log-dirty consumer API) ---------------
  // LibVMI-style wrapper over the hypervisor's WriteWatch: an incremental
  // consumer registers the frames backing a kernel-VA range (one frame per
  // page, in VA order — dirty index i maps back to page i of the range),
  // then polls dirty state in O(1) instead of re-reading the range.

  /// Translates every page of [va, va+len) (charged like any walk; faults
  /// propagate) and registers a WatchSet over the backing frames.
  Fallible<vmm::WriteWatch::WatchId> try_watch_range(std::uint32_t va,
                                                     std::size_t len);

  /// O(1) dirty query (charges `watch_query`).
  bool watch_dirty(vmm::WriteWatch::WatchId watch);

  /// Dirty page indices of the watched range (charges `watch_query`).
  std::vector<std::uint32_t> watch_dirty_pages(vmm::WriteWatch::WatchId watch);

  /// Atomic fetch-and-clear of the dirty set (charges `watch_query`); the
  /// refresh-then-rearm primitive — see WriteWatch::drain.
  std::vector<std::uint32_t> watch_drain(vmm::WriteWatch::WatchId watch);

  /// Clears dirty state after the consumer refreshed its copy.
  void watch_rearm(vmm::WriteWatch::WatchId watch);

  /// Drops a watch registration.
  void unwatch(vmm::WriteWatch::WatchId watch);

  // ---- Legacy throwing wrappers --------------------------------------------
  // Each forwards to its try_* core and raises GuestFaultError on a fault.

  /// Resolves an exported kernel symbol ("PsLoadedModuleList",
  /// "KernBase").  First call triggers the debug-block scan.  An unknown
  /// symbol name is API misuse and throws plain VmiError.
  std::uint32_t symbol_to_va(const std::string& symbol);

  /// Profile-aware consumers map the id with guestos::profile_by_version.
  std::uint32_t guest_version();

  std::uint64_t translate_kv2p(std::uint32_t va);
  void read_va(std::uint32_t va, MutableByteView out);
  std::uint32_t read_u32(std::uint32_t va);
  std::uint16_t read_u16(std::uint32_t va);
  Bytes read_region(std::uint32_t va, std::size_t len);
  std::string read_unicode_string(std::uint32_t us_va);

 private:
  void charge(SimNanos nanos);

  /// The shared page walk behind try_read_va and try_read_view: performs
  /// the injection roll, per-page translation and map/batch charging, then
  /// hands each mapped run to `sink(mem, pa, done, take)`.  Keeping one
  /// walk guarantees the copying and zero-copy paths charge bit-identical
  /// simulated costs (the differential suites assert this).
  template <typename Sink>
  [[nodiscard]] MaybeFault walk_guest_range(std::uint32_t va, std::size_t len,
                                            Sink&& sink);

  [[nodiscard]] MaybeFault try_ensure_debug_block();
  FaultRecord make_fault(FaultCode code, std::uint32_t va, std::uint64_t pa,
                         std::string detail);

  /// Atomic per-session cells of the fleet-wide "vmi.*" aggregates; hot-path
  /// increments are relaxed fetch_adds, so stats() never tears.
  struct SessionCounters {
    telemetry::OwnedCounter pages_mapped;
    telemetry::OwnedCounter bytes_copied;
    telemetry::OwnedCounter translations;
    telemetry::OwnedCounter translation_cache_hits;
    telemetry::OwnedCounter read_calls;
    telemetry::OwnedCounter kdbg_frames_scanned;
    telemetry::OwnedCounter batched_pages;
    telemetry::OwnedCounter session_reuses;
    telemetry::OwnedCounter faults_observed;
    telemetry::OwnedCounter view_reads;
    telemetry::OwnedCounter view_bytes;
  };

  const vmm::Hypervisor* hypervisor_;
  vmm::DomainId domain_id_;
  SimClock* clock_;
  VmiCostModel costs_;
  SessionCounters counters_;

  std::optional<std::uint32_t> ps_loaded_module_list_va_;
  std::optional<std::uint32_t> kernel_base_va_;
  std::optional<std::uint32_t> guest_version_;
  std::unordered_map<std::uint32_t, std::uint64_t> v2p_cache_;  // page -> frame
  std::optional<std::uint64_t> last_mapped_frame_;
};

}  // namespace mc::vmi
