// Simulated-time cost model for introspection operations.
//
// Calibrated against the behaviour the paper reports for LibVMI 0.6 on Xen
// 4.1.2 (§V-C.1): memory must be accessed page by page ("an action that
// requires an iterative access of the memory until the whole module is
// copied"), which makes Module-Searcher the dominant component; parsing and
// hashing are host-CPU work and much cheaper per byte.
//
// Absolute values are order-of-magnitude realistic for that era (mapping a
// foreign frame through xc_map_foreign_range costs tens of microseconds);
// what the reproduction preserves is the *relative* structure, which is
// what Figs. 7-8 exhibit.
#pragma once

#include "util/sim_clock.hpp"

namespace mc::vmi {

struct VmiCostModel {
  /// One-time session attach (open handles, read domain info).
  SimNanos attach = sim_us(120);
  /// Scanning one physical frame during the KDBG-style debug-block search.
  SimNanos kdbg_scan_per_frame = sim_us(2);
  /// Full page-table walk (two guest-physical reads).
  SimNanos translate_walk = sim_us(3);
  /// V2P cache hit.
  SimNanos translate_cached = 150;  // ns
  /// Mapping one guest frame into the privileged VM.
  SimNanos page_map = sim_us(25);
  /// Extending an existing mapping by one physically-contiguous frame
  /// (xc_map_foreign_pages over a frame run amortizes the per-call setup;
  /// only the first frame of a run pays the full `page_map`).
  SimNanos page_map_batched = sim_us(4);
  /// Copying one byte out of a mapped frame.
  SimNanos copy_per_byte = 2;  // ns
  /// Fixed overhead per read call (API dispatch).
  SimNanos read_call = 400;  // ns
  /// Coalesce virtually-contiguous pages that translate to
  /// physically-contiguous frames into one mapping + one copy, charging
  /// `page_map_batched` per extra frame.  Off reproduces the paper's strict
  /// page-by-page access pattern (the A8 ablation sweeps this).
  bool coalesce_reads = true;
  /// Arming write-watch protection on one guest frame (the hypercall that
  /// flips an EPT/shadow permission bit, amortized over a batch).
  SimNanos watch_register_per_frame = sim_us(1);
  /// One O(1) dirty query against the hypervisor's log-dirty state (a
  /// bitmap/count peek, no guest memory touched).
  SimNanos watch_query = 500;  // ns
};

/// Cost model for host-side (Dom0) CPU work: parsing and hashing.  Used by
/// the modchecker components, kept here so all calibration lives together.
struct HostCostModel {
  /// Module-Parser: per byte of module image walked/extracted.
  SimNanos parse_per_byte = 1;  // ns
  /// Fixed per-module parse overhead.
  SimNanos parse_fixed = sim_us(15);
  /// Integrity-Checker: MD5 hashing per byte.
  SimNanos hash_per_byte = 4;  // ns
  /// Integrity-Checker: CRC32 prefilter per byte (when enabled).
  SimNanos crc_per_byte = 1;  // ns
  /// Integrity-Checker: RVA-adjustment diff scan per byte (pairwise).
  SimNanos rva_scan_per_byte = 2;  // ns
  /// Fixed per-comparison overhead.
  SimNanos compare_fixed = sim_us(5);
  /// Fast-path pool scan: comparing two precomputed per-item digest vectors
  /// (a handful of 16-byte memcmps — no image data is touched).
  SimNanos digest_pair_fixed = 300;  // ns
};

}  // namespace mc::vmi
