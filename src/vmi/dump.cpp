#include "vmi/dump.hpp"

#include <algorithm>
#include <cstring>

#include "util/error.hpp"
#include "vmm/phys_mem.hpp"

namespace mc::vmi {

namespace {
constexpr char kMagic[8] = {'M', 'C', 'D', 'U', 'M', 'P', '0', '1'};
constexpr std::size_t kHeaderSize = 8 + 8 + 8 + 4;
}  // namespace

Bytes dump_domain(const vmm::Hypervisor& hypervisor, vmm::DomainId id) {
  const vmm::Domain& dom = hypervisor.domain(id);
  const vmm::PhysicalMemory& mem = dom.memory();

  // Walk all frames; emit only non-zero (resident-equivalent) ones.  Reading
  // through the public interface keeps this independent of the sparse
  // representation.
  Bytes frame(vmm::kFrameSize, 0);
  std::vector<std::uint32_t> non_zero;
  for (std::uint32_t f = 0; f < mem.frame_count(); ++f) {
    mem.read(std::uint64_t{f} << vmm::kFrameShift, frame);
    const bool zero = std::all_of(frame.begin(), frame.end(),
                                  [](std::uint8_t b) { return b == 0; });
    if (!zero) {
      non_zero.push_back(f);
    }
  }

  Bytes out;
  out.reserve(kHeaderSize + non_zero.size() * (4 + vmm::kFrameSize));
  for (const char c : kMagic) {
    out.push_back(static_cast<std::uint8_t>(c));
  }
  append_le32(out, static_cast<std::uint32_t>(dom.cr3() & 0xFFFFFFFFu));
  append_le32(out, static_cast<std::uint32_t>(dom.cr3() >> 32));
  append_le32(out, static_cast<std::uint32_t>(mem.size() & 0xFFFFFFFFu));
  append_le32(out, static_cast<std::uint32_t>(mem.size() >> 32));
  append_le32(out, static_cast<std::uint32_t>(non_zero.size()));

  for (const std::uint32_t f : non_zero) {
    append_le32(out, f);
    mem.read(std::uint64_t{f} << vmm::kFrameShift, frame);
    append_bytes(out, frame);
  }
  return out;
}

DumpAnalysis::DumpAnalysis(ByteView dump) {
  if (dump.size() < kHeaderSize ||
      std::memcmp(dump.data(), kMagic, sizeof kMagic) != 0) {
    throw FormatError("not a ModChecker memory dump");
  }
  const std::uint64_t cr3 =
      load_le32(dump, 8) | (std::uint64_t{load_le32(dump, 12)} << 32);
  const std::uint64_t mem_size =
      load_le32(dump, 16) | (std::uint64_t{load_le32(dump, 20)} << 32);
  const std::uint32_t frames = load_le32(dump, 24);
  if (dump.size() != kHeaderSize + std::uint64_t{frames} * (4 + vmm::kFrameSize)) {
    throw FormatError("memory dump is truncated");
  }

  hypervisor_ = std::make_unique<vmm::Hypervisor>();
  domain_id_ = hypervisor_->create_domain("dump", mem_size);
  vmm::Domain& dom = hypervisor_->domain(domain_id_);
  dom.set_cr3(cr3);

  std::size_t pos = kHeaderSize;
  for (std::uint32_t i = 0; i < frames; ++i) {
    const std::uint32_t frame_no = load_le32(dump, pos);
    pos += 4;
    if ((std::uint64_t{frame_no} << vmm::kFrameShift) + vmm::kFrameSize >
        mem_size) {
      throw FormatError("dump frame outside declared memory size");
    }
    dom.memory().write(std::uint64_t{frame_no} << vmm::kFrameShift,
                       dump.subspan(pos, vmm::kFrameSize));
    pos += vmm::kFrameSize;
  }
}

}  // namespace mc::vmi
