// Scatter-gather view of guest memory: the zero-copy Acquire result.
//
// A GuestView maps a guest-virtual range onto a sequence of borrowed
// spans over the simulated physical frames backing it (plus the shared
// zero frame for never-written pages).  VmiSession::try_read_view builds
// one instead of copying every page into a fresh Bytes buffer; Parse,
// Normalize, Compare and Hash then walk the segments in place.
//
// Ownership and lifetime rules (DESIGN.md §11):
//   * A GuestView borrows — it never owns guest bytes.  The spans point
//     into PhysicalMemory frames, which are stable once materialized but
//     are REPLACED by snapshot restore_from().  Views are therefore valid
//     for the duration of one scan and must not be cached across scans
//     (the incremental scanner keeps owned copies for exactly this
//     reason).
//   * materialize()/read_into() are the only copy points.  Production
//     code may materialize only on fault, tamper-evidence, or dump paths;
//     the clean-scan path is gated to zero materializations.
//   * Deliberately depends only on util/ so pe/ (which cannot link the
//     introspection stack) can consume views.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace mc::vmi {

class GuestView {
 public:
  GuestView() = default;

  /// Appends a borrowed segment; host-adjacent segments coalesce so a
  /// physically contiguous run becomes one span.
  void append(ByteView segment);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  const std::vector<ByteView>& segments() const { return segments_; }

  /// The whole view as a single span, if it happens to be contiguous in
  /// host memory (single segment).  Returns an empty view otherwise —
  /// callers must check contiguous() first when size() > 0.
  bool contiguous() const { return segments_.size() <= 1; }
  ByteView as_contiguous() const;

  std::uint8_t byte_at(std::size_t off) const;

  /// Bounds-checked copy of [off, off+out.size()) into `out`.
  void read_into(std::size_t off, MutableByteView out) const;

  /// Sub-range [off, off+len) as a view sharing the same borrowed spans.
  GuestView subview(std::size_t off, std::size_t len) const;

  /// Owned copy — the fault / tamper-evidence / dump escape hatch.
  Bytes materialize() const;

  /// Walks the borrowed spans in order (streaming hash / CRC callers).
  template <typename Fn>
  void for_each_segment(Fn&& fn) const {
    for (const ByteView& s : segments_) {
      fn(s);
    }
  }

 private:
  std::vector<ByteView> segments_;
  std::size_t size_ = 0;
};

}  // namespace mc::vmi
