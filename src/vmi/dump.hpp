// Offline memory-dump analysis.
//
// The paper hands flagged VMs to "more comprehensive, deeper analysis
// tools" (§III, §VI) — in practice, memory forensics over a captured
// dump.  This module provides that workflow: serialize a guest's full
// state (physical memory + CR3) into a self-describing dump blob, and
// rehydrate it later into a standalone single-domain hypervisor so every
// ModChecker facility (searcher, parser, checker, forensics) runs
// unchanged against the *capture* instead of the live guest.
//
// Dump format (little-endian):
//   magic "MCDUMP01" (8) | cr3 (8) | mem_size (8) | frame_count (4) |
//   frame records: frame_no (4) + 4096 raw bytes   (resident frames only)
#pragma once

#include <cstdint>
#include <memory>

#include "util/bytes.hpp"
#include "vmm/hypervisor.hpp"

namespace mc::vmi {

/// Serializes one domain's state.
Bytes dump_domain(const vmm::Hypervisor& hypervisor, vmm::DomainId id);

/// A rehydrated dump: a private hypervisor holding exactly one domain
/// whose memory/CR3 replicate the capture.  VmiSession attaches to it like
/// to any live guest.
class DumpAnalysis {
 public:
  /// Parses `dump`; throws FormatError on a malformed blob.
  explicit DumpAnalysis(ByteView dump);

  const vmm::Hypervisor& hypervisor() const { return *hypervisor_; }
  vmm::DomainId domain_id() const { return domain_id_; }

 private:
  std::unique_ptr<vmm::Hypervisor> hypervisor_;
  vmm::DomainId domain_id_ = 0;
};

}  // namespace mc::vmi
