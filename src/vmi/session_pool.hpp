// Persistent VMI session pool — cross-scan reuse of per-domain sessions.
//
// The seed design attached a fresh VmiSession for every module extraction:
// each one pays the attach cost, rescans for the debug block, and rebuilds
// its V2P translation cache from nothing.  In steady state (a scheduler
// looping over the same guests, an IncrementalScanner polling one guest)
// none of that work changes between scans, so the pool keeps one session
// per domain alive and hands out leases.
//
// Staleness is detected, not declared: every acquire compares the domain's
// bulk-state epoch (bumped by snapshot restore / clone-into) and CR3
// against the values captured when the session was built, and rebuilds the
// session when either moved.  Guest *content* writes leave page tables
// untouched, so they correctly do not invalidate the V2P cache — the next
// read sees the new bytes through the same translations, exactly as LibVMI
// would.  Callers that know better (e.g. a test harness rewriting page
// tables in place) can force the issue with invalidate().
//
// Thread safety: acquire() returns an RAII Lease holding the per-domain
// mutex, so two threads scanning the same guest serialize on the session
// while scans of different guests proceed in parallel.  The pool itself may
// be shared freely across threads.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "vmi/session.hpp"

namespace mc::vmi {

/// Deprecated view over the registry aggregates "vmi.pool.*" — see
/// telemetry/registry.hpp.  Kept so existing callers read the same fields.
// mc-lint: allow(adhoc-stats)
struct SessionPoolStats {
  /// Sessions built from scratch (first acquire, or rebuild after
  /// staleness/invalidation).
  std::uint64_t created = 0;
  /// Acquires satisfied by an existing warm session.
  std::uint64_t reused = 0;
  /// Sessions dropped — explicit invalidate() plus automatic epoch/CR3
  /// staleness detections.
  std::uint64_t invalidated = 0;
};

class VmiSessionPool {
 public:
  /// `metrics` backs the pool's counters and every session it builds
  /// (null = the process default registry).
  explicit VmiSessionPool(const vmm::Hypervisor& hypervisor,
                          const VmiCostModel& costs = {},
                          telemetry::MetricRegistry* metrics = nullptr);

  VmiSessionPool(const VmiSessionPool&) = delete;
  VmiSessionPool& operator=(const VmiSessionPool&) = delete;

  /// Exclusive checkout of one domain's session.  Holds the per-domain
  /// lock for its lifetime; the session pointer is valid exactly that long.
  class Lease {
   public:
    Lease(Lease&&) = default;
    Lease& operator=(Lease&&) = default;

    VmiSession& session() { return *session_; }
    VmiSession* operator->() { return session_; }

   private:
    friend class VmiSessionPool;
    Lease(std::unique_lock<std::mutex> lock, VmiSession* session)
        : lock_(std::move(lock)), session_(session) {}

    std::unique_lock<std::mutex> lock_;
    VmiSession* session_;
  };

  /// Checks out `domain`'s session, rebound to charge `clock`.  Builds (and
  /// charges attach for) a fresh session on first use or when the domain's
  /// epoch/CR3 says the cached one is stale; otherwise reuses the warm
  /// session, V2P cache and all.
  Lease acquire(vmm::DomainId domain, SimClock& clock);

  /// The hypervisor's write-watch facility.  Watch ids registered through
  /// a leased session's try_watch_range outlive the lease (they live on
  /// the hypervisor), so cross-scan consumers query/rearm them here.
  vmm::WriteWatch& write_watch() const { return hypervisor_->write_watch(); }

  /// Drops the cached session for `domain` (next acquire rebuilds).
  void invalidate(vmm::DomainId domain);

  /// Drops every cached session.
  void invalidate_all();

  SessionPoolStats stats() const;

 private:
  struct Entry {
    std::mutex mutex;
    std::unique_ptr<VmiSession> session;  // guarded by `mutex`
    std::uint64_t epoch = 0;              // domain epoch at build time
    std::uint64_t cr3 = 0;                // domain CR3 at build time
  };

  const vmm::Hypervisor* hypervisor_;
  VmiCostModel costs_;
  telemetry::MetricRegistry* metrics_;  // resolved, never null

  mutable std::mutex map_mutex_;  // guards entries_ map shape
  std::map<vmm::DomainId, std::unique_ptr<Entry>> entries_;

  // Atomic registry cells ("vmi.pool.*"); bumped without map_mutex_.
  telemetry::OwnedCounter created_;
  telemetry::OwnedCounter reused_;
  telemetry::OwnedCounter invalidated_;
};

}  // namespace mc::vmi
