#include "vmi/cost_model.hpp"

// Currently header-only values; this TU anchors the library.
