#include "vmi/guest_view.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mc::vmi {

void GuestView::append(ByteView segment) {
  if (segment.empty()) {
    return;
  }
  if (!segments_.empty()) {
    ByteView& last = segments_.back();
    if (last.data() + last.size() == segment.data()) {
      last = ByteView(last.data(), last.size() + segment.size());
      size_ += segment.size();
      return;
    }
  }
  segments_.push_back(segment);
  size_ += segment.size();
}

ByteView GuestView::as_contiguous() const {
  MC_CHECK(contiguous(), "GuestView::as_contiguous on scattered view");
  return segments_.empty() ? ByteView{} : segments_.front();
}

std::uint8_t GuestView::byte_at(std::size_t off) const {
  MC_CHECK(off < size_, "GuestView::byte_at out of range");
  for (const ByteView& s : segments_) {
    if (off < s.size()) {
      return s[off];
    }
    off -= s.size();
  }
  return 0;  // unreachable: size_ equals the segment total
}

void GuestView::read_into(std::size_t off, MutableByteView out) const {
  MC_CHECK(off + out.size() <= size_, "GuestView::read_into out of range");
  std::size_t done = 0;
  for (const ByteView& s : segments_) {
    if (done == out.size()) {
      break;
    }
    if (off >= s.size()) {
      off -= s.size();
      continue;
    }
    const std::size_t take = std::min(s.size() - off, out.size() - done);
    copy_bytes(out.subspan(done, take), s.subspan(off, take));
    done += take;
    off = 0;
  }
}

GuestView GuestView::subview(std::size_t off, std::size_t len) const {
  MC_CHECK(off + len <= size_, "GuestView::subview out of range");
  GuestView out;
  for (const ByteView& s : segments_) {
    if (len == 0) {
      break;
    }
    if (off >= s.size()) {
      off -= s.size();
      continue;
    }
    const std::size_t take = std::min(s.size() - off, len);
    out.append(s.subspan(off, take));
    len -= take;
    off = 0;
  }
  return out;
}

Bytes GuestView::materialize() const {
  Bytes out(size_, 0);
  read_into(0, MutableByteView(out));
  return out;
}

}  // namespace mc::vmi
