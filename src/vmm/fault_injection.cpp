#include "vmm/fault_injection.hpp"

namespace mc::vmm {

void FaultInjector::arm(DomainId domain, const FaultProfile& profile) {
  std::lock_guard<std::mutex> lock(mutex_);
  states_.erase(domain);
  states_.emplace(domain, State(profile));
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::disarm(DomainId domain) {
  std::lock_guard<std::mutex> lock(mutex_);
  states_.erase(domain);
  // armed_ stays true while any profile remains; an empty map keeps the
  // gate open until disarm_all so per-domain disarm stays cheap — the
  // per-call lookup below simply misses.
  if (states_.empty()) {
    armed_.store(false, std::memory_order_relaxed);
  }
}

void FaultInjector::disarm_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  states_.clear();
  armed_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::should_fault_read(DomainId domain) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = states_.find(domain);
  if (it == states_.end()) {
    return false;
  }
  State& s = it->second;
  ++s.reads;
  ++stats_.reads_observed;
  bool fault = false;
  if (s.profile.fail_first_reads != 0 &&
      s.reads <= s.profile.fail_first_reads) {
    fault = true;
  } else if (s.profile.fail_after_reads != 0 &&
             s.reads > s.profile.fail_after_reads) {
    fault = true;
  } else if (s.profile.read_fault_rate > 0.0 &&
             s.rng.chance(s.profile.read_fault_rate)) {
    fault = true;
  }
  if (fault) {
    ++stats_.injected_read_faults;
  }
  return fault;
}

bool FaultInjector::should_fault_translation(DomainId domain) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = states_.find(domain);
  if (it == states_.end()) {
    return false;
  }
  State& s = it->second;
  const bool fault = s.profile.translation_fault_rate > 0.0 &&
                     s.rng.chance(s.profile.translation_fault_rate);
  if (fault) {
    ++stats_.injected_translation_faults;
  }
  return fault;
}

FaultInjector::Stats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace mc::vmm
