#include "vmm/hypervisor.hpp"

#include "telemetry/registry.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace mc::vmm {

namespace {

// Domain lifecycle is process-global state (hypervisors are shared across
// pipelines), so its telemetry lands on the process-default registry.
struct DomainCounters {
  telemetry::Counter created;
  telemetry::Counter cloned;
  telemetry::Counter destroyed;
  telemetry::Counter snapshots;
  telemetry::Counter restores;
  telemetry::Gauge live;
};

const DomainCounters& domain_counters() {
  static const DomainCounters counters = [] {
    telemetry::MetricRegistry& r = telemetry::MetricRegistry::process_default();
    return DomainCounters{r.counter("vmm.domains.created"),
                          r.counter("vmm.domains.cloned"),
                          r.counter("vmm.domains.destroyed"),
                          r.counter("vmm.domains.snapshots"),
                          r.counter("vmm.domains.restores"),
                          r.gauge("vmm.domains.live")};
  }();
  return counters;
}

}  // namespace

DomainSnapshot::DomainSnapshot(DomainId id, const Domain& source)
    : id_(id),
      state_(std::make_unique<Domain>(id, source.name(),
                                      source.memory().size())) {
  state_->copy_state_from(source);
}

Hypervisor::Hypervisor(const HardwareConfig& hardware) : hardware_(hardware) {
  ContentionParams params;
  params.virtual_cores = hardware_.virtual_cores();
  contention_ = ContentionModel(params);
}

DomainId Hypervisor::create_domain(const std::string& name,
                                   std::uint64_t memory_bytes) {
  const DomainId id = next_id_++;
  domains_.emplace(id, Domain(id, name, memory_bytes));
  domain(id).memory().attach_watch(&write_watch_, id);
  domain_counters().created.inc();
  domain_counters().live.add(1);
  log_debug("created domain %u (%s), %llu MiB", id, name.c_str(),
            static_cast<unsigned long long>(memory_bytes >> 20));
  return id;
}

DomainId Hypervisor::clone_domain(DomainId source, const std::string& name) {
  const Domain& src = domain(source);
  const DomainId id = create_domain(name, src.memory().size());
  domain(id).copy_state_from(src);
  domain_counters().cloned.inc();
  return id;
}

void Hypervisor::destroy_domain(DomainId id) {
  if (domains_.erase(id) == 0) {
    throw NotFoundError("no such domain: " + std::to_string(id));
  }
  write_watch_.drop_domain(id);
  domain_counters().destroyed.inc();
  domain_counters().live.add(-1);
}

Domain& Hypervisor::domain(DomainId id) {
  const auto it = domains_.find(id);
  if (it == domains_.end()) {
    throw NotFoundError("no such domain: " + std::to_string(id));
  }
  return it->second;
}

const Domain& Hypervisor::domain(DomainId id) const {
  const auto it = domains_.find(id);
  if (it == domains_.end()) {
    throw NotFoundError("no such domain: " + std::to_string(id));
  }
  return it->second;
}

std::vector<DomainId> Hypervisor::domain_ids() const {
  std::vector<DomainId> ids;
  ids.reserve(domains_.size());
  for (const auto& [id, dom] : domains_) {
    ids.push_back(id);
  }
  return ids;
}

double Hypervisor::total_busy_load() const {
  double total = 0.0;
  for (const auto& [id, dom] : domains_) {
    total += dom.load_level();
  }
  return total;
}

DomainSnapshot Hypervisor::snapshot(DomainId id) const {
  domain_counters().snapshots.inc();
  return DomainSnapshot(id, domain(id));
}

void Hypervisor::restore(const DomainSnapshot& snap) {
  domain(snap.domain_id()).copy_state_from(snap.state());
  domain_counters().restores.inc();
}

}  // namespace mc::vmm
