// A guest domain (Xen "DomU").
//
// Owns guest physical memory, the CR3 of the guest kernel's address space,
// and a load level used by the contention model (HeavyLoad sets it to 1.0).
#pragma once

#include <cstdint>
#include <string>

#include "vmm/phys_mem.hpp"

namespace mc::vmm {

using DomainId = std::uint32_t;

class Domain {
 public:
  Domain(DomainId id, std::string name, std::uint64_t memory_bytes);

  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;
  Domain(Domain&&) = default;
  Domain& operator=(Domain&&) = default;

  DomainId id() const { return id_; }
  const std::string& name() const { return name_; }

  PhysicalMemory& memory() { return memory_; }
  const PhysicalMemory& memory() const { return memory_; }

  /// The guest kernel's page-directory base; 0 until the guest "boots".
  std::uint64_t cr3() const { return cr3_; }
  void set_cr3(std::uint64_t cr3) { cr3_ = cr3; }

  /// 0.0 = idle, 1.0 = saturating all its vCPUs (HeavyLoad).
  double load_level() const { return load_level_; }
  void set_load_level(double level);

  /// Deep-copies memory/CR3/load from `src` (used by clone & restore).
  void copy_state_from(const Domain& src);

  /// Bulk-state generation: bumped by every copy_state_from (snapshot
  /// restore, clone-into).  Introspection caches keyed on guest layout
  /// (e.g. a VmiSessionPool's V2P caches) compare epochs to detect that a
  /// domain was wholesale replaced underneath them.
  std::uint64_t epoch() const { return epoch_; }

 private:
  DomainId id_;
  std::string name_;
  PhysicalMemory memory_;
  std::uint64_t cr3_ = 0;
  double load_level_ = 0.0;
  std::uint64_t epoch_ = 0;
};

}  // namespace mc::vmm
