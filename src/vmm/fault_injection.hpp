// Deterministic per-domain guest-fault injection.
//
// The simulator's guests never really pause, migrate or page out, so the
// fault-tolerance machinery (retry, quarantine, degraded-quorum voting)
// needs a controllable adversary.  The FaultInjector lives on the
// Hypervisor and is consulted by every VmiSession read/translation; each
// armed domain carries a FaultProfile whose decisions flow from a seeded
// mc::Xoshiro256, so a given (profile, seed, read sequence) always faults
// at exactly the same points — experiments stay bit-reproducible.
//
// Cost contract: when no domain is armed, the only work on the hot path is
// one relaxed atomic load per read/translation (the `armed()` fast gate);
// bench/bench_fault_overhead.cpp asserts the disabled path stays within 2%
// of the pre-refactor scan and that simulated costs are bit-identical.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "util/rng.hpp"
#include "vmm/domain.hpp"

namespace mc::vmm {

/// How one domain misbehaves.  Rates are per *call* (one read_va or one
/// V2P walk), not per byte.  Counter triggers compose with rates:
/// `fail_first_reads` faults the first N read calls then recovers (the
/// retry-then-succeed scenario); `fail_after_reads` lets the first N calls
/// succeed then faults every later one (the mid-sweep death scenario).
struct FaultProfile {
  double read_fault_rate = 0.0;         // P(read_va call faults)
  double translation_fault_rate = 0.0;  // P(V2P walk faults)
  std::uint64_t fail_first_reads = 0;   // fault reads 1..N, then recover
  std::uint64_t fail_after_reads = 0;   // 0 = off; fault every read > N
  std::uint64_t seed = 1;               // per-domain RNG stream
};

class FaultInjector {
 public:
  /// Injection bookkeeping is test-harness state, not production telemetry;
  /// it stays a plain struct by design.
  // mc-lint: allow(adhoc-stats)
  struct Stats {
    std::uint64_t reads_observed = 0;
    std::uint64_t injected_read_faults = 0;
    std::uint64_t injected_translation_faults = 0;
  };

  /// Arms (or re-arms, resetting counters and RNG) `domain` with `profile`.
  void arm(DomainId domain, const FaultProfile& profile);

  /// Removes `domain`'s profile; its reads succeed again.
  void disarm(DomainId domain);

  /// Removes every profile.
  void disarm_all();

  /// Fast gate: false once no domain has ever been armed since the last
  /// disarm_all — the only check the zero-fault hot path performs.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Rolls the dice for one read_va call on `domain`.  Counts the call and
  /// returns true when it must fault.  Thread-safe.
  bool should_fault_read(DomainId domain);

  /// Rolls the dice for one V2P translation on `domain`.  Thread-safe.
  bool should_fault_translation(DomainId domain);

  Stats stats() const;

 private:
  struct State {
    FaultProfile profile;
    Xoshiro256 rng;
    std::uint64_t reads = 0;

    explicit State(const FaultProfile& p) : profile(p), rng(p.seed) {}
  };

  std::atomic<bool> armed_{false};
  mutable std::mutex mutex_;
  std::unordered_map<DomainId, State> states_;
  Stats stats_;
};

}  // namespace mc::vmm
