#include "vmm/contention.hpp"

#include <algorithm>

namespace mc::vmm {

double ContentionModel::dom0_slowdown(double busy_load) const {
  const double b = std::max(0.0, busy_load);
  const double v = static_cast<double>(params_.virtual_cores);
  if (b <= v) {
    return 1.0 + params_.alpha * b;
  }
  const double over = b - v;
  return 1.0 + params_.alpha * v + params_.beta * over +
         params_.gamma * over * over;
}

}  // namespace mc::vmm
