// CPU contention model.
//
// The paper's testbed shares a quad-core HyperThreaded i7 (8 virtual cores)
// between Dom0 (where ModChecker runs) and up to 15 guests.  Figure 8 shows
// ModChecker's runtime growing nonlinearly "when the number of heavily
// loaded VMs exceeded the number of available virtual cores".
//
// We model the slowdown Dom0 experiences as a function of the aggregate
// busy load b (sum of guest load levels):
//
//   b <= V:  f(b) = 1 + alpha * b                 (shared caches, memory BW)
//   b >  V:  f(b) = 1 + alpha*V + beta*(b - V)
//                     + gamma*(b - V)^2           (CPU oversubscription)
//
// alpha produces the mild slope below the knee, beta/gamma the superlinear
// regime past it.  Defaults are calibrated so the reproduced Fig. 8 matches
// the paper's shape (knee at 8 busy VMs, roughly 3-4x total inflation at 15).
#pragma once

#include <cstdint>

namespace mc::vmm {

struct ContentionParams {
  std::uint32_t virtual_cores = 8;  // 4 physical cores, HyperThreading
  double alpha = 0.05;
  double beta = 0.25;
  double gamma = 0.06;
};

class ContentionModel {
 public:
  ContentionModel() = default;
  explicit ContentionModel(const ContentionParams& params) : params_(params) {}

  const ContentionParams& params() const { return params_; }

  /// Multiplicative slowdown applied to Dom0 work given aggregate guest
  /// busy load `busy_load` (e.g. 7 idle VMs -> ~0; 15 HeavyLoad VMs -> 15).
  double dom0_slowdown(double busy_load) const;

 private:
  ContentionParams params_{};
};

}  // namespace mc::vmm
