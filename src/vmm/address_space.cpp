#include "vmm/address_space.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mc::vmm {

namespace {
constexpr std::uint32_t pde_index(std::uint32_t va) { return va >> 22; }
constexpr std::uint32_t pte_index(std::uint32_t va) {
  return (va >> 12) & 0x3FF;
}
}  // namespace

AddressSpace::AddressSpace(PhysicalMemory& memory)
    : memory_(&memory),
      cr3_(std::uint64_t{memory.alloc_frame()} << kFrameShift) {
  // Page directory frame starts zeroed (not-present entries).
}

AddressSpace::AddressSpace(PhysicalMemory& memory, std::uint64_t cr3)
    : memory_(&memory), cr3_(cr3) {
  MC_CHECK((cr3 & (kFrameSize - 1)) == 0, "CR3 must be frame-aligned");
}

void AddressSpace::map_page(std::uint32_t va, std::uint64_t pa, bool writable) {
  MC_CHECK((va & (kFrameSize - 1)) == 0, "VA must be page-aligned");
  MC_CHECK((pa & (kFrameSize - 1)) == 0, "PA must be page-aligned");

  const std::uint64_t pde_addr = cr3_ + 4ull * pde_index(va);
  std::uint32_t pde = memory_->read_u32(pde_addr);
  std::uint64_t pt_base;
  if ((pde & kPtePresent) == 0) {
    pt_base = std::uint64_t{memory_->alloc_frame()} << kFrameShift;
    pde = static_cast<std::uint32_t>(pt_base) | kPtePresent | kPteWritable;
    memory_->write_u32(pde_addr, pde);
  } else {
    pt_base = pde & ~std::uint64_t{kFrameSize - 1};
  }

  const std::uint64_t pte_addr = pt_base + 4ull * pte_index(va);
  const std::uint32_t pte = static_cast<std::uint32_t>(pa) | kPtePresent |
                            (writable ? kPteWritable : 0u);
  memory_->write_u32(pte_addr, pte);
}

void AddressSpace::map_region(std::uint32_t va, std::uint64_t bytes,
                              bool writable) {
  MC_CHECK((va & (kFrameSize - 1)) == 0, "VA must be page-aligned");
  const auto pages = static_cast<std::uint32_t>(
      (bytes + kFrameSize - 1) >> kFrameShift);
  for (std::uint32_t p = 0; p < pages; ++p) {
    const std::uint64_t pa = std::uint64_t{memory_->alloc_frame()}
                             << kFrameShift;
    map_page(va + p * kFrameSize, pa, writable);
  }
}

std::optional<std::uint64_t> AddressSpace::translate(std::uint32_t va) const {
  const std::uint32_t pde = memory_->read_u32(cr3_ + 4ull * pde_index(va));
  if ((pde & kPtePresent) == 0) {
    return std::nullopt;
  }
  const std::uint64_t pt_base = pde & ~std::uint64_t{kFrameSize - 1};
  const std::uint32_t pte = memory_->read_u32(pt_base + 4ull * pte_index(va));
  if ((pte & kPtePresent) == 0) {
    return std::nullopt;
  }
  return (pte & ~std::uint64_t{kFrameSize - 1}) | (va & (kFrameSize - 1));
}

void AddressSpace::read_virtual(std::uint32_t va, MutableByteView out) const {
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint32_t cur = va + static_cast<std::uint32_t>(done);
    const auto pa = translate(cur);
    if (!pa) {
      throw MemoryError("read of unmapped guest VA");
    }
    const std::size_t in_page = cur & (kFrameSize - 1);
    const std::size_t take =
        std::min<std::size_t>(kFrameSize - in_page, out.size() - done);
    memory_->read(*pa, out.subspan(done, take));
    done += take;
  }
}

void AddressSpace::write_virtual(std::uint32_t va, ByteView data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const std::uint32_t cur = va + static_cast<std::uint32_t>(done);
    const auto pa = translate(cur);
    if (!pa) {
      throw MemoryError("write of unmapped guest VA");
    }
    const std::size_t in_page = cur & (kFrameSize - 1);
    const std::size_t take =
        std::min<std::size_t>(kFrameSize - in_page, data.size() - done);
    memory_->write(*pa, data.subspan(done, take));
    done += take;
  }
}

}  // namespace mc::vmm
