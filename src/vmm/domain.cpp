#include "vmm/domain.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mc::vmm {

Domain::Domain(DomainId id, std::string name, std::uint64_t memory_bytes)
    : id_(id), name_(std::move(name)), memory_(memory_bytes) {}

void Domain::set_load_level(double level) {
  MC_CHECK(level >= 0.0 && level <= 1.0, "load level must be in [0, 1]");
  load_level_ = level;
}

void Domain::copy_state_from(const Domain& src) {
  memory_.restore_from(src.memory_);
  cr3_ = src.cr3_;
  load_level_ = src.load_level_;
  ++epoch_;
}

}  // namespace mc::vmm
