#include "vmm/write_watch.hpp"

#include <algorithm>

#include "telemetry/registry.hpp"

namespace mc::vmm {

namespace {

// Like physical memory, the watch layer sits below any pipeline's choice
// of registry (one Hypervisor serves every pipeline over its guests), so
// its totals land on the process-default registry.
struct WatchCounters {
  telemetry::Counter registered;
  telemetry::Counter unregistered;
  telemetry::Counter dirty_frames;
  telemetry::Counter notifications;
  telemetry::Counter bulk_invalidations;
  telemetry::Counter rearms;
};

const WatchCounters& watch_counters() {
  static const WatchCounters counters = [] {
    telemetry::MetricRegistry& r = telemetry::MetricRegistry::process_default();
    return WatchCounters{r.counter("writewatch.registered"),
                         r.counter("writewatch.unregistered"),
                         r.counter("writewatch.dirty_frames"),
                         r.counter("writewatch.notifications"),
                         r.counter("writewatch.bulk_invalidations"),
                         r.counter("writewatch.rearms")};
  }();
  return counters;
}

}  // namespace

WriteWatch::WatchId WriteWatch::register_watch(
    DomainId domain, std::vector<std::uint32_t> frames) {
  std::lock_guard<std::mutex> lock(mutex_);
  const WatchId id = next_id_++;
  WatchSet& watch = watches_[id];
  watch.domain = domain;
  watch.frames = std::move(frames);
  watch.dirty_bits.assign(watch.frames.size(), false);
  DomainState& state = domains_[domain];
  for (std::uint32_t i = 0; i < watch.frames.size(); ++i) {
    watch.frame_index[watch.frames[i]].push_back(i);
    std::vector<WatchId>& watchers = state.frame_watchers[watch.frames[i]];
    if (std::find(watchers.begin(), watchers.end(), id) == watchers.end()) {
      watchers.push_back(id);
    }
  }
  watch_counters().registered.inc();
  return id;
}

void WriteWatch::unregister(WatchId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = watches_.find(id);
  if (it == watches_.end()) {
    return;
  }
  WatchSet& watch = it->second;
  const auto dom = domains_.find(watch.domain);
  if (dom != domains_.end()) {
    for (const auto& [frame, indices] : watch.frame_index) {
      const auto fw = dom->second.frame_watchers.find(frame);
      if (fw == dom->second.frame_watchers.end()) {
        continue;
      }
      std::erase(fw->second, id);
      if (fw->second.empty()) {
        dom->second.frame_watchers.erase(fw);
      }
    }
    if (watch.dirty_count > 0) {
      --dom->second.dirty_watches;
    }
  }
  watches_.erase(it);
  watch_counters().unregistered.inc();
}

bool WriteWatch::dirty(WatchId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = watches_.find(id);
  return it != watches_.end() && it->second.dirty_count > 0;
}

std::vector<std::uint32_t> WriteWatch::dirty_indices(WatchId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint32_t> out;
  const auto it = watches_.find(id);
  if (it == watches_.end()) {
    return out;
  }
  const WatchSet& watch = it->second;
  out.reserve(watch.dirty_count);
  for (std::uint32_t i = 0; i < watch.dirty_bits.size(); ++i) {
    if (watch.dirty_bits[i]) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<std::uint32_t> WriteWatch::watched_frames(WatchId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = watches_.find(id);
  return it == watches_.end() ? std::vector<std::uint32_t>{}
                              : it->second.frames;
}

std::uint64_t WriteWatch::generation(WatchId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = watches_.find(id);
  return it == watches_.end() ? 0 : it->second.generation;
}

void WriteWatch::rearm(WatchId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = watches_.find(id);
  if (it == watches_.end()) {
    return;
  }
  WatchSet& watch = it->second;
  if (watch.dirty_count > 0) {
    const auto dom = domains_.find(watch.domain);
    if (dom != domains_.end()) {
      --dom->second.dirty_watches;
    }
    watch.dirty_bits.assign(watch.frames.size(), false);
    watch.dirty_count = 0;
  }
  ++watch.generation;
  watch_counters().rearms.inc();
}

std::vector<std::uint32_t> WriteWatch::drain(WatchId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint32_t> out;
  const auto it = watches_.find(id);
  if (it == watches_.end()) {
    return out;
  }
  WatchSet& watch = it->second;
  out.reserve(watch.dirty_count);
  for (std::uint32_t i = 0; i < watch.dirty_bits.size(); ++i) {
    if (watch.dirty_bits[i]) {
      out.push_back(i);
    }
  }
  if (watch.dirty_count > 0) {
    const auto dom = domains_.find(watch.domain);
    if (dom != domains_.end()) {
      --dom->second.dirty_watches;
    }
    watch.dirty_bits.assign(watch.frames.size(), false);
    watch.dirty_count = 0;
  }
  ++watch.generation;
  watch_counters().rearms.inc();
  return out;
}

bool WriteWatch::domain_has_dirty_watch(DomainId domain) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = domains_.find(domain);
  return it != domains_.end() && it->second.dirty_watches > 0;
}

std::uint64_t WriteWatch::domain_write_generation(DomainId domain) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = domains_.find(domain);
  return it == domains_.end() ? 0 : it->second.write_generation;
}

void WriteWatch::subscribe(Subscriber* subscriber) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (std::find(subscribers_.begin(), subscribers_.end(), subscriber) ==
      subscribers_.end()) {
    subscribers_.push_back(subscriber);
  }
}

void WriteWatch::unsubscribe(Subscriber* subscriber) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::erase(subscribers_, subscriber);
}

void WriteWatch::mark_index_locked(WatchId id, WatchSet& watch,
                                   std::uint32_t index) {
  if (watch.dirty_bits[index]) {
    return;
  }
  watch.dirty_bits[index] = true;
  ++watch.dirty_count;
  watch_counters().dirty_frames.inc();
  if (watch.dirty_count == 1) {
    ++domains_[watch.domain].dirty_watches;
    watch_counters().notifications.inc();
    for (Subscriber* s : subscribers_) {
      s->on_watch_dirty(watch.domain, id);
    }
  }
}

void WriteWatch::notify_domain_write_locked(DomainId domain) {
  for (Subscriber* s : subscribers_) {
    s->on_domain_write(domain);
  }
}

void WriteWatch::note_write(DomainId domain, std::uint32_t first_frame,
                            std::uint32_t last_frame) {
  std::lock_guard<std::mutex> lock(mutex_);
  DomainState& state = domains_[domain];
  ++state.write_generation;
  // Only consult frame_watchers over the touched range: lower_bound makes
  // the common unwatched write O(log watched_frames).
  for (auto it = state.frame_watchers.lower_bound(first_frame);
       it != state.frame_watchers.end() && it->first <= last_frame; ++it) {
    for (const WatchId id : it->second) {
      WatchSet& watch = watches_.at(id);
      for (const std::uint32_t index : watch.frame_index.at(it->first)) {
        mark_index_locked(id, watch, index);
      }
    }
  }
  notify_domain_write_locked(domain);
}

void WriteWatch::note_bulk_invalidate(DomainId domain) {
  std::lock_guard<std::mutex> lock(mutex_);
  DomainState& state = domains_[domain];
  ++state.write_generation;
  watch_counters().bulk_invalidations.inc();
  for (auto& [id, watch] : watches_) {
    if (watch.domain != domain) {
      continue;
    }
    for (std::uint32_t i = 0; i < watch.frames.size(); ++i) {
      mark_index_locked(id, watch, i);
    }
  }
  notify_domain_write_locked(domain);
}

void WriteWatch::drop_domain(DomainId domain) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = watches_.begin(); it != watches_.end();) {
    it = it->second.domain == domain ? watches_.erase(it) : std::next(it);
  }
  domains_.erase(domain);
}

}  // namespace mc::vmm
