// The hypervisor: domain lifecycle, cloning, snapshots, contention.
//
// Stands in for Xen 4.1.2 in the paper's testbed.  The privileged Dom0 is
// not modelled as a memory-bearing domain — ModChecker simply runs in the
// host process with read access to guest memory through mc_vmi, mirroring
// how LibVMI maps DomU frames into a Dom0 process.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "vmm/contention.hpp"
#include "vmm/domain.hpp"
#include "vmm/fault_injection.hpp"
#include "vmm/write_watch.hpp"

namespace mc::vmm {

struct HardwareConfig {
  std::uint32_t physical_cores = 4;
  bool hyperthreading = true;   // i7 with HT => 8 virtual cores
  std::uint64_t host_memory = 18ull << 30;  // 18 GB, as in §V-A

  std::uint32_t virtual_cores() const {
    return physical_cores * (hyperthreading ? 2 : 1);
  }
};

/// A point-in-time copy of one domain (paper §III: "it is possible to keep
/// clean snapshots of VMs and ... the machine(s) can be reverted back").
class DomainSnapshot {
 public:
  DomainSnapshot(DomainId id, const Domain& source);

  DomainId domain_id() const { return id_; }
  const Domain& state() const { return *state_; }

 private:
  DomainId id_;
  std::unique_ptr<Domain> state_;
};

class Hypervisor {
 public:
  explicit Hypervisor(const HardwareConfig& hardware = {});

  const HardwareConfig& hardware() const { return hardware_; }
  const ContentionModel& contention() const { return contention_; }
  void set_contention(const ContentionModel& model) { contention_ = model; }

  /// Creates a fresh (empty-memory) domain; ids start at 1 ("Dom1").
  DomainId create_domain(const std::string& name, std::uint64_t memory_bytes);

  /// Clones an existing domain's full state into a new domain (how the
  /// paper instantiated 15 identical XP guests from one installation).
  DomainId clone_domain(DomainId source, const std::string& name);

  void destroy_domain(DomainId id);

  Domain& domain(DomainId id);
  const Domain& domain(DomainId id) const;
  bool has_domain(DomainId id) const { return domains_.count(id) != 0; }

  /// All live domain ids, ascending.
  std::vector<DomainId> domain_ids() const;
  std::size_t domain_count() const { return domains_.size(); }

  /// Aggregate guest busy load (input to the contention model).
  double total_busy_load() const;

  /// Slowdown Dom0 work currently experiences.
  double dom0_slowdown() const {
    return contention_.dom0_slowdown(total_busy_load());
  }

  DomainSnapshot snapshot(DomainId id) const;
  void restore(const DomainSnapshot& snap);

  /// Deterministic per-domain guest-fault injection (see
  /// fault_injection.hpp).  Mutable through a const hypervisor: the VMI
  /// layer holds `const Hypervisor*` (read-only guest access) but the
  /// injector must count reads and advance its RNG streams — observation
  /// bookkeeping, not domain state.
  FaultInjector& fault_injector() const { return fault_injector_; }

  /// The hypervisor's log-dirty facility (see write_watch.hpp).  Mutable
  /// through a const hypervisor for the same reason as the fault injector:
  /// the scan layers hold `const Hypervisor*` (read-only guest access) but
  /// registering/rearming watches is observation bookkeeping, not domain
  /// state.
  WriteWatch& write_watch() const { return write_watch_; }

 private:
  HardwareConfig hardware_;
  ContentionModel contention_;
  DomainId next_id_ = 1;
  std::map<DomainId, Domain> domains_;
  mutable FaultInjector fault_injector_;
  mutable WriteWatch write_watch_;
};

}  // namespace mc::vmm
