// WriteWatch — the hypervisor's EPT-style write-protect / dirty-bitmap
// subsystem.
//
// Real hypervisors expose log-dirty tracking (Xen's shadow log-dirty mode,
// EPT A/D bits) so a privileged consumer can ask "which guest frames were
// written since I last looked?" without re-reading them.  WriteWatch is
// that facility for the simulated vmm: consumers register a WatchSet over
// an ordered list of guest frames (for a module image: one frame per VA
// page, in page order, so a dirty index maps straight back to a byte
// offset), the physical-memory write path marks the bitmap, and a clean
// check is one O(1) dirty-count query instead of a per-frame version sweep.
//
// Contract:
//   * Per-watch dirty bitmaps are edge-triggered: a frame index stays
//     dirty until the owner calls rearm(), which also bumps the watch's
//     generation (consumers key derived caches on it).
//   * Bulk state replacement (snapshot restore / clone-into, which reach
//     PhysicalMemory::restore_from) conservatively marks EVERY index of
//     every watch on the domain dirty — the frame<->content association
//     the watch was registered under no longer holds.
//   * domain_write_generation() advances on every write to the domain
//     (watched or not) and on every bulk invalidate.  An unchanged
//     generation therefore proves the domain's memory is byte-identical
//     to the last observation — the strong "nothing can have changed"
//     signal FleetService uses to skip whole sweeps.
//   * Subscribers are notified synchronously, under the watch lock, on
//     every domain write and on each clean->dirty watch transition.
//     Callbacks must be cheap and must NOT call back into WriteWatch
//     (non-reentrant); the intended pattern is flag-setting, with the
//     real work done on the consumer's own schedule.
//
// Thread safety: all public methods are safe to call concurrently; state
// is guarded by one internal mutex.  The write path takes it once per
// guest write (writes are rare next to reads — boot-time loading happens
// before monitoring starts, and steady-state writes are the attacks the
// checker exists to catch).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "vmm/domain.hpp"

namespace mc::vmm {

class WriteWatch {
 public:
  /// Opaque watch handle; kNoWatch (0) is never issued.
  using WatchId = std::uint64_t;
  static constexpr WatchId kNoWatch = 0;

  /// Notification surface.  Both callbacks run under the WriteWatch lock:
  /// keep them cheap and never call back into WriteWatch from one.
  class Subscriber {
   public:
    virtual ~Subscriber() = default;
    /// Any write (or bulk invalidate) landed on `domain`.
    virtual void on_domain_write(DomainId domain) = 0;
    /// Watch `watch` on `domain` transitioned clean -> dirty.
    virtual void on_watch_dirty(DomainId domain, WatchId watch) = 0;
  };

  WriteWatch() = default;
  WriteWatch(const WriteWatch&) = delete;
  WriteWatch& operator=(const WriteWatch&) = delete;

  // ---- consumer side -------------------------------------------------------

  /// Registers a watch over `frames` (ordered; index i of the dirty bitmap
  /// refers to frames[i]).  The watch starts clean at generation 1.
  WatchId register_watch(DomainId domain, std::vector<std::uint32_t> frames);

  /// Drops a watch.  Unknown/expired ids are ignored (a consumer may race
  /// its own teardown against domain destruction).
  void unregister(WatchId id);

  /// O(1): has any registered frame been written since the last rearm?
  bool dirty(WatchId id) const;

  /// Dirty indices (positions into the registered frame list), ascending.
  std::vector<std::uint32_t> dirty_indices(WatchId id) const;

  /// The registered frame list, in registration order (empty for
  /// unknown/expired ids).
  std::vector<std::uint32_t> watched_frames(WatchId id) const;

  /// Bumped by every rearm (i.e. every time the owner refreshed whatever
  /// it derived from the watched frames).
  std::uint64_t generation(WatchId id) const;

  /// Clears the dirty bitmap and bumps the generation.
  void rearm(WatchId id);

  /// Atomic fetch-and-clear (Xen's SHADOW_OP_CLEAN): returns the dirty
  /// indices and rearms in one step, so no write can land between "what
  /// changed?" and "consider it handled" unobserved — writes after the
  /// drain re-mark the bitmap.
  std::vector<std::uint32_t> drain(WatchId id);

  /// True while any watch on `domain` is dirty (O(1)).
  bool domain_has_dirty_watch(DomainId domain) const;

  /// Monotonic per-domain write generation — advances on every write and
  /// every bulk invalidate, watched or not.  Equal generations between two
  /// observations prove the domain's memory did not change in between.
  std::uint64_t domain_write_generation(DomainId domain) const;

  void subscribe(Subscriber* subscriber);
  void unsubscribe(Subscriber* subscriber);

  // ---- producer side (PhysicalMemory / Hypervisor plumbing) ---------------

  /// A write touched frames [first_frame, last_frame] of `domain`.
  void note_write(DomainId domain, std::uint32_t first_frame,
                  std::uint32_t last_frame);

  /// `domain`'s memory was wholesale replaced (snapshot restore /
  /// clone-into): every watch on it goes fully dirty.
  void note_bulk_invalidate(DomainId domain);

  /// Forgets everything about `domain` (domain destruction).  Its watch
  /// ids expire; queries on them return clean/empty.
  void drop_domain(DomainId domain);

 private:
  struct WatchSet {
    DomainId domain = 0;
    std::vector<std::uint32_t> frames;
    /// frame number -> indices of `frames` holding it (a frame is almost
    /// always watched by exactly one index per set, but nothing forbids
    /// aliasing).
    std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> frame_index;
    std::vector<bool> dirty_bits;  // one per index of `frames`
    std::size_t dirty_count = 0;
    std::uint64_t generation = 1;
  };

  struct DomainState {
    /// frame number -> watches registered over it (only watched frames
    /// appear — the per-write test is one map lookup per touched frame).
    std::map<std::uint32_t, std::vector<WatchId>> frame_watchers;
    std::uint64_t write_generation = 0;
    std::size_t dirty_watches = 0;
  };

  /// Marks index `index` of `watch` dirty; fires on_watch_dirty on the
  /// clean->dirty edge.  Caller holds mutex_.
  void mark_index_locked(WatchId id, WatchSet& watch, std::uint32_t index);
  void notify_domain_write_locked(DomainId domain);

  mutable std::mutex mutex_;
  WatchId next_id_ = 1;
  std::map<WatchId, WatchSet> watches_;
  std::map<DomainId, DomainState> domains_;
  std::vector<Subscriber*> subscribers_;
};

}  // namespace mc::vmm
