#include "vmm/phys_mem.hpp"

#include <algorithm>

#include "telemetry/registry.hpp"
#include "util/error.hpp"
#include "vmm/write_watch.hpp"

namespace mc::vmm {

namespace {

// Physical memory sits below any pipeline's choice of registry (a single
// PhysicalMemory is shared by every scan of its guest), so its page-op
// totals land on the process-default registry.  Handles are copyable
// atomic-shard references; the statics are initialized once, thread-safely.
struct PhysCounters {
  telemetry::Counter reads;
  telemetry::Counter writes;
  telemetry::Counter bytes_read;
  telemetry::Counter bytes_written;
  telemetry::Counter frames_materialized;
  telemetry::Counter frame_views;
};

const PhysCounters& phys_counters() {
  static const PhysCounters counters = [] {
    telemetry::MetricRegistry& r = telemetry::MetricRegistry::process_default();
    return PhysCounters{r.counter("vmm.phys.reads"),
                        r.counter("vmm.phys.writes"),
                        r.counter("vmm.phys.bytes_read"),
                        r.counter("vmm.phys.bytes_written"),
                        r.counter("vmm.phys.frames_materialized"),
                        r.counter("vmm.phys.frame_views")};
  }();
  return counters;
}

}  // namespace

PhysicalMemory::PhysicalMemory(std::uint64_t size_bytes)
    : size_((size_bytes + kFrameSize - 1) & ~std::uint64_t{kFrameSize - 1}),
      // Frame 0 is reserved (real systems keep low memory for firmware
      // structures; it also keeps CR3 == 0 meaning "no address space").
      next_alloc_frame_(1) {
  MC_CHECK(size_ > kFrameSize, "physical memory must exceed one frame");
}

std::uint32_t PhysicalMemory::alloc_frame() { return alloc_frames(1); }

std::uint32_t PhysicalMemory::alloc_frames(std::uint32_t count) {
  MC_CHECK(count > 0, "alloc_frames(0)");
  if (std::uint64_t{next_alloc_frame_} + count > frame_count()) {
    throw MemoryError("guest physical memory exhausted");
  }
  const std::uint32_t first = next_alloc_frame_;
  next_alloc_frame_ += count;
  return first;
}

const PhysicalMemory::Frame* PhysicalMemory::frame_if_present(
    std::uint32_t frame_no) const {
  const auto it = frames_.find(frame_no);
  return it == frames_.end() ? nullptr : it->second.get();
}

PhysicalMemory::Frame& PhysicalMemory::frame_for_write(std::uint32_t frame_no) {
  auto& slot = frames_[frame_no];
  if (!slot) {
    slot = std::make_unique<Frame>();
    slot->fill(0);
    phys_counters().frames_materialized.inc();
  }
  return *slot;
}

void PhysicalMemory::check_range(std::uint64_t pa, std::uint64_t len) const {
  if (pa + len > size_) {
    throw MemoryError("physical access out of range: pa=" + std::to_string(pa) +
                      " len=" + std::to_string(len));
  }
}

void PhysicalMemory::read(std::uint64_t pa, MutableByteView out) const {
  check_range(pa, out.size());
  phys_counters().reads.inc();
  phys_counters().bytes_read.inc(out.size());
  std::size_t done = 0;
  while (done < out.size()) {
    const std::uint64_t cur = pa + done;
    const auto frame_no = static_cast<std::uint32_t>(cur >> kFrameShift);
    const std::uint32_t in_frame = static_cast<std::uint32_t>(cur & (kFrameSize - 1));
    const std::size_t take =
        std::min<std::size_t>(kFrameSize - in_frame, out.size() - done);
    if (const Frame* f = frame_if_present(frame_no)) {
      copy_bytes(out.subspan(done, take), ByteView(*f).subspan(in_frame, take));
    } else {
      std::fill_n(out.begin() + static_cast<std::ptrdiff_t>(done), take,
                  std::uint8_t{0});
    }
    done += take;
  }
}

ByteView PhysicalMemory::frame_view(std::uint32_t frame_no) const {
  check_range(std::uint64_t{frame_no} << kFrameShift, kFrameSize);
  phys_counters().frame_views.inc();
  if (const Frame* f = frame_if_present(frame_no)) {
    return ByteView(*f);
  }
  static const Frame zero_frame{};
  return ByteView(zero_frame);
}

void PhysicalMemory::write(std::uint64_t pa, ByteView data) {
  check_range(pa, data.size());
  phys_counters().writes.inc();
  phys_counters().bytes_written.inc(data.size());
  ++write_counter_;
  const auto first_frame = static_cast<std::uint32_t>(pa >> kFrameShift);
  const auto last_frame =
      static_cast<std::uint32_t>((pa + data.size() - 1) >> kFrameShift);
  if (last_frame >= frame_stamps_.size()) {
    frame_stamps_.resize(last_frame + 1, 0);
  }
  std::size_t done = 0;
  while (done < data.size()) {
    const std::uint64_t cur = pa + done;
    const auto frame_no = static_cast<std::uint32_t>(cur >> kFrameShift);
    const std::uint32_t in_frame = static_cast<std::uint32_t>(cur & (kFrameSize - 1));
    const std::size_t take =
        std::min<std::size_t>(kFrameSize - in_frame, data.size() - done);
    Frame& f = frame_for_write(frame_no);
    copy_bytes(MutableByteView(f).subspan(in_frame, take),
               data.subspan(done, take));
    frame_stamps_[frame_no] = write_counter_;
    done += take;
  }
  if (watch_ != nullptr) {
    watch_->note_write(watch_domain_, first_frame, last_frame);
  }
}

std::uint64_t PhysicalMemory::frame_version(std::uint32_t frame_no) const {
  const std::uint64_t stamped =
      frame_no < frame_stamps_.size() ? frame_stamps_[frame_no] : 0;
  return std::max(stamped, version_floor_);
}

std::uint8_t PhysicalMemory::read_u8(std::uint64_t pa) const {
  std::uint8_t b = 0;
  read(pa, MutableByteView(&b, 1));
  return b;
}

std::uint32_t PhysicalMemory::read_u32(std::uint64_t pa) const {
  std::uint8_t buf[4];
  read(pa, MutableByteView(buf, 4));
  return load_le32(ByteView(buf, 4), 0);
}

void PhysicalMemory::write_u32(std::uint64_t pa, std::uint32_t value) {
  std::uint8_t buf[4];
  store_le32(MutableByteView(buf, 4), 0, value);
  write(pa, ByteView(buf, 4));
}

PhysicalMemory PhysicalMemory::clone() const {
  // The clone backs a different domain (or a snapshot), so it does not
  // inherit the watch wiring — the hypervisor attaches clones it promotes.
  PhysicalMemory copy(size_);
  copy.next_alloc_frame_ = next_alloc_frame_;
  copy.write_counter_ = write_counter_;
  copy.version_floor_ = version_floor_;
  copy.frame_stamps_ = frame_stamps_;
  for (const auto& [frame_no, frame] : frames_) {
    copy.frames_[frame_no] = std::make_unique<Frame>(*frame);
  }
  return copy;
}

void PhysicalMemory::restore_from(const PhysicalMemory& other) {
  MC_CHECK(other.size_ == size_, "snapshot size mismatch");
  next_alloc_frame_ = other.next_alloc_frame_;
  frames_.clear();
  for (const auto& [frame_no, frame] : other.frames_) {
    frames_[frame_no] = std::make_unique<Frame>(*frame);
  }
  // A restore rewrites (conceptually) EVERY frame — including frames that
  // existed before the snapshot and are now back to zero.  Raise the
  // version floor so every frame reports a fresh version, and tell the
  // watch layer the frame<->content association it registered no longer
  // holds.
  ++write_counter_;
  version_floor_ = write_counter_;
  frame_stamps_.clear();
  if (watch_ != nullptr) {
    watch_->note_bulk_invalidate(watch_domain_);
  }
}

}  // namespace mc::vmm
