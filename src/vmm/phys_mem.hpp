// Guest physical memory.
//
// Frame-granular (4 KiB) sparse storage: frames materialize on first write,
// reads of untouched frames observe zeros — so fifteen multi-GB guests cost
// only what they actually touch (kernel area + loaded modules).  This is
// the memory the introspection layer reads page by page, exactly like
// LibVMI mapping Xen guest frames.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "util/bytes.hpp"

namespace mc::vmm {

class WriteWatch;

inline constexpr std::uint32_t kFrameSize = 4096;
inline constexpr std::uint32_t kFrameShift = 12;

class PhysicalMemory {
 public:
  /// `size_bytes` is rounded up to a whole number of frames.
  explicit PhysicalMemory(std::uint64_t size_bytes);

  PhysicalMemory(const PhysicalMemory&) = delete;
  PhysicalMemory& operator=(const PhysicalMemory&) = delete;
  PhysicalMemory(PhysicalMemory&&) = default;
  PhysicalMemory& operator=(PhysicalMemory&&) = default;

  std::uint64_t size() const { return size_; }
  std::uint32_t frame_count() const {
    return static_cast<std::uint32_t>(size_ >> kFrameShift);
  }

  /// Number of frames that have been materialized (diagnostics).
  std::size_t resident_frames() const { return frames_.size(); }

  /// Bump-allocates a fresh frame (used by the guest "kernel" for page
  /// tables and module memory).  Returns the frame number.
  std::uint32_t alloc_frame();

  /// Reserves `count` contiguous frames; returns the first frame number.
  std::uint32_t alloc_frames(std::uint32_t count);

  // ---- byte-addressed access (may cross frame boundaries) ----------------
  void read(std::uint64_t pa, MutableByteView out) const;
  void write(std::uint64_t pa, ByteView data);

  /// Borrowed view of one frame's backing storage (the zero-copy read
  /// path).  Non-resident frames all alias one shared immutable zero
  /// frame, mirroring read()'s zero-fill semantics without materializing
  /// anything.  Frames never move once materialized, so the view stays
  /// valid until restore_from() replaces the frame set — borrowers must
  /// not hold views across a snapshot restore.
  ByteView frame_view(std::uint32_t frame_no) const;

  // ---- dirty tracking ------------------------------------------------------
  // Every write stamps the touched frames with a monotonically increasing
  // version (the moral equivalent of Xen's log-dirty mode), kept in a flat
  // per-frame table.  These raw accessors are the WriteWatch subsystem's
  // substrate: scan-layer consumers register WatchSets there instead of
  // polling versions here (enforced by mc_analyze's watch-bypass rule).
  std::uint64_t write_counter() const { return write_counter_; }
  std::uint64_t frame_version(std::uint32_t frame_no) const;

  /// Wires this memory to the hypervisor's WriteWatch: every write (and
  /// every restore_from) is reported under `domain`.  Called once by the
  /// hypervisor at domain creation; snapshot-internal copies stay unwired.
  void attach_watch(WriteWatch* watch, std::uint32_t domain) {
    watch_ = watch;
    watch_domain_ = domain;
  }

  std::uint8_t read_u8(std::uint64_t pa) const;
  std::uint32_t read_u32(std::uint64_t pa) const;
  void write_u32(std::uint64_t pa, std::uint32_t value);

  /// Deep copy (VM cloning / snapshots).
  PhysicalMemory clone() const;

  /// Replaces contents with those of `other` (snapshot restore).
  void restore_from(const PhysicalMemory& other);

 private:
  using Frame = std::array<std::uint8_t, kFrameSize>;

  const Frame* frame_if_present(std::uint32_t frame_no) const;
  Frame& frame_for_write(std::uint32_t frame_no);
  void check_range(std::uint64_t pa, std::uint64_t len) const;

  std::uint64_t size_;
  std::uint32_t next_alloc_frame_;
  std::uint64_t write_counter_ = 0;
  std::uint64_t version_floor_ = 0;
  std::map<std::uint32_t, std::unique_ptr<Frame>> frames_;
  /// Flat per-frame version stamps, indexed by frame number and grown
  /// lazily to the high-water written frame (frames are bump-allocated
  /// from low numbers, so this tracks residency, not total capacity).
  /// Replaces the historical std::map — the dirty-check path reads one
  /// slot instead of paying a map find per frame.
  std::vector<std::uint64_t> frame_stamps_;
  WriteWatch* watch_ = nullptr;
  std::uint32_t watch_domain_ = 0;
};

}  // namespace mc::vmm
