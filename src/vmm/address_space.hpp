// x86-32 two-level page tables, built inside guest physical memory.
//
// The guest "kernel" maps its address space through a real page directory /
// page table hierarchy stored in guest frames.  Introspection then has to
// do what LibVMI does on Xen: read CR3, walk the directory and table in
// guest memory, and translate one page at a time.  That per-page work is
// why the paper's Module-Searcher dominates ModChecker's runtime (§V-C.1).
#pragma once

#include <cstdint>
#include <optional>

#include "vmm/phys_mem.hpp"

namespace mc::vmm {

/// Page-table entry flags (subset).
inline constexpr std::uint32_t kPtePresent = 0x001;
inline constexpr std::uint32_t kPteWritable = 0x002;

class AddressSpace {
 public:
  /// Creates a fresh address space: allocates the page directory frame.
  explicit AddressSpace(PhysicalMemory& memory);

  /// Wraps an existing address space rooted at `cr3` (no allocation).
  AddressSpace(PhysicalMemory& memory, std::uint64_t cr3);

  /// Physical address of the page directory.
  std::uint64_t cr3() const { return cr3_; }

  /// Maps virtual page `va` (4 KiB-aligned) to physical page `pa`.
  void map_page(std::uint32_t va, std::uint64_t pa, bool writable);

  /// Allocates and maps `bytes` (rounded up to pages) starting at `va`.
  void map_region(std::uint32_t va, std::uint64_t bytes, bool writable);

  /// Walks the tables; nullopt if not mapped.
  std::optional<std::uint64_t> translate(std::uint32_t va) const;

  /// Convenience: read/write through the virtual mapping.
  void read_virtual(std::uint32_t va, MutableByteView out) const;
  void write_virtual(std::uint32_t va, ByteView data);

 private:
  PhysicalMemory* memory_;
  std::uint64_t cr3_;
};

}  // namespace mc::vmm
