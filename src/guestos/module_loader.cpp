#include "guestos/module_loader.hpp"

#include "pe/constants.hpp"
#include "pe/exports.hpp"
#include "pe/imports.hpp"
#include "pe/mapper.hpp"
#include "pe/parser.hpp"
#include "pe/reloc.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace mc::guestos {

const LoadedModule& ModuleLoader::load(const std::string& module_name,
                                       ByteView pe_file) {
  MC_CHECK(find(module_name) == nullptr,
           "module already loaded: " + module_name);

  // 1. Expand file layout to memory layout.
  Bytes mapped = pe::map_image(pe_file);
  // The guest-side loader maps the raw PE itself; mc-lint: allow(format-bypass)
  const pe::ParsedImage parsed(mapped);
  const std::uint32_t preferred_base = parsed.optional_header().ImageBase;
  const std::uint32_t size_of_image = parsed.optional_header().SizeOfImage;

  // 2. Pick the actual base (randomized per VM) and map guest pages.
  const std::uint32_t base = kernel_->map_module_region(size_of_image);

  // 3. Apply base relocations: every absolute address operand gets
  //    (base - preferred_base) added — RVAs become absolute addresses.
  const auto& reloc_dir =
      parsed.optional_header().DataDirectories[pe::kDirBaseReloc];
  if (reloc_dir.VirtualAddress != 0 && reloc_dir.Size != 0) {
    const Bytes reloc_data =
        slice(mapped, reloc_dir.VirtualAddress, reloc_dir.Size);
    const auto fixups = pe::parse_base_relocations(reloc_data);
    pe::apply_relocations(mapped, fixups, base - preferred_base);
  }

  // 4. Bind imports: write the absolute VA of each imported function into
  //    its IAT slot.
  const auto& import_dir =
      parsed.optional_header().DataDirectories[pe::kDirImport];
  if (import_dir.VirtualAddress != 0) {
    for (const auto& dll :
         pe::parse_import_directory(mapped, import_dir.VirtualAddress)) {
      const LoadedModule* provider = find(dll.dll_name);
      if (provider == nullptr) {
        throw NotFoundError("unresolved import DLL '" + dll.dll_name +
                            "' while loading " + module_name);
      }
      for (std::size_t f = 0; f < dll.function_names.size(); ++f) {
        const auto it = provider->exports.find(dll.function_names[f]);
        if (it == provider->exports.end()) {
          throw NotFoundError("unresolved import " + dll.dll_name + "!" +
                              dll.function_names[f]);
        }
        store_le32(mapped, dll.iat_rvas[f], it->second);
      }
    }
  }

  // 5. Copy the relocated, bound image into guest memory.
  kernel_->address_space().write_virtual(base, mapped);

  // 6. Record exports (as absolute VAs) for later loads.
  LoadedModule record;
  record.name = module_name;
  record.base = base;
  record.size_of_image = size_of_image;
  record.entry_point = base + parsed.optional_header().AddressOfEntryPoint;
  const auto& export_dir =
      parsed.optional_header().DataDirectories[pe::kDirExport];
  if (export_dir.VirtualAddress != 0) {
    for (const auto& sym :
         pe::parse_export_directory(mapped, export_dir.VirtualAddress)) {
      record.exports[sym.name] = base + sym.rva;
    }
  }

  // 7. Link into PsLoadedModuleList.
  kernel_->insert_module_entry(module_name, base, record.entry_point,
                               size_of_image);

  log_debug("loaded %s at %08x (%u bytes, %zu exports)", module_name.c_str(),
            base, size_of_image, record.exports.size());
  loaded_.push_back(std::move(record));
  return loaded_.back();
}

void ModuleLoader::unload(const std::string& module_name) {
  if (!kernel_->unlink_module_entry(module_name)) {
    throw NotFoundError("unload: module not in loader list: " + module_name);
  }
  for (auto it = loaded_.begin(); it != loaded_.end(); ++it) {
    if (module_name_equals(it->name, module_name)) {
      loaded_.erase(it);
      return;
    }
  }
}

const LoadedModule* ModuleLoader::find(const std::string& module_name) const {
  for (const auto& m : loaded_) {
    if (module_name_equals(m.name, module_name)) {
      return &m;
    }
  }
  return nullptr;
}

}  // namespace mc::guestos
