// Guest kernel bootstrap and kernel-space services.
//
// "Boots" a domain into a Windows-XP-like state: builds the kernel address
// space (page tables in guest physical memory), plants the
// PsLoadedModuleList head, a pool allocator for loader metadata, and the
// KDBG-style debugger data block that the introspection layer scans for.
// Per-VM randomness (the seed) drives module base address assignment, so
// identical clones load the same modules at different bases — the exact
// phenomenon (Fig. 4) ModChecker's RVA adjustment exists to undo.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "guestos/winlike.hpp"
#include "util/rng.hpp"
#include "vmm/address_space.hpp"
#include "vmm/domain.hpp"

namespace mc::guestos {

struct GuestConfig {
  std::uint64_t seed = 0;  // per-VM; drives module base randomization
  /// OS build this guest runs (drives the LDR entry layout and the version
  /// id in the debug block).  Null selects the XP SP2 default.
  const GuestProfile* profile = nullptr;
  /// Kernel virtual base (XP's 2 GB split).
  std::uint32_t kernel_base = 0x80000000u;
  /// VA of the PsLoadedModuleList head (fixed per kernel build, like the
  /// real global variable).
  std::uint32_t ps_loaded_module_list_va = 0x8055A420u;
  /// Pool region for loader metadata (LDR entries, name buffers).
  std::uint32_t pool_base = 0x81000000u;
  std::uint32_t pool_size = 0x00100000u;  // 1 MiB
  /// Driver image area: bases are drawn from [lo, hi), page-aligned —
  /// matching the 0xF8xxxxxx bases seen in the paper's Fig. 4.
  std::uint32_t module_area_lo = 0xF8000000u;
  std::uint32_t module_area_hi = 0xFF000000u;
};

class GuestKernel {
 public:
  /// Boots `domain`: allocates page tables, maps the kernel globals page
  /// and pool, initializes PsLoadedModuleList and the debug block.
  GuestKernel(vmm::Domain& domain, const GuestConfig& config);

  vmm::Domain& domain() { return *domain_; }
  const vmm::Domain& domain() const { return *domain_; }
  vmm::AddressSpace& address_space() { return aspace_; }
  const vmm::AddressSpace& address_space() const { return aspace_; }
  const GuestConfig& config() const { return config_; }

  std::uint32_t ps_loaded_module_list_va() const {
    return config_.ps_loaded_module_list_va;
  }
  const GuestProfile& profile() const { return *profile_; }

  // ---- kernel pool -----------------------------------------------------------
  /// Bump-allocates `bytes` from the mapped pool region (8-byte aligned).
  std::uint32_t pool_alloc(std::uint32_t bytes);

  // ---- module memory ----------------------------------------------------------
  /// Picks a randomized, page-aligned base for a module of `image_size`
  /// bytes and maps that region.  Returns the base VA.
  std::uint32_t map_module_region(std::uint32_t image_size);

  // ---- module list -------------------------------------------------------------
  /// Appends an LDR_DATA_TABLE_ENTRY for a loaded module (list insertion at
  /// tail, fixing FLINK/BLINK of neighbours like the real loader).
  /// Returns the VA of the new entry.
  std::uint32_t insert_module_entry(const std::string& base_name,
                                    std::uint32_t dll_base,
                                    std::uint32_t entry_point,
                                    std::uint32_t size_of_image);

  /// Unlinks the entry whose BaseDllName equals `base_name` (DKOM-style
  /// unlink, also what a clean unload does).  Returns true if found.
  bool unlink_module_entry(const std::string& base_name);

  /// Reads the full module list from guest memory (host-side traversal,
  /// used by tests and the attack layer; ModChecker itself goes through
  /// mc_vmi).
  std::vector<LdrEntry> read_module_list() const;

 private:
  std::uint32_t read_u32_va(std::uint32_t va) const;
  void write_u32_va(std::uint32_t va, std::uint32_t value);
  LdrEntry read_entry(std::uint32_t entry_va) const;

  vmm::Domain* domain_;
  GuestConfig config_;
  const GuestProfile* profile_;
  vmm::AddressSpace aspace_;
  Xoshiro256 rng_;
  std::uint32_t pool_cursor_;
  std::uint32_t next_module_hint_;
};

}  // namespace mc::guestos
