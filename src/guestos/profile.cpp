#include "guestos/profile.hpp"

#include "util/error.hpp"

namespace mc::guestos {

const GuestProfile& winxp_sp2_profile() {
  static const GuestProfile profile = {
      "winxp-sp2-x86",
      0x05010200,  // 5.1 SP2
      0x50,        // entry size
      0x00,        // InLoadOrderLinks
      0x18,        // DllBase
      0x1C,        // EntryPoint
      0x20,        // SizeOfImage
      0x24,        // FullDllName
      0x2C,        // BaseDllName
      0x34,        // Flags
      0x38,        // LoadCount
  };
  return profile;
}

const GuestProfile& win2003_sp1_profile() {
  // Simulated 5.2 build: one extra LIST_ENTRY ahead of DllBase shifts the
  // tail of the structure by 8 bytes.
  static const GuestProfile profile = {
      "win2003-sp1-x86",
      0x05020100,  // 5.2 SP1
      0x58,
      0x00,
      0x20,  // DllBase
      0x24,  // EntryPoint
      0x28,  // SizeOfImage
      0x2C,  // FullDllName
      0x34,  // BaseDllName
      0x3C,  // Flags
      0x40,  // LoadCount
  };
  return profile;
}

const GuestProfile* find_profile_by_version(
    std::uint32_t version_id) noexcept {
  if (version_id == winxp_sp2_profile().version_id) {
    return &winxp_sp2_profile();
  }
  if (version_id == win2003_sp1_profile().version_id) {
    return &win2003_sp1_profile();
  }
  return nullptr;
}

const GuestProfile& profile_by_version(std::uint32_t version_id) {
  const GuestProfile* profile = find_profile_by_version(version_id);
  if (profile == nullptr) {
    throw NotFoundError("no guest profile for version id " +
                        std::to_string(version_id));
  }
  return *profile;
}

}  // namespace mc::guestos
