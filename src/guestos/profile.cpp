#include "guestos/profile.hpp"

#include "util/error.hpp"

namespace mc::guestos {

const GuestProfile& winxp_sp2_profile() {
  static const GuestProfile profile = {
      "winxp-sp2-x86",
      0x05010200,  // 5.1 SP2
      0x50,        // entry size
      0x00,        // InLoadOrderLinks
      0x18,        // DllBase
      0x1C,        // EntryPoint
      0x20,        // SizeOfImage
      0x24,        // FullDllName
      0x2C,        // BaseDllName
      0x34,        // Flags
      0x38,        // LoadCount
  };
  return profile;
}

const GuestProfile& win2003_sp1_profile() {
  // Simulated 5.2 build: one extra LIST_ENTRY ahead of DllBase shifts the
  // tail of the structure by 8 bytes.
  static const GuestProfile profile = {
      "win2003-sp1-x86",
      0x05020100,  // 5.2 SP1
      0x58,
      0x00,
      0x20,  // DllBase
      0x24,  // EntryPoint
      0x28,  // SizeOfImage
      0x2C,  // FullDllName
      0x34,  // BaseDllName
      0x3C,  // Flags
      0x40,  // LoadCount
  };
  return profile;
}

const GuestProfile& linux26_profile() {
  // The rendition of `struct module` in guestos/linuxlike.hpp: list_head
  // first, inline char[56] name, then the core-layout triple.  A Linux
  // guest plants the same introspection block as the Windows builds, just
  // with this version id, so attach-time detection is uniform.
  static const GuestProfile profile = {
      "linux26-x86-64",
      0x02061800,  // 2.6.24, encoded like the NT builds above
      0x58,        // entry size
      0x00,        // list (struct module.list leads the struct)
      0x40,        // module core base
      0x44,        // init entry point
      0x48,        // core size
      0x00,        // no full-path analogue
      0x08,        // name[] inline array
      0x4C,        // taints/flags word
      0x50,        // refcount
      true,        // names are inline char arrays
      56,          // MODULE_NAME_LEN
  };
  return profile;
}

const GuestProfile* find_profile_by_version(
    std::uint32_t version_id) noexcept {
  if (version_id == winxp_sp2_profile().version_id) {
    return &winxp_sp2_profile();
  }
  if (version_id == win2003_sp1_profile().version_id) {
    return &win2003_sp1_profile();
  }
  if (version_id == linux26_profile().version_id) {
    return &linux26_profile();
  }
  return nullptr;
}

const GuestProfile& profile_by_version(std::uint32_t version_id) {
  const GuestProfile* profile = find_profile_by_version(version_id);
  if (profile == nullptr) {
    throw NotFoundError("no guest profile for version id " +
                        std::to_string(version_id));
  }
  return *profile;
}

}  // namespace mc::guestos
