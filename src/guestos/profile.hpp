// Guest OS structure profiles.
//
// Real LibVMI reads Windows kernel structures through per-build *profiles*
// (struct member offsets change between OS versions).  ModChecker's
// assumption — "multiple VMs running the same version of the operating
// system" — makes the version visible: modules can only be cross-compared
// within a same-version pool.
//
// A profile fixes the LDR_DATA_TABLE_ENTRY layout the guest kernel writes
// and the introspection layer reads, and carries the version id planted in
// the guest's debugger data block so VMI can identify the build at attach
// time (and the orchestrator can group pools by version).
#pragma once

#include <cstdint>
#include <string>

namespace mc::guestos {

struct GuestProfile {
  std::string name;          // "winxp-sp2-x86"
  std::uint32_t version_id;  // value stored in the debug block

  // LDR_DATA_TABLE_ENTRY layout.
  std::uint32_t ldr_entry_size;
  std::uint32_t off_in_load_order_links;
  std::uint32_t off_dll_base;
  std::uint32_t off_entry_point;
  std::uint32_t off_size_of_image;
  std::uint32_t off_full_dll_name;
  std::uint32_t off_base_dll_name;
  std::uint32_t off_flags;
  std::uint32_t off_load_count;

  // Appended fields carry defaults so the positional aggregate
  // initializers of the Windows profiles stay valid.
  /// Linux-style entries store the module name as an inline char array at
  /// off_base_dll_name instead of a UNICODE_STRING descriptor.
  bool inline_names = false;
  /// Capacity of that inline array (struct module's MODULE_NAME_LEN).
  std::uint32_t inline_name_bytes = 0;
};

/// Windows XP SP2 (x86) — the paper's testbed build.
const GuestProfile& winxp_sp2_profile();

/// Windows Server 2003 SP1 (x86) — same era, shifted layout (an extra
/// pointer pair ahead of DllBase in this simulation's rendition).
const GuestProfile& win2003_sp1_profile();

/// Linux 2.6-era guest: the module list is a `struct module` chain whose
/// entries embed the name inline (char[56]); layout in guestos/linuxlike.hpp.
const GuestProfile& linux26_profile();

/// Looks a profile up by the version id found in the guest's debug block.
/// Throws VmiError-compatible NotFoundError for unknown builds.
const GuestProfile& profile_by_version(std::uint32_t version_id);

/// Non-throwing lookup: nullptr when the version id matches no known
/// build.  The fault-aware paths use this so an unrecognized guest becomes
/// a FaultRecord instead of an uncaught exception.
const GuestProfile* find_profile_by_version(std::uint32_t version_id) noexcept;

}  // namespace mc::guestos
