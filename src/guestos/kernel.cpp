#include "guestos/kernel.hpp"

#include <algorithm>

#include "guestos/linuxlike.hpp"
#include "util/error.hpp"
#include "util/utf16.hpp"
#include "vmm/phys_mem.hpp"

namespace mc::guestos {

namespace {
constexpr std::uint32_t kGlobalsPageMask = ~(vmm::kFrameSize - 1);

/// Largest BaseDllName we accept from guest memory (UTF-16 bytes).  A
/// UNICODE_STRING length is a u16, so an unclamped value lets a hostile
/// guest size a 64 KiB allocation per module entry; real driver names fit
/// comfortably under this.
constexpr std::uint16_t kMaxDllNameBytes = 2048;
}

GuestKernel::GuestKernel(vmm::Domain& domain, const GuestConfig& config)
    : domain_(&domain),
      config_(config),
      profile_(config.profile != nullptr ? config.profile
                                         : &winxp_sp2_profile()),
      aspace_(domain.memory()),
      rng_(config.seed ^ 0x9E3779B97F4A7C15ull),
      pool_cursor_(config.pool_base),
      next_module_hint_(0) {
  domain_->set_cr3(aspace_.cr3());

  // Map the kernel globals page (hosts PsLoadedModuleList and the debug
  // block) and the pool region.
  const std::uint32_t globals_page =
      config_.ps_loaded_module_list_va & kGlobalsPageMask;
  aspace_.map_region(globals_page, vmm::kFrameSize, /*writable=*/true);
  aspace_.map_region(config_.pool_base, config_.pool_size, /*writable=*/true);

  // Empty list: head points at itself.
  write_u32_va(config_.ps_loaded_module_list_va + kOffListFlink,
               config_.ps_loaded_module_list_va);
  write_u32_va(config_.ps_loaded_module_list_va + kOffListBlink,
               config_.ps_loaded_module_list_va);

  // Debugger data block in the same globals page, a little past the head.
  const std::uint32_t dbg_va = config_.ps_loaded_module_list_va + 0x40;
  write_u32_va(dbg_va + kOffDbgMagic, kDebugBlockMagic);
  write_u32_va(dbg_va + kOffDbgVersion, profile_->version_id);
  write_u32_va(dbg_va + kOffDbgPsLoadedModuleList,
               config_.ps_loaded_module_list_va);
  write_u32_va(dbg_va + kOffDbgKernelBase, config_.kernel_base);
}

std::uint32_t GuestKernel::read_u32_va(std::uint32_t va) const {
  std::uint8_t buf[4];
  aspace_.read_virtual(va, MutableByteView(buf, 4));
  return load_le32(ByteView(buf, 4), 0);
}

void GuestKernel::write_u32_va(std::uint32_t va, std::uint32_t value) {
  std::uint8_t buf[4];
  store_le32(MutableByteView(buf, 4), 0, value);
  aspace_.write_virtual(va, ByteView(buf, 4));
}

std::uint32_t GuestKernel::pool_alloc(std::uint32_t bytes) {
  const std::uint32_t aligned = (pool_cursor_ + 7u) & ~7u;
  if (aligned + bytes > config_.pool_base + config_.pool_size) {
    throw MemoryError("guest kernel pool exhausted");
  }
  pool_cursor_ = aligned + bytes;
  return aligned;
}

std::uint32_t GuestKernel::map_module_region(std::uint32_t image_size) {
  // Randomized, page-aligned base in the driver area.  A simple linear
  // probe from a random hint avoids overlaps without tracking a full map:
  // bases are far apart relative to image sizes.
  const std::uint32_t span = config_.module_area_hi - config_.module_area_lo;
  const std::uint32_t pages_span = span >> vmm::kFrameShift;
  std::uint32_t base;
  if (next_module_hint_ == 0) {
    base = config_.module_area_lo +
           (static_cast<std::uint32_t>(rng_.below(pages_span / 2))
            << vmm::kFrameShift);
  } else {
    // Subsequent modules: random gap after the previous one (keeps load
    // order influence, like a real boot).
    const std::uint32_t gap = static_cast<std::uint32_t>(
        rng_.range(4, 64)) << vmm::kFrameShift;
    base = next_module_hint_ + gap;
  }
  MC_CHECK(base + image_size < config_.module_area_hi,
           "driver area exhausted");
  aspace_.map_region(base, image_size, /*writable=*/true);
  next_module_hint_ =
      (base + image_size + vmm::kFrameSize - 1) & kGlobalsPageMask;
  return base;
}

std::uint32_t GuestKernel::insert_module_entry(const std::string& base_name,
                                               std::uint32_t dll_base,
                                               std::uint32_t entry_point,
                                               std::uint32_t size_of_image) {
  if (profile_->inline_names) {
    // Linux-style entry: the name lives inside the record, so no pool name
    // buffers; the tail insertion below is the same list surgery.
    const std::uint32_t entry_va = pool_alloc(profile_->ldr_entry_size);
    const std::uint32_t head = config_.ps_loaded_module_list_va;
    const std::uint32_t old_tail = read_u32_va(head + kOffListBlink);
    const Bytes entry =
        encode_module_entry(*profile_, /*next=*/head, /*prev=*/old_tail,
                            dll_base, entry_point, size_of_image, base_name);
    aspace_.write_virtual(entry_va, entry);
    write_u32_va(old_tail + kOffListFlink, entry_va);
    write_u32_va(head + kOffListBlink, entry_va);
    return entry_va;
  }

  // Name buffers in pool.
  const Bytes base_utf16 = ascii_to_utf16le(base_name);
  const std::string full_name = "\\SystemRoot\\System32\\drivers\\" + base_name;
  const Bytes full_utf16 = ascii_to_utf16le(full_name);

  const std::uint32_t base_name_va =
      pool_alloc(static_cast<std::uint32_t>(base_utf16.size()) + 2);
  aspace_.write_virtual(base_name_va, base_utf16);
  const std::uint32_t full_name_va =
      pool_alloc(static_cast<std::uint32_t>(full_utf16.size()) + 2);
  aspace_.write_virtual(full_name_va, full_utf16);

  const std::uint32_t entry_va = pool_alloc(profile_->ldr_entry_size);

  // Tail insertion: new entry between head->Blink and head.
  const std::uint32_t head = config_.ps_loaded_module_list_va;
  const std::uint32_t old_tail = read_u32_va(head + kOffListBlink);

  const Bytes entry = encode_ldr_entry(
      *profile_,
      /*flink=*/head, /*blink=*/old_tail, dll_base, entry_point, size_of_image,
      full_name_va, static_cast<std::uint16_t>(full_utf16.size()),
      base_name_va, static_cast<std::uint16_t>(base_utf16.size()));
  aspace_.write_virtual(entry_va, entry);

  write_u32_va(old_tail + kOffListFlink, entry_va);
  write_u32_va(head + kOffListBlink, entry_va);
  return entry_va;
}

LdrEntry GuestKernel::read_entry(std::uint32_t entry_va) const {
  Bytes raw(profile_->ldr_entry_size, 0);
  aspace_.read_virtual(entry_va, raw);

  LdrEntry e;
  e.entry_va = entry_va;
  e.flink = load_le32(raw, profile_->off_in_load_order_links + kOffListFlink);
  e.blink = load_le32(raw, profile_->off_in_load_order_links + kOffListBlink);
  e.dll_base = load_le32(raw, profile_->off_dll_base);
  e.entry_point = load_le32(raw, profile_->off_entry_point);
  e.size_of_image = load_le32(raw, profile_->off_size_of_image);

  if (profile_->inline_names) {
    // Inline char array: ASCII up to the first NUL.
    const auto begin =
        raw.begin() + static_cast<std::ptrdiff_t>(profile_->off_base_dll_name);
    const auto end = begin + profile_->inline_name_bytes;
    e.base_dll_name.assign(begin, std::find(begin, end, std::uint8_t{0}));
    return e;
  }
  const std::uint16_t name_len =
      load_le16(raw, profile_->off_base_dll_name + kOffUsLength);
  MC_CHECK(name_len <= kMaxDllNameBytes,
           "guest BaseDllName length out of bounds");
  const std::uint32_t name_va =
      load_le32(raw, profile_->off_base_dll_name + kOffUsBuffer);
  Bytes name_raw(name_len, 0);
  aspace_.read_virtual(name_va, name_raw);
  e.base_dll_name = utf16le_to_ascii(name_raw);
  return e;
}

std::vector<LdrEntry> GuestKernel::read_module_list() const {
  std::vector<LdrEntry> entries;
  const std::uint32_t head = config_.ps_loaded_module_list_va;
  std::uint32_t cur = read_u32_va(head + kOffListFlink);
  while (cur != head) {
    entries.push_back(read_entry(cur));
    cur = entries.back().flink;
    MC_CHECK(entries.size() < 4096, "module list cycle suspected");
  }
  return entries;
}

bool GuestKernel::unlink_module_entry(const std::string& base_name) {
  for (const LdrEntry& e : read_module_list()) {
    if (module_name_equals(e.base_dll_name, base_name)) {
      // Classic list unlink: predecessor->Flink = successor,
      // successor->Blink = predecessor.
      write_u32_va(e.blink + kOffListFlink, e.flink);
      write_u32_va(e.flink + kOffListBlink, e.blink);
      return true;
    }
  }
  return false;
}

}  // namespace mc::guestos
