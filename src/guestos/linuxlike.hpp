// Linux-like kernel structure layouts (2.6-era `struct module` rendition).
//
// The Linux analogue of winlike.hpp: the guest keeps its loaded modules on
// a circular doubly linked list of `struct module` records (the `modules`
// list the real kernel exports to /proc/modules), and the Module-Searcher
// walks it through introspection exactly like the Windows loader list.
//
// The rendition keeps the fields ModChecker needs, at fixed offsets (the
// linux26_profile() layout):
//
//   0x00  list.next            (list_head — next aliases FLINK)
//   0x04  list.prev            (prev aliases BLINK)
//   0x08  name[56]             inline NUL-padded char array
//   0x40  core base            (module_core / core_layout.base)
//   0x44  init entry           (init VA)
//   0x48  core size            (core_layout.size — the mapped image)
//   0x4C  taints               (flags word)
//   0x50  refcount
//   0x58  (entry size)
//
// Two deliberate simplifications, same spirit as winlike: pointers are
// 32-bit guest VAs (the vmm stack is u32; the 64-bit kernel-space view is
// recovered by OR-ing elf::kKernelBias), and list links point at the entry
// head rather than at an interior list_head (off_in_load_order_links = 0
// makes both views identical anyway).
#pragma once

#include <cstdint>
#include <string>

#include "guestos/profile.hpp"
#include "util/bytes.hpp"

namespace mc::guestos {

// ---- struct module (rendition) ------------------------------------------------
inline constexpr std::uint32_t kOffModList = 0x00;
inline constexpr std::uint32_t kOffModName = 0x08;
inline constexpr std::uint32_t kModuleNameLen = 56;  // MODULE_NAME_LEN
inline constexpr std::uint32_t kOffModCoreBase = 0x40;
inline constexpr std::uint32_t kOffModInit = 0x44;
inline constexpr std::uint32_t kOffModCoreSize = 0x48;
inline constexpr std::uint32_t kOffModTaints = 0x4C;
inline constexpr std::uint32_t kOffModRefcnt = 0x50;
inline constexpr std::uint32_t kModEntrySize = 0x58;

/// Serializes one module-list entry (layout per `profile`, which must be
/// an inline-name profile).  `next`/`prev` are the list links; the name is
/// NUL-padded into the inline array and silently truncated at capacity
/// like the real loader's strscpy.
Bytes encode_module_entry(const GuestProfile& profile, std::uint32_t next,
                          std::uint32_t prev, std::uint32_t core_base,
                          std::uint32_t init_entry, std::uint32_t core_size,
                          const std::string& name);

}  // namespace mc::guestos
