// Windows-like kernel structure layouts (32-bit XP flavour).
//
// These are the byte layouts the paper's Module-Searcher consumes through
// introspection (Fig. 2): the PsLoadedModuleList LIST_ENTRY head and the
// doubly linked LDR_DATA_TABLE_ENTRY records with FLINK/BLINK pointers,
// BaseDllName (a UNICODE_STRING) and DllBase.  Offsets follow the real
// Windows XP SP2 structure layout.
#pragma once

#include <cstdint>
#include <string>

#include "guestos/profile.hpp"
#include "util/bytes.hpp"

namespace mc::guestos {

// ---- LIST_ENTRY --------------------------------------------------------------
inline constexpr std::uint32_t kListEntrySize = 8;   // Flink, Blink
inline constexpr std::uint32_t kOffListFlink = 0;
inline constexpr std::uint32_t kOffListBlink = 4;

// ---- UNICODE_STRING -----------------------------------------------------------
inline constexpr std::uint32_t kUnicodeStringSize = 8;
inline constexpr std::uint32_t kOffUsLength = 0;      // u16, bytes (no NUL)
inline constexpr std::uint32_t kOffUsMaxLength = 2;   // u16
inline constexpr std::uint32_t kOffUsBuffer = 4;      // u32 VA of UTF-16LE

// ---- LDR_DATA_TABLE_ENTRY (XP SP2, 32-bit) --------------------------------------
// These constants are the XP SP2 layout — the values of
// winxp_sp2_profile().  Version-aware code (the guest kernel, the
// searcher) goes through a GuestProfile instead; the constants remain for
// XP-only call sites and tests.
inline constexpr std::uint32_t kOffInLoadOrderLinks = 0x00;
inline constexpr std::uint32_t kOffInMemoryOrderLinks = 0x08;
inline constexpr std::uint32_t kOffInInitOrderLinks = 0x10;
inline constexpr std::uint32_t kOffDllBase = 0x18;
inline constexpr std::uint32_t kOffEntryPoint = 0x1C;
inline constexpr std::uint32_t kOffSizeOfImage = 0x20;
inline constexpr std::uint32_t kOffFullDllName = 0x24;
inline constexpr std::uint32_t kOffBaseDllName = 0x2C;
inline constexpr std::uint32_t kOffFlags = 0x34;
inline constexpr std::uint32_t kOffLoadCount = 0x38;  // u16
inline constexpr std::uint32_t kLdrEntrySize = 0x50;

// ---- debugger data block ----------------------------------------------------------
// Real LibVMI locates PsLoadedModuleList by scanning guest physical memory
// for the KDBG ("KDBG" tagged) debugger data block.  Our guest kernel
// plants an equivalent block; mc_vmi finds it the same way.
inline constexpr std::uint32_t kDebugBlockMagic = 0x4742444Bu;  // "KDBG" LE
inline constexpr std::uint32_t kOffDbgMagic = 0x0;
inline constexpr std::uint32_t kOffDbgVersion = 0x4;  // GuestProfile id
inline constexpr std::uint32_t kOffDbgPsLoadedModuleList = 0x8;
inline constexpr std::uint32_t kOffDbgKernelBase = 0xC;
inline constexpr std::uint32_t kDebugBlockSize = 0x10;

/// Host-side decoded view of one LDR_DATA_TABLE_ENTRY.
struct LdrEntry {
  std::uint32_t entry_va = 0;   // VA of the LDR_DATA_TABLE_ENTRY itself
  std::uint32_t flink = 0;
  std::uint32_t blink = 0;
  std::uint32_t dll_base = 0;
  std::uint32_t entry_point = 0;
  std::uint32_t size_of_image = 0;
  std::string base_dll_name;    // decoded from the UNICODE_STRING
};

/// Serializes an LDR_DATA_TABLE_ENTRY (layout per `profile`).
/// `base_name_va`/`base_name_len` describe the UTF-16LE name buffer;
/// `full_name_va`/`full_name_len` the full path buffer.
Bytes encode_ldr_entry(const GuestProfile& profile, std::uint32_t flink,
                       std::uint32_t blink, std::uint32_t dll_base,
                       std::uint32_t entry_point, std::uint32_t size_of_image,
                       std::uint32_t full_name_va, std::uint16_t full_name_len,
                       std::uint32_t base_name_va,
                       std::uint16_t base_name_len);

/// Case-insensitive ASCII comparison (module names on Windows are
/// case-insensitive).
bool module_name_equals(const std::string& a, const std::string& b);

}  // namespace mc::guestos
