#include "guestos/ko_loader.hpp"

#include "elf/loader.hpp"
#include "elf/parser.hpp"  // mc-lint: allow(format-bypass)
#include "guestos/winlike.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

// The parser use above is the guest loader's, not the checking pipeline's:
// like module_loader.cpp on the PE side, the simulated insmod must walk the
// image it is loading.

namespace mc::guestos {

KoLoader::KoLoader(GuestKernel& kernel) : kernel_(&kernel) {
  MC_CHECK(kernel.profile().inline_names,
           "KoLoader requires a Linux (inline-name) guest profile");
}

const LoadedKo& KoLoader::load(const std::string& module_name,
                               ByteView ko_file) {
  MC_CHECK(find(module_name) == nullptr,
           "module already loaded: " + module_name);

  // 1. The file is already in mapped layout; its size is the image size.
  const auto size_of_image = static_cast<std::uint32_t>(ko_file.size());

  // 2. Pick the actual base (randomized per VM) and map guest pages.
  const std::uint32_t base = kernel_->map_module_region(size_of_image);

  // 3. Apply Rela sections: every absolute slot receives the biased
  //    64-bit kernel address of its symbol — RVAs become absolute.
  const Bytes image = elf::load_ko(ko_file, base);

  // 4. Copy the relocated image into guest memory.
  kernel_->address_space().write_virtual(base, image);

  // 5. Link the `struct module` record onto the modules list.  The init
  //    entry points at the start of .text when present.
  LoadedKo record;
  record.name = module_name;
  record.base = base;
  record.size_of_image = size_of_image;
  const elf::ElfImage parsed{ByteView(image)};  // mc-lint: allow(format-bypass)
  const elf::Elf64Shdr* text = parsed.find_section(".text");
  record.init_entry =
      text != nullptr ? base + static_cast<std::uint32_t>(text->sh_addr) : base;
  kernel_->insert_module_entry(module_name, base, record.init_entry,
                               size_of_image);

  log_debug("loaded %s at %08x (%u bytes)", module_name.c_str(), base,
            size_of_image);
  loaded_.push_back(std::move(record));
  return loaded_.back();
}

void KoLoader::unload(const std::string& module_name) {
  if (!kernel_->unlink_module_entry(module_name)) {
    throw NotFoundError("unload: module not in modules list: " + module_name);
  }
  for (auto it = loaded_.begin(); it != loaded_.end(); ++it) {
    if (module_name_equals(it->name, module_name)) {
      loaded_.erase(it);
      return;
    }
  }
}

const LoadedKo* KoLoader::find(const std::string& module_name) const {
  for (const auto& m : loaded_) {
    if (module_name_equals(m.name, module_name)) {
      return &m;
    }
  }
  return nullptr;
}

}  // namespace mc::guestos
