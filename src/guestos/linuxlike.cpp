#include "guestos/linuxlike.hpp"

#include <algorithm>

#include "guestos/winlike.hpp"
#include "util/error.hpp"

namespace mc::guestos {

Bytes encode_module_entry(const GuestProfile& profile, std::uint32_t next,
                          std::uint32_t prev, std::uint32_t core_base,
                          std::uint32_t init_entry, std::uint32_t core_size,
                          const std::string& name) {
  MC_CHECK(profile.inline_names, "profile does not use inline names");
  Bytes out(profile.ldr_entry_size, 0);
  store_le32(out, profile.off_in_load_order_links + kOffListFlink, next);
  store_le32(out, profile.off_in_load_order_links + kOffListBlink, prev);
  const std::size_t copy =
      std::min<std::size_t>(name.size(), profile.inline_name_bytes - 1);
  copy_bytes(MutableByteView(out).subspan(profile.off_base_dll_name,
                                          profile.inline_name_bytes),
             as_bytes(name).first(copy));
  store_le32(out, profile.off_dll_base, core_base);
  store_le32(out, profile.off_entry_point, init_entry);
  store_le32(out, profile.off_size_of_image, core_size);
  store_le32(out, profile.off_flags, 0);  // untainted
  store_le16(out, profile.off_load_count, 1);
  return out;
}

}  // namespace mc::guestos
