// Linux kernel-module loader (the guest side of the ELF story).
//
// Simulates what a Linux kernel does at insmod time (the exact analogue of
// module_loader.hpp's PE path): map the .ko image at an available base,
// *replace section-relative references with absolute kernel addresses* by
// applying its Rela sections, copy the relocated image into guest memory,
// and link a `struct module` record onto the modules list.
//
// Because each VM draws different bases, the same module's executable
// bytes differ across VMs afterwards — the divergence ModChecker's ELF64
// fixup policy normalizes pairwise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "guestos/kernel.hpp"
#include "util/bytes.hpp"

namespace mc::guestos {

/// Host-side record of one loaded .ko (the source of truth lives in guest
/// memory; this mirrors it for bookkeeping).
struct LoadedKo {
  std::string name;
  std::uint32_t base = 0;
  std::uint32_t size_of_image = 0;
  std::uint32_t init_entry = 0;  // VA
};

class KoLoader {
 public:
  /// `kernel` must run an inline-name (Linux) profile.
  explicit KoLoader(GuestKernel& kernel);

  /// Loads a mapped-layout .ko file: picks a randomized base, applies the
  /// image's Rela sections for that base, copies it into guest memory and
  /// links the module-list entry.  Returns the loaded-module record.
  const LoadedKo& load(const std::string& module_name, ByteView ko_file);

  /// Unloads a module: unlinks its list entry (lazy unload; pages stay).
  void unload(const std::string& module_name);

  const std::vector<LoadedKo>& loaded() const { return loaded_; }

  /// Finds a loaded module by name; nullptr if absent.
  const LoadedKo* find(const std::string& module_name) const;

 private:
  GuestKernel* kernel_;
  std::vector<LoadedKo> loaded_;
};

}  // namespace mc::guestos
