// Kernel module loader (the guest side of the story).
//
// Simulates what the Windows kernel loader does when a driver is loaded
// (paper §I): map the PE file into memory at an available base, *replace
// relative virtual addresses with absolute addresses* by applying the
// image's base relocations, bind imports against already-loaded modules'
// export tables, and link an LDR_DATA_TABLE_ENTRY into PsLoadedModuleList.
//
// Because each VM draws different bases, the same module's executable bytes
// differ across VMs afterwards — the divergence ModChecker normalizes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "guestos/kernel.hpp"
#include "util/bytes.hpp"

namespace mc::guestos {

/// Host-side record of one loaded module (the source of truth lives in
/// guest memory; this mirrors it for loader bookkeeping).
struct LoadedModule {
  std::string name;
  std::uint32_t base = 0;
  std::uint32_t size_of_image = 0;
  std::uint32_t entry_point = 0;  // VA
  /// Exported symbols resolved to absolute VAs (for binding later loads).
  std::map<std::string, std::uint32_t> exports;
};

class ModuleLoader {
 public:
  explicit ModuleLoader(GuestKernel& kernel) : kernel_(&kernel) {}

  /// Loads a PE file image into the guest.  Steps: map to memory layout,
  /// pick a randomized base, apply .reloc fixups for the base delta, bind
  /// IAT slots against previously loaded modules, copy into guest memory,
  /// and link the loader list entry.  Returns the loaded-module record.
  ///
  /// Unresolved imports throw NotFoundError (load order matters, as in the
  /// real kernel).
  const LoadedModule& load(const std::string& module_name, ByteView pe_file);

  /// Unloads a module: unlinks its list entry.  (Image pages are left in
  /// place, like a lazy unload; nothing in the checker depends on them.)
  void unload(const std::string& module_name);

  const std::vector<LoadedModule>& loaded() const { return loaded_; }

  /// Finds a loaded module by (case-insensitive) name; nullptr if absent.
  const LoadedModule* find(const std::string& module_name) const;

 private:
  GuestKernel* kernel_;
  std::vector<LoadedModule> loaded_;
};

}  // namespace mc::guestos
