#include "guestos/winlike.hpp"

#include <cctype>

namespace mc::guestos {

Bytes encode_ldr_entry(const GuestProfile& profile, std::uint32_t flink,
                       std::uint32_t blink, std::uint32_t dll_base,
                       std::uint32_t entry_point, std::uint32_t size_of_image,
                       std::uint32_t full_name_va, std::uint16_t full_name_len,
                       std::uint32_t base_name_va,
                       std::uint16_t base_name_len) {
  Bytes out(profile.ldr_entry_size, 0);
  store_le32(out, profile.off_in_load_order_links + kOffListFlink, flink);
  store_le32(out, profile.off_in_load_order_links + kOffListBlink, blink);
  // InMemoryOrderLinks / InInitializationOrderLinks are left null; the
  // searcher (like the paper's) traverses the load-order list only.
  store_le32(out, profile.off_dll_base, dll_base);
  store_le32(out, profile.off_entry_point, entry_point);
  store_le32(out, profile.off_size_of_image, size_of_image);
  store_le16(out, profile.off_full_dll_name + kOffUsLength, full_name_len);
  store_le16(out, profile.off_full_dll_name + kOffUsMaxLength, full_name_len);
  store_le32(out, profile.off_full_dll_name + kOffUsBuffer, full_name_va);
  store_le16(out, profile.off_base_dll_name + kOffUsLength, base_name_len);
  store_le16(out, profile.off_base_dll_name + kOffUsMaxLength, base_name_len);
  store_le32(out, profile.off_base_dll_name + kOffUsBuffer, base_name_va);
  store_le32(out, profile.off_flags, 0x00004000);  // LDRP_ENTRY_PROCESSED
  store_le16(out, profile.off_load_count, 1);
  return out;
}

bool module_name_equals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace mc::guestos
