// CRC-32 (IEEE 802.3 polynomial, reflected).
//
// Used as a cheap non-cryptographic checksum: the PE optional header's
// CheckSum field and fast pre-filters in the integrity checker.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace mc::crypto {

/// Computes CRC-32 of `data`, continuing from `seed` (pass 0 to start).
std::uint32_t crc32(ByteView data, std::uint32_t seed = 0);

}  // namespace mc::crypto
