#include "crypto/md5.hpp"

#include <algorithm>
#include <iterator>

#include "util/wordload.hpp"

namespace mc::crypto {

namespace {

constexpr std::uint32_t kInit[4] = {0x67452301u, 0xefcdab89u, 0x98badcfeu,
                                    0x10325476u};

// Per-round shift amounts (RFC 1321 §3.4).
constexpr int kShift[64] = {
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
    5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20, 5, 9,  14, 20,
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21};

// K[i] = floor(2^32 * |sin(i + 1)|).
constexpr std::uint32_t kSine[64] = {
    0xd76aa478u, 0xe8c7b756u, 0x242070dbu, 0xc1bdceeeu, 0xf57c0fafu,
    0x4787c62au, 0xa8304613u, 0xfd469501u, 0x698098d8u, 0x8b44f7afu,
    0xffff5bb1u, 0x895cd7beu, 0x6b901122u, 0xfd987193u, 0xa679438eu,
    0x49b40821u, 0xf61e2562u, 0xc040b340u, 0x265e5a51u, 0xe9b6c7aau,
    0xd62f105du, 0x02441453u, 0xd8a1e681u, 0xe7d3fbc8u, 0x21e1cde6u,
    0xc33707d6u, 0xf4d50d87u, 0x455a14edu, 0xa9e3e905u, 0xfcefa3f8u,
    0x676f02d9u, 0x8d2a4c8au, 0xfffa3942u, 0x8771f681u, 0x6d9d6122u,
    0xfde5380cu, 0xa4beea44u, 0x4bdecfa9u, 0xf6bb4b60u, 0xbebfbc70u,
    0x289b7ec6u, 0xeaa127fau, 0xd4ef3085u, 0x04881d05u, 0xd9d4d039u,
    0xe6db99e5u, 0x1fa27cf8u, 0xc4ac5665u, 0xf4292244u, 0x432aff97u,
    0xab9423a7u, 0xfc93a039u, 0x655b59c3u, 0x8f0ccc92u, 0xffeff47du,
    0x85845dd1u, 0x6fa87e4fu, 0xfe2ce6e0u, 0xa3014314u, 0x4e0811a1u,
    0xf7537e82u, 0xbd3af235u, 0x2ad7d2bbu, 0xeb86d391u};

constexpr std::uint32_t rotl(std::uint32_t x, int s) {
  return (x << s) | (x >> (32 - s));
}

}  // namespace

void Md5::reset() {
  std::copy(std::begin(kInit), std::end(kInit), state_);
  total_bytes_ = 0;
  buffered_ = 0;
}

void Md5::process_block(const std::uint8_t* block) {
  std::uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = load_le32_word(block + 4 * i);
  }

  std::uint32_t a = state_[0];
  std::uint32_t b = state_[1];
  std::uint32_t c = state_[2];
  std::uint32_t d = state_[3];

  for (int i = 0; i < 64; ++i) {
    std::uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) & 15;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) & 15;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) & 15;
    }
    const std::uint32_t tmp = d;
    d = c;
    c = b;
    b = b + rotl(a + f + kSine[i] + m[g], kShift[i]);
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
}

void Md5::update(ByteView data) {
  total_bytes_ += data.size();
  std::size_t offset = 0;

  if (buffered_ != 0) {
    const std::size_t take = std::min<std::size_t>(64 - buffered_, data.size());
    copy_bytes(MutableByteView(buffer_).subspan(buffered_), data.first(take));
    buffered_ += take;
    offset += take;
    if (buffered_ == 64) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }

  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }

  if (offset < data.size()) {
    copy_bytes(MutableByteView(buffer_), data.subspan(offset));
    buffered_ = data.size() - offset;
  }
}

Digest Md5::finish() {
  const std::uint64_t bit_length = total_bytes_ * 8;

  // Pad: 0x80 then zeros until 56 mod 64, then the 64-bit LE bit length.
  static constexpr std::uint8_t kPad[64] = {0x80};
  const std::size_t pad_len =
      (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  update(ByteView(kPad, pad_len));

  std::uint8_t length_le[8];
  for (int i = 0; i < 8; ++i) {
    length_le[i] = static_cast<std::uint8_t>((bit_length >> (8 * i)) & 0xFF);
  }
  update(ByteView(length_le, 8));

  std::uint8_t out[kDigestBytes];
  for (int i = 0; i < 4; ++i) {
    out[4 * i + 0] = static_cast<std::uint8_t>(state_[i] & 0xFF);
    out[4 * i + 1] = static_cast<std::uint8_t>((state_[i] >> 8) & 0xFF);
    out[4 * i + 2] = static_cast<std::uint8_t>((state_[i] >> 16) & 0xFF);
    out[4 * i + 3] = static_cast<std::uint8_t>((state_[i] >> 24) & 0xFF);
  }
  const Digest digest(out, kDigestBytes);
  reset();
  return digest;
}

}  // namespace mc::crypto
