// SHA-1 (FIPS 180-4), implemented from scratch.
//
// Offered as an alternate digest for the integrity checker (the paper uses
// MD5; SHA-1 is what several signed-driver schemes of the era used).
#pragma once

#include <cstdint>

#include "crypto/digest.hpp"
#include "util/bytes.hpp"

namespace mc::crypto {

class Sha1 {
 public:
  static constexpr std::size_t kDigestBytes = 20;

  Sha1() { reset(); }

  void reset();
  void update(ByteView data);
  Digest finish();

  static Digest hash(ByteView data) {
    Sha1 h;
    h.update(data);
    return h.finish();
  }

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[5];
  std::uint64_t total_bytes_;
  std::uint8_t buffer_[64];
  std::size_t buffered_;
};

}  // namespace mc::crypto
