// SHA-256 (FIPS 180-4), implemented from scratch.
//
// The hardened-mode digest for the integrity checker (collision-resistant,
// unlike the paper's MD5).
#pragma once

#include <cstdint>

#include "crypto/digest.hpp"
#include "util/bytes.hpp"

namespace mc::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestBytes = 32;

  Sha256() { reset(); }

  void reset();
  void update(ByteView data);
  Digest finish();

  static Digest hash(ByteView data) {
    Sha256 h;
    h.update(data);
    return h.finish();
  }

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint64_t total_bytes_;
  std::uint8_t buffer_[64];
  std::size_t buffered_;
};

}  // namespace mc::crypto
