#include "crypto/digest.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mc::crypto {

namespace {
int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw FormatError("invalid hex digit in digest string");
}
}  // namespace

Digest::Digest(const std::uint8_t* data, std::size_t size) : size_(size) {
  MC_CHECK(size <= kMaxBytes, "digest too large");
  std::copy_n(data, size, data_.begin());
}

Digest Digest::from_hex(const std::string& hex) {
  if (hex.size() % 2 != 0 || hex.size() / 2 > kMaxBytes) {
    throw FormatError("digest hex string has invalid length");
  }
  Digest d;
  d.size_ = hex.size() / 2;
  for (std::size_t i = 0; i < d.size_; ++i) {
    d.data_[i] = static_cast<std::uint8_t>(hex_value(hex[2 * i]) * 16 +
                                           hex_value(hex[2 * i + 1]));
  }
  return d;
}

std::string Digest::hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(size_ * 2);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(kDigits[data_[i] >> 4]);
    out.push_back(kDigits[data_[i] & 0xF]);
  }
  return out;
}

std::strong_ordering operator<=>(const Digest& a, const Digest& b) {
  const auto cmp = std::lexicographical_compare_three_way(
      a.data_.begin(), a.data_.begin() + static_cast<std::ptrdiff_t>(a.size_),
      b.data_.begin(), b.data_.begin() + static_cast<std::ptrdiff_t>(b.size_));
  if (cmp != std::strong_ordering::equal) {
    return cmp;
  }
  return a.size_ <=> b.size_;
}

}  // namespace mc::crypto
