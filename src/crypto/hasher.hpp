// Algorithm-agnostic streaming hasher facade.
//
// The integrity checker is parameterized on the digest algorithm; the paper
// uses MD5, the hardened extension uses SHA-256.
#pragma once

#include <memory>
#include <string>

#include "crypto/digest.hpp"
#include "util/bytes.hpp"

namespace mc::crypto {

enum class HashAlgorithm { kMd5, kSha1, kSha256 };

/// Parses "md5" / "sha1" / "sha256" (case-sensitive).
HashAlgorithm parse_hash_algorithm(const std::string& name);
std::string to_string(HashAlgorithm algorithm);

/// Streaming hasher interface.
class Hasher {
 public:
  virtual ~Hasher() = default;
  virtual void update(ByteView data) = 0;
  virtual Digest finish() = 0;
};

/// Creates a fresh hasher for `algorithm`.
std::unique_ptr<Hasher> make_hasher(HashAlgorithm algorithm);

/// One-shot digest with the chosen algorithm.
Digest hash_bytes(HashAlgorithm algorithm, ByteView data);

}  // namespace mc::crypto
