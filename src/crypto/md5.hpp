// MD5 message digest (RFC 1321), implemented from scratch.
//
// The paper uses OpenSSL's MD5 to hash each PE header and each executable
// section.  MD5 is cryptographically broken, but the threat model here is
// byte-difference detection across VM copies, not collision resistance; we
// keep MD5 as the default to match the paper and also offer SHA-256
// (crypto/sha256.hpp) via the Hasher factory for the hardened mode.
#pragma once

#include <cstdint>

#include "crypto/digest.hpp"
#include "util/bytes.hpp"

namespace mc::crypto {

class Md5 {
 public:
  static constexpr std::size_t kDigestBytes = 16;

  Md5() { reset(); }

  void reset();
  void update(ByteView data);
  Digest finish();

  /// One-shot convenience.
  static Digest hash(ByteView data) {
    Md5 md5;
    md5.update(data);
    return md5.finish();
  }

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[4];
  std::uint64_t total_bytes_;
  std::uint8_t buffer_[64];
  std::size_t buffered_;
};

}  // namespace mc::crypto
