// Digest value type.
//
// A fixed-capacity, variable-length message digest (up to 32 bytes, enough
// for SHA-256).  Comparable, hashable, hex-printable.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace mc::crypto {

class Digest {
 public:
  static constexpr std::size_t kMaxBytes = 32;

  Digest() = default;

  /// Wraps `size` raw digest bytes (size <= kMaxBytes).
  Digest(const std::uint8_t* data, std::size_t size);

  /// Parses a lower/upper-case hex string.
  static Digest from_hex(const std::string& hex);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  ByteView bytes() const { return {data_.data(), size_}; }

  /// Lower-case hex rendering ("d41d8cd98f00b204e9800998ecf8427e").
  std::string hex() const;

  friend bool operator==(const Digest& a, const Digest& b) {
    return a.size_ == b.size_ &&
           std::equal(a.data_.begin(), a.data_.begin() + static_cast<std::ptrdiff_t>(a.size_),
                      b.data_.begin());
  }
  friend bool operator!=(const Digest& a, const Digest& b) { return !(a == b); }

  /// Lexicographic order (for use as map keys).
  friend std::strong_ordering operator<=>(const Digest& a, const Digest& b);

 private:
  std::array<std::uint8_t, kMaxBytes> data_{};
  std::size_t size_ = 0;
};

}  // namespace mc::crypto
