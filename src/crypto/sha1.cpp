#include "crypto/sha1.hpp"

#include <algorithm>

#include "util/wordload.hpp"

namespace mc::crypto {

namespace {
constexpr std::uint32_t rotl(std::uint32_t x, int s) {
  return (x << s) | (x >> (32 - s));
}

}  // namespace

void Sha1::reset() {
  state_[0] = 0x67452301u;
  state_[1] = 0xEFCDAB89u;
  state_[2] = 0x98BADCFEu;
  state_[3] = 0x10325476u;
  state_[4] = 0xC3D2E1F0u;
  total_bytes_ = 0;
  buffered_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = load_be32_word(block + 4 * i);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  std::uint32_t a = state_[0];
  std::uint32_t b = state_[1];
  std::uint32_t c = state_[2];
  std::uint32_t d = state_[3];
  std::uint32_t e = state_[4];

  for (int i = 0; i < 80; ++i) {
    std::uint32_t f;
    std::uint32_t k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = tmp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

void Sha1::update(ByteView data) {
  total_bytes_ += data.size();
  std::size_t offset = 0;

  if (buffered_ != 0) {
    const std::size_t take = std::min<std::size_t>(64 - buffered_, data.size());
    copy_bytes(MutableByteView(buffer_).subspan(buffered_), data.first(take));
    buffered_ += take;
    offset += take;
    if (buffered_ == 64) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }

  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }

  if (offset < data.size()) {
    copy_bytes(MutableByteView(buffer_), data.subspan(offset));
    buffered_ = data.size() - offset;
  }
}

Digest Sha1::finish() {
  const std::uint64_t bit_length = total_bytes_ * 8;

  static constexpr std::uint8_t kPad[64] = {0x80};
  const std::size_t pad_len =
      (buffered_ < 56) ? (56 - buffered_) : (120 - buffered_);
  update(ByteView(kPad, pad_len));

  std::uint8_t length_be[8];
  for (int i = 0; i < 8; ++i) {
    length_be[i] = static_cast<std::uint8_t>((bit_length >> (56 - 8 * i)) & 0xFF);
  }
  update(ByteView(length_be, 8));

  std::uint8_t out[kDigestBytes];
  for (int i = 0; i < 5; ++i) {
    out[4 * i + 0] = static_cast<std::uint8_t>((state_[i] >> 24) & 0xFF);
    out[4 * i + 1] = static_cast<std::uint8_t>((state_[i] >> 16) & 0xFF);
    out[4 * i + 2] = static_cast<std::uint8_t>((state_[i] >> 8) & 0xFF);
    out[4 * i + 3] = static_cast<std::uint8_t>(state_[i] & 0xFF);
  }
  const Digest digest(out, kDigestBytes);
  reset();
  return digest;
}

}  // namespace mc::crypto
