#include "crypto/hasher.hpp"

#include "crypto/md5.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "util/error.hpp"

namespace mc::crypto {

namespace {

template <typename Impl>
class HasherAdapter final : public Hasher {
 public:
  void update(ByteView data) override { impl_.update(data); }
  Digest finish() override { return impl_.finish(); }

 private:
  Impl impl_;
};

}  // namespace

HashAlgorithm parse_hash_algorithm(const std::string& name) {
  if (name == "md5") return HashAlgorithm::kMd5;
  if (name == "sha1") return HashAlgorithm::kSha1;
  if (name == "sha256") return HashAlgorithm::kSha256;
  throw InvalidArgument("unknown hash algorithm: " + name);
}

std::string to_string(HashAlgorithm algorithm) {
  switch (algorithm) {
    case HashAlgorithm::kMd5:
      return "md5";
    case HashAlgorithm::kSha1:
      return "sha1";
    case HashAlgorithm::kSha256:
      return "sha256";
  }
  return "?";
}

std::unique_ptr<Hasher> make_hasher(HashAlgorithm algorithm) {
  switch (algorithm) {
    case HashAlgorithm::kMd5:
      return std::make_unique<HasherAdapter<Md5>>();
    case HashAlgorithm::kSha1:
      return std::make_unique<HasherAdapter<Sha1>>();
    case HashAlgorithm::kSha256:
      return std::make_unique<HasherAdapter<Sha256>>();
  }
  throw InvalidArgument("unknown hash algorithm enumerator");
}

Digest hash_bytes(HashAlgorithm algorithm, ByteView data) {
  auto hasher = make_hasher(algorithm);
  hasher->update(data);
  return hasher->finish();
}

}  // namespace mc::crypto
