// Content-mode-agnostic operations over IntegrityItems.
//
// An item's content is either an owned buffer or a borrowed scatter-gather
// GuestView (see modchecker/item.hpp).  The checker, digest memo and canonical
// pool never need to know which: these helpers hash, checksum, compare and
// scratch-copy the content through the item's span walk, so the zero-copy
// Acquire path feeds the exact same downstream code as the owned path.
//
// Digests and CRCs are computed by streaming the spans through the
// incremental hasher / seeded CRC continuation, so a view-backed item is
// never flattened into a temporary buffer just to be hashed.
#pragma once

#include <cstdint>

#include "crypto/hasher.hpp"
#include "modchecker/item.hpp"
#include "util/arena.hpp"
#include "util/simd.hpp"

namespace mc::core {

/// Digest of the item's content, identical to hash_bytes over a flat copy.
crypto::Digest hash_item_content(crypto::HashAlgorithm algorithm,
                                 const IntegrityItem& item);

/// CRC32 of the item's content (seeded continuation across spans).
std::uint32_t crc_item_content(const IntegrityItem& item);

/// Byte equality of two items' contents, span pair by span pair, using the
/// word-wise comparison kernels.  `policy` pins the call scalar.
bool item_content_equal(const IntegrityItem& a, const IntegrityItem& b,
                        simd::Policy policy = simd::Policy::kAuto);

/// Copies the item's content into `arena` scratch — the mutation point for
/// Algorithm 2, which rewrites relocation words before hashing.  The span
/// is valid until the enclosing ArenaScope unwinds.
MutableByteView arena_content_copy(Arena& arena, const IntegrityItem& item);

}  // namespace mc::core
