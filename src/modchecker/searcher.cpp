#include "modchecker/searcher.hpp"

#include <algorithm>
#include <utility>

#include "guestos/winlike.hpp"
#include "util/error.hpp"

namespace mc::core {

namespace gw = mc::guestos;

namespace {

/// Legacy-wrapper escape hatch: re-raises a searcher fault with the
/// exception type historical callers expect.  An unrecognized build keeps
/// throwing NotFoundError (the old profile_by_version behaviour); every
/// guest fault becomes GuestFaultError.
[[noreturn]] void throw_searcher_fault(FaultRecord record) {
  if (record.code == FaultCode::kUnrecognizedBuild) {
    throw NotFoundError(record.detail);
  }
  throw GuestFaultError(std::move(record));
}

/// Reads a list entry's module name per the profile's convention:
/// UNICODE_STRING descriptor (Windows builds) or inline NUL-padded char
/// array (Linux builds).
Fallible<std::string> try_read_entry_name(vmi::VmiSession& session,
                                          const gw::GuestProfile& profile,
                                          std::uint32_t entry_va) {
  const std::uint32_t name_va = entry_va + profile.off_base_dll_name;
  if (!profile.inline_names) {
    return session.try_read_unicode_string(name_va);
  }
  Fallible<Bytes> raw =
      session.try_read_region(name_va, profile.inline_name_bytes);
  if (!raw.ok()) {
    return std::move(raw.fault());
  }
  const Bytes& bytes = raw.value();
  const auto nul = std::find(bytes.begin(), bytes.end(), std::uint8_t{0});
  return std::string(bytes.begin(), nul);
}

}  // namespace

Fallible<const gw::GuestProfile*> ModuleSearcher::try_profile() {
  // Profile-driven traversal: the guest build (from the debug block)
  // determines the LDR_DATA_TABLE_ENTRY member offsets.
  Fallible<std::uint32_t> version = session_->try_guest_version();
  if (!version.ok()) {
    return std::move(version.fault());
  }
  const gw::GuestProfile* profile =
      gw::find_profile_by_version(version.value());
  if (profile == nullptr) {
    FaultRecord record;
    record.code = FaultCode::kUnrecognizedBuild;
    record.domain = session_->domain_id();
    record.stage = CheckStage::kAcquire;
    record.detail = "no guest profile for version id " +
                    std::to_string(version.value());
    return record;
  }
  return profile;
}

Fallible<std::vector<ModuleInfo>> ModuleSearcher::try_list_modules() {
  Fallible<const gw::GuestProfile*> looked_up = try_profile();
  if (!looked_up.ok()) {
    return std::move(looked_up.fault());
  }
  const gw::GuestProfile& profile = *looked_up.value();
  std::vector<ModuleInfo> modules;
  // try_guest_version succeeded, so the debug block is resolved and the
  // symbol lookup below cannot fault.
  const std::uint32_t head = session_->symbol_to_va("PsLoadedModuleList");
  Fallible<std::uint32_t> link = session_->try_read_u32(head + gw::kOffListFlink);
  if (!link.ok()) {
    return std::move(link.fault());
  }
  std::uint32_t cur = link.value();
  while (cur != head) {
    ModuleInfo info;
    Fallible<std::uint32_t> base =
        session_->try_read_u32(cur + profile.off_dll_base);
    if (!base.ok()) {
      return std::move(base.fault());
    }
    info.base = base.value();
    Fallible<std::uint32_t> entry =
        session_->try_read_u32(cur + profile.off_entry_point);
    if (!entry.ok()) {
      return std::move(entry.fault());
    }
    info.entry_point = entry.value();
    Fallible<std::uint32_t> size =
        session_->try_read_u32(cur + profile.off_size_of_image);
    if (!size.ok()) {
      return std::move(size.fault());
    }
    info.size_of_image = size.value();
    Fallible<std::string> name = try_read_entry_name(*session_, profile, cur);
    if (!name.ok()) {
      return std::move(name.fault());
    }
    info.name = std::move(name.value());
    modules.push_back(std::move(info));
    link = session_->try_read_u32(cur + profile.off_in_load_order_links +
                                  gw::kOffListFlink);
    if (!link.ok()) {
      return std::move(link.fault());
    }
    cur = link.value();
    MC_CHECK(modules.size() < 4096, "loader list cycle suspected");
  }
  return modules;
}

Fallible<std::optional<ModuleInfo>> ModuleSearcher::try_find_module(
    const std::string& module_name) {
  // Same traversal, but stop at the first match (the paper's searcher looks
  // for one module by name).
  Fallible<const gw::GuestProfile*> looked_up = try_profile();
  if (!looked_up.ok()) {
    return std::move(looked_up.fault());
  }
  const gw::GuestProfile& profile = *looked_up.value();
  const std::uint32_t head = session_->symbol_to_va("PsLoadedModuleList");
  Fallible<std::uint32_t> link = session_->try_read_u32(head + gw::kOffListFlink);
  if (!link.ok()) {
    return std::move(link.fault());
  }
  std::uint32_t cur = link.value();
  std::size_t visited = 0;
  while (cur != head) {
    Fallible<std::string> name = try_read_entry_name(*session_, profile, cur);
    if (!name.ok()) {
      return std::move(name.fault());
    }
    if (gw::module_name_equals(name.value(), module_name)) {
      ModuleInfo info;
      info.name = std::move(name.value());
      Fallible<std::uint32_t> base =
          session_->try_read_u32(cur + profile.off_dll_base);
      if (!base.ok()) {
        return std::move(base.fault());
      }
      info.base = base.value();
      Fallible<std::uint32_t> entry =
          session_->try_read_u32(cur + profile.off_entry_point);
      if (!entry.ok()) {
        return std::move(entry.fault());
      }
      info.entry_point = entry.value();
      Fallible<std::uint32_t> size =
          session_->try_read_u32(cur + profile.off_size_of_image);
      if (!size.ok()) {
        return std::move(size.fault());
      }
      info.size_of_image = size.value();
      return std::optional<ModuleInfo>(std::move(info));
    }
    link = session_->try_read_u32(cur + profile.off_in_load_order_links +
                                  gw::kOffListFlink);
    if (!link.ok()) {
      return std::move(link.fault());
    }
    cur = link.value();
    MC_CHECK(++visited < 4096, "loader list cycle suspected");
  }
  return std::optional<ModuleInfo>(std::nullopt);
}

Fallible<std::optional<ModuleImage>> ModuleSearcher::try_extract_module(
    const std::string& module_name, ExtractMode mode) {
  Fallible<std::optional<ModuleInfo>> found = try_find_module(module_name);
  if (!found.ok()) {
    return std::move(found.fault());
  }
  if (!found.value()) {
    return std::optional<ModuleImage>(std::nullopt);
  }
  const ModuleInfo& info = *found.value();
  ModuleImage image;
  image.domain = session_->domain_id();
  image.name = info.name;
  image.base = info.base;
  if (mode == ExtractMode::kView) {
    Fallible<vmi::GuestView> view =
        session_->try_read_view(info.base, info.size_of_image);
    if (!view.ok()) {
      return std::move(view.fault());
    }
    image.view = std::move(view.value());
  } else {
    Fallible<Bytes> bytes =
        session_->try_read_region(info.base, info.size_of_image);
    if (!bytes.ok()) {
      return std::move(bytes.fault());
    }
    image.bytes = std::move(bytes.value());
  }
  return std::optional<ModuleImage>(std::move(image));
}

// ---- Legacy throwing wrappers ----------------------------------------------

std::vector<ModuleInfo> ModuleSearcher::list_modules() {
  Fallible<std::vector<ModuleInfo>> modules = try_list_modules();
  if (!modules.ok()) {
    throw_searcher_fault(std::move(modules.fault()));
  }
  return std::move(modules.value());
}

std::optional<ModuleInfo> ModuleSearcher::find_module(
    const std::string& module_name) {
  Fallible<std::optional<ModuleInfo>> found = try_find_module(module_name);
  if (!found.ok()) {
    throw_searcher_fault(std::move(found.fault()));
  }
  return std::move(found.value());
}

std::optional<ModuleImage> ModuleSearcher::extract_module(
    const std::string& module_name) {
  Fallible<std::optional<ModuleImage>> image =
      try_extract_module(module_name);
  if (!image.ok()) {
    throw_searcher_fault(std::move(image.fault()));
  }
  return std::move(image.value());
}

}  // namespace mc::core
