#include "modchecker/searcher.hpp"

#include "guestos/profile.hpp"
#include "guestos/winlike.hpp"
#include "util/error.hpp"

namespace mc::core {

namespace gw = mc::guestos;

std::vector<ModuleInfo> ModuleSearcher::list_modules() {
  // Profile-driven traversal: the guest build (from the debug block)
  // determines the LDR_DATA_TABLE_ENTRY member offsets.
  const gw::GuestProfile& profile =
      gw::profile_by_version(session_->guest_version());
  std::vector<ModuleInfo> modules;
  const std::uint32_t head = session_->symbol_to_va("PsLoadedModuleList");
  std::uint32_t cur = session_->read_u32(head + gw::kOffListFlink);
  while (cur != head) {
    ModuleInfo info;
    info.base = session_->read_u32(cur + profile.off_dll_base);
    info.entry_point = session_->read_u32(cur + profile.off_entry_point);
    info.size_of_image =
        session_->read_u32(cur + profile.off_size_of_image);
    info.name =
        session_->read_unicode_string(cur + profile.off_base_dll_name);
    modules.push_back(std::move(info));
    cur = session_->read_u32(cur + profile.off_in_load_order_links +
                             gw::kOffListFlink);
    MC_CHECK(modules.size() < 4096, "loader list cycle suspected");
  }
  return modules;
}

std::optional<ModuleInfo> ModuleSearcher::find_module(
    const std::string& module_name) {
  // Same traversal, but stop at the first match (the paper's searcher looks
  // for one module by name).
  const gw::GuestProfile& profile =
      gw::profile_by_version(session_->guest_version());
  const std::uint32_t head = session_->symbol_to_va("PsLoadedModuleList");
  std::uint32_t cur = session_->read_u32(head + gw::kOffListFlink);
  std::size_t visited = 0;
  while (cur != head) {
    const std::string name =
        session_->read_unicode_string(cur + profile.off_base_dll_name);
    if (gw::module_name_equals(name, module_name)) {
      ModuleInfo info;
      info.name = name;
      info.base = session_->read_u32(cur + profile.off_dll_base);
      info.entry_point = session_->read_u32(cur + profile.off_entry_point);
      info.size_of_image =
          session_->read_u32(cur + profile.off_size_of_image);
      return info;
    }
    cur = session_->read_u32(cur + profile.off_in_load_order_links +
                             gw::kOffListFlink);
    MC_CHECK(++visited < 4096, "loader list cycle suspected");
  }
  return std::nullopt;
}

std::optional<ModuleImage> ModuleSearcher::extract_module(
    const std::string& module_name) {
  const auto info = find_module(module_name);
  if (!info) {
    return std::nullopt;
  }
  ModuleImage image;
  image.domain = session_->domain_id();
  image.name = info->name;
  image.base = info->base;
  image.bytes = session_->read_region(info->base, info->size_of_image);
  return image;
}

}  // namespace mc::core
