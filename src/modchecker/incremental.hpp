// Incremental pool scanner — dirty-frame-aware re-scanning.
//
// The paper's prototype copies every module from every VM on every check;
// Fig. 7 shows that page-wise extraction dominates the cost.  A hypervisor
// with log-dirty support (Xen has it for live migration) can tell the
// privileged VM which guest frames changed since the last scan, so a
// periodic checker can *reuse* its previous extraction whenever none of a
// module's frames were touched — the extraction cost drops from
// O(module size) to O(pages) per unchanged module.
//
// Implementation-wise this is a custom front half over the shared
// CheckPipeline: Acquire/Parse run through the pipeline's stages (the only
// Searcher/Parser owners), with the dirty-frame cache deciding *whether*
// the Acquire stage's extraction is needed at all; Compare/Vote reuse the
// pipeline stages with a generation-keyed pair cache on top.
//
// Correctness invariant (tested): the incremental scanner's verdicts are
// identical to a fresh ModChecker scan in every state, because any write
// to a module's frames — the loader rebasing it, an attack patching it, a
// snapshot restore — bumps a frame version and forces re-extraction.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "modchecker/pipeline.hpp"

namespace mc::core {

/// Scanner-local cache effectiveness counters: produced per scanner and
/// consumed directly by experiments, so they stay a plain value type.
// mc-lint: allow(adhoc-stats)
struct IncrementalStats {
  std::uint64_t full_extractions = 0;
  std::uint64_t cache_reuses = 0;
  std::uint64_t invalidations = 0;  // cache present but dirty/base-changed
  std::uint64_t comparisons_computed = 0;
  std::uint64_t comparisons_reused = 0;
};

class IncrementalScanner {
 public:
  IncrementalScanner(const vmm::Hypervisor& hypervisor,
                     ModCheckerConfig config = {});

  /// Same contract and output as ModChecker::scan_pool, but modules whose
  /// guest frames are untouched since the last scan are served from the
  /// cache (paying only the per-page dirty check).
  PoolScanReport scan(const std::string& module_name,
                      const std::vector<vmm::DomainId>& pool);

  const IncrementalStats& stats() const { return stats_; }

 private:
  struct CacheEntry {
    bool found = false;
    std::uint32_t base = 0;
    std::vector<std::uint32_t> frames;   // guest physical frame numbers
    std::uint64_t max_frame_version = 0;
    std::uint64_t generation = 0;        // bumped on every re-extraction
    ParsedModule parsed;
    ComponentTimes extraction_times;     // what the full extraction cost
  };

  /// A pairwise verdict stays valid while both sides' extractions do —
  /// the O(n^2) comparison cost of a pool scan then collapses to the
  /// pairs touching re-extracted modules.
  struct PairCacheEntry {
    std::uint64_t generation_a = 0;
    std::uint64_t generation_b = 0;
    bool all_match = false;
  };

  /// Extracts (or reuses) one VM's copy via the pipeline's Acquire/Parse
  /// stages; charges simulated time to `times`.
  CacheEntry& fetch(vmm::DomainId vm, const std::string& module_name,
                    ComponentTimes& times);

  /// Stage context + pipeline: the scanner shares the session pool and
  /// parser/checker components with every other entry point.
  CheckContext context_;
  CheckPipeline pipeline_;
  std::map<std::pair<vmm::DomainId, std::string>, CacheEntry> cache_;
  std::map<std::tuple<std::string, vmm::DomainId, vmm::DomainId>,
           PairCacheEntry>
      pair_cache_;
  IncrementalStats stats_;
};

}  // namespace mc::core
