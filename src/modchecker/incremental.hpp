// Incremental pool scanner — write-watch-driven re-scanning.
//
// The paper's prototype copies every module from every VM on every check;
// Fig. 7 shows that page-wise extraction dominates the cost.  The vmm's
// WriteWatch subsystem (write_watch.hpp) is the simulated log-dirty
// facility that makes re-proving "nothing changed" cheap: the scanner
// registers a WatchSet over each cached module's frames through the VMI
// session, so a clean check is one O(1) dirty query — not a per-page
// version sweep — and a *dirty* module costs O(changed bytes): the dirty
// page indices map straight back to byte offsets of the cached owned
// image, which is patched in place and re-parsed instead of re-extracted.
//
// Implementation-wise this is a custom front half over the shared
// CheckPipeline: Acquire/Parse run through the pipeline's stages (the only
// Searcher/Parser owners), with the watch deciding whether the Acquire
// stage's extraction — full, partial, or none — is needed; Compare/Vote
// reuse the pipeline stages behind a persistent canonical-RVA pool (a
// changed copy re-normalizes once via CanonicalPool::update instead of
// re-comparing against every peer) with a generation-keyed pair cache
// under it for the ineligible fallback.
//
// Correctness invariant (tested): the incremental scanner's verdicts are
// identical to a fresh ModChecker scan in every state, because any write
// to a module's frames — the loader rebasing it, an attack patching it, a
// snapshot restore — marks the watch dirty and forces a refresh, and a
// refresh re-reads every dirty page before re-parsing.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "modchecker/pipeline.hpp"

namespace mc::core {

/// Scanner-local cache effectiveness counters: produced per scanner and
/// consumed directly by experiments, so they stay a plain value type.
// mc-lint: allow(adhoc-stats)
struct IncrementalStats {
  std::uint64_t full_extractions = 0;
  std::uint64_t cache_reuses = 0;
  std::uint64_t invalidations = 0;  // cache present but dirty/base-changed
  /// Invalidations served by patching only the dirty pages of the cached
  /// image (the O(changed bytes) path) rather than a full re-extraction.
  std::uint64_t partial_refreshes = 0;
  /// Pages re-read across all partial refreshes.
  std::uint64_t frames_reread = 0;
  std::uint64_t comparisons_computed = 0;
  std::uint64_t comparisons_reused = 0;
};

class IncrementalScanner {
 public:
  IncrementalScanner(const vmm::Hypervisor& hypervisor,
                     ModCheckerConfig config = {});

  /// Drops the scanner's watch registrations (the hypervisor's WriteWatch
  /// outlives the scanner).
  ~IncrementalScanner();

  /// Same contract and output as ModChecker::scan_pool, but modules whose
  /// guest frames are untouched since the last scan are served from the
  /// cache (paying only the O(1) dirty query), and touched modules re-read
  /// only their dirty pages.
  PoolScanReport scan(const std::string& module_name,
                      const std::vector<vmm::DomainId>& pool);

  const IncrementalStats& stats() const { return stats_; }

 private:
  struct CacheEntry {
    bool found = false;
    std::uint32_t base = 0;
    /// Backing frames in VA-page order: frames[i] backs page i of the
    /// image, so a dirty index maps directly to a byte offset.
    std::vector<std::uint32_t> frames;
    vmm::WriteWatch::WatchId watch = vmm::WriteWatch::kNoWatch;
    std::uint64_t generation = 0;  // bumped on every (re-)extraction/refresh
    /// Domain write generation observed at the start of the fetch that
    /// produced this entry.  If the domain's generation still matches, NO
    /// guest memory changed at all — the loader list, the module, anything
    /// — so the next fetch skips even the session open and list walk.
    std::uint64_t domain_generation = 0;
    /// True when the last refresh was partial; `last_changed_rvas` then
    /// holds the [lo, hi) image-relative byte ranges of the pages re-read
    /// in that refresh (the canonical update's item-reuse mask).
    bool last_refresh_partial = false;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> last_changed_rvas;
    /// Owned extraction the partial-refresh path patches in place.
    ModuleImage image;
    ParsedModule parsed;
  };

  /// A pairwise verdict stays valid while both sides' extractions do —
  /// the O(n^2) comparison cost of a pool scan then collapses to the
  /// pairs touching re-extracted modules.
  struct PairCacheEntry {
    std::uint64_t generation_a = 0;
    std::uint64_t generation_b = 0;
    bool all_match = false;
  };

  /// Persistent canonical-RVA state for one module name (fast path only).
  /// The pool borrows the reference entry's ParsedModule, which stays
  /// address-stable in cache_ (std::map nodes) and content-stable while
  /// its generation holds; any reference change rebuilds the pool, and a
  /// changed non-reference copy re-normalizes alone via update() — so a
  /// tick's normalize cost is O(changed copies), not O(t).
  struct CanonState {
    std::unique_ptr<CanonicalPool> pool;
    vmm::DomainId ref_vm = 0;
    std::uint64_t ref_generation = 0;
    std::map<vmm::DomainId, std::uint64_t> generations;
  };

  /// Extracts (or reuses / partially refreshes) one VM's copy via the
  /// pipeline's Acquire/Parse stages; charges simulated time to `times`.
  CacheEntry& fetch(vmm::DomainId vm, const std::string& module_name,
                    ComponentTimes& times);

  /// Full extraction into `entry` (registers a fresh watch first, so a
  /// write racing the copy is caught by the next scan).
  void extract_full(AcquireStage::Session& session,
                    const std::string& module_name, const ModuleInfo& info,
                    CacheEntry& entry);

  /// Re-reads the pages in `dirty_pages` into the cached image.  Returns
  /// false if a page's backing frame moved (the cached frame map is stale
  /// — caller falls back to extract_full).
  bool patch_dirty_pages(AcquireStage::Session& session, CacheEntry& entry,
                         const std::vector<std::uint32_t>& dirty_pages);

  /// Brings the module's canonical pool up to date with the fetched
  /// entries (rebuild on reference change, update() per changed copy) and
  /// returns it; null when the fast path is disabled or nothing parsed.
  CanonicalPool* refresh_canonical(const std::string& module_name,
                                   const std::vector<vmm::DomainId>& pool,
                                   const std::vector<CacheEntry*>& entries,
                                   SimClock& clock);

  /// Stage context + pipeline: the scanner shares the session pool and
  /// parser/checker components with every other entry point.
  CheckContext context_;
  CheckPipeline pipeline_;
  /// Registry cells behind the IncrementalStats fields the fleet cares
  /// about ("incremental.*" on the context's registry).
  telemetry::Counter partial_refreshes_;
  telemetry::Counter frames_reread_;
  telemetry::Counter cache_reuses_;
  std::map<std::pair<vmm::DomainId, std::string>, CacheEntry> cache_;
  std::map<std::tuple<std::string, vmm::DomainId, vmm::DomainId>,
           PairCacheEntry>
      pair_cache_;
  std::map<std::string, CanonState> canon_;
  IncrementalStats stats_;
};

}  // namespace mc::core
