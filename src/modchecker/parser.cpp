#include "modchecker/parser.hpp"

#include "pe/parser.hpp"

namespace mc::core {

ParsedModule ModuleParser::parse(const ModuleImage& image,
                                 SimClock& clock) const {
  const pe::ParsedImage parsed(image.bytes);

  ParsedModule out;
  out.domain = image.domain;
  out.name = image.name;
  out.base = image.base;
  out.items = parsed.extract_items(image.bytes);

  std::size_t extracted_bytes = 0;
  for (const auto& item : out.items) {
    extracted_bytes += item.bytes.size();
  }
  clock.charge(costs_.parse_fixed +
               costs_.parse_per_byte * extracted_bytes);
  return out;
}

}  // namespace mc::core
