#include "modchecker/parser.hpp"

#include "modchecker/format.hpp"

namespace mc::core {

ParsedModule ModuleParser::parse(const ModuleImage& image,
                                 SimClock& clock) const {
  ParsedModule out;
  out.domain = image.domain;
  out.name = image.name;
  out.base = image.base;
  // Resolve the format plugin (magic sniff unless pinned) and let it run
  // Algorithm 1.  The plugin owns the parser; this layer never names one.
  const ModuleFormat& format =
      FormatRegistry::process_default().resolve(image, format_);
  out.items = format.extract_items(image);
  out.fixups = format.fixup_policy();

  std::size_t extracted_bytes = 0;
  for (const auto& item : out.items) {
    extracted_bytes += item.content_size();
  }
  clock.charge(costs_.parse_fixed +
               costs_.parse_per_byte * extracted_bytes);
  return out;
}

}  // namespace mc::core
