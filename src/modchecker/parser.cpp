#include "modchecker/parser.hpp"

#include "pe/parser.hpp"

namespace mc::core {

ParsedModule ModuleParser::parse(const ModuleImage& image,
                                 SimClock& clock) const {
  ParsedModule out;
  out.domain = image.domain;
  out.name = image.name;
  out.base = image.base;
  // Both modes run the identical header walk and produce items with the
  // same names, offsets and content — view-backed images just keep the
  // section data borrowed instead of sliced into owned buffers.
  if (image.view_backed()) {
    const pe::ParsedImage parsed(image.view);
    out.items = parsed.extract_items(image.view);
  } else {
    const pe::ParsedImage parsed(image.bytes);
    out.items = parsed.extract_items(image.bytes);
  }

  std::size_t extracted_bytes = 0;
  for (const auto& item : out.items) {
    extracted_bytes += item.content_size();
  }
  clock.charge(costs_.parse_fixed +
               costs_.parse_per_byte * extracted_bytes);
  return out;
}

}  // namespace mc::core
