// Algorithm 2 — Adjusting Relative Virtual Addresses (RVAs).
//
// The heart of ModChecker's dictionary-free design.  Two copies of the same
// executable section, loaded at different bases, differ exactly at the
// loader-relocated absolute addresses.  Without any relocation metadata the
// algorithm recovers the RVAs:
//
//   1. Compare the two modules' base addresses byte by byte (little-endian,
//      i.e. least significant first).  `offset` = 1-based index of the
//      first differing byte.  If the bases are identical there is nothing
//      to adjust.
//   2. Scan the two section copies in lockstep.  At the first differing
//      byte j, the enclosing 4-byte absolute address is assumed to *start*
//      at j - offset + 1 (the address's low bytes can agree when the bases
//      share leading bytes — the paper's '00 CC 20 F8' vs '00 CC 90 70'
//      example).
//   3. Read the 4-byte values, subtract the respective bases (eq. 1:
//      RVA = AbsoluteAddress - BaseAddress).  If both RVAs agree, the
//      difference was indeed a relocation: overwrite both addresses with
//      the common RVA, making the copies byte-identical there.  If they
//      disagree, the difference is real content divergence (an infection):
//      leave the bytes alone so the hashes differ.
//   4. Continue scanning after the 4-byte window.
//
// This faithfully implements the paper's Algorithm 2 (including its
// `offset` arithmetic), with explicit bounds handling at section edges.
//
// Evasion resistance: an attacker controlling one VM's copy cannot craft
// an in-place change the algorithm normalizes away — acceptance requires
// V_attacker - base1 == V_reference - base2, i.e. V_attacker equals the
// byte's original value; any real change survives as an unresolved
// difference (property-tested in tests/rva_adjust_test.cpp).
#pragma once

#include <cstdint>

#include "util/bytes.hpp"
#include "util/simd.hpp"

namespace mc::core {

struct RvaAdjustResult {
  /// Number of 4-byte absolute addresses successfully converted to RVAs.
  std::uint32_t adjusted = 0;
  /// Number of differing positions that were NOT consistent relocations
  /// (RVA1 != RVA2) — genuine divergence, typically an infection.
  std::uint32_t unresolved_diffs = 0;

  bool sections_identical_after() const { return unresolved_diffs == 0; }
};

/// Runs Algorithm 2 over two equally sized section-data buffers, mutating
/// both in place.  `base1`/`base2` are the modules' load bases.
/// Buffers of different lengths: the common prefix is processed and every
/// trailing byte counts as an unresolved difference.
///
/// The diff scan runs word-wise (SWAR / AVX2 behind runtime dispatch);
/// `policy` pins an individual call to the scalar kernel, and the process
/// default honors MC_FORCE_SCALAR.  Results — the rewritten bytes and
/// both counters — are bit-identical at every dispatch level
/// (tests/simd_equivalence_test.cpp is the oracle).
RvaAdjustResult adjust_rvas(MutableByteView section1, std::uint32_t base1,
                            MutableByteView section2, std::uint32_t base2,
                            simd::Policy policy = simd::Policy::kAuto);

/// The `offset` of Algorithm 2 lines 1-9: 1-based index of the first
/// differing byte between the two base addresses (little-endian byte
/// order); 0 if the bases are identical.
std::uint32_t base_difference_offset(std::uint32_t base1, std::uint32_t base2);

/// Format-supplied absolute-fixup recipe for the pairwise normalization —
/// what a format plugin (modchecker/format.hpp) knows about how its
/// loader rewrites addresses.  PE32 loaders patch 4-byte absolute
/// addresses relative to the 32-bit load base; ELF64 .ko loaders patch
/// 8-byte R_X86_64_64 values (with 4-byte R_X86_64_32S truncated stores
/// as the secondary shape) against the sign-extended canonical kernel
/// address `0xFFFFFFFF00000000 | base`.
struct FixupPolicy {
  /// Primary absolute-address width in bytes (4 = PE32, 8 = ELF64).
  std::uint32_t width = 4;
  /// Secondary width tried when the primary window's RVAs disagree
  /// (ELF64: R_X86_64_32S stores only the low dword); 0 disables.
  std::uint32_t alt_width = 0;
  /// OR'd onto the 32-bit guest load base to reconstruct the link-view
  /// base address the loader relocated against.
  std::uint64_t base_bias = 0;

  /// True for the PE32 policy — adjust_fixups delegates verbatim to
  /// adjust_rvas then, keeping the historical path bit-identical.
  bool pe32_default() const {
    return width == 4 && alt_width == 0 && base_bias == 0;
  }
};

/// Algorithm 2 generalized over a format's FixupPolicy.  For the default
/// PE32 policy this *is* adjust_rvas (same code path, bit-identical bytes
/// and counters).  Otherwise the same candidate-window scan runs with the
/// policy's widths: at each first-differing byte the primary-width window
/// is tested (value − biased base on each side; equal RVAs → rewrite both
/// windows to the common RVA), the secondary width is tested on failure,
/// and anything else counts as an unresolved difference exactly like the
/// 4-byte algorithm.
RvaAdjustResult adjust_fixups(MutableByteView section1, std::uint32_t base1,
                              MutableByteView section2, std::uint32_t base2,
                              const FixupPolicy& fixups,
                              simd::Policy policy = simd::Policy::kAuto);

}  // namespace mc::core
