// ModChecker orchestrator — ties Module-Searcher, Module-Parser and
// Integrity-Checker together over a pool of VMs (paper Fig. 1) and applies
// the majority vote of §III ("if the number of successes n are in majority
// from the total number of comparisons (i.e. n > (t-1)/2) ... the module
// has not been altered").
//
// Two execution modes:
//   * sequential — the paper's prototype: VMs are visited one after
//     another; total runtime grows linearly with the pool size (Fig. 7).
//   * parallel   — the extension the paper proposes in §V-C.1: per-VM
//     extraction/parsing/comparison run as independent tasks on a thread
//     pool; the simulated wall time is the critical path.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "modchecker/checker.hpp"
#include "modchecker/parser.hpp"
#include "modchecker/searcher.hpp"
#include "modchecker/types.hpp"
#include "vmi/cost_model.hpp"
#include "vmi/session_pool.hpp"
#include "vmm/hypervisor.hpp"

namespace mc::core {

struct ModCheckerConfig {
  crypto::HashAlgorithm algorithm = crypto::HashAlgorithm::kMd5;
  vmi::VmiCostModel vmi_costs{};
  vmi::HostCostModel host_costs{};
  bool parallel = false;
  std::size_t worker_threads = 8;
  /// CRC32 prefilter: skip the full digest when cheap checksums agree
  /// (see IntegrityChecker for the tradeoff).
  bool crc_prefilter = false;
  /// Keep one VMI session per domain alive across calls (VmiSessionPool):
  /// repeat scans skip the attach + debug-block scan and reuse the warm
  /// V2P cache.  Sessions auto-invalidate when a domain's epoch/CR3 moves
  /// (snapshot restore, clone-into).  Off reproduces the paper's
  /// attach-per-check prototype.
  bool reuse_sessions = true;
  /// Canonical-RVA fast path for scan_pool: normalize every copy against
  /// one reference, then decide each pair by comparing precomputed digest
  /// vectors — O(t) image work instead of O(t^2).  Pairs involving any
  /// copy that does not reduce cleanly fall back to the exact pairwise
  /// comparison, so verdicts are identical to the slow path (see
  /// canonical.hpp).  Disabled automatically with crc_prefilter (the
  /// prefilter's CRC-collision acceptance is not digest-equivalent).
  bool pool_fastpath = true;
  /// Memoize per-item digests within one check_module call so the
  /// subject's items are hashed once instead of once per peer.
  bool digest_memo = true;
};

/// Result of checking one module on one subject VM against a pool.
struct CheckReport {
  std::string module_name;
  vmm::DomainId subject = 0;
  std::vector<PairComparison> comparisons;
  std::size_t successes = 0;          // comparisons where every item matched
  std::size_t total_comparisons = 0;  // t - 1
  bool subject_clean = false;         // majority vote
  /// Union of item names that mismatched in at least one comparison.
  std::vector<std::string> flagged_items;
  /// Pool VMs where the module was not loaded (excluded from the vote).
  std::vector<vmm::DomainId> missing_on;

  ComponentTimes cpu_times;  // summed across VMs (the Fig. 7/8 series)
  SimNanos wall_time = 0;    // sequential: == cpu total; parallel: critical path
};

/// Per-VM verdict from a whole-pool scan (every VM takes the subject role).
struct PoolVmVerdict {
  vmm::DomainId vm = 0;
  std::size_t successes = 0;
  std::size_t total = 0;
  bool clean = false;
};

struct PoolScanReport {
  std::string module_name;
  std::vector<PoolVmVerdict> verdicts;
  ComponentTimes cpu_times;
  SimNanos wall_time = 0;
  /// Pairs decided by the canonical-RVA digest comparison vs. pairs that
  /// ran the exact pairwise comparison (diagnostics for the fast path).
  std::size_t fastpath_pairs = 0;
  std::size_t fallback_pairs = 0;
};

/// One module whose presence differs across the pool.
struct ListDiscrepancy {
  std::string module_name;
  std::vector<vmm::DomainId> present_on;
  std::vector<vmm::DomainId> missing_on;
};

struct ListComparisonReport {
  /// Module names seen anywhere, with presence maps; only modules whose
  /// presence differs across VMs are listed.
  std::vector<ListDiscrepancy> discrepancies;
  std::size_t modules_seen = 0;
  SimNanos wall_time = 0;

  bool consistent() const { return discrepancies.empty(); }
};

class ModChecker {
 public:
  explicit ModChecker(const vmm::Hypervisor& hypervisor,
                      ModCheckerConfig config = {});

  const ModCheckerConfig& config() const { return config_; }

  /// Checks `module_name` on `subject` against `others` (the other t-1
  /// VMs).  Throws NotFoundError if the module is not loaded on the
  /// subject itself.
  CheckReport check_module(vmm::DomainId subject,
                           const std::string& module_name,
                           const std::vector<vmm::DomainId>& others);

  /// Convenience: subject vs every other domain in the hypervisor.
  CheckReport check_module(vmm::DomainId subject,
                           const std::string& module_name);

  /// Checks the subject against a random sample of `sample_size` peers
  /// instead of all t-1.  The paper's sequential cost is linear in the
  /// pool size (Fig. 7); sampling caps it at O(sample_size) per check.
  /// The price is vote fragility for tiny samples — quantified by the A6
  /// ablation bench: with one infected peer in the pool, sample sizes 1-2
  /// can false-alarm a clean subject (the infected copy is the sample's
  /// majority), while sample sizes >= 3 match the full vote's behaviour.
  CheckReport check_module_sampled(vmm::DomainId subject,
                                   const std::string& module_name,
                                   std::size_t sample_size,
                                   std::uint64_t seed);

  /// Cross-checks the module on every pool VM (each takes the subject
  /// role) — the mode used to localize which VM is infected.
  PoolScanReport scan_pool(const std::string& module_name,
                           const std::vector<vmm::DomainId>& pool);

  /// Compares the *module lists* across the pool: a module loaded on some
  /// VMs but missing (or DKOM-hidden) on others is itself a discrepancy,
  /// independent of any hashing.
  ListComparisonReport compare_module_lists(
      const std::vector<vmm::DomainId>& pool);

  /// Item name reported when a module's copy cannot even be parsed (its
  /// PE magics/headers are corrupted) — a definite integrity violation.
  static constexpr const char* kUnparseableItem = "MODULE_UNPARSEABLE";

  /// Cross-call session reuse counters (meaningful with reuse_sessions).
  vmi::SessionPoolStats session_pool_stats() const {
    return session_pool_.stats();
  }

  /// Drops all pooled sessions (next check re-attaches).  Epoch/CR3
  /// staleness is detected automatically; this is for callers that mutate
  /// guest page tables in place.
  void invalidate_sessions() { session_pool_.invalidate_all(); }

 private:
  struct Extraction {
    ComponentTimes times;
    bool found = false;
    bool parse_failed = false;
    std::string parse_error;
    ParsedModule parsed;
  };

  /// Extracts + parses the module from one VM, charging per-phase time.
  Extraction extract_and_parse(vmm::DomainId vm,
                               const std::string& module_name) const;

  const vmm::Hypervisor* hypervisor_;
  ModCheckerConfig config_;
  ModuleParser parser_;
  IntegrityChecker checker_;
  /// Per-domain persistent sessions (used when config_.reuse_sessions).
  /// Mutable: extraction is logically read-only on the checker, but warms
  /// the session cache.
  mutable vmi::VmiSessionPool session_pool_;
};

}  // namespace mc::core
