// ModChecker orchestrator — ties Module-Searcher, Module-Parser and
// Integrity-Checker together over a pool of VMs (paper Fig. 1) and applies
// the majority vote of §III ("if the number of successes n are in majority
// from the total number of comparisons (i.e. n > (t-1)/2) ... the module
// has not been altered").
//
// Since the staged-pipeline refactor this class is a thin public facade:
// every entry point composes the stages of CheckPipeline (pipeline.hpp),
// which is the single implementation of the acquire → parse → normalize →
// compare → vote → report flow.  Only sampling (the peer draw of
// check_module_sampled) lives here — it is input selection, not checking.
//
// Two execution modes:
//   * sequential — the paper's prototype: VMs are visited one after
//     another; total runtime grows linearly with the pool size (Fig. 7).
//   * parallel   — the extension the paper proposes in §V-C.1: per-VM
//     extraction/parsing/comparison run as independent tasks on a thread
//     pool; the simulated wall time is the critical path.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "modchecker/pipeline.hpp"

namespace mc::core {

class ModChecker {
 public:
  explicit ModChecker(const vmm::Hypervisor& hypervisor,
                      ModCheckerConfig config = {});

  const ModCheckerConfig& config() const { return context_.config; }

  /// Checks `module_name` on `subject` against `others` (the other t-1
  /// VMs).  Throws NotFoundError if the module is not loaded on the
  /// subject itself.
  CheckReport check_module(vmm::DomainId subject,
                           const std::string& module_name,
                           const std::vector<vmm::DomainId>& others);

  /// Convenience: subject vs every other domain in the hypervisor.
  CheckReport check_module(vmm::DomainId subject,
                           const std::string& module_name);

  /// Checks the subject against a random sample of `sample_size` peers
  /// instead of all t-1.  The paper's sequential cost is linear in the
  /// pool size (Fig. 7); sampling caps it at O(sample_size) per check.
  /// The price is vote fragility for tiny samples — quantified by the A6
  /// ablation bench: with one infected peer in the pool, sample sizes 1-2
  /// can false-alarm a clean subject (the infected copy is the sample's
  /// majority), while sample sizes >= 3 match the full vote's behaviour.
  CheckReport check_module_sampled(vmm::DomainId subject,
                                   const std::string& module_name,
                                   std::size_t sample_size,
                                   std::uint64_t seed);

  /// Cross-checks the module on every pool VM (each takes the subject
  /// role) — the mode used to localize which VM is infected.
  PoolScanReport scan_pool(const std::string& module_name,
                           const std::vector<vmm::DomainId>& pool);

  /// Compares the *module lists* across the pool: a module loaded on some
  /// VMs but missing (or DKOM-hidden) on others is itself a discrepancy,
  /// independent of any hashing.
  ListComparisonReport compare_module_lists(
      const std::vector<vmm::DomainId>& pool);

  /// Item name reported when a module's copy cannot even be parsed (its
  /// PE magics/headers are corrupted) — a definite integrity violation.
  static constexpr const char* kUnparseableItem = core::kUnparseableItem;

  /// Cross-call session reuse counters (meaningful with reuse_sessions).
  vmi::SessionPoolStats session_pool_stats() const {
    return context_.session_pool.stats();
  }

  /// Drops all pooled sessions (next check re-attaches).  Epoch/CR3
  /// staleness is detected automatically; this is for callers that mutate
  /// guest page tables in place.
  void invalidate_sessions() { context_.session_pool.invalidate_all(); }

  /// The underlying staged pipeline (advanced callers: custom drivers,
  /// stage-level instrumentation).
  CheckPipeline& pipeline() { return pipeline_; }

 private:
  /// Stage context: owns config, parser/checker and the session pool.
  CheckContext context_;
  CheckPipeline pipeline_;
};

}  // namespace mc::core
