#include "modchecker/report.hpp"

#include <sstream>

namespace mc::core {

std::string format_report(const CheckReport& report) {
  std::ostringstream os;
  os << "ModChecker report: module '" << report.module_name << "' on Dom"
     << report.subject << "\n";
  if (report.subject_unavailable) {
    os << "  verdict: UNAVAILABLE (subject exhausted acquire retries; no "
          "vote taken)\n";
  } else {
    os << "  verdict: " << (report.subject_clean ? "CLEAN" : "FLAGGED")
       << "  (matches " << report.successes << "/" << report.total_comparisons
       << ", majority threshold > " << (report.total_comparisons / 2) << ")\n";
  }
  if (report.quorum_lost) {
    os << "  QUORUM LOST: only " << report.peers_answered << "/"
       << report.peers_total << " peers answered\n";
  }
  if (!report.unavailable_on.empty()) {
    os << "  peers quarantined (no answer):";
    for (const auto vm : report.unavailable_on) {
      os << " Dom" << vm;
    }
    os << "\n";
  }
  if (!report.missing_on.empty()) {
    os << "  module missing on:";
    for (const auto vm : report.missing_on) {
      os << " Dom" << vm;
    }
    os << "\n";
  }
  if (!report.flagged_items.empty()) {
    os << "  mismatched items:\n";
    for (const auto& item : report.flagged_items) {
      os << "    - " << item << "\n";
    }
  }
  os << "  component times (simulated): searcher="
     << format_sim_nanos(report.cpu_times.searcher)
     << " parser=" << format_sim_nanos(report.cpu_times.parser)
     << " checker=" << format_sim_nanos(report.cpu_times.checker)
     << " total=" << format_sim_nanos(report.cpu_times.total()) << "\n";
  os << "  wall time (simulated): " << format_sim_nanos(report.wall_time)
     << "\n";
  for (const auto& pair : report.comparisons) {
    os << "  vs Dom" << pair.other_domain << ": "
       << (pair.all_match ? "match" : "MISMATCH");
    if (!pair.all_match) {
      os << " [";
      bool first = true;
      for (const auto& item : pair.items) {
        if (!item.match) {
          os << (first ? "" : ", ") << item.item_name;
          first = false;
        }
      }
      os << "]";
    }
    os << "\n";
  }
  if (!report.faults.empty()) {
    os << "  faults observed:\n";
    for (const auto& fault : report.faults) {
      os << "    - " << format_fault(fault) << "\n";
    }
  }
  return os.str();
}

std::string format_pool_report(const PoolScanReport& report) {
  std::ostringstream os;
  os << "Pool scan: module '" << report.module_name << "' across "
     << report.verdicts.size() << " VMs\n";
  for (const auto& v : report.verdicts) {
    if (v.quarantined) {
      os << "  Dom" << v.vm << ": QUARANTINED (acquire retries exhausted)\n";
      continue;
    }
    os << "  Dom" << v.vm << ": " << (v.clean ? "clean " : "FLAGGED")
       << " (" << v.successes << "/" << v.total << " matches)";
    if (v.quorum_lost) {
      os << " [quorum lost: " << v.peers_answered << "/" << v.peers_total
         << " peers answered]";
    }
    os << "\n";
  }
  if (!report.faults.empty()) {
    os << "  faults observed:\n";
    for (const auto& fault : report.faults) {
      os << "    - " << format_fault(fault) << "\n";
    }
  }
  os << "  wall time (simulated): " << format_sim_nanos(report.wall_time)
     << "\n";
  return os.str();
}

}  // namespace mc::core
