// Integrity-Checker — paper §III-B.3, §IV-C.
//
// Two responsibilities: (1) adjust the relative virtual addresses in
// executable content so the same code hashes identically across VMs
// (Algorithm 2, see rva_adjust.hpp), and (2) compute the MD5 of every
// header and every section-data item and compare the values pairwise
// between the subject VM's module and each other VM's copy.
#pragma once

#include <string>
#include <vector>

#include "crypto/hasher.hpp"
#include "modchecker/canonical.hpp"
#include "modchecker/rva_adjust.hpp"
#include "modchecker/types.hpp"
#include "util/sim_clock.hpp"
#include "vmi/cost_model.hpp"

namespace mc::core {

/// Outcome of comparing one integrity item between two VMs.
struct ItemComparison {
  std::string item_name;
  ItemKind kind{};
  bool match = false;
  crypto::Digest digest_subject;
  crypto::Digest digest_other;
  /// RVA-adjustment telemetry (exec sections only).
  std::uint32_t rvas_adjusted = 0;
  std::uint32_t unresolved_diffs = 0;
};

/// Outcome of comparing the subject module against one other VM's copy.
struct PairComparison {
  vmm::DomainId other_domain = 0;
  std::vector<ItemComparison> items;
  bool all_match = false;
};

class IntegrityChecker {
 public:
  /// `crc_prefilter`: compare cheap CRC32s first and compute the full
  /// digest only on CRC mismatch (evidence for the report).  Saves ~75 %
  /// of checker hashing cost on clean pools; the tradeoff is that a CRC
  /// collision could mask a difference — acceptable for the paper's
  /// accidental-divergence surface, NOT against an adversary who can
  /// target CRC32, hence off by default.
  ///
  /// `policy` pins every diff/compare kernel this checker runs to the
  /// scalar implementation (kScalar); the default honors runtime dispatch
  /// and the MC_FORCE_SCALAR escape hatch.  Verdicts are bit-identical
  /// either way.
  explicit IntegrityChecker(
      crypto::HashAlgorithm algorithm = crypto::HashAlgorithm::kMd5,
      const vmi::HostCostModel& costs = {}, bool crc_prefilter = false,
      simd::Policy policy = simd::Policy::kAuto)
      : algorithm_(algorithm),
        costs_(costs),
        crc_prefilter_(crc_prefilter),
        policy_(policy) {}

  crypto::HashAlgorithm algorithm() const { return algorithm_; }
  bool crc_prefilter() const { return crc_prefilter_; }

  /// Compares `subject` with `other` item by item.  Item lists can differ
  /// in shape when headers were tampered with (e.g. an injected section):
  /// items are matched by position and name; unmatched items count as
  /// mismatches.  Charges hashing/scan time to `clock`.
  ///
  /// With `memo`, digests (and prefilter CRCs) of items that are NOT
  /// rva-sensitive are served from the table instead of being recomputed
  /// per pair — match decisions are identical because those items compare
  /// raw bytes.  rva-sensitive items always take the exact per-pair
  /// adjustment path (their buffers are pair-specific after Algorithm 2).
  PairComparison compare(const ParsedModule& subject,
                         const ParsedModule& other, SimClock& clock,
                         DigestTable* memo = nullptr) const;

 private:
  crypto::HashAlgorithm algorithm_;
  vmi::HostCostModel costs_;
  bool crc_prefilter_;
  simd::Policy policy_;
};

}  // namespace mc::core
