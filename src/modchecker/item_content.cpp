#include "modchecker/item_content.hpp"

#include <algorithm>
#include <vector>

#include "crypto/crc32.hpp"

namespace mc::core {

crypto::Digest hash_item_content(crypto::HashAlgorithm algorithm,
                                 const IntegrityItem& item) {
  if (!item.view_backed()) {
    return crypto::hash_bytes(algorithm, item.bytes);
  }
  if (item.view.contiguous()) {
    return crypto::hash_bytes(algorithm, item.view.as_contiguous());
  }
  const std::unique_ptr<crypto::Hasher> hasher = crypto::make_hasher(algorithm);
  item.for_each_span([&](ByteView span) { hasher->update(span); });
  return hasher->finish();
}

std::uint32_t crc_item_content(const IntegrityItem& item) {
  std::uint32_t crc = 0;
  item.for_each_span([&](ByteView span) { crc = crypto::crc32(span, crc); });
  return crc;
}

bool item_content_equal(const IntegrityItem& a, const IntegrityItem& b,
                        simd::Policy policy) {
  if (a.content_size() != b.content_size()) {
    return false;
  }
  // Fast exit for the owned/contiguous common case.
  if (!a.view_backed() && !b.view_backed()) {
    return simd::equal(ByteView(a.bytes), ByteView(b.bytes), policy);
  }
  std::vector<ByteView> sa;
  std::vector<ByteView> sb;
  a.for_each_span([&](ByteView span) { sa.push_back(span); });
  b.for_each_span([&](ByteView span) { sb.push_back(span); });
  // Dual-cursor walk over the two span lists, comparing each overlap.
  std::size_t ia = 0;
  std::size_t ib = 0;
  std::size_t oa = 0;
  std::size_t ob = 0;
  while (ia < sa.size() && ib < sb.size()) {
    const std::size_t take =
        std::min(sa[ia].size() - oa, sb[ib].size() - ob);
    if (!simd::equal(sa[ia].subspan(oa, take), sb[ib].subspan(ob, take),
                     policy)) {
      return false;
    }
    oa += take;
    ob += take;
    if (oa == sa[ia].size()) {
      ++ia;
      oa = 0;
    }
    if (ob == sb[ib].size()) {
      ++ib;
      ob = 0;
    }
  }
  return true;
}

MutableByteView arena_content_copy(Arena& arena,
                                   const IntegrityItem& item) {
  MutableByteView out = arena.alloc(item.content_size());
  item.copy_content(out);
  return out;
}

}  // namespace mc::core
