// Module-format plugin interface — the seam between the format-agnostic
// checking pipeline and the concrete image parsers.
//
// ModChecker's Algorithms 1 and 2 are format-agnostic in principle
// ("decompose into items, normalize relocated absolute addresses
// pairwise, compare"); only the header walk and the loader's fixup shape
// are format-specific.  Each supported format packages exactly those two
// pieces as a ModuleFormat plugin:
//
//   * detect      — magic sniff over the first bytes of a mapped image
//                   (PE32: "MZ"; ELF64: "\x7fELF" + class/encoding).
//   * extract_items — parse the image into the plugin's own ParsedImage
//                   representation and decompose it into format-neutral
//                   IntegrityItems (Algorithm 1), preserving the dual
//                   owned/view-backed content modes.
//   * fixup_policy — the width/step/bias recipe adjust_fixups needs to
//                   undo the loader's absolute-address relocation
//                   (Algorithm 2; see FixupPolicy in rva_adjust.hpp).
//
// The plugin singletons are *defined* in their format's own library
// (src/pe/format_plugin.cpp, src/elf/format_plugin.cpp) and only declared
// here, so nothing under modchecker/ includes pe/ or elf/ headers — the
// mc_analyze `format-bypass` rule enforces that parser construction stays
// inside those TUs.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "modchecker/item.hpp"
#include "modchecker/rva_adjust.hpp"
#include "modchecker/types.hpp"
#include "util/bytes.hpp"

namespace mc::core {

/// Pipeline-level format selection: kAuto sniffs the image header; the
/// explicit values pin one plugin (CLI `--format=`, tests).
enum class ModuleFormatId {
  kAuto,
  kPe32,
  kElf64,
};

std::string to_string(ModuleFormatId id);

/// Parses "auto" | "pe32" | "elf64" (the CLI spelling).  Throws
/// InvalidArgument on anything else.
ModuleFormatId parse_module_format(std::string_view name);

/// One image format the checker understands.  Implementations are
/// stateless singletons; see pe32_format() / elf64_format().
class ModuleFormat {
 public:
  virtual ~ModuleFormat() = default;

  virtual ModuleFormatId id() const = 0;
  /// Stable lowercase name ("pe32", "elf64") — CLI/report spelling.
  virtual std::string_view name() const = 0;

  /// True if `header` (the first bytes of a mapped image, possibly fewer
  /// than kFormatSniffBytes for tiny images) carries this format's magic.
  virtual bool detect(ByteView header) const = 0;

  /// Algorithm 1: parses the image — owned buffer or zero-copy GuestView,
  /// both modes must yield identical items — and decomposes it into
  /// integrity items.  Throws FormatError on malformed images.
  virtual std::vector<IntegrityItem> extract_items(
      const ModuleImage& image) const = 0;

  /// Algorithm 2 recipe for this format's loader-applied fixups.
  virtual FixupPolicy fixup_policy() const = 0;
};

/// The plugin singletons (defined in src/pe/format_plugin.cpp and
/// src/elf/format_plugin.cpp respectively).
const ModuleFormat& pe32_format();
const ModuleFormat& elf64_format();

/// Upper bound on the header bytes detect() may examine.
inline constexpr std::size_t kFormatSniffBytes = 16;

/// Copies up to kFormatSniffBytes of the image's header into `dst`
/// (owned or view-backed alike); returns the number of bytes staged.
std::size_t read_image_header(const ModuleImage& image, MutableByteView dst);

/// Registry of every linked-in format plugin, in deterministic order
/// (pe32 first, matching the project's history).  The pipeline resolves
/// each module through this instead of naming a parser.
class FormatRegistry {
 public:
  /// The process-wide registry over the built-in plugins.
  static const FormatRegistry& process_default();

  const std::vector<const ModuleFormat*>& formats() const { return formats_; }

  /// First plugin whose magic matches; nullptr when none does.
  const ModuleFormat* detect(ByteView header) const;

  /// Plugin with the given id; nullptr for kAuto or an unknown id.
  const ModuleFormat* find(ModuleFormatId id) const;

  /// Resolves the plugin for `image`: an explicit `wanted` pins that
  /// plugin; kAuto sniffs the header.  Throws FormatError when the magic
  /// is unrecognized (the pipeline's tolerant parse turns that into a
  /// parse_failed finding, never a crash).
  const ModuleFormat& resolve(const ModuleImage& image,
                              ModuleFormatId wanted) const;

 private:
  FormatRegistry();

  std::vector<const ModuleFormat*> formats_;
};

}  // namespace mc::core
