#include "modchecker/pipeline.hpp"

#include <algorithm>
#include <future>
#include <map>
#include <set>
#include <unordered_set>
#include <utility>

#include "modchecker/searcher.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"
#include "vmi/session.hpp"

namespace mc::core {

namespace {

/// Converts the exceptions one acquire attempt can legitimately raise into
/// FaultRecords: GuestFaultError carries its record verbatim; a vanished
/// domain (NotFoundError from attach) becomes kDomainGone; a hostile page
/// table pointing outside guest RAM (MemoryError from the physical layer)
/// becomes a read fault.  Anything else — InvalidArgument, plain VmiError —
/// is API misuse and keeps unwinding.
template <typename T, typename Fn>
Fallible<T> run_acquire_attempt(vmm::DomainId vm, Fn&& attempt_fn) {
  try {
    return attempt_fn();
  } catch (const GuestFaultError& e) {
    return e.record();
  } catch (const NotFoundError& e) {
    FaultRecord fault;
    fault.code = FaultCode::kDomainGone;
    fault.domain = vm;
    fault.stage = CheckStage::kAcquire;
    fault.detail = e.what();
    return fault;
  } catch (const MemoryError& e) {
    FaultRecord fault;
    fault.code = FaultCode::kReadFault;
    fault.domain = vm;
    fault.stage = CheckStage::kAcquire;
    fault.detail = e.what();
    return fault;
  }
}

/// The Acquire retry loop: runs `attempt_fn` under `retry`, sleeping the
/// deterministic backoff (unscaled — waiting, not CPU) between tries.
/// Every fault is stamped with its attempt number and appended to
/// `faults`; non-retryable codes give up immediately.  Disengaged return
/// means the VM never answered.
template <typename T, typename Fn>
std::optional<T> acquire_with_retry(const RetryPolicy& retry,
                                    vmm::DomainId vm, SimClock& clock,
                                    std::vector<FaultRecord>& faults,
                                    std::uint32_t& attempts, Fn&& attempt_fn) {
  const std::uint32_t max_attempts =
      retry.max_attempts > 0 ? retry.max_attempts : 1;
  for (std::uint32_t attempt = 1; attempt <= max_attempts; ++attempt) {
    attempts = attempt;
    if (attempt > 1) {
      clock.advance_raw(retry.delay_before(attempt));
    }
    Fallible<T> result = run_acquire_attempt<T>(vm, attempt_fn);
    if (result.ok()) {
      return std::move(result.value());
    }
    FaultRecord fault = std::move(result.fault());
    fault.attempt = attempt;
    fault.stage = CheckStage::kAcquire;
    const bool transient = retryable_fault(fault.code);
    faults.push_back(std::move(fault));
    if (!transient) {
      break;
    }
  }
  return std::nullopt;
}

}  // namespace

// ---- Acquire ---------------------------------------------------------------

AcquireStage::Session::Session(CheckContext& ctx, vmm::DomainId vm,
                               SimClock& clock) {
  if (ctx.config.reuse_sessions) {
    lease_.emplace(ctx.session_pool.acquire(vm, clock));
  } else {
    local_.emplace(*ctx.hypervisor, vm, clock, ctx.config.vmi_costs,
                   ctx.metrics);
  }
}

vmi::VmiSession& AcquireStage::Session::session() {
  return lease_ ? lease_->session() : *local_;
}

std::vector<ModuleInfo> AcquireStage::list_modules(Session& s) const {
  return ModuleSearcher(s.session()).list_modules();
}

std::optional<ModuleInfo> AcquireStage::find_module(
    Session& s, const std::string& module_name) const {
  return ModuleSearcher(s.session()).find_module(module_name);
}

std::optional<ModuleImage> AcquireStage::extract_module(
    Session& s, const std::string& module_name) const {
  // Always an owned copy: the throwing wrapper serves consumers whose
  // extraction outlives the scan (the incremental cache, forensics).
  ctx_->pm.materializations.inc();
  return ModuleSearcher(s.session()).extract_module(module_name);
}

Fallible<std::vector<ModuleInfo>> AcquireStage::try_list_modules(
    Session& s) const {
  return ModuleSearcher(s.session()).try_list_modules();
}

Fallible<std::optional<ModuleImage>> AcquireStage::try_extract_module(
    Session& s, const std::string& module_name) const {
  if (ctx_->config.zero_copy_acquire) {
    return ModuleSearcher(s.session())
        .try_extract_module(module_name, ExtractMode::kView);
  }
  ctx_->pm.materializations.inc();
  return ModuleSearcher(s.session()).try_extract_module(module_name);
}

std::optional<std::optional<ModuleImage>> AcquireStage::extract_with_retry(
    vmm::DomainId vm, const std::string& module_name, SimClock& clock,
    std::vector<FaultRecord>& faults, std::uint32_t& attempts) const {
  return acquire_with_retry<std::optional<ModuleImage>>(
      ctx_->config.retry, vm, clock, faults, attempts,
      [&]() -> Fallible<std::optional<ModuleImage>> {
        Session session(*ctx_, vm, clock);
        return try_extract_module(session, module_name);
      });
}

std::optional<std::vector<ModuleInfo>> AcquireStage::list_with_retry(
    vmm::DomainId vm, SimClock& clock, std::vector<FaultRecord>& faults,
    std::uint32_t& attempts) const {
  return acquire_with_retry<std::vector<ModuleInfo>>(
      ctx_->config.retry, vm, clock, faults, attempts,
      [&]() -> Fallible<std::vector<ModuleInfo>> {
        Session session(*ctx_, vm, clock);
        return try_list_modules(session);
      });
}

// ---- Parse -----------------------------------------------------------------

void ParseStage::parse(const ModuleImage& image, Extraction& ex) const {
  // Host CPU work, contention-scaled (Dom0 shares the physical cores with
  // the guests).
  ex.found = true;
  SimClock parser_clock;
  parser_clock.set_slowdown(ctx_->hypervisor->dom0_slowdown());
  try {
    ex.parsed = ctx_->parser.parse(image, parser_clock);
  } catch (const FormatError& e) {
    // Corrupted PE structure (e.g. a tampered magic or header field that
    // breaks the walk): not a crash, a *finding*.
    ex.parse_failed = true;
    ex.parse_error = e.what();
  }
  ex.times.parser = parser_clock.now();
}

ParsedModule ParseStage::parse_strict(const ModuleImage& image,
                                      SimClock& clock) const {
  return ctx_->parser.parse(image, clock);
}

// ---- Normalize -------------------------------------------------------------

bool NormalizeStage::enabled() const {
  // The CRC prefilter accepts on CRC equality, which digests cannot
  // reproduce, so the fast path stands down when it is enabled.
  return ctx_->config.pool_fastpath && !ctx_->config.crc_prefilter;
}

std::optional<CanonicalPool> NormalizeStage::canonicalize(
    const std::vector<Extraction>& extractions, SimClock& clock) const {
  if (!enabled()) {
    return std::nullopt;
  }
  std::optional<CanonicalPool> canon;
  canon.emplace(ctx_->config.algorithm, ctx_->config.host_costs,
                ctx_->metrics, ctx_->policy());
  bool any = false;
  for (const auto& ex : extractions) {
    if (ex.found && !ex.parse_failed) {
      canon->add(ex.parsed, clock);
      any = true;
    }
  }
  if (any) {
    canon->finalize(clock);
  }
  return canon;
}

// ---- Compare ---------------------------------------------------------------

PairComparison CompareStage::compare(const ParsedModule& subject,
                                     const ParsedModule& other,
                                     SimClock& clock,
                                     DigestTable* memo) const {
  return ctx_->checker.compare(subject, other, clock, memo);
}

// ---- Vote ------------------------------------------------------------------

void VoteStage::finalize(std::vector<PoolVmVerdict>& verdicts) const {
  for (auto& v : verdicts) {
    v.clean = majority(v.successes, v.total);
    v.quorum_lost =
        !v.quarantined && quorum_lost(v.peers_answered, v.peers_total);
  }
}

// ---- Drivers ---------------------------------------------------------------

Extraction CheckPipeline::acquire_and_parse(vmm::DomainId vm,
                                            const std::string& module_name) {
  Extraction ex;
  const std::uint64_t pid = ctx_->config.trace_pid;

  // Module-Searcher: all guest-memory access happens here.  With session
  // reuse the per-domain session (and its V2P cache) survives across
  // calls; otherwise attach fresh, as the paper's prototype does.  A guest
  // fault is retried under the config's RetryPolicy; a VM that exhausts
  // its attempts comes back `unavailable` (quarantined), never as an
  // exception.  On a fault-free run attempt 1 succeeds and the charges are
  // bit-identical to the pre-fault-domain pipeline.
  SimClock searcher_clock;
  telemetry::SpanScope acquire_span = telemetry::span(
      ctx_->tracer, "acquire", "pipeline", pid, vm, &searcher_clock);
  acquire_span.arg("module", module_name);
  std::optional<std::optional<ModuleImage>> image = acquire_.extract_with_retry(
      vm, module_name, searcher_clock, ex.faults, ex.attempts);
  ex.times.searcher = searcher_clock.now();

  ctx_->pm.acquire_attempts.inc(ex.attempts);
  if (ex.attempts > 1) {
    ctx_->pm.acquire_retries.inc(ex.attempts - 1);
  }
  if (!ex.faults.empty()) {
    ctx_->pm.faults.inc(ex.faults.size());
  }
  ctx_->pm.acquire_ns.observe(ex.times.searcher);
  acquire_span.arg("attempts", std::uint64_t{ex.attempts});
  if (!ex.faults.empty()) {
    acquire_span.arg("faults", std::uint64_t{ex.faults.size()});
  }

  if (!image) {
    ex.unavailable = true;  // never answered; found stays false
    ctx_->pm.quarantines.inc();
    acquire_span.arg("quarantined", std::uint64_t{1});
    return ex;
  }
  acquire_span.end();
  if (!*image) {
    return ex;  // answered: module not loaded here
  }
  {
    telemetry::SpanScope parse_span =
        telemetry::span(ctx_->tracer, "parse", "pipeline", pid, vm);
    parse_span.arg("module", module_name);
    parse_.parse(**image, ex);
    parse_span.arg("sim_ns", ex.times.parser);
    if (ex.parse_failed) {
      parse_span.arg("parse_failed", std::uint64_t{1});
    }
  }
  ctx_->pm.parse_ns.observe(ex.times.parser);
  if (ex.parse_failed) {
    ctx_->pm.parse_failures.inc();
  }
  return ex;
}

CheckReport CheckPipeline::check(vmm::DomainId subject,
                                 const std::string& module_name,
                                 const std::vector<vmm::DomainId>& raw_others) {
  const ModCheckerConfig& config = ctx_->config;
  ctx_->pm.checks.inc();
  CheckReport report;
  report.module_name = module_name;
  report.subject = subject;

  // Guard against the subject sneaking into its own comparison pool (a
  // self-comparison always matches and would dilute the vote) and against
  // duplicate entries double-counting a peer.
  std::vector<vmm::DomainId> others;
  others.reserve(raw_others.size());
  std::unordered_set<vmm::DomainId> seen;
  seen.reserve(raw_others.size() + 1);
  seen.insert(subject);
  for (const vmm::DomainId vm : raw_others) {
    if (seen.insert(vm).second) {
      others.push_back(vm);
    }
  }

  // Subject extraction first (both modes need it before comparing).
  Extraction subject_ex = acquire_and_parse(subject, module_name);
  for (FaultRecord& fault : subject_ex.faults) {
    report.faults.push_back(std::move(fault));
  }
  report.peers_total = others.size();
  if (subject_ex.unavailable) {
    // The subject itself never answered: no verdict is possible.  This is
    // a degraded outcome, not caller error — report it (the module being
    // genuinely absent, below, still throws as it always has).
    report.subject_unavailable = true;
    report.cpu_times += subject_ex.times;
    report.quorum_lost = VoteStage::quorum_lost(0, report.peers_total);
    report.wall_time = report.cpu_times.total();
    return report;
  }
  if (!subject_ex.found) {
    throw NotFoundError("module '" + module_name +
                        "' not loaded on subject VM " +
                        std::to_string(subject));
  }
  report.cpu_times += subject_ex.times;

  // Digest memo: the subject's raw-byte items are hashed once here instead
  // of once per peer inside compare().  Preloading on the orchestrator's
  // clock (not inside the worker tasks) keeps parallel and sequential runs
  // charging identical totals — no task's time depends on which one
  // happened to miss the shared table first.
  std::optional<DigestTable> memo;
  SimNanos memo_preload = 0;
  if (config.digest_memo && !subject_ex.parse_failed) {
    memo.emplace(config.algorithm, config.host_costs, ctx_->metrics);
    SimClock preload_clock;
    preload_clock.set_slowdown(ctx_->hypervisor->dom0_slowdown());
    for (const IntegrityItem& item : subject_ex.parsed.items) {
      if (item.rva_sensitive) {
        continue;  // pair-specific after Algorithm 2; never memoized
      }
      if (config.crc_prefilter) {
        memo->crc(subject, item, preload_clock);
      }
      memo->digest(subject, item, preload_clock);
    }
    memo_preload = preload_clock.now();
    report.cpu_times.checker += memo_preload;
  }

  struct PerVm {
    vmm::DomainId vm;
    Extraction ex;
    PairComparison cmp;
    SimNanos checker_time = 0;
  };

  auto process_other = [&](vmm::DomainId vm) {
    PerVm r;
    r.vm = vm;
    r.ex = acquire_and_parse(vm, module_name);
    if (r.ex.found && !r.ex.parse_failed && !subject_ex.parse_failed) {
      SimClock checker_clock;
      checker_clock.set_slowdown(ctx_->hypervisor->dom0_slowdown());
      telemetry::SpanScope compare_span =
          telemetry::span(ctx_->tracer, "compare", "pipeline",
                          config.trace_pid, vm, &checker_clock);
      r.cmp = compare_.compare(subject_ex.parsed, r.ex.parsed, checker_clock,
                               memo ? &*memo : nullptr);
      r.checker_time = checker_clock.now();
      compare_span.end();
      ctx_->pm.compare_ns.observe(r.checker_time);
    }
    return r;
  };

  std::vector<PerVm> results;
  results.reserve(others.size());

  if (config.parallel && others.size() > 1) {
    ThreadPool pool(std::min(config.worker_threads, others.size()));
    std::vector<std::future<PerVm>> futures;
    futures.reserve(others.size());
    for (const vmm::DomainId vm : others) {
      futures.push_back(pool.submit([&, vm] { return process_other(vm); }));
    }
    // Simulated makespan on `worker_threads` workers: the list-scheduling
    // estimate max(longest task, total work / workers).
    SimNanos longest_task = 0;
    SimNanos total_work = 0;
    for (auto& f : futures) {
      results.push_back(f.get());
      const PerVm& r = results.back();
      const SimNanos task = r.ex.times.total() + r.checker_time;
      longest_task = std::max(longest_task, task);
      total_work += task;
    }
    const SimNanos makespan = std::max(
        longest_task, total_work / std::min<SimNanos>(config.worker_threads,
                                                      others.size()));
    report.wall_time = subject_ex.times.total() + memo_preload + makespan;
  } else {
    for (const vmm::DomainId vm : others) {
      results.push_back(process_other(vm));
    }
  }

  // Report aggregation.
  std::set<std::string> flagged;
  if (subject_ex.parse_failed) {
    flagged.insert(kUnparseableItem);
  }
  for (auto& r : results) {
    for (FaultRecord& fault : r.ex.faults) {
      report.faults.push_back(std::move(fault));
    }
    if (r.ex.unavailable) {
      // Retries exhausted: this peer casts no vote (like missing_on, its
      // time is not billed to cpu_times — it produced no comparison).
      report.unavailable_on.push_back(r.vm);
      continue;
    }
    if (!r.ex.found) {
      report.missing_on.push_back(r.vm);
      continue;
    }
    report.cpu_times += r.ex.times;
    report.cpu_times.checker += r.checker_time;
    ++report.total_comparisons;
    if (subject_ex.parse_failed || r.ex.parse_failed) {
      // An unparseable copy can never corroborate: count the comparison as
      // a definite mismatch.
      if (r.ex.parse_failed) {
        flagged.insert(kUnparseableItem);
      }
      r.cmp.other_domain = r.vm;
      r.cmp.all_match = false;
      report.comparisons.push_back(std::move(r.cmp));
      continue;
    }
    if (r.cmp.all_match) {
      ++report.successes;
    } else {
      for (const auto& item : r.cmp.items) {
        if (!item.match) {
          flagged.insert(item.item_name);
        }
      }
    }
    report.comparisons.push_back(std::move(r.cmp));
  }
  report.flagged_items.assign(flagged.begin(), flagged.end());

  // Majority vote: n > (t-1)/2 where t-1 is the number of completed
  // comparisons.
  report.subject_clean =
      VoteStage::majority(report.successes, report.total_comparisons);

  // Degraded-quorum bookkeeping: a missing-but-answering peer counts as
  // answered ("not loaded" is an answer); only quarantined peers erode the
  // quorum.
  report.peers_answered = others.size() - report.unavailable_on.size();
  report.quorum_lost =
      VoteStage::quorum_lost(report.peers_answered, report.peers_total);

  if (!config.parallel || others.size() <= 1) {
    report.wall_time = report.cpu_times.total();
  }
  return report;
}

PoolScanReport CheckPipeline::pool_scan(
    const std::string& module_name, const std::vector<vmm::DomainId>& pool) {
  const ModCheckerConfig& config = ctx_->config;
  ctx_->pm.pool_scans.inc();
  telemetry::SpanScope scan_span = telemetry::span(
      ctx_->tracer, "pool_scan", "pipeline", config.trace_pid, 0);
  scan_span.arg("module", module_name);
  scan_span.arg("pool_size", std::uint64_t{pool.size()});
  PoolScanReport report;
  report.module_name = module_name;

  // Acquire + Parse every VM once.
  std::vector<Extraction> extractions;
  extractions.reserve(pool.size());

  if (config.parallel && pool.size() > 1) {
    ThreadPool tp(std::min(config.worker_threads, pool.size()));
    std::vector<std::future<Extraction>> futures;
    for (const vmm::DomainId vm : pool) {
      futures.push_back(
          tp.submit([&, vm] { return acquire_and_parse(vm, module_name); }));
    }
    SimNanos longest = 0;
    SimNanos total_work = 0;
    for (auto& f : futures) {
      extractions.push_back(f.get());
      longest = std::max(longest, extractions.back().times.total());
      total_work += extractions.back().times.total();
    }
    report.wall_time = std::max(
        longest, total_work / std::min<SimNanos>(config.worker_threads,
                                                 pool.size()));
  } else {
    for (const vmm::DomainId vm : pool) {
      extractions.push_back(acquire_and_parse(vm, module_name));
      report.wall_time += extractions.back().times.total();
    }
  }
  for (const auto& ex : extractions) {
    report.cpu_times += ex.times;
  }

  // Pairwise comparisons; each unordered pair evaluated once and credited
  // to both VMs' vote tallies.  A quarantined VM (acquire retries
  // exhausted) has found == false, so the pair loops below exclude it
  // naturally; it is surfaced here rather than silently looking "missing".
  std::vector<PoolVmVerdict> verdicts(pool.size());
  std::size_t answered = 0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    verdicts[i].vm = pool[i];
    verdicts[i].peers_total = pool.empty() ? 0 : pool.size() - 1;
    Extraction& ex = extractions[i];
    for (FaultRecord& fault : ex.faults) {
      report.faults.push_back(std::move(fault));
    }
    if (ex.unavailable) {
      verdicts[i].quarantined = true;
      report.quarantined.push_back(pool[i]);
    } else {
      ++answered;
    }
  }
  for (std::size_t i = 0; i < pool.size(); ++i) {
    verdicts[i].peers_answered =
        answered - (extractions[i].unavailable ? 0 : 1);
  }

  // Normalize: canonical-RVA reduction against the first copy (O(t) image
  // work); eligible pairs are then decided by digest-vector comparison.
  // Any copy that does not reduce cleanly drops its pairs to the exact
  // pairwise fallback below — verdict-identical to the slow path.
  SimClock canon_clock;
  canon_clock.set_slowdown(ctx_->hypervisor->dom0_slowdown());
  telemetry::SpanScope normalize_span = telemetry::span(
      ctx_->tracer, "normalize", "pipeline", config.trace_pid, 0,
      &canon_clock);
  std::optional<CanonicalPool> canon =
      normalize_.canonicalize(extractions, canon_clock);
  const SimNanos normalize_ns = canon_clock.now();
  normalize_span.arg("fastpath_enabled",
                     std::uint64_t{canon.has_value() ? 1u : 0u});
  normalize_span.end();
  ctx_->pm.normalize_ns.observe(normalize_ns);

  // Compare covers the rest of canon_clock (the fast-path digest-vector
  // decisions) plus every exact fallback pair.
  telemetry::SpanScope compare_span = telemetry::span(
      ctx_->tracer, "compare", "pipeline", config.trace_pid, 0, &canon_clock);

  struct PairRef {
    std::size_t i;
    std::size_t j;
  };
  std::vector<PairRef> fallback;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (!extractions[i].found) {
      continue;
    }
    for (std::size_t j = i + 1; j < pool.size(); ++j) {
      if (!extractions[j].found) {
        continue;
      }
      ++verdicts[i].total;
      ++verdicts[j].total;
      if (extractions[i].parse_failed || extractions[j].parse_failed) {
        continue;  // an unparseable copy never matches anything
      }
      if (canon && canon->eligible(pool[i]) && canon->eligible(pool[j])) {
        ++report.fastpath_pairs;
        canon_clock.charge(config.host_costs.digest_pair_fixed);
        if (canon->digests(pool[i]) == canon->digests(pool[j])) {
          ++verdicts[i].successes;
          ++verdicts[j].successes;
        }
      } else {
        fallback.push_back({i, j});
      }
    }
  }
  report.fallback_pairs = fallback.size();
  report.cpu_times.checker += canon_clock.now();
  report.wall_time += canon_clock.now();

  // Exact pairwise comparisons for the fallback set.  In parallel mode
  // each pair is an independent task with its own clock and the wall cost
  // is the list-scheduling makespan.
  auto run_fallback_pair = [&](const PairRef& p) {
    SimClock pair_clock;
    pair_clock.set_slowdown(ctx_->hypervisor->dom0_slowdown());
    const PairComparison cmp = compare_.compare(
        extractions[p.i].parsed, extractions[p.j].parsed, pair_clock);
    return std::pair<bool, SimNanos>(cmp.all_match, pair_clock.now());
  };

  if (config.parallel && fallback.size() > 1) {
    ThreadPool tp(std::min(config.worker_threads, fallback.size()));
    std::vector<std::future<std::pair<bool, SimNanos>>> futures;
    futures.reserve(fallback.size());
    for (const PairRef& p : fallback) {
      futures.push_back(tp.submit([&, p] { return run_fallback_pair(p); }));
    }
    SimNanos longest = 0;
    SimNanos total_work = 0;
    for (std::size_t k = 0; k < fallback.size(); ++k) {
      const auto [all_match, task_time] = futures[k].get();
      if (all_match) {
        ++verdicts[fallback[k].i].successes;
        ++verdicts[fallback[k].j].successes;
      }
      longest = std::max(longest, task_time);
      total_work += task_time;
    }
    report.cpu_times.checker += total_work;
    report.wall_time += std::max(
        longest, total_work / std::min<SimNanos>(config.worker_threads,
                                                 fallback.size()));
  } else {
    for (const PairRef& p : fallback) {
      const auto [all_match, task_time] = run_fallback_pair(p);
      if (all_match) {
        ++verdicts[p.i].successes;
        ++verdicts[p.j].successes;
      }
      report.cpu_times.checker += task_time;
      report.wall_time += task_time;
    }
  }

  compare_span.arg("fastpath_pairs", std::uint64_t{report.fastpath_pairs});
  compare_span.arg("fallback_pairs", std::uint64_t{report.fallback_pairs});
  compare_span.end();
  ctx_->pm.fastpath_pairs.inc(report.fastpath_pairs);
  ctx_->pm.fallback_pairs.inc(report.fallback_pairs);
  ctx_->pm.compare_ns.observe(report.cpu_times.checker - normalize_ns);

  {
    telemetry::SpanScope vote_span = telemetry::span(
        ctx_->tracer, "vote", "pipeline", config.trace_pid, 0);
    vote_.finalize(verdicts);
    vote_span.arg("verdicts", std::uint64_t{verdicts.size()});
  }
  report.verdicts = std::move(verdicts);
  if (!report.quarantined.empty()) {
    scan_span.arg("quarantined", std::uint64_t{report.quarantined.size()});
  }
  scan_span.arg("sim_wall_ns", report.wall_time);
  if (config.emit_telemetry) {
    report.telemetry_json = telemetry::to_json(ctx_->metrics->snapshot());
  }
  return report;
}

ListComparisonReport CheckPipeline::compare_lists(
    const std::vector<vmm::DomainId>& pool) {
  ListComparisonReport report;
  ctx_->pm.list_scans.inc();

  // Gather each VM's loader list through introspection (retried under the
  // RetryPolicy).  A VM that never answers is *unknown*, not
  // module-absent: it drops out of the presence denominator entirely so a
  // quarantined guest does not fabricate discrepancies.
  std::map<std::string, std::vector<vmm::DomainId>> presence;
  std::vector<vmm::DomainId> responders;
  responders.reserve(pool.size());
  SimNanos wall = 0;
  for (const vmm::DomainId vm : pool) {
    SimClock clock;
    std::uint32_t attempts = 1;
    telemetry::SpanScope list_span =
        telemetry::span(ctx_->tracer, "acquire_list", "pipeline",
                        ctx_->config.trace_pid, vm, &clock);
    std::optional<std::vector<ModuleInfo>> modules =
        acquire_.list_with_retry(vm, clock, report.faults, attempts);
    list_span.arg("attempts", std::uint64_t{attempts});
    list_span.end();
    wall += clock.now();
    if (!modules) {
      report.unavailable.push_back(vm);
      continue;
    }
    responders.push_back(vm);
    for (const auto& info : *modules) {
      presence[info.name].push_back(vm);
    }
  }
  report.wall_time = wall;
  report.modules_seen = presence.size();

  for (const auto& [name, present_on] : presence) {
    if (present_on.size() == responders.size()) {
      continue;  // uniformly present across every VM that answered
    }
    ListDiscrepancy d;
    d.module_name = name;
    d.present_on = present_on;
    for (const vmm::DomainId vm : responders) {
      if (std::find(present_on.begin(), present_on.end(), vm) ==
          present_on.end()) {
        d.missing_on.push_back(vm);
      }
    }
    report.discrepancies.push_back(std::move(d));
  }
  return report;
}

}  // namespace mc::core
