// Finding triage — operator acknowledgment of known discrepancies.
//
// The paper motivates ModChecker with the pain of maintaining hash
// dictionaries for "kernel updates, third party drivers, and valid
// customized modules".  A cross-VM checker has the mirror-image problem:
// a staged rollout (update applied to some VMs first) flags honestly but
// noisily.  Triage lets an operator acknowledge a specific finding —
// keyed by the *content* of the divergent module copy, not just its name —
// so the alert stream stays actionable while the rollout completes.  If
// the module changes again (a real infection on top of the acknowledged
// update), the digest key no longer matches and the alert fires again.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "crypto/digest.hpp"
#include "modchecker/modchecker.hpp"

namespace mc::core {

/// Content key of one VM's copy of a module: a digest over the per-item
/// digests of the subject side of a failed comparison.
crypto::Digest finding_fingerprint(const CheckReport& report);

class FindingTriage {
 public:
  /// Acknowledges the current state of `report`'s subject module: future
  /// reports with the same (module, fingerprint) are suppressed.
  void acknowledge(const CheckReport& report, const std::string& reason);

  /// True if this exact finding has been acknowledged.
  bool is_acknowledged(const CheckReport& report) const;

  struct Entry {
    std::string module;
    crypto::Digest fingerprint;
    std::string reason;
  };
  const std::vector<Entry>& entries() const { return entries_; }

  /// Filters a set of audit-style reports down to unacknowledged ones.
  std::vector<const CheckReport*> unacknowledged(
      const std::vector<CheckReport>& reports) const;

 private:
  std::vector<Entry> entries_;
  std::set<std::pair<std::string, crypto::Digest>> index_;
};

}  // namespace mc::core
