// Digest memoization and canonical-RVA pool normalization.
//
// The paper's pool scan is pairwise: every unordered VM pair re-runs
// Algorithm 2 and re-hashes both module copies, so a t-VM scan does
// O(t^2) full-image work even when all copies are clean — which is the
// common case the scan exists to confirm.  Two observations collapse it
// to O(t):
//
//   1. Items that are NOT rva-sensitive (headers, read-only data) are
//      matched by digest equality of their raw bytes.  The digest of one
//      VM's item never depends on the peer, so it can be computed once per
//      VM and compared t-1 times for free (DigestTable).
//
//   2. rva-sensitive items CAN be normalized against a single reference.
//      Pick the first VM as the reference R.  For any VM X at a different
//      base, run the paper's own pairwise Algorithm 2 on (R, X): if every
//      difference resolves, both post-adjust buffers equal "R with every
//      relocation rewritten to its RVA" — a *canonical form* that is
//      independent of X (each relocation window stores RVA + base, so two
//      honest copies first differ exactly where the bases do; see the
//      eligibility proof in DESIGN.md).  Digest the canonical form once;
//      any two VMs whose copies reduce to the same canonical digest would
//      also match under a direct pairwise comparison, and vice versa.
//
// Eligibility is deliberately conservative — any of the following drops a
// VM to the exact pairwise fallback, reproducing the slow path bit for
// bit: item shape differs from R's, an adjustment leaves unresolved
// diffs, a same-base copy is not byte-identical to R, or a differing-base
// copy resolves to a *different* canonical than the one already
// established (the defense against a crafted copy that spuriously
// resolves against R: it may pair with R, exactly as it would in the slow
// path, but it cannot impersonate the honest majority's canonical).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/hasher.hpp"
#include "modchecker/types.hpp"
#include "util/simd.hpp"
#include "telemetry/registry.hpp"
#include "util/sim_clock.hpp"
#include "vmi/cost_model.hpp"

namespace mc::core {

/// Relative per-byte cost of the digest algorithms (MD5 = 1.0); roughly
/// the OpenSSL-era software throughput ratios.
constexpr double digest_cost_factor(crypto::HashAlgorithm algorithm) {
  switch (algorithm) {
    case crypto::HashAlgorithm::kMd5:
      return 1.0;
    case crypto::HashAlgorithm::kSha1:
      return 1.4;
    case crypto::HashAlgorithm::kSha256:
      return 2.3;
  }
  return 1.0;
}

/// Memo of raw-byte digests (and CRC32s) keyed by (domain, item kind,
/// item name).  Scoped to ONE scan operation: item bytes are re-extracted
/// on the next scan and may have changed, so entries must not outlive the
/// extractions they were computed from.  Thread-safe; a miss charges the
/// hashing cost to the *caller's* clock, a hit charges nothing (the work
/// truly happened once).
class DigestTable {
 public:
  /// `metrics` backs the hit/miss counters ("digest_memo.*"; null = the
  /// process default registry).
  DigestTable(crypto::HashAlgorithm algorithm, const vmi::HostCostModel& costs,
              telemetry::MetricRegistry* metrics = nullptr)
      : algorithm_(algorithm), costs_(costs) {
    telemetry::MetricRegistry& reg = telemetry::resolve(metrics);
    hits_ = reg.owned_counter("digest_memo.hits");
    misses_ = reg.owned_counter("digest_memo.misses");
  }

  /// Digest of the item's raw bytes (memoized).
  crypto::Digest digest(vmm::DomainId domain, const IntegrityItem& item,
                        SimClock& clock);

  /// CRC32 of the item's raw bytes (memoized; used by the prefilter).
  std::uint32_t crc(vmm::DomainId domain, const IntegrityItem& item,
                    SimClock& clock);

  /// Deprecated view over the registry aggregates "digest_memo.*".
  // mc-lint: allow(adhoc-stats)
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    std::optional<crypto::Digest> digest;
    std::optional<std::uint32_t> crc;
  };

  Entry& entry_for(vmm::DomainId domain, const IntegrityItem& item);

  crypto::HashAlgorithm algorithm_;
  vmi::HostCostModel costs_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  telemetry::OwnedCounter hits_;
  telemetry::OwnedCounter misses_;
};

/// Normalizes a pool of parsed copies of ONE module against a reference
/// (the first module added) and assigns each eligible VM a per-item digest
/// vector such that, for any two eligible VMs, vector equality is
/// equivalent to the slow pairwise comparison's all_match verdict.
///
/// Usage: add() every successfully parsed copy (reference first), then
/// finalize(), then query eligible()/digests().  Added modules must
/// outlive the pool (the reference's item bytes are borrowed).
/// Single-threaded by design: canonicalization is the O(t) part and runs
/// on the orchestrator's clock.
class CanonicalPool {
 public:
  /// `metrics` backs the eligibility counters ("canonical.*"; null = the
  /// process default registry).  `policy` pins the pool's diff/compare
  /// kernels scalar (verdicts are dispatch-invariant either way).
  CanonicalPool(crypto::HashAlgorithm algorithm,
                const vmi::HostCostModel& costs,
                telemetry::MetricRegistry* metrics = nullptr,
                simd::Policy policy = simd::Policy::kAuto)
      : algorithm_(algorithm), costs_(costs), policy_(policy) {
    telemetry::MetricRegistry& reg = telemetry::resolve(metrics);
    eligible_count_ = reg.owned_counter("canonical.eligible");
    ineligible_count_ = reg.owned_counter("canonical.ineligible");
    canonicals_established_ =
        reg.owned_counter("canonical.canonicals_established");
  }

  /// Canonicalizes one VM's copy, charging adjustment/hashing time to
  /// `clock`.  The first module added becomes the reference.
  void add(const ParsedModule& module, SimClock& clock);

  /// Resolves the reference's own digest vector (canonical digests where
  /// established, raw digests elsewhere) and back-fills every same-base
  /// entry that shares it.  Call after the last add().
  void finalize(SimClock& clock);

  /// Post-finalize re-canonicalization of ONE VM's copy — the incremental
  /// scanner's partial-refresh hook.  Replaces (or inserts) the VM's
  /// entry, charging only this copy's adjustment/hashing to `clock`; the
  /// unchanged members keep their vectors, so a pool whose reference is
  /// stable re-normalizes O(changed copies) instead of O(t) per tick.
  /// The reference module must be unchanged (callers rebuild the pool when
  /// it is not) and the updated VM must not be the reference.  If this
  /// copy establishes an item's canonical digest (first differing-base
  /// eligible partner the pool has seen), the reference digest vector and
  /// every entry sharing it are re-pinned to the canonical value —
  /// digest-vector equality stays equivalent to the pairwise verdict.
  ///
  /// `changed_rvas` (optional) are the [lo, hi) image-relative byte
  /// ranges known to cover EVERY byte that changed since this VM's
  /// previous entry (the incremental scanner's dirty-page mask).  Items
  /// whose span misses every range — and whose span matched last time —
  /// reuse the previous entry's digest for free: their bytes are
  /// untouched, and any fixup-table change implies some overlapping
  /// item's bytes changed, which re-canonicalizes honestly and decides
  /// the pair either way.  Null (or a base/shape change) recomputes all.
  void update(const ParsedModule& module, SimClock& clock,
              const std::vector<std::pair<std::uint32_t, std::uint32_t>>*
                  changed_rvas = nullptr);

  /// True if `vm` was added and reduced cleanly to the canonical form.
  bool eligible(vmm::DomainId vm) const;

  /// Post-finalize: per-item digests in reference item order.  Two
  /// eligible VMs' modules pairwise-match iff their vectors are equal.
  const std::vector<crypto::Digest>& digests(vmm::DomainId vm) const;

  /// Deprecated view over the registry aggregates "canonical.*".
  // mc-lint: allow(adhoc-stats)
  struct Stats {
    std::uint64_t eligible = 0;
    std::uint64_t ineligible = 0;
    /// rva-sensitive items whose canonical digest got established by a
    /// differing-base partner.
    std::uint64_t canonicals_established = 0;
  };
  Stats stats() const {
    Stats snap;
    snap.eligible = eligible_count_.value();
    snap.ineligible = ineligible_count_.value();
    snap.canonicals_established = canonicals_established_.value();
    return snap;
  }

 private:
  struct Entry {
    bool eligible = false;
    /// Load base the entry was canonicalized at (update()'s reuse guard).
    std::uint32_t base = 0;
    std::vector<crypto::Digest> digests;
    /// Items whose digest equals the reference's (resolved in finalize()).
    std::vector<std::size_t> ref_items;
    /// Per-item [rva, rva + content_size) spans at canonicalization time:
    /// update() reuses digests[i] only when spans[i] is unchanged AND
    /// misses every changed byte range.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> spans;
  };

  crypto::HashAlgorithm algorithm_;
  vmi::HostCostModel costs_;
  simd::Policy policy_;

  const ParsedModule* reference_ = nullptr;
  /// Per reference item: canonical digest established by the first
  /// differing-base eligible partner (rva-sensitive items only).
  std::vector<std::optional<crypto::Digest>> canonical_;
  std::vector<crypto::Digest> ref_digests_;  // valid after finalize()
  bool finalized_ = false;

  std::map<vmm::DomainId, Entry> entries_;
  telemetry::OwnedCounter eligible_count_;
  telemetry::OwnedCounter ineligible_count_;
  telemetry::OwnedCounter canonicals_established_;
};

}  // namespace mc::core
