#include "modchecker/audit.hpp"

#include <sstream>
#include <utility>

#include "guestos/profile.hpp"
#include "util/error.hpp"
#include "vmi/session.hpp"

namespace mc::core {

AuditReport audit_modules(const vmm::Hypervisor& hypervisor,
                          const std::vector<std::string>& modules,
                          const std::vector<vmm::DomainId>& pool,
                          const ModCheckerConfig& config) {
  AuditReport report;
  report.modules = modules;
  report.pool = pool;

  ModChecker checker(hypervisor, config);
  for (const auto& module : modules) {
    PoolScanReport scan = checker.scan_pool(module, pool);
    report.total_wall += scan.wall_time;
    report.total_cpu += scan.cpu_times;
    for (const auto& verdict : scan.verdicts) {
      if (!verdict.clean) {
        report.findings.push_back(
            {module, verdict.vm, verdict.successes, verdict.total});
      }
    }
    report.scans.push_back(std::move(scan));
  }
  return report;
}

std::string format_audit_report(const AuditReport& report) {
  std::ostringstream os;
  os << "Cloud audit: " << report.modules.size() << " module(s) x "
     << report.pool.size() << " VM(s)\n";

  os << "         module";
  for (const auto vm : report.pool) {
    os << "  Dom" << vm;
  }
  os << "\n";
  for (std::size_t m = 0; m < report.scans.size(); ++m) {
    char name[32];
    std::snprintf(name, sizeof name, "%15s", report.modules[m].c_str());
    os << name;
    for (const auto& verdict : report.scans[m].verdicts) {
      os << (verdict.clean ? "   ok " : " FLAG ");
    }
    os << "\n";
  }

  os << "findings: " << report.findings.size() << "\n";
  for (const auto& f : report.findings) {
    os << "  - " << f.module << " on Dom" << f.vm << " (" << f.successes
       << "/" << f.total << " matches)\n";
  }
  os << "simulated cost: wall " << format_sim_nanos(report.total_wall)
     << ", cpu " << format_sim_nanos(report.total_cpu.total()) << "\n";
  return os.str();
}

std::map<std::uint32_t, std::vector<vmm::DomainId>> group_by_guest_version(
    const vmm::Hypervisor& hypervisor, const std::vector<vmm::DomainId>& pool,
    const vmi::VmiCostModel& costs) {
  std::map<std::uint32_t, std::vector<vmm::DomainId>> groups;
  for (const vmm::DomainId vm : pool) {
    SimClock clock;
    vmi::VmiSession session(hypervisor, vm, clock, costs);
    groups[session.guest_version()].push_back(vm);
  }
  return groups;
}

VersionGroups group_pool_by_version(const vmm::Hypervisor& hypervisor,
                                    const std::vector<vmm::DomainId>& pool,
                                    const vmi::VmiCostModel& costs) {
  VersionGroups out;
  for (const vmm::DomainId vm : pool) {
    SimClock clock;
    try {
      vmi::VmiSession session(hypervisor, vm, clock, costs);
      Fallible<std::uint32_t> version = session.try_guest_version();
      if (!version.ok()) {
        out.faults.push_back(std::move(version.fault()));
        out.unrecognized.push_back(vm);
        continue;
      }
      if (guestos::find_profile_by_version(version.value()) == nullptr) {
        FaultRecord fault;
        fault.code = FaultCode::kUnrecognizedBuild;
        fault.domain = vm;
        fault.stage = CheckStage::kAcquire;
        fault.detail = "no guest profile for version id " +
                       std::to_string(version.value());
        out.faults.push_back(std::move(fault));
        out.unrecognized.push_back(vm);
        continue;
      }
      out.recognized[version.value()].push_back(vm);
    } catch (const NotFoundError& e) {
      // Domain listed but gone by attach time.
      FaultRecord fault;
      fault.code = FaultCode::kDomainGone;
      fault.domain = vm;
      fault.stage = CheckStage::kAcquire;
      fault.detail = e.what();
      out.faults.push_back(std::move(fault));
      out.unrecognized.push_back(vm);
    }
  }
  return out;
}

}  // namespace mc::core
