// Forensic divergence analysis — the "deeper analysis" stage the paper
// hands off to after ModChecker flags a discrepancy (§III Discussion, §VI).
//
// Given the subject's copy of a module and a clean reference copy, this
// module pinpoints *where* a flagged item diverges after RVA normalization,
// classifies the divergence, and (for executable content) renders a
// disassembly listing around the first difference — the analyst view the
// paper shows in its Figs. 5/6 screenshots.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "modchecker/types.hpp"

namespace mc::core {

/// One contiguous run of differing bytes (offsets within the item).
struct DiffRange {
  std::uint32_t offset = 0;
  std::uint32_t length = 0;
};

enum class DivergenceClass {
  kNone,             // item matches after normalization
  kContentPatch,     // small, localized byte changes (E1/E3-style)
  kCodeInjection,    // differences include a formerly zero cave (E2-style)
  kStructural,       // item exists on one side only / size mismatch (E4)
  kHeaderField,      // difference confined to a header item
};

std::string to_string(DivergenceClass cls);

struct ForensicReport {
  std::string module;
  std::string item;
  DivergenceClass classification = DivergenceClass::kNone;
  std::uint32_t rvas_adjusted = 0;
  std::vector<DiffRange> ranges;
  std::size_t differing_bytes = 0;
  /// Disassembly around the first difference (executable items only).
  std::string subject_listing;
  std::string reference_listing;
  /// Printable string nearest the first difference (non-code items) —
  /// e.g. "This program cannot be run in CHK mode." for the E3 patch.
  std::string context_string;
};

/// Analyzes one item's divergence between `subject` and `reference`
/// (typically a copy from a VM that voted clean).  The item is looked up
/// by name on both sides; a missing side yields kStructural.
ForensicReport analyze_divergence(const ParsedModule& subject,
                                  const ParsedModule& reference,
                                  const std::string& item_name);

/// Analyzes every flagged item of a pair comparison.
std::vector<ForensicReport> analyze_all_flagged(
    const ParsedModule& subject, const ParsedModule& reference);

std::string format_forensic_report(const ForensicReport& report);

}  // namespace mc::core
