// Module-Parser — paper §III-B.2, §IV-B, Algorithm 1.
//
// Receives a whole module image from Module-Searcher, validates the PE
// magics, walks IMAGE_DOS_HEADER → IMAGE_NT_HEADER → FILE/OPTIONAL headers
// → section headers, and extracts each header and each read-only or
// executable section's data as a separate integrity item.  Host-side CPU
// work, charged to a SimClock through the host cost model.
#pragma once

#include "modchecker/types.hpp"
#include "util/sim_clock.hpp"
#include "vmi/cost_model.hpp"

namespace mc::core {

class ModuleParser {
 public:
  explicit ModuleParser(const vmi::HostCostModel& costs = {})
      : costs_(costs) {}

  /// Parses `image` into integrity items.  Throws FormatError if the image
  /// is not a well-formed PE32 module.  Charges parse time to `clock`.
  ParsedModule parse(const ModuleImage& image, SimClock& clock) const;

 private:
  vmi::HostCostModel costs_;
};

}  // namespace mc::core
