// Module-Parser — paper §III-B.2, §IV-B, Algorithm 1.
//
// Receives a whole module image from Module-Searcher, resolves the image
// format through the plugin registry (PE32 "MZ" vs ELF64 "\x7fELF" magic,
// or a pinned override), and lets the plugin walk the header chain and
// extract each header and each read-only or executable section's data as
// a separate integrity item.  Host-side CPU work, charged to a SimClock
// through the host cost model.
#pragma once

#include "modchecker/format.hpp"
#include "modchecker/types.hpp"
#include "util/sim_clock.hpp"
#include "vmi/cost_model.hpp"

namespace mc::core {

class ModuleParser {
 public:
  explicit ModuleParser(const vmi::HostCostModel& costs = {},
                        ModuleFormatId format = ModuleFormatId::kAuto)
      : costs_(costs), format_(format) {}

  /// Parses `image` into integrity items.  Throws FormatError if the image
  /// is not a well-formed module of a registered format (or of the pinned
  /// format when one was configured).  Charges parse time to `clock`.
  ParsedModule parse(const ModuleImage& image, SimClock& clock) const;

 private:
  vmi::HostCostModel costs_;
  ModuleFormatId format_ = ModuleFormatId::kAuto;
};

}  // namespace mc::core
