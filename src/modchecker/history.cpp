#include "modchecker/history.hpp"

#include <algorithm>
#include <sstream>

namespace mc::core {

FindingHistory& ScanHistory::slot(const std::string& module,
                                  vmm::DomainId vm) {
  const auto key = std::make_pair(module, vm);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    return findings_[it->second];
  }
  index_.emplace(key, findings_.size());
  FindingHistory h;
  h.module = module;
  h.vm = vm;
  findings_.push_back(std::move(h));
  return findings_.back();
}

void ScanHistory::observe(SimNanos time, const std::string& module,
                          vmm::DomainId vm, bool flagged) {
  ++observations_;
  FindingHistory& h = slot(module, vm);
  if (flagged) {
    if (h.times_flagged == 0) {
      h.first_flagged = time;
    } else if (!h.currently_flagged) {
      ++h.flaps;  // was clean after flagging, now flagged again
    }
    h.last_flagged = time;
    ++h.times_flagged;
    h.currently_flagged = true;
  } else {
    if (h.times_flagged > 0) {
      ++h.times_clean_after_flag;
      h.last_clean_seen = time;
    }
    h.currently_flagged = false;
  }
}

void ScanHistory::ingest(const ScheduleReport& report) {
  for (const auto& scan : report.scans) {
    // Every VM in a scan is an observation for that module; flagged VMs
    // are listed, the rest observed clean.  We do not know the pool here,
    // so derive observations from the flag list plus prior knowledge:
    // flagged pairs observed flagged, previously-known pairs not in the
    // flag list observed clean.
    for (const auto vm : scan.flagged) {
      observe(scan.finished, scan.module, vm, true);
    }
    for (auto& h : findings_) {
      if (h.module != scan.module) {
        continue;
      }
      if (std::find(scan.flagged.begin(), scan.flagged.end(), h.vm) ==
          scan.flagged.end()) {
        observe(scan.finished, scan.module, h.vm, false);
      }
    }
  }
}

std::vector<const FindingHistory*> ScanHistory::active() const {
  std::vector<const FindingHistory*> out;
  for (const auto& h : findings_) {
    if (h.currently_flagged) {
      out.push_back(&h);
    }
  }
  return out;
}

std::vector<const FindingHistory*> ScanHistory::flapping() const {
  std::vector<const FindingHistory*> out;
  for (const auto& h : findings_) {
    if (h.flaps > 0) {
      out.push_back(&h);
    }
  }
  return out;
}

std::string format_history(const ScanHistory& history, SimNanos now) {
  std::ostringstream os;
  os << "Scan history: " << history.findings().size() << " finding(s), "
     << history.total_observations() << " observation(s)\n";
  for (const auto& h : history.findings()) {
    os << "  " << h.module << " on Dom" << h.vm << ": "
       << (h.currently_flagged ? "ACTIVE" : "resolved") << ", flagged "
       << h.times_flagged << "x, flaps " << h.flaps << ", exposure "
       << format_sim_nanos(h.exposure(now)) << "\n";
  }
  return os.str();
}

}  // namespace mc::core
