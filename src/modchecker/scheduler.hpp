// Continuous-monitoring scan scheduler.
//
// The paper positions ModChecker as a periodic, light-weight consistency
// check whose alarms trigger heavier analysis.  This module turns the
// one-shot checker into that service: per-module scan policies (interval +
// phase), a simulated timeline on which scans execute serially in Dom0
// (they share the privileged VM's CPU), alert deduplication, and a
// timeline report with per-scan costs.
#pragma once

#include <cstdint>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "modchecker/modchecker.hpp"

namespace mc::core {

struct ScanPolicy {
  std::string module;
  SimNanos interval = sim_ms(60000);  // simulated time between scans
  SimNanos phase = 0;                 // first scan due at `phase`
};

struct ScanRecord {
  SimNanos due = 0;       // when the scan was scheduled to start
  SimNanos started = 0;   // actual start (>= due if the queue was busy)
  SimNanos finished = 0;
  std::string module;
  /// Which checker instance ran the scan (always 0 with one partition).
  std::size_t partition = 0;
  std::vector<vmm::DomainId> flagged;  // VMs whose vote failed
};

struct Alert {
  SimNanos time = 0;
  std::string module;
  vmm::DomainId vm = 0;
  bool is_new = false;  // first time this (module, vm) pair fired
};

struct ScheduleReport {
  std::vector<ScanRecord> scans;
  std::vector<Alert> alerts;
  SimNanos horizon = 0;
  SimNanos busy_time = 0;  // total simulated time spent scanning
  /// Per-checker-instance busy time (one entry per partition; the single
  /// classic instance yields {busy_time}).
  std::vector<SimNanos> partition_busy;
  /// Latest simulated finish time across all scans (with one partition
  /// this is the last scan's finish; with several it is the slowest
  /// instance's).
  SimNanos makespan = 0;

  double duty_cycle() const {
    return horizon == 0 ? 0.0
                        : static_cast<double>(busy_time) /
                              static_cast<double>(horizon);
  }
  std::size_t new_alert_count() const;
};

class ScanScheduler {
 public:
  ScanScheduler(const vmm::Hypervisor& hypervisor,
                std::vector<vmm::DomainId> pool,
                ModCheckerConfig config = {});

  void add_policy(const ScanPolicy& policy);

  /// Models `count` parallel checker instances in Dom0 (the paper's §V-C.1
  /// parallel-access extension).  Modules are assigned to instances by a
  /// consistent-hash ring over the module name — the same partitioning
  /// primitive the sharded fleet coordinator uses for pools — so one
  /// module's scans stay serial on one instance (its warm session is
  /// instance-local) while different modules overlap.  count == 1 (the
  /// default) reproduces the classic serial timeline exactly.
  void set_partitions(std::size_t count);

  /// Runs the schedule on the simulated timeline until `horizon`.
  /// Scans of modules sharing a checker instance execute back-to-back
  /// when due times collide; a scan due before its instance frees up
  /// starts late.
  ScheduleReport run_until(SimNanos horizon);

 private:
  const vmm::Hypervisor* hypervisor_;
  std::vector<vmm::DomainId> pool_;
  ModChecker checker_;
  std::vector<ScanPolicy> policies_;
  std::size_t partitions_ = 1;
};

std::string format_schedule_report(const ScheduleReport& report);

}  // namespace mc::core
