// Module-Searcher — the only ModChecker component that touches guest
// memory (paper §III-B.1, §IV-A).
//
// Obtains PsLoadedModuleList via the introspection session, traverses the
// doubly linked LDR_DATA_TABLE_ENTRY list by FLINK, matches BaseDllName
// case-insensitively, and copies the whole module image (DllBase,
// SizeOfImage) from guest memory into a local buffer — page by page, which
// is why this component dominates runtime (§V-C.1).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "modchecker/types.hpp"
#include "vmi/session.hpp"

namespace mc::core {

class ModuleSearcher {
 public:
  explicit ModuleSearcher(vmi::VmiSession& session) : session_(&session) {}

  /// Walks the loader list and returns every module's basic facts.
  std::vector<ModuleInfo> list_modules();

  /// Finds `module_name` in the list; nullopt if not loaded.
  std::optional<ModuleInfo> find_module(const std::string& module_name);

  /// Finds the module and copies its entire image out of guest memory.
  /// Returns nullopt if the module is not loaded.
  std::optional<ModuleImage> extract_module(const std::string& module_name);

 private:
  vmi::VmiSession* session_;
};

}  // namespace mc::core
