// Module-Searcher — the only ModChecker component that touches guest
// memory (paper §III-B.1, §IV-A).
//
// Obtains PsLoadedModuleList via the introspection session, traverses the
// doubly linked LDR_DATA_TABLE_ENTRY list by FLINK, matches BaseDllName
// case-insensitively, and copies the whole module image (DllBase,
// SizeOfImage) from guest memory into a local buffer — page by page, which
// is why this component dominates runtime (§V-C.1).
//
// The `try_*` entry points are the fault-aware core: any guest fault the
// session reports (or an unrecognized guest build) comes back as a
// FaultRecord rather than unwinding the caller.  The legacy throwing
// methods wrap them, re-raising GuestFaultError — or NotFoundError for an
// unrecognized build, preserving the historical profile_by_version
// contract.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "guestos/profile.hpp"
#include "modchecker/types.hpp"
#include "util/fault.hpp"
#include "vmi/session.hpp"

namespace mc::core {

/// How try_extract_module returns the image bytes.
enum class ExtractMode {
  kCopy,  // owned buffer: survives the scan (caches, forensics, dumps)
  kView,  // borrowed GuestView: zero-copy, valid for the current scan
};

class ModuleSearcher {
 public:
  explicit ModuleSearcher(vmi::VmiSession& session) : session_(&session) {}

  // ---- Fault-returning core ------------------------------------------------

  /// Walks the loader list and returns every module's basic facts.
  Fallible<std::vector<ModuleInfo>> try_list_modules();

  /// Finds `module_name` in the list; an engaged optional means found, a
  /// disengaged one means the walk completed and the module is not loaded
  /// (which is an answer, not a fault).
  Fallible<std::optional<ModuleInfo>> try_find_module(
      const std::string& module_name);

  /// Finds the module and acquires its entire image from guest memory —
  /// copied page by page (kCopy), or as borrowed spans over the guest's
  /// frames (kView; identical simulated cost, no host copy).
  Fallible<std::optional<ModuleImage>> try_extract_module(
      const std::string& module_name, ExtractMode mode = ExtractMode::kCopy);

  // ---- Legacy throwing wrappers --------------------------------------------

  std::vector<ModuleInfo> list_modules();
  std::optional<ModuleInfo> find_module(const std::string& module_name);
  std::optional<ModuleImage> extract_module(const std::string& module_name);

 private:
  /// Resolves the guest's profile or reports why it cannot (debug-block
  /// fault or unrecognized build).
  Fallible<const guestos::GuestProfile*> try_profile();

  vmi::VmiSession* session_;
};

}  // namespace mc::core
