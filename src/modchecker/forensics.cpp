#include "modchecker/forensics.hpp"

#include <algorithm>
#include <sstream>

#include "modchecker/rva_adjust.hpp"
#include "pe/strings.hpp"
#include "util/simd.hpp"
#include "x86/disasm.hpp"

namespace mc::core {

namespace {

const IntegrityItem* find_item(const ParsedModule& module,
                                   const std::string& name) {
  for (const auto& item : module.items) {
    if (item.name == name) {
      return &item;
    }
  }
  return nullptr;
}

std::vector<DiffRange> collect_ranges(ByteView a, ByteView b) {
  std::vector<DiffRange> ranges;
  const std::size_t common = std::min(a.size(), b.size());
  // Equal stretches dominate a real divergence, so skip them through the
  // word-compare dispatcher; only the (short) differing run is walked
  // byte-by-byte to find its end.
  std::size_t i = simd::mismatch(a.data(), b.data(), common, 0);
  while (i < common) {
    std::size_t j = i;
    while (j < common && a[j] != b[j]) {
      ++j;
    }
    ranges.push_back({static_cast<std::uint32_t>(i),
                      static_cast<std::uint32_t>(j - i)});
    i = simd::mismatch(a.data(), b.data(), common, j);
  }
  if (a.size() != b.size()) {
    ranges.push_back({static_cast<std::uint32_t>(common),
                      static_cast<std::uint32_t>(
                          std::max(a.size(), b.size()) - common)});
  }
  return ranges;
}

/// Starts a listing a little before `offset`, snapped to an instruction
/// boundary where possible (walk from the range start backwards is hard
/// without boundaries; we simply back off a fixed window).
std::string listing_around(ByteView code, std::uint32_t offset) {
  const std::uint32_t start = offset > 8 ? offset - 8 : 0;
  return x86::format_listing(code, start, 8);
}

}  // namespace

std::string to_string(DivergenceClass cls) {
  switch (cls) {
    case DivergenceClass::kNone:
      return "none";
    case DivergenceClass::kContentPatch:
      return "content-patch";
    case DivergenceClass::kCodeInjection:
      return "code-injection (opcode cave)";
    case DivergenceClass::kStructural:
      return "structural";
    case DivergenceClass::kHeaderField:
      return "header-field";
  }
  return "?";
}

ForensicReport analyze_divergence(const ParsedModule& subject,
                                  const ParsedModule& reference,
                                  const std::string& item_name) {
  ForensicReport report;
  report.module = subject.name;
  report.item = item_name;

  const IntegrityItem* sub = find_item(subject, item_name);
  const IntegrityItem* ref = find_item(reference, item_name);
  if (sub == nullptr || ref == nullptr) {
    report.classification = DivergenceClass::kStructural;
    return report;
  }

  // Forensics is a sanctioned materialization point: the report outlives
  // the scan, so view-backed items get owned copies here.
  Bytes a = sub->content_copy();  // mc-lint: allow(hotpath-copy)
  Bytes b = ref->content_copy();  // mc-lint: allow(hotpath-copy)
  if (sub->rva_sensitive) {
    const RvaAdjustResult adj =
        adjust_rvas(a, subject.base, b, reference.base);
    report.rvas_adjusted = adj.adjusted;
  }

  report.ranges = collect_ranges(a, b);
  for (const auto& r : report.ranges) {
    report.differing_bytes += r.length;
  }
  if (report.ranges.empty()) {
    report.classification = DivergenceClass::kNone;
    return report;
  }
  if (a.size() != b.size()) {
    report.classification = DivergenceClass::kStructural;
  } else if (sub->kind != ItemKind::kSectionData) {
    report.classification = DivergenceClass::kHeaderField;
  } else {
    // Code injection signature: some differing range was all-zero in the
    // reference (a cave that got filled).
    bool cave_filled = false;
    for (const auto& r : report.ranges) {
      const ByteView ref_range = ByteView(b).subspan(r.offset, r.length);
      if (r.length >= 4 &&
          std::all_of(ref_range.begin(), ref_range.end(),
                      [](std::uint8_t v) { return v == 0; })) {
        cave_filled = true;
        break;
      }
    }
    report.classification = cave_filled ? DivergenceClass::kCodeInjection
                                        : DivergenceClass::kContentPatch;
  }

  if (sub->rva_sensitive && !report.ranges.empty()) {
    report.subject_listing = listing_around(a, report.ranges[0].offset);
    report.reference_listing = listing_around(b, report.ranges[0].offset);
  } else if (!report.ranges.empty()) {
    // Non-code divergence: show the nearest human-readable text.
    report.context_string = pe::string_near(a, report.ranges[0].offset);
  }
  return report;
}

std::vector<ForensicReport> analyze_all_flagged(const ParsedModule& subject,
                                                const ParsedModule& reference) {
  std::vector<ForensicReport> reports;
  // Union of item names from both sides, preserving subject order.
  std::vector<std::string> names;
  for (const auto& item : subject.items) {
    names.push_back(item.name);
  }
  for (const auto& item : reference.items) {
    if (std::find(names.begin(), names.end(), item.name) == names.end()) {
      names.push_back(item.name);
    }
  }
  for (const auto& name : names) {
    ForensicReport r = analyze_divergence(subject, reference, name);
    if (r.classification != DivergenceClass::kNone) {
      reports.push_back(std::move(r));
    }
  }
  return reports;
}

std::string format_forensic_report(const ForensicReport& report) {
  std::ostringstream os;
  os << "Forensic analysis: " << report.module << " / " << report.item
     << "\n";
  os << "  classification : " << to_string(report.classification) << "\n";
  os << "  differing bytes: " << report.differing_bytes << " in "
     << report.ranges.size() << " range(s)\n";
  if (report.rvas_adjusted != 0) {
    os << "  RVAs normalized: " << report.rvas_adjusted << "\n";
  }
  for (std::size_t i = 0; i < std::min<std::size_t>(report.ranges.size(), 8);
       ++i) {
    const auto& r = report.ranges[i];
    os << "  range " << i << ": item offset 0x" << std::hex << r.offset
       << std::dec << ", " << r.length << " byte(s)\n";
  }
  if (!report.context_string.empty()) {
    os << "  nearby text    : \"" << report.context_string << "\"\n";
  }
  if (!report.subject_listing.empty()) {
    os << "  subject code around first difference:\n";
    std::istringstream sub(report.subject_listing);
    for (std::string line; std::getline(sub, line);) {
      os << "    " << line << "\n";
    }
    os << "  reference code at the same location:\n";
    std::istringstream ref(report.reference_listing);
    for (std::string line; std::getline(ref, line);) {
      os << "    " << line << "\n";
    }
  }
  return os.str();
}

}  // namespace mc::core
