#include "modchecker/scheduler.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/hash_ring.hpp"

namespace mc::core {

namespace {
struct DueScan {
  SimNanos due;
  std::size_t policy_index;
  // Min-heap by due time; ties broken by policy order for determinism.
  bool operator>(const DueScan& other) const {
    return due != other.due ? due > other.due
                            : policy_index > other.policy_index;
  }
};
}  // namespace

std::size_t ScheduleReport::new_alert_count() const {
  return static_cast<std::size_t>(
      std::count_if(alerts.begin(), alerts.end(),
                    [](const Alert& a) { return a.is_new; }));
}

ScanScheduler::ScanScheduler(const vmm::Hypervisor& hypervisor,
                             std::vector<vmm::DomainId> pool,
                             ModCheckerConfig config)
    : hypervisor_(&hypervisor),
      pool_(std::move(pool)),
      checker_(hypervisor, std::move(config)) {
  MC_CHECK(pool_.size() >= 2, "scheduler needs a pool of at least two VMs");
}

void ScanScheduler::add_policy(const ScanPolicy& policy) {
  MC_CHECK(policy.interval > 0, "scan interval must be positive");
  policies_.push_back(policy);
}

void ScanScheduler::set_partitions(std::size_t count) {
  MC_CHECK(count >= 1, "scheduler needs at least one checker instance");
  partitions_ = count;
}

ScheduleReport ScanScheduler::run_until(SimNanos horizon) {
  ScheduleReport report;
  report.horizon = horizon;

  std::priority_queue<DueScan, std::vector<DueScan>, std::greater<>> queue;
  for (std::size_t i = 0; i < policies_.size(); ++i) {
    queue.push({policies_[i].phase, i});
  }

  // Module → checker-instance assignment via the consistent-hash ring:
  // with one partition every module maps to instance 0 and the loop below
  // degenerates to the classic serial-Dom0 timeline.
  HashRing ring;
  for (std::size_t p = 0; p < partitions_; ++p) {
    ring.add_node(p);
  }

  std::set<std::pair<std::string, vmm::DomainId>> known_alerts;
  // When a partition's checker instance frees up (each is serial; they
  // model parallel privileged-VM checkers sharing nothing but the clock).
  std::vector<SimNanos> free_at(partitions_, 0);
  report.partition_busy.assign(partitions_, 0);

  while (!queue.empty() && queue.top().due < horizon) {
    const DueScan due_scan = queue.top();
    queue.pop();
    const ScanPolicy& policy = policies_[due_scan.policy_index];
    const std::size_t partition = ring.owner(policy.module);

    ScanRecord record;
    record.due = due_scan.due;
    record.started = std::max(due_scan.due, free_at[partition]);
    record.module = policy.module;
    record.partition = partition;

    const PoolScanReport scan = checker_.scan_pool(policy.module, pool_);
    record.finished = record.started + scan.wall_time;
    free_at[partition] = record.finished;
    report.busy_time += scan.wall_time;
    report.partition_busy[partition] += scan.wall_time;
    report.makespan = std::max(report.makespan, record.finished);

    for (const auto& verdict : scan.verdicts) {
      if (verdict.clean || verdict.total == 0) {
        continue;
      }
      record.flagged.push_back(verdict.vm);
      Alert alert;
      alert.time = record.finished;
      alert.module = policy.module;
      alert.vm = verdict.vm;
      alert.is_new =
          known_alerts.insert({policy.module, verdict.vm}).second;
      report.alerts.push_back(alert);
    }
    report.scans.push_back(std::move(record));

    queue.push({due_scan.due + policy.interval, due_scan.policy_index});
  }
  return report;
}

std::string format_schedule_report(const ScheduleReport& report) {
  std::ostringstream os;
  os << "Scan schedule: " << report.scans.size() << " scan(s) over "
     << format_sim_nanos(report.horizon) << ", duty cycle "
     << static_cast<int>(report.duty_cycle() * 10000) / 100.0 << "%\n";
  for (const auto& scan : report.scans) {
    os << "  t=" << format_sim_nanos(scan.started) << "  " << scan.module;
    if (scan.flagged.empty()) {
      os << "  clean\n";
    } else {
      os << "  FLAGGED:";
      for (const auto vm : scan.flagged) {
        os << " Dom" << vm;
      }
      os << "\n";
    }
  }
  os << "alerts: " << report.alerts.size() << " total, "
     << report.new_alert_count() << " new\n";
  return os.str();
}

}  // namespace mc::core
