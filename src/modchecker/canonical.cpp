#include "modchecker/canonical.hpp"

#include <algorithm>
#include <utility>

#include "crypto/crc32.hpp"
#include "modchecker/item_content.hpp"
#include "modchecker/rva_adjust.hpp"
#include "util/arena.hpp"
#include "util/error.hpp"

namespace mc::core {

namespace {

std::string table_key(vmm::DomainId domain, const IntegrityItem& item) {
  std::string key = std::to_string(domain);
  key += '\x1f';
  key += std::to_string(static_cast<int>(item.kind));
  key += '\x1f';
  key += item.name;
  return key;
}

SimNanos hash_charge(const vmi::HostCostModel& costs,
                     crypto::HashAlgorithm algorithm, std::size_t bytes) {
  return static_cast<SimNanos>(static_cast<double>(costs.hash_per_byte * bytes) *
                               digest_cost_factor(algorithm));
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> item_spans(
    const ParsedModule& module) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> spans;
  spans.reserve(module.items.size());
  for (const IntegrityItem& a : module.items) {
    spans.emplace_back(a.rva,
                       a.rva + static_cast<std::uint32_t>(a.content_size()));
  }
  return spans;
}

bool span_touched(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& changed,
    std::pair<std::uint32_t, std::uint32_t> span) {
  for (const auto& [lo, hi] : changed) {
    if (lo < span.second && span.first < hi) {
      return true;
    }
  }
  return false;
}

}  // namespace

DigestTable::Entry& DigestTable::entry_for(vmm::DomainId domain,
                                           const IntegrityItem& item) {
  return entries_[table_key(domain, item)];
}

crypto::Digest DigestTable::digest(vmm::DomainId domain,
                                   const IntegrityItem& item,
                                   SimClock& clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entry_for(domain, item);
  if (entry.digest) {
    hits_.inc();
    return *entry.digest;
  }
  misses_.inc();
  entry.digest = hash_item_content(algorithm_, item);
  clock.charge(hash_charge(costs_, algorithm_, item.content_size()));
  return *entry.digest;
}

std::uint32_t DigestTable::crc(vmm::DomainId domain,
                               const IntegrityItem& item,
                               SimClock& clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entry_for(domain, item);
  if (entry.crc) {
    hits_.inc();
    return *entry.crc;
  }
  misses_.inc();
  entry.crc = crc_item_content(item);
  clock.charge(costs_.crc_per_byte * item.content_size());
  return *entry.crc;
}

DigestTable::Stats DigestTable::stats() const {
  Stats snap;
  snap.hits = hits_.value();
  snap.misses = misses_.value();
  return snap;
}

void CanonicalPool::add(const ParsedModule& module, SimClock& clock) {
  MC_CHECK(!finalized_, "CanonicalPool::add after finalize");

  if (reference_ == nullptr) {
    reference_ = &module;
    canonical_.assign(module.items.size(), std::nullopt);
    Entry entry;
    entry.eligible = true;
    entry.base = module.base;
    entry.spans = item_spans(module);
    entry.digests.resize(module.items.size());
    for (std::size_t i = 0; i < module.items.size(); ++i) {
      entry.ref_items.push_back(i);
    }
    entries_[module.domain] = std::move(entry);
    eligible_count_.inc();
    return;
  }

  Entry entry;
  entry.base = module.base;
  entry.spans = item_spans(module);
  entry.digests.resize(reference_->items.size());
  bool eligible = module.items.size() == reference_->items.size();
  for (std::size_t i = 0; eligible && i < reference_->items.size(); ++i) {
    const IntegrityItem& r = reference_->items[i];
    const IntegrityItem& a = module.items[i];
    if (a.kind != r.kind || a.name != r.name ||
        a.rva_sensitive != r.rva_sensitive) {
      // Shape mismatch: the slow path's (kind, name) pairing would not be
      // positional — fall back rather than reason about it.
      eligible = false;
      break;
    }

    if (!a.rva_sensitive) {
      entry.digests[i] = hash_item_content(algorithm_, a);
      clock.charge(hash_charge(costs_, algorithm_, a.content_size()));
      continue;
    }

    if (module.base == reference_->base) {
      // Same load base: Algorithm 2 has nothing to adjust, so the slow
      // path matches iff the raw bytes match the reference's.
      clock.charge(costs_.rva_scan_per_byte *
                   std::max(a.content_size(), r.content_size()));
      if (item_content_equal(a, r, policy_)) {
        entry.ref_items.push_back(i);  // shares the reference digest
      } else {
        eligible = false;
      }
      continue;
    }

    // Differing base: run the paper's pairwise adjustment against the
    // reference on arena scratch copies (recycled per item).
    ArenaScope scope(scratch_arena());
    MutableByteView ref_copy = arena_content_copy(scratch_arena(), r);
    MutableByteView mod_copy = arena_content_copy(scratch_arena(), a);
    const RvaAdjustResult adj =
        adjust_fixups(ref_copy, reference_->base, mod_copy, module.base,
                      module.fixups, policy_);
    clock.charge(costs_.rva_scan_per_byte *
                 std::max(ref_copy.size(), mod_copy.size()));
    if (adj.unresolved_diffs > 0) {
      eligible = false;
      continue;
    }
    // Fully resolved: both copies now hold the canonical (RVA-normalized)
    // bytes.  Digest once and pin the item's canonical digest to the
    // first value seen — a later copy that resolves against the reference
    // but to *different* canonical bytes is treated as divergent.
    const crypto::Digest d = crypto::hash_bytes(algorithm_, mod_copy);
    clock.charge(hash_charge(costs_, algorithm_, mod_copy.size()));
    if (!canonical_[i]) {
      canonical_[i] = d;
      canonicals_established_.inc();
    } else if (*canonical_[i] != d) {
      eligible = false;
      continue;
    }
    entry.digests[i] = d;
  }

  entry.eligible = eligible;
  if (eligible) {
    eligible_count_.inc();
  } else {
    ineligible_count_.inc();
  }
  entries_[module.domain] = std::move(entry);
}

void CanonicalPool::finalize(SimClock& clock) {
  MC_CHECK(reference_ != nullptr, "CanonicalPool::finalize without modules");
  if (finalized_) {
    return;
  }
  ref_digests_.resize(reference_->items.size());
  for (std::size_t i = 0; i < reference_->items.size(); ++i) {
    const IntegrityItem& r = reference_->items[i];
    if (r.rva_sensitive && canonical_[i]) {
      // The reference's canonical digest was already paid for when a
      // differing-base partner established it.
      ref_digests_[i] = *canonical_[i];
    } else {
      ref_digests_[i] = hash_item_content(algorithm_, r);
      clock.charge(hash_charge(costs_, algorithm_, r.content_size()));
    }
  }
  for (auto& [vm, entry] : entries_) {
    for (const std::size_t i : entry.ref_items) {
      entry.digests[i] = ref_digests_[i];
    }
  }
  finalized_ = true;
}

void CanonicalPool::update(
    const ParsedModule& module, SimClock& clock,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>* changed_rvas) {
  MC_CHECK(finalized_, "CanonicalPool::update before finalize");
  MC_CHECK(reference_ != nullptr && module.domain != reference_->domain,
           "CanonicalPool::update cannot replace the reference");

  // Item-granular reuse: an item whose span is unchanged and misses every
  // changed byte range has byte-identical content, so its previous digest
  // (and its reference-sharing status) still holds.  Only valid against an
  // eligible previous entry at the same base with a complete span map —
  // anything else recomputes the item honestly.
  const Entry* prev = nullptr;
  if (changed_rvas != nullptr) {
    const auto prev_it = entries_.find(module.domain);
    if (prev_it != entries_.end() && prev_it->second.eligible &&
        prev_it->second.base == module.base &&
        prev_it->second.spans.size() == reference_->items.size()) {
      prev = &prev_it->second;
    }
  }

  Entry entry;
  entry.base = module.base;
  entry.spans = item_spans(module);
  entry.digests.resize(reference_->items.size());
  bool eligible = module.items.size() == reference_->items.size();
  for (std::size_t i = 0; eligible && i < reference_->items.size(); ++i) {
    const IntegrityItem& r = reference_->items[i];
    const IntegrityItem& a = module.items[i];
    if (a.kind != r.kind || a.name != r.name ||
        a.rva_sensitive != r.rva_sensitive) {
      eligible = false;
      break;
    }

    if (prev != nullptr && prev->spans[i] == entry.spans[i] &&
        !span_touched(*changed_rvas, entry.spans[i])) {
      entry.digests[i] = prev->digests[i];
      if (std::find(prev->ref_items.begin(), prev->ref_items.end(), i) !=
          prev->ref_items.end()) {
        entry.ref_items.push_back(i);
      }
      continue;  // untouched bytes: zero re-canonicalization cost
    }

    if (!a.rva_sensitive) {
      entry.digests[i] = hash_item_content(algorithm_, a);
      clock.charge(hash_charge(costs_, algorithm_, a.content_size()));
      continue;
    }

    if (module.base == reference_->base) {
      clock.charge(costs_.rva_scan_per_byte *
                   std::max(a.content_size(), r.content_size()));
      if (item_content_equal(a, r, policy_)) {
        // Post-finalize the reference vector is resolved: share directly.
        entry.ref_items.push_back(i);
        entry.digests[i] = ref_digests_[i];
      } else {
        eligible = false;
      }
      continue;
    }

    ArenaScope scope(scratch_arena());
    MutableByteView ref_copy = arena_content_copy(scratch_arena(), r);
    MutableByteView mod_copy = arena_content_copy(scratch_arena(), a);
    const RvaAdjustResult adj =
        adjust_fixups(ref_copy, reference_->base, mod_copy, module.base,
                      module.fixups, policy_);
    clock.charge(costs_.rva_scan_per_byte *
                 std::max(ref_copy.size(), mod_copy.size()));
    if (adj.unresolved_diffs > 0) {
      eligible = false;
      continue;
    }
    const crypto::Digest d = crypto::hash_bytes(algorithm_, mod_copy);
    clock.charge(hash_charge(costs_, algorithm_, mod_copy.size()));
    if (!canonical_[i]) {
      // First differing-base eligible partner arrives after finalize():
      // pin the canonical and re-pin the reference digest plus every
      // entry sharing it, keeping vector equality equivalent to the
      // pairwise verdict (the adjusted reference copy IS the canonical
      // form, so no re-hashing of the sharers is owed).
      canonical_[i] = d;
      canonicals_established_.inc();
      ref_digests_[i] = d;
      for (auto& [vm, existing] : entries_) {
        if (std::find(existing.ref_items.begin(), existing.ref_items.end(),
                      i) != existing.ref_items.end()) {
          existing.digests[i] = d;
        }
      }
    } else if (*canonical_[i] != d) {
      eligible = false;
      continue;
    }
    entry.digests[i] = d;
  }

  entry.eligible = eligible;
  if (eligible) {
    eligible_count_.inc();
  } else {
    ineligible_count_.inc();
  }
  entries_[module.domain] = std::move(entry);
}

bool CanonicalPool::eligible(vmm::DomainId vm) const {
  const auto it = entries_.find(vm);
  return it != entries_.end() && it->second.eligible;
}

const std::vector<crypto::Digest>& CanonicalPool::digests(
    vmm::DomainId vm) const {
  MC_CHECK(finalized_, "CanonicalPool::digests before finalize");
  return entries_.at(vm).digests;
}

}  // namespace mc::core
