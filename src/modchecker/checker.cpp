#include "modchecker/checker.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "crypto/crc32.hpp"
#include "modchecker/item_content.hpp"
#include "util/arena.hpp"

namespace mc::core {

namespace {
/// Item pairing key — the slow path matches items across the two modules
/// by (kind, name), first unused wins.
std::string pair_key(const IntegrityItem& item) {
  std::string key = std::to_string(static_cast<int>(item.kind));
  key += '\x1f';
  key += item.name;
  return key;
}
}  // namespace

PairComparison IntegrityChecker::compare(const ParsedModule& subject,
                                         const ParsedModule& other,
                                         SimClock& clock,
                                         DigestTable* memo) const {
  PairComparison result;
  result.other_domain = other.domain;
  clock.charge(costs_.compare_fixed);

  bool all_match = true;

  // Items are matched by (kind, name): identical module structure yields a
  // 1:1 pairing; structural attacks (an injected section, E4) leave
  // unmatched items, which are definite mismatches.  Indexing the other
  // side once keeps the pairing O(n) instead of O(n^2).
  std::vector<bool> other_used(other.items.size(), false);
  std::unordered_map<std::string, std::vector<std::size_t>> other_by_key;
  other_by_key.reserve(other.items.size());
  for (std::size_t j = 0; j < other.items.size(); ++j) {
    other_by_key[pair_key(other.items[j])].push_back(j);
  }
  std::unordered_map<std::string, std::size_t> next_candidate;
  auto find_match = [&](const IntegrityItem& a) -> const IntegrityItem* {
    const auto it = other_by_key.find(pair_key(a));
    if (it == other_by_key.end()) {
      return nullptr;
    }
    std::size_t& cursor = next_candidate[it->first];
    if (cursor >= it->second.size()) {
      return nullptr;
    }
    const std::size_t j = it->second[cursor++];
    other_used[j] = true;
    return &other.items[j];
  };

  // Prefilter + digest decision over one contiguous buffer pair
  // (post-adjustment scratch buffers of rva-sensitive items).
  auto compare_buffers = [&](ItemComparison& cmp, ByteView buf_a,
                             ByteView buf_b) {
    if (crc_prefilter_) {
      clock.charge(costs_.crc_per_byte * (buf_a.size() + buf_b.size()));
      if (crypto::crc32(buf_a) == crypto::crc32(buf_b) &&
          buf_a.size() == buf_b.size()) {
        // Cheap path: CRCs agree — accept the match without the digest.
        cmp.match = true;
        return;
      }
    }
    cmp.digest_subject = crypto::hash_bytes(algorithm_, buf_a);
    cmp.digest_other = crypto::hash_bytes(algorithm_, buf_b);
    clock.charge(static_cast<SimNanos>(
        static_cast<double>(costs_.hash_per_byte *
                            (buf_a.size() + buf_b.size())) *
        digest_cost_factor(algorithm_)));
    cmp.match = cmp.digest_subject == cmp.digest_other;
  };

  // Same decision over two items' raw contents (owned or view-backed):
  // CRCs/digests stream the spans, so view-backed items never flatten.
  auto compare_items = [&](ItemComparison& cmp, const IntegrityItem& ia,
                           const IntegrityItem& ib) {
    if (crc_prefilter_) {
      clock.charge(costs_.crc_per_byte *
                   (ia.content_size() + ib.content_size()));
      if (crc_item_content(ia) == crc_item_content(ib) &&
          ia.content_size() == ib.content_size()) {
        cmp.match = true;
        return;
      }
    }
    cmp.digest_subject = hash_item_content(algorithm_, ia);
    cmp.digest_other = hash_item_content(algorithm_, ib);
    clock.charge(static_cast<SimNanos>(
        static_cast<double>(costs_.hash_per_byte *
                            (ia.content_size() + ib.content_size())) *
        digest_cost_factor(algorithm_)));
    cmp.match = cmp.digest_subject == cmp.digest_other;
  };

  for (const IntegrityItem& a : subject.items) {
    ItemComparison cmp;
    cmp.item_name = a.name;
    cmp.kind = a.kind;

    const IntegrityItem* b = find_match(a);
    if (b == nullptr) {
      // Present on the subject only (e.g. an attacker-added section).
      cmp.match = false;
      all_match = false;
      result.items.push_back(std::move(cmp));
      continue;
    }

    if (a.rva_sensitive) {
      // Work on arena scratch copies: Algorithm 2 mutates the buffers, and
      // each pairwise comparison must start from the pristine extractions.
      // The scope recycles the space per pair — zero heap traffic.
      ArenaScope scope(scratch_arena());
      MutableByteView buf_a = arena_content_copy(scratch_arena(), a);
      MutableByteView buf_b = arena_content_copy(scratch_arena(), *b);
      const RvaAdjustResult adj = adjust_fixups(
          buf_a, subject.base, buf_b, other.base, subject.fixups, policy_);
      cmp.rvas_adjusted = adj.adjusted;
      cmp.unresolved_diffs = adj.unresolved_diffs;
      clock.charge(costs_.rva_scan_per_byte *
                   std::max(buf_a.size(), buf_b.size()));
      compare_buffers(cmp, buf_a, buf_b);
    } else if (memo != nullptr) {
      // Raw-byte item: the match criterion is digest (or CRC) equality of
      // the unmodified extractions, so memoized values are exact.
      if (crc_prefilter_) {
        const std::uint32_t crc_a = memo->crc(subject.domain, a, clock);
        const std::uint32_t crc_b = memo->crc(other.domain, *b, clock);
        if (crc_a == crc_b && a.content_size() == b->content_size()) {
          cmp.match = true;
          result.items.push_back(std::move(cmp));
          continue;
        }
      }
      cmp.digest_subject = memo->digest(subject.domain, a, clock);
      cmp.digest_other = memo->digest(other.domain, *b, clock);
      cmp.match = cmp.digest_subject == cmp.digest_other;
    } else {
      compare_items(cmp, a, *b);
    }

    all_match = all_match && cmp.match;
    result.items.push_back(std::move(cmp));
  }

  // Items present on the other VM only.
  for (std::size_t j = 0; j < other.items.size(); ++j) {
    if (other_used[j]) {
      continue;
    }
    ItemComparison cmp;
    cmp.item_name = other.items[j].name;
    cmp.kind = other.items[j].kind;
    cmp.match = false;
    all_match = false;
    result.items.push_back(std::move(cmp));
  }

  result.all_match = all_match;
  return result;
}

}  // namespace mc::core
