#include "modchecker/checker.hpp"

#include <algorithm>

#include "crypto/crc32.hpp"

namespace mc::core {

namespace {
/// Relative per-byte cost of the digest algorithms (MD5 = 1.0); roughly
/// the OpenSSL-era software throughput ratios.
double hash_cost_factor(crypto::HashAlgorithm algorithm) {
  switch (algorithm) {
    case crypto::HashAlgorithm::kMd5:
      return 1.0;
    case crypto::HashAlgorithm::kSha1:
      return 1.4;
    case crypto::HashAlgorithm::kSha256:
      return 2.3;
  }
  return 1.0;
}
}  // namespace

PairComparison IntegrityChecker::compare(const ParsedModule& subject,
                                         const ParsedModule& other,
                                         SimClock& clock) const {
  PairComparison result;
  result.other_domain = other.domain;
  clock.charge(costs_.compare_fixed);

  bool all_match = true;

  // Items are matched by (kind, name): identical module structure yields a
  // 1:1 pairing; structural attacks (an injected section, E4) leave
  // unmatched items, which are definite mismatches.
  std::vector<bool> other_used(other.items.size(), false);
  auto find_match = [&](const pe::IntegrityItem& a) -> const pe::IntegrityItem* {
    for (std::size_t j = 0; j < other.items.size(); ++j) {
      if (!other_used[j] && other.items[j].kind == a.kind &&
          other.items[j].name == a.name) {
        other_used[j] = true;
        return &other.items[j];
      }
    }
    return nullptr;
  };

  for (const pe::IntegrityItem& a : subject.items) {
    ItemComparison cmp;
    cmp.item_name = a.name;
    cmp.kind = a.kind;

    const pe::IntegrityItem* b = find_match(a);
    if (b == nullptr) {
      // Present on the subject only (e.g. an attacker-added section).
      cmp.match = false;
      all_match = false;
      result.items.push_back(std::move(cmp));
      continue;
    }

    // Work on copies: Algorithm 2 mutates the buffers, and each pairwise
    // comparison must start from the pristine extractions.
    Bytes buf_a = a.bytes;
    Bytes buf_b = b->bytes;

    if (a.rva_sensitive) {
      const RvaAdjustResult adj =
          adjust_rvas(buf_a, subject.base, buf_b, other.base);
      cmp.rvas_adjusted = adj.adjusted;
      cmp.unresolved_diffs = adj.unresolved_diffs;
      clock.charge(costs_.rva_scan_per_byte *
                   std::max(buf_a.size(), buf_b.size()));
    }

    if (crc_prefilter_) {
      clock.charge(costs_.crc_per_byte * (buf_a.size() + buf_b.size()));
      if (crypto::crc32(buf_a) == crypto::crc32(buf_b) &&
          buf_a.size() == buf_b.size()) {
        // Cheap path: CRCs agree — accept the match without the digest.
        cmp.match = true;
        result.items.push_back(std::move(cmp));
        continue;
      }
    }

    cmp.digest_subject = crypto::hash_bytes(algorithm_, buf_a);
    cmp.digest_other = crypto::hash_bytes(algorithm_, buf_b);
    clock.charge(static_cast<SimNanos>(
        static_cast<double>(costs_.hash_per_byte *
                            (buf_a.size() + buf_b.size())) *
        hash_cost_factor(algorithm_)));

    cmp.match = cmp.digest_subject == cmp.digest_other;
    all_match = all_match && cmp.match;
    result.items.push_back(std::move(cmp));
  }

  // Items present on the other VM only.
  for (std::size_t j = 0; j < other.items.size(); ++j) {
    if (other_used[j]) {
      continue;
    }
    ItemComparison cmp;
    cmp.item_name = other.items[j].name;
    cmp.kind = other.items[j].kind;
    cmp.match = false;
    all_match = false;
    result.items.push_back(std::move(cmp));
  }

  result.all_match = all_match;
  return result;
}

}  // namespace mc::core
