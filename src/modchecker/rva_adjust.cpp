#include "modchecker/rva_adjust.hpp"

#include <algorithm>

namespace mc::core {

std::uint32_t base_difference_offset(std::uint32_t base1,
                                     std::uint32_t base2) {
  // Algorithm 2 lines 1-9: walk the 4 bytes of the base addresses in
  // little-endian order; offset is the 1-based position of the first
  // difference.
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto b1 = static_cast<std::uint8_t>(base1 >> (8 * i));
    const auto b2 = static_cast<std::uint8_t>(base2 >> (8 * i));
    if (b1 != b2) {
      return i + 1;
    }
  }
  return 0;  // IsDifferenceExist == 0
}

RvaAdjustResult adjust_rvas(MutableByteView section1, std::uint32_t base1,
                            MutableByteView section2, std::uint32_t base2) {
  RvaAdjustResult result;

  const std::size_t common = std::min(section1.size(), section2.size());
  result.unresolved_diffs += static_cast<std::uint32_t>(
      std::max(section1.size(), section2.size()) - common);

  const std::uint32_t offset = base_difference_offset(base1, base2);
  if (offset == 0) {
    // Identical bases: any difference is real divergence; count them.
    for (std::size_t j = 0; j < common; ++j) {
      if (section1[j] != section2[j]) {
        ++result.unresolved_diffs;
      }
    }
    return result;
  }

  std::size_t j = 0;
  while (j < common) {
    if (section1[j] == section2[j]) {
      ++j;
      continue;
    }

    // Candidate absolute address starts `offset - 1` bytes before the
    // first differing byte (Algorithm 2 lines 13-14: j - offset + 1).
    if (j + 1 < offset) {
      // Difference too close to the section start for a full address.
      ++result.unresolved_diffs;
      ++j;
      continue;
    }
    const std::size_t start = j - (offset - 1);
    if (start + 4 > common) {
      // Difference too close to the section end.
      ++result.unresolved_diffs;
      ++j;
      continue;
    }

    const std::uint32_t abs1 = load_le32(section1, start);
    const std::uint32_t abs2 = load_le32(section2, start);
    const std::uint32_t rva1 = abs1 - base1;  // eq. (1); wraps are fine
    const std::uint32_t rva2 = abs2 - base2;

    if (rva1 == rva2) {
      // Consistent relocation: replace both absolute addresses with the
      // common RVA (lines 17-19).
      store_le32(section1, start, rva1);
      store_le32(section2, start, rva2);
      ++result.adjusted;
      j = start + 4;  // resume after the rewritten window (line 22 intent)
    } else {
      // Genuine content divergence — leave bytes for the hash to catch.
      ++result.unresolved_diffs;
      ++j;
    }
  }
  return result;
}

}  // namespace mc::core
