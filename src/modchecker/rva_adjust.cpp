#include "modchecker/rva_adjust.hpp"

#include <algorithm>
#include <bit>

#include "util/error.hpp"
#include "util/simd.hpp"
#include "util/wordload.hpp"

namespace mc::core {

namespace {

// Number of nonzero bytes in a 64-bit word: bit 7 of each lane ends up set
// iff the lane is nonzero, then popcount the lane flags.
std::uint32_t nonzero_byte_count(std::uint64_t x) {
  constexpr std::uint64_t kLow7 = 0x7F7F7F7F7F7F7F7Full;
  constexpr std::uint64_t kHigh = 0x8080808080808080ull;
  const std::uint64_t flags = (x | ((x & kLow7) + kLow7)) & kHigh;
  return static_cast<std::uint32_t>(std::popcount(flags));
}

// Identical-bases path: every differing byte is real divergence; count
// them all.  Word-at-a-time with a per-word byte population count — the
// scan touches every byte exactly once either way, so the scalar fallback
// is byte-for-byte equivalent.
std::uint32_t count_differing_bytes(ByteView a, ByteView b, std::size_t n,
                                    simd::Policy policy) {
  MC_CHECK(n <= a.size() && n <= b.size(),
           "count_differing_bytes out of range");
  std::uint32_t diffs = 0;
  std::size_t j = 0;
  if (simd::active_level(policy) != simd::Level::kScalar) {
    for (; j + 8 <= n; j += 8) {
      const std::uint64_t x =
          load_word64(a.data() + j) ^ load_word64(b.data() + j);
      if (x != 0) {
        diffs += nonzero_byte_count(x);
      }
    }
  }
  for (; j < n; ++j) {
    if (a[j] != b[j]) {
      ++diffs;
    }
  }
  return diffs;
}

}  // namespace

std::uint32_t base_difference_offset(std::uint32_t base1,
                                     std::uint32_t base2) {
  // Algorithm 2 lines 1-9, as one word compare instead of four byte
  // probes: XOR the little-endian base words; the trailing-zero count of
  // the difference locates the first differing byte (1-based).
  const std::uint32_t x = base1 ^ base2;
  if (x == 0) {
    return 0;  // IsDifferenceExist == 0
  }
  return static_cast<std::uint32_t>(std::countr_zero(x)) / 8 + 1;
}

RvaAdjustResult adjust_rvas(MutableByteView section1, std::uint32_t base1,
                            MutableByteView section2, std::uint32_t base2,
                            simd::Policy policy) {
  RvaAdjustResult result;

  const std::size_t common = std::min(section1.size(), section2.size());
  result.unresolved_diffs += static_cast<std::uint32_t>(
      std::max(section1.size(), section2.size()) - common);

  const std::uint32_t offset = base_difference_offset(base1, base2);
  if (offset == 0) {
    result.unresolved_diffs +=
        count_differing_bytes(section1, section2, common, policy);
    return result;
  }

  // Lockstep diff scan: the kernel XORs eight (or thirty-two) bytes at a
  // time and only a differing word takes a branch; the candidate window
  // logic below is untouched from the scalar algorithm, so counting and
  // rewrite semantics are bit-identical at every dispatch level.
  std::size_t j = simd::mismatch(section1.data(), section2.data(), common, 0,
                                 policy);
  while (j < common) {
    // Candidate absolute address starts `offset - 1` bytes before the
    // first differing byte (Algorithm 2 lines 13-14: j - offset + 1).
    if (j + 1 < offset) {
      // Difference too close to the section start for a full address.
      ++result.unresolved_diffs;
      j = simd::mismatch(section1.data(), section2.data(), common, j + 1,
                         policy);
      continue;
    }
    const std::size_t start = j - (offset - 1);
    if (start + 4 > common) {
      // Difference too close to the section end.
      ++result.unresolved_diffs;
      j = simd::mismatch(section1.data(), section2.data(), common, j + 1,
                         policy);
      continue;
    }

    const std::uint32_t abs1 = load_le32_at(section1, start);
    const std::uint32_t abs2 = load_le32_at(section2, start);
    const std::uint32_t rva1 = abs1 - base1;  // eq. (1); wraps are fine
    const std::uint32_t rva2 = abs2 - base2;

    if (rva1 == rva2) {
      // Consistent relocation: replace both absolute addresses with the
      // common RVA (lines 17-19).
      store_le32_at(section1, start, rva1);
      store_le32_at(section2, start, rva2);
      ++result.adjusted;
      // Resume after the rewritten window (line 22 intent).
      j = simd::mismatch(section1.data(), section2.data(), common, start + 4,
                         policy);
    } else {
      // Genuine content divergence — leave bytes for the hash to catch.
      ++result.unresolved_diffs;
      j = simd::mismatch(section1.data(), section2.data(), common, j + 1,
                         policy);
    }
  }
  return result;
}

RvaAdjustResult adjust_fixups(MutableByteView section1, std::uint32_t base1,
                              MutableByteView section2, std::uint32_t base2,
                              const FixupPolicy& fixups, simd::Policy policy) {
  if (fixups.pe32_default()) {
    // The historical path, verbatim: PE32 callers keep bit-identical
    // rewrites and counters through the exact same code.
    return adjust_rvas(section1, base1, section2, base2, policy);
  }
  MC_CHECK(fixups.width == 8 || fixups.width == 4,
           "FixupPolicy width must be 4 or 8");
  MC_CHECK(fixups.alt_width == 0 || fixups.alt_width == 4,
           "FixupPolicy alt_width must be 0 or 4");

  RvaAdjustResult result;
  const std::size_t common = std::min(section1.size(), section2.size());
  result.unresolved_diffs += static_cast<std::uint32_t>(
      std::max(section1.size(), section2.size()) - common);

  // The biases are equal on both sides, so the first-differing-byte offset
  // of the biased 64-bit bases equals the 32-bit computation.
  const std::uint32_t offset = base_difference_offset(base1, base2);
  if (offset == 0) {
    result.unresolved_diffs +=
        count_differing_bytes(section1, section2, common, policy);
    return result;
  }
  const std::uint64_t eb1 = fixups.base_bias | base1;
  const std::uint64_t eb2 = fixups.base_bias | base2;

  // Tests the width-`w` window at `start`: recover RVA = value − biased
  // base on each side (eq. 1 widened); equal RVAs mean the loader made
  // this difference — rewrite both windows to the common RVA.
  const auto try_rewrite = [&](std::size_t start, std::uint32_t w) -> bool {
    if (start + w > common) {
      return false;
    }
    if (w == 8) {
      const std::uint64_t rva1 = load_le64(section1, start) - eb1;
      const std::uint64_t rva2 = load_le64(section2, start) - eb2;
      if (rva1 != rva2) {
        return false;
      }
      store_le64(section1, start, rva1);
      store_le64(section2, start, rva2);
    } else {
      // Truncated store (R_X86_64_32S shape): only the low dword of the
      // absolute address landed in the image; subtract the biased base's
      // low dword, mod 2^32 — wraps cancel exactly like the PE case.
      const std::uint32_t rva1 =
          load_le32_at(section1, start) - static_cast<std::uint32_t>(eb1);
      const std::uint32_t rva2 =
          load_le32_at(section2, start) - static_cast<std::uint32_t>(eb2);
      if (rva1 != rva2) {
        return false;
      }
      store_le32_at(section1, start, rva1);
      store_le32_at(section2, start, rva2);
    }
    return true;
  };

  std::size_t j =
      simd::mismatch(section1.data(), section2.data(), common, 0, policy);
  while (j < common) {
    if (j + 1 < offset) {
      // Difference too close to the section start for a full address.
      ++result.unresolved_diffs;
      j = simd::mismatch(section1.data(), section2.data(), common, j + 1,
                         policy);
      continue;
    }
    const std::size_t start = j - (offset - 1);
    if (try_rewrite(start, fixups.width)) {
      ++result.adjusted;
      j = simd::mismatch(section1.data(), section2.data(), common,
                         start + fixups.width, policy);
    } else if (fixups.alt_width != 0 && try_rewrite(start, fixups.alt_width)) {
      ++result.adjusted;
      j = simd::mismatch(section1.data(), section2.data(), common,
                         start + fixups.alt_width, policy);
    } else {
      // Genuine content divergence — leave bytes for the hash to catch.
      ++result.unresolved_diffs;
      j = simd::mismatch(section1.data(), section2.data(), common, j + 1,
                         policy);
    }
  }
  return result;
}

}  // namespace mc::core
