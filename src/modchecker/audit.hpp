// Whole-catalog audit — the operator-facing sweep over every module of
// every VM (the paper's intended deployment: periodic light-weight
// consistency checks across the cloud).
#pragma once

#include <string>
#include <vector>

#include "modchecker/modchecker.hpp"

namespace mc::core {

struct AuditFinding {
  std::string module;
  vmm::DomainId vm = 0;
  std::size_t successes = 0;
  std::size_t total = 0;
};

struct AuditReport {
  std::vector<std::string> modules;
  std::vector<vmm::DomainId> pool;
  /// Per-module pool scans, in `modules` order.
  std::vector<PoolScanReport> scans;
  /// Flattened (module, VM) pairs whose vote failed.
  std::vector<AuditFinding> findings;
  SimNanos total_wall = 0;
  ComponentTimes total_cpu;
};

/// Scans every module across the pool and aggregates the findings.
AuditReport audit_modules(const vmm::Hypervisor& hypervisor,
                          const std::vector<std::string>& modules,
                          const std::vector<vmm::DomainId>& pool,
                          const ModCheckerConfig& config = {});

std::string format_audit_report(const AuditReport& report);

/// Groups a pool by guest OS build (version id from each guest's debug
/// block).  ModChecker's assumption — same OS version across compared VMs
/// (§Abstract) — makes this the mandatory first step for mixed clouds:
/// cross-version module comparisons would flag everything.
std::map<std::uint32_t, std::vector<vmm::DomainId>> group_by_guest_version(
    const vmm::Hypervisor& hypervisor, const std::vector<vmm::DomainId>& pool,
    const vmi::VmiCostModel& costs = {});

/// Fault-aware version grouping.  `recognized` holds only version ids a
/// GuestProfile exists for; every other VM lands in `unrecognized` with a
/// FaultRecord saying why (kUnrecognizedBuild for an unknown build id,
/// kDebugBlockMissing / kDomainGone when introspection itself failed) —
/// one odd guest no longer aborts grouping the rest of the cloud.
struct VersionGroups {
  std::map<std::uint32_t, std::vector<vmm::DomainId>> recognized;
  /// VMs excluded from every recognized group, in pool order.
  std::vector<vmm::DomainId> unrecognized;
  /// One record per excluded VM explaining the exclusion.
  std::vector<FaultRecord> faults;
};

VersionGroups group_pool_by_version(const vmm::Hypervisor& hypervisor,
                                    const std::vector<vmm::DomainId>& pool,
                                    const vmi::VmiCostModel& costs = {});

}  // namespace mc::core
