#include "modchecker/modchecker.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace mc::core {

ModChecker::ModChecker(const vmm::Hypervisor& hypervisor,
                       ModCheckerConfig config)
    : context_(hypervisor, std::move(config)), pipeline_(context_) {}

CheckReport ModChecker::check_module(
    vmm::DomainId subject, const std::string& module_name,
    const std::vector<vmm::DomainId>& others) {
  return pipeline_.check(subject, module_name, others);
}

CheckReport ModChecker::check_module(vmm::DomainId subject,
                                     const std::string& module_name) {
  std::vector<vmm::DomainId> others;
  for (const vmm::DomainId id : context_.hypervisor->domain_ids()) {
    if (id != subject) {
      others.push_back(id);
    }
  }
  return pipeline_.check(subject, module_name, others);
}

CheckReport ModChecker::check_module_sampled(vmm::DomainId subject,
                                             const std::string& module_name,
                                             std::size_t sample_size,
                                             std::uint64_t seed) {
  std::vector<vmm::DomainId> others;
  for (const vmm::DomainId id : context_.hypervisor->domain_ids()) {
    if (id != subject) {
      others.push_back(id);
    }
  }
  MC_CHECK(sample_size >= 1, "sample size must be at least 1");

  // Seeded Fisher-Yates prefix shuffle to draw the sample.
  Xoshiro256 rng(seed);
  const std::size_t k = std::min(sample_size, others.size());
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + rng.below(others.size() - i);
    std::swap(others[i], others[j]);
  }
  others.resize(k);
  return pipeline_.check(subject, module_name, others);
}

PoolScanReport ModChecker::scan_pool(const std::string& module_name,
                                     const std::vector<vmm::DomainId>& pool) {
  return pipeline_.pool_scan(module_name, pool);
}

ListComparisonReport ModChecker::compare_module_lists(
    const std::vector<vmm::DomainId>& pool) {
  return pipeline_.compare_lists(pool);
}

}  // namespace mc::core
