#include "modchecker/modchecker.hpp"

#include <algorithm>
#include <future>
#include <map>
#include <set>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "vmi/session.hpp"

namespace mc::core {

ModChecker::ModChecker(const vmm::Hypervisor& hypervisor,
                       ModCheckerConfig config)
    : hypervisor_(&hypervisor),
      config_(std::move(config)),
      parser_(config_.host_costs),
      checker_(config_.algorithm, config_.host_costs,
               config_.crc_prefilter) {}

ModChecker::Extraction ModChecker::extract_and_parse(
    vmm::DomainId vm, const std::string& module_name) const {
  Extraction ex;

  // Module-Searcher: all guest-memory access happens here.
  SimClock searcher_clock;
  vmi::VmiSession session(*hypervisor_, vm, searcher_clock,
                          config_.vmi_costs);
  ModuleSearcher searcher(session);
  auto image = searcher.extract_module(module_name);
  ex.times.searcher = searcher_clock.now();
  if (!image) {
    return ex;
  }

  // Module-Parser: host CPU work, still contention-scaled (Dom0 shares the
  // physical cores with the guests).
  ex.found = true;
  SimClock parser_clock;
  parser_clock.set_slowdown(hypervisor_->dom0_slowdown());
  try {
    ex.parsed = parser_.parse(*image, parser_clock);
  } catch (const FormatError& e) {
    // Corrupted PE structure (e.g. a tampered magic or header field that
    // breaks the walk): not a crash, a *finding*.
    ex.parse_failed = true;
    ex.parse_error = e.what();
  }
  ex.times.parser = parser_clock.now();
  return ex;
}

CheckReport ModChecker::check_module(vmm::DomainId subject,
                                     const std::string& module_name,
                                     const std::vector<vmm::DomainId>& raw_others) {
  CheckReport report;
  report.module_name = module_name;
  report.subject = subject;

  // Guard against the subject sneaking into its own comparison pool (a
  // self-comparison always matches and would dilute the vote) and against
  // duplicate entries double-counting a peer.
  std::vector<vmm::DomainId> others;
  others.reserve(raw_others.size());
  for (const vmm::DomainId vm : raw_others) {
    if (vm != subject &&
        std::find(others.begin(), others.end(), vm) == others.end()) {
      others.push_back(vm);
    }
  }

  // Subject extraction first (both modes need it before comparing).
  Extraction subject_ex = extract_and_parse(subject, module_name);
  if (!subject_ex.found) {
    throw NotFoundError("module '" + module_name +
                        "' not loaded on subject VM " +
                        std::to_string(subject));
  }
  report.cpu_times += subject_ex.times;

  struct PerVm {
    vmm::DomainId vm;
    Extraction ex;
    PairComparison cmp;
    SimNanos checker_time = 0;
  };

  auto process_other = [&](vmm::DomainId vm) {
    PerVm r;
    r.vm = vm;
    r.ex = extract_and_parse(vm, module_name);
    if (r.ex.found && !r.ex.parse_failed && !subject_ex.parse_failed) {
      SimClock checker_clock;
      checker_clock.set_slowdown(hypervisor_->dom0_slowdown());
      r.cmp = checker_.compare(subject_ex.parsed, r.ex.parsed, checker_clock);
      r.checker_time = checker_clock.now();
    }
    return r;
  };

  std::vector<PerVm> results;
  results.reserve(others.size());

  if (config_.parallel && others.size() > 1) {
    ThreadPool pool(std::min(config_.worker_threads, others.size()));
    std::vector<std::future<PerVm>> futures;
    futures.reserve(others.size());
    for (const vmm::DomainId vm : others) {
      futures.push_back(pool.submit([&, vm] { return process_other(vm); }));
    }
    // Simulated makespan on `worker_threads` workers: the list-scheduling
    // estimate max(longest task, total work / workers).
    SimNanos longest_task = 0;
    SimNanos total_work = 0;
    for (auto& f : futures) {
      results.push_back(f.get());
      const PerVm& r = results.back();
      const SimNanos task = r.ex.times.total() + r.checker_time;
      longest_task = std::max(longest_task, task);
      total_work += task;
    }
    const SimNanos makespan = std::max(
        longest_task, total_work / std::min<SimNanos>(config_.worker_threads,
                                                      others.size()));
    report.wall_time = subject_ex.times.total() + makespan;
  } else {
    for (const vmm::DomainId vm : others) {
      results.push_back(process_other(vm));
    }
  }

  // Aggregate.
  std::set<std::string> flagged;
  if (subject_ex.parse_failed) {
    flagged.insert(kUnparseableItem);
  }
  for (auto& r : results) {
    if (!r.ex.found) {
      report.missing_on.push_back(r.vm);
      continue;
    }
    report.cpu_times += r.ex.times;
    report.cpu_times.checker += r.checker_time;
    ++report.total_comparisons;
    if (subject_ex.parse_failed || r.ex.parse_failed) {
      // An unparseable copy can never corroborate: count the comparison as
      // a definite mismatch.
      if (r.ex.parse_failed) {
        flagged.insert(kUnparseableItem);
      }
      r.cmp.other_domain = r.vm;
      r.cmp.all_match = false;
      report.comparisons.push_back(std::move(r.cmp));
      continue;
    }
    if (r.cmp.all_match) {
      ++report.successes;
    } else {
      for (const auto& item : r.cmp.items) {
        if (!item.match) {
          flagged.insert(item.item_name);
        }
      }
    }
    report.comparisons.push_back(std::move(r.cmp));
  }
  report.flagged_items.assign(flagged.begin(), flagged.end());

  // Majority vote: n > (t-1)/2 where t-1 is the number of completed
  // comparisons.
  report.subject_clean =
      report.total_comparisons > 0 &&
      2 * report.successes > report.total_comparisons;

  if (!config_.parallel || others.size() <= 1) {
    report.wall_time = report.cpu_times.total();
  }
  return report;
}

CheckReport ModChecker::check_module(vmm::DomainId subject,
                                     const std::string& module_name) {
  std::vector<vmm::DomainId> others;
  for (const vmm::DomainId id : hypervisor_->domain_ids()) {
    if (id != subject) {
      others.push_back(id);
    }
  }
  return check_module(subject, module_name, others);
}

CheckReport ModChecker::check_module_sampled(vmm::DomainId subject,
                                             const std::string& module_name,
                                             std::size_t sample_size,
                                             std::uint64_t seed) {
  std::vector<vmm::DomainId> others;
  for (const vmm::DomainId id : hypervisor_->domain_ids()) {
    if (id != subject) {
      others.push_back(id);
    }
  }
  MC_CHECK(sample_size >= 1, "sample size must be at least 1");

  // Seeded Fisher-Yates prefix shuffle to draw the sample.
  Xoshiro256 rng(seed);
  const std::size_t k = std::min(sample_size, others.size());
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + rng.below(others.size() - i);
    std::swap(others[i], others[j]);
  }
  others.resize(k);
  return check_module(subject, module_name, others);
}

PoolScanReport ModChecker::scan_pool(const std::string& module_name,
                                     const std::vector<vmm::DomainId>& pool) {
  PoolScanReport report;
  report.module_name = module_name;

  // Extract + parse every VM once.
  std::vector<Extraction> extractions;
  extractions.reserve(pool.size());

  if (config_.parallel && pool.size() > 1) {
    ThreadPool tp(std::min(config_.worker_threads, pool.size()));
    std::vector<std::future<Extraction>> futures;
    for (const vmm::DomainId vm : pool) {
      futures.push_back(
          tp.submit([&, vm] { return extract_and_parse(vm, module_name); }));
    }
    SimNanos longest = 0;
    SimNanos total_work = 0;
    for (auto& f : futures) {
      extractions.push_back(f.get());
      longest = std::max(longest, extractions.back().times.total());
      total_work += extractions.back().times.total();
    }
    report.wall_time = std::max(
        longest, total_work / std::min<SimNanos>(config_.worker_threads,
                                                 pool.size()));
  } else {
    for (const vmm::DomainId vm : pool) {
      extractions.push_back(extract_and_parse(vm, module_name));
      report.wall_time += extractions.back().times.total();
    }
  }
  for (const auto& ex : extractions) {
    report.cpu_times += ex.times;
  }

  // Pairwise comparisons; each unordered pair evaluated once and credited
  // to both VMs' vote tallies.
  std::vector<PoolVmVerdict> verdicts(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    verdicts[i].vm = pool[i];
  }
  SimClock checker_clock;
  checker_clock.set_slowdown(hypervisor_->dom0_slowdown());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (!extractions[i].found) {
      continue;
    }
    for (std::size_t j = i + 1; j < pool.size(); ++j) {
      if (!extractions[j].found) {
        continue;
      }
      ++verdicts[i].total;
      ++verdicts[j].total;
      if (extractions[i].parse_failed || extractions[j].parse_failed) {
        continue;  // an unparseable copy never matches anything
      }
      const PairComparison cmp = checker_.compare(
          extractions[i].parsed, extractions[j].parsed, checker_clock);
      if (cmp.all_match) {
        ++verdicts[i].successes;
        ++verdicts[j].successes;
      }
    }
  }
  report.cpu_times.checker += checker_clock.now();
  report.wall_time += checker_clock.now();

  for (auto& v : verdicts) {
    v.clean = v.total > 0 && 2 * v.successes > v.total;
  }
  report.verdicts = std::move(verdicts);
  return report;
}

ListComparisonReport ModChecker::compare_module_lists(
    const std::vector<vmm::DomainId>& pool) {
  ListComparisonReport report;

  // Gather each VM's loader list through introspection.
  std::map<std::string, std::vector<vmm::DomainId>> presence;
  SimNanos wall = 0;
  for (const vmm::DomainId vm : pool) {
    SimClock clock;
    vmi::VmiSession session(*hypervisor_, vm, clock, config_.vmi_costs);
    ModuleSearcher searcher(session);
    for (const auto& info : searcher.list_modules()) {
      presence[info.name].push_back(vm);
    }
    wall += clock.now();
  }
  report.wall_time = wall;
  report.modules_seen = presence.size();

  for (const auto& [name, present_on] : presence) {
    if (present_on.size() == pool.size()) {
      continue;  // uniformly present
    }
    ListDiscrepancy d;
    d.module_name = name;
    d.present_on = present_on;
    for (const vmm::DomainId vm : pool) {
      if (std::find(present_on.begin(), present_on.end(), vm) ==
          present_on.end()) {
        d.missing_on.push_back(vm);
      }
    }
    report.discrepancies.push_back(std::move(d));
  }
  return report;
}

}  // namespace mc::core
