#include "modchecker/format.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace mc::core {

std::string to_string(ModuleFormatId id) {
  switch (id) {
    case ModuleFormatId::kAuto:
      return "auto";
    case ModuleFormatId::kPe32:
      return "pe32";
    case ModuleFormatId::kElf64:
      return "elf64";
  }
  return "?";
}

ModuleFormatId parse_module_format(std::string_view name) {
  if (name == "auto") {
    return ModuleFormatId::kAuto;
  }
  if (name == "pe32") {
    return ModuleFormatId::kPe32;
  }
  if (name == "elf64") {
    return ModuleFormatId::kElf64;
  }
  throw InvalidArgument("unknown module format: " + std::string(name) +
                        " (expected auto, pe32 or elf64)");
}

std::size_t read_image_header(const ModuleImage& image, MutableByteView dst) {
  const std::size_t n =
      std::min({dst.size(), kFormatSniffBytes, image.size()});
  if (n == 0) {
    return 0;
  }
  if (image.view_backed()) {
    image.view.read_into(0, dst.first(n));
  } else {
    copy_bytes(dst.first(n), ByteView(image.bytes).first(n));
  }
  return n;
}

FormatRegistry::FormatRegistry()
    : formats_{&pe32_format(), &elf64_format()} {}

const FormatRegistry& FormatRegistry::process_default() {
  static const FormatRegistry registry;
  return registry;
}

const ModuleFormat* FormatRegistry::detect(ByteView header) const {
  for (const ModuleFormat* format : formats_) {
    if (format->detect(header)) {
      return format;
    }
  }
  return nullptr;
}

const ModuleFormat* FormatRegistry::find(ModuleFormatId id) const {
  for (const ModuleFormat* format : formats_) {
    if (format->id() == id) {
      return format;
    }
  }
  return nullptr;
}

const ModuleFormat& FormatRegistry::resolve(const ModuleImage& image,
                                            ModuleFormatId wanted) const {
  if (wanted != ModuleFormatId::kAuto) {
    const ModuleFormat* format = find(wanted);
    MC_CHECK(format != nullptr, "format plugin not registered");
    return *format;
  }
  std::array<std::uint8_t, kFormatSniffBytes> header{};
  const std::size_t n = read_image_header(image, MutableByteView(header));
  const ModuleFormat* format = detect(ByteView(header.data(), n));
  if (format == nullptr) {
    // Unrecognized magic is a data problem, not a caller bug: the
    // pipeline's tolerant parse records it as a parse_failed finding.
    throw FormatError("unrecognized module format magic");
  }
  return *format;
}

}  // namespace mc::core
