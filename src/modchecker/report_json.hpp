// JSON serialization of check reports — the integration surface for
// SIEM/alerting pipelines a deployment would feed (the paper's alarms must
// land somewhere actionable).  Hand-rolled emitter: the schema is small
// and an external JSON dependency would be heavier than the code.
#pragma once

#include <string>

#include "modchecker/audit.hpp"
#include "modchecker/modchecker.hpp"

namespace mc::core {

/// {"code": "read-fault", "domain": ..., "va": ..., "pa": ...,
///  "attempt": ..., "stage": "acquire", "detail": "..."}
std::string to_json(const FaultRecord& fault);

/// {"module": ..., "subject": ..., "clean": ..., "successes": ...,
///  "flagged_items": [...], "missing_on": [...],
///  "times_ns": {"searcher": ..., ...}, "comparisons": [...]}
/// Degraded runs append "unavailable_on", "faults" and the quorum fields;
/// a fault-free report emits the historical schema byte-for-byte.
std::string to_json(const CheckReport& report);

/// {"module": ..., "verdicts": [{"vm": ..., "clean": ...}, ...],
///  "cpu_ns": {...}, "fastpath_pairs": ..., "fallback_pairs": ...}
/// Degraded runs append "quarantined" and "faults" arrays plus per-verdict
/// quorum fields; fault-free reports keep the historical schema
/// byte-for-byte.
std::string to_json(const PoolScanReport& report);

/// {"modules": [...], "findings": [...], "total_wall_ns": ...}
std::string to_json(const AuditReport& report);

/// `"cpu_ns":{"searcher":...,"parser":...,"checker":...}` — the single
/// renderer of component-time JSON.  Both to_json(PoolScanReport) and the
/// service layer's to_json(SweepReport) call this, so the two serializers
/// cannot drift apart (they used to hand-aggregate the same three fields
/// independently).
std::string cpu_ns_json(const ComponentTimes& times);

/// Escapes a string for embedding in JSON output.
std::string json_escape(const std::string& s);

}  // namespace mc::core
