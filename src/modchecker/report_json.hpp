// JSON serialization of check reports — the integration surface for
// SIEM/alerting pipelines a deployment would feed (the paper's alarms must
// land somewhere actionable).  Hand-rolled emitter: the schema is small
// and an external JSON dependency would be heavier than the code.
#pragma once

#include <string>

#include "modchecker/audit.hpp"
#include "modchecker/modchecker.hpp"

namespace mc::core {

/// {"module": ..., "subject": ..., "clean": ..., "successes": ...,
///  "flagged_items": [...], "missing_on": [...],
///  "times_ns": {"searcher": ..., ...}, "comparisons": [...]}
std::string to_json(const CheckReport& report);

/// {"module": ..., "verdicts": [{"vm": ..., "clean": ...}, ...],
///  "cpu_ns": {...}, "fastpath_pairs": ..., "fallback_pairs": ...}
std::string to_json(const PoolScanReport& report);

/// {"modules": [...], "findings": [...], "total_wall_ns": ...}
std::string to_json(const AuditReport& report);

/// Escapes a string for embedding in JSON output.
std::string json_escape(const std::string& s);

}  // namespace mc::core
