// Scan history & trend analysis for long-running deployments.
//
// The scheduler produces a stream of per-scan outcomes; operations care
// about the *trajectory*: when did a (module, VM) pair first flag, is it
// still flagging, did it flap (flag → clean → flag, the signature of an
// unstable rollout or a transient introspection race), and how long was
// the exposure window between first flag and remediation.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "modchecker/scheduler.hpp"
#include "util/sim_clock.hpp"
#include "vmm/domain.hpp"

namespace mc::core {

/// Lifecycle of one (module, VM) finding across scans.
struct FindingHistory {
  std::string module;
  vmm::DomainId vm = 0;
  SimNanos first_flagged = 0;
  SimNanos last_flagged = 0;
  std::size_t times_flagged = 0;
  std::size_t times_clean_after_flag = 0;  // observations after first flag
  bool currently_flagged = false;
  /// flag -> clean -> flag transitions (flapping).
  std::size_t flaps = 0;

  /// Exposure: first flag until the most recent clean observation (or
  /// `now` if still flagged).
  SimNanos exposure(SimNanos now) const {
    return (currently_flagged ? now : last_clean_seen) - first_flagged;
  }
  SimNanos last_clean_seen = 0;
};

class ScanHistory {
 public:
  /// Folds a schedule run into the history (call after each run_until).
  void ingest(const ScheduleReport& report);

  /// Direct observation API (for non-scheduler callers).
  void observe(SimNanos time, const std::string& module, vmm::DomainId vm,
               bool flagged);

  const std::vector<FindingHistory>& findings() const { return findings_; }

  /// Findings that are flagged as of the latest observation.
  std::vector<const FindingHistory*> active() const;

  /// Findings that have flapped at least once.
  std::vector<const FindingHistory*> flapping() const;

  std::size_t total_observations() const { return observations_; }

 private:
  FindingHistory& slot(const std::string& module, vmm::DomainId vm);

  std::vector<FindingHistory> findings_;
  std::map<std::pair<std::string, vmm::DomainId>, std::size_t> index_;
  std::size_t observations_ = 0;
};

std::string format_history(const ScanHistory& history, SimNanos now);

}  // namespace mc::core
