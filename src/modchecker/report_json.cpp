#include "modchecker/report_json.hpp"

#include <sstream>

namespace mc::core {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

std::string quoted(const std::string& s) {
  return "\"" + json_escape(s) + "\"";
}

template <typename T, typename Fn>
std::string array_of(const std::vector<T>& items, Fn&& render) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) {
      out += ",";
    }
    out += render(items[i]);
  }
  return out + "]";
}

}  // namespace

std::string to_json(const FaultRecord& fault) {
  std::ostringstream os;
  os << "{\"code\":" << quoted(to_string(fault.code))
     << ",\"domain\":" << fault.domain << ",\"va\":" << fault.va
     << ",\"pa\":" << fault.pa << ",\"attempt\":" << fault.attempt
     << ",\"stage\":" << quoted(to_string(fault.stage))
     << ",\"detail\":" << quoted(fault.detail) << "}";
  return os.str();
}

std::string to_json(const CheckReport& report) {
  std::ostringstream os;
  os << "{\"module\":" << quoted(report.module_name)
     << ",\"subject\":" << report.subject
     << ",\"clean\":" << (report.subject_clean ? "true" : "false")
     << ",\"successes\":" << report.successes
     << ",\"total_comparisons\":" << report.total_comparisons
     << ",\"flagged_items\":"
     << array_of(report.flagged_items,
                 [](const std::string& s) { return quoted(s); })
     << ",\"missing_on\":"
     << array_of(report.missing_on,
                 [](vmm::DomainId id) { return std::to_string(id); })
     << ",\"times_ns\":{\"searcher\":" << report.cpu_times.searcher
     << ",\"parser\":" << report.cpu_times.parser
     << ",\"checker\":" << report.cpu_times.checker
     << ",\"wall\":" << report.wall_time << "}"
     << ",\"comparisons\":"
     << array_of(report.comparisons, [](const PairComparison& pair) {
          std::string items =
              array_of(pair.items, [](const ItemComparison& item) {
                return std::string("{\"item\":") + quoted(item.item_name) +
                       ",\"match\":" + (item.match ? "true" : "false") +
                       ",\"digest_subject\":\"" +
                       item.digest_subject.hex() + "\",\"digest_other\":\"" +
                       item.digest_other.hex() + "\"}";
              });
          return "{\"other\":" + std::to_string(pair.other_domain) +
                 ",\"all_match\":" + (pair.all_match ? "true" : "false") +
                 ",\"items\":" + items + "}";
        });
  // Fault-domain fields only appear on degraded runs, so a fault-free
  // report stays byte-identical to the historical schema (consumers diff
  // and hash these).
  const bool degraded = !report.faults.empty() ||
                        !report.unavailable_on.empty() ||
                        report.subject_unavailable || report.quorum_lost;
  if (degraded) {
    os << ",\"unavailable_on\":"
       << array_of(report.unavailable_on,
                   [](vmm::DomainId id) { return std::to_string(id); })
       << ",\"peers_total\":" << report.peers_total
       << ",\"peers_answered\":" << report.peers_answered
       << ",\"quorum_lost\":" << (report.quorum_lost ? "true" : "false")
       << ",\"subject_unavailable\":"
       << (report.subject_unavailable ? "true" : "false") << ",\"faults\":"
       << array_of(report.faults,
                   [](const FaultRecord& f) { return to_json(f); });
  }
  os << "}";
  return os.str();
}

std::string to_json(const PoolScanReport& report) {
  // Per-verdict quorum fields and the report-level quarantine/fault arrays
  // only appear on degraded runs — a clean scan's JSON is byte-identical
  // to the historical schema.
  const bool degraded = report.degraded();
  std::ostringstream os;
  os << "{\"module\":" << quoted(report.module_name) << ",\"verdicts\":"
     << array_of(report.verdicts,
                 [degraded](const PoolVmVerdict& v) {
                   std::string out =
                       "{\"vm\":" + std::to_string(v.vm) +
                       ",\"clean\":" + (v.clean ? "true" : "false") +
                       ",\"successes\":" + std::to_string(v.successes) +
                       ",\"total\":" + std::to_string(v.total);
                   if (degraded) {
                     out += ",\"peers_total\":" + std::to_string(v.peers_total) +
                            ",\"peers_answered\":" +
                            std::to_string(v.peers_answered) +
                            ",\"quarantined\":" +
                            (v.quarantined ? "true" : "false") +
                            ",\"quorum_lost\":" +
                            (v.quorum_lost ? "true" : "false");
                   }
                   return out + "}";
                 })
     << ",\"wall_ns\":" << report.wall_time << ',' << cpu_ns_json(report.cpu_times)
     << ",\"fastpath_pairs\":" << report.fastpath_pairs
     << ",\"fallback_pairs\":" << report.fallback_pairs;
  if (degraded) {
    os << ",\"quarantined\":"
       << array_of(report.quarantined,
                   [](vmm::DomainId id) { return std::to_string(id); })
       << ",\"faults\":"
       << array_of(report.faults,
                   [](const FaultRecord& f) { return to_json(f); });
  }
  // Telemetry snapshot only when the scan was asked to embed one
  // (emit_telemetry) — absent, the schema is byte-identical to the
  // pre-telemetry output.
  if (!report.telemetry_json.empty()) {
    os << ",\"telemetry\":" << report.telemetry_json;
  }
  os << "}";
  return os.str();
}

std::string cpu_ns_json(const ComponentTimes& times) {
  std::ostringstream os;
  os << "\"cpu_ns\":{\"searcher\":" << times.searcher
     << ",\"parser\":" << times.parser << ",\"checker\":" << times.checker
     << "}";
  return os.str();
}

std::string to_json(const AuditReport& report) {
  std::ostringstream os;
  os << "{\"modules\":"
     << array_of(report.modules,
                 [](const std::string& s) { return quoted(s); })
     << ",\"pool\":"
     << array_of(report.pool,
                 [](vmm::DomainId id) { return std::to_string(id); })
     << ",\"findings\":"
     << array_of(report.findings,
                 [](const AuditFinding& f) {
                   return "{\"module\":" + quoted(f.module) +
                          ",\"vm\":" + std::to_string(f.vm) +
                          ",\"successes\":" + std::to_string(f.successes) +
                          ",\"total\":" + std::to_string(f.total) + "}";
                 })
     << ",\"total_wall_ns\":" << report.total_wall << "}";
  return os.str();
}

}  // namespace mc::core
