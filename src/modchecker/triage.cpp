#include "modchecker/triage.hpp"

#include "crypto/md5.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"

namespace mc::core {

crypto::Digest finding_fingerprint(const CheckReport& report) {
  // Fold the subject-side item digests of the first failed comparison.
  // Any content change to the subject module changes this fingerprint.
  crypto::Md5 md5;
  for (const auto& pair : report.comparisons) {
    if (pair.all_match) {
      continue;
    }
    for (const auto& item : pair.items) {
      md5.update(as_bytes(item.item_name));
      md5.update(item.digest_subject.bytes());
    }
    break;
  }
  return md5.finish();
}

void FindingTriage::acknowledge(const CheckReport& report,
                                const std::string& reason) {
  MC_CHECK(!report.subject_clean, "cannot acknowledge a clean report");
  Entry entry;
  entry.module = report.module_name;
  entry.fingerprint = finding_fingerprint(report);
  entry.reason = reason;
  if (index_.insert({entry.module, entry.fingerprint}).second) {
    entries_.push_back(std::move(entry));
  }
}

bool FindingTriage::is_acknowledged(const CheckReport& report) const {
  if (report.subject_clean) {
    return false;
  }
  return index_.count({report.module_name, finding_fingerprint(report)}) != 0;
}

std::vector<const CheckReport*> FindingTriage::unacknowledged(
    const std::vector<CheckReport>& reports) const {
  std::vector<const CheckReport*> out;
  for (const auto& report : reports) {
    if (!report.subject_clean && !is_acknowledged(report)) {
      out.push_back(&report);
    }
  }
  return out;
}

}  // namespace mc::core
