// Human-readable rendering of check reports.
#pragma once

#include <string>

#include "modchecker/modchecker.hpp"

namespace mc::core {

/// Multi-line summary: verdict, vote tally, flagged items, per-VM rows.
std::string format_report(const CheckReport& report);

/// One row per VM with its vote outcome.
std::string format_pool_report(const PoolScanReport& report);

}  // namespace mc::core
