#include "modchecker/incremental.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "vmm/phys_mem.hpp"
#include "vmm/write_watch.hpp"

namespace mc::core {

IncrementalScanner::IncrementalScanner(const vmm::Hypervisor& hypervisor,
                                       ModCheckerConfig config)
    : context_(hypervisor, std::move(config)),
      pipeline_(context_),
      partial_refreshes_(context_.metrics->counter(
          "incremental.partial_refreshes")),
      frames_reread_(context_.metrics->counter("incremental.frames_reread")),
      cache_reuses_(context_.metrics->counter("incremental.cache_reuses")) {}

IncrementalScanner::~IncrementalScanner() {
  vmm::WriteWatch& watch = context_.hypervisor->write_watch();
  for (const auto& [key, entry] : cache_) {
    if (entry.watch != vmm::WriteWatch::kNoWatch) {
      watch.unregister(entry.watch);
    }
  }
}

void IncrementalScanner::extract_full(AcquireStage::Session& session,
                                      const std::string& module_name,
                                      const ModuleInfo& info,
                                      CacheEntry& entry) {
  vmi::VmiSession& s = session.session();
  if (entry.watch != vmm::WriteWatch::kNoWatch) {
    s.unwatch(entry.watch);
    entry.watch = vmm::WriteWatch::kNoWatch;
  }
  // Register the watch BEFORE copying: a write racing the extraction marks
  // the fresh watch dirty, so the next scan conservatively refreshes —
  // registering after the copy would let that write slip by unobserved.
  Fallible<vmm::WriteWatch::WatchId> watch =
      s.try_watch_range(info.base, info.size_of_image);
  if (!watch.ok()) {
    // The scanner keeps the legacy throwing contract (see scan()).
    throw GuestFaultError(std::move(watch.fault()));
  }
  entry.watch = watch.value();
  entry.frames = context_.hypervisor->write_watch().watched_frames(entry.watch);

  const AcquireStage& acquire = pipeline_.acquire();
  auto image = acquire.extract_module(session, module_name);
  MC_CHECK(image.has_value(), "module vanished between list walk and copy");
  entry.found = true;
  entry.base = info.base;
  ++entry.generation;
  entry.image = std::move(*image);
}

bool IncrementalScanner::patch_dirty_pages(
    AcquireStage::Session& session, CacheEntry& entry,
    const std::vector<std::uint32_t>& dirty_pages) {
  vmi::VmiSession& s = session.session();
  const std::uint32_t base = entry.base;
  const std::uint32_t page_base = base & ~(vmm::kFrameSize - 1);
  const auto image_size = static_cast<std::uint32_t>(entry.image.bytes.size());
  entry.last_changed_rvas.clear();
  for (const std::uint32_t page : dirty_pages) {
    if (page >= entry.frames.size()) {
      return false;  // registration no longer matches the cached layout
    }
    const std::uint32_t page_va = page_base + page * vmm::kFrameSize;
    // Re-translate the dirty page: a bulk invalidate (snapshot restore)
    // may have replaced the page tables, leaving the same base mapped to
    // different frames.  A moved frame means the cached frame map — and
    // the watch registered over it — is stale; fall back to a full
    // extraction + re-registration.
    const std::uint64_t pa = s.translate_kv2p(page_va);
    if (static_cast<std::uint32_t>(pa >> vmm::kFrameShift) !=
        entry.frames[page]) {
      return false;
    }
    // Patch only the slice of this page that lies inside the image.
    const std::uint32_t lo = std::max(page_va, base);
    const std::uint32_t hi =
        std::min(page_va + vmm::kFrameSize, base + image_size);
    s.read_va(lo, MutableByteView(entry.image.bytes.data(), image_size)
                      .subspan(lo - base, hi - lo));
    entry.last_changed_rvas.emplace_back(lo - base, hi - base);
    ++stats_.frames_reread;
    frames_reread_.inc();
  }
  return true;
}

CanonicalPool* IncrementalScanner::refresh_canonical(
    const std::string& module_name, const std::vector<vmm::DomainId>& pool,
    const std::vector<CacheEntry*>& entries, SimClock& clock) {
  if (!pipeline_.normalize().enabled()) {
    return nullptr;
  }
  // Reference = first found copy in pool order, mirroring pool_scan.
  std::size_t ref_index = pool.size();
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (entries[i]->found) {
      ref_index = i;
      break;
    }
  }
  if (ref_index == pool.size()) {
    canon_.erase(module_name);
    return nullptr;
  }

  CanonState& state = canon_[module_name];
  const vmm::DomainId ref_vm = pool[ref_index];
  const CacheEntry& ref_entry = *entries[ref_index];
  if (!state.pool || state.ref_vm != ref_vm ||
      state.ref_generation != ref_entry.generation) {
    // No pool yet, or the borrowed reference changed content/identity:
    // O(t) rebuild — the cost a fresh scan pays every tick.
    state.pool = std::make_unique<CanonicalPool>(
        context_.config.algorithm, context_.config.host_costs,
        context_.metrics, context_.policy());
    state.generations.clear();
    state.ref_vm = ref_vm;
    state.ref_generation = ref_entry.generation;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (entries[i]->found) {
        state.pool->add(entries[i]->parsed, clock);
        state.generations[pool[i]] = entries[i]->generation;
      }
    }
    state.pool->finalize(clock);
    return state.pool.get();
  }

  // Stable reference: only changed copies re-normalize (O(changed)).
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (i == ref_index || !entries[i]->found) {
      continue;
    }
    const auto it = state.generations.find(pool[i]);
    const std::uint64_t have =
        it == state.generations.end() ? 0 : it->second;
    if (have != entries[i]->generation) {
      // The dirty-range mask is only a faithful delta when the pool saw
      // the generation immediately before a single partial refresh;
      // anything else (full re-extraction, missed generations) updates
      // every item.
      const auto* changed = entries[i]->last_refresh_partial &&
                                    have + 1 == entries[i]->generation
                                ? &entries[i]->last_changed_rvas
                                : nullptr;
      state.pool->update(entries[i]->parsed, clock, changed);
      state.generations[pool[i]] = entries[i]->generation;
    }
  }
  return state.pool.get();
}

IncrementalScanner::CacheEntry& IncrementalScanner::fetch(
    vmm::DomainId vm, const std::string& module_name, ComponentTimes& times) {
  CacheEntry& entry = cache_[{vm, module_name}];
  vmm::WriteWatch& watch = context_.hypervisor->write_watch();

  // Domain-generation shortcut: the per-domain write generation advances
  // on EVERY guest write — a module unload rewrites the loader list, a
  // rebase/reload rewrites list + image, an attack patches the image, a
  // snapshot restore bulk-invalidates — so an unchanged generation proves
  // the entire cached view (list walk included) is still current.  Skip
  // the session open and list walk outright; one O(1) generation query
  // replaces them.  The generation is read BEFORE any session work below
  // and stored only on success, so a write racing a fetch leaves the
  // stored value behind the live one and the next scan re-checks.
  const std::uint64_t domain_generation = watch.domain_write_generation(vm);
  if (entry.found && entry.watch != vmm::WriteWatch::kNoWatch &&
      entry.domain_generation == domain_generation) {
    ++stats_.cache_reuses;
    cache_reuses_.inc();
    times.searcher += context_.config.vmi_costs.watch_query;
    return entry;
  }

  SimClock searcher_clock;
  const AcquireStage& acquire = pipeline_.acquire();
  AcquireStage::Session session = acquire.open(vm, searcher_clock);

  // The list walk is always needed (cheap relative to a copy): the module
  // could have been unloaded or rebased since the last scan.
  const auto info = acquire.find_module(session, module_name);
  if (!info) {
    if (entry.watch != vmm::WriteWatch::kNoWatch) {
      watch.unregister(entry.watch);
    }
    entry = CacheEntry{};  // drop any stale cache
    times.searcher += searcher_clock.now();
    return entry;
  }

  // O(1) watch query against the cached extraction; dirty entries retry
  // the O(changed bytes) partial refresh before falling back to a full
  // re-extraction.
  bool need_full = true;
  if (entry.found && entry.base == info->base &&
      entry.image.bytes.size() == info->size_of_image &&
      entry.watch != vmm::WriteWatch::kNoWatch) {
    if (!session.session().watch_dirty(entry.watch)) {
      ++stats_.cache_reuses;
      cache_reuses_.inc();
      // The module's frames are clean even though the domain generation
      // moved (writes elsewhere); re-anchor the shortcut at the value read
      // before this fetch's session work.
      entry.domain_generation = domain_generation;
      times.searcher += searcher_clock.now();
      return entry;
    }
    ++stats_.invalidations;
    const std::vector<std::uint32_t> dirty =
        session.session().watch_drain(entry.watch);
    if (patch_dirty_pages(session, entry, dirty)) {
      ++entry.generation;
      ++stats_.partial_refreshes;
      partial_refreshes_.inc();
      entry.last_refresh_partial = true;
      need_full = false;
    }
  } else if (entry.found) {
    ++stats_.invalidations;  // rebased/resized — cache unusable
  }

  if (need_full) {
    ++stats_.full_extractions;
    extract_full(session, module_name, *info, entry);
    entry.last_refresh_partial = false;
    entry.last_changed_rvas.clear();
  }
  entry.domain_generation = domain_generation;
  times.searcher += searcher_clock.now();

  SimClock parser_clock;
  parser_clock.set_slowdown(context_.hypervisor->dom0_slowdown());
  entry.parsed = pipeline_.parse().parse_strict(entry.image, parser_clock);
  times.parser += parser_clock.now();
  return entry;
}

PoolScanReport IncrementalScanner::scan(
    const std::string& module_name, const std::vector<vmm::DomainId>& pool) {
  PoolScanReport report;
  report.module_name = module_name;

  std::vector<CacheEntry*> entries;
  entries.reserve(pool.size());
  for (const vmm::DomainId vm : pool) {
    ComponentTimes times;
    entries.push_back(&fetch(vm, module_name, times));
    report.cpu_times += times;
    report.wall_time += times.total();
  }

  std::vector<PoolVmVerdict> verdicts(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    verdicts[i].vm = pool[i];
    // The incremental front half keeps the legacy throwing contract (a
    // guest fault unwinds the scan), so every VM that reaches this point
    // answered: full quorum by construction.
    verdicts[i].peers_total = pool.empty() ? 0 : pool.size() - 1;
    verdicts[i].peers_answered = verdicts[i].peers_total;
  }
  SimClock checker_clock;
  checker_clock.set_slowdown(context_.hypervisor->dom0_slowdown());
  // Canonical fast path over the persistent pool: a changed copy pays one
  // normalization (inside refresh_canonical) instead of a full pairwise
  // comparison against every peer, so a dirty tick's checker cost is
  // O(changed copies), not O(changed copies * t).  Ineligible copies drop
  // their pairs to the exact pairwise fallback, verdict-identical to the
  // slow path — the same contract pool_scan's fast path keeps.
  CanonicalPool* canon =
      refresh_canonical(module_name, pool, entries, checker_clock);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (!entries[i]->found) {
      continue;
    }
    for (std::size_t j = i + 1; j < pool.size(); ++j) {
      if (!entries[j]->found) {
        continue;
      }
      ++verdicts[i].total;
      ++verdicts[j].total;

      bool all_match;
      if (canon != nullptr && canon->eligible(pool[i]) &&
          canon->eligible(pool[j])) {
        ++report.fastpath_pairs;
        checker_clock.charge(context_.config.host_costs.digest_pair_fixed);
        all_match = canon->digests(pool[i]) == canon->digests(pool[j]);
      } else {
        ++report.fallback_pairs;
        PairCacheEntry& pair =
            pair_cache_[{module_name, pool[i], pool[j]}];
        if (pair.generation_a == entries[i]->generation &&
            pair.generation_b == entries[j]->generation &&
            pair.generation_a != 0) {
          // Neither side changed since this pair was last compared.
          ++stats_.comparisons_reused;
          all_match = pair.all_match;
        } else {
          ++stats_.comparisons_computed;
          const PairComparison cmp = pipeline_.compare().compare(
              entries[i]->parsed, entries[j]->parsed, checker_clock);
          all_match = cmp.all_match;
          pair = {entries[i]->generation, entries[j]->generation, all_match};
        }
      }
      if (all_match) {
        ++verdicts[i].successes;
        ++verdicts[j].successes;
      }
    }
  }
  report.cpu_times.checker += checker_clock.now();
  report.wall_time += checker_clock.now();

  pipeline_.vote().finalize(verdicts);
  report.verdicts = std::move(verdicts);
  return report;
}

}  // namespace mc::core
