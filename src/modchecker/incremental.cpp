#include "modchecker/incremental.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "vmm/phys_mem.hpp"

namespace mc::core {

namespace {
/// Simulated cost of querying one page's dirty state from the hypervisor's
/// log-dirty bitmap.
constexpr SimNanos kDirtyCheckPerPage = 200;  // ns
}  // namespace

IncrementalScanner::IncrementalScanner(const vmm::Hypervisor& hypervisor,
                                       ModCheckerConfig config)
    : context_(hypervisor, std::move(config)), pipeline_(context_) {}

IncrementalScanner::CacheEntry& IncrementalScanner::fetch(
    vmm::DomainId vm, const std::string& module_name, ComponentTimes& times) {
  CacheEntry& entry = cache_[{vm, module_name}];
  const vmm::PhysicalMemory& memory = context_.hypervisor->domain(vm).memory();

  SimClock searcher_clock;
  const AcquireStage& acquire = pipeline_.acquire();
  AcquireStage::Session session = acquire.open(vm, searcher_clock);

  // The list walk is always needed (cheap relative to a copy): the module
  // could have been unloaded or rebased since the last scan.
  const auto info = acquire.find_module(session, module_name);
  if (!info) {
    entry = CacheEntry{};  // drop any stale cache
    times.searcher += searcher_clock.now();
    return entry;
  }

  // Dirty check against the cached extraction.
  if (entry.found && entry.base == info->base && !entry.frames.empty()) {
    searcher_clock.charge(kDirtyCheckPerPage * entry.frames.size());
    bool clean = true;
    for (const std::uint32_t frame : entry.frames) {
      if (memory.frame_version(frame) > entry.max_frame_version) {
        clean = false;
        break;
      }
    }
    if (clean) {
      ++stats_.cache_reuses;
      times.searcher += searcher_clock.now();
      return entry;
    }
    ++stats_.invalidations;
  } else if (entry.found) {
    ++stats_.invalidations;  // rebased (new base) — cache unusable
  }

  // Full extraction path (the pipeline's Acquire stage).
  ++stats_.full_extractions;
  const auto image = acquire.extract_module(session, module_name);
  MC_CHECK(image.has_value(), "module vanished between list walk and copy");
  times.searcher += searcher_clock.now();

  entry.found = true;
  entry.base = info->base;
  ++entry.generation;

  // Record the frame set and the version high-water mark.
  entry.frames.clear();
  std::uint64_t max_version = 0;
  for (std::uint32_t va = info->base & ~(vmm::kFrameSize - 1);
       va < info->base + info->size_of_image; va += vmm::kFrameSize) {
    const std::uint64_t pa = session.session().translate_kv2p(va);
    const auto frame = static_cast<std::uint32_t>(pa >> vmm::kFrameShift);
    entry.frames.push_back(frame);
    max_version = std::max(max_version, memory.frame_version(frame));
  }
  entry.max_frame_version = max_version;

  SimClock parser_clock;
  parser_clock.set_slowdown(context_.hypervisor->dom0_slowdown());
  entry.parsed = pipeline_.parse().parse_strict(*image, parser_clock);
  times.parser += parser_clock.now();
  return entry;
}

PoolScanReport IncrementalScanner::scan(
    const std::string& module_name, const std::vector<vmm::DomainId>& pool) {
  PoolScanReport report;
  report.module_name = module_name;

  std::vector<CacheEntry*> entries;
  entries.reserve(pool.size());
  for (const vmm::DomainId vm : pool) {
    ComponentTimes times;
    entries.push_back(&fetch(vm, module_name, times));
    report.cpu_times += times;
    report.wall_time += times.total();
  }

  std::vector<PoolVmVerdict> verdicts(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    verdicts[i].vm = pool[i];
    // The incremental front half keeps the legacy throwing contract (a
    // guest fault unwinds the scan), so every VM that reaches this point
    // answered: full quorum by construction.
    verdicts[i].peers_total = pool.empty() ? 0 : pool.size() - 1;
    verdicts[i].peers_answered = verdicts[i].peers_total;
  }
  SimClock checker_clock;
  checker_clock.set_slowdown(context_.hypervisor->dom0_slowdown());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (!entries[i]->found) {
      continue;
    }
    for (std::size_t j = i + 1; j < pool.size(); ++j) {
      if (!entries[j]->found) {
        continue;
      }
      ++verdicts[i].total;
      ++verdicts[j].total;

      PairCacheEntry& pair =
          pair_cache_[{module_name, pool[i], pool[j]}];
      bool all_match;
      if (pair.generation_a == entries[i]->generation &&
          pair.generation_b == entries[j]->generation &&
          pair.generation_a != 0) {
        // Neither side changed since this pair was last compared.
        ++stats_.comparisons_reused;
        all_match = pair.all_match;
      } else {
        ++stats_.comparisons_computed;
        const PairComparison cmp = pipeline_.compare().compare(
            entries[i]->parsed, entries[j]->parsed, checker_clock);
        all_match = cmp.all_match;
        pair = {entries[i]->generation, entries[j]->generation, all_match};
      }
      if (all_match) {
        ++verdicts[i].successes;
        ++verdicts[j].successes;
      }
    }
  }
  report.cpu_times.checker += checker_clock.now();
  report.wall_time += checker_clock.now();

  pipeline_.vote().finalize(verdicts);
  report.verdicts = std::move(verdicts);
  return report;
}

}  // namespace mc::core
