// Staged check pipeline — the single implementation of the paper's
// acquire → parse → normalize → compare → vote → report flow.
//
// The prototype re-implemented that flow separately in check_module,
// check_module_sampled, scan_pool, compare_module_lists and the
// IncrementalScanner, so every optimisation (canonical fast path, session
// pooling, digest memo) had to be threaded through each path by hand.
// This header is the one seam: each stage is a small object over a shared
// CheckContext, and every public entry point — ModChecker's methods, the
// IncrementalScanner, the FleetService sweeps — is a thin driver that
// composes the stages.
//
//   Acquire    guest-memory access: sessions (pooled or fresh), loader-list
//              walks, whole-image extraction.  The ONLY place that may
//              construct a ModuleSearcher (enforced by mc_lint's
//              pipeline-bypass rule).
//   Parse      format-plugin decomposition (PE32 or ELF64, resolved per
//              module through the FormatRegistry) into integrity items; a
//              FormatError is a finding, not a crash.  The only
//              ModuleParser owner.
//   Normalize  Algorithm 2 / canonical-RVA reduction of a pool of copies
//              against one reference (CanonicalPool).
//   Compare    pairwise item comparison through the IntegrityChecker,
//              with optional digest memoization.
//   Vote       the paper's majority rule  n > (t-1)/2.
//   Report     aggregation into CheckReport / PoolScanReport.
//
// Ownership rules (see DESIGN.md §7): the CheckContext owns the config,
// the parser/checker components and the persistent VmiSessionPool — the
// pool is a first-class mutable member here, not a `mutable` wart on a
// logically-const checker.  Stages borrow the context; the context must
// outlive the pipeline and every report it produced.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "modchecker/canonical.hpp"
#include "modchecker/checker.hpp"
#include "modchecker/parser.hpp"
#include "modchecker/types.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"
#include "util/fault.hpp"
#include "util/sim_clock.hpp"
#include "vmi/cost_model.hpp"
#include "vmi/session_pool.hpp"
#include "vmm/hypervisor.hpp"

namespace mc::core {

/// Acquire-stage retry policy: how hard to push a faulting guest before
/// quarantining it for the rest of the sweep.  Backoff is deterministic
/// simulated time (charged unscaled — the checker is *waiting*, not
/// burning Dom0 CPU), so runs replay bit-identically.
struct RetryPolicy {
  enum class Backoff : std::uint8_t {
    kFixed,        // every gap is backoff_base
    kExponential,  // backoff_base << (attempt - 1)
  };

  /// Total tries per VM per acquire (1 = no retry).
  std::uint32_t max_attempts = 3;
  SimNanos backoff_base = sim_us(50);
  Backoff backoff = Backoff::kExponential;

  /// The simulated gap slept before retry number `next_attempt` (2-based:
  /// the wait happens after a failed attempt `next_attempt - 1`).
  SimNanos delay_before(std::uint32_t next_attempt) const {
    if (next_attempt < 2) {
      return 0;
    }
    if (backoff == Backoff::kFixed) {
      return backoff_base;
    }
    const std::uint32_t shift =
        next_attempt - 2 < 20 ? next_attempt - 2 : 20;  // clamp the doubling
    return backoff_base << shift;
  }
};

/// Faults worth retrying are the transient ones (a paged-out read, a
/// mid-update page table, a guest still booting).  A vanished domain, a
/// guest with no debug block or an unrecognized build will not heal on a
/// 50us backoff — they quarantine immediately.
inline bool retryable_fault(FaultCode code) {
  switch (code) {
    case FaultCode::kReadFault:
    case FaultCode::kTranslationFault:
    case FaultCode::kNoAddressSpace:
      return true;
    case FaultCode::kDomainGone:
    case FaultCode::kDebugBlockMissing:
    case FaultCode::kUnrecognizedBuild:
      return false;
  }
  return false;
}

struct ModCheckerConfig {
  crypto::HashAlgorithm algorithm = crypto::HashAlgorithm::kMd5;
  vmi::VmiCostModel vmi_costs{};
  vmi::HostCostModel host_costs{};
  /// Module image format the Parse stage resolves per module: kAuto sniffs
  /// each image's header magic through the plugin registry (PE32 and ELF64
  /// pools can even mix in one fleet); an explicit value pins one plugin
  /// and rejects everything else as a parse failure.
  ModuleFormatId format = ModuleFormatId::kAuto;
  bool parallel = false;
  std::size_t worker_threads = 8;
  /// CRC32 prefilter: skip the full digest when cheap checksums agree
  /// (see IntegrityChecker for the tradeoff).
  bool crc_prefilter = false;
  /// Keep one VMI session per domain alive across calls (VmiSessionPool):
  /// repeat scans skip the attach + debug-block scan and reuse the warm
  /// V2P cache.  Sessions auto-invalidate when a domain's epoch/CR3 moves
  /// (snapshot restore, clone-into).  Off reproduces the paper's
  /// attach-per-check prototype.
  bool reuse_sessions = true;
  /// Canonical-RVA fast path for pool scans: normalize every copy against
  /// one reference, then decide each pair by comparing precomputed digest
  /// vectors — O(t) image work instead of O(t^2).  Pairs involving any
  /// copy that does not reduce cleanly fall back to the exact pairwise
  /// comparison, so verdicts are identical to the slow path (see
  /// canonical.hpp).  Disabled automatically with crc_prefilter (the
  /// prefilter's CRC-collision acceptance is not digest-equivalent).
  bool pool_fastpath = true;
  /// Memoize per-item digests within one check so the subject's items are
  /// hashed once instead of once per peer.
  bool digest_memo = true;
  /// Acquire whole-image extractions as borrowed GuestViews over the
  /// guest's frames instead of copying SizeOfImage bytes into an owned
  /// buffer.  Simulated charges are identical (the per-byte access cost is
  /// the introspection, not the host memcpy); the saving is host time and
  /// allocations.  Views live for one scan, so consumers that outlive it
  /// (the incremental cache, forensic dumps) always take the copy path
  /// regardless of this flag.
  bool zero_copy_acquire = true;
  /// Pin every diff/compare kernel to the scalar implementation (same
  /// effect as the MC_FORCE_SCALAR environment variable, scoped to this
  /// pipeline).  Verdicts are bit-identical at every dispatch level; this
  /// exists for A/B benchmarking and CI cross-checking.
  bool force_scalar = false;
  /// Acquire-stage retry/quarantine policy (see RetryPolicy).
  RetryPolicy retry{};
  /// Registry backing every pipeline/VMI counter and histogram.  Null means
  /// the process default; &telemetry::MetricRegistry::disabled() turns the
  /// whole metric layer into no-ops.
  telemetry::MetricRegistry* metrics = nullptr;
  /// Span recorder for per-stage traces.  Null (the default) records
  /// nothing and costs nothing on the hot path.
  telemetry::TraceRecorder* tracer = nullptr;
  /// Chrome trace "pid" spans from this pipeline carry (FleetService
  /// assigns one per pool so multi-pool traces get separate lanes).
  std::uint64_t trace_pid = 0;
  /// Attach a registry snapshot to PoolScanReport ("telemetry" JSON field).
  /// Off by default, keeping report bytes identical to the pre-telemetry
  /// schema.
  bool emit_telemetry = false;
};

/// Result of checking one module on one subject VM against a pool.
struct CheckReport {
  std::string module_name;
  vmm::DomainId subject = 0;
  std::vector<PairComparison> comparisons;
  std::size_t successes = 0;          // comparisons where every item matched
  std::size_t total_comparisons = 0;  // t - 1
  bool subject_clean = false;         // majority vote
  /// Union of item names that mismatched in at least one comparison.
  std::vector<std::string> flagged_items;
  /// Pool VMs where the module was not loaded (excluded from the vote).
  std::vector<vmm::DomainId> missing_on;
  /// Peers quarantined after exhausting acquire retries (excluded from the
  /// vote, like missing_on, but for a different reason: they never
  /// answered).
  std::vector<vmm::DomainId> unavailable_on;
  /// Every fault observed during this check, across all retry attempts.
  std::vector<FaultRecord> faults;
  /// Degraded-quorum bookkeeping: how many peers were asked vs. how many
  /// answered (missing-but-answering peers count as answered — "not
  /// loaded" is an answer).  quorum_lost flags a verdict reached with
  /// peers_answered <= (t-1)/2 — too few voters for the paper's majority
  /// rule to mean anything.
  std::size_t peers_total = 0;
  std::size_t peers_answered = 0;
  bool quorum_lost = false;
  /// The subject itself exhausted its retries; no verdict was attempted
  /// (subject_clean stays false, comparisons empty).  Distinct from the
  /// module being genuinely absent, which still throws NotFoundError.
  bool subject_unavailable = false;

  ComponentTimes cpu_times;  // summed across VMs (the Fig. 7/8 series)
  SimNanos wall_time = 0;    // sequential: == cpu total; parallel: critical path
};

/// Per-VM verdict from a whole-pool scan (every VM takes the subject role).
struct PoolVmVerdict {
  vmm::DomainId vm = 0;
  std::size_t successes = 0;
  std::size_t total = 0;
  bool clean = false;
  /// Degraded-quorum bookkeeping: of this VM's t-1 peers, how many
  /// answered their acquire (missing-but-answering counts as answered).
  std::size_t peers_total = 0;
  std::size_t peers_answered = 0;
  /// This VM exhausted its acquire retries and sat the scan out.
  bool quarantined = false;
  /// Verdict reached with peers_answered <= (t-1)/2: the majority rule no
  /// longer has enough voters behind it.  Never set on quarantined VMs
  /// (they have no verdict to degrade).
  bool quorum_lost = false;
};

struct PoolScanReport {
  std::string module_name;
  std::vector<PoolVmVerdict> verdicts;
  ComponentTimes cpu_times;
  SimNanos wall_time = 0;
  /// Pairs decided by the canonical-RVA digest comparison vs. pairs that
  /// ran the exact pairwise comparison (diagnostics for the fast path).
  std::size_t fastpath_pairs = 0;
  std::size_t fallback_pairs = 0;
  /// VMs quarantined this scan (acquire retries exhausted), and every
  /// fault observed along the way.  Both empty on a healthy pool.
  std::vector<vmm::DomainId> quarantined;
  std::vector<FaultRecord> faults;
  /// Registry snapshot JSON, filled only when config.emit_telemetry; the
  /// serializer appends it as a "telemetry" field when (and only when)
  /// non-empty.
  std::string telemetry_json;

  bool degraded() const { return !quarantined.empty() || !faults.empty(); }
};

/// One module whose presence differs across the pool.
struct ListDiscrepancy {
  std::string module_name;
  std::vector<vmm::DomainId> present_on;
  std::vector<vmm::DomainId> missing_on;
};

struct ListComparisonReport {
  /// Module names seen anywhere, with presence maps; only modules whose
  /// presence differs across *answering* VMs are listed (a quarantined VM
  /// is unknown, not absent).
  std::vector<ListDiscrepancy> discrepancies;
  std::size_t modules_seen = 0;
  SimNanos wall_time = 0;
  /// VMs whose loader-list walk exhausted its retries, plus the faults.
  std::vector<vmm::DomainId> unavailable;
  std::vector<FaultRecord> faults;

  bool consistent() const { return discrepancies.empty(); }
};

/// Item name reported when a module's copy cannot even be parsed (its PE
/// magics/headers are corrupted) — a definite integrity violation.
inline constexpr const char* kUnparseableItem = "MODULE_UNPARSEABLE";

/// Shared state for every stage of one pipeline.  Construction mirrors the
/// old ModChecker constructor; the session pool lives here so the drivers
/// stay logically const-correct.
struct CheckContext {
  /// Setup-time handles to the pipeline's registry aggregates; stages bump
  /// them on the hot path without touching the registry lock.  All handles
  /// are no-ops when the config points at the disabled registry.
  struct PipelineMetrics {
    explicit PipelineMetrics(telemetry::MetricRegistry& reg)
        : checks(reg.counter("pipeline.checks")),
          pool_scans(reg.counter("pipeline.pool_scans")),
          list_scans(reg.counter("pipeline.list_scans")),
          acquire_attempts(reg.counter("pipeline.acquire.attempts")),
          acquire_retries(reg.counter("pipeline.acquire.retries")),
          materializations(reg.counter("pipeline.acquire.materializations")),
          quarantines(reg.counter("pipeline.acquire.quarantines")),
          faults(reg.counter("pipeline.acquire.faults")),
          parse_failures(reg.counter("pipeline.parse.failures")),
          fastpath_pairs(reg.counter("pipeline.compare.fastpath_pairs")),
          fallback_pairs(reg.counter("pipeline.compare.fallback_pairs")),
          acquire_ns(reg.histogram("pipeline.acquire.sim_ns")),
          parse_ns(reg.histogram("pipeline.parse.sim_ns")),
          normalize_ns(reg.histogram("pipeline.normalize.sim_ns")),
          compare_ns(reg.histogram("pipeline.compare.sim_ns")) {}

    telemetry::Counter checks;
    telemetry::Counter pool_scans;
    telemetry::Counter list_scans;
    telemetry::Counter acquire_attempts;
    telemetry::Counter acquire_retries;
    /// Whole-image extractions that produced an owned copy instead of a
    /// borrowed view (kCopy mode or zero_copy_acquire off).  Zero across a
    /// clean zero-copy scan — the bench gate asserts exactly that.
    telemetry::Counter materializations;
    telemetry::Counter quarantines;
    telemetry::Counter faults;
    telemetry::Counter parse_failures;
    telemetry::Counter fastpath_pairs;
    telemetry::Counter fallback_pairs;
    telemetry::Histogram acquire_ns;
    telemetry::Histogram parse_ns;
    telemetry::Histogram normalize_ns;
    telemetry::Histogram compare_ns;
  };

  CheckContext(const vmm::Hypervisor& hv, ModCheckerConfig cfg)
      : hypervisor(&hv),
        config(std::move(cfg)),
        metrics(&telemetry::resolve(config.metrics)),
        tracer(config.tracer),
        parser(config.host_costs, config.format),
        checker(config.algorithm, config.host_costs, config.crc_prefilter,
                config.force_scalar ? simd::Policy::kScalar
                                    : simd::Policy::kAuto),
        session_pool(hv, config.vmi_costs, metrics),
        pm(*metrics) {}

  CheckContext(const CheckContext&) = delete;
  CheckContext& operator=(const CheckContext&) = delete;

  /// Dispatch policy every stage's diff/compare kernels run under.
  simd::Policy policy() const {
    return config.force_scalar ? simd::Policy::kScalar : simd::Policy::kAuto;
  }

  const vmm::Hypervisor* hypervisor;
  ModCheckerConfig config;
  /// Resolved registry (never null) and the optional span recorder.
  telemetry::MetricRegistry* metrics;
  telemetry::TraceRecorder* tracer;
  ModuleParser parser;
  IntegrityChecker checker;
  /// Per-domain persistent sessions (used when config.reuse_sessions).
  vmi::VmiSessionPool session_pool;
  PipelineMetrics pm;
};

/// Output of the Acquire+Parse front half for one VM.
struct Extraction {
  ComponentTimes times;
  bool found = false;
  bool parse_failed = false;
  std::string parse_error;
  ParsedModule parsed;
  /// Every fault observed across the acquire attempts (empty on a clean
  /// run — the usual case allocates nothing).
  std::vector<FaultRecord> faults;
  /// All attempts faulted: the VM never answered and is quarantined for
  /// this scan.  `found` stays false.
  bool unavailable = false;
  /// Acquire attempts consumed (1 on the clean path).
  std::uint32_t attempts = 1;
};

/// Stage 1 — Acquire: all guest-memory access.  Hands out RAII session
/// scopes (pooled lease when reuse_sessions, fresh attach otherwise) and
/// runs the Module-Searcher operations against them.
class AcquireStage {
 public:
  explicit AcquireStage(CheckContext& ctx) : ctx_(&ctx) {}

  /// One VM's introspection session for the duration of a stage call.
  /// Charges attach (or pool-hit bookkeeping) to `clock`.
  class Session {
   public:
    Session(CheckContext& ctx, vmm::DomainId vm, SimClock& clock);

    vmi::VmiSession& session();

   private:
    std::optional<vmi::VmiSessionPool::Lease> lease_;
    std::optional<vmi::VmiSession> local_;
  };

  Session open(vmm::DomainId vm, SimClock& clock) const {
    return Session(*ctx_, vm, clock);
  }

  /// Loader-list walk: every module's basic facts.
  std::vector<ModuleInfo> list_modules(Session& s) const;

  /// Loader-list lookup of one module; nullopt if not loaded.
  std::optional<ModuleInfo> find_module(Session& s,
                                        const std::string& module_name) const;

  /// Whole-image copy out of guest memory; nullopt if not loaded.
  std::optional<ModuleImage> extract_module(
      Session& s, const std::string& module_name) const;

  /// Fault-returning variants: a guest fault (injected or real) comes back
  /// as a FaultRecord instead of unwinding the scan.
  Fallible<std::vector<ModuleInfo>> try_list_modules(Session& s) const;
  Fallible<std::optional<ModuleImage>> try_extract_module(
      Session& s, const std::string& module_name) const;

  /// One retried acquire under the config's RetryPolicy: runs `attempt`
  /// (session open + searcher work on `clock`) up to max_attempts times,
  /// sleeping the deterministic backoff between tries.  Faults (including
  /// a NotFoundError from opening a vanished domain, surfaced as
  /// kDomainGone) are appended to `faults` with their attempt number;
  /// non-retryable codes stop early.  Returns the first successful result,
  /// or disengaged when every attempt faulted.
  std::optional<std::optional<ModuleImage>> extract_with_retry(
      vmm::DomainId vm, const std::string& module_name, SimClock& clock,
      std::vector<FaultRecord>& faults, std::uint32_t& attempts) const;

  std::optional<std::vector<ModuleInfo>> list_with_retry(
      vmm::DomainId vm, SimClock& clock, std::vector<FaultRecord>& faults,
      std::uint32_t& attempts) const;

 private:
  CheckContext* ctx_;
};

/// Stage 2 — Parse: PE decomposition on the host's (contention-scaled)
/// clock.
class ParseStage {
 public:
  explicit ParseStage(CheckContext& ctx) : ctx_(&ctx) {}

  /// Tolerant parse: a FormatError marks the extraction parse_failed (a
  /// finding the Vote stage turns into a definite mismatch).  Charges to
  /// ex.times.parser on a fresh dom0-slowdown clock.
  void parse(const ModuleImage& image, Extraction& ex) const;

  /// Strict parse for callers that manage their own failure handling
  /// (e.g. the incremental cache).  Throws FormatError.
  ParsedModule parse_strict(const ModuleImage& image, SimClock& clock) const;

 private:
  CheckContext* ctx_;
};

/// Stage 3 — Normalize: canonical-RVA reduction of a pool of parsed copies
/// (Algorithm 2 against one reference; see canonical.hpp).
class NormalizeStage {
 public:
  explicit NormalizeStage(CheckContext& ctx) : ctx_(&ctx) {}

  /// True when the config wants the fast path (pool_fastpath and no CRC
  /// prefilter in the way).
  bool enabled() const;

  /// Builds the canonical pool over every successfully parsed extraction,
  /// charging normalization to `clock`.  Disengaged when !enabled().
  std::optional<CanonicalPool> canonicalize(
      const std::vector<Extraction>& extractions, SimClock& clock) const;

 private:
  CheckContext* ctx_;
};

/// Stage 4 — Compare: exact pairwise item comparison (with optional digest
/// memo) through the IntegrityChecker.
class CompareStage {
 public:
  explicit CompareStage(CheckContext& ctx) : ctx_(&ctx) {}

  PairComparison compare(const ParsedModule& subject,
                         const ParsedModule& other, SimClock& clock,
                         DigestTable* memo = nullptr) const;

 private:
  CheckContext* ctx_;
};

/// Stage 5 — Vote: the paper's majority rule, quorum-aware.
class VoteStage {
 public:
  /// n > (t-1)/2 over the completed comparisons.
  static bool majority(std::size_t successes, std::size_t total) {
    return total > 0 && 2 * successes > total;
  }

  /// Did enough peers answer for the majority rule to be meaningful?
  /// Lost when the answering peers can no longer form a strict majority
  /// of the intended electorate: peers_answered <= (t-1)/2.
  static bool quorum_lost(std::size_t peers_answered,
                          std::size_t peers_total) {
    return peers_total > 0 && 2 * peers_answered <= peers_total;
  }

  /// Applies the rule to every per-VM tally and flags degraded verdicts
  /// (quorum_lost is never raised on quarantined VMs — they cast no vote).
  void finalize(std::vector<PoolVmVerdict>& verdicts) const;
};

/// The staged pipeline.  Drivers (`check`, `pool_scan`, `compare_lists`)
/// compose the stages end to end; callers with bespoke front halves (the
/// IncrementalScanner's dirty-frame cache, the FleetService) use the stage
/// accessors directly.
class CheckPipeline {
 public:
  explicit CheckPipeline(CheckContext& ctx)
      : ctx_(&ctx),
        acquire_(ctx),
        parse_(ctx),
        normalize_(ctx),
        compare_(ctx) {}

  CheckContext& context() { return *ctx_; }
  const CheckContext& context() const { return *ctx_; }

  const AcquireStage& acquire() const { return acquire_; }
  const ParseStage& parse() const { return parse_; }
  const NormalizeStage& normalize() const { return normalize_; }
  const CompareStage& compare() const { return compare_; }
  const VoteStage& vote() const { return vote_; }

  /// Acquire + Parse for one VM: the shared front half of every check.
  Extraction acquire_and_parse(vmm::DomainId vm,
                               const std::string& module_name);

  /// Subject-vs-peers driver (ModChecker::check_module).  `raw_others` is
  /// sanitized against self-comparison and duplicates.  Throws
  /// NotFoundError if the module is not loaded on the subject.
  CheckReport check(vmm::DomainId subject, const std::string& module_name,
                    const std::vector<vmm::DomainId>& raw_others);

  /// Whole-pool cross-check driver (ModChecker::scan_pool): every VM takes
  /// the subject role; canonical fast path + exact fallback.
  PoolScanReport pool_scan(const std::string& module_name,
                           const std::vector<vmm::DomainId>& pool);

  /// Loader-list presence comparison driver
  /// (ModChecker::compare_module_lists).
  ListComparisonReport compare_lists(const std::vector<vmm::DomainId>& pool);

 private:
  CheckContext* ctx_;
  AcquireStage acquire_;
  ParseStage parse_;
  NormalizeStage normalize_;
  CompareStage compare_;
  VoteStage vote_;
};

}  // namespace mc::core
