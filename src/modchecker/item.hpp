// Format-neutral integrity-item vocabulary — the substrate of the paper's
// Algorithm 1 ("decompose the module into its headers and section
// contents, hash each separately").
//
// These types used to live in pe/parser.hpp; the format-plugin refactor
// hoisted them here so the checking layers (parser, checker, canonical
// pool, pipeline) speak one item language regardless of whether a module
// arrived as a PE32 driver or an ELF64 .ko.  `pe/parser.hpp` re-exports
// them under `mc::pe` for source compatibility; the enumerator order and
// the to_string spellings of the original PE kinds are frozen (report
// pair keys embed the numeric kind, report text embeds the strings).
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.hpp"
#include "vmi/guest_view.hpp"

namespace mc::core {

/// What kind of module piece an integrity item covers.  PE kinds first
/// (frozen order — pair keys embed the numeric value), ELF kinds appended.
enum class ItemKind {
  kDosHeader,        // IMAGE_DOS_HEADER + DOS stub (bytes [0, e_lfanew))
  kNtHeader,         // PE signature + IMAGE_FILE_HEADER
  kOptionalHeader,   // IMAGE_OPTIONAL_HEADER (incl. data directories)
  kSectionHeader,    // one IMAGE_SECTION_HEADER
  kSectionData,      // data of one read-only or executable section
  kElfHeader,        // ELF64 file header (Elf64_Ehdr)
  kElfSectionHeader, // one Elf64_Shdr
};

inline std::string to_string(ItemKind kind) {
  switch (kind) {
    case ItemKind::kDosHeader:
      return "IMAGE_DOS_HEADER";
    case ItemKind::kNtHeader:
      return "IMAGE_NT_HEADER";
    case ItemKind::kOptionalHeader:
      return "IMAGE_OPTIONAL_HEADER";
    case ItemKind::kSectionHeader:
      return "IMAGE_SECTION_HEADER";
    case ItemKind::kSectionData:
      return "SECTION_DATA";
    case ItemKind::kElfHeader:
      return "ELF64_EHDR";
    case ItemKind::kElfSectionHeader:
      return "ELF64_SHDR";
  }
  return "?";
}

/// One hashable unit of a module (paper §III-B.3: "computes the hashes of
/// the headers and the contents of the module ... separately").
///
/// Content lives in exactly one of two places: `bytes` (owned copy — the
/// historical path, still used for disk images, caches and forensics) or
/// `view` (borrowed spans over guest frames — the zero-copy Acquire path;
/// headers stay owned even there because they are tiny and parsed into
/// structs anyway).  Consumers go through the content_* accessors /
/// for_each_span so they never care which mode an item is in.
struct IntegrityItem {
  ItemKind kind = ItemKind::kSectionData;
  std::string name;        // ".text", "IMAGE_NT_HEADER", ...
  std::uint32_t rva = 0;   // where the bytes start within the image
  Bytes bytes;             // owned content (empty when view-backed)
  bool rva_sensitive = false;  // true for executable section data (holds
                               // absolute addresses that must be normalized
                               // before hashing)
  vmi::GuestView view;     // borrowed content (empty when owned)

  bool view_backed() const { return !view.empty(); }
  std::size_t content_size() const {
    return view_backed() ? view.size() : bytes.size();
  }
  /// Copies the content into `dst` (dst.size() == content_size()).
  void copy_content(MutableByteView dst) const {
    if (view_backed()) {
      view.read_into(0, dst);
    } else {
      copy_bytes(dst, bytes);
    }
  }
  /// Owned copy — materialization point for forensics/dump consumers.
  Bytes content_copy() const {
    return view_backed() ? view.materialize() : bytes;
  }
  /// Walks the content as borrowed spans in order (streaming hash/CRC).
  template <typename Fn>
  void for_each_span(Fn&& fn) const {
    if (view_backed()) {
      view.for_each_segment(fn);
    } else if (!bytes.empty()) {
      fn(ByteView(bytes));
    }
  }
};

}  // namespace mc::core
