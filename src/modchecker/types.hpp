// Shared value types for the ModChecker pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/digest.hpp"
#include "modchecker/item.hpp"
#include "modchecker/rva_adjust.hpp"
#include "util/bytes.hpp"
#include "util/sim_clock.hpp"
#include "vmm/domain.hpp"

namespace mc::core {

/// Basic facts about one module in a guest's loader list.
struct ModuleInfo {
  std::string name;
  std::uint32_t base = 0;
  std::uint32_t size_of_image = 0;
  std::uint32_t entry_point = 0;
};

/// A whole module image acquired from one guest's memory: either copied
/// into an owned buffer (the historical path — caches and forensics need
/// to outlive the scan) or borrowed as a scatter-gather GuestView over
/// the guest's frames (the zero-copy Acquire path; valid for one scan).
struct ModuleImage {
  vmm::DomainId domain = 0;
  std::string name;
  std::uint32_t base = 0;
  Bytes bytes;          // SizeOfImage bytes, memory layout (owned mode)
  vmi::GuestView view;  // borrowed spans (zero-copy mode)

  bool view_backed() const { return !view.empty(); }
  std::size_t size() const {
    return view_backed() ? view.size() : bytes.size();
  }
};

/// A module decomposed into its integrity items (Algorithm 1 output).
/// `fixups` is the format plugin's absolute-fixup normalization policy —
/// the width/step/bias recipe Algorithm 2 needs to undo relocation on this
/// module's rva-sensitive items.  Defaults to the PE32 policy so existing
/// aggregate initializers keep their meaning.
struct ParsedModule {
  vmm::DomainId domain = 0;
  std::string name;
  std::uint32_t base = 0;
  std::vector<IntegrityItem> items;
  FixupPolicy fixups{};
};

/// Per-component simulated runtimes — the series of Figs. 7 & 8.
struct ComponentTimes {
  SimNanos searcher = 0;
  SimNanos parser = 0;
  SimNanos checker = 0;

  SimNanos total() const { return searcher + parser + checker; }

  ComponentTimes& operator+=(const ComponentTimes& o) {
    searcher += o.searcher;
    parser += o.parser;
    checker += o.checker;
    return *this;
  }
};

}  // namespace mc::core
