// Shared value types for the ModChecker pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/digest.hpp"
#include "pe/parser.hpp"
#include "util/bytes.hpp"
#include "util/sim_clock.hpp"
#include "vmm/domain.hpp"

namespace mc::core {

/// Basic facts about one module in a guest's loader list.
struct ModuleInfo {
  std::string name;
  std::uint32_t base = 0;
  std::uint32_t size_of_image = 0;
  std::uint32_t entry_point = 0;
};

/// A whole module image copied out of one guest's memory.
struct ModuleImage {
  vmm::DomainId domain = 0;
  std::string name;
  std::uint32_t base = 0;
  Bytes bytes;  // SizeOfImage bytes, memory layout
};

/// A module decomposed into its integrity items (Algorithm 1 output).
struct ParsedModule {
  vmm::DomainId domain = 0;
  std::string name;
  std::uint32_t base = 0;
  std::vector<pe::IntegrityItem> items;
};

/// Per-component simulated runtimes — the series of Figs. 7 & 8.
struct ComponentTimes {
  SimNanos searcher = 0;
  SimNanos parser = 0;
  SimNanos checker = 0;

  SimNanos total() const { return searcher + parser + checker; }

  ComponentTimes& operator+=(const ComponentTimes& o) {
    searcher += o.searcher;
    parser += o.parser;
    checker += o.checker;
    return *this;
  }
};

}  // namespace mc::core
