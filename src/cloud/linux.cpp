#include "cloud/linux.hpp"

#include <algorithm>

#include "elf/builder.hpp"
#include "elf/constants.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace mc::cloud {

namespace {

/// Deterministic filler (recognizable, non-zero) — same idea as the PE
/// golden factory's data sections.
Bytes make_filler(std::uint32_t bytes, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Bytes data(bytes, 0);
  for (std::size_t i = 0; i + 8 <= data.size(); i += 8) {
    const std::uint64_t v = rng.next();
    for (std::size_t k = 0; k < 8; ++k) {
      data[i + k] = static_cast<std::uint8_t>(v >> (8 * k));
    }
  }
  return data;
}

}  // namespace

Bytes build_ko_image(const KoSpec& spec) {
  MC_CHECK(spec.text_bytes >= 64, "ko .text too small");
  Xoshiro256 rng(spec.seed ^ 0xE1F0E1F0E1F0E1F0ull);

  Bytes text = make_filler(spec.text_bytes, spec.seed);
  Bytes rodata = make_filler(spec.rodata_bytes, spec.seed ^ 0xA5A5A5A5ull);
  // Plant the module banner at the front of .rodata like real modinfo.
  const std::string banner = spec.name + " (simulated kernel module)";
  for (std::size_t i = 0; i < banner.size() && i + 1 < rodata.size(); ++i) {
    rodata[i] = static_cast<std::uint8_t>(banner[i]);
  }
  Bytes data = make_filler(spec.data_bytes, spec.seed ^ 0x5A5A5A5Aull);

  // Fixup slots spread evenly through .text on 8-byte boundaries; zeroed
  // in the golden file (the loader writes the full value from S + addend).
  const std::uint32_t slots =
      spec.abs64_fixups + spec.abs32s_fixups + spec.pc32_fixups;
  const std::uint32_t stride =
      std::max<std::uint32_t>(16, spec.text_bytes / (slots + 1)) & ~7u;
  std::vector<std::uint32_t> slot_offsets;
  for (std::uint32_t i = 0; i < slots; ++i) {
    const std::uint32_t off = (i + 1) * stride;
    MC_CHECK(off + 8 <= spec.text_bytes, "too many fixups for .text size");
    slot_offsets.push_back(off);
    for (std::uint32_t k = 0; k < 8; ++k) {
      text[off + k] = 0;
    }
  }

  elf::KoBuilder builder(spec.name);
  builder.add_section(".text", std::move(text),
                      elf::kShfAlloc | elf::kShfExecinstr);
  builder.add_section(".rodata", std::move(rodata), elf::kShfAlloc);
  builder.add_section(".data", std::move(data),
                      elf::kShfAlloc | elf::kShfWrite);
  builder.add_symbol("init_module", ".text", 0);
  builder.add_symbol("mod_rodata", ".rodata", 0);
  if (spec.data_bytes >= 8) {
    builder.add_symbol("mod_state", ".data", 0);
  }

  // R_X86_64_64 slots first, then the truncated 32S slots, then the
  // PC-relative PC32 slots; targets cycle through the module's own
  // symbols with section-local addends.
  static const char* const kTargets[] = {"init_module", "mod_rodata",
                                         "mod_state"};
  const std::size_t target_count = spec.data_bytes >= 8 ? 3 : 2;
  const auto addend_for = [&](const char* symbol) -> std::int64_t {
    const std::uint32_t span = symbol == kTargets[0]   ? spec.text_bytes
                               : symbol == kTargets[1] ? spec.rodata_bytes
                                                       : spec.data_bytes;
    return static_cast<std::int64_t>(rng.below(std::max(span, 8u) - 7));
  };
  const auto type_for = [&](std::uint32_t i) {
    if (i < spec.abs64_fixups) {
      return elf::kRX8664_64;
    }
    if (i < spec.abs64_fixups + spec.abs32s_fixups) {
      return elf::kRX8664_32S;
    }
    return elf::kRX8664_PC32;
  };
  for (std::uint32_t i = 0; i < slots; ++i) {
    const char* symbol = kTargets[i % target_count];
    builder.add_rela(".text", slot_offsets[i], type_for(i), symbol,
                     addend_for(symbol));
  }
  return builder.build();
}

std::vector<KoSpec> default_ko_catalog() {
  // A realistic insmod population: storage + filesystem + netfilter + NIC
  // drivers, plus the "hello" dummy the E3/E4 analogues load.
  return {
      {"scsi_mod", 11, 0x2800, 0x0800, 0x0400, 20, 10},
      {"ext3", 12, 0x2000, 0x0600, 0x0400, 16, 8},
      {"nf_conntrack", 13, 0x1400, 0x0400, 0x0300, 12, 6},
      {"e1000", 14, 0x1000, 0x0400, 0x0200, 10, 5},
      {"hello", 15, 0x0300, 0x0100, 0x0080, 4, 2},
  };
}

std::vector<std::string> default_ko_load_order() {
  std::vector<std::string> order;
  for (const KoSpec& spec : default_ko_catalog()) {
    order.push_back(spec.name);
  }
  return order;
}

LinuxEnvironment::LinuxEnvironment(LinuxCloudConfig config)
    : config_(std::move(config)), hypervisor_(config_.hardware) {
  for (const KoSpec& spec : config_.catalog) {
    golden_.emplace(spec.name, build_ko_image(spec));
  }
  guests_.reserve(config_.guest_count);
  for (std::size_t i = 0; i < config_.guest_count; ++i) {
    const std::string name = "Dom" + std::to_string(i + 1);
    const vmm::DomainId id =
        hypervisor_.create_domain(name, config_.guest_memory);
    guests_.push_back(id);

    guestos::GuestConfig gc;
    gc.seed = config_.base_seed * 1000003ull + i;
    gc.profile = &guestos::linux26_profile();

    GuestRuntime rt;
    rt.kernel =
        std::make_unique<guestos::GuestKernel>(hypervisor_.domain(id), gc);
    rt.loader = std::make_unique<guestos::KoLoader>(*rt.kernel);
    for (const auto& module_name : config_.load_order) {
      rt.loader->load(module_name, golden_file(module_name));
    }
    runtimes_.emplace(id, std::move(rt));
  }
  log_info("linux environment up: %zu guests, %zu modules each",
           guests_.size(), config_.load_order.size());
}

const Bytes& LinuxEnvironment::golden_file(const std::string& name) const {
  const auto it = golden_.find(name);
  if (it == golden_.end()) {
    throw NotFoundError("no golden .ko named " + name);
  }
  return it->second;
}

guestos::GuestKernel& LinuxEnvironment::kernel(vmm::DomainId id) {
  const auto it = runtimes_.find(id);
  if (it == runtimes_.end()) {
    throw NotFoundError("no guest runtime for domain " + std::to_string(id));
  }
  return *it->second.kernel;
}

const guestos::GuestKernel& LinuxEnvironment::kernel(vmm::DomainId id) const {
  const auto it = runtimes_.find(id);
  if (it == runtimes_.end()) {
    throw NotFoundError("no guest runtime for domain " + std::to_string(id));
  }
  return *it->second.kernel;
}

guestos::KoLoader& LinuxEnvironment::loader(vmm::DomainId id) {
  const auto it = runtimes_.find(id);
  if (it == runtimes_.end()) {
    throw NotFoundError("no guest runtime for domain " + std::to_string(id));
  }
  return *it->second.loader;
}

const guestos::KoLoader& LinuxEnvironment::loader(vmm::DomainId id) const {
  const auto it = runtimes_.find(id);
  if (it == runtimes_.end()) {
    throw NotFoundError("no guest runtime for domain " + std::to_string(id));
  }
  return *it->second.loader;
}

}  // namespace mc::cloud
