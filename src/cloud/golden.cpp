#include "cloud/golden.hpp"

#include "pe/builder.hpp"
#include "pe/constants.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "x86/codegen.hpp"

namespace mc::cloud {

namespace {

/// Deterministic filler for data sections (recognizable, non-zero pattern
/// so accidental truncation shows up in hashes).
Bytes make_data_section(std::uint32_t bytes, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Bytes data(bytes, 0);
  for (std::size_t i = 0; i + 8 <= data.size(); i += 8) {
    const std::uint64_t v = rng.next();
    for (std::size_t k = 0; k < 8; ++k) {
      data[i + k] = static_cast<std::uint8_t>(v >> (8 * k));
    }
  }
  return data;
}

Bytes make_rdata_section(std::uint32_t bytes, const std::string& name,
                         std::uint64_t seed) {
  Bytes data = make_data_section(bytes, seed ^ 0xA5A5A5A5ull);
  // Plant a few read-only strings at the front, like real driver .rdata.
  const std::string banner = name + " (c) simulated driver";
  for (std::size_t i = 0; i < banner.size() && i + 1 < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(banner[i]);
  }
  if (banner.size() < data.size()) {
    data[banner.size()] = 0;
  }
  return data;
}

}  // namespace

Bytes build_driver_image(const DriverSpec& spec) {
  // Section layout (fixed order): .text, .data, .rdata, [.idata], [.edata],
  // .reloc.  All RVAs are deterministic given section sizes, so we can
  // pre-compute the import section's RVA before generating code that calls
  // through its IAT.
  //
  // Pass 1: generate code with dummy IAT addresses to learn its exact size
  // (the generator is deterministic and size does not depend on operand
  // values).
  x86::CodeGenParams cg;
  cg.seed = spec.seed;
  cg.function_count = spec.functions;
  cg.ops_per_function = spec.ops_per_function;
  cg.address_op_fraction = spec.address_op_fraction;

  std::size_t import_function_count = 0;
  for (const auto& dll : spec.imports) {
    import_function_count += dll.function_names.size();
  }
  cg.iat_slot_rvas.assign(import_function_count, 0);

  const std::uint32_t text_rva = pe::kDefaultSectionAlignment;
  cg.data_rva = 0;  // placeholder; fixed in pass 2
  x86::CodeBlob probe = x86::generate_driver_text(cg, spec.image_base);
  const auto text_size = static_cast<std::uint32_t>(probe.code.size());

  // Analytic layout (mirrors PeBuilder::next_section_rva).
  const std::uint32_t data_rva =
      align_up(text_rva + std::max(text_size, 1u), pe::kDefaultSectionAlignment);
  const std::uint32_t rdata_rva =
      align_up(data_rva + std::max(spec.data_bytes, 1u),
               pe::kDefaultSectionAlignment);
  const std::uint32_t idata_rva =
      align_up(rdata_rva + std::max(spec.rdata_bytes, 1u),
               pe::kDefaultSectionAlignment);

  // Import layout at its real RVA (gives us the IAT slot RVAs).
  pe::ImportLayout imports;
  std::vector<std::uint32_t> iat_slot_rvas;
  if (!spec.imports.empty()) {
    imports = pe::build_import_section(spec.imports, idata_rva);
    for (const auto& dll_slots : imports.iat_offsets) {
      for (const std::uint32_t off : dll_slots) {
        iat_slot_rvas.push_back(idata_rva + off);
      }
    }
  }

  // Pass 2: real code.
  cg.data_rva = data_rva;
  cg.data_size = spec.data_bytes;
  cg.iat_slot_rvas = iat_slot_rvas;
  x86::CodeBlob blob = x86::generate_driver_text(cg, spec.image_base);
  MC_CHECK(blob.code.size() == text_size, "codegen size not deterministic");

  pe::PeBuilder builder(spec.name);
  builder.set_image_base(spec.image_base).set_dll(spec.is_dll);
  builder.set_entry_point(text_rva + blob.entry_offset);

  builder.add_section(".text", std::move(blob.code),
                      pe::kScnCntCode | pe::kScnMemExecute | pe::kScnMemRead,
                      blob.fixups);
  builder.add_section(".data", make_data_section(spec.data_bytes, spec.seed),
                      pe::kScnCntInitializedData | pe::kScnMemRead |
                          pe::kScnMemWrite);
  builder.add_section(".rdata",
                      make_rdata_section(spec.rdata_bytes, spec.name, spec.seed),
                      pe::kScnCntInitializedData | pe::kScnMemRead);
  if (!spec.imports.empty()) {
    MC_CHECK(builder.next_section_rva() == idata_rva,
             "import section layout drifted");
    builder.add_import_section(spec.imports);
  }
  pe::VersionInfo version = spec.version;
  // Deterministic per-driver revision so versions differ across drivers.
  version.file_revision = static_cast<std::uint16_t>(spec.seed & 0xFFF);
  version.product_revision = version.file_revision;

  if (!spec.exports.empty()) {
    std::vector<pe::ExportedSymbol> symbols;
    for (std::size_t i = 0; i < spec.exports.size(); ++i) {
      pe::ExportedSymbol sym;
      sym.name = spec.exports[i];
      // First export lands on the entry function; the rest round-robin.
      const std::size_t fn =
          (i == 0) ? blob.function_offsets.size() - 1
                   : (i - 1) % blob.function_offsets.size();
      sym.rva = text_rva + blob.function_offsets[fn];
      symbols.push_back(std::move(sym));
    }
    builder.add_export_section(std::move(symbols));
  }
  builder.add_resource_section(version);
  builder.add_reloc_section();
  return builder.build();
}

GoldenImages::GoldenImages(const std::vector<DriverSpec>& catalog) {
  for (const auto& spec : catalog) {
    files_.emplace(spec.name, build_driver_image(spec));
  }
}

const Bytes& GoldenImages::file(const std::string& name) const {
  const auto it = files_.find(name);
  if (it == files_.end()) {
    throw NotFoundError("no golden image named " + name);
  }
  return it->second;
}

}  // namespace mc::cloud
