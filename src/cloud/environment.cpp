#include "cloud/environment.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

namespace mc::cloud {

CloudEnvironment::CloudEnvironment(CloudConfig config)
    : config_(std::move(config)),
      hypervisor_(config_.hardware),
      golden_(config_.catalog) {
  guests_.reserve(config_.guest_count);
  for (std::size_t i = 0; i < config_.guest_count; ++i) {
    const std::string name = "Dom" + std::to_string(i + 1);
    const vmm::DomainId id =
        hypervisor_.create_domain(name, config_.guest_memory);
    guests_.push_back(id);

    guestos::GuestConfig gc;
    gc.seed = config_.base_seed * 1000003ull + i;
    const auto profile_it = config_.guest_profiles.find(i);
    if (profile_it != config_.guest_profiles.end()) {
      gc.profile = profile_it->second;
    }

    GuestRuntime rt;
    rt.kernel = std::make_unique<guestos::GuestKernel>(hypervisor_.domain(id),
                                                       gc);
    rt.loader = std::make_unique<guestos::ModuleLoader>(*rt.kernel);
    auto& disk = disks_[id];
    for (const auto& module_name : config_.load_order) {
      disk.emplace(module_name, golden_.file(module_name));
      rt.loader->load(module_name, golden_.file(module_name));
    }
    runtimes_.emplace(id, std::move(rt));
  }
  log_info("cloud environment up: %zu guests, %zu modules each",
           guests_.size(), config_.load_order.size());
}

guestos::GuestKernel& CloudEnvironment::kernel(vmm::DomainId id) {
  const auto it = runtimes_.find(id);
  if (it == runtimes_.end()) {
    throw NotFoundError("no guest runtime for domain " + std::to_string(id));
  }
  return *it->second.kernel;
}

const guestos::GuestKernel& CloudEnvironment::kernel(vmm::DomainId id) const {
  const auto it = runtimes_.find(id);
  if (it == runtimes_.end()) {
    throw NotFoundError("no guest runtime for domain " + std::to_string(id));
  }
  return *it->second.kernel;
}

guestos::ModuleLoader& CloudEnvironment::loader(vmm::DomainId id) {
  const auto it = runtimes_.find(id);
  if (it == runtimes_.end()) {
    throw NotFoundError("no guest runtime for domain " + std::to_string(id));
  }
  return *it->second.loader;
}

const guestos::ModuleLoader& CloudEnvironment::loader(vmm::DomainId id) const {
  const auto it = runtimes_.find(id);
  if (it == runtimes_.end()) {
    throw NotFoundError("no guest runtime for domain " + std::to_string(id));
  }
  return *it->second.loader;
}

void CloudEnvironment::snapshot_all() {
  snapshots_.clear();
  for (const vmm::DomainId id : guests_) {
    snapshots_.emplace(id, hypervisor_.snapshot(id));
  }
  disk_snapshots_ = disks_;
}

void CloudEnvironment::revert(vmm::DomainId id) {
  const auto it = snapshots_.find(id);
  if (it == snapshots_.end()) {
    throw NotFoundError("no clean snapshot for domain " + std::to_string(id));
  }
  hypervisor_.restore(it->second);
  const auto disk_it = disk_snapshots_.find(id);
  if (disk_it != disk_snapshots_.end()) {
    disks_[id] = disk_it->second;
  }
}

const Bytes& CloudEnvironment::disk_file(vmm::DomainId id,
                                         const std::string& name) const {
  const auto vm_it = disks_.find(id);
  if (vm_it == disks_.end()) {
    throw NotFoundError("no disk for domain " + std::to_string(id));
  }
  const auto it = vm_it->second.find(name);
  if (it == vm_it->second.end()) {
    throw NotFoundError("file not on Dom" + std::to_string(id) +
                        " disk: " + name);
  }
  return it->second;
}

bool CloudEnvironment::disk_has(vmm::DomainId id,
                                const std::string& name) const {
  const auto vm_it = disks_.find(id);
  return vm_it != disks_.end() && vm_it->second.count(name) != 0;
}

void CloudEnvironment::write_disk_file(vmm::DomainId id,
                                       const std::string& name, Bytes data) {
  disks_[id][name] = std::move(data);
}

void CloudEnvironment::set_busy_guests(std::size_t count) {
  MC_CHECK(count <= guests_.size(), "more busy guests than guests");
  for (std::size_t i = 0; i < guests_.size(); ++i) {
    hypervisor_.domain(guests_[i]).set_load_level(i < count ? 1.0 : 0.0);
  }
}

}  // namespace mc::cloud
