// The cloud environment: one hypervisor, N identical guests.
//
// Reproduces the paper's testbed (§V-A): a privileged VM (implicit — the
// host process) plus up to 15 DomU guests, each "booted" from the same
// golden driver set.  Per-guest seeds randomize module load bases, so every
// guest holds the same modules at different addresses — Fig. 4's setting.
// Snapshots allow the clean-state revert workflow of §III.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cloud/golden.hpp"
#include "guestos/kernel.hpp"
#include "guestos/module_loader.hpp"
#include "vmm/hypervisor.hpp"

namespace mc::cloud {

struct CloudConfig {
  std::size_t guest_count = 15;
  std::uint64_t base_seed = 42;
  std::uint64_t guest_memory = 64ull << 20;  // enough for kernel + drivers
  vmm::HardwareConfig hardware{};
  std::vector<DriverSpec> catalog = default_catalog();
  std::vector<std::string> load_order = default_load_order();
  /// Optional per-guest OS profile (keyed by guest index 0..count-1);
  /// unlisted guests run the XP SP2 default.  Mixed clouds model staged OS
  /// upgrades — ModChecker pools must then be grouped by version (see
  /// core::group_by_guest_version).
  std::map<std::size_t, const guestos::GuestProfile*> guest_profiles;
};

class CloudEnvironment {
 public:
  explicit CloudEnvironment(CloudConfig config = {});

  vmm::Hypervisor& hypervisor() { return hypervisor_; }
  const vmm::Hypervisor& hypervisor() const { return hypervisor_; }

  const CloudConfig& config() const { return config_; }
  const GoldenImages& golden() const { return golden_; }

  /// Domain ids of all guests, in creation order (Dom1..DomN).
  const std::vector<vmm::DomainId>& guests() const { return guests_; }

  guestos::GuestKernel& kernel(vmm::DomainId id);
  const guestos::GuestKernel& kernel(vmm::DomainId id) const;
  guestos::ModuleLoader& loader(vmm::DomainId id);
  const guestos::ModuleLoader& loader(vmm::DomainId id) const;

  /// Takes clean snapshots of every guest (call right after construction).
  void snapshot_all();

  /// Reverts one guest to its clean snapshot (the paper's §III remediation
  /// path).  Throws if snapshot_all() was never called.
  void revert(vmm::DomainId id);

  /// Marks `count` guests as fully busy (HeavyLoad) starting from Dom1.
  void set_busy_guests(std::size_t count);

  // ---- per-VM virtual disk ---------------------------------------------------
  // Each guest keeps its module files on its own disk (initialized from the
  // golden set).  Disk-first infections rewrite these; the SVV-style and
  // hash-dictionary baselines read them.
  const Bytes& disk_file(vmm::DomainId id, const std::string& name) const;
  bool disk_has(vmm::DomainId id, const std::string& name) const;
  void write_disk_file(vmm::DomainId id, const std::string& name, Bytes data);

 private:
  struct GuestRuntime {
    std::unique_ptr<guestos::GuestKernel> kernel;
    std::unique_ptr<guestos::ModuleLoader> loader;
  };

  CloudConfig config_;
  vmm::Hypervisor hypervisor_;
  GoldenImages golden_;
  std::vector<vmm::DomainId> guests_;
  std::map<vmm::DomainId, GuestRuntime> runtimes_;
  std::map<vmm::DomainId, vmm::DomainSnapshot> snapshots_;
  std::map<vmm::DomainId, std::map<std::string, Bytes>> disks_;
  std::map<vmm::DomainId, std::map<std::string, Bytes>> disk_snapshots_;
};

}  // namespace mc::cloud
