// Golden image factory.
//
// Builds the on-disk PE file for each catalog driver.  "Golden" because all
// guests are instantiated from the same files — the paper's "15 VM clones
// ... from a single 32 bit Window XP (SP2) installation to make sure that
// all VMs are identical" (§V-A).  Only the load *bases* differ per VM.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cloud/catalog.hpp"
#include "util/bytes.hpp"

namespace mc::cloud {

/// Builds one driver image from its spec (deterministic: same spec, same
/// bytes).
Bytes build_driver_image(const DriverSpec& spec);

/// A named, immutable set of golden files.
class GoldenImages {
 public:
  explicit GoldenImages(const std::vector<DriverSpec>& catalog);

  const Bytes& file(const std::string& name) const;
  bool has(const std::string& name) const { return files_.count(name) != 0; }
  const std::map<std::string, Bytes>& all() const { return files_; }

 private:
  std::map<std::string, Bytes> files_;
};

}  // namespace mc::cloud
