// Driver catalog — the module population of the simulated XP SP2 guests.
//
// Mirrors the paper's testbed modules: hal.dll (experiments E1/E2),
// http.sys (the runtime-performance module of Figs. 7-8), ntfs.sys (the
// Rustock.B example), the "Hello World" dummy driver (E3/E4) and the
// inject.dll payload DLL (E4), plus the kernel image and a couple of
// network drivers so the loader list has realistic depth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pe/imports.hpp"
#include "pe/resources.hpp"

namespace mc::cloud {

struct DriverSpec {
  std::string name;          // "hal.dll"
  bool is_dll = false;
  std::uint32_t image_base = 0x00010000;
  std::uint64_t seed = 1;    // drives this driver's synthetic code shape

  // Code shape.
  std::uint32_t functions = 16;
  std::uint32_t ops_per_function = 60;
  double address_op_fraction = 0.20;

  // Data sections.
  std::uint32_t data_bytes = 0x1800;   // .data (writable, not hashed)
  std::uint32_t rdata_bytes = 0x0800;  // .rdata (read-only, hashed)

  /// Function names exported by name; mapped onto generated functions
  /// round-robin.  The first export lands on the entry function.
  std::vector<std::string> exports;

  /// Imports resolved against earlier catalog entries at load time.
  std::vector<pe::ImportDll> imports;

  /// Version resource (all catalog drivers carry one, like real drivers).
  pe::VersionInfo version{};
};

/// The default catalog in load order (imports only reference earlier
/// entries, like a real boot).
std::vector<DriverSpec> default_catalog();

/// Load order for guests (excludes inject.dll, which is an attack payload,
/// not a boot-time module).
std::vector<std::string> default_load_order();

}  // namespace mc::cloud
