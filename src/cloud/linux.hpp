// Linux-guest cloud environment: one hypervisor, N identical Linux VMs.
//
// The ELF counterpart of environment.hpp's Windows testbed: every guest
// boots the linux26 profile and insmods the same golden .ko set; per-guest
// seeds randomize module bases, so identical modules differ only in their
// loader-patched absolute addresses — the divergence the ELF64 fixup
// policy normalizes.  Used by the cross-format tests and the mixed-fleet
// scenario (one FleetService scanning a Windows pool and a Linux pool).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "guestos/kernel.hpp"
#include "guestos/ko_loader.hpp"
#include "vmm/hypervisor.hpp"

namespace mc::cloud {

/// Shape of one synthetic kernel module (.ko).  Deterministic: same spec,
/// same bytes.
struct KoSpec {
  std::string name;        // "nf_conntrack.ko"
  std::uint64_t seed = 1;  // drives the synthetic section contents

  std::uint32_t text_bytes = 0x1200;
  std::uint32_t rodata_bytes = 0x0400;
  std::uint32_t data_bytes = 0x0300;  // writable — excluded from checking

  /// Absolute-address slots the loader patches into .text.
  std::uint32_t abs64_fixups = 12;  // R_X86_64_64
  std::uint32_t abs32s_fixups = 6;  // R_X86_64_32S
  /// PC-relative slots (R_X86_64_PC32, call/jmp rel32 style).  The base
  /// cancels out of S + A - P, so these stay byte-identical across load
  /// bases and need no normalization pass.
  std::uint32_t pc32_fixups = 4;
};

/// The default module population, in load order.
std::vector<KoSpec> default_ko_catalog();
std::vector<std::string> default_ko_load_order();

/// Builds one golden .ko image from its spec (mapped layout; see
/// elf::KoBuilder).
Bytes build_ko_image(const KoSpec& spec);

struct LinuxCloudConfig {
  std::size_t guest_count = 15;
  std::uint64_t base_seed = 43;
  std::uint64_t guest_memory = 64ull << 20;
  vmm::HardwareConfig hardware{};
  std::vector<KoSpec> catalog = default_ko_catalog();
  std::vector<std::string> load_order = default_ko_load_order();
};

class LinuxEnvironment {
 public:
  explicit LinuxEnvironment(LinuxCloudConfig config = {});

  vmm::Hypervisor& hypervisor() { return hypervisor_; }
  const vmm::Hypervisor& hypervisor() const { return hypervisor_; }

  const LinuxCloudConfig& config() const { return config_; }

  /// Golden .ko file for a catalog module.
  const Bytes& golden_file(const std::string& name) const;

  /// Domain ids of all guests, in creation order (Dom1..DomN).
  const std::vector<vmm::DomainId>& guests() const { return guests_; }

  guestos::GuestKernel& kernel(vmm::DomainId id);
  const guestos::GuestKernel& kernel(vmm::DomainId id) const;
  guestos::KoLoader& loader(vmm::DomainId id);
  const guestos::KoLoader& loader(vmm::DomainId id) const;

 private:
  struct GuestRuntime {
    std::unique_ptr<guestos::GuestKernel> kernel;
    std::unique_ptr<guestos::KoLoader> loader;
  };

  LinuxCloudConfig config_;
  vmm::Hypervisor hypervisor_;
  std::map<std::string, Bytes> golden_;
  std::vector<vmm::DomainId> guests_;
  std::map<vmm::DomainId, GuestRuntime> runtimes_;
};

}  // namespace mc::cloud
