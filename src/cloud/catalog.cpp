#include "cloud/catalog.hpp"

namespace mc::cloud {

namespace {

DriverSpec ntoskrnl() {
  DriverSpec s;
  s.name = "ntoskrnl.exe";
  s.seed = 101;
  s.image_base = 0x00400000;
  s.functions = 48;
  s.ops_per_function = 120;
  s.data_bytes = 0x4000;
  s.rdata_bytes = 0x2000;
  s.exports = {
      "KeInitializeSpinLock", "KeAcquireSpinLock", "KeReleaseSpinLock",
      "ExAllocatePoolWithTag", "ExFreePoolWithTag", "MmMapIoSpace",
      "MmUnmapIoSpace",        "IoCreateDevice",    "IoDeleteDevice",
      "IofCompleteRequest",    "ObReferenceObject", "ObDereferenceObject",
      "RtlInitUnicodeString",  "ZwClose",           "PsCreateSystemThread",
      "KeBugCheckEx",
  };
  return s;
}

DriverSpec hal() {
  DriverSpec s;
  s.name = "hal.dll";
  s.is_dll = true;
  s.seed = 102;
  s.image_base = 0x00010000;
  s.functions = 24;
  s.ops_per_function = 90;
  s.exports = {
      "HalInitSystem",          "HalQueryRealTimeClock",
      "HalMakeBeep",            "HalGetInterruptVector",
      "HalTranslateBusAddress", "HalSetTimeIncrement",
      "KfAcquireSpinLock",      "KfReleaseSpinLock",
  };
  s.imports = {{"ntoskrnl.exe",
                {"KeBugCheckEx", "ExAllocatePoolWithTag", "ObReferenceObject"}}};
  return s;
}

DriverSpec ndis() {
  DriverSpec s;
  s.name = "ndis.sys";
  s.seed = 103;
  s.functions = 28;
  s.ops_per_function = 80;
  s.exports = {"NdisAllocatePacket", "NdisFreePacket", "NdisMSendComplete",
               "NdisOpenAdapter"};
  s.imports = {
      {"ntoskrnl.exe", {"ExAllocatePoolWithTag", "ExFreePoolWithTag",
                        "KeInitializeSpinLock"}},
      {"hal.dll", {"KfAcquireSpinLock", "KfReleaseSpinLock"}},
  };
  return s;
}

DriverSpec tcpip() {
  DriverSpec s;
  s.name = "tcpip.sys";
  s.seed = 104;
  s.functions = 36;
  s.ops_per_function = 90;
  s.exports = {"TdiDispatchRequest", "IPRegisterProtocol"};
  s.imports = {
      {"ntoskrnl.exe", {"IoCreateDevice", "IofCompleteRequest", "ZwClose"}},
      {"ndis.sys", {"NdisAllocatePacket", "NdisFreePacket"}},
  };
  return s;
}

DriverSpec http() {
  // The module used in the paper's runtime measurements — kept the largest
  // so Module-Searcher's page-by-page copy dominates visibly.
  DriverSpec s;
  s.name = "http.sys";
  s.seed = 105;
  s.functions = 72;
  s.ops_per_function = 140;
  s.data_bytes = 0x3000;
  s.rdata_bytes = 0x1800;
  s.imports = {
      {"ntoskrnl.exe", {"ExAllocatePoolWithTag", "IoCreateDevice",
                        "PsCreateSystemThread", "RtlInitUnicodeString"}},
      {"tcpip.sys", {"TdiDispatchRequest"}},
  };
  return s;
}

DriverSpec ntfs() {
  DriverSpec s;
  s.name = "ntfs.sys";
  s.seed = 106;
  s.functions = 40;
  s.ops_per_function = 100;
  s.imports = {
      {"ntoskrnl.exe", {"ExAllocatePoolWithTag", "IoCreateDevice",
                        "ObDereferenceObject"}},
      {"hal.dll", {"HalQueryRealTimeClock"}},
  };
  return s;
}

DriverSpec dummy() {
  // The "Hello World" driver of experiments E3/E4.
  DriverSpec s;
  s.name = "dummy.sys";
  s.seed = 107;
  s.functions = 3;
  s.ops_per_function = 24;
  s.data_bytes = 0x400;
  s.rdata_bytes = 0x200;
  s.imports = {{"hal.dll", {"HalMakeBeep"}}};
  return s;
}

DriverSpec inject_dll() {
  // The E4 payload: a DLL exporting callMessageBox(), attached to
  // dummy.sys by the DLL-hooking attack.
  DriverSpec s;
  s.name = "inject.dll";
  s.is_dll = true;
  s.seed = 108;
  s.functions = 2;
  s.ops_per_function = 16;
  s.data_bytes = 0x200;
  s.rdata_bytes = 0x100;
  s.exports = {"callMessageBox"};
  return s;
}

}  // namespace

std::vector<DriverSpec> default_catalog() {
  return {ntoskrnl(), hal(), ndis(), tcpip(), http(), ntfs(), dummy(),
          inject_dll()};
}

std::vector<std::string> default_load_order() {
  return {"ntoskrnl.exe", "hal.dll", "ndis.sys", "tcpip.sys",
          "http.sys",     "ntfs.sys", "dummy.sys"};
}

}  // namespace mc::cloud
