// Instruction-length decoder for the emitted x86 subset.
//
// The inline-hooking attack (paper §V-B.2, Fig. 5) must displace *whole*
// instructions when it overwrites a function's first bytes with a 5-byte
// jmp — exactly what real hook engines do with a length disassembler.
// This decoder covers the subset mc::x86::Assembler emits plus the 0x00
// cave filler.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/bytes.hpp"

namespace mc::x86 {

/// Decoded length of the instruction at code[offset], or nullopt if the
/// byte sequence is outside the supported subset.
std::optional<std::uint32_t> instruction_length(ByteView code,
                                                std::size_t offset);

/// Walks instructions from `offset` until at least `min_bytes` are covered.
/// Returns the covered byte count, or nullopt if decoding fails first.
std::optional<std::uint32_t> cover_instructions(ByteView code,
                                                std::size_t offset,
                                                std::uint32_t min_bytes);

/// A run of 0x00 bytes usable as a payload cave.
struct Cave {
  std::uint32_t offset;
  std::uint32_t length;
};

/// Finds all caves of at least `min_length` zero bytes.
std::vector<Cave> find_caves(ByteView code, std::uint32_t min_length);

}  // namespace mc::x86
