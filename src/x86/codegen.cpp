#include "x86/codegen.hpp"

#include "util/error.hpp"
#include "util/rng.hpp"
#include "x86/assembler.hpp"

namespace mc::x86 {

CodeBlob generate_driver_text(const CodeGenParams& params,
                              std::uint32_t image_base) {
  MC_CHECK(params.function_count >= 1, "need at least one function");
  MC_CHECK(params.data_size >= 8, "data region too small");

  Xoshiro256 rng(params.seed);
  Assembler as;
  CodeBlob blob;

  auto random_data_va = [&] {
    const std::uint32_t off =
        static_cast<std::uint32_t>(rng.below(params.data_size / 4)) * 4;
    return image_base + params.data_rva + off;
  };

  for (std::uint32_t f = 0; f < params.function_count; ++f) {
    blob.function_offsets.push_back(as.size());

    as.push_ebp();
    as.mov_ebp_esp();

    // Guarantee the E1 target pattern appears early in every function:
    // a counter decrement (DEC ECX, opcode 0x49).
    as.mov_reg_imm32(Reg::kEcx, static_cast<std::uint32_t>(rng.range(4, 64)));
    as.dec_ecx();

    for (std::uint32_t op = 0; op < params.ops_per_function; ++op) {
      if (rng.unit() < params.address_op_fraction) {
        // Address-bearing op.
        switch (rng.below(4)) {
          case 0:
            as.mov_eax_abs(random_data_va());
            break;
          case 1:
            as.mov_abs_eax(random_data_va());
            break;
          case 2:
            as.push_addr(random_data_va());
            break;
          default:
            if (!params.iat_slot_rvas.empty()) {
              const auto slot =
                  params.iat_slot_rvas[rng.below(params.iat_slot_rvas.size())];
              as.call_indirect_abs(image_base + slot);
            } else {
              as.mov_reg_addr(Reg::kEdx, random_data_va());
            }
            break;
        }
        continue;
      }
      // Position-independent op.
      switch (rng.below(11)) {
        case 0:
          as.nop();
          break;
        case 1:
          as.inc_eax();
          break;
        case 2:
          as.dec_ecx();
          break;
        case 3:
          as.xor_eax_eax();
          break;
        case 4:
          as.add_eax_imm32(static_cast<std::uint32_t>(rng.next()));
          break;
        case 5:
          // cmp/jz over a single nop — a tiny, always-well-formed branch.
          as.cmp_eax_imm32(static_cast<std::uint32_t>(rng.next()));
          as.jz_rel8(1);
          as.nop();
          break;
        case 6:
          as.sub_ecx_imm8(static_cast<std::uint8_t>(rng.range(1, 7)));
          break;
        case 7: {
          // Balanced save/restore of a scratch register.
          const auto reg = static_cast<Reg>(rng.below(4));  // eax..ebx
          as.push_reg(reg);
          as.pop_reg(reg);
          break;
        }
        case 8:
          // test/jnz over a nop — the classic NULL-check shape.
          as.test_eax_eax();
          as.jnz_rel8(1);
          as.nop();
          break;
        case 9:
          as.or_eax_imm32(static_cast<std::uint32_t>(rng.next()));
          as.and_eax_imm32(static_cast<std::uint32_t>(rng.next()));
          break;
        default:
          // Call an already-emitted function (backward call keeps the
          // single-pass layout correct).
          if (f > 0) {
            const auto target = blob.function_offsets[rng.below(f)];
            as.call_to(target);
          } else {
            as.nop();
          }
          break;
      }
    }

    as.pop_ebp();
    as.ret();

    // Inter-function opcode cave (00 bytes) — the payload real estate the
    // inline-hooking experiment uses.
    const auto cave_len = static_cast<std::uint32_t>(
        rng.range(params.cave_min, params.cave_max));
    as.cave(cave_len);
  }

  // Entry function: the last one emitted; it can (and does) call earlier
  // functions, so give it a couple of extra direct calls for realism.
  blob.entry_offset = blob.function_offsets.back();

  blob.fixups = as.fixups();
  blob.code = as.take_code();
  return blob;
}

}  // namespace mc::x86
