// Tiny x86-32 assembler.
//
// Emits the instruction subset needed to synthesize realistic kernel-module
// .text sections: position-independent ALU/flow ops plus *address-bearing*
// instructions (absolute moffs loads/stores, mov reg,imm32 with an address
// operand, indirect calls through IAT slots).  Every absolute address
// operand is recorded as a fixup so the PE builder can emit real base
// relocations — the divergence mechanism ModChecker's Algorithm 2 undoes.
//
// The encodings are genuine IA-32 (e.g. DEC ECX = 0x49, SUB ECX,imm8 =
// 0x83 0xE9 ib — the exact pair used in the paper's single-opcode-
// replacement experiment E1).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace mc::x86 {

enum class Reg : std::uint8_t {
  kEax = 0,
  kEcx = 1,
  kEdx = 2,
  kEbx = 3,
  kEsp = 4,
  kEbp = 5,
  kEsi = 6,
  kEdi = 7,
};

class Assembler {
 public:
  const Bytes& code() const { return code_; }
  Bytes take_code() { return std::move(code_); }
  /// Offsets (within the emitted code) of 32-bit absolute-address operands.
  const std::vector<std::uint32_t>& fixups() const { return fixups_; }

  std::uint32_t size() const { return static_cast<std::uint32_t>(code_.size()); }

  // ---- position-independent instructions -----------------------------------
  void nop();                          // 90
  void ret();                          // C3
  void int3();                         // CC
  void push_ebp();                     // 55
  void pop_ebp();                      // 5D
  void mov_ebp_esp();                  // 89 E5
  void inc_eax();                      // 40
  void dec_ecx();                      // 49
  void xor_eax_eax();                  // 31 C0
  void test_eax_eax();                 // 85 C0
  void push_reg(Reg reg);              // 50+r
  void pop_reg(Reg reg);               // 58+r
  void sub_ecx_imm8(std::uint8_t imm); // 83 E9 ib
  void add_eax_imm32(std::uint32_t v); // 05 id
  void or_eax_imm32(std::uint32_t v);  // 0D id
  void and_eax_imm32(std::uint32_t v); // 25 id
  void cmp_eax_imm32(std::uint32_t v); // 3D id
  void mov_reg_imm32(Reg reg, std::uint32_t value);  // B8+r id (plain value)
  void push_imm32(std::uint32_t value);              // 68 id (plain value)
  void jz_rel8(std::int8_t rel);       // 74 cb
  void jnz_rel8(std::int8_t rel);      // 75 cb
  void jmp_rel8(std::int8_t rel);      // EB cb
  void call_rel32(std::int32_t rel);   // E8 cd
  void jmp_rel32(std::int32_t rel);    // E9 cd

  /// call/jmp with the relative displacement computed so control reaches
  /// `target_offset` (an offset within this same code blob).
  void call_to(std::uint32_t target_offset);
  void jmp_to(std::uint32_t target_offset);

  // ---- address-bearing instructions (recorded as fixups) --------------------
  void mov_eax_abs(std::uint32_t va);      // A1 moffs32   (load)
  void mov_abs_eax(std::uint32_t va);      // A3 moffs32   (store)
  void mov_reg_addr(Reg reg, std::uint32_t va);  // B8+r with VA operand
  void push_addr(std::uint32_t va);        // 68 with VA operand
  void call_indirect_abs(std::uint32_t va);  // FF 15 moffs32 (call [IAT slot])

  /// Emits `count` zero bytes — an "opcode cave" in the paper's terminology
  /// (§V-B.2: "non-executable code segments, known as opcode caves, such as
  /// 00 instructions").
  void cave(std::uint32_t count);

  /// Raw escape hatch for attack payload construction.
  void raw(ByteView bytes);

 private:
  void emit(std::uint8_t byte) { code_.push_back(byte); }
  void emit_le32(std::uint32_t v) { append_le32(code_, v); }
  void emit_addr32(std::uint32_t va) {
    fixups_.push_back(size());
    emit_le32(va);
  }

  Bytes code_;
  std::vector<std::uint32_t> fixups_;
};

}  // namespace mc::x86
