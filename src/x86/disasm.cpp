#include "x86/disasm.hpp"

#include <cstdio>

#include "util/error.hpp"
#include "x86/decoder.hpp"

namespace mc::x86 {

namespace {

const char* reg_name(std::uint8_t reg) {
  static constexpr const char* kNames[] = {"eax", "ecx", "edx", "ebx",
                                           "esp", "ebp", "esi", "edi"};
  return kNames[reg & 7];
}

std::string hex_u32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%x", v);
  return buf;
}

std::string imm_at(ByteView code, std::size_t off) {
  return hex_u32(load_le32(code, off));
}

}  // namespace

std::optional<DecodedInstruction> disassemble_one(ByteView code,
                                                  std::size_t offset) {
  const auto len = instruction_length(code, offset);
  if (!len) {
    return std::nullopt;
  }
  MC_CHECK(offset + *len <= code.size(),
           "instruction_length overran the code buffer");
  DecodedInstruction out;
  out.offset = static_cast<std::uint32_t>(offset);
  out.length = *len;

  const std::uint8_t op = code[offset];
  switch (op) {
    case 0x90:
      out.text = "nop";
      break;
    case 0xC3:
      out.text = "ret";
      break;
    case 0xCC:
      out.text = "int3";
      break;
    case 0x55:
      out.text = "push ebp";
      break;
    case 0x5D:
      out.text = "pop ebp";
      break;
    case 0x40:
      out.text = "inc eax";
      break;
    case 0x49:
      out.text = "dec ecx";
      break;
    case 0x89:
      out.text = "mov ebp, esp";
      break;
    case 0x31:
      out.text = "xor eax, eax";
      break;
    case 0x85:
      out.text = "test eax, eax";
      break;
    case 0x83:
      out.text = "sub ecx, " + hex_u32(code[offset + 2]);
      break;
    case 0x05:
      out.text = "add eax, " + imm_at(code, offset + 1);
      break;
    case 0x0D:
      out.text = "or eax, " + imm_at(code, offset + 1);
      break;
    case 0x25:
      out.text = "and eax, " + imm_at(code, offset + 1);
      break;
    case 0x3D:
      out.text = "cmp eax, " + imm_at(code, offset + 1);
      break;
    case 0x68:
      out.text = "push " + imm_at(code, offset + 1);
      break;
    case 0xA1:
      out.text = "mov eax, [" + imm_at(code, offset + 1) + "]";
      break;
    case 0xA3:
      out.text = "mov [" + imm_at(code, offset + 1) + "], eax";
      break;
    case 0xE8: {
      const auto rel = static_cast<std::int32_t>(load_le32(code, offset + 1));
      out.text = "call " + hex_u32(static_cast<std::uint32_t>(
                               static_cast<std::int64_t>(offset) + 5 + rel));
      break;
    }
    case 0xE9: {
      const auto rel = static_cast<std::int32_t>(load_le32(code, offset + 1));
      out.text = "jmp " + hex_u32(static_cast<std::uint32_t>(
                              static_cast<std::int64_t>(offset) + 5 + rel));
      break;
    }
    case 0x74: {
      const auto rel = static_cast<std::int8_t>(code[offset + 1]);
      out.text = "jz " + hex_u32(static_cast<std::uint32_t>(
                             static_cast<std::int64_t>(offset) + 2 + rel));
      break;
    }
    case 0x75: {
      const auto rel = static_cast<std::int8_t>(code[offset + 1]);
      out.text = "jnz " + hex_u32(static_cast<std::uint32_t>(
                              static_cast<std::int64_t>(offset) + 2 + rel));
      break;
    }
    case 0xEB: {
      const auto rel = static_cast<std::int8_t>(code[offset + 1]);
      out.text = "jmp short " +
                 hex_u32(static_cast<std::uint32_t>(
                     static_cast<std::int64_t>(offset) + 2 + rel));
      break;
    }
    case 0xFF:
      out.text = "call [" + imm_at(code, offset + 2) + "]";
      break;
    case 0x00:
      out.text = "add [eax], al";  // cave filler decodes as this
      break;
    default:
      if (op >= 0xB8 && op <= 0xBF) {
        out.text = std::string("mov ") + reg_name(op - 0xB8) + ", " +
                   imm_at(code, offset + 1);
      } else if (op >= 0x50 && op <= 0x57) {
        out.text = std::string("push ") + reg_name(op - 0x50);
      } else if (op >= 0x58 && op <= 0x5F) {
        out.text = std::string("pop ") + reg_name(op - 0x58);
      } else {
        return std::nullopt;
      }
  }
  return out;
}

std::vector<DecodedInstruction> disassemble(ByteView code, std::size_t offset,
                                            std::size_t max_instructions) {
  std::vector<DecodedInstruction> out;
  while (out.size() < max_instructions && offset < code.size()) {
    auto insn = disassemble_one(code, offset);
    if (!insn) {
      DecodedInstruction raw;
      raw.offset = static_cast<std::uint32_t>(offset);
      raw.length = 1;
      char buf[16];
      std::snprintf(buf, sizeof buf, "db 0x%02x", code[offset]);
      raw.text = buf;
      out.push_back(raw);
      ++offset;
      continue;
    }
    offset += insn->length;
    out.push_back(std::move(*insn));
  }
  return out;
}

std::string format_listing(ByteView code, std::size_t offset,
                           std::size_t max_instructions,
                           std::uint32_t display_base) {
  std::string out;
  for (const auto& insn : disassemble(code, offset, max_instructions)) {
    MC_CHECK(std::size_t{insn.offset} + insn.length <= code.size(),
             "decoded instruction out of range");
    char head[32];
    std::snprintf(head, sizeof head, "%08x  ", display_base + insn.offset);
    out += head;
    std::string bytes;
    for (std::uint32_t i = 0; i < insn.length; ++i) {
      char b[4];
      std::snprintf(b, sizeof b, "%02x ", code[insn.offset + i]);
      bytes += b;
    }
    bytes.resize(22, ' ');
    out += bytes + insn.text + "\n";
  }
  return out;
}

}  // namespace mc::x86
