// Mnemonic renderer for the emitted x86 subset.
//
// Turns code bytes into AT&T-free Intel-style text ("dec ecx",
// "mov eax, [0xf8cc2010]") for forensic reports: when ModChecker flags a
// .text divergence, the diff report shows the first differing instructions
// on both sides — the way an analyst would see OllyDbg's view in the
// paper's Fig. 5/6.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace mc::x86 {

struct DecodedInstruction {
  std::uint32_t offset = 0;
  std::uint32_t length = 0;
  std::string text;  // "dec ecx"
};

/// Decodes one instruction at `offset`; nullopt outside the subset.
std::optional<DecodedInstruction> disassemble_one(ByteView code,
                                                  std::size_t offset);

/// Decodes up to `max_instructions` starting at `offset`, stopping at the
/// first undecodable byte sequence (which is rendered as "db 0x??").
std::vector<DecodedInstruction> disassemble(ByteView code, std::size_t offset,
                                            std::size_t max_instructions);

/// Multi-line listing "offset: bytes  mnemonic".
std::string format_listing(ByteView code, std::size_t offset,
                           std::size_t max_instructions,
                           std::uint32_t display_base = 0);

}  // namespace mc::x86
