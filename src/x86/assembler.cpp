#include "x86/assembler.hpp"

#include "util/error.hpp"

namespace mc::x86 {

void Assembler::nop() { emit(0x90); }
void Assembler::ret() { emit(0xC3); }
void Assembler::int3() { emit(0xCC); }
void Assembler::push_ebp() { emit(0x55); }
void Assembler::pop_ebp() { emit(0x5D); }

void Assembler::mov_ebp_esp() {
  emit(0x89);
  emit(0xE5);
}

void Assembler::inc_eax() { emit(0x40); }
void Assembler::dec_ecx() { emit(0x49); }

void Assembler::xor_eax_eax() {
  emit(0x31);
  emit(0xC0);
}

void Assembler::test_eax_eax() {
  emit(0x85);
  emit(0xC0);
}

void Assembler::push_reg(Reg reg) {
  emit(static_cast<std::uint8_t>(0x50 + static_cast<std::uint8_t>(reg)));
}

void Assembler::pop_reg(Reg reg) {
  emit(static_cast<std::uint8_t>(0x58 + static_cast<std::uint8_t>(reg)));
}

void Assembler::or_eax_imm32(std::uint32_t v) {
  emit(0x0D);
  emit_le32(v);
}

void Assembler::and_eax_imm32(std::uint32_t v) {
  emit(0x25);
  emit_le32(v);
}

void Assembler::sub_ecx_imm8(std::uint8_t imm) {
  emit(0x83);
  emit(0xE9);
  emit(imm);
}

void Assembler::add_eax_imm32(std::uint32_t v) {
  emit(0x05);
  emit_le32(v);
}

void Assembler::cmp_eax_imm32(std::uint32_t v) {
  emit(0x3D);
  emit_le32(v);
}

void Assembler::mov_reg_imm32(Reg reg, std::uint32_t value) {
  emit(static_cast<std::uint8_t>(0xB8 + static_cast<std::uint8_t>(reg)));
  emit_le32(value);
}

void Assembler::push_imm32(std::uint32_t value) {
  emit(0x68);
  emit_le32(value);
}

void Assembler::jz_rel8(std::int8_t rel) {
  emit(0x74);
  emit(static_cast<std::uint8_t>(rel));
}

void Assembler::jnz_rel8(std::int8_t rel) {
  emit(0x75);
  emit(static_cast<std::uint8_t>(rel));
}

void Assembler::jmp_rel8(std::int8_t rel) {
  emit(0xEB);
  emit(static_cast<std::uint8_t>(rel));
}

void Assembler::call_rel32(std::int32_t rel) {
  emit(0xE8);
  emit_le32(static_cast<std::uint32_t>(rel));
}

void Assembler::jmp_rel32(std::int32_t rel) {
  emit(0xE9);
  emit_le32(static_cast<std::uint32_t>(rel));
}

void Assembler::call_to(std::uint32_t target_offset) {
  const std::int64_t rel =
      static_cast<std::int64_t>(target_offset) - (size() + 5);
  call_rel32(static_cast<std::int32_t>(rel));
}

void Assembler::jmp_to(std::uint32_t target_offset) {
  const std::int64_t rel =
      static_cast<std::int64_t>(target_offset) - (size() + 5);
  jmp_rel32(static_cast<std::int32_t>(rel));
}

void Assembler::mov_eax_abs(std::uint32_t va) {
  emit(0xA1);
  emit_addr32(va);
}

void Assembler::mov_abs_eax(std::uint32_t va) {
  emit(0xA3);
  emit_addr32(va);
}

void Assembler::mov_reg_addr(Reg reg, std::uint32_t va) {
  emit(static_cast<std::uint8_t>(0xB8 + static_cast<std::uint8_t>(reg)));
  emit_addr32(va);
}

void Assembler::push_addr(std::uint32_t va) {
  emit(0x68);
  emit_addr32(va);
}

void Assembler::call_indirect_abs(std::uint32_t va) {
  emit(0xFF);
  emit(0x15);
  // IAT slot address: relocated by the loader via the image's .reloc records
  // (the *contents* of the slot are separately bound at import resolution).
  emit_addr32(va);
}

void Assembler::cave(std::uint32_t count) {
  code_.insert(code_.end(), count, 0x00);
}

void Assembler::raw(ByteView bytes) {
  append_bytes(code_, bytes);
}

}  // namespace mc::x86
