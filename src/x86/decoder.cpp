#include "x86/decoder.hpp"

namespace mc::x86 {

std::optional<std::uint32_t> instruction_length(ByteView code,
                                                std::size_t offset) {
  if (offset >= code.size()) {
    return std::nullopt;
  }
  const std::uint8_t op = code[offset];
  const std::size_t left = code.size() - offset;

  auto need = [&](std::uint32_t n) -> std::optional<std::uint32_t> {
    return left >= n ? std::optional<std::uint32_t>(n) : std::nullopt;
  };

  switch (op) {
    case 0x90:  // nop
    case 0xC3:  // ret
    case 0xCC:  // int3
      return need(1);
    case 0x89:  // mov r/m32, r32 — we only emit 89 E5 (mov ebp, esp)
      if (left >= 2 && code[offset + 1] == 0xE5) {
        return 2;
      }
      return std::nullopt;
    case 0x31:  // xor r/m32, r32 — we only emit 31 C0
    case 0x85:  // test r/m32, r32 — we only emit 85 C0
      if (left >= 2 && code[offset + 1] == 0xC0) {
        return 2;
      }
      return std::nullopt;
    case 0x83:  // group-1 r/m32, imm8 — e.g. 83 E9 ib (sub ecx, imm8)
      return need(3);
    case 0x05:  // add eax, imm32
    case 0x0D:  // or eax, imm32
    case 0x25:  // and eax, imm32
    case 0x3D:  // cmp eax, imm32
    case 0x68:  // push imm32
    case 0xA1:  // mov eax, moffs32
    case 0xA3:  // mov moffs32, eax
    case 0xE8:  // call rel32
    case 0xE9:  // jmp rel32
      return need(5);
    case 0x74:  // jz rel8
    case 0x75:  // jnz rel8
    case 0xEB:  // jmp rel8
      return need(2);
    case 0xFF:  // we only emit FF 15 moffs32 (call [abs])
      if (left >= 6 && code[offset + 1] == 0x15) {
        return 6;
      }
      return std::nullopt;
    case 0x00:  // cave filler decodes as add [eax], al
      return need(2);
    default:
      if (op >= 0xB8 && op <= 0xBF) {  // mov r32, imm32
        return need(5);
      }
      if ((op >= 0x50 && op <= 0x5F) ||  // push/pop r32
          op == 0x40 || op == 0x49) {    // inc eax / dec ecx
        return need(1);
      }
      return std::nullopt;
  }
}

std::optional<std::uint32_t> cover_instructions(ByteView code,
                                                std::size_t offset,
                                                std::uint32_t min_bytes) {
  std::uint32_t covered = 0;
  while (covered < min_bytes) {
    const auto len = instruction_length(code, offset + covered);
    if (!len) {
      return std::nullopt;
    }
    covered += *len;
  }
  return covered;
}

std::vector<Cave> find_caves(ByteView code, std::uint32_t min_length) {
  std::vector<Cave> caves;
  std::size_t i = 0;
  while (i < code.size()) {
    if (code[i] != 0x00) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < code.size() && code[j] == 0x00) {
      ++j;
    }
    if (j - i >= min_length) {
      caves.push_back({static_cast<std::uint32_t>(i),
                       static_cast<std::uint32_t>(j - i)});
    }
    i = j;
  }
  return caves;
}

}  // namespace mc::x86
