// Synthetic kernel-module code generator.
//
// Produces the .text content of the simulated drivers (hal.dll, http.sys,
// the "Hello World" dummy driver...).  The generated code is real IA-32
// from the Assembler subset: function prologues/epilogues, ALU ops, short
// branches, cross-function calls, loads/stores through *absolute* data
// addresses, calls through IAT slots, and zero-byte opcode caves between
// functions — every ingredient the paper's four infection experiments rely
// on (a DEC ECX to replace, caves to hide payloads in, an entry function to
// hook, IAT slots to divert).
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace mc::x86 {

struct CodeGenParams {
  std::uint64_t seed = 1;
  std::uint32_t function_count = 8;
  std::uint32_t ops_per_function = 40;
  /// Probability that a body op references an absolute address (and thus
  /// needs a base relocation).  This is the "relocation density" knob used
  /// by the A3 ablation bench.
  double address_op_fraction = 0.20;
  /// Zero-byte cave emitted between functions: uniform in [min, max].
  std::uint32_t cave_min = 8;
  std::uint32_t cave_max = 24;
  /// Data region the address-bearing ops reference (RVA within the image).
  std::uint32_t data_rva = 0;
  std::uint32_t data_size = 0x1000;
  /// IAT slots (RVAs) available for indirect calls; may be empty.
  std::vector<std::uint32_t> iat_slot_rvas;
};

struct CodeBlob {
  Bytes code;
  /// Offsets within `code` holding absolute 32-bit addresses.
  std::vector<std::uint32_t> fixups;
  /// Entry function offset (the last function; it calls the others, like
  /// hal.dll's HalInitSystem entry in experiment E2).
  std::uint32_t entry_offset = 0;
  std::vector<std::uint32_t> function_offsets;
};

/// Generates a .text blob for an image whose preferred base is `image_base`
/// (absolute operands are encoded as image_base + RVA and recorded as
/// fixups; intra-text control flow is relative and needs no relocation).
CodeBlob generate_driver_text(const CodeGenParams& params,
                              std::uint32_t image_base);

}  // namespace mc::x86
