#include "attacks/stub_patch.hpp"

#include <algorithm>
#include <string_view>

#include "attacks/guest_writer.hpp"
#include "pe/structs.hpp"
#include "util/error.hpp"

namespace mc::attacks {

Bytes StubPatchAttack::infect_file(ByteView pe_file) {
  const pe::DosHeader dos = pe::DosHeader::parse(pe_file);
  Bytes file(pe_file.begin(), pe_file.end());

  // Search only within the DOS header + stub region [0, e_lfanew).
  constexpr std::string_view kNeedle = "DOS";
  constexpr std::string_view kPatch = "CHK";
  const auto begin = file.begin();
  const auto end = file.begin() + dos.e_lfanew;
  const auto it = std::search(begin, end, kNeedle.begin(), kNeedle.end());
  if (it == end) {
    throw NotFoundError("'DOS' not found in stub text");
  }
  std::copy(kPatch.begin(), kPatch.end(), it);
  return file;
}

AttackResult StubPatchAttack::apply(cloud::CloudEnvironment& env,
                                    vmm::DomainId vm,
                                    const std::string& module) const {
  const Bytes infected = infect_file(env.golden().file(module));
  reload_with_infected_file(env, vm, module, infected);

  AttackResult result;
  result.attack_name = name();
  result.description = "stub text of " + module +
                       " patched: \"DOS\" -> \"CHK\" (alignment preserved); "
                       "driver reloaded";
  result.expected_flagged = {"IMAGE_DOS_HEADER"};
  result.infects_disk_file = true;
  return result;
}

}  // namespace mc::attacks
