// Parameterized single-byte patch — the property-test workhorse.
//
// Flips one byte at a chosen RVA of a loaded module in guest memory.  The
// paper's thesis is that *any* change to a hashed item is detected; the
// property suite sweeps this attack across every item and offset class.
#pragma once

#include <cstdint>

#include "attacks/attack.hpp"

namespace mc::attacks {

class BytePatchAttack final : public Attack {
 public:
  /// Patches `rva` by XOR-ing `xor_mask` into the current byte.
  BytePatchAttack(std::uint32_t rva, std::uint8_t xor_mask = 0xFF)
      : rva_(rva), xor_mask_(xor_mask) {}

  std::string name() const override { return "single-byte-patch"; }

  AttackResult apply(cloud::CloudEnvironment& env, vmm::DomainId vm,
                     const std::string& module) const override;

 private:
  std::uint32_t rva_;
  std::uint8_t xor_mask_;
};

}  // namespace mc::attacks
