// E3 — trivial modification in the DOS stub program (paper §V-B.3, Fig. 6).
//
// Replaces exactly three characters of the "Hello World" dummy driver's
// stub text — "DOS" in "This program cannot be run in DOS mode" becomes
// "CHK" — without changing code alignment.  The modified driver is loaded
// (OSR Driver Loader in the paper).  Only the DOS-header item's hash
// should differ; all other items stay consistent.
#pragma once

#include "attacks/attack.hpp"

namespace mc::attacks {

class StubPatchAttack final : public Attack {
 public:
  std::string name() const override { return "dos-stub-modification"; }

  AttackResult apply(cloud::CloudEnvironment& env, vmm::DomainId vm,
                     const std::string& module) const override;

  /// The file-level mutation, exposed for unit tests.
  static Bytes infect_file(ByteView pe_file);
};

}  // namespace mc::attacks
