#include "attacks/hollowing.hpp"

#include <algorithm>

#include "attacks/guest_writer.hpp"
#include "pe/parser.hpp"
#include "util/error.hpp"

namespace mc::attacks {

AttackResult HollowingAttack::apply(cloud::CloudEnvironment& env,
                                    vmm::DomainId vm,
                                    const std::string& module) const {
  MC_CHECK(!guestos::module_name_equals(donor_, module),
           "donor and victim must differ");
  GuestMemoryWriter writer(env, vm);

  std::uint32_t victim_base = 0;
  const Bytes victim = writer.read_module_image(module, &victim_base);
  // Attacker's-eye parse of the victim image; mc-lint: allow(format-bypass)
  const pe::ParsedImage victim_parsed(victim);
  const pe::SectionHeader* victim_text = victim_parsed.find_section(".text");
  MC_CHECK(victim_text != nullptr, "victim has no .text");

  std::uint32_t donor_base = 0;
  const Bytes donor = writer.read_module_image(donor_, &donor_base);
  // Attacker's-eye parse of the donor image; mc-lint: allow(format-bypass)
  const pe::ParsedImage donor_parsed(donor);
  const pe::SectionHeader* donor_text = donor_parsed.find_section(".text");
  MC_CHECK(donor_text != nullptr, "donor has no .text");

  // Transplant: fill the victim's executable region with the donor's code
  // (repeated if the donor is smaller — what real hollowing pads with
  // sleds; sizes and headers stay untouched).
  Bytes payload(victim_text->VirtualSize);
  const ByteView donor_code =
      ByteView(donor).subspan(donor_text->VirtualAddress,
                              donor_text->VirtualSize);
  for (std::size_t off = 0; off < payload.size();
       off += donor_code.size()) {
    const std::size_t take =
        std::min(donor_code.size(), payload.size() - off);
    std::copy_n(donor_code.begin(), take,
                payload.begin() + static_cast<std::ptrdiff_t>(off));
  }
  writer.write(victim_base + victim_text->VirtualAddress, payload);

  AttackResult result;
  result.attack_name = name();
  result.description = ".text of " + module + " hollowed with code from " +
                       donor_ + " (headers and loader metadata untouched)";
  result.expected_flagged = {".text"};
  result.infects_disk_file = false;
  return result;
}

}  // namespace mc::attacks
