#include "attacks/dkom_hide.hpp"

#include "util/error.hpp"

namespace mc::attacks {

AttackResult DkomHideAttack::apply(cloud::CloudEnvironment& env,
                                   vmm::DomainId vm,
                                   const std::string& module) const {
  MC_CHECK(env.kernel(vm).unlink_module_entry(module),
           "module to hide is not in the loader list");

  AttackResult result;
  result.attack_name = name();
  result.description =
      module + " unlinked from PsLoadedModuleList (DKOM hiding)";
  // No hash mismatch — the discrepancy surfaces as a missing module.
  result.expected_flagged = {};
  result.detectable_by_modchecker = true;  // via missing_on, not hashes
  result.infects_disk_file = false;
  return result;
}

}  // namespace mc::attacks
