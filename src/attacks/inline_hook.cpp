#include "attacks/inline_hook.hpp"

#include "attacks/guest_writer.hpp"
#include "pe/parser.hpp"
#include "util/error.hpp"
#include "x86/assembler.hpp"
#include "x86/decoder.hpp"

namespace mc::attacks {

AttackResult InlineHookAttack::apply(cloud::CloudEnvironment& env,
                                     vmm::DomainId vm,
                                     const std::string& module) const {
  GuestMemoryWriter writer(env, vm);
  std::uint32_t base = 0;
  const Bytes image = writer.read_module_image(module, &base);
  // Attacker's-eye parse of the victim image; mc-lint: allow(format-bypass)
  const pe::ParsedImage parsed(image);

  const pe::SectionHeader* text = parsed.find_section(".text");
  MC_CHECK(text != nullptr, "module has no .text section");
  const ByteView text_data =
      ByteView(image).subspan(text->VirtualAddress, text->VirtualSize);

  // Entry function offset inside .text.
  const std::uint32_t entry_rva = parsed.optional_header().AddressOfEntryPoint;
  MC_CHECK(entry_rva >= text->VirtualAddress &&
               entry_rva < text->VirtualAddress + text->VirtualSize,
           "entry point outside .text");
  const std::uint32_t entry_off = entry_rva - text->VirtualAddress;

  // Displace whole instructions covering at least the 5-byte jmp.
  const auto covered = x86::cover_instructions(text_data, entry_off, 5);
  MC_CHECK(covered.has_value(), "cannot decode entry prologue");

  // Malicious stub: trivial position-independent payload (a real rootkit
  // would redirect arguments / filter results here).
  x86::Assembler payload;
  payload.xor_eax_eax();
  payload.inc_eax();
  payload.inc_eax();
  // Sanitation: replay the displaced original instructions.
  payload.raw(text_data.subspan(entry_off, *covered));
  const std::uint32_t payload_tail = payload.size();

  const std::uint32_t needed = payload_tail + 5;  // + jmp back

  // Find an opcode cave large enough, far enough from the entry that the
  // hook and payload do not overlap.
  const auto caves = x86::find_caves(text_data, needed);
  const x86::Cave* chosen = nullptr;
  for (const auto& cave : caves) {
    const bool overlaps = cave.offset < entry_off + *covered &&
                          entry_off < cave.offset + cave.length;
    if (!overlaps) {
      chosen = &cave;
      break;
    }
  }
  MC_CHECK(chosen != nullptr, "no opcode cave large enough for payload");

  // Back edge: from (cave + payload_tail) to (entry + covered).
  const std::int64_t back_rel =
      static_cast<std::int64_t>(entry_off + *covered) -
      (static_cast<std::int64_t>(chosen->offset) + payload_tail + 5);
  payload.jmp_rel32(static_cast<std::int32_t>(back_rel));

  // Hook: jmp from entry to cave, NOP-pad the displaced remainder.
  x86::Assembler hook;
  const std::int64_t fwd_rel = static_cast<std::int64_t>(chosen->offset) -
                               (static_cast<std::int64_t>(entry_off) + 5);
  hook.jmp_rel32(static_cast<std::int32_t>(fwd_rel));
  for (std::uint32_t i = 5; i < *covered; ++i) {
    hook.nop();
  }

  const std::uint32_t text_va = base + text->VirtualAddress;
  writer.write(text_va + chosen->offset, payload.code());
  writer.write(text_va + entry_off, hook.code());

  AttackResult result;
  result.attack_name = name();
  result.description = "entry of " + module +
                       " hooked with jmp to opcode-cave payload (" +
                       std::to_string(needed) + " bytes)";
  result.expected_flagged = {".text"};
  result.infects_disk_file = false;  // memory-only, disk copy stays clean
  return result;
}

}  // namespace mc::attacks
