// The adversary's arm inside a guest.
//
// ModChecker's introspection layer is read-only by design; infections are
// performed through this separate, clearly marked API that models malicious
// kernel-level code running *inside* the guest (it writes through the
// guest's own address space, not through VMI).
#pragma once

#include <cstdint>
#include <string>

#include "cloud/environment.hpp"
#include "util/bytes.hpp"

namespace mc::attacks {

class GuestMemoryWriter {
 public:
  GuestMemoryWriter(cloud::CloudEnvironment& env, vmm::DomainId vm)
      : env_(&env), vm_(vm) {}

  Bytes read(std::uint32_t va, std::size_t len) const;
  void write(std::uint32_t va, ByteView data);

  /// Reads the whole mapped image of a loaded module (throws NotFoundError
  /// if the module is not loaded).
  Bytes read_module_image(const std::string& module,
                          std::uint32_t* base_out = nullptr) const;

 private:
  cloud::CloudEnvironment* env_;
  vmm::DomainId vm_;
};

/// Replaces a module on disk and "reboots" it into memory: unloads the
/// clean module and loads `infected_file` in its place (the E1/E3/E4
/// infect-then-(re)load workflow; OSR Driver Loader in the paper).
void reload_with_infected_file(cloud::CloudEnvironment& env, vmm::DomainId vm,
                               const std::string& module,
                               ByteView infected_file);

}  // namespace mc::attacks
