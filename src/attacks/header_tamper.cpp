#include "attacks/header_tamper.hpp"

#include "attacks/guest_writer.hpp"
#include "pe/constants.hpp"
#include "pe/parser.hpp"

namespace mc::attacks {

AttackResult HeaderTamperAttack::apply(cloud::CloudEnvironment& env,
                                       vmm::DomainId vm,
                                       const std::string& module) const {
  GuestMemoryWriter writer(env, vm);
  std::uint32_t base = 0;
  const Bytes image = writer.read_module_image(module, &base);
  // Attacker's-eye parse of the victim image; mc-lint: allow(format-bypass)
  const pe::ParsedImage parsed(image);

  // AddressOfEntryPoint lives at optional-header offset 16.
  const std::uint32_t field_va = base + parsed.e_lfanew() +
                                 static_cast<std::uint32_t>(pe::kNtHeadersPrefixSize) +
                                 16;
  const std::uint32_t original = parsed.optional_header().AddressOfEntryPoint;
  std::uint8_t patched[4];
  store_le32(MutableByteView(patched, 4), 0, original + 0x20);
  writer.write(field_va, ByteView(patched, 4));

  AttackResult result;
  result.attack_name = name();
  result.description =
      "AddressOfEntryPoint of loaded " + module + " redirected (+0x20)";
  result.expected_flagged = {"IMAGE_OPTIONAL_HEADER"};
  result.infects_disk_file = false;
  return result;
}

}  // namespace mc::attacks
