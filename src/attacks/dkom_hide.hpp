// Extension — DKOM module hiding.
//
// Direct Kernel Object Manipulation: the module's LDR_DATA_TABLE_ENTRY is
// unlinked from PsLoadedModuleList so in-guest tools (and Module-Searcher)
// no longer see it.  ModChecker cannot hash a module it cannot find, but
// the *absence* on one VM while the rest of the pool has it loaded is
// itself the discrepancy ModChecker reports (CheckReport::missing_on).
#pragma once

#include "attacks/attack.hpp"

namespace mc::attacks {

class DkomHideAttack final : public Attack {
 public:
  std::string name() const override { return "dkom-module-hiding"; }

  AttackResult apply(cloud::CloudEnvironment& env, vmm::DomainId vm,
                     const std::string& module) const override;
};

}  // namespace mc::attacks
