// Infection campaign simulator — the SQL-Slammer scenario of §III.
//
// The paper's discussion: "malware such as SQL Slammer can rapidly infect
// most of the machines in a network and this would possibly make the
// above approach raise false alarms".  This module spreads a module-level
// infection across the pool in discrete waves (each infected VM tries to
// infect each clean VM with a per-contact probability), so the A4 analysis
// can study the vote as the infected fraction grows the way a worm grows
// it — not as an arbitrary parameter.
#pragma once

#include <cstdint>
#include <vector>

#include "attacks/attack.hpp"
#include "util/rng.hpp"

namespace mc::attacks {

struct CampaignConfig {
  std::uint64_t seed = 1;
  /// Probability that one infected VM infects one clean VM per wave.
  double contact_infectivity = 0.35;
  std::size_t max_waves = 32;
};

struct CampaignWave {
  std::size_t wave = 0;
  std::vector<vmm::DomainId> newly_infected;
  std::size_t total_infected = 0;
};

struct CampaignResult {
  std::vector<CampaignWave> waves;
  std::vector<vmm::DomainId> infected;  // final set, in infection order
};

class InfectionCampaign {
 public:
  explicit InfectionCampaign(const CampaignConfig& config = {})
      : config_(config) {}

  /// Seeds the infection on `patient_zero` and spreads until every VM is
  /// infected or `max_waves` elapse.  Every infection applies `attack` to
  /// `module` on the victim.
  CampaignResult run(cloud::CloudEnvironment& env, const Attack& attack,
                     const std::string& module, vmm::DomainId patient_zero);

 private:
  CampaignConfig config_;
};

}  // namespace mc::attacks
