// E2 — inline hooking (paper §V-B.2, Fig. 5; TCPIRPHOOK / Win32.Chatter
// style).
//
// A runtime (in-guest) attack on the loaded module: the first instructions
// of the entry function (hal.HalInitSystem in the paper) are overwritten
// with a jmp to a payload placed in an opcode cave (a run of 0x00 bytes)
// inside .text.  The payload executes its malicious stub, then the
// displaced original instructions ("sanitation of overwritten bytes"), and
// jumps back to the original flow.  Only the .text hash should differ.
#pragma once

#include "attacks/attack.hpp"

namespace mc::attacks {

class InlineHookAttack final : public Attack {
 public:
  std::string name() const override { return "inline-hooking"; }

  AttackResult apply(cloud::CloudEnvironment& env, vmm::DomainId vm,
                     const std::string& module) const override;
};

}  // namespace mc::attacks
