// E1 — single opcode replacement (paper §V-B.1).
//
// Replicates the OllyDbg edit on hal.dll: the one-byte counter decrement
// DEC ECX (opcode 0x49) is replaced by its three-byte alternate
// SUB ECX, 1 (0x83 0xE9 0x01) inside the .text raw data of the module
// *file*, shifting the following bytes (the paper: "this one to three byte
// modification shifted the jmp offsets").  The infected file is then
// loaded on restart.  Only the .text section hash should differ.
#pragma once

#include "attacks/attack.hpp"

namespace mc::attacks {

class OpcodeReplaceAttack final : public Attack {
 public:
  std::string name() const override { return "single-opcode-replacement"; }

  AttackResult apply(cloud::CloudEnvironment& env, vmm::DomainId vm,
                     const std::string& module) const override;

  /// The file-level mutation, exposed for unit tests: returns the infected
  /// file bytes.  Throws NotFoundError if no DEC ECX exists in .text.
  static Bytes infect_file(ByteView pe_file);
};

}  // namespace mc::attacks
