#include "attacks/eat_hook.hpp"

#include "attacks/guest_writer.hpp"
#include "pe/constants.hpp"
#include "pe/exports.hpp"
#include "pe/parser.hpp"
#include "util/error.hpp"

namespace mc::attacks {

AttackResult EatHookAttack::apply(cloud::CloudEnvironment& env,
                                  vmm::DomainId vm,
                                  const std::string& module) const {
  GuestMemoryWriter writer(env, vm);
  std::uint32_t base = 0;
  const Bytes image = writer.read_module_image(module, &base);
  // Attacker's-eye parse of the victim image; mc-lint: allow(format-bypass)
  const pe::ParsedImage parsed(image);

  const auto& export_dir =
      parsed.optional_header().DataDirectories[pe::kDirExport];
  MC_CHECK(export_dir.VirtualAddress != 0, "module exports nothing to hook");

  // The EAT's RVA lives at export-directory offset 28 (AddressOfFunctions);
  // redirect the first function's slot.
  const std::uint32_t eat_rva =
      load_le32(image, export_dir.VirtualAddress + 28);
  const std::uint32_t original = load_le32(image, eat_rva);

  std::uint8_t patched[4];
  // Point the export at an attacker-chosen RVA (end of .text, where a cave
  // payload would sit; the value matters only for detection semantics).
  store_le32(MutableByteView(patched, 4), 0, original + 0x40);
  writer.write(base + eat_rva, ByteView(patched, 4));

  const auto symbols = pe::parse_export_directory(image,
                                                  export_dir.VirtualAddress);
  AttackResult result;
  result.attack_name = name();
  result.description = "EAT slot of " + module + " (first export, '" +
                       (symbols.empty() ? "?" : symbols.front().name) +
                       "') redirected";
  result.expected_flagged = {".edata"};
  result.infects_disk_file = false;
  return result;
}

}  // namespace mc::attacks
