// Extension — version-resource spoofing.
//
// Malware that replaces a driver sometimes bumps the version resource so
// the module *looks* like a legitimate vendor update to inventory tools.
// The version block lives in read-only `.rsrc`, which is part of
// ModChecker's checked surface: the spoof is detected as a `.rsrc`
// mismatch even when nothing else changed — and, notably, a signed-module
// hash dictionary would ALSO flag it, but as an unknown version rather
// than an integrity violation on one VM.
#pragma once

#include "attacks/attack.hpp"

namespace mc::attacks {

class VersionSpoofAttack final : public Attack {
 public:
  std::string name() const override { return "version-spoofing"; }

  AttackResult apply(cloud::CloudEnvironment& env, vmm::DomainId vm,
                     const std::string& module) const override;
};

}  // namespace mc::attacks
