#include "attacks/iat_hook.hpp"

#include "attacks/guest_writer.hpp"
#include "pe/constants.hpp"
#include "pe/imports.hpp"
#include "pe/parser.hpp"
#include "util/error.hpp"

namespace mc::attacks {

AttackResult IatHookAttack::apply(cloud::CloudEnvironment& env,
                                  vmm::DomainId vm,
                                  const std::string& module) const {
  GuestMemoryWriter writer(env, vm);
  std::uint32_t base = 0;
  const Bytes image = writer.read_module_image(module, &base);
  // Attacker's-eye parse of the victim image; mc-lint: allow(format-bypass)
  const pe::ParsedImage parsed(image);

  const auto& import_dir =
      parsed.optional_header().DataDirectories[pe::kDirImport];
  MC_CHECK(import_dir.VirtualAddress != 0, "module has no imports to hook");
  const auto dlls =
      pe::parse_import_directory(image, import_dir.VirtualAddress);
  MC_CHECK(!dlls.empty() && !dlls[0].iat_rvas.empty(),
           "no IAT slots to hook");

  // Redirect the first slot to an attacker-controlled address (a payload
  // the rootkit placed elsewhere in kernel space; the value itself is what
  // matters for the detection question).
  const std::uint32_t slot_va = base + dlls[0].iat_rvas[0];
  std::uint8_t evil[4];
  store_le32(MutableByteView(evil, 4), 0, 0xDEAD1000u);
  writer.write(slot_va, ByteView(evil, 4));

  AttackResult result;
  result.attack_name = name();
  result.description = "IAT slot " + dlls[0].dll_name + "!" +
                       dlls[0].function_names[0] + " of " + module +
                       " redirected to attacker payload";
  result.expected_flagged = {};           // writable .idata is not hashed
  result.detectable_by_modchecker = false;  // documented limitation
  result.infects_disk_file = false;
  return result;
}

}  // namespace mc::attacks
