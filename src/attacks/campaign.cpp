#include "attacks/campaign.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace mc::attacks {

CampaignResult InfectionCampaign::run(cloud::CloudEnvironment& env,
                                      const Attack& attack,
                                      const std::string& module,
                                      vmm::DomainId patient_zero) {
  const auto& guests = env.guests();
  MC_CHECK(std::find(guests.begin(), guests.end(), patient_zero) !=
               guests.end(),
           "patient zero is not a guest");

  Xoshiro256 rng(config_.seed);
  CampaignResult result;
  std::set<vmm::DomainId> infected;

  attack.apply(env, patient_zero, module);
  infected.insert(patient_zero);
  result.infected.push_back(patient_zero);
  result.waves.push_back({0, {patient_zero}, 1});

  for (std::size_t wave = 1;
       wave <= config_.max_waves && infected.size() < guests.size();
       ++wave) {
    std::vector<vmm::DomainId> newly;
    for (const vmm::DomainId victim : guests) {
      if (infected.count(victim)) {
        continue;
      }
      // Each infected VM gets an independent shot at this victim.
      bool hit = false;
      for (std::size_t k = 0; k < infected.size() && !hit; ++k) {
        hit = rng.chance(config_.contact_infectivity);
      }
      if (hit) {
        newly.push_back(victim);
      }
    }
    for (const vmm::DomainId victim : newly) {
      attack.apply(env, victim, module);
      infected.insert(victim);
      result.infected.push_back(victim);
    }
    if (!newly.empty()) {
      result.waves.push_back({wave, newly, infected.size()});
    }
  }
  return result;
}

}  // namespace mc::attacks
