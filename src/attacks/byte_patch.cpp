#include "attacks/byte_patch.hpp"

#include "attacks/guest_writer.hpp"
#include "util/error.hpp"

namespace mc::attacks {

AttackResult BytePatchAttack::apply(cloud::CloudEnvironment& env,
                                    vmm::DomainId vm,
                                    const std::string& module) const {
  MC_CHECK(xor_mask_ != 0, "xor mask 0 is a no-op, not an attack");
  GuestMemoryWriter writer(env, vm);
  std::uint32_t base = 0;
  const Bytes image = writer.read_module_image(module, &base);
  MC_CHECK(rva_ < image.size(), "patch RVA outside module image");

  const std::uint8_t patched =
      static_cast<std::uint8_t>(image[rva_] ^ xor_mask_);
  writer.write(base + rva_, ByteView(&patched, 1));

  AttackResult result;
  result.attack_name = name();
  result.description = "byte at RVA 0x" + std::to_string(rva_) + " of " +
                       module + " XOR-ed in guest memory";
  result.infects_disk_file = false;
  return result;
}

}  // namespace mc::attacks
