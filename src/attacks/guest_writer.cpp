#include "attacks/guest_writer.hpp"

#include "util/error.hpp"

namespace mc::attacks {

Bytes GuestMemoryWriter::read(std::uint32_t va, std::size_t len) const {
  Bytes out(len, 0);
  env_->kernel(vm_).address_space().read_virtual(va, out);
  return out;
}

void GuestMemoryWriter::write(std::uint32_t va, ByteView data) {
  env_->kernel(vm_).address_space().write_virtual(va, data);
}

Bytes GuestMemoryWriter::read_module_image(const std::string& module,
                                           std::uint32_t* base_out) const {
  const auto* rec = env_->loader(vm_).find(module);
  if (rec == nullptr) {
    throw NotFoundError("module not loaded in guest: " + module);
  }
  if (base_out != nullptr) {
    *base_out = rec->base;
  }
  return read(rec->base, rec->size_of_image);
}

void reload_with_infected_file(cloud::CloudEnvironment& env, vmm::DomainId vm,
                               const std::string& module,
                               ByteView infected_file) {
  // Disk-first infection: the file is replaced on the guest's disk, then
  // the (infected) file is what gets loaded — the workflow §II notes most
  // malware follows.
  env.write_disk_file(vm, module, Bytes(infected_file.begin(),
                                        infected_file.end()));
  env.loader(vm).unload(module);
  env.loader(vm).load(module, infected_file);
}

}  // namespace mc::attacks
