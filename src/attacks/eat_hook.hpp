// Extension — export address table (EAT) hooking.
//
// The counterpart of IAT hooking on the provider side: the rootkit
// rewrites an exported function's RVA in the module's export directory so
// every *future* import resolution binds to attacker code.  Unlike the
// IAT (writable, legitimately rebound per VM), the export directory lives
// in read-only `.edata` and is identical across VMs — squarely inside
// ModChecker's checked surface, so this attack must be detected.
#pragma once

#include "attacks/attack.hpp"

namespace mc::attacks {

class EatHookAttack final : public Attack {
 public:
  std::string name() const override { return "eat-hooking"; }

  AttackResult apply(cloud::CloudEnvironment& env, vmm::DomainId vm,
                     const std::string& module) const override;
};

}  // namespace mc::attacks
