// E4 — PE header modification via DLL hooking (paper §V-B.4).
//
// Replicates the CFF Explorer workflow: a payload DLL (inject.dll exporting
// callMessageBox) is attached to dummy.sys by rewriting the import
// machinery:
//   * a new import table is emitted into an appended section — old DLLs'
//     descriptors keep pointing at their original thunk arrays, the new
//     DLL gets fresh ones (exactly how import-adder tools work);
//   * the import data directory, SizeOfImage and NumberOfSections grow,
//     and the tool re-stamps TimeDateStamp and the checksum;
//   * a call through the new IAT slot is appended to .text, growing its
//     VirtualSize ("the size of the code visible to the module will
//     change, thus increasing the VirtualSize value", §V-B.4).
//
// ModChecker must flag IMAGE_NT_HEADER, IMAGE_OPTIONAL_HEADER, the changed
// SECTION_HEADERs, the injected section header, and .text.  (The paper
// reports *all* section headers flagged because CFF's rebuild also repacks
// raw file offsets; our injector is more surgical — see EXPERIMENTS.md.)
#pragma once

#include "attacks/attack.hpp"

namespace mc::attacks {

class DllImportInjectAttack final : public Attack {
 public:
  std::string name() const override { return "pe-header-dll-hooking"; }

  AttackResult apply(cloud::CloudEnvironment& env, vmm::DomainId vm,
                     const std::string& module) const override;

  /// File-level injection, exposed for unit tests: attaches
  /// `dll_name`!`function_name` to the image's import machinery.
  static Bytes infect_file(ByteView pe_file, const std::string& dll_name,
                           const std::string& function_name);
};

}  // namespace mc::attacks
