// Extension — module hollowing.
//
// The kernel-space cousin of process hollowing: the attacker keeps a
// benign module's identity (its LDR entry, headers, name) but replaces the
// *body* of its .text with foreign code — here, code lifted from another
// module in the same guest, patched over the victim's executable region.
// Every byte of the victim's code changes while its size, headers and
// loader metadata stay pristine; ModChecker must still flag .text (the
// foreign bytes cannot RVA-normalize against honest copies).
#pragma once

#include "attacks/attack.hpp"

namespace mc::attacks {

class HollowingAttack final : public Attack {
 public:
  /// `donor_module`: whose code is transplanted into the victim.
  explicit HollowingAttack(std::string donor_module = "dummy.sys")
      : donor_(std::move(donor_module)) {}

  std::string name() const override { return "module-hollowing"; }

  AttackResult apply(cloud::CloudEnvironment& env, vmm::DomainId vm,
                     const std::string& module) const override;

 private:
  std::string donor_;
};

}  // namespace mc::attacks
