// Attack framework — the adversary side of the evaluation.
//
// Each attack imitates a rootkit/infection technique from the paper's §V-B
// (plus a few extensions from its related-work discussion).  Attacks come
// in two flavours mirroring how real infections happen:
//
//   * disk attacks  — mutate the module's PE file and reload it ("most
//     malware infects files on disk first, and then loads the infected
//     file into memory", §II).  E1, E3, E4.
//   * memory attacks — patch the already-loaded image inside guest memory
//     (classic runtime hooking).  E2 and the extensions.
//
// Every attack reports which integrity items ModChecker is expected to
// flag, so detection tests and the A2 baseline-comparison bench can assert
// exact outcomes.
#pragma once

#include <string>
#include <vector>

#include "cloud/environment.hpp"
#include "vmm/domain.hpp"

namespace mc::attacks {

struct AttackResult {
  std::string attack_name;
  std::string description;
  /// Integrity-item names ModChecker must flag (paper terminology:
  /// "IMAGE_DOS_HEADER", "IMAGE_OPTIONAL_HEADER", ".text", ...).
  std::vector<std::string> expected_flagged;
  /// False for techniques outside ModChecker's detection surface (e.g. IAT
  /// hooks living in writable .idata) — used by the limitations tests.
  bool detectable_by_modchecker = true;
  /// True when the infection also exists in the on-disk file (determines
  /// whether SVV-style disk/memory cross-view can see a difference).
  bool infects_disk_file = false;
};

class Attack {
 public:
  virtual ~Attack() = default;

  virtual std::string name() const = 0;

  /// Applies the technique to `module` on guest `vm`.
  virtual AttackResult apply(cloud::CloudEnvironment& env, vmm::DomainId vm,
                             const std::string& module) const = 0;
};

}  // namespace mc::attacks
