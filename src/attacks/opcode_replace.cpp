#include "attacks/opcode_replace.hpp"

#include "attacks/guest_writer.hpp"
#include "pe/parser.hpp"
#include "util/error.hpp"
#include "x86/decoder.hpp"

namespace mc::attacks {

namespace {

/// Locates the .text section header in a *file-layout* image.
pe::SectionHeader find_text_header(ByteView file) {
  const pe::DosHeader dos = pe::DosHeader::parse(file);
  const pe::FileHeader fh = pe::FileHeader::parse(file, dos.e_lfanew + 4);
  std::size_t off = dos.e_lfanew + pe::kNtHeadersPrefixSize +
                    fh.SizeOfOptionalHeader;
  for (std::uint16_t i = 0; i < fh.NumberOfSections; ++i) {
    const pe::SectionHeader sh = pe::SectionHeader::parse(file, off);
    if (sh.name() == ".text") {
      return sh;
    }
    off += pe::kSectionHeaderSize;
  }
  throw NotFoundError("no .text section in image");
}

}  // namespace

Bytes OpcodeReplaceAttack::infect_file(ByteView pe_file) {
  const pe::SectionHeader text = find_text_header(pe_file);
  Bytes file(pe_file.begin(), pe_file.end());

  MutableByteView raw = MutableByteView(file).subspan(
      text.PointerToRawData, std::min(text.SizeOfRawData, text.VirtualSize));

  // Walk instruction boundaries to find a genuine DEC ECX (not a 0x49
  // immediate byte inside another instruction).
  std::size_t pos = 0;
  while (pos < raw.size()) {
    if (raw[pos] == 0x49) {
      break;
    }
    const auto len = x86::instruction_length(raw, pos);
    if (!len) {
      throw FormatError("undecodable instruction while scanning .text");
    }
    pos += *len;
  }
  if (pos >= raw.size()) {
    throw NotFoundError("no DEC ECX instruction found in .text");
  }

  // Replace the 1-byte DEC ECX with the 3-byte SUB ECX,1 and shift the
  // remainder of the section down; the final two bytes fall into section
  // padding (an in-place reassembly, as OllyDbg performs it).
  Bytes shifted;
  shifted.reserve(raw.size());
  shifted.insert(shifted.end(), raw.begin(),
                 raw.begin() + static_cast<std::ptrdiff_t>(pos));
  shifted.push_back(0x83);
  shifted.push_back(0xE9);
  shifted.push_back(0x01);
  shifted.insert(shifted.end(),
                 raw.begin() + static_cast<std::ptrdiff_t>(pos + 1),
                 raw.end() - 2);
  MC_CHECK(shifted.size() == raw.size(), "shift arithmetic broken");
  std::copy(shifted.begin(), shifted.end(), raw.begin());
  return file;
}

AttackResult OpcodeReplaceAttack::apply(cloud::CloudEnvironment& env,
                                        vmm::DomainId vm,
                                        const std::string& module) const {
  const Bytes infected = infect_file(env.golden().file(module));
  reload_with_infected_file(env, vm, module, infected);

  AttackResult result;
  result.attack_name = name();
  result.description =
      "DEC ECX (0x49) replaced with SUB ECX,1 (0x83 0xE9 0x01) in " + module +
      " .text; file reloaded";
  result.expected_flagged = {".text"};
  result.infects_disk_file = true;
  return result;
}

}  // namespace mc::attacks
