#include "attacks/dll_import_inject.hpp"

#include "attacks/guest_writer.hpp"
#include "pe/builder.hpp"
#include "pe/constants.hpp"
#include "pe/imports.hpp"
#include "pe/mapper.hpp"
#include "pe/parser.hpp"
#include "util/error.hpp"
#include "x86/decoder.hpp"

namespace mc::attacks {

namespace {
constexpr std::uint32_t kDescriptorSize = 20;

/// Builds the replacement import section: descriptors for all old DLLs
/// (pointing at their original thunk arrays) plus the injected DLL with
/// fresh INT/IAT/hint-name/name data laid out after the descriptor array.
/// Returns the section bytes; `descriptors_size` and the injected IAT slot
/// RVA are written to the out-params.
Bytes build_injected_imports(const std::vector<pe::ParsedImportDll>& old_dlls,
                             const std::string& dll_name,
                             const std::string& function_name,
                             std::uint32_t section_rva,
                             std::uint32_t* descriptors_size,
                             std::uint32_t* new_iat_slot_rva) {
  const auto desc_bytes =
      static_cast<std::uint32_t>((old_dlls.size() + 2) * kDescriptorSize);
  const std::uint32_t int_off = desc_bytes;          // 2 entries * 4
  const std::uint32_t iat_off = int_off + 8;         // 2 entries * 4
  const std::uint32_t hint_off = iat_off + 8;
  std::uint32_t hint_len =
      2 + static_cast<std::uint32_t>(function_name.size()) + 1;
  hint_len = (hint_len + 1) & ~1u;
  const std::uint32_t name_off = hint_off + hint_len;

  Bytes out;
  // Old descriptors, verbatim references to their original arrays.
  for (const auto& dll : old_dlls) {
    append_le32(out, dll.original_first_thunk_rva);
    append_le32(out, 0);
    append_le32(out, 0);
    append_le32(out, dll.name_rva);
    append_le32(out, dll.first_thunk_rva);
  }
  // Injected descriptor.
  append_le32(out, section_rva + int_off);
  append_le32(out, 0);
  append_le32(out, 0);
  append_le32(out, section_rva + name_off);
  append_le32(out, section_rva + iat_off);
  // Terminator.
  for (int i = 0; i < 5; ++i) {
    append_le32(out, 0);
  }
  // INT + IAT (both initially the hint/name RVA).
  append_le32(out, section_rva + hint_off);
  append_le32(out, 0);
  append_le32(out, section_rva + hint_off);
  append_le32(out, 0);
  // Hint/name.
  append_le16(out, 0);
  for (const char c : function_name) {
    out.push_back(static_cast<std::uint8_t>(c));
  }
  out.push_back(0);
  if (out.size() % 2 != 0) {
    out.push_back(0);
  }
  // DLL name.
  for (const char c : dll_name) {
    out.push_back(static_cast<std::uint8_t>(c));
  }
  out.push_back(0);

  *descriptors_size = desc_bytes;
  *new_iat_slot_rva = section_rva + iat_off;
  return out;
}

}  // namespace

Bytes DllImportInjectAttack::infect_file(ByteView pe_file,
                                         const std::string& dll_name,
                                         const std::string& function_name) {
  const Bytes mapped = pe::map_image(pe_file);
  // Attacker's-eye parse of the victim image; mc-lint: allow(format-bypass)
  const pe::ParsedImage parsed(mapped);
  const pe::DosHeader& dos = parsed.dos();
  const pe::FileHeader& fh = parsed.file_header();
  const pe::OptionalHeader32& opt = parsed.optional_header();

  std::vector<pe::ParsedImportDll> old_dlls;
  const auto& import_dir = opt.DataDirectories[pe::kDirImport];
  if (import_dir.VirtualAddress != 0) {
    old_dlls = pe::parse_import_directory(mapped, import_dir.VirtualAddress);
  }

  // New section appended at the current end of the image.
  const std::uint32_t inj_rva = opt.SizeOfImage;
  std::uint32_t descriptors_size = 0;
  std::uint32_t new_iat_slot_rva = 0;
  const Bytes inj_data =
      build_injected_imports(old_dlls, dll_name, function_name, inj_rva,
                             &descriptors_size, &new_iat_slot_rva);

  Bytes file(pe_file.begin(), pe_file.end());

  // --- header-table slack check & new section header -------------------------
  const std::uint32_t section_table_off = static_cast<std::uint32_t>(
      dos.e_lfanew + pe::kNtHeadersPrefixSize + fh.SizeOfOptionalHeader);
  const std::uint32_t new_header_off =
      section_table_off +
      fh.NumberOfSections * static_cast<std::uint32_t>(pe::kSectionHeaderSize);
  MC_CHECK(new_header_off + pe::kSectionHeaderSize <= opt.SizeOfHeaders,
           "no slack in header area for an extra section header");

  const std::uint32_t raw_ptr = align_up(
      static_cast<std::uint32_t>(file.size()), pe::kDefaultFileAlignment);
  file.resize(raw_ptr, 0);
  pe::SectionHeader inj_header;
  inj_header.set_name(".inj");
  inj_header.VirtualSize = static_cast<std::uint32_t>(inj_data.size());
  inj_header.VirtualAddress = inj_rva;
  inj_header.SizeOfRawData = align_up(
      static_cast<std::uint32_t>(inj_data.size()), pe::kDefaultFileAlignment);
  inj_header.PointerToRawData = raw_ptr;
  inj_header.Characteristics =
      pe::kScnCntInitializedData | pe::kScnMemRead | pe::kScnMemWrite;
  {
    Bytes header_bytes;
    inj_header.serialize(header_bytes);
    std::copy(header_bytes.begin(), header_bytes.end(),
              file.begin() + new_header_off);
  }
  file.insert(file.end(), inj_data.begin(), inj_data.end());
  file.resize(raw_ptr + inj_header.SizeOfRawData, 0);

  // --- .text: append a call through the new IAT slot --------------------------
  // The stub goes into the section's raw-alignment slack past VirtualSize,
  // and VirtualSize grows to make it "visible" — the paper's observation.
  // (A sloppy injector: the absolute IAT-slot operand gets no .reloc entry,
  // so it is only correct at the preferred base.  Detection-wise the bytes
  // differ either way.)
  const pe::SectionHeader* text = parsed.find_section(".text");
  MC_CHECK(text != nullptr, "image has no .text section");
  std::uint8_t stub[6] = {0xFF, 0x15, 0, 0, 0, 0};
  store_le32(MutableByteView(stub, 6), 2, opt.ImageBase + new_iat_slot_rva);
  MC_CHECK(text->VirtualSize + sizeof stub <= text->SizeOfRawData,
           "no raw slack in .text for call stub");
  const std::uint32_t stub_file_off = text->PointerToRawData + text->VirtualSize;
  std::copy(stub, stub + sizeof stub,
            file.begin() + stub_file_off);

  // Grow .text VirtualSize in its section header.
  std::uint32_t text_header_off = section_table_off;
  for (std::uint16_t i = 0; i < fh.NumberOfSections; ++i) {
    const auto sh = pe::SectionHeader::parse(file, text_header_off);
    if (sh.name() == ".text") {
      break;
    }
    text_header_off += pe::kSectionHeaderSize;
  }
  store_le32(file, text_header_off + 8,
             text->VirtualSize + static_cast<std::uint32_t>(sizeof stub));

  // --- FILE header: section count + tool re-stamp ------------------------------
  store_le16(file, dos.e_lfanew + 4 + 2,
             static_cast<std::uint16_t>(fh.NumberOfSections + 1));
  store_le32(file, dos.e_lfanew + 4 + 4, fh.TimeDateStamp + 0x1000);

  // --- OPTIONAL header: import directory, sizes, checksum ----------------------
  const std::uint32_t opt_off =
      dos.e_lfanew + static_cast<std::uint32_t>(pe::kNtHeadersPrefixSize);
  store_le32(file, opt_off + 56,
             inj_rva + align_up(inj_header.VirtualSize,
                                pe::kDefaultSectionAlignment));  // SizeOfImage
  store_le32(file, opt_off + 8,
             opt.SizeOfInitializedData + inj_header.SizeOfRawData);
  store_le32(file, opt_off + 96 + 8 * pe::kDirImport, inj_rva);
  store_le32(file, opt_off + 100 + 8 * pe::kDirImport, descriptors_size);
  // Tool writes a fresh valid checksum.
  store_le32(file, opt_off + 64, 0);
  const std::uint32_t checksum = pe::compute_pe_checksum(file, opt_off + 64);
  store_le32(file, opt_off + 64, checksum);

  return file;
}

AttackResult DllImportInjectAttack::apply(cloud::CloudEnvironment& env,
                                          vmm::DomainId vm,
                                          const std::string& module) const {
  // The attacker first loads the payload DLL into the guest, then reloads
  // the victim driver with the injected import referencing it.
  if (env.loader(vm).find("inject.dll") == nullptr) {
    env.write_disk_file(vm, "inject.dll",
                        Bytes(env.golden().file("inject.dll")));
    env.loader(vm).load("inject.dll", env.golden().file("inject.dll"));
  }
  const Bytes infected =
      infect_file(env.golden().file(module), "inject.dll", "callMessageBox");
  reload_with_infected_file(env, vm, module, infected);

  AttackResult result;
  result.attack_name = name();
  result.description =
      "inject.dll!callMessageBox attached to " + module +
      " via rebuilt import table in appended section; .text call stub added";
  result.expected_flagged = {"IMAGE_NT_HEADER", "IMAGE_OPTIONAL_HEADER",
                             "SECTION_HEADER[.text]", "SECTION_HEADER[.inj]",
                             ".text"};
  result.infects_disk_file = true;
  return result;
}

}  // namespace mc::attacks
