#include "attacks/version_spoof.hpp"

#include "attacks/guest_writer.hpp"
#include "pe/constants.hpp"
#include "pe/parser.hpp"
#include "pe/resources.hpp"
#include "util/error.hpp"

namespace mc::attacks {

AttackResult VersionSpoofAttack::apply(cloud::CloudEnvironment& env,
                                       vmm::DomainId vm,
                                       const std::string& module) const {
  GuestMemoryWriter writer(env, vm);
  std::uint32_t base = 0;
  const Bytes image = writer.read_module_image(module, &base);
  // Attacker's-eye parse of the victim image; mc-lint: allow(format-bypass)
  const pe::ParsedImage parsed(image);

  const auto& resource_dir =
      parsed.optional_header().DataDirectories[pe::kDirResource];
  MC_CHECK(resource_dir.VirtualAddress != 0,
           "module has no resource section");
  const auto info_rva =
      pe::find_fixed_file_info_rva(image, resource_dir.VirtualAddress);
  MC_CHECK(info_rva.has_value(), "module has no version resource");

  // Bump FileVersion to a plausible "update": major.minor+1, build 9999.
  const std::uint32_t old_ms = load_le32(image, *info_rva + 8);
  std::uint8_t patched[8];
  store_le32(MutableByteView(patched, 8), 0, old_ms + 0x00000001);
  store_le32(MutableByteView(patched, 8), 4, 9999u << 16);
  writer.write(base + *info_rva + 8, ByteView(patched, 8));

  AttackResult result;
  result.attack_name = name();
  result.description =
      "VS_FIXEDFILEINFO of " + module + " bumped to fake an update";
  result.expected_flagged = {".rsrc"};
  result.infects_disk_file = false;
  return result;
}

}  // namespace mc::attacks
