// Extension — in-memory PE header tampering.
//
// Rootkits sometimes patch header fields of loaded modules (entry point
// redirection, size lies to confuse scanners).  This attack bumps
// AddressOfEntryPoint in the *loaded* image; ModChecker must flag the
// IMAGE_OPTIONAL_HEADER item.
#pragma once

#include "attacks/attack.hpp"

namespace mc::attacks {

class HeaderTamperAttack final : public Attack {
 public:
  std::string name() const override { return "header-tampering"; }

  AttackResult apply(cloud::CloudEnvironment& env, vmm::DomainId vm,
                     const std::string& module) const override;
};

}  // namespace mc::attacks
