// Extension — IAT hooking (runtime import-table redirection).
//
// Overwrites a bound IAT slot of a loaded module so calls through it reach
// attacker-chosen code.  Because IATs live in *writable* .idata — legimately
// rewritten by the loader on every VM — ModChecker does not hash them
// (§III-B: only headers and read-only/executable content are checked).
// This attack is therefore expected to evade ModChecker; it documents the
// boundary of the approach and feeds the A2 baseline-comparison bench
// (a LKIM-style function-pointer checker does catch it).
#pragma once

#include "attacks/attack.hpp"

namespace mc::attacks {

class IatHookAttack final : public Attack {
 public:
  std::string name() const override { return "iat-hooking"; }

  AttackResult apply(cloud::CloudEnvironment& env, vmm::DomainId vm,
                     const std::string& module) const override;
};

}  // namespace mc::attacks
