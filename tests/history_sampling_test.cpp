// Tests for scan history/trending, sampled comparisons, monitor CSV
// export, and orchestrator pool hygiene.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "attacks/inline_hook.hpp"
#include "cloud/environment.hpp"
#include "modchecker/history.hpp"
#include "modchecker/modchecker.hpp"
#include "modchecker/scheduler.hpp"
#include "workload/monitor.hpp"

namespace {

using namespace mc;
using namespace mc::core;

std::unique_ptr<cloud::CloudEnvironment> make_env(std::size_t guests) {
  cloud::CloudConfig cfg;
  cfg.guest_count = guests;
  return std::make_unique<cloud::CloudEnvironment>(cfg);
}

// ---- ScanHistory ------------------------------------------------------------------
TEST(History, TracksLifecycle) {
  ScanHistory history;
  history.observe(sim_ms(10), "hal.dll", 3, true);
  history.observe(sim_ms(20), "hal.dll", 3, true);
  history.observe(sim_ms(30), "hal.dll", 3, false);  // remediated

  ASSERT_EQ(history.findings().size(), 1u);
  const auto& h = history.findings()[0];
  EXPECT_EQ(h.first_flagged, sim_ms(10));
  EXPECT_EQ(h.last_flagged, sim_ms(20));
  EXPECT_EQ(h.times_flagged, 2u);
  EXPECT_FALSE(h.currently_flagged);
  EXPECT_EQ(h.flaps, 0u);
  EXPECT_EQ(h.exposure(sim_ms(100)), sim_ms(20));  // 10 -> 30
  EXPECT_TRUE(history.active().empty());
}

TEST(History, DetectsFlapping) {
  ScanHistory history;
  history.observe(sim_ms(10), "x.sys", 1, true);
  history.observe(sim_ms(20), "x.sys", 1, false);
  history.observe(sim_ms(30), "x.sys", 1, true);
  history.observe(sim_ms(40), "x.sys", 1, false);
  history.observe(sim_ms(50), "x.sys", 1, true);

  const auto& h = history.findings()[0];
  EXPECT_EQ(h.flaps, 2u);
  ASSERT_EQ(history.flapping().size(), 1u);
  EXPECT_TRUE(h.currently_flagged);
  EXPECT_EQ(h.exposure(sim_ms(60)), sim_ms(50));  // still open
}

TEST(History, SeparatesPairs) {
  ScanHistory history;
  history.observe(1, "a.sys", 1, true);
  history.observe(2, "a.sys", 2, true);
  history.observe(3, "b.sys", 1, true);
  EXPECT_EQ(history.findings().size(), 3u);
  EXPECT_EQ(history.active().size(), 3u);
}

TEST(History, IngestsScheduleRunsAcrossRemediation) {
  auto env = make_env(4);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[2], "hal.dll");
  env->snapshot_all();  // snapshot of infected state? No: snapshot BEFORE attack normally; here we emulate remediation via clean reload below.

  ScanScheduler scheduler(env->hypervisor(),
                          std::vector<vmm::DomainId>(env->guests()));
  scheduler.add_policy({"hal.dll", sim_ms(1000), 0});

  ScanHistory history;
  history.ingest(scheduler.run_until(sim_ms(2500)));  // 3 flagged scans
  ASSERT_EQ(history.findings().size(), 1u);
  EXPECT_TRUE(history.findings()[0].currently_flagged);
  EXPECT_EQ(history.findings()[0].times_flagged, 3u);

  // Remediate: reload the clean golden module.
  env->loader(env->guests()[2]).unload("hal.dll");
  env->loader(env->guests()[2]).load("hal.dll",
                                     env->golden().file("hal.dll"));
  history.ingest(scheduler.run_until(sim_ms(4500)));
  EXPECT_FALSE(history.findings()[0].currently_flagged);
  EXPECT_TRUE(history.active().empty());
}

// ---- sampled comparisons --------------------------------------------------------------
TEST(Sampling, InfectedSubjectAlwaysFlagged) {
  auto env = make_env(15);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[0], "hal.dll");
  ModChecker checker(env->hypervisor());
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (const std::size_t k : {std::size_t{1}, std::size_t{3},
                                std::size_t{7}}) {
      const auto report =
          checker.check_module_sampled(env->guests()[0], "hal.dll", k, seed);
      EXPECT_FALSE(report.subject_clean);
      EXPECT_EQ(report.total_comparisons, k);
    }
  }
}

TEST(Sampling, SampleSizeClampedToPool) {
  auto env = make_env(4);
  ModChecker checker(env->hypervisor());
  const auto report =
      checker.check_module_sampled(env->guests()[0], "hal.dll", 99, 1);
  EXPECT_EQ(report.total_comparisons, 3u);
  EXPECT_TRUE(report.subject_clean);
}

TEST(Sampling, SampleNeverContainsSubjectOrDuplicates) {
  auto env = make_env(10);
  ModChecker checker(env->hypervisor());
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto report =
        checker.check_module_sampled(env->guests()[3], "hal.dll", 5, seed);
    std::set<vmm::DomainId> seen;
    for (const auto& cmp : report.comparisons) {
      EXPECT_NE(cmp.other_domain, env->guests()[3]);
      EXPECT_TRUE(seen.insert(cmp.other_domain).second);
    }
  }
}

TEST(Sampling, DeterministicBySeed) {
  auto env = make_env(10);
  ModChecker checker(env->hypervisor());
  const auto a =
      checker.check_module_sampled(env->guests()[0], "hal.dll", 4, 42);
  const auto b =
      checker.check_module_sampled(env->guests()[0], "hal.dll", 4, 42);
  ASSERT_EQ(a.comparisons.size(), b.comparisons.size());
  for (std::size_t i = 0; i < a.comparisons.size(); ++i) {
    EXPECT_EQ(a.comparisons[i].other_domain, b.comparisons[i].other_domain);
  }
}

// ---- pool hygiene ------------------------------------------------------------------------
TEST(PoolHygiene, SubjectExcludedFromItsOwnPool) {
  auto env = make_env(4);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[0], "hal.dll");
  ModChecker checker(env->hypervisor());
  // Pass a pool that wrongly contains the subject twice and a duplicate
  // peer: the checker must sanitize it.
  const std::vector<vmm::DomainId> messy = {
      env->guests()[0], env->guests()[1], env->guests()[1],
      env->guests()[0], env->guests()[2]};
  const auto report = checker.check_module(env->guests()[0], "hal.dll", messy);
  EXPECT_EQ(report.total_comparisons, 2u);  // Dom2, Dom3 once each
  EXPECT_FALSE(report.subject_clean);
  EXPECT_EQ(report.successes, 0u);
}

// ---- CSV export -------------------------------------------------------------------------
TEST(MonitorCsv, ExportShape) {
  workload::MonitorConfig cfg;
  cfg.seed = 3;
  const auto samples =
      workload::ResourceMonitor(cfg).record(10.0, {{2, 5}});
  const std::string csv = workload::export_csv(samples);
  // Header + 10 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 11);
  EXPECT_EQ(csv.find("t,cpu_idle_pct"), 0u);
  // Window marking appears.
  EXPECT_NE(csv.find(",1\n"), std::string::npos);
  EXPECT_NE(csv.find(",0\n"), std::string::npos);
  // Column count is consistent on every row.
  std::istringstream is(csv);
  std::string line;
  while (std::getline(is, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 12) << line;
  }
}

}  // namespace
