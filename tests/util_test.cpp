// Unit tests for mc_util: byte helpers, RNG determinism, simulated clock,
// thread pool, UTF-16, hexdump.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <set>
#include <stdexcept>
#include <thread>

#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/hexdump.hpp"
#include "util/rng.hpp"
#include "util/sim_clock.hpp"
#include "util/thread_pool.hpp"
#include "util/utf16.hpp"

namespace {

using namespace mc;

// ---- little-endian helpers ---------------------------------------------------
TEST(Bytes, LoadStoreRoundTrip16) {
  Bytes buf(8, 0);
  store_le16(buf, 2, 0xBEEF);
  EXPECT_EQ(buf[2], 0xEF);
  EXPECT_EQ(buf[3], 0xBE);
  EXPECT_EQ(load_le16(buf, 2), 0xBEEF);
}

TEST(Bytes, LoadStoreRoundTrip32) {
  Bytes buf(8, 0);
  store_le32(buf, 1, 0xDEADBEEF);
  EXPECT_EQ(load_le32(buf, 1), 0xDEADBEEFu);
  EXPECT_EQ(buf[1], 0xEF);
  EXPECT_EQ(buf[4], 0xDE);
}

TEST(Bytes, LoadStoreRoundTrip64) {
  Bytes buf(16, 0);
  store_le64(buf, 3, 0x0123456789ABCDEFull);
  EXPECT_EQ(load_le64(buf, 3), 0x0123456789ABCDEFull);
}

TEST(Bytes, OutOfRangeAccessThrows) {
  Bytes buf(4, 0);
  EXPECT_THROW(load_le32(buf, 1), InvalidArgument);
  EXPECT_THROW(load_le16(buf, 3), InvalidArgument);
  EXPECT_THROW(store_le32(buf, 2, 1), InvalidArgument);
  EXPECT_NO_THROW(load_le32(buf, 0));
}

TEST(Bytes, AppendHelpers) {
  Bytes out;
  append_le16(out, 0x1122);
  append_le32(out, 0x33445566);
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(load_le16(out, 0), 0x1122);
  EXPECT_EQ(load_le32(out, 2), 0x33445566u);
}

TEST(Bytes, AppendPaddedAscii) {
  Bytes out;
  append_padded_ascii(out, "abc", 8);
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(out[2], 'c');
  EXPECT_EQ(out[3], 0);
  EXPECT_THROW(append_padded_ascii(out, "too long!", 4), InvalidArgument);
}

TEST(Bytes, AlignUp) {
  EXPECT_EQ(align_up(0, 0x1000), 0u);
  EXPECT_EQ(align_up(1, 0x1000), 0x1000u);
  EXPECT_EQ(align_up(0x1000, 0x1000), 0x1000u);
  EXPECT_EQ(align_up(0x1001, 0x1000), 0x2000u);
  EXPECT_EQ(align_up(513, 0x200), 0x400u);
}

TEST(Bytes, SliceBounds) {
  const Bytes buf = {1, 2, 3, 4, 5};
  const Bytes s = slice(buf, 1, 3);
  EXPECT_EQ(s, (Bytes{2, 3, 4}));
  EXPECT_THROW(slice(buf, 3, 3), InvalidArgument);
  EXPECT_EQ(slice(buf, 5, 0), Bytes{});
}

// ---- RNG ---------------------------------------------------------------------
TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, XoshiroSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next() == b.next();
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, RangeStaysInBounds) {
  Xoshiro256 rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values reachable
}

TEST(Rng, UnitInHalfOpenInterval) {
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceIsCalibrated) {
  Xoshiro256 rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.chance(0.25);
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

// ---- SimClock ------------------------------------------------------------------
TEST(SimClock, AccumulatesCharges) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.charge(100);
  clock.charge(50);
  EXPECT_EQ(clock.now(), 150u);
}

TEST(SimClock, SlowdownScalesCharges) {
  SimClock clock;
  clock.set_slowdown(2.5);
  clock.charge(100);
  EXPECT_EQ(clock.now(), 250u);
}

TEST(SimClock, SlowdownClampsBelowOne) {
  SimClock clock;
  clock.set_slowdown(0.1);
  EXPECT_DOUBLE_EQ(clock.slowdown(), 1.0);
}

TEST(SimClock, RawAdvanceIgnoresSlowdown) {
  SimClock clock;
  clock.set_slowdown(10.0);
  clock.advance_raw(7);
  EXPECT_EQ(clock.now(), 7u);
}

TEST(SimClock, Formatting) {
  EXPECT_EQ(format_sim_nanos(500), "500 ns");
  EXPECT_EQ(format_sim_nanos(sim_us(12)), "12.00 us");
  EXPECT_EQ(format_sim_nanos(sim_ms(3)), "3.00 ms");
  EXPECT_EQ(format_sim_nanos(2500000000ull), "2.500 s");
}

TEST(SimClock, Conversions) {
  EXPECT_EQ(sim_us(1), 1000u);
  EXPECT_EQ(sim_ms(1), 1000000u);
  EXPECT_DOUBLE_EQ(to_ms(sim_ms(5)), 5.0);
}

// ---- ThreadPool ------------------------------------------------------------------
TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&counter, i] {
      counter.fetch_add(1);
      return i * 2;
    }));
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * 2);
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DrainsPendingTasksOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 16; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins after draining
  EXPECT_EQ(counter.load(), 16);
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool(0), InvalidArgument);
  EXPECT_THROW(ThreadPool(0, 1), InvalidArgument);
}

TEST(ThreadPool, PartitionedTasksStayOnTheirWorkers) {
  ThreadPool pool(2, 1);
  EXPECT_EQ(pool.partitions(), 2u);
  EXPECT_EQ(pool.size(), 2u);
  const auto worker_id = [&](std::size_t partition) {
    return pool.submit_to(partition,
                          [] { return std::this_thread::get_id(); })
        .get();
  };
  const std::thread::id id0 = worker_id(0);
  const std::thread::id id1 = worker_id(1);
  EXPECT_NE(id0, id1);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(worker_id(0), id0);  // partition 0 never runs elsewhere
    EXPECT_EQ(worker_id(1), id1);
  }
}

TEST(ThreadPool, BlockedPartitionDoesNotStarveSiblings) {
  ThreadPool pool(2, 1);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  auto blocked = pool.submit_to(0, [gate] { gate.wait(); });
  // Partition 0's only worker is parked on the gate; partition 1's queue
  // is independent, so its task completes regardless.
  EXPECT_EQ(pool.submit_to(1, [] { return 42; }).get(), 42);
  release.set_value();
  blocked.get();
}

TEST(ThreadPool, RejectsUnknownPartition) {
  ThreadPool pool(2, 1);
  EXPECT_THROW(pool.submit_to(5, [] {}), std::out_of_range);
}

// ---- UTF-16 ------------------------------------------------------------------------
TEST(Utf16, RoundTrip) {
  const std::string name = "hal.dll";
  const Bytes encoded = ascii_to_utf16le(name);
  ASSERT_EQ(encoded.size(), 14u);
  EXPECT_EQ(encoded[0], 'h');
  EXPECT_EQ(encoded[1], 0);
  EXPECT_EQ(utf16le_to_ascii(encoded), name);
}

TEST(Utf16, RejectsNonAscii) {
  EXPECT_THROW(ascii_to_utf16le("caf\xC3\xA9"), InvalidArgument);
  const Bytes wide = {0x01, 0x30};  // U+3001
  EXPECT_THROW(utf16le_to_ascii(wide), FormatError);
}

TEST(Utf16, RejectsOddLength) {
  const Bytes odd = {'a', 0, 'b'};
  EXPECT_THROW(utf16le_to_ascii(odd), FormatError);
}

TEST(Utf16, StopsAtEmbeddedTerminator) {
  Bytes buf = ascii_to_utf16le("ab");
  buf.push_back(0);
  buf.push_back(0);
  Bytes tail = ascii_to_utf16le("cd");
  buf.insert(buf.end(), tail.begin(), tail.end());
  EXPECT_EQ(utf16le_to_ascii(buf), "ab");
}

// ---- hexdump -------------------------------------------------------------------------
TEST(Hexdump, HexBytesFormat) {
  const Bytes data = {0xDE, 0xAD, 0xBE, 0xEF};
  EXPECT_EQ(hex_bytes(data), "de ad be ef");
  EXPECT_EQ(hex_bytes(data, 2), "de ad ...");
}

TEST(Hexdump, Hex32Padding) {
  EXPECT_EQ(hex32(0xF8CC2000), "f8cc2000");
  EXPECT_EQ(hex32(0x1), "00000001");
}

TEST(Hexdump, FullDumpShape) {
  Bytes data(20, 0x41);  // 'A'
  const std::string dump = hexdump(data, 0x1000);
  EXPECT_NE(dump.find("00001000"), std::string::npos);
  EXPECT_NE(dump.find("|AAAAAAAAAAAAAAAA|"), std::string::npos);
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 2);
}

// ---- MC_CHECK -------------------------------------------------------------------------
TEST(Check, ThrowsWithContext) {
  try {
    MC_CHECK(1 == 2, "math is broken");
    FAIL() << "MC_CHECK did not throw";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("math is broken"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

}  // namespace
