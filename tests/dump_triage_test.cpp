// Tests for offline dump analysis, finding triage, and the EAT-hook
// extension attack.
#include <gtest/gtest.h>

#include <memory>

#include "attacks/eat_hook.hpp"
#include "attacks/inline_hook.hpp"
#include "cloud/catalog.hpp"
#include "cloud/environment.hpp"
#include "modchecker/modchecker.hpp"
#include "modchecker/searcher.hpp"
#include "modchecker/triage.hpp"
#include "pe/parser.hpp"
#include "vmi/dump.hpp"
#include "vmi/session.hpp"

namespace {

using namespace mc;

std::unique_ptr<cloud::CloudEnvironment> make_env(std::size_t guests) {
  cloud::CloudConfig cfg;
  cfg.guest_count = guests;
  return std::make_unique<cloud::CloudEnvironment>(cfg);
}

// ---- EAT hook ------------------------------------------------------------------
TEST(EatHook, DetectedViaReadOnlyEdata) {
  auto env = make_env(4);
  const auto result =
      attacks::EatHookAttack{}.apply(*env, env->guests()[0], "hal.dll");
  EXPECT_TRUE(result.detectable_by_modchecker);

  core::ModChecker checker(env->hypervisor());
  const auto report = checker.check_module(env->guests()[0], "hal.dll");
  EXPECT_FALSE(report.subject_clean);
  EXPECT_EQ(report.flagged_items, std::vector<std::string>{".edata"});
}

TEST(EatHook, RequiresExports) {
  auto env = make_env(2);
  // dummy.sys exports nothing.
  EXPECT_THROW(
      attacks::EatHookAttack{}.apply(*env, env->guests()[0], "dummy.sys"),
      InvalidArgument);
}

// ---- memory dumps ---------------------------------------------------------------
TEST(Dump, RoundTripPreservesIntrospectionView) {
  auto env = make_env(2);
  const vmm::DomainId guest = env->guests()[0];
  const Bytes dump = vmi::dump_domain(env->hypervisor(), guest);
  ASSERT_GT(dump.size(), vmm::kFrameSize);

  const vmi::DumpAnalysis analysis(dump);
  SimClock live_clock;
  SimClock dump_clock;
  vmi::VmiSession live(env->hypervisor(), guest, live_clock);
  vmi::VmiSession offline(analysis.hypervisor(), analysis.domain_id(),
                          dump_clock);

  // The module list seen through the dump equals the live view.
  const auto live_mods = core::ModuleSearcher(live).list_modules();
  const auto dump_mods = core::ModuleSearcher(offline).list_modules();
  ASSERT_EQ(live_mods.size(), dump_mods.size());
  for (std::size_t i = 0; i < live_mods.size(); ++i) {
    EXPECT_EQ(live_mods[i].name, dump_mods[i].name);
    EXPECT_EQ(live_mods[i].base, dump_mods[i].base);
  }

  // Whole-module extraction is byte-identical.
  const auto live_img = core::ModuleSearcher(live).extract_module("hal.dll");
  const auto dump_img =
      core::ModuleSearcher(offline).extract_module("hal.dll");
  ASSERT_TRUE(live_img && dump_img);
  EXPECT_EQ(live_img->bytes, dump_img->bytes);
}

TEST(Dump, CapturesInfectionEvidence) {
  auto env = make_env(3);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[0], "hal.dll");
  const Bytes dump = vmi::dump_domain(env->hypervisor(), env->guests()[0]);

  // Revert the live guest — the dump must still hold the evidence.
  env->snapshot_all();  // (snapshot of the infected state, fine for test)
  const vmi::DumpAnalysis analysis(dump);
  SimClock clock;
  vmi::VmiSession session(analysis.hypervisor(), analysis.domain_id(), clock);
  const auto image = core::ModuleSearcher(session).extract_module("hal.dll");
  ASSERT_TRUE(image.has_value());
  // The entry has the 0xE9 hook (attack writes a jmp at the entry point).
  const pe::ParsedImage parsed(image->bytes);
  EXPECT_EQ(image->bytes[parsed.optional_header().AddressOfEntryPoint], 0xE9);
}

TEST(Dump, RejectsGarbage) {
  const Bytes tiny = {1, 2, 3};
  EXPECT_THROW(vmi::DumpAnalysis{tiny}, FormatError);
  const Bytes zeros(64, 0);
  EXPECT_THROW(vmi::DumpAnalysis{zeros}, FormatError);
}

TEST(Dump, RejectsTruncation) {
  auto env = make_env(1);
  Bytes dump = vmi::dump_domain(env->hypervisor(), env->guests()[0]);
  dump.resize(dump.size() - 100);
  EXPECT_THROW(vmi::DumpAnalysis{dump}, FormatError);
}

// ---- triage -----------------------------------------------------------------------
TEST(Triage, AcknowledgedFindingIsSuppressed) {
  auto env = make_env(4);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[0], "hal.dll");

  core::ModChecker checker(env->hypervisor());
  const auto report = checker.check_module(env->guests()[0], "hal.dll");
  ASSERT_FALSE(report.subject_clean);

  core::FindingTriage triage;
  EXPECT_FALSE(triage.is_acknowledged(report));
  triage.acknowledge(report, "staged update rollout");
  EXPECT_TRUE(triage.is_acknowledged(report));

  // A re-check of the same state produces the same fingerprint.
  const auto again = checker.check_module(env->guests()[0], "hal.dll");
  EXPECT_TRUE(triage.is_acknowledged(again));
  EXPECT_EQ(triage.entries().size(), 1u);
}

TEST(Triage, NewDivergenceReopensTheAlert) {
  auto env = make_env(4);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[0], "hal.dll");

  core::ModChecker checker(env->hypervisor());
  core::FindingTriage triage;
  triage.acknowledge(checker.check_module(env->guests()[0], "hal.dll"),
                     "known");

  // A second, different infection on top changes the content fingerprint.
  attacks::EatHookAttack{}.apply(*env, env->guests()[0], "hal.dll");
  const auto report = checker.check_module(env->guests()[0], "hal.dll");
  EXPECT_FALSE(triage.is_acknowledged(report));
}

TEST(Triage, CleanReportsCannotBeAcknowledged) {
  auto env = make_env(3);
  core::ModChecker checker(env->hypervisor());
  const auto report = checker.check_module(env->guests()[0], "hal.dll");
  ASSERT_TRUE(report.subject_clean);
  core::FindingTriage triage;
  EXPECT_THROW(triage.acknowledge(report, "x"), InvalidArgument);
  EXPECT_FALSE(triage.is_acknowledged(report));
}

TEST(Triage, UnacknowledgedFilter) {
  auto env = make_env(4);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[0], "hal.dll");
  attacks::InlineHookAttack{}.apply(*env, env->guests()[1], "ntfs.sys");

  core::ModChecker checker(env->hypervisor());
  std::vector<core::CheckReport> reports;
  reports.push_back(checker.check_module(env->guests()[0], "hal.dll"));
  reports.push_back(checker.check_module(env->guests()[1], "ntfs.sys"));
  reports.push_back(checker.check_module(env->guests()[2], "http.sys"));

  core::FindingTriage triage;
  triage.acknowledge(reports[0], "expected");
  const auto open = triage.unacknowledged(reports);
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0]->module_name, "ntfs.sys");
}

}  // namespace
