// Tests for the forensic divergence analyzer (the post-flag "deeper
// analysis" stage).
#include <gtest/gtest.h>

#include <memory>

#include "attacks/byte_patch.hpp"
#include "attacks/dll_import_inject.hpp"
#include "attacks/header_tamper.hpp"
#include "attacks/inline_hook.hpp"
#include "cloud/environment.hpp"
#include "modchecker/forensics.hpp"
#include "modchecker/parser.hpp"
#include "modchecker/searcher.hpp"
#include "vmi/session.hpp"

namespace {

using namespace mc;
using namespace mc::core;

class ForensicsTest : public ::testing::Test {
 protected:
  ForensicsTest() {
    cloud::CloudConfig cfg;
    cfg.guest_count = 3;
    env_ = std::make_unique<cloud::CloudEnvironment>(cfg);
  }

  ParsedModule parse_from(std::size_t guest_index,
                          const std::string& module) {
    SimClock clock;
    vmi::VmiSession session(env_->hypervisor(),
                            env_->guests()[guest_index], clock);
    ModuleSearcher searcher(session);
    const auto image = searcher.extract_module(module);
    EXPECT_TRUE(image.has_value());
    return ModuleParser().parse(*image, clock);
  }

  std::unique_ptr<cloud::CloudEnvironment> env_;
};

TEST_F(ForensicsTest, CleanPairHasNoDivergence) {
  const ParsedModule subject = parse_from(0, "hal.dll");
  const ParsedModule reference = parse_from(1, "hal.dll");
  const auto report = analyze_divergence(subject, reference, ".text");
  EXPECT_EQ(report.classification, DivergenceClass::kNone);
  EXPECT_EQ(report.differing_bytes, 0u);
  EXPECT_GT(report.rvas_adjusted, 0u);  // normalization did happen
  EXPECT_TRUE(analyze_all_flagged(subject, reference).empty());
}

TEST_F(ForensicsTest, InlineHookClassifiedAsCodeInjection) {
  attacks::InlineHookAttack{}.apply(*env_, env_->guests()[0], "hal.dll");
  const ParsedModule subject = parse_from(0, "hal.dll");
  const ParsedModule reference = parse_from(1, "hal.dll");

  const auto report = analyze_divergence(subject, reference, ".text");
  EXPECT_EQ(report.classification, DivergenceClass::kCodeInjection);
  EXPECT_GE(report.ranges.size(), 2u);  // hook site + cave payload
  EXPECT_GT(report.differing_bytes, 5u);
  // The listings must show real instructions and actually differ.
  EXPECT_FALSE(report.subject_listing.empty());
  EXPECT_FALSE(report.reference_listing.empty());
  EXPECT_NE(report.subject_listing, report.reference_listing);
}

TEST_F(ForensicsTest, SmallPatchClassifiedAsContentPatch) {
  attacks::BytePatchAttack(0x1050, 0x7F).apply(*env_, env_->guests()[0],
                                               "ntfs.sys");
  const ParsedModule subject = parse_from(0, "ntfs.sys");
  const ParsedModule reference = parse_from(1, "ntfs.sys");

  const auto report = analyze_divergence(subject, reference, ".text");
  EXPECT_EQ(report.classification, DivergenceClass::kContentPatch);
  ASSERT_EQ(report.ranges.size(), 1u);
  // If the flipped byte happens to land inside a relocated address
  // operand, the whole 4-byte window stays divergent (the adjustment
  // rightly refuses to "fix" a corrupted relocation).
  EXPECT_LE(report.ranges[0].length, 4u);
  EXPECT_GE(report.ranges[0].offset + report.ranges[0].length, 0x50u);
  EXPECT_LE(report.ranges[0].offset, 0x50u);  // .text starts at RVA 0x1000
}

TEST_F(ForensicsTest, HeaderTamperClassifiedAsHeaderField) {
  attacks::HeaderTamperAttack{}.apply(*env_, env_->guests()[0], "ntfs.sys");
  const ParsedModule subject = parse_from(0, "ntfs.sys");
  const ParsedModule reference = parse_from(1, "ntfs.sys");

  const auto reports = analyze_all_flagged(subject, reference);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].item, "IMAGE_OPTIONAL_HEADER");
  EXPECT_EQ(reports[0].classification, DivergenceClass::kHeaderField);
  EXPECT_LE(reports[0].differing_bytes, 4u);
}

TEST_F(ForensicsTest, InjectedSectionClassifiedAsStructural) {
  attacks::DllImportInjectAttack{}.apply(*env_, env_->guests()[0],
                                         "dummy.sys");
  const ParsedModule subject = parse_from(0, "dummy.sys");
  const ParsedModule reference = parse_from(1, "dummy.sys");

  const auto reports = analyze_all_flagged(subject, reference);
  EXPECT_GE(reports.size(), 4u);
  bool structural_seen = false;
  for (const auto& r : reports) {
    if (r.item == "SECTION_HEADER[.inj]") {
      EXPECT_EQ(r.classification, DivergenceClass::kStructural);
      structural_seen = true;
    }
  }
  EXPECT_TRUE(structural_seen);
}

TEST_F(ForensicsTest, FormatIncludesClassificationAndListing) {
  attacks::InlineHookAttack{}.apply(*env_, env_->guests()[0], "hal.dll");
  const auto report = analyze_divergence(parse_from(0, "hal.dll"),
                                         parse_from(1, "hal.dll"), ".text");
  const std::string text = format_forensic_report(report);
  EXPECT_NE(text.find("code-injection"), std::string::npos);
  EXPECT_NE(text.find("subject code around first difference"),
            std::string::npos);
}

}  // namespace
