// Tests for guest OS profiles and mixed-version clouds — the deployment
// reality behind the paper's "same version of the operating system"
// assumption.
#include <gtest/gtest.h>

#include <memory>

#include "attacks/inline_hook.hpp"
#include "cloud/environment.hpp"
#include "guestos/profile.hpp"
#include "modchecker/audit.hpp"
#include "modchecker/modchecker.hpp"
#include "modchecker/searcher.hpp"
#include "vmi/session.hpp"

namespace {

using namespace mc;
using guestos::win2003_sp1_profile;
using guestos::winxp_sp2_profile;

/// 6 guests: 0-3 run XP SP2, 4-5 run the 2003 build.
std::unique_ptr<cloud::CloudEnvironment> mixed_env() {
  cloud::CloudConfig cfg;
  cfg.guest_count = 6;
  cfg.guest_profiles[4] = &win2003_sp1_profile();
  cfg.guest_profiles[5] = &win2003_sp1_profile();
  return std::make_unique<cloud::CloudEnvironment>(cfg);
}

TEST(Profiles, LookupByVersionId) {
  EXPECT_EQ(guestos::profile_by_version(0x05010200).name, "winxp-sp2-x86");
  EXPECT_EQ(guestos::profile_by_version(0x05020100).name,
            "win2003-sp1-x86");
  EXPECT_THROW(guestos::profile_by_version(0x06000000), NotFoundError);
}

TEST(Profiles, LayoutsActuallyDiffer) {
  EXPECT_NE(winxp_sp2_profile().off_dll_base,
            win2003_sp1_profile().off_dll_base);
  EXPECT_NE(winxp_sp2_profile().ldr_entry_size,
            win2003_sp1_profile().ldr_entry_size);
}

TEST(Profiles, VmiIdentifiesGuestBuild) {
  auto env = mixed_env();
  SimClock clock;
  vmi::VmiSession xp(env->hypervisor(), env->guests()[0], clock);
  vmi::VmiSession w2k3(env->hypervisor(), env->guests()[4], clock);
  EXPECT_EQ(xp.guest_version(), winxp_sp2_profile().version_id);
  EXPECT_EQ(w2k3.guest_version(), win2003_sp1_profile().version_id);
}

TEST(Profiles, SearcherReadsBothLayoutsCorrectly) {
  auto env = mixed_env();
  for (const std::size_t idx : {std::size_t{0}, std::size_t{4}}) {
    SimClock clock;
    vmi::VmiSession session(env->hypervisor(), env->guests()[idx], clock);
    core::ModuleSearcher searcher(session);
    const auto modules = searcher.list_modules();
    ASSERT_EQ(modules.size(), env->config().load_order.size())
        << "guest " << idx;
    const auto* hal = env->loader(env->guests()[idx]).find("hal.dll");
    const auto found = searcher.find_module("hal.dll");
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->base, hal->base) << "guest " << idx;
    EXPECT_EQ(found->size_of_image, hal->size_of_image);
  }
}

TEST(Profiles, GroupingSplitsThePoolByVersion) {
  auto env = mixed_env();
  const auto groups =
      core::group_by_guest_version(env->hypervisor(), env->guests());
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups.at(winxp_sp2_profile().version_id).size(), 4u);
  EXPECT_EQ(groups.at(win2003_sp1_profile().version_id).size(), 2u);
}

TEST(Profiles, SameVersionGroupsCheckClean) {
  auto env = mixed_env();
  const auto groups =
      core::group_by_guest_version(env->hypervisor(), env->guests());
  core::ModChecker checker(env->hypervisor());

  // The XP group (4 VMs) must self-verify clean.
  const auto& xp_pool = groups.at(winxp_sp2_profile().version_id);
  for (const auto& verdict :
       checker.scan_pool("hal.dll", xp_pool).verdicts) {
    EXPECT_TRUE(verdict.clean);
  }
  // The 2003 group (2 VMs) compares clean pairwise too.
  const auto& w2k3_pool = groups.at(win2003_sp1_profile().version_id);
  const auto report =
      checker.check_module(w2k3_pool[0], "hal.dll", {w2k3_pool[1]});
  EXPECT_TRUE(report.subject_clean);
}

TEST(Profiles, InfectionDetectedInsideAVersionGroup) {
  auto env = mixed_env();
  // Infect one XP guest; its (same-version) peers convict it.
  attacks::InlineHookAttack{}.apply(*env, env->guests()[1], "hal.dll");
  const auto groups =
      core::group_by_guest_version(env->hypervisor(), env->guests());
  const auto& xp_pool = groups.at(winxp_sp2_profile().version_id);

  core::ModChecker checker(env->hypervisor());
  const auto scan = checker.scan_pool("hal.dll", xp_pool);
  for (const auto& verdict : scan.verdicts) {
    EXPECT_EQ(verdict.clean, verdict.vm != env->guests()[1]);
  }
}

TEST(Profiles, MixedCloudAllRuntimesStillBoot) {
  auto env = mixed_env();
  // Both builds load all drivers and keep coherent loader lists.
  for (const auto vm : env->guests()) {
    EXPECT_EQ(env->kernel(vm).read_module_list().size(),
              env->config().load_order.size());
  }
}

}  // namespace
