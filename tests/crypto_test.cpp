// Unit tests for mc_crypto: RFC/NIST vectors, streaming equivalence,
// digest value semantics.
#include <gtest/gtest.h>

#include <string>

#include "crypto/crc32.hpp"
#include "crypto/digest.hpp"
#include "crypto/hasher.hpp"
#include "crypto/md5.hpp"
#include "crypto/sha1.hpp"
#include "crypto/sha256.hpp"
#include "util/rng.hpp"

namespace {

using namespace mc;
using namespace mc::crypto;

ByteView sv(const std::string& s) {
  return ByteView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

// ---- MD5: the full RFC 1321 appendix A.5 test suite -------------------------
struct Md5Vector {
  const char* input;
  const char* hex;
};

class Md5Rfc1321 : public ::testing::TestWithParam<Md5Vector> {};

TEST_P(Md5Rfc1321, MatchesReferenceDigest) {
  const auto& [input, hex] = GetParam();
  EXPECT_EQ(Md5::hash(sv(input)).hex(), hex);
}

INSTANTIATE_TEST_SUITE_P(
    ReferenceVectors, Md5Rfc1321,
    ::testing::Values(
        Md5Vector{"", "d41d8cd98f00b204e9800998ecf8427e"},
        Md5Vector{"a", "0cc175b9c0f1b6a831c399e269772661"},
        Md5Vector{"abc", "900150983cd24fb0d6963f7d28e17f72"},
        Md5Vector{"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
        Md5Vector{"abcdefghijklmnopqrstuvwxyz",
                  "c3fcd3d76192e4007dfb496cca67e13b"},
        Md5Vector{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz01234"
                  "56789",
                  "d174ab98d277d9f5a5611c2c9f419d9f"},
        Md5Vector{"1234567890123456789012345678901234567890123456789012345678"
                  "9012345678901234567890",
                  "57edf4a22be3c955ac49da2e2107b67a"}));

// ---- SHA-1 / SHA-256: FIPS 180 vectors ----------------------------------------
TEST(Sha1, Fips180Vectors) {
  EXPECT_EQ(Sha1::hash(sv("")).hex(),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(Sha1::hash(sv("abc")).hex(),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(Sha1::hash(sv("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmno"
                          "mnopnopq"))
                .hex(),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha256, Fips180Vectors) {
  EXPECT_EQ(Sha256::hash(sv("")).hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(Sha256::hash(sv("abc")).hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(Sha256::hash(sv("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmn"
                            "omnopnopq"))
                .hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) {
    h.update(sv(chunk));
  }
  EXPECT_EQ(h.finish().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// ---- CRC32 ----------------------------------------------------------------------
TEST(Crc32, KnownValues) {
  EXPECT_EQ(crc32(sv("")), 0x00000000u);
  EXPECT_EQ(crc32(sv("123456789")), 0xCBF43926u);  // the classic check value
  EXPECT_EQ(crc32(sv("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32, SeedChaining) {
  const std::string all = "hello world";
  const std::uint32_t direct = crc32(sv(all));
  const std::uint32_t first = crc32(sv("hello "));
  const std::uint32_t chained = crc32(sv("world"), first);
  EXPECT_EQ(chained, direct);
}

// ---- streaming == one-shot across chunkings (property) --------------------------
class ChunkedHashing : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChunkedHashing, Md5StreamEqualsOneShot) {
  const std::size_t chunk = GetParam();
  Xoshiro256 rng(7);
  Bytes data(3000);
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(rng.next());
  }
  Md5 streaming;
  for (std::size_t off = 0; off < data.size(); off += chunk) {
    const std::size_t take = std::min(chunk, data.size() - off);
    streaming.update(ByteView(data).subspan(off, take));
  }
  EXPECT_EQ(streaming.finish(), Md5::hash(data));
}

TEST_P(ChunkedHashing, Sha256StreamEqualsOneShot) {
  const std::size_t chunk = GetParam();
  Xoshiro256 rng(8);
  Bytes data(3000);
  for (auto& b : data) {
    b = static_cast<std::uint8_t>(rng.next());
  }
  Sha256 streaming;
  for (std::size_t off = 0; off < data.size(); off += chunk) {
    const std::size_t take = std::min(chunk, data.size() - off);
    streaming.update(ByteView(data).subspan(off, take));
  }
  EXPECT_EQ(streaming.finish(), Sha256::hash(data));
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, ChunkedHashing,
                         ::testing::Values(1, 3, 7, 63, 64, 65, 127, 128, 513,
                                           3000));

// ---- padding boundaries (the classic 55/56/57 and 63/64/65 cases) ----------------
class PaddingBoundary : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PaddingBoundary, FinishResetsAndRepeats) {
  const Bytes data(GetParam(), 0xAB);
  Md5 h;
  h.update(data);
  const Digest first = h.finish();
  // The hasher must be reusable after finish().
  h.update(data);
  EXPECT_EQ(h.finish(), first);
  EXPECT_EQ(first, Md5::hash(data));
}

INSTANTIATE_TEST_SUITE_P(Lengths, PaddingBoundary,
                         ::testing::Values(0, 1, 55, 56, 57, 63, 64, 65, 119,
                                           120, 121, 128));

// ---- Digest value type -------------------------------------------------------------
TEST(Digest, HexRoundTrip) {
  const Digest d = Md5::hash(sv("abc"));
  EXPECT_EQ(Digest::from_hex(d.hex()), d);
}

TEST(Digest, FromHexRejectsBadInput) {
  EXPECT_THROW(Digest::from_hex("abc"), FormatError);    // odd length
  EXPECT_THROW(Digest::from_hex("zz"), FormatError);     // non-hex
  EXPECT_THROW(Digest::from_hex(std::string(70, 'a')), FormatError);  // long
}

TEST(Digest, ComparesByContentAndSize) {
  const Digest a = Md5::hash(sv("x"));
  const Digest b = Md5::hash(sv("y"));
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Md5::hash(sv("x")));
  // Different algorithms produce different-size digests that never compare
  // equal.
  EXPECT_NE(Md5::hash(sv("x")), Sha256::hash(sv("x")));
}

TEST(Digest, OrderingIsStrictWeak) {
  const Digest a = Md5::hash(sv("a"));
  const Digest b = Md5::hash(sv("b"));
  EXPECT_TRUE((a < b) != (b < a) || a == b);
  EXPECT_FALSE(a < a);
}

TEST(Digest, EmptyDigest) {
  const Digest d;
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.hex(), "");
  EXPECT_EQ(d.size(), 0u);
}

// ---- hasher facade -----------------------------------------------------------------
TEST(Hasher, FactoryDispatchesCorrectAlgorithm) {
  EXPECT_EQ(hash_bytes(HashAlgorithm::kMd5, sv("abc")).size(), 16u);
  EXPECT_EQ(hash_bytes(HashAlgorithm::kSha1, sv("abc")).size(), 20u);
  EXPECT_EQ(hash_bytes(HashAlgorithm::kSha256, sv("abc")).size(), 32u);
  EXPECT_EQ(hash_bytes(HashAlgorithm::kMd5, sv("abc")),
            Md5::hash(sv("abc")));
}

TEST(Hasher, ParseNames) {
  EXPECT_EQ(parse_hash_algorithm("md5"), HashAlgorithm::kMd5);
  EXPECT_EQ(parse_hash_algorithm("sha1"), HashAlgorithm::kSha1);
  EXPECT_EQ(parse_hash_algorithm("sha256"), HashAlgorithm::kSha256);
  EXPECT_THROW(parse_hash_algorithm("sha512"), InvalidArgument);
  EXPECT_EQ(to_string(HashAlgorithm::kSha256), "sha256");
}

TEST(Hasher, StreamingFacade) {
  auto hasher = make_hasher(HashAlgorithm::kSha1);
  hasher->update(sv("ab"));
  hasher->update(sv("c"));
  EXPECT_EQ(hasher->finish(), Sha1::hash(sv("abc")));
}

// ---- avalanche property: single-bit flips change the digest ------------------------
TEST(Md5, SingleBitFlipChangesDigest) {
  Bytes data(256, 0x5A);
  const Digest base = Md5::hash(data);
  for (const std::size_t byte : {std::size_t{0}, std::size_t{100},
                                 std::size_t{255}}) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutated = data;
      mutated[byte] = static_cast<std::uint8_t>(mutated[byte] ^ (1u << bit));
      EXPECT_NE(Md5::hash(mutated), base)
          << "byte " << byte << " bit " << bit;
    }
  }
}

}  // namespace
