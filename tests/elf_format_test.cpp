// ELF64 format layer: struct (de)serialization round-trips, the KoBuilder
// → ElfImage walk, Algorithm-1 item extraction, the insmod-style loader's
// relocation math, and the plugin's detect/extract surface — plus the
// pairwise fixup normalization that makes two differently-based loads of
// the same .ko hash-identical again.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cloud/linux.hpp"
#include "elf/builder.hpp"
#include "elf/constants.hpp"
#include "elf/loader.hpp"
#include "elf/parser.hpp"
#include "elf/structs.hpp"
#include "modchecker/format.hpp"
#include "modchecker/rva_adjust.hpp"
#include "util/error.hpp"

namespace {

using namespace mc;
using namespace mc::elf;

Bytes tiny_ko() {
  KoBuilder builder("tiny");
  Bytes text(0x100, 0x90);
  for (std::size_t i = 0x40; i < 0x48; ++i) {
    text[i] = 0;  // the 8-byte fixup slot
  }
  builder.add_section(".text", std::move(text), kShfAlloc | kShfExecinstr);
  builder.add_section(".rodata", Bytes(0x40, 0x52), kShfAlloc);
  builder.add_section(".data", Bytes(0x20, 0x44), kShfAlloc | kShfWrite);
  builder.add_symbol("init_module", ".text", 0x10);
  builder.add_rela(".text", 0x40, kRX8664_64, "init_module", 0x8);
  return builder.build();
}

// ---- structs ----------------------------------------------------------------

TEST(ElfStructs, EhdrRoundTrips) {
  Elf64Ehdr ehdr;
  ehdr.e_shoff = 0x1234;
  ehdr.e_shnum = 7;
  ehdr.e_shstrndx = 6;
  Bytes out;
  ehdr.serialize(out);
  ASSERT_EQ(out.size(), kEhdrSize);
  const Elf64Ehdr back = Elf64Ehdr::parse(ByteView(out));
  EXPECT_TRUE(back.magic_ok());
  EXPECT_EQ(back.e_type, kEtRel);
  EXPECT_EQ(back.e_machine, kEmX8664);
  EXPECT_EQ(back.e_shoff, 0x1234u);
  EXPECT_EQ(back.e_shnum, 7u);
  EXPECT_EQ(back.e_shstrndx, 6u);
}

TEST(ElfStructs, ShdrSymRelaRoundTrip) {
  Elf64Shdr sh;
  sh.sh_name = 11;
  sh.sh_type = kShtProgbits;
  sh.sh_flags = kShfAlloc | kShfExecinstr;
  sh.sh_addr = 0x40;
  sh.sh_offset = 0x40;
  sh.sh_size = 0x100;
  Bytes out;
  sh.serialize(out);
  ASSERT_EQ(out.size(), kShdrSize);
  const Elf64Shdr sh2 = Elf64Shdr::parse(ByteView(out), 0);
  EXPECT_TRUE(sh2.is_code());
  EXPECT_TRUE(sh2.is_alloc());
  EXPECT_FALSE(sh2.is_writable());
  EXPECT_EQ(sh2.sh_size, 0x100u);

  Elf64Sym sym;
  sym.st_name = 1;
  sym.st_info = elf_st_info(kStbGlobal, kSttFunc);
  sym.st_shndx = 1;
  sym.st_value = 0x10;
  out.clear();
  sym.serialize(out);
  ASSERT_EQ(out.size(), kSymSize);
  const Elf64Sym sym2 = Elf64Sym::parse(ByteView(out), 0);
  EXPECT_EQ(sym2.st_value, 0x10u);
  EXPECT_EQ(sym2.st_shndx, 1u);

  Elf64Rela rela;
  rela.r_offset = 0x40;
  rela.r_info = Elf64Rela::make_info(3, kRX8664_64);
  rela.r_addend = -8;
  out.clear();
  rela.serialize(out);
  ASSERT_EQ(out.size(), kRelaSize);
  const Elf64Rela rela2 = Elf64Rela::parse(ByteView(out), 0);
  EXPECT_EQ(rela2.symbol(), 3u);
  EXPECT_EQ(rela2.type(), kRX8664_64);
  EXPECT_EQ(rela2.r_addend, -8);
}

// ---- builder → parser -------------------------------------------------------

TEST(ElfBuilder, BuildsParsableMappedImage) {
  const Bytes ko = tiny_ko();
  const ElfImage image{ByteView(ko)};

  EXPECT_TRUE(image.header().magic_ok());
  // [0]=null, .text, .rodata, .data, .rela.text, .symtab, .strtab, .shstrtab
  ASSERT_EQ(image.sections().size(), 8u);
  const Elf64Shdr* text = image.find_section(".text");
  ASSERT_NE(text, nullptr);
  EXPECT_TRUE(text->is_code());
  EXPECT_EQ(text->sh_addr, text->sh_offset);  // mapped layout
  EXPECT_EQ(text->sh_size, 0x100u);

  const Elf64Shdr* rela = image.find_section(".rela.text");
  ASSERT_NE(rela, nullptr);
  EXPECT_EQ(rela->sh_type, kShtRela);
  EXPECT_EQ(rela->sh_size, kRelaSize);

  EXPECT_NE(image.find_section(".symtab"), nullptr);
  EXPECT_NE(image.find_section(".shstrtab"), nullptr);
  EXPECT_EQ(image.find_section(".missing"), nullptr);
}

TEST(ElfParser, IntegrityCheckedSetExcludesWritableAndNobits) {
  Elf64Shdr sh;
  sh.sh_type = kShtProgbits;
  sh.sh_flags = kShfAlloc;
  EXPECT_TRUE(is_integrity_checked_section(sh));
  sh.sh_flags = kShfAlloc | kShfWrite;
  EXPECT_FALSE(is_integrity_checked_section(sh));
  sh.sh_flags = 0;  // not resident
  EXPECT_FALSE(is_integrity_checked_section(sh));
  sh.sh_flags = kShfAlloc;
  sh.sh_type = kShtNobits;
  EXPECT_FALSE(is_integrity_checked_section(sh));
}

TEST(ElfParser, ExtractItemsDecomposesHeadersAndReadOnlySections) {
  const Bytes ko = tiny_ko();
  const ElfImage image{ByteView(ko)};
  const auto items = image.extract_items(ByteView(ko));

  ASSERT_FALSE(items.empty());
  EXPECT_EQ(items[0].kind, core::ItemKind::kElfHeader);
  EXPECT_EQ(items[0].name, "ELF64_EHDR");
  EXPECT_EQ(items[0].bytes.size(), kEhdrSize);

  std::size_t shdr_items = 0;
  bool saw_text = false, saw_data = false, saw_rela = false;
  for (const auto& item : items) {
    if (item.kind == core::ItemKind::kElfSectionHeader) {
      ++shdr_items;
    }
    if (item.kind == core::ItemKind::kSectionData) {
      if (item.name == ".text") {
        saw_text = true;
        EXPECT_TRUE(item.rva_sensitive);  // holds absolute fixups
        EXPECT_EQ(item.bytes.size(), 0x100u);
      }
      if (item.name == ".rela.text") {
        saw_rela = true;
        EXPECT_FALSE(item.rva_sensitive);  // section-relative content
      }
      saw_data |= item.name == ".data";
    }
  }
  EXPECT_EQ(shdr_items, image.sections().size());
  EXPECT_TRUE(saw_text);
  EXPECT_TRUE(saw_rela);
  EXPECT_FALSE(saw_data);  // writable — excluded from checking
}

TEST(ElfParser, MalformedImagesThrowFormatError) {
  const Bytes ko = tiny_ko();
  EXPECT_THROW(ElfImage{ByteView(ko).first(32)}, FormatError);

  Bytes bad_magic = ko;
  bad_magic[0] = 'M';
  EXPECT_THROW(ElfImage{ByteView(bad_magic)}, FormatError);

  Bytes bad_shoff = ko;
  // e_shoff lives at offset 0x28; point it past the image.
  store_le64(MutableByteView(bad_shoff), 0x28, ko.size() + 64);
  EXPECT_THROW(ElfImage{ByteView(bad_shoff)}, FormatError);
}

// ---- loader -----------------------------------------------------------------

TEST(ElfLoader, PatchesAbsoluteSlotWithBiasedAddress) {
  const Bytes ko = tiny_ko();
  const std::uint32_t base = 0xF8400000u;
  const Bytes loaded = load_ko(ByteView(ko), base);
  ASSERT_EQ(loaded.size(), ko.size());

  const ElfImage image{ByteView(ko)};
  const Elf64Shdr* text = image.find_section(".text");
  ASSERT_NE(text, nullptr);
  // Symbol init_module = .text+0x10, addend 0x8, slot at .text+0x40.
  const std::uint64_t expected =
      kKernelBias | (base + text->sh_addr + 0x10 + 0x8);
  const std::uint64_t stored =
      load_le64(ByteView(loaded), static_cast<std::size_t>(text->sh_offset) + 0x40);
  EXPECT_EQ(stored, expected);

  // Nothing outside the slot moved.
  for (std::size_t i = 0; i < loaded.size(); ++i) {
    const std::size_t slot = static_cast<std::size_t>(text->sh_offset) + 0x40;
    if (i < slot || i >= slot + 8) {
      EXPECT_EQ(loaded[i], ko[i]) << i;
    }
  }
}

TEST(ElfLoader, TwoBasesNormalizeToIdenticalText) {
  const cloud::KoSpec spec = cloud::default_ko_catalog().front();
  const Bytes ko = cloud::build_ko_image(spec);
  const Bytes a = load_ko(ByteView(ko), 0xF8400000u);
  const Bytes b = load_ko(ByteView(ko), 0xFA7F3000u);
  EXPECT_NE(a, b);  // absolute fixups diverge with the base

  const ElfImage image{ByteView(ko)};
  const Elf64Shdr* text = image.find_section(".text");
  ASSERT_NE(text, nullptr);
  Bytes text_a = slice(ByteView(a), static_cast<std::size_t>(text->sh_offset),
                       static_cast<std::size_t>(text->sh_size));
  Bytes text_b = slice(ByteView(b), static_cast<std::size_t>(text->sh_offset),
                       static_cast<std::size_t>(text->sh_size));

  const core::FixupPolicy policy = core::elf64_format().fixup_policy();
  const auto result = core::adjust_fixups(
      MutableByteView(text_a), 0xF8400000u,
      MutableByteView(text_b), 0xFA7F3000u, policy);
  EXPECT_TRUE(result.sections_identical_after());
  EXPECT_EQ(result.adjusted, spec.abs64_fixups + spec.abs32s_fixups);
  EXPECT_EQ(text_a, text_b);  // Algorithm 2, ELF edition
}

TEST(ElfLoader, Pc32SlotsAreBaseInvariant) {
  // A call-style PC-relative reference: slot at .text+0x20 targeting
  // helper (.text+0x60) with the usual rel32 addend of -4.
  KoBuilder builder("pc32");
  Bytes text(0x80, 0x90);
  for (std::size_t i = 0x20; i < 0x24; ++i) {
    text[i] = 0;
  }
  builder.add_section(".text", std::move(text),
                      kShfAlloc | kShfExecinstr);
  builder.add_symbol("init_module", ".text", 0x10);
  builder.add_symbol("helper", ".text", 0x60);
  builder.add_rela(".text", 0x20, kRX8664_PC32, "helper", -4);
  const Bytes ko = builder.build();

  const Bytes a = load_ko(ByteView(ko), 0xF8400000u);
  const Bytes b = load_ko(ByteView(ko), 0xFA7F3000u);
  // S + A - P: the kernel bias and the load base cancel out of the
  // difference, so the two loads are byte-identical end to end — PC32
  // needs no normalization pass at all.
  EXPECT_EQ(a, b);

  const ElfImage image{ByteView(ko)};
  const Elf64Shdr* text_sh = image.find_section(".text");
  ASSERT_NE(text_sh, nullptr);
  // Layout-only displacement: (0x60 - 4) - 0x20 = 0x3C.
  const std::uint32_t stored = load_le32(
      ByteView(a), static_cast<std::size_t>(text_sh->sh_offset) + 0x20);
  EXPECT_EQ(stored, 0x3Cu);
}

TEST(ElfLoader, CatalogPc32SlotsNeedNoAdjustment) {
  // The default catalog now mixes PC-relative slots in with the absolute
  // ones; the normalization pass must adjust exactly the absolute slots
  // (the PC32 slots already agree across bases).
  const cloud::KoSpec spec = cloud::default_ko_catalog().front();
  ASSERT_GT(spec.pc32_fixups, 0u);
  const Bytes ko = cloud::build_ko_image(spec);
  const Bytes a = load_ko(ByteView(ko), 0xF8400000u);
  const Bytes b = load_ko(ByteView(ko), 0xFA7F3000u);

  const ElfImage image{ByteView(ko)};
  const Elf64Shdr* text = image.find_section(".text");
  ASSERT_NE(text, nullptr);
  Bytes text_a = slice(ByteView(a), static_cast<std::size_t>(text->sh_offset),
                       static_cast<std::size_t>(text->sh_size));
  Bytes text_b = slice(ByteView(b), static_cast<std::size_t>(text->sh_offset),
                       static_cast<std::size_t>(text->sh_size));
  const core::FixupPolicy policy = core::elf64_format().fixup_policy();
  const auto result = core::adjust_fixups(
      MutableByteView(text_a), 0xF8400000u,
      MutableByteView(text_b), 0xFA7F3000u, policy);
  EXPECT_TRUE(result.sections_identical_after());
  EXPECT_EQ(result.adjusted, spec.abs64_fixups + spec.abs32s_fixups);
  EXPECT_EQ(text_a, text_b);
}

TEST(ElfLoader, Abs32SlotRejectsUnrepresentableAddress) {
  KoBuilder builder("bad32s");
  Bytes text(0x40, 0x90);
  builder.add_section(".text", std::move(text), kShfAlloc | kShfExecinstr);
  builder.add_symbol("init_module", ".text", 0);
  builder.add_rela(".text", 0x10, kRX8664_32S, "init_module", 0);
  const Bytes ko = builder.build();
  // 32S stores the sign-extended low 32 bits; a kernel-biased address is
  // representable, so this must load fine at a normal module base.
  EXPECT_NO_THROW(load_ko(ByteView(ko), 0xF8400000u));
}

// ---- plugin surface ---------------------------------------------------------

TEST(ElfPlugin, DetectRequiresMagicClassAndEncoding) {
  const Bytes ko = tiny_ko();
  EXPECT_TRUE(core::elf64_format().detect(ByteView(ko).first(16)));

  Bytes wrong_class = ko;
  wrong_class[kEiClass] = 1;  // ELFCLASS32
  EXPECT_FALSE(core::elf64_format().detect(ByteView(wrong_class).first(16)));

  Bytes wrong_endian = ko;
  wrong_endian[kEiData] = 2;  // big-endian
  EXPECT_FALSE(core::elf64_format().detect(ByteView(wrong_endian).first(16)));

  const Bytes mz = {'M', 'Z', 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(core::elf64_format().detect(ByteView(mz)));
}

TEST(ElfPlugin, ExtractItemsMatchesDirectParserWalk) {
  const Bytes ko = tiny_ko();
  core::ModuleImage module;
  module.name = "tiny.ko";
  module.bytes = ko;
  const auto plugin_items = core::elf64_format().extract_items(module);
  const auto direct_items = ElfImage{ByteView(ko)}.extract_items(ByteView(ko));
  ASSERT_EQ(plugin_items.size(), direct_items.size());
  for (std::size_t i = 0; i < plugin_items.size(); ++i) {
    EXPECT_EQ(plugin_items[i].name, direct_items[i].name) << i;
    EXPECT_EQ(plugin_items[i].bytes, direct_items[i].bytes) << i;
  }
}

}  // namespace
