// Tests for the late-stage extensions: Pioneer-style baseline, the CRC32
// prefilter, string extraction, forensic context strings, and a per-driver
// invariant sweep over the whole catalog.
#include <gtest/gtest.h>

#include <memory>

#include "attacks/inline_hook.hpp"
#include "attacks/stub_patch.hpp"
#include "baselines/pioneer_style.hpp"
#include "cloud/catalog.hpp"
#include "cloud/environment.hpp"
#include "modchecker/forensics.hpp"
#include "modchecker/modchecker.hpp"
#include "modchecker/parser.hpp"
#include "modchecker/searcher.hpp"
#include "pe/strings.hpp"
#include "pe/validate.hpp"
#include "util/utf16.hpp"
#include "vmi/session.hpp"

namespace {

using namespace mc;
using namespace mc::core;

std::unique_ptr<cloud::CloudEnvironment> make_env(std::size_t guests) {
  cloud::CloudConfig cfg;
  cfg.guest_count = guests;
  return std::make_unique<cloud::CloudEnvironment>(cfg);
}

// ---- Pioneer-style baseline ------------------------------------------------------
TEST(Pioneer, CleanModulePassesChallenge) {
  auto env = make_env(2);
  const baselines::PioneerStyleChecker pioneer(env->golden().all());
  for (const auto& module : env->config().load_order) {
    const auto out = pioneer.check(*env, env->guests()[0], module);
    EXPECT_FALSE(out.flagged) << module << ": " << out.detail;
  }
}

TEST(Pioneer, InfectedCodeFailsChecksum) {
  auto env = make_env(2);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[0], "hal.dll");
  const baselines::PioneerStyleChecker pioneer(env->golden().all());
  const auto out = pioneer.check(*env, env->guests()[0], "hal.dll");
  EXPECT_TRUE(out.flagged);
  EXPECT_NE(out.detail.find("mismatch"), std::string::npos);
}

TEST(Pioneer, EvasionBustsTheDeadline) {
  auto env = make_env(2);
  const baselines::PioneerStyleChecker pioneer(env->golden().all());
  const auto out =
      pioneer.check_with_evasion(*env, env->guests()[0], "hal.dll");
  EXPECT_TRUE(out.flagged);
  EXPECT_NE(out.detail.find("deadline"), std::string::npos);
}

TEST(Pioneer, LaxParametersLetEvasionThrough) {
  auto env = make_env(2);
  baselines::PioneerParams lax;
  lax.deadline_slack = 2.0;  // sloppier than the evasion overhead (1.6x)
  const baselines::PioneerStyleChecker pioneer(env->golden().all(), lax);
  const auto out =
      pioneer.check_with_evasion(*env, env->guests()[0], "hal.dll");
  EXPECT_FALSE(out.flagged);
}

TEST(Pioneer, NeedsTrustedCopy) {
  auto env = make_env(2);
  const baselines::PioneerStyleChecker pioneer({});
  EXPECT_TRUE(pioneer.check(*env, env->guests()[0], "hal.dll").flagged);
}

// ---- CRC prefilter -----------------------------------------------------------------
TEST(CrcPrefilter, VerdictsIdenticalCostLower) {
  auto env = make_env(6);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[2], "hal.dll");

  ModCheckerConfig plain_cfg;
  ModCheckerConfig fast_cfg;
  fast_cfg.crc_prefilter = true;
  ModChecker plain(env->hypervisor(), plain_cfg);
  ModChecker fast(env->hypervisor(), fast_cfg);

  for (const auto vm : env->guests()) {
    const auto a = plain.check_module(vm, "hal.dll");
    const auto b = fast.check_module(vm, "hal.dll");
    EXPECT_EQ(a.subject_clean, b.subject_clean) << "Dom" << vm;
    EXPECT_EQ(a.successes, b.successes);
    EXPECT_EQ(a.flagged_items, b.flagged_items);
    if (vm == env->guests()[2]) {
      // The infected subject mismatches everyone: the prefilter pays the
      // CRC on top of the full digest, so it may cost slightly MORE.
      EXPECT_LE(static_cast<double>(b.cpu_times.checker),
                1.3 * static_cast<double>(a.cpu_times.checker));
    } else {
      // Clean subjects match most peers: the prefilter must win.
      EXPECT_LT(b.cpu_times.checker, a.cpu_times.checker) << "Dom" << vm;
    }
  }
}

TEST(CrcPrefilter, MismatchStillCarriesDigestEvidence) {
  auto env = make_env(3);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[0], "hal.dll");
  ModCheckerConfig cfg;
  cfg.crc_prefilter = true;
  ModChecker checker(env->hypervisor(), cfg);
  const auto report = checker.check_module(env->guests()[0], "hal.dll");
  for (const auto& pair : report.comparisons) {
    for (const auto& item : pair.items) {
      if (!item.match) {
        // Fallback to the full digest happened: evidence present.
        EXPECT_FALSE(item.digest_subject.empty()) << item.item_name;
        EXPECT_FALSE(item.digest_other.empty());
      }
    }
  }
}

// ---- string extraction -----------------------------------------------------------------
TEST(Strings, AsciiExtraction) {
  const std::string raw = std::string("\x01\x02") + "Hello, driver!" +
                          '\0' + "ok" + '\0' + "another string";
  const ByteView data(reinterpret_cast<const std::uint8_t*>(raw.data()),
                      raw.size());
  const auto strings = pe::extract_ascii_strings(data, 5);
  ASSERT_EQ(strings.size(), 2u);
  EXPECT_EQ(strings[0].text, "Hello, driver!");
  EXPECT_EQ(strings[0].offset, 2u);
  EXPECT_EQ(strings[1].text, "another string");
}

TEST(Strings, Utf16Extraction) {
  const Bytes data = ascii_to_utf16le("BaseDllName.dll");
  const auto strings = pe::extract_utf16_strings(data, 5);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0].text, "BaseDllName.dll");
  EXPECT_EQ(strings[0].offset, 0u);
}

TEST(Strings, NearLookup) {
  std::string raw(200, '\x01');
  const std::string text = "This program cannot be run in DOS mode.";
  raw.replace(100, text.size(), text);
  const ByteView data(reinterpret_cast<const std::uint8_t*>(raw.data()),
                      raw.size());
  EXPECT_EQ(pe::string_near(data, 110), text);  // inside the string
  EXPECT_EQ(pe::string_near(data, 90), text);   // 10 bytes before
  EXPECT_EQ(pe::string_near(data, 10), "");     // too far
}

TEST(Strings, ForensicContextForStubPatch) {
  auto env = make_env(3);
  attacks::StubPatchAttack{}.apply(*env, env->guests()[0], "dummy.sys");

  SimClock clock;
  vmi::VmiSession vs(env->hypervisor(), env->guests()[0], clock);
  vmi::VmiSession rs(env->hypervisor(), env->guests()[1], clock);
  const ModuleParser parser;
  const auto sub =
      parser.parse(*ModuleSearcher(vs).extract_module("dummy.sys"), clock);
  const auto ref =
      parser.parse(*ModuleSearcher(rs).extract_module("dummy.sys"), clock);
  const auto report = analyze_divergence(sub, ref, "IMAGE_DOS_HEADER");
  EXPECT_EQ(report.classification, DivergenceClass::kHeaderField);
  EXPECT_NE(report.context_string.find("cannot be run in CHK mode"),
            std::string::npos)
      << report.context_string;
}

// ---- per-driver catalog sweep -------------------------------------------------------------
class DriverSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(DriverSweep, GoldenImageInvariants) {
  const std::string driver = GetParam();
  static const cloud::GoldenImages golden(cloud::default_catalog());
  const Bytes& file = golden.file(driver);

  // Valid per the deep validator.
  const auto validation = pe::validate_image_file(file);
  EXPECT_TRUE(validation.ok()) << pe::format_validation_report(validation);

  // Loads, checks clean across a 3-VM pool, and its extraction through
  // introspection matches the loader's record.
  cloud::CloudConfig cfg;
  cfg.guest_count = 3;
  cloud::CloudEnvironment env(cfg);
  ModChecker checker(env.hypervisor());
  const auto report = checker.check_module(env.guests()[0], driver);
  EXPECT_TRUE(report.subject_clean) << driver;
  EXPECT_EQ(report.successes, 2u);
}

INSTANTIATE_TEST_SUITE_P(Catalog, DriverSweep,
                         ::testing::Values("ntoskrnl.exe", "hal.dll",
                                           "ndis.sys", "tcpip.sys",
                                           "http.sys", "ntfs.sys",
                                           "dummy.sys"));

}  // namespace
