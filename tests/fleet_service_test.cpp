// FleetService + SweepQueue: scheduling order, cancellation (pending,
// in-flight, and recurring), graceful drain vs fast stop, sink fan-out and
// the SweepReport JSON surface.  Runs under the tsan ctest label — the
// service's worker threads, per-pool serialization and queue hand-off must
// be clean under ThreadSanitizer, not just correct single-threaded.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "attacks/inline_hook.hpp"
#include "cloud/environment.hpp"
#include "service/fleet.hpp"

namespace {

using namespace mc;
using namespace mc::service;

std::unique_ptr<cloud::CloudEnvironment> make_env(std::size_t guests) {
  cloud::CloudConfig cfg;
  cfg.guest_count = guests;
  return std::make_unique<cloud::CloudEnvironment>(cfg);
}

SweepSpec spec(std::string name, std::size_t pool,
               std::vector<std::string> modules, int priority = 0) {
  SweepSpec s;
  s.name = std::move(name);
  s.pool_index = pool;
  s.modules = std::move(modules);
  s.priority = priority;
  return s;
}

// ---- SweepQueue unit ----------------------------------------------------------

QueuedSweep queued(SweepId id, int priority, SimNanos due = 0) {
  QueuedSweep q;
  q.id = id;
  q.spec.priority = priority;
  q.due = due;
  return q;
}

TEST(SweepQueue, PriorityThenDueThenFifo) {
  SweepQueue q;
  EXPECT_TRUE(q.push(queued(1, 0)));
  EXPECT_TRUE(q.push(queued(2, 5)));
  EXPECT_TRUE(q.push(queued(3, 5, /*due=*/sim_ms(10))));
  EXPECT_TRUE(q.push(queued(4, 5)));  // same prio+due as 2 → after it
  EXPECT_EQ(q.pending(), 4u);

  EXPECT_EQ(q.pop()->id, 2u);  // highest priority, earliest due, first in
  EXPECT_EQ(q.pop()->id, 4u);  // FIFO within (priority, due)
  EXPECT_EQ(q.pop()->id, 3u);  // later due
  EXPECT_EQ(q.pop()->id, 1u);  // lowest priority last
}

TEST(SweepQueue, CancelStrikesPendingAndMarksId) {
  SweepQueue q;
  q.push(queued(1, 0));
  q.push(queued(2, 0));
  EXPECT_TRUE(q.cancel(1));
  EXPECT_TRUE(q.is_cancelled(1));
  EXPECT_FALSE(q.is_cancelled(2));
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_FALSE(q.cancel(7));  // nothing pending under that id
  EXPECT_FALSE(q.push(queued(1, 0)));  // cancelled ids stay refused
  EXPECT_EQ(q.pop()->id, 2u);
}

TEST(SweepQueue, CloseDrainsBacklogThenStops) {
  SweepQueue q;
  q.push(queued(1, 0));
  q.push(queued(2, 1));
  q.close();
  EXPECT_FALSE(q.push(queued(3, 9)));  // refused after close
  EXPECT_EQ(q.pop()->id, 2u);          // backlog still handed out
  q.done();
  EXPECT_EQ(q.pop()->id, 1u);
  q.done();
  EXPECT_FALSE(q.pop().has_value());  // closed and empty
}

TEST(SweepQueue, ClearReportsDropped) {
  SweepQueue q;
  q.push(queued(1, 0));
  q.push(queued(2, 0));
  EXPECT_EQ(q.clear(), 2u);
  EXPECT_EQ(q.pending(), 0u);
}

// ---- FleetService scheduling --------------------------------------------------

TEST(FleetService, PriorityOrderingObservableWithOneWorker) {
  auto env = make_env(4);
  FleetService fleet({/*workers=*/1});
  const std::size_t pool = fleet.add_pool(env->hypervisor(), env->guests());
  auto ring = std::make_shared<RingSink>();
  fleet.add_sink(ring);

  // Submitted low-priority first; the high-priority sweep must still run
  // first once the (single) worker starts.
  fleet.submit(spec("background", pool, {"ntfs.sys"}, 0));
  fleet.submit(spec("urgent", pool, {"hal.dll"}, 10));
  fleet.submit(spec("routine", pool, {"http.sys"}, 5));
  fleet.start();
  fleet.drain();

  const auto reports = ring->snapshot();
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[0].name, "urgent");
  EXPECT_EQ(reports[1].name, "routine");
  EXPECT_EQ(reports[2].name, "background");
  EXPECT_EQ(fleet.stats().completed_runs, 3u);
}

TEST(FleetService, EqualPriorityRunsFifo) {
  auto env = make_env(4);
  FleetService fleet({/*workers=*/1});
  const std::size_t pool = fleet.add_pool(env->hypervisor(), env->guests());
  auto ring = std::make_shared<RingSink>();
  fleet.add_sink(ring);
  for (const char* name : {"a", "b", "c"}) {
    fleet.submit(spec(name, pool, {"hal.dll"}, 3));
  }
  fleet.start();
  fleet.drain();
  const auto reports = ring->snapshot();
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[0].name, "a");
  EXPECT_EQ(reports[1].name, "b");
  EXPECT_EQ(reports[2].name, "c");
}

TEST(FleetService, FindingsSurfaceInfectedVm) {
  auto env = make_env(5);
  const vmm::DomainId infected = env->guests()[2];
  attacks::InlineHookAttack{}.apply(*env, infected, "hal.dll");

  FleetService fleet({/*workers=*/2});
  const std::size_t pool = fleet.add_pool(env->hypervisor(), env->guests());
  auto ring = std::make_shared<RingSink>();
  fleet.add_sink(ring);
  fleet.submit(spec("audit", pool, {"hal.dll", "ntfs.sys"}));
  fleet.start();
  fleet.drain();

  const auto reports = ring->snapshot();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].scans.size(), 2u);
  ASSERT_EQ(reports[0].findings.size(), 1u);
  EXPECT_EQ(reports[0].findings[0].module, "hal.dll");
  EXPECT_EQ(reports[0].findings[0].vm, infected);
  EXPECT_GT(reports[0].wall_time, 0u);
}

// ---- cancellation -------------------------------------------------------------

TEST(FleetService, CancelPendingBeforeStart) {
  auto env = make_env(4);
  FleetService fleet({/*workers=*/1});
  const std::size_t pool = fleet.add_pool(env->hypervisor(), env->guests());
  auto ring = std::make_shared<RingSink>();
  fleet.add_sink(ring);
  fleet.submit(spec("keep", pool, {"hal.dll"}));
  const SweepId doomed = fleet.submit(spec("doomed", pool, {"ntfs.sys"}));
  ASSERT_NE(doomed, 0u);
  EXPECT_TRUE(fleet.cancel(doomed));
  fleet.start();
  fleet.drain();

  const auto reports = ring->snapshot();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].name, "keep");
  EXPECT_EQ(fleet.stats().dropped_pending, 1u);
  EXPECT_EQ(fleet.stats().cancelled_runs, 0u);
}

TEST(FleetService, CancelMidSweepStopsBeforeNextModule) {
  auto env = make_env(4);
  FleetService fleet({/*workers=*/1});
  const std::size_t pool = fleet.add_pool(env->hypervisor(), env->guests());
  auto ring = std::make_shared<RingSink>();
  fleet.add_sink(ring);

  // The hook fires before each module scan — cancel the sweep from inside
  // its own first module, exactly the operator's "abort that" race.
  std::atomic<SweepId> target{0};
  FleetService* fleet_ptr = &fleet;
  fleet.set_module_hook([&target, fleet_ptr](SweepId id, std::size_t,
                                             const std::string& module) {
    if (id == target.load() && module == "hal.dll") {
      fleet_ptr->cancel(id);
    }
  });
  const SweepId id =
      fleet.submit(spec("aborted", pool, {"hal.dll", "ntfs.sys", "http.sys"}));
  target.store(id);
  fleet.start();
  fleet.drain();

  const auto reports = ring->snapshot();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_TRUE(reports[0].cancelled);
  // hal.dll was already being scanned when the cancel landed; the sweep
  // stopped before ntfs.sys.
  ASSERT_EQ(reports[0].scans.size(), 1u);
  EXPECT_EQ(reports[0].scans[0].module_name, "hal.dll");
  EXPECT_EQ(fleet.stats().cancelled_runs, 1u);
  EXPECT_EQ(fleet.stats().completed_runs, 0u);
}

TEST(FleetService, CancelStopsRecurrence) {
  auto env = make_env(4);
  FleetService fleet({/*workers=*/1});
  const std::size_t pool = fleet.add_pool(env->hypervisor(), env->guests());
  auto ring = std::make_shared<RingSink>();
  fleet.add_sink(ring);

  std::atomic<SweepId> target{0};
  FleetService* fleet_ptr = &fleet;
  fleet.set_module_hook(
      [&target, fleet_ptr](SweepId id, std::size_t run, const std::string&) {
        if (id == target.load() && run == 1) {
          fleet_ptr->cancel(id);  // after run 0 completed, during run 1
        }
      });
  SweepSpec recurring = spec("recurring", pool, {"hal.dll"});
  recurring.repeat = 5;
  recurring.cadence = sim_ms(100);
  target.store(fleet.submit(recurring));
  fleet.start();
  fleet.drain();

  // Run 0 completed; run 1's single module was already in flight when the
  // cancel landed, so it completed too — but its recurrence was refused.
  const auto reports = ring->snapshot();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].run_index, 0u);
  EXPECT_EQ(reports[1].run_index, 1u);
  EXPECT_EQ(fleet.stats().completed_runs, 2u);
}

// ---- recurrence, drain, stop --------------------------------------------------

TEST(FleetService, RecurringSweepRunsRepeatTimesOnCadence) {
  auto env = make_env(4);
  FleetService fleet({/*workers=*/2});
  const std::size_t pool = fleet.add_pool(env->hypervisor(), env->guests());
  auto ring = std::make_shared<RingSink>();
  fleet.add_sink(ring);
  SweepSpec recurring = spec("heartbeat", pool, {"hal.dll"});
  recurring.repeat = 3;
  recurring.cadence = sim_ms(250);
  fleet.submit(recurring);
  fleet.start();
  fleet.drain();  // waits for the whole finite repeat chain

  const auto reports = ring->snapshot();
  ASSERT_EQ(reports.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(reports[i].run_index, i);
    EXPECT_EQ(reports[i].due, i * sim_ms(250));
  }
  EXPECT_EQ(fleet.stats().completed_runs, 3u);
}

TEST(FleetService, SubmitAfterDrainIsRefused) {
  auto env = make_env(4);
  FleetService fleet({/*workers=*/1});
  const std::size_t pool = fleet.add_pool(env->hypervisor(), env->guests());
  fleet.start();
  fleet.drain();
  EXPECT_EQ(fleet.submit(spec("late", pool, {"hal.dll"})), 0u);
  EXPECT_EQ(fleet.stats().submitted, 0u);
}

TEST(FleetService, StopDropsBacklog) {
  auto env = make_env(4);
  FleetService fleet({/*workers=*/1});
  const std::size_t pool = fleet.add_pool(env->hypervisor(), env->guests());
  auto ring = std::make_shared<RingSink>();
  fleet.add_sink(ring);
  // Never started: everything submitted stays pending until stop().
  fleet.submit(spec("a", pool, {"hal.dll"}));
  fleet.submit(spec("b", pool, {"ntfs.sys"}));
  fleet.submit(spec("c", pool, {"http.sys"}));
  EXPECT_EQ(fleet.pending_sweeps(), 3u);
  fleet.stop();
  EXPECT_EQ(fleet.stats().dropped_pending, 3u);
  EXPECT_EQ(ring->total_seen(), 0u);
  EXPECT_EQ(fleet.submit(spec("late", pool, {"hal.dll"})), 0u);
}

// ---- multi-pool / multi-worker stress (the TSan target) -----------------------

TEST(FleetService, MultiPoolSweepsDrainCleanUnderContention) {
  auto env_a = make_env(4);
  // Pool b needs >= 4 VMs: with one infected copy among t=3, the clean
  // pair only reaches a 1-of-2 tie and the vote flags everyone.
  auto env_b = make_env(4);
  const vmm::DomainId infected = env_b->guests()[1];
  attacks::InlineHookAttack{}.apply(*env_b, infected, "hal.dll");

  FleetService fleet({/*workers=*/4});
  const std::size_t pool_a = fleet.add_pool(env_a->hypervisor(),
                                            env_a->guests());
  const std::size_t pool_b = fleet.add_pool(env_b->hypervisor(),
                                            env_b->guests());
  auto ring = std::make_shared<RingSink>();
  std::ostringstream json_out;
  auto json = std::make_shared<JsonLinesSink>(json_out);
  fleet.add_sink(ring);
  fleet.add_sink(json);
  fleet.start();  // submit *after* start: workers race the submissions

  const int kSweepsPerPool = 6;
  for (int i = 0; i < kSweepsPerPool; ++i) {
    fleet.submit(spec("a" + std::to_string(i), pool_a,
                      {"hal.dll", "ntfs.sys"}, i % 3));
    fleet.submit(spec("b" + std::to_string(i), pool_b, {"hal.dll"}, i % 3));
  }
  fleet.drain();

  EXPECT_EQ(ring->total_seen(), 2u * kSweepsPerPool);
  EXPECT_EQ(fleet.stats().completed_runs, 2u * kSweepsPerPool);
  EXPECT_EQ(fleet.stats().cancelled_runs, 0u);

  // Every pool-b sweep must flag the infected VM; pool-a stays silent.
  for (const auto& report : ring->snapshot()) {
    if (report.pool_index == pool_b) {
      ASSERT_EQ(report.findings.size(), 1u) << report.name;
      EXPECT_EQ(report.findings[0].vm, infected);
    } else {
      EXPECT_TRUE(report.findings.empty()) << report.name;
    }
  }
}

// ---- report JSON --------------------------------------------------------------

TEST(SweepReportJson, SchemaSubstrings) {
  auto env = make_env(4);
  attacks::InlineHookAttack{}.apply(*env, env->guests()[1], "hal.dll");
  FleetService fleet({/*workers=*/1});
  const std::size_t pool = fleet.add_pool(env->hypervisor(), env->guests());
  auto ring = std::make_shared<RingSink>();
  std::ostringstream out;
  auto json = std::make_shared<JsonLinesSink>(out);
  fleet.add_sink(ring);
  fleet.add_sink(json);
  fleet.submit(spec("jsoncheck", pool, {"hal.dll"}));
  fleet.start();
  fleet.drain();

  ASSERT_EQ(ring->snapshot().size(), 1u);
  const std::string line = to_json(ring->snapshot()[0]);
  for (const char* needle :
       {"\"sweep\":\"jsoncheck\"", "\"run\":0", "\"cancelled\":false",
        "\"findings\":[{\"module\":\"hal.dll\"", "\"scans\":[",
        // the embedded PoolScanReport schema, incl. the new diagnostics
        "\"verdicts\":[", "\"fastpath_pairs\":", "\"fallback_pairs\":",
        "\"cpu_ns\":"}) {
    EXPECT_NE(line.find(needle), std::string::npos) << needle << "\n" << line;
  }
  // The sink wrote exactly that line.
  EXPECT_EQ(out.str(), line + "\n");
}

TEST(RingSink, CapacityEvictsOldest) {
  RingSink ring(2);
  SweepReport r;
  for (std::uint64_t i = 1; i <= 3; ++i) {
    r.id = i;
    ring.on_sweep(r);
  }
  const auto kept = ring.snapshot();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].id, 2u);
  EXPECT_EQ(kept[1].id, 3u);
  EXPECT_EQ(ring.total_seen(), 3u);
}

}  // namespace
