// Tests for the x86 subset disassembler.
#include <gtest/gtest.h>

#include "x86/assembler.hpp"
#include "x86/codegen.hpp"
#include "x86/disasm.hpp"

namespace {

using namespace mc;
using namespace mc::x86;

TEST(Disasm, RendersPaperInstructions) {
  Assembler as;
  as.dec_ecx();
  as.sub_ecx_imm8(1);
  const auto insns = disassemble(as.code(), 0, 10);
  ASSERT_EQ(insns.size(), 2u);
  EXPECT_EQ(insns[0].text, "dec ecx");
  EXPECT_EQ(insns[1].text, "sub ecx, 0x1");
}

TEST(Disasm, RendersAddressOperands) {
  Assembler as;
  as.mov_eax_abs(0xF8CC2010);
  as.mov_abs_eax(0xF8CC2014);
  as.call_indirect_abs(0xF8003000);
  const auto insns = disassemble(as.code(), 0, 10);
  ASSERT_EQ(insns.size(), 3u);
  EXPECT_EQ(insns[0].text, "mov eax, [0xf8cc2010]");
  EXPECT_EQ(insns[1].text, "mov [0xf8cc2014], eax");
  EXPECT_EQ(insns[2].text, "call [0xf8003000]");
}

TEST(Disasm, ResolvesRelativeTargets) {
  Assembler as;
  as.nop();          // 0
  as.jmp_to(0x20);   // at 1, len 5
  as.call_to(0);     // at 6, len 5
  const auto insns = disassemble(as.code(), 0, 10);
  ASSERT_GE(insns.size(), 3u);
  EXPECT_EQ(insns[1].text, "jmp 0x20");
  EXPECT_EQ(insns[2].text, "call 0x0");
}

TEST(Disasm, ShortBranches) {
  Assembler as;
  as.jz_rel8(2);   // at 0: target 4
  as.jnz_rel8(-4); // at 2: target 0
  const auto insns = disassemble(as.code(), 0, 10);
  EXPECT_EQ(insns[0].text, "jz 0x4");
  EXPECT_EQ(insns[1].text, "jnz 0x0");
}

TEST(Disasm, MovRegisterNames) {
  Assembler as;
  as.mov_reg_imm32(Reg::kEbx, 0x10);
  as.mov_reg_imm32(Reg::kEsi, 0x20);
  const auto insns = disassemble(as.code(), 0, 2);
  EXPECT_EQ(insns[0].text, "mov ebx, 0x10");
  EXPECT_EQ(insns[1].text, "mov esi, 0x20");
}

TEST(Disasm, UnknownBytesBecomeDb) {
  const Bytes junk = {0x0F, 0x05};
  const auto insns = disassemble(junk, 0, 4);
  ASSERT_EQ(insns.size(), 2u);
  EXPECT_EQ(insns[0].text, "db 0x0f");
  EXPECT_EQ(insns[0].length, 1u);
}

TEST(Disasm, ListingFormat) {
  Assembler as;
  as.push_ebp();
  as.mov_ebp_esp();
  const std::string listing = format_listing(as.code(), 0, 2, 0xF8001000);
  EXPECT_NE(listing.find("f8001000"), std::string::npos);
  EXPECT_NE(listing.find("push ebp"), std::string::npos);
  EXPECT_NE(listing.find("55"), std::string::npos);
  EXPECT_NE(listing.find("mov ebp, esp"), std::string::npos);
}

TEST(Disasm, WholeGeneratedDriverDisassembles) {
  CodeGenParams params;
  params.seed = 3;
  params.function_count = 4;
  params.ops_per_function = 30;
  params.data_rva = 0x3000;
  const CodeBlob blob = generate_driver_text(params, 0x10000);
  // Disassembling from offset 0 must cover the whole blob without an
  // unbounded "db" tail (caves decode as add [eax], al pairs).
  const auto insns = disassemble(blob.code, 0, 100000);
  std::size_t covered = 0;
  for (const auto& insn : insns) {
    covered += insn.length;
  }
  EXPECT_EQ(covered, blob.code.size());
}

}  // namespace
