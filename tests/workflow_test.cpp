// End-to-end workflow tests: complete operator stories spanning several
// subsystems at once (the integration level above per-module suites).
#include <gtest/gtest.h>

#include <memory>

#include "attacks/hollowing.hpp"
#include "attacks/inline_hook.hpp"
#include "attacks/opcode_replace.hpp"
#include "attacks/version_spoof.hpp"
#include "baselines/lkim_style.hpp"
#include "cloud/environment.hpp"
#include "modchecker/audit.hpp"
#include "modchecker/forensics.hpp"
#include "modchecker/history.hpp"
#include "modchecker/modchecker.hpp"
#include "modchecker/parser.hpp"
#include "modchecker/scheduler.hpp"
#include "modchecker/searcher.hpp"
#include "modchecker/triage.hpp"
#include "vmi/dump.hpp"
#include "vmi/session.hpp"

namespace {

using namespace mc;
using namespace mc::core;

std::unique_ptr<cloud::CloudEnvironment> make_env(std::size_t guests) {
  cloud::CloudConfig cfg;
  cfg.guest_count = guests;
  return std::make_unique<cloud::CloudEnvironment>(cfg);
}

// Story 1: detect -> capture dump -> revert -> convict offline.
// (The paper's "revert to clean snapshot" must not destroy the evidence;
// memory forensics continues on the capture.)
TEST(Workflow, RevertThenConvictFromDump) {
  auto env = make_env(5);
  env->snapshot_all();
  const vmm::DomainId victim = env->guests()[1];
  attacks::InlineHookAttack{}.apply(*env, victim, "hal.dll");

  ModChecker checker(env->hypervisor());
  ASSERT_FALSE(checker.check_module(victim, "hal.dll").subject_clean);

  // Capture, then remediate immediately.
  const Bytes dump = vmi::dump_domain(env->hypervisor(), victim);
  env->revert(victim);
  ASSERT_TRUE(checker.check_module(victim, "hal.dll").subject_clean);

  // Offline: extract the module from the dump, compare against a live
  // clean VM, and produce the forensic classification.
  const vmi::DumpAnalysis analysis(dump);
  SimClock clock;
  vmi::VmiSession offline(analysis.hypervisor(), analysis.domain_id(),
                          clock);
  vmi::VmiSession live(env->hypervisor(), env->guests()[0], clock);
  const ModuleParser parser;
  const auto infected =
      parser.parse(*ModuleSearcher(offline).extract_module("hal.dll"),
                   clock);
  const auto reference =
      parser.parse(*ModuleSearcher(live).extract_module("hal.dll"), clock);

  const auto reports = analyze_all_flagged(infected, reference);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].item, ".text");
  EXPECT_EQ(reports[0].classification, DivergenceClass::kCodeInjection);
}

// Story 2: staged rollout triage — an acknowledged update stays quiet in
// the scheduler-driven pipeline while a real infection still alerts.
TEST(Workflow, TriagedUpdatePlusRealInfection) {
  auto env = make_env(6);

  // "Update" ntfs.sys on two VMs (staged rollout).
  auto spec = cloud::default_catalog()[5];
  ASSERT_EQ(spec.name, "ntfs.sys");
  spec.seed ^= 0xBEEF;
  const Bytes updated = cloud::build_driver_image(spec);
  for (const std::size_t idx : {std::size_t{0}, std::size_t{1}}) {
    const auto vm = env->guests()[idx];
    env->write_disk_file(vm, "ntfs.sys", updated);
    env->loader(vm).unload("ntfs.sys");
    env->loader(vm).load("ntfs.sys", updated);
  }

  ModChecker checker(env->hypervisor());
  FindingTriage triage;

  // First pass: both updated VMs flag; operator acknowledges them.
  std::vector<CheckReport> reports;
  for (const std::size_t idx : {std::size_t{0}, std::size_t{1}}) {
    reports.push_back(
        checker.check_module(env->guests()[idx], "ntfs.sys"));
    ASSERT_FALSE(reports.back().subject_clean);
    triage.acknowledge(reports.back(), "staged 5.2 rollout");
  }

  // A rootkit lands on a third VM.
  attacks::HollowingAttack{}.apply(*env, env->guests()[3], "tcpip.sys");

  // Second pass over everything: only the rootkit remains actionable.
  std::vector<CheckReport> second;
  second.push_back(checker.check_module(env->guests()[0], "ntfs.sys"));
  second.push_back(checker.check_module(env->guests()[1], "ntfs.sys"));
  second.push_back(checker.check_module(env->guests()[3], "tcpip.sys"));
  const auto open = triage.unacknowledged(second);
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0]->module_name, "tcpip.sys");
  EXPECT_EQ(open[0]->subject, env->guests()[3]);
}

// Story 3: continuous monitoring + history across an incident lifecycle.
TEST(Workflow, MonitorHistoryThroughRemediation) {
  auto env = make_env(5);
  env->snapshot_all();

  ScanScheduler scheduler(env->hypervisor(),
                          std::vector<vmm::DomainId>(env->guests()));
  scheduler.add_policy({"hal.dll", sim_ms(500), 0});
  ScanHistory history;

  history.ingest(scheduler.run_until(sim_ms(1000)));  // healthy
  EXPECT_TRUE(history.active().empty());

  const vmm::DomainId victim = env->guests()[2];
  attacks::OpcodeReplaceAttack{}.apply(*env, victim, "hal.dll");
  history.ingest(scheduler.run_until(sim_ms(2500)));
  ASSERT_EQ(history.active().size(), 1u);
  EXPECT_EQ(history.active()[0]->vm, victim);

  env->revert(victim);
  history.ingest(scheduler.run_until(sim_ms(4000)));
  EXPECT_TRUE(history.active().empty());
  EXPECT_EQ(history.findings()[0].flaps, 0u);  // clean close, no flapping
  EXPECT_GT(history.findings()[0].exposure(sim_ms(4000)), 0u);
}

// Story 4: hollowing — total code replacement with intact metadata is
// caught by ModChecker AND the LKIM baseline, and classified as a content
// divergence of maximal extent.
TEST(Workflow, HollowingCaughtAndCharacterized) {
  auto env = make_env(4);
  const vmm::DomainId victim = env->guests()[0];
  const auto result =
      attacks::HollowingAttack{"dummy.sys"}.apply(*env, victim, "ntfs.sys");
  EXPECT_EQ(result.expected_flagged, std::vector<std::string>{".text"});

  ModChecker checker(env->hypervisor());
  const auto report = checker.check_module(victim, "ntfs.sys");
  EXPECT_FALSE(report.subject_clean);
  EXPECT_EQ(report.flagged_items, std::vector<std::string>{".text"});

  const baselines::LkimStyleChecker lkim(env->golden().all());
  EXPECT_TRUE(lkim.check(*env, victim, "ntfs.sys").flagged);

  // Forensics: nearly the whole section differs.
  SimClock clock;
  vmi::VmiSession vs(env->hypervisor(), victim, clock);
  vmi::VmiSession rs(env->hypervisor(), env->guests()[1], clock);
  const ModuleParser parser;
  const auto sub =
      parser.parse(*ModuleSearcher(vs).extract_module("ntfs.sys"), clock);
  const auto ref =
      parser.parse(*ModuleSearcher(rs).extract_module("ntfs.sys"), clock);
  const auto forensic = analyze_divergence(sub, ref, ".text");
  EXPECT_GT(forensic.differing_bytes,
            sub.items.back().bytes.size() / 2);
}

// Story 5: different digest algorithms agree on every verdict.
TEST(Workflow, Sha256ModeMatchesMd5Verdicts) {
  auto env = make_env(5);
  attacks::VersionSpoofAttack{}.apply(*env, env->guests()[1], "http.sys");
  attacks::InlineHookAttack{}.apply(*env, env->guests()[2], "hal.dll");

  ModCheckerConfig md5_cfg;
  ModCheckerConfig sha_cfg;
  sha_cfg.algorithm = crypto::HashAlgorithm::kSha256;
  ModChecker md5(env->hypervisor(), md5_cfg);
  ModChecker sha(env->hypervisor(), sha_cfg);

  for (const auto& module : env->config().load_order) {
    for (const auto vm : env->guests()) {
      const auto a = md5.check_module(vm, module);
      const auto b = sha.check_module(vm, module);
      EXPECT_EQ(a.subject_clean, b.subject_clean)
          << module << " Dom" << vm;
      EXPECT_EQ(a.flagged_items, b.flagged_items);
    }
  }
}

}  // namespace
